// End-to-end regression pins: full pipeline runs (generate → extract →
// Algorithm 2 reconstruction) whose recovered irreducible polynomial is
// compared against the exact NIST P(x) string, character for character.
// These are deliberately literal — if any layer (netlist generation, the
// packed ANF core, backward rewriting, polynomial reconstruction) drifts
// semantically, the canonical rendering changes and the diff names the
// exact field size and architecture that broke.
package gfre_test

import (
	"testing"

	gfre "github.com/galoisfield/gfre"
	"github.com/galoisfield/gfre/internal/eval"
)

// e2ePin runs the whole extraction pipeline and compares the canonical
// String() of the recovered polynomial against the pinned literal.
func e2ePin(t *testing.T, n *gfre.Netlist, err error, wantP string) {
	t.Helper()
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	ext, err := gfre.Extract(n, gfre.Options{Threads: eval.Threads})
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	if got := ext.P.String(); got != wantP {
		t.Fatalf("recovered P(x) = %q, want %q", got, wantP)
	}
}

func TestE2EMastrovitoGF64PinnedP(t *testing.T) {
	p, _ := gfre.NISTPolynomial(64)
	n, err := gfre.NewMastrovito(64, p)
	e2ePin(t, n, err, "x^64+x^21+x^19+x^4+1")
}

func TestE2EMontgomeryGF64PinnedP(t *testing.T) {
	p, _ := gfre.NISTPolynomial(64)
	n, err := gfre.NewMontgomery(64, p)
	e2ePin(t, n, err, "x^64+x^21+x^19+x^4+1")
}

func TestE2EMastrovitoGF163PinnedP(t *testing.T) {
	if testing.Short() {
		t.Skip("GF(2^163) pipeline run skipped in -short mode")
	}
	p, _ := gfre.NISTPolynomial(163)
	n, err := gfre.NewMastrovito(163, p)
	e2ePin(t, n, err, "x^163+x^80+x^47+x^9+1")
}

func TestE2EMontgomeryGF163PinnedP(t *testing.T) {
	if testing.Short() {
		t.Skip("GF(2^163) pipeline run skipped in -short mode")
	}
	p, _ := gfre.NISTPolynomial(163)
	n, err := gfre.NewMontgomery(163, p)
	e2ePin(t, n, err, "x^163+x^80+x^47+x^9+1")
}
