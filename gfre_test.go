package gfre_test

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	gfre "github.com/galoisfield/gfre"
)

func TestEndToEndMastrovito(t *testing.T) {
	p := gfre.MustParsePoly("x^16+x^5+x^3+x^2+1")
	if !p.Irreducible() {
		t.Fatal("test polynomial should be irreducible")
	}
	n, err := gfre.NewMastrovito(16, p)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := gfre.Extract(n, gfre.Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !ext.P.Equal(p) {
		t.Errorf("extracted %v, want %v", ext.P, p)
	}
	if !ext.Verified {
		t.Error("extraction should be verified")
	}
	if err := gfre.SimulationCrossCheck(n, ext, 2, 9); err != nil {
		t.Error(err)
	}
}

func TestEndToEndThroughFileFormats(t *testing.T) {
	// Generate -> synthesize -> write EQN -> read back -> extract: the
	// workflow of analyzing a third-party netlist file.
	p, err := gfre.DefaultPolynomial(12)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gfre.NewMontgomery(12, p)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := gfre.Synthesize(n)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := syn.WriteEQN(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := gfre.ReadEQN(strings.NewReader(buf.String()), "from_file")
	if err != nil {
		t.Fatal(err)
	}
	ext, err := gfre.Extract(back, gfre.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ext.P.Equal(p) {
		t.Errorf("extracted %v, want %v", ext.P, p)
	}

	var blif bytes.Buffer
	if err := syn.WriteBLIF(&blif); err != nil {
		t.Fatal(err)
	}
	back2, err := gfre.ReadBLIF(strings.NewReader(blif.String()))
	if err != nil {
		t.Fatal(err)
	}
	ext2, err := gfre.Extract(back2, gfre.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ext2.P.Equal(p) {
		t.Errorf("BLIF round trip extracted %v, want %v", ext2.P, p)
	}
}

func TestPublicTables(t *testing.T) {
	if p, ok := gfre.NISTPolynomial(233); !ok || p.String() != "x^233+x^74+1" {
		t.Errorf("NISTPolynomial(233) = %v, %v", p, ok)
	}
	if _, ok := gfre.NISTPolynomial(100); ok {
		t.Error("NISTPolynomial(100) should not exist")
	}
	archs := gfre.Arch233Polynomials()
	if len(archs) != 4 {
		t.Fatalf("Arch233Polynomials: %d entries", len(archs))
	}
	// Section II-D cost model re-exported.
	if gfre.ReductionXORCount(gfre.MustParsePoly("x^4+x+1")) != 6 {
		t.Error("ReductionXORCount wrong")
	}
}

func TestPublicFieldArithmetic(t *testing.T) {
	p, _ := gfre.NISTPolynomial(64)
	f, err := gfre.NewField(p)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	a := f.Rand(r)
	if a.IsZero() {
		a = gfre.MustParsePoly("x+1")
	}
	inv, err := f.Inv(a)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Mul(a, inv).IsOne() {
		t.Error("field inverse broken through public API")
	}
}

func TestPublicErrorClasses(t *testing.T) {
	// A trivially wrong circuit must fail with one of the exported errors.
	n, err := gfre.ReadEQN(strings.NewReader(`
INORDER = a0 a1 b0 b1;
OUTORDER = z0 z1;
z0 = a0 * b0;
z1 = a1 + b1;
`), "junk")
	if err != nil {
		t.Fatal(err)
	}
	_, err = gfre.Extract(n, gfre.Options{})
	if err == nil {
		t.Fatal("junk circuit should not extract")
	}
	if !errors.Is(err, gfre.ErrNotMultiplier) && !errors.Is(err, gfre.ErrNotIrreducible) &&
		!errors.Is(err, gfre.ErrMismatch) && !errors.Is(err, gfre.ErrBadPorts) {
		t.Errorf("error %v is not one of the exported classes", err)
	}
}

func TestRewriteOnlyWorkflow(t *testing.T) {
	p, _ := gfre.DefaultPolynomial(8)
	n, err := gfre.NewMastrovito(8, p)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := gfre.Rewrite(n, gfre.RewriteOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Bits) != 8 {
		t.Fatalf("%d bit expressions", len(rw.Bits))
	}
	for _, b := range rw.Bits {
		if b.Expr.IsZero() {
			t.Errorf("bit %d rewrote to zero", b.Bit)
		}
	}
}
