package gfre_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesRunClean builds and runs every example program and requires a
// zero exit status — the examples double as end-to-end smoke tests of the
// public API, and this keeps them from rotting as it evolves.
func TestExamplesRunClean(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are compiled and executed; skipped in -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no example programs found")
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", name)
			}
		})
	}
}
