package opt

import (
	"math/rand"
	"testing"

	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/randnet"
)

// TestPropPassesPreserveRandomNetlists is the central soundness property of
// the synthesis flow: on arbitrary DAGs (reconvergence, dead logic,
// constants, LUTs, complex cells), every pass and the full pipeline must
// preserve the Boolean function bit-exactly.
func TestPropPassesPreserveRandomNetlists(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	passes := []struct {
		name string
		f    func(*netlist.Netlist) (*netlist.Netlist, error)
	}{
		{"Simplify", Simplify},
		{"BalanceXor", BalanceXor},
		{"TechMapFuse", func(n *netlist.Netlist) (*netlist.Netlist, error) {
			return TechMap(n, MapFuseInverters)
		}},
		{"TechMapNand", func(n *netlist.Netlist) (*netlist.Netlist, error) {
			return TechMap(n, MapNandHeavy)
		}},
		{"Synthesize", Synthesize},
	}
	for trial := 0; trial < 60; trial++ {
		cfg := randnet.Config{
			Inputs:    1 + r.Intn(10),
			Gates:     1 + r.Intn(120),
			Outputs:   1 + r.Intn(5),
			Luts:      trial%2 == 0,
			Constants: trial%3 == 0,
		}
		n, err := randnet.New(r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range passes {
			got, err := p.f(n)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, p.name, err)
			}
			if !functionsEqual(t, n, got, r) {
				t.Fatalf("trial %d: %s changed the function (cfg %+v)", trial, p.name, cfg)
			}
			if got.NumGates() > 4*n.NumGates()+8 {
				t.Fatalf("trial %d: %s exploded the netlist %d -> %d",
					trial, p.name, n.NumGates(), got.NumGates())
			}
		}
	}
}

func TestPropPassesIdempotent(t *testing.T) {
	// Running Simplify twice must not change gate counts the second time
	// (fixpoint property).
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 25; trial++ {
		n, err := randnet.New(r, randnet.Config{
			Inputs: 1 + r.Intn(8), Gates: 1 + r.Intn(80), Outputs: 1 + r.Intn(4),
			Luts: true, Constants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		s1, err := Simplify(n)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := Simplify(s1)
		if err != nil {
			t.Fatal(err)
		}
		if s2.NumGates() != s1.NumGates() {
			t.Errorf("trial %d: Simplify not idempotent: %d -> %d gates",
				trial, s1.NumGates(), s2.NumGates())
		}
	}
}

func functionsEqual(t *testing.T, n1, n2 *netlist.Netlist, r *rand.Rand) bool {
	t.Helper()
	for round := 0; round < 4; round++ {
		words := make([]uint64, len(n1.Inputs()))
		for i := range words {
			words[i] = r.Uint64()
		}
		v1, err := n1.Simulate(words)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := n2.Simulate(words)
		if err != nil {
			t.Fatal(err)
		}
		o1, o2 := n1.OutputWords(v1), n2.OutputWords(v2)
		for i := range o1 {
			if o1[i] != o2[i] {
				return false
			}
		}
	}
	return true
}
