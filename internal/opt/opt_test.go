package opt

import (
	"math/rand"
	"testing"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/polytab"
	"github.com/galoisfield/gfre/internal/randnet"
)

// assertEquivalent checks that two netlists with identical ports compute the
// same function on random 64-lane vectors.
func assertEquivalent(t *testing.T, n1, n2 *netlist.Netlist, trials int) {
	t.Helper()
	if len(n1.Inputs()) != len(n2.Inputs()) || len(n1.Outputs()) != len(n2.Outputs()) {
		t.Fatalf("port mismatch: in %d/%d out %d/%d",
			len(n1.Inputs()), len(n2.Inputs()), len(n1.Outputs()), len(n2.Outputs()))
	}
	r := rand.New(rand.NewSource(1234))
	for trial := 0; trial < trials; trial++ {
		words := make([]uint64, len(n1.Inputs()))
		for i := range words {
			words[i] = r.Uint64()
		}
		v1, err := n1.Simulate(words)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := n2.Simulate(words)
		if err != nil {
			t.Fatal(err)
		}
		o1, o2 := n1.OutputWords(v1), n2.OutputWords(v2)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("trial %d: output %d differs (%x vs %x)", trial, i, o1[i], o2[i])
			}
		}
	}
}

func TestSimplifyPreservesFunction(t *testing.T) {
	for _, m := range []int{4, 8, 16, 32} {
		p, err := polytab.Default(m)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := gen.MastrovitoMatrix(m, p)
		if err != nil {
			t.Fatal(err)
		}
		simp, err := Simplify(raw)
		if err != nil {
			t.Fatal(err)
		}
		assertEquivalent(t, raw, simp, 6)
	}
}

func TestSimplifyRemovesMatrixRedundancy(t *testing.T) {
	// Structural hashing must shrink the redundant matrix-form Mastrovito
	// significantly — the Table III effect.
	p := polytab.NIST[64]
	raw, err := gen.MastrovitoMatrix(64, p)
	if err != nil {
		t.Fatal(err)
	}
	simp, err := Simplify(raw)
	if err != nil {
		t.Fatal(err)
	}
	if simp.NumEquations() >= raw.NumEquations() {
		t.Errorf("simplify did not shrink: %d -> %d", raw.NumEquations(), simp.NumEquations())
	}
	ratio := float64(simp.NumEquations()) / float64(raw.NumEquations())
	if ratio > 0.9 {
		t.Errorf("only %.1f%% reduction on redundant netlist", (1-ratio)*100)
	}
	assertEquivalent(t, raw, simp, 6)
}

func TestSimplifyFoldsConstantsAndBuffers(t *testing.T) {
	n := netlist.New("junk")
	a, _ := n.AddInput("a")
	b, _ := n.AddInput("b")
	c1, _ := n.AddGate(netlist.Const1)
	c0, _ := n.AddGate(netlist.Const0)
	buf, _ := n.AddGate(netlist.Buf, a)
	and1, _ := n.AddGate(netlist.And, buf, c1) // = a
	or0, _ := n.AddGate(netlist.Or, and1, c0)  // = a
	nn, _ := n.AddGate(netlist.Not, or0)
	nnn, _ := n.AddGate(netlist.Not, nn) // = a
	xorSame, _ := n.AddGate(netlist.Xor, b, b)
	// = 0
	final, _ := n.AddGate(netlist.Or, nnn, xorSame) // = a
	n.MarkOutput("z", final)
	s, err := Simplify(n)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumEquations() != 0 {
		t.Errorf("expected output collapsed to input wire, got %d equations", s.NumEquations())
	}
	assertEquivalent(t, n, s, 4)
}

func TestSimplifySharesStructuralDuplicates(t *testing.T) {
	n := netlist.New("dup")
	a, _ := n.AddInput("a")
	b, _ := n.AddInput("b")
	g1, _ := n.AddGate(netlist.And, a, b)
	g2, _ := n.AddGate(netlist.And, b, a) // same after canonical order
	x, _ := n.AddGate(netlist.Xor, g1, g2)
	n.MarkOutput("z", x)
	s, err := Simplify(n)
	if err != nil {
		t.Fatal(err)
	}
	// AND(a,b) == AND(b,a) -> XOR(g,g) = 0: whole circuit is constant 0.
	vals, err := s.Simulate([]uint64{^uint64(0), ^uint64(0)})
	if err != nil {
		t.Fatal(err)
	}
	if s.OutputWords(vals)[0] != 0 {
		t.Error("duplicate ANDs should cancel through XOR")
	}
}

func TestSimplifyShrinksLuts(t *testing.T) {
	n := netlist.New("lut")
	a, _ := n.AddInput("a")
	b, _ := n.AddInput("b")
	c1, _ := n.AddGate(netlist.Const1)
	// 3-input LUT of (a AND b AND const1) -> must shrink to AND(a,b).
	table := make([]bool, 8)
	table[7] = true
	l, err := n.AddLut(table, a, b, c1)
	if err != nil {
		t.Fatal(err)
	}
	n.MarkOutput("z", l)
	s, err := Simplify(n)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().ByType[netlist.Lut] != 0 {
		t.Error("LUT should have been recognized as AND")
	}
	if s.Stats().ByType[netlist.And] != 1 {
		t.Errorf("want one AND, got %v", s.Stats().ByType)
	}
	assertEquivalent(t, n, s, 4)

	// LUT with a duplicated input: maj(a,a,b) = a... (ab+ab+ab? majority of
	// a,a,b is a OR (a AND b)= a) — verify just functional preservation.
	n2 := netlist.New("lut2")
	a2, _ := n2.AddInput("a")
	b2, _ := n2.AddInput("b")
	maj := make([]bool, 8)
	for row := range maj {
		if (row&1)+(row>>1&1)+(row>>2&1) >= 2 {
			maj[row] = true
		}
	}
	l2, _ := n2.AddLut(maj, a2, a2, b2)
	n2.MarkOutput("z", l2)
	s2, err := Simplify(n2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Stats().ByType[netlist.Lut] != 0 {
		t.Errorf("duplicated-input LUT should simplify away: %v", s2.Stats().ByType)
	}
	assertEquivalent(t, n2, s2, 4)
}

func TestBalanceXorReducesDepth(t *testing.T) {
	// A long XOR chain must become logarithmic depth.
	n := netlist.New("chain")
	var ins []int
	for i := 0; i < 64; i++ {
		id, _ := n.AddInput(string(rune('a')) + itoa(i))
		ins = append(ins, id)
	}
	cur := ins[0]
	for i := 1; i < 64; i++ {
		cur, _ = n.AddGate(netlist.Xor, cur, ins[i])
	}
	n.MarkOutput("z", cur)
	bal, err := BalanceXor(n)
	if err != nil {
		t.Fatal(err)
	}
	_, depth := bal.Levels()
	if depth != 6 {
		t.Errorf("balanced depth = %d, want 6", depth)
	}
	assertEquivalent(t, n, bal, 6)
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + itoa(i%10)
}

func TestBalanceXorCancelsDuplicateLeaves(t *testing.T) {
	// z = a ^ b ^ a must reduce to b.
	n := netlist.New("cancel")
	a, _ := n.AddInput("a")
	b, _ := n.AddInput("b")
	x1, _ := n.AddGate(netlist.Xor, a, b)
	x2, _ := n.AddGate(netlist.Xor, x1, a)
	n.MarkOutput("z", x2)
	bal, err := BalanceXor(n)
	if err != nil {
		t.Fatal(err)
	}
	if bal.NumEquations() != 0 {
		t.Errorf("a^b^a should collapse to wire b, got %d equations", bal.NumEquations())
	}
	assertEquivalent(t, n, bal, 4)
}

func TestBalanceXorHandlesXnor(t *testing.T) {
	// XNOR chain: xnor(xnor(a,b),c) = a^b^c^0 (two inversions cancel... one
	// inversion each: !( !(a^b) ^ c ) = a^b^c). Verify function only.
	n := netlist.New("xnorchain")
	a, _ := n.AddInput("a")
	b, _ := n.AddInput("b")
	c, _ := n.AddInput("c")
	x1, _ := n.AddGate(netlist.Xnor, a, b)
	x2, _ := n.AddGate(netlist.Xnor, x1, c)
	n.MarkOutput("z", x2)
	bal, err := BalanceXor(n)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, n, bal, 4)
	// Odd number of XNORs keeps one inversion.
	n2 := netlist.New("xnor1")
	a2, _ := n2.AddInput("a")
	b2, _ := n2.AddInput("b")
	y, _ := n2.AddGate(netlist.Xnor, a2, b2)
	n2.MarkOutput("z", y)
	bal2, err := BalanceXor(n2)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, n2, bal2, 4)
}

func TestBalanceXorRespectsSharedNodes(t *testing.T) {
	// An XOR node with two readers must not be absorbed (it stays a leaf in
	// both trees).
	n := netlist.New("shared")
	a, _ := n.AddInput("a")
	b, _ := n.AddInput("b")
	c, _ := n.AddInput("c")
	sh, _ := n.AddGate(netlist.Xor, a, b)
	z0, _ := n.AddGate(netlist.Xor, sh, c)
	z1, _ := n.AddGate(netlist.And, sh, c)
	n.MarkOutput("z0", z0)
	n.MarkOutput("z1", z1)
	bal, err := BalanceXor(n)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, n, bal, 6)
}

func TestTechMapUsesStandardCells(t *testing.T) {
	p, err := polytab.Default(16)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := gen.Mastrovito(16, p)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := TechMap(raw, MapNandHeavy)
	if err != nil {
		t.Fatal(err)
	}
	st := mapped.Stats()
	if st.ByType[netlist.And] != 0 || st.ByType[netlist.Or] != 0 {
		t.Errorf("AND/OR should be mapped away: %v", st.ByType)
	}
	if st.ByType[netlist.Nand] == 0 {
		t.Errorf("expected NAND cells after mapping: %v", st.ByType)
	}
	assertEquivalent(t, raw, mapped, 6)

	// The fuse-only style keeps AND cells and never grows the netlist.
	fused, err := TechMap(raw, MapFuseInverters)
	if err != nil {
		t.Fatal(err)
	}
	if fused.NumEquations() > raw.NumEquations() {
		t.Errorf("fuse-only mapping grew netlist %d -> %d", raw.NumEquations(), fused.NumEquations())
	}
	assertEquivalent(t, raw, fused, 6)
}

func TestTechMapFusesInverters(t *testing.T) {
	n := netlist.New("fuse")
	a, _ := n.AddInput("a")
	b, _ := n.AddInput("b")
	g1, _ := n.AddGate(netlist.And, a, b)
	n1, _ := n.AddGate(netlist.Not, g1)
	g2, _ := n.AddGate(netlist.Or, a, b)
	n2, _ := n.AddGate(netlist.Not, g2)
	g3, _ := n.AddGate(netlist.Xor, n1, n2)
	n3, _ := n.AddGate(netlist.Not, g3)
	n.MarkOutput("z", n3)
	mapped, err := TechMap(n, MapFuseInverters)
	if err != nil {
		t.Fatal(err)
	}
	st := mapped.Stats()
	if st.ByType[netlist.Nand] != 1 || st.ByType[netlist.Nor] != 1 || st.ByType[netlist.Xnor] != 1 {
		t.Errorf("expected NAND+NOR+XNOR from fusion: %v", st.ByType)
	}
	if st.ByType[netlist.Not] != 0 {
		t.Errorf("all inverters should fuse: %v", st.ByType)
	}
	assertEquivalent(t, n, mapped, 4)
}

func TestSynthesizePipeline(t *testing.T) {
	for _, m := range []int{8, 16, 32} {
		p, err := polytab.Default(m)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := gen.MastrovitoMatrix(m, p)
		if err != nil {
			t.Fatal(err)
		}
		syn, err := Synthesize(raw)
		if err != nil {
			t.Fatal(err)
		}
		assertEquivalent(t, raw, syn, 6)
		if syn.NumEquations() >= raw.NumEquations() {
			t.Errorf("m=%d: synthesis grew the netlist %d -> %d", m, raw.NumEquations(), syn.NumEquations())
		}

		mont, err := gen.Montgomery(m, p)
		if err != nil {
			t.Fatal(err)
		}
		msyn, err := Synthesize(mont)
		if err != nil {
			t.Fatal(err)
		}
		assertEquivalent(t, mont, msyn, 6)
	}
}

func BenchmarkSynthesizeMastrovitoMatrix32(b *testing.B) {
	p, err := polytab.Default(32)
	if err != nil {
		b.Fatal(err)
	}
	raw, err := gen.MastrovitoMatrix(32, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMapAOIPatterns(t *testing.T) {
	n := netlist.New("aoi")
	a, _ := n.AddInput("a")
	b, _ := n.AddInput("b")
	c, _ := n.AddInput("c")
	d, _ := n.AddInput("d")
	// AOI21: !(ab + c)
	and1, _ := n.AddGate(netlist.And, a, b)
	or1, _ := n.AddGate(netlist.Or, and1, c)
	z0, _ := n.AddGate(netlist.Not, or1)
	// AOI22: !(ab' + cd) with fresh AND gates
	and2, _ := n.AddGate(netlist.And, a, c)
	and3, _ := n.AddGate(netlist.And, b, d)
	or2, _ := n.AddGate(netlist.Or, and2, and3)
	z1, _ := n.AddGate(netlist.Not, or2)
	// OAI21: !((a+b)c)
	or3, _ := n.AddGate(netlist.Or, a, b)
	and4, _ := n.AddGate(netlist.And, or3, c)
	z2, _ := n.AddGate(netlist.Not, and4)
	// OAI22: !((a+b)(c+d))
	or4, _ := n.AddGate(netlist.Or, a, b)
	or5, _ := n.AddGate(netlist.Or, c, d)
	and5, _ := n.AddGate(netlist.And, or4, or5)
	z3, _ := n.AddGate(netlist.Not, and5)
	n.MarkOutput("z0", z0)
	n.MarkOutput("z1", z1)
	n.MarkOutput("z2", z2)
	n.MarkOutput("z3", z3)

	mapped, err := MapAOI(n)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, n, mapped, 6)
	st := mapped.Stats()
	if st.ByType[netlist.Aoi21] != 1 || st.ByType[netlist.Aoi22] != 1 ||
		st.ByType[netlist.Oai21] != 1 || st.ByType[netlist.Oai22] != 1 {
		t.Errorf("cells not fused: %v", st.ByType)
	}
	if st.ByType[netlist.Not] != 0 || st.ByType[netlist.And] != 0 || st.ByType[netlist.Or] != 0 {
		t.Errorf("pattern leftovers remain: %v", st.ByType)
	}
}

func TestMapAOIRespectsSharing(t *testing.T) {
	// The inner AND also feeds another output: it must NOT be absorbed.
	n := netlist.New("shared_aoi")
	a, _ := n.AddInput("a")
	b, _ := n.AddInput("b")
	c, _ := n.AddInput("c")
	and1, _ := n.AddGate(netlist.And, a, b)
	or1, _ := n.AddGate(netlist.Or, and1, c)
	z0, _ := n.AddGate(netlist.Not, or1)
	n.MarkOutput("z0", z0)
	n.MarkOutput("zshare", and1)
	mapped, err := MapAOI(n)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, n, mapped, 6)
	if mapped.Stats().ByType[netlist.Aoi21] != 0 {
		t.Error("shared AND must not fuse into AOI21")
	}
}

func TestMapAOIPropertyRandom(t *testing.T) {
	r := rand.New(rand.NewSource(4040))
	for trial := 0; trial < 40; trial++ {
		n, err := randnet.New(r, randnet.Config{
			Inputs: 1 + r.Intn(8), Gates: 1 + r.Intn(100), Outputs: 1 + r.Intn(4),
			Luts: trial%2 == 0, Constants: trial%3 == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := MapAOI(n)
		if err != nil {
			t.Fatal(err)
		}
		assertEquivalent(t, n, mapped, 4)
	}
}
