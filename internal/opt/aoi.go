package opt

import "github.com/galoisfield/gfre/internal/netlist"

// MapAOI fuses inverted AND-OR / OR-AND trees into the complex standard
// cells AOI21/AOI22/OAI21/OAI22:
//
//	NOT(OR(AND(a,b), c))            -> AOI21(a,b,c)
//	NOT(OR(AND(a,b), AND(c,d)))     -> AOI22(a,b,c,d)
//	NOT(AND(OR(a,b), c))            -> OAI21(a,b,c)
//	NOT(AND(OR(a,b), OR(c,d)))      -> OAI22(a,b,c,d)
//
// Inner gates fuse only when their single fanout is inside the pattern, so
// shared logic is never duplicated or functionally disturbed. Run after
// TechMap(MapFuseInverters) on OR/AND-rich netlists to complete the
// standard-cell look; raw GF multipliers (AND/XOR only) pass through
// unchanged.
func MapAOI(n *netlist.Netlist) (*netlist.Netlist, error) {
	fanout := make([]int, n.NumGates())
	for id := 0; id < n.NumGates(); id++ {
		for _, f := range n.Gate(id).Fanin {
			fanout[f]++
		}
	}
	for _, id := range n.Outputs() {
		fanout[id]++
	}

	// Pattern match rooted at every NOT gate; record the gates each match
	// absorbs. A gate may only be absorbed once and only with fanout 1.
	type match struct {
		cell  netlist.GateType
		fanin []int // original gate IDs
	}
	matches := map[int]match{} // NOT gate id -> match
	absorbed := make([]bool, n.NumGates())
	free := func(id int, t netlist.GateType) bool {
		return n.Gate(id).Type == t && fanout[id] == 1 && !absorbed[id]
	}
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		if g.Type != netlist.Not {
			continue
		}
		d := g.Fanin[0]
		dg := n.Gate(d)
		switch {
		case free(d, netlist.Or):
			l, r := dg.Fanin[0], dg.Fanin[1]
			switch {
			case free(l, netlist.And) && free(r, netlist.And) && l != r:
				lf, rf := n.Gate(l).Fanin, n.Gate(r).Fanin
				matches[id] = match{netlist.Aoi22, []int{lf[0], lf[1], rf[0], rf[1]}}
				absorbed[d], absorbed[l], absorbed[r] = true, true, true
			case free(l, netlist.And):
				lf := n.Gate(l).Fanin
				matches[id] = match{netlist.Aoi21, []int{lf[0], lf[1], r}}
				absorbed[d], absorbed[l] = true, true
			case free(r, netlist.And):
				rf := n.Gate(r).Fanin
				matches[id] = match{netlist.Aoi21, []int{rf[0], rf[1], l}}
				absorbed[d], absorbed[r] = true, true
			}
		case free(d, netlist.And):
			l, r := dg.Fanin[0], dg.Fanin[1]
			switch {
			case free(l, netlist.Or) && free(r, netlist.Or) && l != r:
				lf, rf := n.Gate(l).Fanin, n.Gate(r).Fanin
				matches[id] = match{netlist.Oai22, []int{lf[0], lf[1], rf[0], rf[1]}}
				absorbed[d], absorbed[l], absorbed[r] = true, true, true
			case free(l, netlist.Or):
				lf := n.Gate(l).Fanin
				matches[id] = match{netlist.Oai21, []int{lf[0], lf[1], r}}
				absorbed[d], absorbed[l] = true, true
			case free(r, netlist.Or):
				rf := n.Gate(r).Fanin
				matches[id] = match{netlist.Oai21, []int{rf[0], rf[1], l}}
				absorbed[d], absorbed[r] = true, true
			}
		}
	}

	b := newBuilder(n.Name + "_aoi")
	mapping := make([]int, n.NumGates())
	for i := range mapping {
		mapping[i] = -1
	}
	for _, id := range n.Inputs() {
		nid, err := b.out.AddInput(n.NameOf(id))
		if err != nil {
			return nil, err
		}
		mapping[id] = nid
	}
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		if g.Type == netlist.Input || absorbed[id] {
			continue
		}
		var nid int
		var err error
		if m, ok := matches[id]; ok {
			nid, err = b.gate(m.cell, mapped(mapping, m.fanin)...)
		} else if g.Type == netlist.Lut {
			nid, err = b.lut(g.Table, mapped(mapping, g.Fanin))
		} else {
			nid, err = b.gate(g.Type, mapped(mapping, g.Fanin)...)
		}
		if err != nil {
			return nil, err
		}
		mapping[id] = nid
	}
	outs := n.Outputs()
	names := n.OutputNames()
	for i, id := range outs {
		if err := b.out.MarkOutput(names[i], mapping[id]); err != nil {
			return nil, err
		}
	}
	return sweepDead(b.out)
}
