// Package opt implements logic optimization and technology mapping for
// combinational netlists. It stands in for the ABC flow ("optimized and
// mapped using ABC") that produces the bit-optimized multipliers of the
// paper's Table III:
//
//   - Simplify: constant propagation, buffer/double-inverter removal and
//     structural hashing (ABC's strash) — merges structurally identical
//     gates, which removes the redundancy of matrix-form Mastrovito
//     netlists;
//   - BalanceXor: rebuilds maximal XOR trees as balanced trees, cancelling
//     duplicated leaves mod 2 (ABC's balance, specialized to the XOR-
//     dominated structure of GF(2^m) multipliers);
//   - TechMap: maps onto a standard-cell-style library (NAND/NOR/XNOR/
//     INV/...), producing the kind of post-synthesis netlist shown in the
//     paper's Figure 2;
//   - Synthesize: the composed pipeline used for the Table III experiments.
//
// All passes preserve the circuit function exactly (ports, order and
// semantics), so extraction results are unchanged — only cost changes.
package opt

import (
	"fmt"
	"sort"

	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/obs"
)

// builder constructs an optimized copy of a netlist with hash-consing and
// local constant folding.
type builder struct {
	out    *netlist.Netlist
	cache  map[string]int
	consts [2]int // gate IDs of Const0/Const1 in out; -1 if absent
}

func newBuilder(name string) *builder {
	return &builder{
		out:    netlist.New(name),
		cache:  map[string]int{},
		consts: [2]int{-1, -1},
	}
}

func (b *builder) constant(one bool) (int, error) {
	idx := 0
	t := netlist.Const0
	if one {
		idx, t = 1, netlist.Const1
	}
	if b.consts[idx] == -1 {
		id, err := b.out.AddGate(t)
		if err != nil {
			return 0, err
		}
		b.consts[idx] = id
	}
	return b.consts[idx], nil
}

// isConst classifies a gate ID in the output netlist.
func (b *builder) isConst(id int) (val, ok bool) {
	switch b.out.Gate(id).Type {
	case netlist.Const0:
		return false, true
	case netlist.Const1:
		return true, true
	}
	return false, false
}

func (b *builder) not(x int) (int, error) {
	if v, ok := b.isConst(x); ok {
		return b.constant(!v)
	}
	// Double-inverter cancellation.
	if g := b.out.Gate(x); g.Type == netlist.Not {
		return g.Fanin[0], nil
	}
	return b.hashed(netlist.Not, x)
}

// hashed emits a gate with structural hashing; fanins of commutative gates
// are put in canonical order first.
func (b *builder) hashed(t netlist.GateType, fanin ...int) (int, error) {
	switch t {
	case netlist.And, netlist.Or, netlist.Xor, netlist.Xnor, netlist.Nand, netlist.Nor:
		if fanin[0] > fanin[1] {
			fanin[0], fanin[1] = fanin[1], fanin[0]
		}
	case netlist.Aoi21, netlist.Oai21:
		if fanin[0] > fanin[1] {
			fanin[0], fanin[1] = fanin[1], fanin[0]
		}
	case netlist.Aoi22, netlist.Oai22:
		if fanin[0] > fanin[1] {
			fanin[0], fanin[1] = fanin[1], fanin[0]
		}
		if fanin[2] > fanin[3] {
			fanin[2], fanin[3] = fanin[3], fanin[2]
		}
		if fanin[0] > fanin[2] || fanin[0] == fanin[2] && fanin[1] > fanin[3] {
			fanin[0], fanin[1], fanin[2], fanin[3] = fanin[2], fanin[3], fanin[0], fanin[1]
		}
	}
	key := fmt.Sprintf("%d|%v", t, fanin)
	if id, ok := b.cache[key]; ok {
		return id, nil
	}
	id, err := b.out.AddGate(t, fanin...)
	if err != nil {
		return 0, err
	}
	b.cache[key] = id
	return id, nil
}

// gate emits a logically simplified gate of type t over already-mapped
// fanins, folding constants and trivially equal inputs.
func (b *builder) gate(t netlist.GateType, fanin ...int) (int, error) {
	// Full constant folding first.
	allConst := true
	var in []bool
	for _, f := range fanin {
		v, ok := b.isConst(f)
		if !ok {
			allConst = false
			break
		}
		in = append(in, v)
	}
	if allConst && t != netlist.Lut {
		return b.constant(evalType(t, in))
	}

	c := func(i int) (bool, bool) { return b.isConst(fanin[i]) }
	switch t {
	case netlist.Const0:
		return b.constant(false)
	case netlist.Const1:
		return b.constant(true)
	case netlist.Buf:
		return fanin[0], nil
	case netlist.Not:
		return b.not(fanin[0])
	case netlist.And, netlist.Nand:
		x, y := fanin[0], fanin[1]
		neg := t == netlist.Nand
		if v, ok := c(0); ok {
			if !v {
				return b.constant(neg)
			}
			if neg {
				return b.not(y)
			}
			return y, nil
		}
		if v, ok := c(1); ok {
			if !v {
				return b.constant(neg)
			}
			if neg {
				return b.not(x)
			}
			return x, nil
		}
		if x == y {
			if neg {
				return b.not(x)
			}
			return x, nil
		}
	case netlist.Or, netlist.Nor:
		x, y := fanin[0], fanin[1]
		neg := t == netlist.Nor
		if v, ok := c(0); ok {
			if v {
				return b.constant(!neg)
			}
			if neg {
				return b.not(y)
			}
			return y, nil
		}
		if v, ok := c(1); ok {
			if v {
				return b.constant(!neg)
			}
			if neg {
				return b.not(x)
			}
			return x, nil
		}
		if x == y {
			if neg {
				return b.not(x)
			}
			return x, nil
		}
	case netlist.Xor, netlist.Xnor:
		x, y := fanin[0], fanin[1]
		neg := t == netlist.Xnor
		if v, ok := c(0); ok {
			if v != neg {
				return b.not(y)
			}
			return y, nil
		}
		if v, ok := c(1); ok {
			if v != neg {
				return b.not(x)
			}
			return x, nil
		}
		if x == y {
			return b.constant(neg)
		}
	case netlist.Mux:
		if v, ok := c(2); ok {
			if v {
				return fanin[1], nil
			}
			return fanin[0], nil
		}
		if fanin[0] == fanin[1] {
			return fanin[0], nil
		}
	}
	return b.hashed(t, fanin...)
}

// lut emits a (possibly shrunk) LUT: constant and duplicate fanins are
// eliminated by restricting the truth table, and degenerate tables collapse
// to constants, buffers or inverters.
func (b *builder) lut(table []bool, fanin []int) (int, error) {
	table = append([]bool(nil), table...)
	fanin = append([]int(nil), fanin...)
	// Iterate until fixpoint: removing one input can expose more.
	for {
		changed := false
		for i := 0; i < len(fanin); i++ {
			if v, ok := b.isConst(fanin[i]); ok {
				table = restrict(table, i, v)
				fanin = append(fanin[:i], fanin[i+1:]...)
				changed = true
				break
			}
			dup := -1
			for j := 0; j < i; j++ {
				if fanin[j] == fanin[i] {
					dup = j
					break
				}
			}
			if dup >= 0 {
				table = merge(table, dup, i)
				fanin = append(fanin[:i], fanin[i+1:]...)
				changed = true
				break
			}
			// Input i irrelevant?
			if irrelevant(table, i) {
				table = restrict(table, i, false)
				fanin = append(fanin[:i], fanin[i+1:]...)
				changed = true
				break
			}
		}
		if !changed {
			break
		}
	}
	switch len(fanin) {
	case 0:
		return b.constant(table[0])
	case 1:
		switch {
		case !table[0] && table[1]:
			return fanin[0], nil
		case table[0] && !table[1]:
			return b.not(fanin[0])
		}
		return b.constant(table[0])
	case 2:
		// Recognize the standard 2-input cells.
		idx := 0
		for i, v := range table {
			if v {
				idx |= 1 << uint(i)
			}
		}
		switch idx {
		case 0b1000:
			return b.gate(netlist.And, fanin[0], fanin[1])
		case 0b0111:
			return b.gate(netlist.Nand, fanin[0], fanin[1])
		case 0b1110:
			return b.gate(netlist.Or, fanin[0], fanin[1])
		case 0b0001:
			return b.gate(netlist.Nor, fanin[0], fanin[1])
		case 0b0110:
			return b.gate(netlist.Xor, fanin[0], fanin[1])
		case 0b1001:
			return b.gate(netlist.Xnor, fanin[0], fanin[1])
		}
	}
	key := fmt.Sprintf("L%v|%v", table, fanin)
	if id, ok := b.cache[key]; ok {
		return id, nil
	}
	id, err := b.out.AddLut(table, fanin...)
	if err != nil {
		return 0, err
	}
	b.cache[key] = id
	return id, nil
}

// restrict fixes input i of a truth table to value v.
func restrict(table []bool, i int, v bool) []bool {
	bit := 1 << uint(i)
	out := make([]bool, 0, len(table)/2)
	for row := range table {
		if row&bit == 0 {
			src := row
			if v {
				src |= bit
			}
			out = append(out, table[src])
		}
	}
	return out
}

// merge ties input j (later position) to input i of a truth table,
// removing input j.
func merge(table []bool, i, j int) []bool {
	bi, bj := 1<<uint(i), 1<<uint(j)
	out := make([]bool, 0, len(table)/2)
	for row := range table {
		if row&bj != 0 {
			continue
		}
		src := row
		if row&bi != 0 {
			src |= bj
		}
		// Re-pack remaining bits: rows without bit j, compacted.
		out = append(out, table[src])
	}
	return out
}

// irrelevant reports whether flipping input i never changes the output.
func irrelevant(table []bool, i int) bool {
	bit := 1 << uint(i)
	for row := range table {
		if row&bit == 0 && table[row] != table[row|bit] {
			return false
		}
	}
	return true
}

func evalType(t netlist.GateType, in []bool) bool {
	// Re-derive via netlist semantics using a throwaway simulation.
	n := netlist.New("tmp")
	ids := make([]int, len(in))
	words := make([]uint64, len(in))
	for i := range in {
		ids[i], _ = n.AddInput(fmt.Sprintf("i%d", i))
		if in[i] {
			words[i] = 1
		}
	}
	g, err := n.AddGate(t, ids...)
	if err != nil {
		panic(err)
	}
	vals, err := n.Simulate(words)
	if err != nil {
		panic(err)
	}
	return vals[g]&1 == 1
}

// sweepDead removes gates outside every output cone (dead-code
// elimination). Primary inputs are always kept so the port signature is
// preserved.
func sweepDead(n *netlist.Netlist) (*netlist.Netlist, error) {
	live := make([]bool, n.NumGates())
	for _, root := range n.Outputs() {
		for _, id := range n.Cone(root) {
			live[id] = true
		}
	}
	out := netlist.New(n.Name)
	mapping := make([]int, n.NumGates())
	for i := range mapping {
		mapping[i] = -1
	}
	for _, id := range n.Inputs() {
		nid, err := out.AddInput(n.NameOf(id))
		if err != nil {
			return nil, err
		}
		mapping[id] = nid
	}
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		if g.Type == netlist.Input || !live[id] {
			continue
		}
		fanin := mapped(mapping, g.Fanin)
		var nid int
		var err error
		if g.Type == netlist.Lut {
			nid, err = out.AddLut(g.Table, fanin...)
		} else {
			nid, err = out.AddGate(g.Type, fanin...)
		}
		if err != nil {
			return nil, err
		}
		mapping[id] = nid
	}
	outs := n.Outputs()
	names := n.OutputNames()
	for i, id := range outs {
		if err := out.MarkOutput(names[i], mapping[id]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// rebuild walks n in topological order and reconstructs it through emit,
// preserving port names and order. emit receives the original gate and its
// fanins mapped into the new netlist.
func rebuild(n *netlist.Netlist, name string,
	emit func(b *builder, g netlist.Gate, fanin []int) (int, error)) (*netlist.Netlist, error) {
	b := newBuilder(name)
	mapping := make([]int, n.NumGates())
	for i := range mapping {
		mapping[i] = -1
	}
	for _, id := range n.Inputs() {
		nid, err := b.out.AddInput(n.NameOf(id))
		if err != nil {
			return nil, err
		}
		mapping[id] = nid
	}
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		if g.Type == netlist.Input {
			continue
		}
		fanin := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			if mapping[f] == -1 {
				return nil, fmt.Errorf("opt: gate %d fanin %d not yet mapped", id, f)
			}
			fanin[i] = mapping[f]
		}
		nid, err := emit(b, g, fanin)
		if err != nil {
			return nil, err
		}
		mapping[id] = nid
	}
	outs := n.Outputs()
	names := n.OutputNames()
	for i, id := range outs {
		if err := b.out.MarkOutput(names[i], mapping[id]); err != nil {
			return nil, err
		}
	}
	return sweepDead(b.out)
}

// Simplify performs constant propagation, buffer and double-inverter
// removal, trivial-identity rewriting, structural hashing and dead-code
// elimination. Internal signal names are dropped, as a synthesis tool would.
func Simplify(n *netlist.Netlist) (*netlist.Netlist, error) {
	return rebuild(n, n.Name+"_simp", func(b *builder, g netlist.Gate, fanin []int) (int, error) {
		if g.Type == netlist.Lut {
			return b.lut(g.Table, fanin)
		}
		return b.gate(g.Type, fanin...)
	})
}

// BalanceXor rebuilds maximal trees of XOR gates as balanced trees,
// cancelling repeated leaves modulo 2. Non-XOR gates pass through with
// structural hashing. XNOR gates participate as XOR plus a constant-1 leaf,
// so chains of XNORs balance too.
func BalanceXor(n *netlist.Netlist) (*netlist.Netlist, error) {
	// Fanout counts decide which XOR nodes are absorbed into a parent tree:
	// only single-fanout XORs whose unique reader is also an XOR/XNOR.
	fanout := make([]int, n.NumGates())
	xorReaders := make([]int, n.NumGates())
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		for _, f := range g.Fanin {
			fanout[f]++
			if g.Type == netlist.Xor || g.Type == netlist.Xnor {
				xorReaders[f]++
			}
		}
	}
	for _, id := range n.Outputs() {
		fanout[id]++
	}
	absorbed := make([]bool, n.NumGates())
	for id := 0; id < n.NumGates(); id++ {
		t := n.Gate(id).Type
		if (t == netlist.Xor || t == netlist.Xnor) && fanout[id] == 1 && xorReaders[id] == 1 {
			absorbed[id] = true
		}
	}

	b := newBuilder(n.Name + "_bal")
	mapping := make([]int, n.NumGates())
	for i := range mapping {
		mapping[i] = -1
	}
	for _, id := range n.Inputs() {
		nid, err := b.out.AddInput(n.NameOf(id))
		if err != nil {
			return nil, err
		}
		mapping[id] = nid
	}

	// leaves gathers the XOR-leaf multiset of node id (in original IDs),
	// following absorbed XOR children; inv counts XNOR inversions mod 2.
	var leaves func(id int, count map[int]int) (inv bool)
	leaves = func(id int, count map[int]int) bool {
		g := n.Gate(id)
		inv := g.Type == netlist.Xnor
		for _, f := range g.Fanin {
			fg := n.Gate(f)
			if absorbed[f] && (fg.Type == netlist.Xor || fg.Type == netlist.Xnor) {
				if leaves(f, count) {
					inv = !inv
				}
			} else {
				count[f]++
			}
		}
		return inv
	}

	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		if g.Type == netlist.Input || absorbed[id] {
			continue
		}
		var nid int
		var err error
		switch g.Type {
		case netlist.Xor, netlist.Xnor:
			count := map[int]int{}
			inv := leaves(id, count)
			var leafIDs []int
			for f, c := range count {
				if c%2 == 1 {
					leafIDs = append(leafIDs, mapping[f])
				}
			}
			sort.Ints(leafIDs)
			nid, err = b.xorBalanced(leafIDs, inv)
		case netlist.Lut:
			nid, err = b.lut(g.Table, mapped(mapping, g.Fanin))
		default:
			nid, err = b.gate(g.Type, mapped(mapping, g.Fanin)...)
		}
		if err != nil {
			return nil, err
		}
		mapping[id] = nid
	}
	outs := n.Outputs()
	names := n.OutputNames()
	for i, id := range outs {
		if err := b.out.MarkOutput(names[i], mapping[id]); err != nil {
			return nil, err
		}
	}
	return sweepDead(b.out)
}

func mapped(mapping []int, fanin []int) []int {
	out := make([]int, len(fanin))
	for i, f := range fanin {
		out[i] = mapping[f]
	}
	return out
}

// xorBalanced emits a balanced XOR tree over ids (new netlist IDs),
// inverting the result when inv is true.
func (b *builder) xorBalanced(ids []int, inv bool) (int, error) {
	if len(ids) == 0 {
		return b.constant(inv)
	}
	cur := append([]int(nil), ids...)
	for len(cur) > 1 {
		var next []int
		for i := 0; i+1 < len(cur); i += 2 {
			id, err := b.gate(netlist.Xor, cur[i], cur[i+1])
			if err != nil {
				return 0, err
			}
			next = append(next, id)
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	if inv {
		return b.not(cur[0])
	}
	return cur[0], nil
}

// MapStyle selects the target cell library flavor for TechMap.
type MapStyle int

const (
	// MapFuseInverters targets a rich library with AND2/OR2/XOR2 cells:
	// inverters fuse with a single-fanout AND/OR/XOR driver into
	// NAND/NOR/XNOR, everything else passes through. Never grows the
	// netlist; used by Synthesize.
	MapFuseInverters MapStyle = iota
	// MapNandHeavy additionally decomposes every remaining AND into
	// NAND+INV and OR into NOR+INV, producing the inverter-rich
	// post-mapping netlists (like the paper's Figure 2) at the price of
	// extra cells.
	MapNandHeavy
)

// TechMap maps the netlist onto a standard-cell-style library according to
// style. The result resembles the post-synthesis netlists of the paper's
// Figure 2 and Table III.
func TechMap(n *netlist.Netlist, style MapStyle) (*netlist.Netlist, error) {
	fanout := make([]int, n.NumGates())
	for id := 0; id < n.NumGates(); id++ {
		for _, f := range n.Gate(id).Fanin {
			fanout[f]++
		}
	}
	for _, id := range n.Outputs() {
		fanout[id]++
	}
	// fused[id] = true when the Not reading id absorbs it.
	fused := make([]bool, n.NumGates())
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		if g.Type != netlist.Not {
			continue
		}
		d := g.Fanin[0]
		switch n.Gate(d).Type {
		case netlist.And, netlist.Or, netlist.Xor:
			if fanout[d] == 1 {
				fused[d] = true
			}
		}
	}

	b := newBuilder(n.Name + "_map")
	mapping := make([]int, n.NumGates())
	for i := range mapping {
		mapping[i] = -1
	}
	for _, id := range n.Inputs() {
		nid, err := b.out.AddInput(n.NameOf(id))
		if err != nil {
			return nil, err
		}
		mapping[id] = nid
	}
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		if g.Type == netlist.Input || fused[id] {
			continue
		}
		var nid int
		var err error
		switch g.Type {
		case netlist.Not:
			d := g.Fanin[0]
			if fused[d] {
				dg := n.Gate(d)
				fin := mapped(mapping, dg.Fanin)
				switch dg.Type {
				case netlist.And:
					nid, err = b.gate(netlist.Nand, fin...)
				case netlist.Or:
					nid, err = b.gate(netlist.Nor, fin...)
				case netlist.Xor:
					nid, err = b.gate(netlist.Xnor, fin...)
				}
			} else {
				nid, err = b.gate(netlist.Not, mapping[d])
			}
		case netlist.And:
			if style == MapNandHeavy {
				nid, err = b.gate(netlist.Nand, mapped(mapping, g.Fanin)...)
				if err == nil {
					nid, err = b.gate(netlist.Not, nid)
				}
			} else {
				nid, err = b.gate(netlist.And, mapped(mapping, g.Fanin)...)
			}
		case netlist.Or:
			if style == MapNandHeavy {
				nid, err = b.gate(netlist.Nor, mapped(mapping, g.Fanin)...)
				if err == nil {
					nid, err = b.gate(netlist.Not, nid)
				}
			} else {
				nid, err = b.gate(netlist.Or, mapped(mapping, g.Fanin)...)
			}
		case netlist.Lut:
			nid, err = b.lut(g.Table, mapped(mapping, g.Fanin))
		default:
			nid, err = b.gate(g.Type, mapped(mapping, g.Fanin)...)
		}
		if err != nil {
			return nil, err
		}
		mapping[id] = nid
	}
	outs := n.Outputs()
	names := n.OutputNames()
	for i, id := range outs {
		if err := b.out.MarkOutput(names[i], mapping[id]); err != nil {
			return nil, err
		}
	}
	return sweepDead(b.out)
}

// Synthesize runs the full optimization pipeline used for the Table III
// experiments: strash/simplify, XOR balancing with mod-2 leaf cancellation,
// technology mapping, and a final cleanup.
func Synthesize(n *netlist.Netlist) (*netlist.Netlist, error) {
	return SynthesizeObserved(n, nil)
}

// SynthesizeObserved is Synthesize with every pass bracketed in a phase
// span on rec (opt.simplify, opt.balance-xor, opt.techmap, opt.sweep), each
// annotated with the equation count it produced. nil rec is valid.
func SynthesizeObserved(n *netlist.Netlist, rec *obs.Recorder) (*netlist.Netlist, error) {
	pass := func(name string, in *netlist.Netlist, f func(*netlist.Netlist) (*netlist.Netlist, error)) (*netlist.Netlist, error) {
		span := rec.StartSpan(name, map[string]int64{"eqns_in": int64(in.NumEquations())})
		out, err := f(in)
		span.End()
		if err == nil {
			rec.Metrics().Gauge("synth_eqns").Set(int64(out.NumEquations()))
		}
		return out, err
	}
	s, err := pass("opt.simplify", n, Simplify)
	if err != nil {
		return nil, err
	}
	s, err = pass("opt.balance-xor", s, BalanceXor)
	if err != nil {
		return nil, err
	}
	s, err = pass("opt.techmap", s, func(x *netlist.Netlist) (*netlist.Netlist, error) {
		return TechMap(x, MapFuseInverters)
	})
	if err != nil {
		return nil, err
	}
	s, err = pass("opt.sweep", s, Simplify)
	if err != nil {
		return nil, err
	}
	s.Name = n.Name + "_syn"
	return s, nil
}
