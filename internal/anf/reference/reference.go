// Package reference preserves the original string-keyed ANF implementation
// verbatim: Mono is the big-endian concatenation of variable IDs, Poly is a
// map[Mono]struct{} with a per-variable occurrence index of nested maps.
//
// It exists solely as a differential oracle for the packed intern-table core
// that replaced it in package anf. The oracle tests and the FuzzANFPacked
// target replay identical operation sequences against both implementations
// and require observable equality (term sets, occurrence counts, support,
// rendering). The code is intentionally frozen — fix bugs in package anf,
// not here; if the two cores disagree, the packed core is the suspect until
// a truth-table evaluation proves otherwise.
package reference

import (
	"fmt"
	"sort"
	"strings"
)

// Var identifies a Boolean variable. The mapping from netlist signals to
// Vars is owned by the caller (package rewrite uses gate IDs).
type Var uint32

// Mono is a monomial: a product of distinct variables, encoded as the
// concatenation of the 4-byte big-endian representations of its variables in
// ascending order. The empty string is the constant 1. The encoding keeps
// monomials directly usable as map keys with no hashing indirection.
type Mono string

// MonoOne is the constant-1 monomial.
const MonoOne Mono = ""

const varBytes = 4

func encodeVar(v Var) [varBytes]byte {
	return [varBytes]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

func decodeVar(s string) Var {
	return Var(s[0])<<24 | Var(s[1])<<16 | Var(s[2])<<8 | Var(s[3])
}

// NewMono builds a monomial from variables. Duplicates collapse
// (idempotence) and order is irrelevant.
func NewMono(vars ...Var) Mono {
	switch len(vars) {
	case 0:
		return MonoOne
	case 1:
		b := encodeVar(vars[0])
		return Mono(b[:])
	}
	vs := make([]Var, len(vars))
	copy(vs, vars)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	buf := make([]byte, 0, len(vs)*varBytes)
	var prev Var
	for i, v := range vs {
		if i > 0 && v == prev {
			continue
		}
		b := encodeVar(v)
		buf = append(buf, b[:]...)
		prev = v
	}
	return Mono(buf)
}

// Deg returns the number of variables in the monomial (0 for the constant 1).
func (m Mono) Deg() int { return len(m) / varBytes }

// IsOne reports whether m is the constant 1.
func (m Mono) IsOne() bool { return len(m) == 0 }

// Vars returns the variables of m in ascending order.
func (m Mono) Vars() []Var {
	out := make([]Var, 0, m.Deg())
	for i := 0; i < len(m); i += varBytes {
		out = append(out, decodeVar(string(m[i:i+varBytes])))
	}
	return out
}

// Contains reports whether variable v occurs in m.
func (m Mono) Contains(v Var) bool {
	n := m.Deg()
	i := sort.Search(n, func(i int) bool {
		return decodeVar(string(m[i*varBytes:i*varBytes+varBytes])) >= v
	})
	return i < n && decodeVar(string(m[i*varBytes:i*varBytes+varBytes])) == v
}

// Without returns m with variable v removed (m unchanged if v is absent).
func (m Mono) Without(v Var) Mono {
	for i := 0; i < len(m); i += varBytes {
		if decodeVar(string(m[i:i+varBytes])) == v {
			return m[:i] + m[i+varBytes:]
		}
	}
	return m
}

// MulMono returns the product of two monomials: the union of their variable
// sets (idempotence collapses shared variables).
func MulMono(a, b Mono) Mono {
	if a.IsOne() {
		return b
	}
	if b.IsOne() {
		return a
	}
	buf := make([]byte, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		va := decodeVar(string(a[i : i+varBytes]))
		vb := decodeVar(string(b[j : j+varBytes]))
		switch {
		case va < vb:
			buf = append(buf, a[i:i+varBytes]...)
			i += varBytes
		case va > vb:
			buf = append(buf, b[j:j+varBytes]...)
			j += varBytes
		default:
			buf = append(buf, a[i:i+varBytes]...)
			i += varBytes
			j += varBytes
		}
	}
	buf = append(buf, a[i:]...)
	buf = append(buf, b[j:]...)
	return Mono(buf)
}

// Eval evaluates the monomial under an assignment.
func (m Mono) Eval(assign func(Var) bool) bool {
	for i := 0; i < len(m); i += varBytes {
		if !assign(decodeVar(string(m[i : i+varBytes]))) {
			return false
		}
	}
	return true
}

// String renders the monomial for debugging, e.g. "v3·v7" or "1".
func (m Mono) String() string {
	if m.IsOne() {
		return "1"
	}
	parts := make([]string, 0, m.Deg())
	for _, v := range m.Vars() {
		parts = append(parts, fmt.Sprintf("v%d", v))
	}
	return strings.Join(parts, "·")
}

// Poly is a multivariate polynomial over GF(2) in ANF: the set of monomials
// with coefficient 1. The zero value is NOT usable; construct with NewPoly.
//
// Alongside the term set, a Poly maintains an occurrence index from each
// variable to the monomials containing it. The index makes ContainsVar O(1)
// and lets Substitute touch only the affected monomials instead of scanning
// the whole polynomial — the difference between quadratic and quartic total
// cost when rewriting the deep Montgomery netlists of Table II.
type Poly struct {
	t   map[Mono]struct{}
	occ map[Var]map[Mono]struct{}
}

// NewPoly returns the zero polynomial.
func NewPoly() Poly {
	return Poly{
		t:   make(map[Mono]struct{}),
		occ: make(map[Var]map[Mono]struct{}),
	}
}

// FromMonos builds a polynomial as the XOR of the given monomials
// (duplicates cancel in pairs).
func FromMonos(monos ...Mono) Poly {
	p := NewPoly()
	for _, m := range monos {
		p.Toggle(m)
	}
	return p
}

// Constant returns the polynomial 0 or 1.
func Constant(one bool) Poly {
	p := NewPoly()
	if one {
		p.Toggle(MonoOne)
	}
	return p
}

// Variable returns the polynomial consisting of the single variable v.
func Variable(v Var) Poly { return FromMonos(NewMono(v)) }

// Clone returns an independent copy of p.
func (p Poly) Clone() Poly {
	q := Poly{
		t:   make(map[Mono]struct{}, len(p.t)),
		occ: make(map[Var]map[Mono]struct{}, len(p.occ)),
	}
	for m := range p.t {
		q.t[m] = struct{}{}
	}
	for v, set := range p.occ {
		if len(set) == 0 {
			continue
		}
		cp := make(map[Mono]struct{}, len(set))
		for m := range set {
			cp[m] = struct{}{}
		}
		q.occ[v] = cp
	}
	return q
}

// Len returns the number of monomials.
func (p Poly) Len() int { return len(p.t) }

// IsZero reports whether p has no terms.
func (p Poly) IsZero() bool { return len(p.t) == 0 }

// IsOne reports whether p is the constant 1.
func (p Poly) IsOne() bool {
	if len(p.t) != 1 {
		return false
	}
	_, ok := p.t[MonoOne]
	return ok
}

// Contains reports whether monomial m has coefficient 1 in p.
func (p Poly) Contains(m Mono) bool {
	_, ok := p.t[m]
	return ok
}

// ContainsAll reports whether every monomial of ms has coefficient 1 in p —
// the membership test of Algorithm 2 ("if P_m exists in EXP_i").
func (p Poly) ContainsAll(ms []Mono) bool {
	for _, m := range ms {
		if !p.Contains(m) {
			return false
		}
	}
	return true
}

// Toggle XORs monomial m into p: inserts it if absent, cancels it if
// present (coefficient arithmetic mod 2).
func (p Poly) Toggle(m Mono) {
	if _, ok := p.t[m]; ok {
		delete(p.t, m)
		for i := 0; i < len(m); i += varBytes {
			v := decodeVar(string(m[i : i+varBytes]))
			if set := p.occ[v]; set != nil {
				delete(set, m)
				if len(set) == 0 {
					delete(p.occ, v)
				}
			}
		}
		return
	}
	p.t[m] = struct{}{}
	for i := 0; i < len(m); i += varBytes {
		v := decodeVar(string(m[i : i+varBytes]))
		set := p.occ[v]
		if set == nil {
			set = make(map[Mono]struct{})
			p.occ[v] = set
		}
		set[m] = struct{}{}
	}
}

// AddInPlace XORs q into p.
func (p Poly) AddInPlace(q Poly) {
	for m := range q.t {
		p.Toggle(m)
	}
}

// Add returns p + q (XOR of term sets).
func (p Poly) Add(q Poly) Poly {
	r := p.Clone()
	r.AddInPlace(q)
	return r
}

// Mul returns the product p·q, expanding term by term with idempotent
// monomial multiplication and mod-2 cancellation.
func (p Poly) Mul(q Poly) Poly {
	r := NewPoly()
	for a := range p.t {
		for b := range q.t {
			r.Toggle(MulMono(a, b))
		}
	}
	return r
}

// Monos returns the monomials of p in a deterministic (lexicographic by
// encoding, which is ascending-variable) order.
func (p Poly) Monos() []Mono {
	out := make([]Mono, 0, len(p.t))
	for m := range p.t {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return out[i] < out[j]
	})
	return out
}

// Equal reports whether p and q have identical term sets. Because ANF is
// canonical, this decides functional equivalence of the represented Boolean
// functions.
func (p Poly) Equal(q Poly) bool {
	if len(p.t) != len(q.t) {
		return false
	}
	for m := range p.t {
		if _, ok := q.t[m]; !ok {
			return false
		}
	}
	return true
}

// SupportVars returns the set of variables appearing in p, ascending.
func (p Poly) SupportVars() []Var {
	out := make([]Var, 0, len(p.occ))
	for v, set := range p.occ {
		if len(set) > 0 {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ContainsVar reports whether variable v occurs anywhere in p.
func (p Poly) ContainsVar(v Var) bool { return len(p.occ[v]) > 0 }

// VarOccurrences returns the number of monomials of p that contain v.
// It makes mod-2 cancellation accounting exact: substituting v by e turns
// the k = VarOccurrences(v) affected monomials into k·|e| expansion terms,
// so the expansion yields Len()-k+k·|e| terms before cancellation collapses
// colliding pairs.
func (p Poly) VarOccurrences(v Var) int { return len(p.occ[v]) }

// Substitute replaces every occurrence of variable v in p by the expression
// e, in place — one iteration of backward rewriting (lines 4–12 of
// Algorithm 1). Monomials produced by the expansion that collide with
// existing monomials cancel mod 2 immediately. e must not contain v (true
// for any acyclic netlist); Substitute panics otherwise, since the rewriting
// would not terminate.
func (p Poly) Substitute(v Var, e Poly) {
	if e.ContainsVar(v) {
		panic(fmt.Sprintf("anf: substitution expression for v%d contains v%d (combinational cycle?)", v, v))
	}
	set := p.occ[v]
	if len(set) == 0 {
		return
	}
	affected := make([]Mono, 0, len(set))
	for m := range set {
		affected = append(affected, m)
	}
	for _, m := range affected {
		p.Toggle(m) // all present: removes with index maintenance
	}
	for _, m := range affected {
		base := m.Without(v)
		for t := range e.t {
			p.Toggle(MulMono(base, t))
		}
	}
}

// Eval evaluates p under an assignment of its variables.
func (p Poly) Eval(assign func(Var) bool) bool {
	acc := false
	for m := range p.t {
		if m.Eval(assign) {
			acc = !acc
		}
	}
	return acc
}

// MaxDeg returns the largest monomial degree in p (0 for constants; -1 for
// the zero polynomial).
func (p Poly) MaxDeg() int {
	d := -1
	for m := range p.t {
		if md := m.Deg(); md > d {
			d = md
		}
	}
	return d
}

// String renders p deterministically, e.g. "v1·v2+v3+1"; "0" for zero.
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	monos := p.Monos()
	parts := make([]string, len(monos))
	for i, m := range monos {
		parts[i] = m.String()
	}
	return strings.Join(parts, "+")
}

// FromTruthTable computes the ANF of an arbitrary k-input Boolean function
// given its truth table, using the Möbius (binary zeta) transform. Bit i of
// the table is the function value when input j equals bit j of i. This is
// how gate algebraic models — including complex AOI/OAI cells and BLIF
// truth-table nodes — are derived uniformly instead of hand-coding Eq. (1)
// per gate type.
//
// inputs lists the variable for each function input; len(table) must be
// 1<<len(inputs). k up to 20 is supported (beyond that the table itself is
// the bottleneck).
func FromTruthTable(inputs []Var, table []bool) (Poly, error) {
	k := len(inputs)
	if k > 20 {
		return Poly{}, fmt.Errorf("anf: truth table with %d inputs too large", k)
	}
	if len(table) != 1<<uint(k) {
		return Poly{}, fmt.Errorf("anf: table has %d rows for %d inputs; want %d", len(table), k, 1<<uint(k))
	}
	coeff := make([]bool, len(table))
	copy(coeff, table)
	// In-place Möbius transform: coeff[S] = XOR of f(T) over T ⊆ S.
	for i := 0; i < k; i++ {
		bit := 1 << uint(i)
		for s := range coeff {
			if s&bit != 0 {
				coeff[s] = coeff[s] != coeff[s^bit]
			}
		}
	}
	p := NewPoly()
	for s, c := range coeff {
		if !c {
			continue
		}
		vars := make([]Var, 0, k)
		for i := 0; i < k; i++ {
			if s&(1<<uint(i)) != 0 {
				vars = append(vars, inputs[i])
			}
		}
		p.Toggle(NewMono(vars...))
	}
	return p, nil
}
