package anf

// monoTab interns the monomials of one Poly into dense uint32 IDs. The table
// is append-only: an ID, once assigned, remains valid for the life of the
// polynomial, which is what lets the term set be a bitset over IDs and lets
// occurrence lists be built exactly once per (monomial, variable) pair.
//
// Three parallel views of each monomial are kept:
//
//   - keys[id]: the packed big-endian encoding — identical to the public
//     Mono representation, so veneer conversions are free and the strings
//     double as the index map's keys (one allocation per distinct monomial,
//     ever);
//   - arena[off[id]:off[id+1]]: the ascending variable list in one shared
//     backing array, iterated by the hot merge loops without decoding;
//   - mask[id]: a 64-bit signature (bit v&63 per variable) for O(1)
//     rejection in per-monomial variable membership tests.
//
// Products are memoized in mulMemo keyed by the unordered ID pair: the
// substitution loop multiplies the same (base, term) pairs over and over as
// cancellation churns the frontier, and a memo hit costs one uint64 map
// lookup instead of a merge + intern.
type monoTab struct {
	index   map[string]uint32 // packed encoding -> ID
	keys    []string          // ID -> packed encoding (shares index key memory)
	off     []uint32          // ID -> arena offset; len = count+1
	arena   []Var             // concatenated ascending variable lists
	mask    []uint64          // ID -> variable signature
	mulMemo map[uint64]uint32 // (loID<<32 | hiID) -> product ID; nil until first use
	scratch []Var             // merge buffer, reused across calls
	keyBuf  []byte            // packing buffer, reused across calls
}

// idOne is the ID of the constant-1 monomial in every table.
const idOne uint32 = 0

func newMonoTab() *monoTab {
	t := &monoTab{
		index: make(map[string]uint32, 16),
		keys:  make([]string, 1, 16),
		off:   make([]uint32, 2, 17),
		mask:  make([]uint64, 1, 16),
	}
	t.index[""] = idOne
	return t
}

// count returns the number of interned monomials (live or not).
func (t *monoTab) count() int { return len(t.keys) }

// vars returns the ascending variable list of id, aliasing the arena.
func (t *monoTab) vars(id uint32) []Var { return t.arena[t.off[id]:t.off[id+1]] }

// deg returns the degree of id.
func (t *monoTab) deg(id uint32) int { return int(t.off[id+1] - t.off[id]) }

// add interns a new key (packed encoding, not yet present) and returns its ID.
func (t *monoTab) add(key string) uint32 {
	id := uint32(len(t.keys))
	t.keys = append(t.keys, key)
	var m uint64
	for i := 0; i < len(key); i += varBytes {
		v := decodeVar(key[i : i+varBytes])
		t.arena = append(t.arena, v)
		m |= 1 << (uint32(v) & 63)
	}
	t.off = append(t.off, uint32(len(t.arena)))
	t.mask = append(t.mask, m)
	t.index[key] = id
	return id
}

// internKey interns a packed encoding (as produced by NewMono).
func (t *monoTab) internKey(key string) uint32 {
	if id, ok := t.index[key]; ok {
		return id
	}
	return t.add(key)
}

// internVars interns an ascending duplicate-free variable list. The lookup
// goes through keyBuf so a hit costs zero allocations.
func (t *monoTab) internVars(vs []Var) uint32 {
	if len(vs) == 0 {
		return idOne
	}
	buf := t.keyBuf[:0]
	for _, v := range vs {
		buf = append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	t.keyBuf = buf
	if id, ok := t.index[string(buf)]; ok {
		return id
	}
	return t.add(string(buf))
}

// contains reports whether variable v occurs in monomial id.
func (t *monoTab) contains(id uint32, v Var) bool {
	if t.mask[id]&(1<<(uint32(v)&63)) == 0 {
		return false
	}
	for _, w := range t.vars(id) {
		if w >= v {
			return w == v
		}
	}
	return false
}

// mul returns the ID of the idempotent product of monomials a and b.
func (t *monoTab) mul(a, b uint32) uint32 {
	if a == idOne || a == b {
		return b
	}
	if b == idOne {
		return a
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	memoKey := uint64(lo)<<32 | uint64(hi)
	if t.mulMemo == nil {
		t.mulMemo = make(map[uint64]uint32, 64)
	} else if id, ok := t.mulMemo[memoKey]; ok {
		return id
	}
	va, vb := t.vars(a), t.vars(b)
	out := t.scratch[:0]
	i, j := 0, 0
	for i < len(va) && j < len(vb) {
		switch {
		case va[i] < vb[j]:
			out = append(out, va[i])
			i++
		case va[i] > vb[j]:
			out = append(out, vb[j])
			j++
		default:
			out = append(out, va[i])
			i++
			j++
		}
	}
	out = append(out, va[i:]...)
	out = append(out, vb[j:]...)
	t.scratch = out
	id := t.internVars(out)
	t.mulMemo[memoKey] = id
	return id
}

// without returns the ID of monomial id with variable v removed (id itself
// if v is absent).
func (t *monoTab) without(id uint32, v Var) uint32 {
	if !t.contains(id, v) {
		return id
	}
	vs := t.vars(id)
	out := t.scratch[:0]
	for _, w := range vs {
		if w != v {
			out = append(out, w)
		}
	}
	t.scratch = out
	return t.internVars(out)
}

// clone returns an independent deep copy of the table.
func (t *monoTab) clone() *monoTab {
	c := &monoTab{
		index: make(map[string]uint32, len(t.index)),
		keys:  append([]string(nil), t.keys...),
		off:   append([]uint32(nil), t.off...),
		arena: append([]Var(nil), t.arena...),
		mask:  append([]uint64(nil), t.mask...),
	}
	for k, v := range t.index {
		c.index[k] = v
	}
	if len(t.mulMemo) > 0 {
		c.mulMemo = make(map[uint64]uint32, len(t.mulMemo))
		for k, v := range t.mulMemo {
			c.mulMemo[k] = v
		}
	}
	return c
}
