package anf_test

import (
	"testing"

	"github.com/galoisfield/gfre/internal/anf"
)

// TestSteadyStateXORMergeZeroAllocs pins the packed core's headline
// property: once a polynomial's working set is interned (tables sized,
// occurrence lists built), the XOR-merge path — Toggle and AddInPlace —
// performs no heap allocation at all. Toggling is pure bit arithmetic and
// merge translation is an interned-key map hit, so cancellation churn in
// the rewriting loop generates zero garbage. A regression here shows up as
// GC pressure on every large-m extraction before it shows up on any wall
// clock, which is why it is a test and not just a benchmark number.
func TestSteadyStateXORMergeZeroAllocs(t *testing.T) {
	p := anf.NewPoly()
	q := anf.FromMonos(
		anf.NewMono(1), anf.NewMono(2), anf.NewMono(1, 2),
		anf.NewMono(2, 3), anf.NewMono(1, 3, 4), anf.NewMono(4, 5, 6),
		anf.MonoOne,
	)
	m := anf.NewMono(3, 5, 7)
	// Warm up: intern q's monomials and m into p's table, size the bitset,
	// build the occurrence lists.
	p.AddInPlace(q)
	p.AddInPlace(q)
	p.Toggle(m)
	p.Toggle(m)

	if avg := testing.AllocsPerRun(200, func() {
		p.AddInPlace(q) // inserts all terms
		p.AddInPlace(q) // cancels them again
	}); avg != 0 {
		t.Errorf("steady-state AddInPlace allocates %.1f objects per merge pair, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		p.Toggle(m)
		p.Toggle(m)
	}); avg != 0 {
		t.Errorf("steady-state Toggle allocates %.1f objects per toggle pair, want 0", avg)
	}
}

// BenchmarkXORMerge measures the steady-state merge path the zero-alloc
// guard above protects: one full insert+cancel round trip of a 7-term
// operand.
func BenchmarkXORMerge(b *testing.B) {
	p := anf.NewPoly()
	q := anf.FromMonos(
		anf.NewMono(1), anf.NewMono(2), anf.NewMono(1, 2),
		anf.NewMono(2, 3), anf.NewMono(1, 3, 4), anf.NewMono(4, 5, 6),
		anf.MonoOne,
	)
	p.AddInPlace(q)
	p.AddInPlace(q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AddInPlace(q)
		p.AddInPlace(q)
	}
}
