// Package anf implements multivariate polynomial algebra over GF(2) in
// algebraic normal form (ANF), the computer-algebra core of the backward
// rewriting technique (Algorithm 1 of the paper).
//
// A polynomial is an XOR (sum mod 2) of monomials; a monomial is a product
// of distinct Boolean variables (idempotence x² = x is built into the
// representation, i.e. we compute in the quotient by the ideal
// J₀ = ⟨x² − x⟩ that the paper's formulation uses). The empty monomial is
// the constant 1. ANF is canonical: two polynomials represent the same
// Boolean function iff they have identical term sets, which is what makes
// the golden-model equivalence check in package extract a complete decision
// procedure.
//
// Internally each Poly interns its monomials into dense uint32 IDs (see
// intern.go) and keeps the term set as a bitset over those IDs, so mod-2
// cancellation — the step that keeps GF(2^m) rewriting from exploding
// (lines 7–11 of Algorithm 1) — is a single-word XOR, and the substitution
// loop runs without per-term heap allocation. The string-based Mono type
// remains the public currency for individual monomials; it doubles as the
// intern table's key encoding, so converting between the two is free.
// The previous map-of-strings implementation is preserved unmodified in
// internal/anf/reference as a differential testing oracle.
package anf

import (
	"fmt"
	"sort"
	"strings"
)

// Var identifies a Boolean variable. The mapping from netlist signals to
// Vars is owned by the caller (package rewrite uses gate IDs).
type Var uint32

// Mono is a monomial: a product of distinct variables, encoded as the
// concatenation of the 4-byte big-endian representations of its variables in
// ascending order. The empty string is the constant 1. The encoding keeps
// monomials directly usable as intern-table keys with no hashing
// indirection.
type Mono string

// MonoOne is the constant-1 monomial.
const MonoOne Mono = ""

const varBytes = 4

func encodeVar(v Var) [varBytes]byte {
	return [varBytes]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

func decodeVar(s string) Var {
	return Var(s[0])<<24 | Var(s[1])<<16 | Var(s[2])<<8 | Var(s[3])
}

// NewMono builds a monomial from variables. Duplicates collapse
// (idempotence) and order is irrelevant.
func NewMono(vars ...Var) Mono {
	switch len(vars) {
	case 0:
		return MonoOne
	case 1:
		b := encodeVar(vars[0])
		return Mono(b[:])
	}
	vs := make([]Var, len(vars))
	copy(vs, vars)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	buf := make([]byte, 0, len(vs)*varBytes)
	var prev Var
	for i, v := range vs {
		if i > 0 && v == prev {
			continue
		}
		b := encodeVar(v)
		buf = append(buf, b[:]...)
		prev = v
	}
	return Mono(buf)
}

// Deg returns the number of variables in the monomial (0 for the constant 1).
func (m Mono) Deg() int { return len(m) / varBytes }

// IsOne reports whether m is the constant 1.
func (m Mono) IsOne() bool { return len(m) == 0 }

// Vars returns the variables of m in ascending order.
func (m Mono) Vars() []Var {
	out := make([]Var, 0, m.Deg())
	for i := 0; i < len(m); i += varBytes {
		out = append(out, decodeVar(string(m[i:i+varBytes])))
	}
	return out
}

// Contains reports whether variable v occurs in m.
func (m Mono) Contains(v Var) bool {
	n := m.Deg()
	i := sort.Search(n, func(i int) bool {
		return decodeVar(string(m[i*varBytes:i*varBytes+varBytes])) >= v
	})
	return i < n && decodeVar(string(m[i*varBytes:i*varBytes+varBytes])) == v
}

// Without returns m with variable v removed (m unchanged if v is absent).
func (m Mono) Without(v Var) Mono {
	for i := 0; i < len(m); i += varBytes {
		if decodeVar(string(m[i:i+varBytes])) == v {
			return m[:i] + m[i+varBytes:]
		}
	}
	return m
}

// MulMono returns the product of two monomials: the union of their variable
// sets (idempotence collapses shared variables).
func MulMono(a, b Mono) Mono {
	if a.IsOne() {
		return b
	}
	if b.IsOne() {
		return a
	}
	buf := make([]byte, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		va := decodeVar(string(a[i : i+varBytes]))
		vb := decodeVar(string(b[j : j+varBytes]))
		switch {
		case va < vb:
			buf = append(buf, a[i:i+varBytes]...)
			i += varBytes
		case va > vb:
			buf = append(buf, b[j:j+varBytes]...)
			j += varBytes
		default:
			buf = append(buf, a[i:i+varBytes]...)
			i += varBytes
			j += varBytes
		}
	}
	buf = append(buf, a[i:]...)
	buf = append(buf, b[j:]...)
	return Mono(buf)
}

// Eval evaluates the monomial under an assignment.
func (m Mono) Eval(assign func(Var) bool) bool {
	for i := 0; i < len(m); i += varBytes {
		if !assign(decodeVar(string(m[i : i+varBytes]))) {
			return false
		}
	}
	return true
}

// String renders the monomial for debugging, e.g. "v3·v7" or "1".
func (m Mono) String() string {
	if m.IsOne() {
		return "1"
	}
	parts := make([]string, 0, m.Deg())
	for _, v := range m.Vars() {
		parts = append(parts, fmt.Sprintf("v%d", v))
	}
	return strings.Join(parts, "·")
}

// monoLess is the canonical monomial order used by Monos and String:
// ascending degree, then lexicographic on the packed encoding (which is
// ascending-variable order).
func monoLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}
