package anf

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewMonoSortsAndDedupes(t *testing.T) {
	if NewMono(3, 1, 2) != NewMono(1, 2, 3) {
		t.Error("monomials should be order-insensitive")
	}
	if NewMono(5, 5) != NewMono(5) {
		t.Error("x² should collapse to x (idempotence)")
	}
	if NewMono() != MonoOne {
		t.Error("empty monomial should be the constant 1")
	}
	if got := NewMono(7, 2, 7, 2).Vars(); !reflect.DeepEqual(got, []Var{2, 7}) {
		t.Errorf("Vars = %v", got)
	}
}

func TestMonoContainsWithout(t *testing.T) {
	m := NewMono(1, 300, 70000)
	for _, v := range []Var{1, 300, 70000} {
		if !m.Contains(v) {
			t.Errorf("Contains(%d) = false", v)
		}
	}
	for _, v := range []Var{0, 2, 299, 301, 1 << 20} {
		if m.Contains(v) {
			t.Errorf("Contains(%d) = true", v)
		}
	}
	if got := m.Without(300); got != NewMono(1, 70000) {
		t.Errorf("Without(300) = %v", got)
	}
	if got := m.Without(999); got != m {
		t.Errorf("Without(absent) changed the monomial: %v", got)
	}
	if got := NewMono(5).Without(5); got != MonoOne {
		t.Errorf("Without last var = %v, want 1", got)
	}
}

func TestMulMono(t *testing.T) {
	a, b := NewMono(1, 3), NewMono(2, 3)
	if got := MulMono(a, b); got != NewMono(1, 2, 3) {
		t.Errorf("v1v3 · v2v3 = %v", got)
	}
	if got := MulMono(MonoOne, a); got != a {
		t.Errorf("1 · m = %v", got)
	}
	if got := MulMono(a, MonoOne); got != a {
		t.Errorf("m · 1 = %v", got)
	}
}

func TestMonoDegAndString(t *testing.T) {
	if MonoOne.Deg() != 0 || MonoOne.String() != "1" {
		t.Errorf("constant monomial: deg %d, %q", MonoOne.Deg(), MonoOne.String())
	}
	m := NewMono(2, 9)
	if m.Deg() != 2 || m.String() != "v2·v9" {
		t.Errorf("deg %d, %q", m.Deg(), m.String())
	}
}

func TestToggleCancels(t *testing.T) {
	p := NewPoly()
	m := NewMono(1, 2)
	p.Toggle(m)
	if !p.Contains(m) || p.Len() != 1 {
		t.Fatal("toggle insert failed")
	}
	p.Toggle(m)
	if !p.IsZero() {
		t.Fatal("toggle should cancel mod 2")
	}
}

func TestAddXORSemantics(t *testing.T) {
	p := FromMonos(NewMono(1), NewMono(2))
	q := FromMonos(NewMono(2), NewMono(3))
	r := p.Add(q)
	want := FromMonos(NewMono(1), NewMono(3))
	if !r.Equal(want) {
		t.Errorf("(v1+v2)+(v2+v3) = %v", r)
	}
	// Add must not mutate operands.
	if p.Len() != 2 || q.Len() != 2 {
		t.Error("Add mutated an operand")
	}
}

func TestMulExpandsWithIdempotence(t *testing.T) {
	// (a+b)(a+b) = a² + 2ab + b² = a + b over GF(2) with idempotence.
	p := FromMonos(NewMono(1), NewMono(2))
	if got := p.Mul(p); !got.Equal(p) {
		t.Errorf("(a+b)² = %v, want a+b", got)
	}
	// (a+1)(b+1) = ab + a + b + 1.
	q := FromMonos(NewMono(1), MonoOne).Mul(FromMonos(NewMono(2), MonoOne))
	want := FromMonos(NewMono(1, 2), NewMono(1), NewMono(2), MonoOne)
	if !q.Equal(want) {
		t.Errorf("(a+1)(b+1) = %v", q)
	}
}

func TestEvalGateModels(t *testing.T) {
	// Eq. (1) of the paper: check each model against Boolean semantics.
	a, b := Var(1), Var(2)
	and := FromMonos(NewMono(a, b))
	or := FromMonos(NewMono(a), NewMono(b), NewMono(a, b))
	xor := FromMonos(NewMono(a), NewMono(b))
	not := FromMonos(MonoOne, NewMono(a))
	for _, av := range []bool{false, true} {
		for _, bv := range []bool{false, true} {
			assign := func(v Var) bool {
				if v == a {
					return av
				}
				return bv
			}
			if and.Eval(assign) != (av && bv) {
				t.Errorf("AND model wrong at %v,%v", av, bv)
			}
			if or.Eval(assign) != (av || bv) {
				t.Errorf("OR model wrong at %v,%v", av, bv)
			}
			if xor.Eval(assign) != (av != bv) {
				t.Errorf("XOR model wrong at %v,%v", av, bv)
			}
			if not.Eval(assign) != !av {
				t.Errorf("NOT model wrong at %v", av)
			}
		}
	}
}

func TestSubstituteBasic(t *testing.T) {
	// p = v3·v1 + v3 + v2; substitute v3 = v1+v2:
	// (v1+v2)v1 + (v1+v2) + v2 = v1 + v1v2 + v1 + v2 + v2 = v1v2.
	p := FromMonos(NewMono(3, 1), NewMono(3), NewMono(2))
	p.Substitute(3, FromMonos(NewMono(1), NewMono(2)))
	want := FromMonos(NewMono(1, 2))
	if !p.Equal(want) {
		t.Errorf("substitution result = %v, want %v", p, want)
	}
}

func TestSubstituteAbsentVarNoop(t *testing.T) {
	p := FromMonos(NewMono(1), MonoOne)
	q := p.Clone()
	p.Substitute(9, FromMonos(NewMono(2)))
	if !p.Equal(q) {
		t.Error("substituting an absent variable changed the polynomial")
	}
}

func TestSubstituteConstant(t *testing.T) {
	// p = v1·v2 + v2; v2 := 1 gives v1 + 1.
	p := FromMonos(NewMono(1, 2), NewMono(2))
	p.Substitute(2, Constant(true))
	if want := FromMonos(NewMono(1), MonoOne); !p.Equal(want) {
		t.Errorf("v2:=1 gives %v", p)
	}
	// v1 := 0 gives 1.
	p.Substitute(1, Constant(false))
	if !p.IsOne() {
		t.Errorf("v1:=0 gives %v", p)
	}
}

func TestSubstitutePanicsOnSelfReference(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-referential substitution should panic")
		}
	}()
	p := FromMonos(NewMono(1))
	p.Substitute(1, FromMonos(NewMono(1), NewMono(2)))
}

func TestPaperExample1Iteration(t *testing.T) {
	// Figure 3 of the paper, z1 thread, 4th iteration: substituting
	// p0 = 1 + a0b1 into (p0+p1+s2)x + x produces the monomial 2x which is
	// eliminated mod 2. We model the coefficient-of-x expression directly:
	// F = p0 + p1 + s2 + 1 with p0 := a0·b1 + 1 gives a0b1 + p1 + s2
	// (the two constants cancel — the "2x" elimination).
	const (
		a0, b1, p0, p1, s2 = 1, 2, 3, 4, 5
	)
	f := FromMonos(NewMono(p0), NewMono(p1), NewMono(s2), MonoOne)
	f.Substitute(p0, FromMonos(NewMono(a0, b1), MonoOne))
	want := FromMonos(NewMono(a0, b1), NewMono(p1), NewMono(s2))
	if !f.Equal(want) {
		t.Errorf("after substitution: %v, want %v", f, want)
	}
}

func TestSupportVarsAndContainsVar(t *testing.T) {
	p := FromMonos(NewMono(5, 2), NewMono(9), MonoOne)
	if got := p.SupportVars(); !reflect.DeepEqual(got, []Var{2, 5, 9}) {
		t.Errorf("SupportVars = %v", got)
	}
	if !p.ContainsVar(5) || p.ContainsVar(4) {
		t.Error("ContainsVar wrong")
	}
}

func TestVarOccurrences(t *testing.T) {
	p := FromMonos(NewMono(1, 2), NewMono(1, 3), NewMono(4), MonoOne)
	if got := p.VarOccurrences(1); got != 2 {
		t.Errorf("VarOccurrences(1) = %d, want 2", got)
	}
	if got := p.VarOccurrences(4); got != 1 {
		t.Errorf("VarOccurrences(4) = %d, want 1", got)
	}
	if got := p.VarOccurrences(7); got != 0 {
		t.Errorf("VarOccurrences(7) = %d, want 0", got)
	}
	// Toggling a monomial out must drop its contribution from the index.
	p.Toggle(NewMono(1, 2))
	if got := p.VarOccurrences(1); got != 1 {
		t.Errorf("after toggle: VarOccurrences(1) = %d, want 1", got)
	}
}

func TestMonosDeterministicOrder(t *testing.T) {
	p := FromMonos(NewMono(2), NewMono(1), NewMono(1, 2), MonoOne)
	var prev []Mono
	for i := 0; i < 10; i++ {
		cur := p.Monos()
		if i > 0 && !reflect.DeepEqual(cur, prev) {
			t.Fatal("Monos order is not deterministic")
		}
		prev = cur
	}
	if p.String() != "1+v1+v2+v1·v2" {
		t.Errorf("String = %q", p.String())
	}
}

func TestMaxDeg(t *testing.T) {
	if got := NewPoly().MaxDeg(); got != -1 {
		t.Errorf("zero MaxDeg = %d", got)
	}
	if got := Constant(true).MaxDeg(); got != 0 {
		t.Errorf("const MaxDeg = %d", got)
	}
	if got := FromMonos(NewMono(1), NewMono(2, 3, 4)).MaxDeg(); got != 3 {
		t.Errorf("MaxDeg = %d", got)
	}
}

func TestContainsAll(t *testing.T) {
	p := FromMonos(NewMono(1, 2), NewMono(3, 4), NewMono(5))
	if !p.ContainsAll([]Mono{NewMono(1, 2), NewMono(3, 4)}) {
		t.Error("ContainsAll false negative")
	}
	if p.ContainsAll([]Mono{NewMono(1, 2), NewMono(9)}) {
		t.Error("ContainsAll false positive")
	}
	if !p.ContainsAll(nil) {
		t.Error("empty set should be contained")
	}
}

func TestFromTruthTable(t *testing.T) {
	a, b, c := Var(1), Var(2), Var(3)
	// 2-input AND: table indexed by (b<<1)|a.
	and, err := FromTruthTable([]Var{a, b}, []bool{false, false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if !and.Equal(FromMonos(NewMono(a, b))) {
		t.Errorf("AND ANF = %v", and)
	}
	// 2-input OR -> a + b + ab.
	or, err := FromTruthTable([]Var{a, b}, []bool{false, true, true, true})
	if err != nil {
		t.Fatal(err)
	}
	if !or.Equal(FromMonos(NewMono(a), NewMono(b), NewMono(a, b))) {
		t.Errorf("OR ANF = %v", or)
	}
	// AOI21: !(a·b + c).
	tbl := make([]bool, 8)
	for i := 0; i < 8; i++ {
		av, bv, cv := i&1 != 0, i&2 != 0, i&4 != 0
		tbl[i] = !((av && bv) || cv)
	}
	aoi, err := FromTruthTable([]Var{a, b, c}, tbl)
	if err != nil {
		t.Fatal(err)
	}
	// Verify by exhaustive evaluation.
	for i := 0; i < 8; i++ {
		av, bv, cv := i&1 != 0, i&2 != 0, i&4 != 0
		assign := func(v Var) bool {
			switch v {
			case a:
				return av
			case b:
				return bv
			default:
				return cv
			}
		}
		if aoi.Eval(assign) != tbl[i] {
			t.Errorf("AOI21 ANF wrong at row %d", i)
		}
	}
}

func TestFromTruthTableErrors(t *testing.T) {
	if _, err := FromTruthTable([]Var{1}, []bool{true}); err == nil {
		t.Error("wrong table size should fail")
	}
	if _, err := FromTruthTable(make([]Var, 21), make([]bool, 1<<21)); err == nil {
		t.Error("21 inputs should fail")
	}
}

// --- randomized / property tests -------------------------------------------

// randPoly builds a random polynomial over variables 1..nVars with up to
// maxTerms monomials.
func randPoly(r *rand.Rand, nVars, maxTerms int) Poly {
	p := NewPoly()
	for i := 0; i < r.Intn(maxTerms+1); i++ {
		var vars []Var
		for v := 1; v <= nVars; v++ {
			if r.Intn(2) == 1 {
				vars = append(vars, Var(v))
			}
		}
		p.Toggle(NewMono(vars...))
	}
	return p
}

func assignFromMask(mask int) func(Var) bool {
	return func(v Var) bool { return mask&(1<<uint(v-1)) != 0 }
}

func TestPropSubstitutionPreservesFunction(t *testing.T) {
	// For random p over v1..v6 and random e over v1..v5 (not containing v6),
	// substituting v6 := e must preserve the Boolean function where v6 is
	// bound to e's value. This is the semantic core of Theorem 1.
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		p := randPoly(r, 6, 10)
		e := randPoly(r, 5, 6)
		q := p.Clone()
		q.Substitute(6, e)
		if q.ContainsVar(6) {
			t.Fatal("substitution left the variable behind")
		}
		for mask := 0; mask < 1<<5; mask++ {
			base := assignFromMask(mask)
			ev := e.Eval(base)
			full := func(v Var) bool {
				if v == 6 {
					return ev
				}
				return base(v)
			}
			if p.Eval(full) != q.Eval(base) {
				t.Fatalf("trial %d mask %d: substitution changed function\np=%v\ne=%v\nq=%v",
					trial, mask, p, e, q)
			}
		}
	}
}

func TestPropMulMatchesEval(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := randPoly(r, 5, 8)
		q := randPoly(r, 5, 8)
		prod := p.Mul(q)
		for mask := 0; mask < 1<<5; mask++ {
			a := assignFromMask(mask)
			if prod.Eval(a) != (p.Eval(a) && q.Eval(a)) {
				t.Fatalf("Mul semantics wrong: p=%v q=%v mask=%d", p, q, mask)
			}
		}
	}
}

func TestPropAddMatchesEval(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		p := randPoly(r, 5, 8)
		q := randPoly(r, 5, 8)
		sum := p.Add(q)
		for mask := 0; mask < 1<<5; mask++ {
			a := assignFromMask(mask)
			if sum.Eval(a) != (p.Eval(a) != q.Eval(a)) {
				t.Fatalf("Add semantics wrong: p=%v q=%v", p, q)
			}
		}
	}
}

func TestPropTruthTableRoundTrip(t *testing.T) {
	// ANF from a random truth table must evaluate back to the table
	// (canonicity of ANF).
	f := func(tbl8 uint8) bool {
		inputs := []Var{1, 2, 3}
		table := make([]bool, 8)
		for i := range table {
			table[i] = tbl8&(1<<uint(i)) != 0
		}
		p, err := FromTruthTable(inputs, table)
		if err != nil {
			return false
		}
		for i := range table {
			if p.Eval(assignFromMask(i)) != table[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMonoMulCommutativeAssociative(t *testing.T) {
	mono := func(mask uint16) Mono {
		var vars []Var
		for i := 0; i < 16; i++ {
			if mask&(1<<uint(i)) != 0 {
				vars = append(vars, Var(i+1))
			}
		}
		return NewMono(vars...)
	}
	comm := func(a, b uint16) bool { return MulMono(mono(a), mono(b)) == MulMono(mono(b), mono(a)) }
	if err := quick.Check(comm, nil); err != nil {
		t.Error("mono mul commutativity:", err)
	}
	assoc := func(a, b, c uint16) bool {
		return MulMono(MulMono(mono(a), mono(b)), mono(c)) == MulMono(mono(a), MulMono(mono(b), mono(c)))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error("mono mul associativity:", err)
	}
	idem := func(a uint16) bool { return MulMono(mono(a), mono(a)) == mono(a) }
	if err := quick.Check(idem, nil); err != nil {
		t.Error("mono mul idempotence:", err)
	}
}

func BenchmarkSubstitute(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := randPoly(r, 12, 200)
		p.Substitute(12, randPoly(r, 11, 4))
	}
}

func TestPropOccurrenceIndexConsistency(t *testing.T) {
	// The occurrence index behind ContainsVar/SupportVars/Substitute must
	// stay consistent with the term set through arbitrary operation
	// sequences (toggles, adds, substitutions).
	r := rand.New(rand.NewSource(606))
	for trial := 0; trial < 120; trial++ {
		p := NewPoly()
		for step := 0; step < 60; step++ {
			switch r.Intn(4) {
			case 0, 1:
				var vars []Var
				for v := 1; v <= 6; v++ {
					if r.Intn(2) == 1 {
						vars = append(vars, Var(v))
					}
				}
				p.Toggle(NewMono(vars...))
			case 2:
				p.AddInPlace(randPoly(r, 6, 4))
			case 3:
				v := Var(1 + r.Intn(6))
				e := randPoly(r, 6, 3)
				if e.ContainsVar(v) {
					continue
				}
				p.Substitute(v, e)
			}
		}
		// Cross-check the index against a brute-force scan.
		inSupport := map[Var]bool{}
		for _, m := range p.Monos() {
			for _, v := range m.Vars() {
				inSupport[v] = true
			}
		}
		for v := Var(1); v <= 6; v++ {
			if p.ContainsVar(v) != inSupport[v] {
				t.Fatalf("trial %d: index says ContainsVar(%d)=%v, scan says %v\np=%v",
					trial, v, p.ContainsVar(v), inSupport[v], p)
			}
		}
		if got := p.SupportVars(); len(got) != len(inSupport) {
			t.Fatalf("trial %d: SupportVars=%v, scan=%v", trial, got, inSupport)
		}
	}
}

func TestPropCloneIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(707))
	for trial := 0; trial < 50; trial++ {
		p := randPoly(r, 6, 10)
		q := p.Clone()
		// Mutate the clone heavily; the original must be untouched.
		snapshot := p.String()
		q.AddInPlace(randPoly(r, 6, 8))
		v := Var(1 + r.Intn(6))
		e := randPoly(r, 6, 3)
		if !e.ContainsVar(v) {
			q.Substitute(v, e)
		}
		if p.String() != snapshot {
			t.Fatalf("trial %d: mutating a clone changed the original", trial)
		}
	}
}
