package anf_test

import (
	"testing"

	"github.com/galoisfield/gfre/internal/anf"
	ref "github.com/galoisfield/gfre/internal/anf/reference"
)

// FuzzANFPacked interprets the input as an operation program executed
// against both the packed core and the string-keyed reference core, and
// fails on any observable divergence. Opcodes consume two bytes: the low
// three bits of the first select the operation, the second parameterizes it
// (monomial masks over variables 1..8, substitution targets, evaluation
// assignments). Committed corpus seeds live in testdata/fuzz/FuzzANFPacked;
// CI runs this target in the fuzz-smoke job.
func FuzzANFPacked(f *testing.F) {
	f.Add([]byte{0x00, 0x07, 0x00, 0x15, 0x01, 0x33, 0x05, 0xff})
	f.Add([]byte{0x03, 0x81, 0x03, 0x42, 0x02, 0x18, 0x04, 0x3c, 0x05, 0x00})
	f.Add([]byte{0x00, 0xaa, 0x01, 0x55, 0x02, 0x0f, 0x03, 0xf0, 0x06, 0x11, 0x05, 0x99})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 128 {
			data = data[:128]
		}
		pr := newPair()
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]&7, data[i+1]
			switch op {
			case 0, 1: // toggle a monomial (two opcodes: toggles dominate)
				pr.toggle(uint16(arg))
			case 2: // XOR-merge a small polynomial derived from arg
				o := newPair()
				o.toggle(uint16(arg))
				o.toggle(uint16(arg >> 1))
				o.toggle(uint16(arg) << 1 & 0xff)
				pr.add(o)
			case 3: // multiply by a small polynomial, bounded to stay cheap
				if pr.p.Len() <= 16 {
					o := newPair()
					o.toggle(uint16(arg & 0x0f))
					o.toggle(uint16(arg >> 4))
					pr = pr.mul(o)
				}
			case 4: // substitute v := e when acyclic
				v := int(arg&7) + 1
				e := newPair()
				e.toggle(uint16(arg >> 3))
				pe, qe := e.p.ContainsVar(anf.Var(v)), e.q.ContainsVar(ref.Var(v))
				if pe != qe {
					t.Fatalf("op %d: ContainsVar(v%d) packed=%v reference=%v", i, v, pe, qe)
				}
				if !pe {
					pr.substitute(v, e)
				}
			case 5: // evaluate under the assignment arg
				mustEvalMatch(t, "fuzz-eval", pr, uint32(arg)<<1)
			case 6: // clone isolation
				cl := pr.clone()
				cl.toggle(uint16(arg))
				mustMatch(t, "fuzz-clone", cl)
			case 7: // self-add: p + p = 0 in both cores
				cl := pr.clone()
				cl.p.AddInPlace(cl.p)
				cl.q.AddInPlace(cl.q)
				if !cl.p.IsZero() || !cl.q.IsZero() {
					t.Fatalf("op %d: p+p not zero (packed=%v reference=%v)", i, cl.p, cl.q)
				}
			}
			mustMatch(t, "fuzz-step", pr)
		}
	})
}
