package anf

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Poly is a multivariate polynomial over GF(2) in ANF: the set of monomials
// with coefficient 1. The zero value is readable (it is the zero polynomial)
// but not writable; construct with NewPoly.
//
// The term set is a bitset over the IDs of the polynomial's private intern
// table (see monoTab): Toggle is a single-word XOR, and AddInPlace merges
// word by word once the operand's monomials are translated. Alongside the
// bitset, a Poly maintains an occurrence index from each variable to the IDs
// of monomials containing it. Lists are append-once — an ID enters the list
// the first time that monomial ever becomes live — and readers filter by the
// live bit, so the index costs nothing to maintain on the cancellation-heavy
// toggle path. The index makes ContainsVar cheap and lets Substitute touch
// only the affected monomials instead of scanning the whole polynomial — the
// difference between quadratic and quartic total cost when rewriting the
// deep Montgomery netlists of Table II.
type Poly struct {
	p *poly
}

type poly struct {
	tab   *monoTab
	words []uint64 // live bitset over tab IDs
	n     int      // live term count
	// occ[v] lists every ID that ever contained v and was live at least
	// once; entries are never removed (the live bit is the truth), and
	// listed[id] guards the one-time append.
	occ    map[Var][]uint32
	listed []bool
	// Reusable scratch for Substitute; kept on the poly so the steady-state
	// substitution path does not allocate.
	affected []uint32
	eIDs     []uint32
}

// NewPoly returns the zero polynomial.
func NewPoly() Poly {
	return Poly{p: &poly{
		tab: newMonoTab(),
		occ: make(map[Var][]uint32),
	}}
}

// FromMonos builds a polynomial as the XOR of the given monomials
// (duplicates cancel in pairs).
func FromMonos(monos ...Mono) Poly {
	p := NewPoly()
	for _, m := range monos {
		p.Toggle(m)
	}
	return p
}

// Constant returns the polynomial 0 or 1.
func Constant(one bool) Poly {
	p := NewPoly()
	if one {
		p.Toggle(MonoOne)
	}
	return p
}

// Variable returns the polynomial consisting of the single variable v.
func Variable(v Var) Poly { return FromMonos(NewMono(v)) }

// live reports whether monomial id is a term of the polynomial.
func (p *poly) live(id uint32) bool {
	w := int(id >> 6)
	return w < len(p.words) && p.words[w]&(1<<(id&63)) != 0
}

// toggle XORs monomial id into the term set.
func (p *poly) toggle(id uint32) {
	w := int(id >> 6)
	for w >= len(p.words) {
		p.words = append(p.words, 0)
	}
	bit := uint64(1) << (id & 63)
	if p.words[w]&bit != 0 {
		p.words[w] &^= bit
		p.n--
		return
	}
	p.words[w] |= bit
	p.n++
	for int(id) >= len(p.listed) {
		p.listed = append(p.listed, false)
	}
	if !p.listed[id] {
		p.listed[id] = true
		for _, v := range p.tab.vars(id) {
			p.occ[v] = append(p.occ[v], id)
		}
	}
}

// Clone returns an independent copy of p.
func (p Poly) Clone() Poly {
	if p.p == nil {
		return NewPoly()
	}
	src := p.p
	q := &poly{
		tab:    src.tab.clone(),
		words:  append([]uint64(nil), src.words...),
		n:      src.n,
		occ:    make(map[Var][]uint32, len(src.occ)),
		listed: append([]bool(nil), src.listed...),
	}
	for v, list := range src.occ {
		q.occ[v] = append([]uint32(nil), list...)
	}
	return Poly{p: q}
}

// Len returns the number of monomials.
func (p Poly) Len() int {
	if p.p == nil {
		return 0
	}
	return p.p.n
}

// IsZero reports whether p has no terms.
func (p Poly) IsZero() bool { return p.Len() == 0 }

// IsOne reports whether p is the constant 1.
func (p Poly) IsOne() bool {
	return p.p != nil && p.p.n == 1 && len(p.p.words) > 0 && p.p.words[0]&1 == 1
}

// Contains reports whether monomial m has coefficient 1 in p.
func (p Poly) Contains(m Mono) bool {
	if p.p == nil {
		return false
	}
	id, ok := p.p.tab.index[string(m)]
	return ok && p.p.live(id)
}

// ContainsAll reports whether every monomial of ms has coefficient 1 in p —
// the membership test of Algorithm 2 ("if P_m exists in EXP_i").
func (p Poly) ContainsAll(ms []Mono) bool {
	for _, m := range ms {
		if !p.Contains(m) {
			return false
		}
	}
	return true
}

// Toggle XORs monomial m into p: inserts it if absent, cancels it if
// present (coefficient arithmetic mod 2).
func (p Poly) Toggle(m Mono) {
	p.p.toggle(p.p.tab.internKey(string(m)))
}

// AddInPlace XORs q into p.
func (p Poly) AddInPlace(q Poly) {
	if q.p == nil || q.p.n == 0 {
		return
	}
	if p.p == q.p {
		// p + p = 0.
		for i := range p.p.words {
			p.p.words[i] = 0
		}
		p.p.n = 0
		return
	}
	qp := q.p
	for w, word := range qp.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			id := uint32(w<<6 + b)
			p.p.toggle(p.p.tab.internKey(qp.tab.keys[id]))
		}
	}
}

// Add returns p + q (XOR of term sets).
func (p Poly) Add(q Poly) Poly {
	r := p.Clone()
	r.AddInPlace(q)
	return r
}

// Mul returns the product p·q, expanding term by term with idempotent
// monomial multiplication and mod-2 cancellation.
func (p Poly) Mul(q Poly) Poly {
	r := NewPoly()
	if p.p == nil || q.p == nil {
		return r
	}
	rp := r.p
	// Translate q's terms into r's table once, then expand.
	qIDs := make([]uint32, 0, q.p.n)
	for w, word := range q.p.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			qIDs = append(qIDs, rp.tab.internKey(q.p.tab.keys[uint32(w<<6+b)]))
		}
	}
	for w, word := range p.p.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			a := rp.tab.internKey(p.p.tab.keys[uint32(w<<6+b)])
			for _, t := range qIDs {
				rp.toggle(rp.tab.mul(a, t))
			}
		}
	}
	return r
}

// Monos returns the monomials of p in a deterministic (lexicographic by
// encoding, which is ascending-variable) order.
func (p Poly) Monos() []Mono {
	if p.p == nil {
		return nil
	}
	out := make([]Mono, 0, p.p.n)
	for w, word := range p.p.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			out = append(out, Mono(p.p.tab.keys[uint32(w<<6+b)]))
		}
	}
	sort.Slice(out, func(i, j int) bool { return monoLess(string(out[i]), string(out[j])) })
	return out
}

// Equal reports whether p and q have identical term sets. Because ANF is
// canonical, this decides functional equivalence of the represented Boolean
// functions.
func (p Poly) Equal(q Poly) bool {
	if p.Len() != q.Len() {
		return false
	}
	if p.p == nil || q.p == nil || p.p == q.p {
		return true // equal lengths and at least one side empty or aliased
	}
	qp := q.p
	for w, word := range p.p.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			id, ok := qp.tab.index[p.p.tab.keys[uint32(w<<6+b)]]
			if !ok || !qp.live(id) {
				return false
			}
		}
	}
	return true
}

// SupportVars returns the set of variables appearing in p, ascending.
func (p Poly) SupportVars() []Var {
	if p.p == nil {
		return nil
	}
	out := make([]Var, 0, len(p.p.occ))
	for v, list := range p.p.occ {
		for _, id := range list {
			if p.p.live(id) {
				out = append(out, v)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ContainsVar reports whether variable v occurs anywhere in p.
func (p Poly) ContainsVar(v Var) bool {
	if p.p == nil {
		return false
	}
	for _, id := range p.p.occ[v] {
		if p.p.live(id) {
			return true
		}
	}
	return false
}

// VarOccurrences returns the number of monomials of p that contain v.
// It makes mod-2 cancellation accounting exact: substituting v by e turns
// the k = VarOccurrences(v) affected monomials into k·|e| expansion terms,
// so the expansion yields Len()-k+k·|e| terms before cancellation collapses
// colliding pairs.
func (p Poly) VarOccurrences(v Var) int {
	if p.p == nil {
		return 0
	}
	n := 0
	for _, id := range p.p.occ[v] {
		if p.p.live(id) {
			n++
		}
	}
	return n
}

// Substitute replaces every occurrence of variable v in p by the expression
// e, in place — one iteration of backward rewriting (lines 4–12 of
// Algorithm 1). Monomials produced by the expansion that collide with
// existing monomials cancel mod 2 immediately. e must not contain v (true
// for any acyclic netlist); Substitute panics otherwise, since the rewriting
// would not terminate.
func (p Poly) Substitute(v Var, e Poly) {
	if e.ContainsVar(v) {
		panic(fmt.Sprintf("anf: substitution expression for v%d contains v%d (combinational cycle?)", v, v))
	}
	pp := p.p
	aff := pp.affected[:0]
	for _, id := range pp.occ[v] {
		if pp.live(id) {
			aff = append(aff, id)
		}
	}
	pp.affected = aff
	if len(aff) == 0 {
		return
	}
	// Translate e's terms into p's table once; after that the expansion is
	// pure ID arithmetic (memoized products + bit toggles).
	eIDs := pp.eIDs[:0]
	if e.p != nil {
		for w, word := range e.p.words {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << uint(b)
				eIDs = append(eIDs, pp.tab.internKey(e.p.tab.keys[uint32(w<<6+b)]))
			}
		}
	}
	pp.eIDs = eIDs
	for _, id := range aff {
		pp.toggle(id) // all live: removes
	}
	for _, id := range aff {
		base := pp.tab.without(id, v)
		for _, t := range eIDs {
			pp.toggle(pp.tab.mul(base, t))
		}
	}
}

// Compact returns an equal polynomial rebuilt into a fresh intern table
// containing exactly the live terms. A heavily rewritten Poly retains every
// monomial its history ever interned plus the product memo; for a finished
// expression that churn is pure dead weight. Rewriting engines call Compact
// once per finished cone so long-lived results (checkpoint snapshots,
// per-bit expressions of a GF(2^571) run) hold only their final terms.
func (p Poly) Compact() Poly {
	q := NewPoly()
	if p.p == nil {
		return q
	}
	qp := q.p
	for w, word := range p.p.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			qp.toggle(qp.tab.internKey(p.p.tab.keys[uint32(w<<6+b)]))
		}
	}
	return q
}

// Eval evaluates p under an assignment of its variables.
func (p Poly) Eval(assign func(Var) bool) bool {
	if p.p == nil {
		return false
	}
	acc := false
	for w, word := range p.p.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			term := true
			for _, v := range p.p.tab.vars(uint32(w<<6 + b)) {
				if !assign(v) {
					term = false
					break
				}
			}
			if term {
				acc = !acc
			}
		}
	}
	return acc
}

// MaxDeg returns the largest monomial degree in p (0 for constants; -1 for
// the zero polynomial).
func (p Poly) MaxDeg() int {
	d := -1
	if p.p == nil {
		return d
	}
	for w, word := range p.p.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			if md := p.p.tab.deg(uint32(w<<6 + b)); md > d {
				d = md
			}
		}
	}
	return d
}

// String renders p deterministically, e.g. "v1·v2+v3+1"; "0" for zero.
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	monos := p.Monos()
	parts := make([]string, len(monos))
	for i, m := range monos {
		parts[i] = m.String()
	}
	return strings.Join(parts, "+")
}

// FromTruthTable computes the ANF of an arbitrary k-input Boolean function
// given its truth table, using the Möbius (binary zeta) transform. Bit i of
// the table is the function value when input j equals bit j of i. This is
// how gate algebraic models — including complex AOI/OAI cells and BLIF
// truth-table nodes — are derived uniformly instead of hand-coding Eq. (1)
// per gate type.
//
// inputs lists the variable for each function input; len(table) must be
// 1<<len(inputs). k up to 20 is supported (beyond that the table itself is
// the bottleneck).
func FromTruthTable(inputs []Var, table []bool) (Poly, error) {
	k := len(inputs)
	if k > 20 {
		return Poly{}, fmt.Errorf("anf: truth table with %d inputs too large", k)
	}
	if len(table) != 1<<uint(k) {
		return Poly{}, fmt.Errorf("anf: table has %d rows for %d inputs; want %d", len(table), k, 1<<uint(k))
	}
	coeff := make([]bool, len(table))
	copy(coeff, table)
	// In-place Möbius transform: coeff[S] = XOR of f(T) over T ⊆ S.
	for i := 0; i < k; i++ {
		bit := 1 << uint(i)
		for s := range coeff {
			if s&bit != 0 {
				coeff[s] = coeff[s] != coeff[s^bit]
			}
		}
	}
	p := NewPoly()
	for s, c := range coeff {
		if !c {
			continue
		}
		vars := make([]Var, 0, k)
		for i := 0; i < k; i++ {
			if s&(1<<uint(i)) != 0 {
				vars = append(vars, inputs[i])
			}
		}
		p.Toggle(NewMono(vars...))
	}
	return p, nil
}
