package anf_test

// Differential oracle for the packed intern-table core: every test in this
// file replays an identical operation sequence against package anf and
// against internal/anf/reference (the frozen string-keyed implementation the
// packed core replaced) and requires the observable state — canonical
// rendering, term count, degree, support, per-variable occurrence counts,
// evaluation — to match exactly. ANF is canonical, so String() equality is
// full semantic equality; the remaining observables pin the occurrence
// index, which has its own bookkeeping in each core.

import (
	"math/rand"
	"testing"

	"github.com/galoisfield/gfre/internal/anf"
	ref "github.com/galoisfield/gfre/internal/anf/reference"
)

// campaignSeed fixes every sequence in the oracle campaign; a failure
// reproduces by seed + case index.
const campaignSeed = 20260808

// pair is a polynomial mirrored across both cores. All mutations go through
// its methods so the two sides can never drift by construction.
type pair struct {
	p anf.Poly
	q ref.Poly
}

func newPair() pair { return pair{p: anf.NewPoly(), q: ref.NewPoly()} }

// monoFromMask builds the same monomial in both encodings: bit i of mask set
// means variable i+1 is present.
func monoFromMask(mask uint16) (anf.Mono, ref.Mono) {
	var pv []anf.Var
	var qv []ref.Var
	for i := 0; i < 16; i++ {
		if mask&(1<<i) != 0 {
			pv = append(pv, anf.Var(i+1))
			qv = append(qv, ref.Var(i+1))
		}
	}
	return anf.NewMono(pv...), ref.NewMono(qv...)
}

func (pr *pair) toggle(mask uint16) {
	pm, qm := monoFromMask(mask)
	pr.p.Toggle(pm)
	pr.q.Toggle(qm)
}

func randPair(rng *rand.Rand, nVars, maxTerms int) pair {
	pr := newPair()
	n := rng.Intn(maxTerms + 1)
	for i := 0; i < n; i++ {
		pr.toggle(uint16(rng.Intn(1 << nVars)))
	}
	return pr
}

func (pr *pair) add(o pair) {
	pr.p.AddInPlace(o.p)
	pr.q.AddInPlace(o.q)
}

func (pr *pair) mul(o pair) pair {
	return pair{p: pr.p.Mul(o.p), q: pr.q.Mul(o.q)}
}

func (pr *pair) substitute(v int, e pair) {
	pr.p.Substitute(anf.Var(v), e.p)
	pr.q.Substitute(ref.Var(v), e.q)
}

func (pr *pair) clone() pair {
	return pair{p: pr.p.Clone(), q: pr.q.Clone()}
}

// mustMatch asserts every observable agrees between the two cores.
func mustMatch(t *testing.T, ctx string, pr pair) {
	t.Helper()
	if got, want := pr.p.String(), pr.q.String(); got != want {
		t.Fatalf("%s: packed=%q reference=%q", ctx, got, want)
	}
	if got, want := pr.p.Len(), pr.q.Len(); got != want {
		t.Fatalf("%s: Len packed=%d reference=%d", ctx, got, want)
	}
	if got, want := pr.p.IsZero(), pr.q.IsZero(); got != want {
		t.Fatalf("%s: IsZero packed=%v reference=%v", ctx, got, want)
	}
	if got, want := pr.p.IsOne(), pr.q.IsOne(); got != want {
		t.Fatalf("%s: IsOne packed=%v reference=%v", ctx, got, want)
	}
	if got, want := pr.p.MaxDeg(), pr.q.MaxDeg(); got != want {
		t.Fatalf("%s: MaxDeg packed=%d reference=%d", ctx, got, want)
	}
	ps, qs := pr.p.SupportVars(), pr.q.SupportVars()
	if len(ps) != len(qs) {
		t.Fatalf("%s: SupportVars packed=%v reference=%v", ctx, ps, qs)
	}
	for i := range ps {
		if uint32(ps[i]) != uint32(qs[i]) {
			t.Fatalf("%s: SupportVars packed=%v reference=%v", ctx, ps, qs)
		}
	}
	for v := 1; v <= 16; v++ {
		if got, want := pr.p.VarOccurrences(anf.Var(v)), pr.q.VarOccurrences(ref.Var(v)); got != want {
			t.Fatalf("%s: VarOccurrences(v%d) packed=%d reference=%d", ctx, v, got, want)
		}
		if got, want := pr.p.ContainsVar(anf.Var(v)), pr.q.ContainsVar(ref.Var(v)); got != want {
			t.Fatalf("%s: ContainsVar(v%d) packed=%v reference=%v", ctx, v, got, want)
		}
	}
	// Monos agree monomial by monomial (both canonical orders).
	pm, qm := pr.p.Monos(), pr.q.Monos()
	for i := range pm {
		if string(pm[i]) != string(qm[i]) {
			t.Fatalf("%s: Monos[%d] packed=%v reference=%v", ctx, i, pm[i], qm[i])
		}
	}
}

// mustEvalMatch cross-checks evaluation under a random assignment.
func mustEvalMatch(t *testing.T, ctx string, pr pair, mask uint32) {
	t.Helper()
	pa := func(v anf.Var) bool { return mask&(1<<(uint32(v)&31)) != 0 }
	qa := func(v ref.Var) bool { return mask&(1<<(uint32(v)&31)) != 0 }
	if got, want := pr.p.Eval(pa), pr.q.Eval(qa); got != want {
		t.Fatalf("%s: Eval(mask=%x) packed=%v reference=%v", ctx, mask, got, want)
	}
}

// TestDifferentialCampaign is the headline oracle run: thousands of seeded
// random operation sequences — toggles, XOR-merges, products, substitutions,
// clones — with a full observable comparison after every step. The case
// count is what the CI differential campaign and the acceptance criteria
// reference; keep it at or above 5000.
func TestDifferentialCampaign(t *testing.T) {
	const cases = 5000
	rng := rand.New(rand.NewSource(campaignSeed))
	for c := 0; c < cases; c++ {
		nVars := 2 + rng.Intn(7)
		pr := randPair(rng, nVars, 12)
		steps := 1 + rng.Intn(8)
		for s := 0; s < steps; s++ {
			switch rng.Intn(5) {
			case 0:
				pr.toggle(uint16(rng.Intn(1 << nVars)))
			case 1:
				pr.add(randPair(rng, nVars, 6))
			case 2:
				if pr.p.Len() <= 24 {
					pr = pr.mul(randPair(rng, nVars, 3))
				}
			case 3:
				v := 1 + rng.Intn(nVars)
				e := randPair(rng, nVars, 3)
				if got, want := e.p.ContainsVar(anf.Var(v)), e.q.ContainsVar(ref.Var(v)); got != want {
					t.Fatalf("case %d: ContainsVar disagreement before substitution", c)
				} else if !got {
					pr.substitute(v, e)
				}
			case 4:
				cl := pr.clone()
				cl.toggle(uint16(rng.Intn(1 << nVars)))
				// Mutating the clone must leave the original untouched in
				// both cores (checked below by mustMatch on pr).
			}
		}
		mustMatch(t, "campaign", pr)
		mustEvalMatch(t, "campaign", pr, rng.Uint32())
	}
}

func TestDiffAddCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(campaignSeed + 1))
	for c := 0; c < 500; c++ {
		a, b, cc := randPair(rng, 8, 10), randPair(rng, 8, 10), randPair(rng, 8, 10)
		ab := a.clone()
		ab.add(b)
		ba := b.clone()
		ba.add(a)
		if !ab.p.Equal(ba.p) || !ab.q.Equal(ba.q) {
			t.Fatalf("case %d: a+b != b+a", c)
		}
		mustMatch(t, "add-comm", ab)
		abc := ab.clone()
		abc.add(cc)
		bc := b.clone()
		bc.add(cc)
		abc2 := a.clone()
		abc2.add(bc)
		if !abc.p.Equal(abc2.p) || !abc.q.Equal(abc2.q) {
			t.Fatalf("case %d: (a+b)+c != a+(b+c)", c)
		}
		mustMatch(t, "add-assoc", abc)
	}
}

func TestDiffMulCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(campaignSeed + 2))
	for c := 0; c < 300; c++ {
		a, b, cc := randPair(rng, 6, 6), randPair(rng, 6, 6), randPair(rng, 6, 4)
		ab, ba := a.mul(b), b.mul(a)
		if !ab.p.Equal(ba.p) || !ab.q.Equal(ba.q) {
			t.Fatalf("case %d: a·b != b·a", c)
		}
		mustMatch(t, "mul-comm", ab)
		l, r := ab.mul(cc), a.mul(b.mul(cc))
		if !l.p.Equal(r.p) || !l.q.Equal(r.q) {
			t.Fatalf("case %d: (a·b)·c != a·(b·c)", c)
		}
		mustMatch(t, "mul-assoc", l)
	}
}

func TestDiffMulIdempotent(t *testing.T) {
	// Over GF(2) with x² = x, squaring is the identity: p·p = p (cross
	// terms appear in pairs and cancel mod 2).
	rng := rand.New(rand.NewSource(campaignSeed + 3))
	for c := 0; c < 500; c++ {
		a := randPair(rng, 8, 10)
		sq := a.mul(a)
		if !sq.p.Equal(a.p) || !sq.q.Equal(a.q) {
			t.Fatalf("case %d: p·p != p\np=%v\np·p=%v", c, a.p, sq.p)
		}
		mustMatch(t, "mul-idem", sq)
	}
}

func TestDiffDoubleToggleCancels(t *testing.T) {
	rng := rand.New(rand.NewSource(campaignSeed + 4))
	for c := 0; c < 500; c++ {
		a := randPair(rng, 8, 10)
		before := a.p.String()
		mask := uint16(rng.Intn(1 << 8))
		a.toggle(mask)
		a.toggle(mask)
		if a.p.String() != before {
			t.Fatalf("case %d: double toggle changed the polynomial", c)
		}
		mustMatch(t, "double-toggle", a)
	}
}

func TestDiffCloneIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(campaignSeed + 5))
	for c := 0; c < 500; c++ {
		a := randPair(rng, 8, 10)
		snapshot := a.p.String()
		cl := a.clone()
		// Mutate the clone heavily in both cores.
		cl.add(randPair(rng, 8, 8))
		cl.toggle(uint16(rng.Intn(1 << 8)))
		v := 1 + rng.Intn(8)
		e := randPair(rng, 8, 3)
		if !e.p.ContainsVar(anf.Var(v)) {
			cl.substitute(v, e)
		}
		if a.p.String() != snapshot {
			t.Fatalf("case %d: mutating a clone changed the packed original", c)
		}
		mustMatch(t, "clone-original", a)
		mustMatch(t, "clone-mutant", cl)
	}
}

func TestDiffSubstituteChains(t *testing.T) {
	// Long substitution chains are the rewriting engine's access pattern:
	// each variable eliminated exactly once, products meeting existing terms
	// mod 2. This drives the packed core's occurrence lists, product memo
	// and arena through realistic churn.
	rng := rand.New(rand.NewSource(campaignSeed + 6))
	for c := 0; c < 300; c++ {
		pr := randPair(rng, 10, 16)
		for v := 10; v >= 3; v-- {
			e := randPair(rng, v-1, 4) // over vars 1..v-1 only: acyclic
			pr.substitute(v, e)
			mustMatch(t, "subst-chain", pr)
		}
		mustEvalMatch(t, "subst-chain", pr, rng.Uint32())
	}
}

func TestDiffContainsAndMonosAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(campaignSeed + 7))
	for c := 0; c < 500; c++ {
		a := randPair(rng, 8, 12)
		for i := 0; i < 16; i++ {
			pm, qm := monoFromMask(uint16(rng.Intn(1 << 8)))
			if got, want := a.p.Contains(pm), a.q.Contains(qm); got != want {
				t.Fatalf("case %d: Contains(%v) packed=%v reference=%v", c, pm, got, want)
			}
		}
	}
}
