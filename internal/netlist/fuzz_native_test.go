package netlist

import (
	"bytes"
	"testing"
)

// Native fuzz targets for the three netlist parsers. Two properties:
//
//  1. no input, however hostile, may panic a parser (the fuzzing engine
//     turns any panic into a crasher);
//  2. anything that parses into a modestly-sized netlist with tame signal
//     names must survive a same-format write/read round trip with its port
//     counts and its simulated function intact.
//
// Property 2 is gated on tame names because the formats' identifier sets
// are not closed under each other: a BLIF name with brackets, say, is legal
// BLIF but becomes an expression when re-lexed — that is a property of the
// format, not a bug. Seed corpora live under testdata/fuzz/<FuzzName>/.

// fuzzGateLimit bounds round-trip checking: LUT expansion is exponential in
// fanin, so unbounded netlists would turn the fuzzer into a memory test.
const fuzzGateLimit = 5000

var fuzzKeywords = map[string]bool{
	"INORDER": true, "OUTORDER": true,
	"module": true, "endmodule": true, "input": true, "output": true,
	"wire": true, "assign": true, "not": true, "and": true, "or": true,
	"xor": true, "xnor": true, "nand": true, "nor": true, "buf": true,
}

// tameNames reports whether every signal name is a plain identifier that is
// valid (and self-delimiting) in all three formats.
func tameNames(n *Netlist) bool {
	ok := func(s string) bool {
		if s == "" || fuzzKeywords[s] || s[0] >= '0' && s[0] <= '9' {
			return false
		}
		for i := 0; i < len(s); i++ {
			c := s[i]
			if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
				return false
			}
		}
		return true
	}
	for id := 0; id < n.NumGates(); id++ {
		if nm := n.NameOf(id); nm != "" && !ok(nm) {
			return false
		}
	}
	for _, nm := range n.OutputNames() {
		if !ok(nm) {
			return false
		}
	}
	return true
}

// roundTrip re-serializes n in the same format and checks the function.
func roundTrip(t *testing.T, n *Netlist,
	write func(*Netlist, *bytes.Buffer) error, read func(*bytes.Buffer) (*Netlist, error)) {
	t.Helper()
	if n.NumGates() > fuzzGateLimit || len(n.Outputs()) == 0 || !tameNames(n) {
		return
	}
	var buf bytes.Buffer
	if err := write(n, &buf); err != nil {
		t.Fatalf("re-serializing a parsed netlist failed: %v", err)
	}
	text := buf.String()
	back, err := read(&buf)
	if err != nil {
		t.Fatalf("round trip does not re-parse: %v\n%s", err, text)
	}
	if len(back.Inputs()) != len(n.Inputs()) || len(back.Outputs()) != len(n.Outputs()) {
		t.Fatalf("round trip changed port counts %d/%d -> %d/%d\n%s",
			len(n.Inputs()), len(n.Outputs()), len(back.Inputs()), len(back.Outputs()), text)
	}
	words := make([]uint64, len(n.Inputs()))
	for i := range words {
		// A fixed but bit-diverse pattern: 64 lanes already enumerate every
		// combination of the first 6 inputs.
		words[i] = 0x123456789abcdef0 * uint64(2*i+1)
	}
	v1, err := n.Simulate(words)
	if err != nil {
		return // cyclic or otherwise unsimulatable: nothing to compare
	}
	v2, err := back.Simulate(words)
	if err != nil {
		t.Fatalf("round trip broke simulation: %v\n%s", err, text)
	}
	o1, o2 := n.OutputWords(v1), back.OutputWords(v2)
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("round trip changed the function at output %d\n%s", i, text)
		}
	}
}

func FuzzEqn(f *testing.F) {
	f.Add([]byte("INORDER = a b;\nOUTORDER = z;\nz = a ^ b;\n"))
	f.Add([]byte("INORDER = a;\nOUTORDER = z;\nn1 = !a;\nz = n1 * a + 1;\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		n, err := ReadEQN(bytes.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		roundTrip(t, n,
			func(n *Netlist, b *bytes.Buffer) error { return n.WriteEQN(b) },
			func(b *bytes.Buffer) (*Netlist, error) { return ReadEQN(b, "fuzz") })
	})
}

func FuzzBLIF(f *testing.F) {
	f.Add([]byte(".model m\n.inputs a b\n.outputs z\n.names a b z\n11 1\n.end\n"))
	f.Add([]byte(".model m\n.inputs a\n.outputs z\n.names a z\n0 1\n.end\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		n, err := ReadBLIF(bytes.NewReader(data))
		if err != nil {
			return
		}
		roundTrip(t, n,
			func(n *Netlist, b *bytes.Buffer) error { return n.WriteBLIF(b) },
			func(b *bytes.Buffer) (*Netlist, error) { return ReadBLIF(b) })
	})
}

func FuzzVerilog(f *testing.F) {
	f.Add([]byte("module m(a, b, z);\ninput a, b;\noutput z;\nassign z = a ^ b;\nendmodule\n"))
	f.Add([]byte("module m(a, z);\ninput a;\noutput z;\nwire w;\nxor g1(w, a, a);\nnot g2(z, w);\nendmodule\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		n, err := ReadVerilog(bytes.NewReader(data))
		if err != nil {
			return
		}
		roundTrip(t, n,
			func(n *Netlist, b *bytes.Buffer) error { return n.WriteVerilog(b) },
			func(b *bytes.Buffer) (*Netlist, error) { return ReadVerilog(b) })
	})
}
