package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ReadVerilog parses a structural gate-level Verilog subset — the flavor
// synthesis tools emit for flattened netlists and the most common exchange
// format for the third-party IP the paper's technique targets:
//
//	module mult ( a0, a1, b0, b1, z0, z1 );
//	  input a0, a1, b0, b1;
//	  output z0, z1;
//	  wire s2, n5;
//	  and g1 ( s2, a1, b1 );          // gate primitives: out first
//	  xor g2 ( z0, n5, s2 );
//	  assign z1 = s2 ^ n5;            // structural assigns: &, |, ^, ~, ( )
//	endmodule
//
// Supported: one module; input/output/wire declarations (scalar lists, or
// vectors like "input [7:0] a;" which expand to a[7]..a[0]); the gate
// primitives and/or/xor/xnor/nand/nor/not/buf (2-input for the binary ones);
// assign with expressions over ~ & ^ | and parentheses; 1'b0/1'b1 constants;
// // and /* */ comments. Behavioral constructs are rejected. All syntax and
// structure failures are wrapped in ErrParse.
func ReadVerilog(r io.Reader) (*Netlist, error) {
	toks, err := lexVerilog(r)
	if err != nil {
		return nil, parseError(err)
	}
	p := &vParser{toks: toks}
	n, err := p.parseModule()
	if err != nil {
		return nil, parseError(err)
	}
	return n, nil
}

type vToken struct {
	kind byte // 'i' ident, 'n' number, or a punctuation char
	text string
	line int
}

func lexVerilog(r io.Reader) ([]vToken, error) {
	var toks []vToken
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 256*1024*1024)
	line := 0
	inBlockComment := false
	for sc.Scan() {
		line++
		s := sc.Text()
		i := 0
		for i < len(s) {
			if inBlockComment {
				if j := strings.Index(s[i:], "*/"); j >= 0 {
					i += j + 2
					inBlockComment = false
					continue
				}
				i = len(s)
				continue
			}
			c := s[i]
			switch {
			case c == ' ' || c == '\t' || c == '\r':
				i++
			case strings.HasPrefix(s[i:], "//"):
				i = len(s)
			case strings.HasPrefix(s[i:], "/*"):
				inBlockComment = true
				i += 2
			case c == '_' || c == '\\' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
				j := i
				if c == '\\' { // escaped identifier: up to whitespace
					j++
					for j < len(s) && s[j] != ' ' && s[j] != '\t' {
						j++
					}
					toks = append(toks, vToken{'i', s[i+1 : j], line})
					i = j
					continue
				}
				for j < len(s) && (s[j] == '_' || s[j] == '$' ||
					s[j] >= 'a' && s[j] <= 'z' || s[j] >= 'A' && s[j] <= 'Z' ||
					s[j] >= '0' && s[j] <= '9') {
					j++
				}
				toks = append(toks, vToken{'i', s[i:j], line})
				i = j
			case c >= '0' && c <= '9':
				j := i
				for j < len(s) && (s[j] >= '0' && s[j] <= '9' ||
					s[j] == '\'' || s[j] == 'b' || s[j] == 'h' || s[j] == 'd' ||
					s[j] >= 'a' && s[j] <= 'f' || s[j] >= 'A' && s[j] <= 'F') {
					j++
				}
				toks = append(toks, vToken{'n', s[i:j], line})
				i = j
			case strings.IndexByte("()[],;=~&^|:", c) >= 0:
				toks = append(toks, vToken{c, string(c), line})
				i++
			default:
				return nil, fmt.Errorf("verilog: line %d: unexpected character %q", line, c)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("verilog: %w", err)
	}
	return toks, nil
}

type vParser struct {
	toks []vToken
	pos  int
	n    *Netlist

	declared map[string]bool
	outputs  []string
	// deferred gate/assign statements, resolved after all declarations.
	stmts []vStmt
}

type vStmt struct {
	kind string   // gate primitive name or "assign"
	args []string // gate: output then inputs; unused for assign
	out  string   // assign target
	expr []vToken // assign RHS tokens
	line int
}

func (p *vParser) peek() (vToken, bool) {
	if p.pos >= len(p.toks) {
		return vToken{}, false
	}
	return p.toks[p.pos], true
}

func (p *vParser) next() (vToken, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func (p *vParser) expect(kind byte, what string) (vToken, error) {
	t, ok := p.next()
	if !ok {
		return t, fmt.Errorf("verilog: unexpected EOF, want %s", what)
	}
	if t.kind != kind {
		return t, fmt.Errorf("verilog: line %d: got %q, want %s", t.line, t.text, what)
	}
	return t, nil
}

// parseSignalList reads "a, b, c ;" or "[7:0] v ;" after a direction
// keyword, returning expanded names.
func (p *vParser) parseSignalList() ([]string, error) {
	var names []string
	msb, lsb, vec := 0, 0, false
	if t, ok := p.peek(); ok && t.kind == '[' {
		p.pos++
		hi, err := p.expect('n', "vector msb")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(':', "':'"); err != nil {
			return nil, err
		}
		lo, err := p.expect('n', "vector lsb")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(']', "']'"); err != nil {
			return nil, err
		}
		if _, err := fmt.Sscanf(hi.text, "%d", &msb); err != nil {
			return nil, fmt.Errorf("verilog: line %d: bad msb %q", hi.line, hi.text)
		}
		if _, err := fmt.Sscanf(lo.text, "%d", &lsb); err != nil {
			return nil, fmt.Errorf("verilog: line %d: bad lsb %q", lo.line, lo.text)
		}
		vec = true
	}
	for {
		t, err := p.expect('i', "signal name")
		if err != nil {
			return nil, err
		}
		if vec {
			// Expand LSB-first (matching the generators' a0..a<m-1> port
			// convention), regardless of declaration direction.
			step := 1
			if msb < lsb {
				step = -1
			}
			for i := lsb; ; i += step {
				names = append(names, fmt.Sprintf("%s[%d]", t.text, i))
				if i == msb {
					break
				}
			}
		} else {
			names = append(names, t.text)
		}
		sep, ok := p.next()
		if !ok {
			return nil, fmt.Errorf("verilog: unexpected EOF in declaration")
		}
		switch sep.kind {
		case ',':
			continue
		case ';':
			return names, nil
		default:
			return nil, fmt.Errorf("verilog: line %d: got %q in declaration", sep.line, sep.text)
		}
	}
}

var vGatePrims = map[string]GateType{
	"and": And, "or": Or, "xor": Xor, "xnor": Xnor,
	"nand": Nand, "nor": Nor, "not": Not, "buf": Buf,
}

func (p *vParser) parseModule() (*Netlist, error) {
	p.declared = map[string]bool{}
	if _, err := p.expectKeyword("module"); err != nil {
		return nil, err
	}
	name, err := p.expect('i', "module name")
	if err != nil {
		return nil, err
	}
	p.n = New(name.text)
	// Skip the port header up to ';'.
	for {
		t, ok := p.next()
		if !ok {
			return nil, fmt.Errorf("verilog: unterminated module header")
		}
		if t.kind == ';' {
			break
		}
	}
	var inputs []string
	for {
		t, ok := p.next()
		if !ok {
			return nil, fmt.Errorf("verilog: missing endmodule")
		}
		if t.kind != 'i' {
			return nil, fmt.Errorf("verilog: line %d: unexpected %q", t.line, t.text)
		}
		switch t.text {
		case "endmodule":
			return p.finish(inputs)
		case "input":
			names, err := p.parseSignalList()
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, names...)
			for _, nm := range names {
				p.declared[nm] = true
			}
		case "output":
			names, err := p.parseSignalList()
			if err != nil {
				return nil, err
			}
			p.outputs = append(p.outputs, names...)
			for _, nm := range names {
				p.declared[nm] = true
			}
		case "wire":
			names, err := p.parseSignalList()
			if err != nil {
				return nil, err
			}
			for _, nm := range names {
				p.declared[nm] = true
			}
		case "assign":
			out, err := p.expect('i', "assign target")
			if err != nil {
				return nil, err
			}
			target := out.text
			if t2, ok := p.peek(); ok && t2.kind == '[' {
				idx, err := p.parseIndexSuffix()
				if err != nil {
					return nil, err
				}
				target = fmt.Sprintf("%s[%d]", target, idx)
			}
			if _, err := p.expect('=', "'='"); err != nil {
				return nil, err
			}
			var expr []vToken
			for {
				t2, ok := p.next()
				if !ok {
					return nil, fmt.Errorf("verilog: line %d: unterminated assign", out.line)
				}
				if t2.kind == ';' {
					break
				}
				expr = append(expr, t2)
			}
			p.stmts = append(p.stmts, vStmt{kind: "assign", out: target, expr: expr, line: out.line})
		default:
			prim, ok := vGatePrims[t.text]
			if !ok {
				return nil, fmt.Errorf("verilog: line %d: unsupported construct %q (structural subset only)", t.line, t.text)
			}
			_ = prim
			// Optional instance name.
			if t2, ok := p.peek(); ok && t2.kind == 'i' {
				p.pos++
			}
			if _, err := p.expect('(', "'('"); err != nil {
				return nil, err
			}
			var args []string
			for {
				a, err := p.expect('i', "port connection")
				if err != nil {
					return nil, err
				}
				nm := a.text
				if t2, ok := p.peek(); ok && t2.kind == '[' {
					idx, err := p.parseIndexSuffix()
					if err != nil {
						return nil, err
					}
					nm = fmt.Sprintf("%s[%d]", nm, idx)
				}
				args = append(args, nm)
				sep, ok := p.next()
				if !ok {
					return nil, fmt.Errorf("verilog: line %d: unterminated gate", t.line)
				}
				if sep.kind == ')' {
					break
				}
				if sep.kind != ',' {
					return nil, fmt.Errorf("verilog: line %d: got %q in gate ports", sep.line, sep.text)
				}
			}
			if _, err := p.expect(';', "';'"); err != nil {
				return nil, err
			}
			p.stmts = append(p.stmts, vStmt{kind: t.text, args: args, line: t.line})
		}
	}
}

func (p *vParser) parseIndexSuffix() (int, error) {
	if _, err := p.expect('[', "'['"); err != nil {
		return 0, err
	}
	n, err := p.expect('n', "index")
	if err != nil {
		return 0, err
	}
	var idx int
	if _, err := fmt.Sscanf(n.text, "%d", &idx); err != nil {
		return 0, fmt.Errorf("verilog: line %d: bad index %q", n.line, n.text)
	}
	if _, err := p.expect(']', "']'"); err != nil {
		return 0, err
	}
	return idx, nil
}

func (p *vParser) expectKeyword(kw string) (vToken, error) {
	t, err := p.expect('i', fmt.Sprintf("%q", kw))
	if err != nil {
		return t, err
	}
	if t.text != kw {
		return t, fmt.Errorf("verilog: line %d: got %q, want %q", t.line, t.text, kw)
	}
	return t, nil
}

// finish resolves the deferred statements into gates. Statements may appear
// in any order; dependencies are resolved by demand-driven elaboration.
func (p *vParser) finish(inputs []string) (*Netlist, error) {
	for _, nm := range inputs {
		if _, err := p.n.AddInput(nm); err != nil {
			return nil, err
		}
	}
	// Index statements by the signal they drive.
	type driver struct {
		stmt  vStmt
		state int // 0 unvisited, 1 visiting, 2 done
	}
	drivers := map[string]*driver{}
	for _, st := range p.stmts {
		out := st.out
		if st.kind != "assign" {
			out = st.args[0]
		}
		if _, dup := drivers[out]; dup {
			return nil, fmt.Errorf("verilog: line %d: signal %q driven twice", st.line, out)
		}
		drivers[out] = &driver{stmt: st}
	}

	var build func(name string, line int) (int, error)
	var elabStmt func(d *driver) (int, error)
	build = func(name string, line int) (int, error) {
		if id, ok := p.n.Lookup(name); ok {
			return id, nil
		}
		d, ok := drivers[name]
		if !ok {
			return 0, fmt.Errorf("verilog: line %d: signal %q has no driver", line, name)
		}
		switch d.state {
		case 1:
			return 0, fmt.Errorf("verilog: combinational cycle through %q", name)
		case 2:
			id, _ := p.n.Lookup(name)
			return id, nil
		}
		d.state = 1
		id, err := elabStmt(d)
		if err != nil {
			return 0, err
		}
		d.state = 2
		return id, nil
	}

	elabStmt = func(d *driver) (int, error) {
		st := d.stmt
		var id int
		var err error
		if st.kind == "assign" {
			ep := &vExprParser{toks: st.expr, build: func(nm string) (int, error) { return build(nm, st.line) }, n: p.n, line: st.line}
			id, err = ep.parseOr()
			if err != nil {
				return 0, err
			}
			if !ep.done() {
				return 0, fmt.Errorf("verilog: line %d: trailing tokens in assign", st.line)
			}
		} else {
			ty := vGatePrims[st.kind]
			nin := len(st.args) - 1
			if nin < 1 || ty.Arity() == 1 && nin != 1 || ty.Arity() == 2 && nin < 2 {
				return 0, fmt.Errorf("verilog: line %d: %s with %d inputs", st.line, st.kind, nin)
			}
			fanin := make([]int, nin)
			for i := 0; i < nin; i++ {
				if fanin[i], err = build(st.args[i+1], st.line); err != nil {
					return 0, err
				}
			}
			id, err = p.emitPrim(ty, fanin, st.line)
			if err != nil {
				return 0, err
			}
		}
		out := st.out
		if st.kind != "assign" {
			out = st.args[0]
		}
		// The RHS may have reduced to an already-named node (input or a
		// previously named gate); buffer so the name binds uniquely.
		if p.nameBound(id) {
			if id, err = p.n.AddGate(Buf, id); err != nil {
				return 0, err
			}
		}
		if err := p.n.SetSignalName(id, out); err != nil {
			return 0, err
		}
		return id, nil
	}

	// Elaborate every driven signal (keeps dangling logic, mirrors ReadBLIF).
	names := make([]string, 0, len(drivers))
	for nm := range drivers {
		names = append(names, nm)
	}
	sort.Strings(names)
	for _, nm := range names {
		if _, err := build(nm, 0); err != nil {
			return nil, err
		}
	}
	for _, nm := range p.outputs {
		id, ok := p.n.Lookup(nm)
		if !ok {
			return nil, fmt.Errorf("verilog: output %q has no driver", nm)
		}
		if err := p.n.MarkOutput(nm, id); err != nil {
			return nil, err
		}
	}
	if len(p.outputs) == 0 {
		return nil, fmt.Errorf("verilog: module has no outputs")
	}
	return p.n, nil
}

// emitPrim emits a gate primitive, chaining multi-input and/or/xor (and the
// inverting variants as an inverted chain, per Verilog reduction semantics).
func (p *vParser) emitPrim(ty GateType, fanin []int, line int) (int, error) {
	if len(fanin) == ty.Arity() {
		return p.n.AddGate(ty, fanin...)
	}
	base, invert := ty, false
	switch ty {
	case Nand:
		base, invert = And, true
	case Nor:
		base, invert = Or, true
	case Xnor:
		base, invert = Xor, true
	case And, Or, Xor:
	default:
		return 0, fmt.Errorf("verilog: line %d: %v cannot take %d inputs", line, ty, len(fanin))
	}
	id := fanin[0]
	var err error
	for _, f := range fanin[1:] {
		if id, err = p.n.AddGate(base, id, f); err != nil {
			return 0, err
		}
	}
	if invert {
		return p.n.AddGate(Not, id)
	}
	return id, nil
}

// nameBound reports whether gate id already carries a name.
func (p *vParser) nameBound(id int) bool {
	nm := p.n.NameOf(id)
	got, ok := p.n.Lookup(nm)
	return ok && got == id
}

// vExprParser parses assign RHS expressions with Verilog precedence
// ~ > & > ^ > | over resolved signal IDs.
type vExprParser struct {
	toks  []vToken
	pos   int
	build func(string) (int, error)
	n     *Netlist
	line  int
}

func (e *vExprParser) done() bool { return e.pos >= len(e.toks) }

func (e *vExprParser) peek() (vToken, bool) {
	if e.done() {
		return vToken{}, false
	}
	return e.toks[e.pos], true
}

func (e *vExprParser) parseOr() (int, error) {
	id, err := e.parseXor()
	if err != nil {
		return 0, err
	}
	for {
		t, ok := e.peek()
		if !ok || t.kind != '|' {
			return id, nil
		}
		e.pos++
		rhs, err := e.parseXor()
		if err != nil {
			return 0, err
		}
		if id, err = e.n.AddGate(Or, id, rhs); err != nil {
			return 0, err
		}
	}
}

func (e *vExprParser) parseXor() (int, error) {
	id, err := e.parseAnd()
	if err != nil {
		return 0, err
	}
	for {
		t, ok := e.peek()
		if !ok || t.kind != '^' {
			return id, nil
		}
		e.pos++
		rhs, err := e.parseAnd()
		if err != nil {
			return 0, err
		}
		if id, err = e.n.AddGate(Xor, id, rhs); err != nil {
			return 0, err
		}
	}
}

func (e *vExprParser) parseAnd() (int, error) {
	id, err := e.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		t, ok := e.peek()
		if !ok || t.kind != '&' {
			return id, nil
		}
		e.pos++
		rhs, err := e.parseUnary()
		if err != nil {
			return 0, err
		}
		if id, err = e.n.AddGate(And, id, rhs); err != nil {
			return 0, err
		}
	}
}

func (e *vExprParser) parseUnary() (int, error) {
	t, ok := e.peek()
	if !ok {
		return 0, fmt.Errorf("verilog: line %d: unexpected end of expression", e.line)
	}
	if t.kind == '~' {
		e.pos++
		id, err := e.parseUnary()
		if err != nil {
			return 0, err
		}
		return e.n.AddGate(Not, id)
	}
	return e.parsePrimary()
}

func (e *vExprParser) parsePrimary() (int, error) {
	t, ok := e.peek()
	if !ok {
		return 0, fmt.Errorf("verilog: line %d: unexpected end of expression", e.line)
	}
	e.pos++
	switch t.kind {
	case 'i':
		name := t.text
		if t2, ok := e.peek(); ok && t2.kind == '[' {
			// name[idx]
			e.pos++
			n2, ok := e.peek()
			if !ok || n2.kind != 'n' {
				return 0, fmt.Errorf("verilog: line %d: bad index", e.line)
			}
			e.pos++
			if t3, ok := e.peek(); !ok || t3.kind != ']' {
				return 0, fmt.Errorf("verilog: line %d: missing ']'", e.line)
			}
			e.pos++
			name = fmt.Sprintf("%s[%s]", name, n2.text)
		}
		return e.build(name)
	case 'n':
		switch t.text {
		case "1'b0":
			return e.n.AddGate(Const0)
		case "1'b1":
			return e.n.AddGate(Const1)
		}
		return 0, fmt.Errorf("verilog: line %d: unsupported literal %q", e.line, t.text)
	case '(':
		id, err := e.parseOr()
		if err != nil {
			return 0, err
		}
		t2, ok := e.peek()
		if !ok || t2.kind != ')' {
			return 0, fmt.Errorf("verilog: line %d: missing ')'", e.line)
		}
		e.pos++
		return id, nil
	default:
		return 0, fmt.Errorf("verilog: line %d: unexpected %q in expression", e.line, t.text)
	}
}

// WriteVerilog renders the netlist as structural Verilog: gate primitives
// for the basic cells, assign expressions for complex cells and LUTs.
func (n *Netlist) WriteVerilog(w io.Writer) error {
	bw := bufio.NewWriter(w)
	name := n.Name
	if name == "" {
		name = "netlist"
	}
	// Verilog identifiers can't contain '[' unless escaped; our generated
	// names are plain, parsed vector names re-emit as escaped identifiers.
	esc := func(s string) string {
		if strings.ContainsAny(s, "[]") {
			return "\\" + s + " "
		}
		return s
	}

	var ports []string
	for _, id := range n.inputs {
		ports = append(ports, esc(n.NameOf(id)))
	}
	ports = append(ports, escAll(n.outputNames)...)
	fmt.Fprintf(bw, "module %s ( %s );\n", sanitizeVName(name), strings.Join(ports, ", "))
	for _, id := range n.inputs {
		fmt.Fprintf(bw, "  input %s;\n", esc(n.NameOf(id)))
	}
	for _, nm := range n.outputNames {
		fmt.Fprintf(bw, "  output %s;\n", esc(nm))
	}

	outputName := map[string]bool{}
	for _, nm := range n.outputNames {
		outputName[nm] = true
	}
	for id, g := range n.gates {
		if g.Type == Input {
			continue
		}
		if nm := n.NameOf(id); !outputName[nm] {
			fmt.Fprintf(bw, "  wire %s;\n", esc(nm))
		}
	}

	for id, g := range n.gates {
		switch g.Type {
		case Input:
			continue
		case Const0:
			fmt.Fprintf(bw, "  assign %s = 1'b0;\n", esc(n.NameOf(id)))
		case Const1:
			fmt.Fprintf(bw, "  assign %s = 1'b1;\n", esc(n.NameOf(id)))
		case Buf, Not, And, Or, Xor, Xnor, Nand, Nor:
			prim := strings.ToLower(g.Type.String())
			conns := []string{esc(n.NameOf(id))}
			for _, f := range g.Fanin {
				conns = append(conns, esc(n.NameOf(f)))
			}
			fmt.Fprintf(bw, "  %s g%d ( %s );\n", prim, id, strings.Join(conns, ", "))
		default:
			// Complex cells and LUTs as assign sum-of-minterms.
			fmt.Fprintf(bw, "  assign %s = %s;\n", esc(n.NameOf(id)), n.verilogExpr(g, esc))
		}
	}
	for i, id := range n.outputs {
		if n.NameOf(id) != n.outputNames[i] {
			fmt.Fprintf(bw, "  assign %s = %s;\n", esc(n.outputNames[i]), esc(n.NameOf(id)))
		}
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

func escAll(names []string) []string {
	out := make([]string, len(names))
	for i, s := range names {
		if strings.ContainsAny(s, "[]") {
			out[i] = "\\" + s + " "
		} else {
			out[i] = s
		}
	}
	return out
}

func sanitizeVName(s string) string {
	var sb strings.Builder
	for i, r := range s {
		ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "netlist"
	}
	return sb.String()
}

// verilogExpr renders complex cells / LUTs as an assign RHS using ~ & ^ |.
func (n *Netlist) verilogExpr(g Gate, esc func(string) string) string {
	f := func(i int) string { return esc(n.NameOf(g.Fanin[i])) }
	switch g.Type {
	case Aoi21:
		return fmt.Sprintf("~(%s & %s | %s)", f(0), f(1), f(2))
	case Oai21:
		return fmt.Sprintf("~((%s | %s) & %s)", f(0), f(1), f(2))
	case Aoi22:
		return fmt.Sprintf("~(%s & %s | %s & %s)", f(0), f(1), f(2), f(3))
	case Oai22:
		return fmt.Sprintf("~((%s | %s) & (%s | %s))", f(0), f(1), f(2), f(3))
	case Mux:
		return fmt.Sprintf("~%s & %s | %s & %s", f(2), f(0), f(2), f(1))
	case Lut:
		var minterms []string
		for row, bit := range g.Table {
			if !bit {
				continue
			}
			lits := make([]string, len(g.Fanin))
			for i := range g.Fanin {
				if row&(1<<uint(i)) != 0 {
					lits[i] = f(i)
				} else {
					lits[i] = "~" + f(i)
				}
			}
			minterms = append(minterms, strings.Join(lits, " & "))
		}
		if len(minterms) == 0 {
			return "1'b0"
		}
		return strings.Join(minterms, " | ")
	}
	panic(fmt.Sprintf("netlist: verilogExpr on %v", g.Type))
}
