// Package netlist models combinational gate-level circuits: the input
// representation the paper's reverse-engineering technique operates on.
//
// A Netlist is a DAG of gates. Gates are created in topological order
// (every fanin must already exist), which matches how generators and parsers
// build circuits and makes traversal orders trivial and cycle-free by
// construction. The package provides:
//
//   - the gate library used by the paper's experiments: basic gates
//     (AND/OR/XOR/INV/...) plus complex standard cells (AOI/OAI) and
//     arbitrary truth-table LUT nodes from synthesis/technology mapping;
//   - algebraic gate models per Eq. (1) of the paper, derived uniformly from
//     truth tables via the Möbius transform (package anf);
//   - per-output transitive-fanin cone extraction (the basis of the
//     parallel, per-output-bit rewriting of Theorem 2);
//   - 64-way bit-parallel simulation for fast randomized cross-checks;
//   - text I/O in an equation format (eqn.go) and a BLIF subset (blif.go).
package netlist

import (
	"fmt"
	"math/bits"
	"strconv"

	"github.com/galoisfield/gfre/internal/anf"
)

// GateType enumerates the supported cell functions.
type GateType uint8

// Gate types. Fanin arity is fixed per type except for Lut.
const (
	Input GateType = iota // primary input; no fanin
	Const0
	Const1
	Buf
	Not
	And
	Or
	Xor
	Xnor
	Nand
	Nor
	Aoi21 // !(f0·f1 + f2)
	Oai21 // !((f0+f1)·f2)
	Aoi22 // !(f0·f1 + f2·f3)
	Oai22 // !((f0+f1)·(f2+f3))
	Mux   // f2 ? f1 : f0 (f2 is the select)
	Lut   // arbitrary truth table over its fanins
)

var gateTypeNames = map[GateType]string{
	Input: "INPUT", Const0: "CONST0", Const1: "CONST1", Buf: "BUF",
	Not: "NOT", And: "AND", Or: "OR", Xor: "XOR", Xnor: "XNOR",
	Nand: "NAND", Nor: "NOR", Aoi21: "AOI21", Oai21: "OAI21",
	Aoi22: "AOI22", Oai22: "OAI22", Mux: "MUX", Lut: "LUT",
}

// String returns the conventional cell name.
func (t GateType) String() string {
	if s, ok := gateTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// Arity returns the required fanin count, or -1 for variable arity (Lut).
func (t GateType) Arity() int {
	switch t {
	case Input, Const0, Const1:
		return 0
	case Buf, Not:
		return 1
	case And, Or, Xor, Xnor, Nand, Nor:
		return 2
	case Aoi21, Oai21, Mux:
		return 3
	case Aoi22, Oai22:
		return 4
	case Lut:
		return -1
	}
	return -1
}

// eval computes the gate function on Boolean inputs; the shared definition
// used by both simulation and the ANF model derivation, so the two can never
// disagree.
func (t GateType) eval(in []bool) bool {
	switch t {
	case Const0:
		return false
	case Const1:
		return true
	case Buf:
		return in[0]
	case Not:
		return !in[0]
	case And:
		return in[0] && in[1]
	case Or:
		return in[0] || in[1]
	case Xor:
		return in[0] != in[1]
	case Xnor:
		return in[0] == in[1]
	case Nand:
		return !(in[0] && in[1])
	case Nor:
		return !(in[0] || in[1])
	case Aoi21:
		return !(in[0] && in[1] || in[2])
	case Oai21:
		return !((in[0] || in[1]) && in[2])
	case Aoi22:
		return !(in[0] && in[1] || in[2] && in[3])
	case Oai22:
		return !((in[0] || in[1]) && (in[2] || in[3]))
	case Mux:
		if in[2] {
			return in[1]
		}
		return in[0]
	}
	panic(fmt.Sprintf("netlist: eval on %v", t))
}

// Gate is one node of the circuit DAG.
type Gate struct {
	Type  GateType
	Fanin []int  // IDs of driver gates; all smaller than this gate's ID
	Table []bool // truth table for Lut gates (len = 1<<len(Fanin))
}

// Eval computes the gate's cell function on the given fanin values (one per
// Fanin entry, in order; bit i of a LUT row index is fanin i). It shares the
// per-type eval used by simulation and GateANF, so every consumer of a
// gate's Boolean semantics — including static analyzers building local truth
// tables — agrees with the simulator by construction.
func (g Gate) Eval(in []bool) bool {
	if g.Type == Lut {
		row := 0
		for i, v := range in {
			if v {
				row |= 1 << uint(i)
			}
		}
		return g.Table[row]
	}
	return g.Type.eval(in)
}

// Netlist is a combinational circuit. Build with New and the Add* methods;
// gates are identified by dense integer IDs in topological order.
type Netlist struct {
	Name string

	gates  []Gate
	names  []string // signal name per gate ("" if anonymous)
	byName map[string]int

	inputs      []int // gate IDs of primary inputs, in port order
	outputs     []int // gate IDs driving primary outputs, in port order
	outputNames []string
}

// New returns an empty netlist with the given model name.
func New(name string) *Netlist {
	return &Netlist{Name: name, byName: make(map[string]int)}
}

// NumGates returns the total number of nodes including primary inputs and
// constants.
func (n *Netlist) NumGates() int { return len(n.gates) }

// NumEquations returns the number of logic equations — every node except
// primary inputs. This is the "#eqns" column of Tables I and II and equals
// the number of rewriting iterations needed to process the whole netlist.
func (n *Netlist) NumEquations() int {
	c := 0
	for _, g := range n.gates {
		if g.Type != Input {
			c++
		}
	}
	return c
}

// Gate returns the gate with the given ID.
func (n *Netlist) Gate(id int) Gate { return n.gates[id] }

// NameOf returns the signal name of gate id, or a synthesized "n<id>" if the
// gate is anonymous.
func (n *Netlist) NameOf(id int) string {
	if s := n.names[id]; s != "" {
		return s
	}
	return "n" + strconv.Itoa(id)
}

// Lookup resolves a signal name to its gate ID.
func (n *Netlist) Lookup(name string) (int, bool) {
	id, ok := n.byName[name]
	return id, ok
}

// Inputs returns the primary input gate IDs in port order.
func (n *Netlist) Inputs() []int { return append([]int(nil), n.inputs...) }

// Outputs returns the gate IDs driving each primary output, in port order.
func (n *Netlist) Outputs() []int { return append([]int(nil), n.outputs...) }

// OutputNames returns the primary output names in port order.
func (n *Netlist) OutputNames() []string { return append([]string(nil), n.outputNames...) }

func (n *Netlist) setName(id int, name string) error {
	if name == "" {
		return nil
	}
	if old, ok := n.byName[name]; ok && old != id {
		return fmt.Errorf("netlist: duplicate signal name %q", name)
	}
	n.byName[name] = id
	n.names[id] = name
	return nil
}

// AddInput appends a primary input with the given name and returns its ID.
func (n *Netlist) AddInput(name string) (int, error) {
	id := len(n.gates)
	n.gates = append(n.gates, Gate{Type: Input})
	n.names = append(n.names, "")
	if err := n.setName(id, name); err != nil {
		n.gates = n.gates[:id]
		n.names = n.names[:id]
		return 0, err
	}
	n.inputs = append(n.inputs, id)
	return id, nil
}

// AddGate appends a gate of the given type and returns its ID. Fanins must
// refer to existing gates, which keeps the gate list topologically ordered
// and the circuit acyclic by construction.
func (n *Netlist) AddGate(t GateType, fanin ...int) (int, error) {
	if t == Input {
		return 0, fmt.Errorf("netlist: use AddInput for primary inputs")
	}
	if t == Lut {
		return 0, fmt.Errorf("netlist: use AddLut for truth-table gates")
	}
	if a := t.Arity(); len(fanin) != a {
		return 0, fmt.Errorf("netlist: %v needs %d fanins, got %d", t, a, len(fanin))
	}
	return n.addChecked(Gate{Type: t, Fanin: append([]int(nil), fanin...)})
}

// AddLut appends a truth-table gate. table row i holds the output value when
// fanin j carries bit j of i.
func (n *Netlist) AddLut(table []bool, fanin ...int) (int, error) {
	if len(fanin) == 0 || len(fanin) > 16 {
		return 0, fmt.Errorf("netlist: LUT with %d inputs unsupported", len(fanin))
	}
	if len(table) != 1<<uint(len(fanin)) {
		return 0, fmt.Errorf("netlist: LUT table has %d rows for %d inputs", len(table), len(fanin))
	}
	return n.addChecked(Gate{
		Type:  Lut,
		Fanin: append([]int(nil), fanin...),
		Table: append([]bool(nil), table...),
	})
}

func (n *Netlist) addChecked(g Gate) (int, error) {
	id := len(n.gates)
	for _, f := range g.Fanin {
		if f < 0 || f >= id {
			return 0, fmt.Errorf("netlist: gate %d fanin %d out of range (forward reference or negative)", id, f)
		}
	}
	n.gates = append(n.gates, g)
	n.names = append(n.names, "")
	return id, nil
}

// SetSignalName attaches a name to an existing gate.
func (n *Netlist) SetSignalName(id int, name string) error {
	if id < 0 || id >= len(n.gates) {
		return fmt.Errorf("netlist: no gate %d", id)
	}
	return n.setName(id, name)
}

// MarkOutput declares that gate id drives the next primary output, with the
// given port name.
func (n *Netlist) MarkOutput(name string, id int) error {
	if id < 0 || id >= len(n.gates) {
		return fmt.Errorf("netlist: no gate %d", id)
	}
	n.outputs = append(n.outputs, id)
	n.outputNames = append(n.outputNames, name)
	return nil
}

// Cone returns the gate IDs in the transitive fanin of root (root included),
// in ascending — hence topological — order. Per Theorem 2 of the paper,
// backward rewriting of one output bit only ever touches its cone.
//
// Membership is tracked in a bitset over the dense ID space. Fanins are
// always smaller than their readers, so only IDs ≤ root need representing,
// and — the key property — a single descending sweep over the IDs settles
// reachability: by the time the sweep reaches gate id, every reader of id
// has already been processed, so id's membership bit is final. The sweep
// visits gates in decreasing ID order, which walks the gate table
// sequentially instead of in DFS stack order; on Montgomery netlists (whose
// per-bit cones approach the full ~m²-gate netlist) that cache locality is
// worth ~10x over the explicit-stack DFS this replaced, which itself
// replaced a map+sort.Ints implementation that dominated whole extractions
// (see BenchmarkConeSort). Zero words skip 64 absent IDs at a time, so
// small cones under a large root stay cheap. O(root/64 + cone + edges).
func (n *Netlist) Cone(root int) []int {
	seen := make([]uint64, root/64+1)
	seen[root>>6] |= 1 << (uint(root) & 63)
	count := 1
	for w := len(seen) - 1; w >= 0; w-- {
		rem := seen[w]
		for rem != 0 {
			b := 63 - bits.LeadingZeros64(rem)
			rem &^= 1 << uint(b)
			for _, f := range n.gates[w<<6+b].Fanin {
				fw, fb := f>>6, uint64(1)<<(uint(f)&63)
				if seen[fw]&fb == 0 {
					seen[fw] |= fb
					count++
					if fw == w {
						// A fanin below b in the current word: fold it into
						// the in-progress descent so it is not skipped.
						rem |= fb
					}
				}
			}
		}
	}
	out := make([]int, 0, count)
	for w, word := range seen {
		base := w << 6
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			out = append(out, base+b)
		}
	}
	return out
}

// Levels returns the logic depth of each gate (inputs and constants at 0)
// and the maximum depth of the circuit.
func (n *Netlist) Levels() (levels []int, depth int) {
	levels = make([]int, len(n.gates))
	for id, g := range n.gates {
		l := 0
		for _, f := range g.Fanin {
			if levels[f]+1 > l {
				l = levels[f] + 1
			}
		}
		levels[id] = l
		if l > depth {
			depth = l
		}
	}
	return levels, depth
}

// Stats summarizes the netlist composition.
type Stats struct {
	Gates     int // all nodes
	Inputs    int
	Outputs   int
	Equations int // non-input nodes (#eqns of Tables I/II)
	Depth     int
	ByType    map[GateType]int
}

// Stats computes composition statistics.
func (n *Netlist) Stats() Stats {
	s := Stats{
		Gates:     len(n.gates),
		Inputs:    len(n.inputs),
		Outputs:   len(n.outputs),
		Equations: n.NumEquations(),
		ByType:    make(map[GateType]int),
	}
	for _, g := range n.gates {
		s.ByType[g.Type]++
	}
	_, s.Depth = n.Levels()
	return s
}

// GateANF returns the algebraic model of gate id as a polynomial over the
// variables assigned to its fanins by varOf — the per-gate expressions of
// Eq. (1) in the paper, extended to complex cells. All models are derived
// from the same eval used by simulation (via the Möbius transform for LUTs,
// hand-expanded for fixed cells), so the algebraic and Boolean semantics
// coincide by construction.
func (n *Netlist) GateANF(id int, varOf func(int) anf.Var) (anf.Poly, error) {
	g := n.gates[id]
	v := func(i int) anf.Var { return varOf(g.Fanin[i]) }
	mono := anf.NewMono
	one := anf.MonoOne
	switch g.Type {
	case Input:
		return anf.Poly{}, fmt.Errorf("netlist: gate %d is a primary input", id)
	case Const0:
		return anf.Constant(false), nil
	case Const1:
		return anf.Constant(true), nil
	case Buf:
		return anf.FromMonos(mono(v(0))), nil
	case Not:
		return anf.FromMonos(one, mono(v(0))), nil
	case And:
		return anf.FromMonos(mono(v(0), v(1))), nil
	case Or:
		return anf.FromMonos(mono(v(0)), mono(v(1)), mono(v(0), v(1))), nil
	case Xor:
		return anf.FromMonos(mono(v(0)), mono(v(1))), nil
	case Xnor:
		return anf.FromMonos(one, mono(v(0)), mono(v(1))), nil
	case Nand:
		return anf.FromMonos(one, mono(v(0), v(1))), nil
	case Nor:
		return anf.FromMonos(one, mono(v(0)), mono(v(1)), mono(v(0), v(1))), nil
	case Lut:
		vars := make([]anf.Var, len(g.Fanin))
		for i, f := range g.Fanin {
			vars[i] = varOf(f)
		}
		return anf.FromTruthTable(vars, g.Table)
	default:
		// Complex cells: derive from the shared eval via truth table.
		k := len(g.Fanin)
		vars := make([]anf.Var, k)
		for i, f := range g.Fanin {
			vars[i] = varOf(f)
		}
		table := make([]bool, 1<<uint(k))
		in := make([]bool, k)
		for row := range table {
			for i := 0; i < k; i++ {
				in[i] = row&(1<<uint(i)) != 0
			}
			table[row] = g.Type.eval(in)
		}
		return anf.FromTruthTable(vars, table)
	}
}
