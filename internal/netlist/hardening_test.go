package netlist

import (
	"errors"
	"strings"
	"testing"
)

// TestParsersReturnErrParse: every reader must turn malformed input into an
// error wrapping ErrParse — typed, testable with errors.Is, and never a
// panic. The corpus covers truncation, garbage, and structurally invalid
// but lexically plausible inputs for each format.
func TestParsersReturnErrParse(t *testing.T) {
	eqn := func(s string) error { _, err := ReadEQN(strings.NewReader(s), "t"); return err }
	blif := func(s string) error { _, err := ReadBLIF(strings.NewReader(s)); return err }
	verilog := func(s string) error { _, err := ReadVerilog(strings.NewReader(s)); return err }

	tests := []struct {
		name  string
		parse func(string) error
		in    string
	}{
		{"eqn/unbalanced-parens", eqn, "INORDER = a;\nOUTORDER = z;\nz = ((a;\n"},
		{"eqn/truncated-expr", eqn, "INORDER = a b;\nOUTORDER = z;\nz = a ^"},
		{"eqn/missing-rhs", eqn, "INORDER = a;\nOUTORDER = z;\nz =\n"},
		{"eqn/undefined-signal", eqn, "INORDER = a;\nOUTORDER = z;\nz = nope;\n"},
		{"eqn/binary-garbage", eqn, "\x00\x01\x02\xff = ;;;"},
		{"eqn/operator-soup", eqn, "INORDER = a;\nOUTORDER = z;\nz = + * ^ ! a;\n"},

		{"blif/names-before-model", blif, ".names a z\n1 1\n"},
		{"blif/undriven-output", blif, ".model m\n.inputs a\n.outputs z\n.end\n"},
		{"blif/bad-cover-literal", blif, ".model m\n.inputs a\n.outputs z\n.names a z\nX 1\n.end\n"},
		{"blif/bad-cover-width", blif, ".model m\n.inputs a b\n.outputs z\n.names a b z\n111 1\n.end\n"},
		{"blif/latch", blif, ".model m\n.inputs a\n.outputs z\n.latch a z re clk 0\n.end\n"},
		{"blif/garbage-directive", blif, ".model m\n.inputs a\n.outputs z\n.frobnicate\n.end\n"},

		{"verilog/no-module", verilog, "assign z = a;\n"},
		{"verilog/unterminated-module", verilog, "module m(a, z);\ninput a;\noutput z;\nassign z = a;\n"},
		{"verilog/unknown-cell", verilog, "module m(a, z);\ninput a;\noutput z;\nfrobgate g1(z, a);\nendmodule\n"},
		{"verilog/truncated-instance", verilog, "module m(a, z);\ninput a;\noutput z;\nxor g1(z,\n"},
		{"verilog/undeclared-net", verilog, "module m(a, z);\ninput a;\noutput z;\nassign z = ghost;\nendmodule\n"},
		{"verilog/binary-garbage", verilog, "\x7fELF\x02\x01\x01module"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.parse(tt.in) // a panic here fails the test via the runtime
			if err == nil {
				t.Fatal("malformed input parsed without error")
			}
			if !errors.Is(err, ErrParse) {
				t.Fatalf("err = %v, want errors.Is(err, ErrParse)", err)
			}
		})
	}
}

// TestErrParseNoDoubleWrap: re-wrapping a parse error must not stack a
// second "parse error" prefix onto the message.
func TestErrParseNoDoubleWrap(t *testing.T) {
	inner := parseError(errors.New("line 3: bad token"))
	outer := parseError(inner)
	if outer != inner {
		t.Errorf("parseError re-wrapped an already-tagged error: %v", outer)
	}
	if got := strings.Count(outer.Error(), "parse error"); got != 1 {
		t.Errorf("message mentions 'parse error' %d times: %q", got, outer.Error())
	}
	if parseError(nil) != nil {
		t.Error("parseError(nil) must be nil")
	}
}

// xorChain builds in -> g1=XOR(a,b) -> g2=XOR(g1,c) -> out with an extra
// AND output, the fixture for SimulateXor / FanoutCone assertions.
func xorChain(t *testing.T) (*Netlist, [3]int, [2]int) {
	t.Helper()
	n := New("chain")
	a, _ := n.AddInput("a")
	b, _ := n.AddInput("b")
	c, _ := n.AddInput("c")
	g1, err := n.AddGate(Xor, a, b)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := n.AddGate(Xor, g1, c)
	if err != nil {
		t.Fatal(err)
	}
	g3, err := n.AddGate(And, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.MarkOutput("z", g2); err != nil {
		t.Fatal(err)
	}
	if err := n.MarkOutput("w", g3); err != nil {
		t.Fatal(err)
	}
	return n, [3]int{a, b, c}, [2]int{g1, g2}
}

func TestSimulateXorOverlay(t *testing.T) {
	n, _, gates := xorChain(t)
	words := []uint64{0xF0F0, 0xCCCC, 0xAAAA}

	plain, err := n.Simulate(words)
	if err != nil {
		t.Fatal(err)
	}
	// Complementing g1 on lanes `mask` must complement z on exactly those
	// lanes (the XOR chain propagates every flip) and leave w untouched.
	const mask = uint64(0x00FF)
	flipped, err := n.SimulateXor(words, map[int]uint64{gates[0]: mask})
	if err != nil {
		t.Fatal(err)
	}
	outs := n.Outputs()
	if got := plain[outs[0]] ^ flipped[outs[0]]; got != mask {
		t.Errorf("z flipped on lanes %#x, want %#x", got, mask)
	}
	if plain[outs[1]] != flipped[outs[1]] {
		t.Error("flip on the XOR chain leaked into the AND output")
	}
	// nil flips must be Simulate exactly.
	again, err := n.SimulateXor(words, nil)
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range plain {
		if again[id] != v {
			t.Fatalf("SimulateXor(nil) deviates from Simulate at gate %d", id)
		}
	}
}

func TestFanoutCone(t *testing.T) {
	n, ins, gates := xorChain(t)
	got := n.FanoutCone(gates[0])
	want := []int{gates[0], gates[1]} // g1 and the downstream XOR, not the AND
	if len(got) != len(want) {
		t.Fatalf("FanoutCone(g1) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FanoutCone(g1) = %v, want %v (ascending IDs)", got, want)
		}
	}
	// An input's fanout reaches everything fed by it.
	aFan := n.FanoutCone(ins[0])
	if len(aFan) != 4 { // a itself, g1, g2, g3
		t.Errorf("FanoutCone(a) = %v, want 4 gates", aFan)
	}
}
