package netlist

import "fmt"

// Simulate runs 64-way bit-parallel simulation: each primary input carries
// 64 independent Boolean test vectors packed into a uint64, and the returned
// slice holds the 64 response bits of every gate. inputs must supply one
// word per primary input in port order.
//
// Simulation is the randomized cross-check used alongside the formal ANF
// comparison in package extract.
func (n *Netlist) Simulate(inputs []uint64) ([]uint64, error) {
	return n.SimulateXor(inputs, nil)
}

// SimulateXor is Simulate with fault injection: after a gate's word is
// computed, it is XORed with flips[id] before readers consume it. A lane
// with a set mask bit therefore sees the gate stuck at its complement — the
// primitive behind sensitization-based trojan localization (flip a suspect
// gate only on the test vectors where the output deviates and watch whether
// the deviation disappears). A nil map is a plain simulation.
func (n *Netlist) SimulateXor(inputs []uint64, flips map[int]uint64) ([]uint64, error) {
	if len(inputs) != len(n.inputs) {
		return nil, fmt.Errorf("netlist: %d input words for %d primary inputs", len(inputs), len(n.inputs))
	}
	vals := make([]uint64, len(n.gates))
	nextInput := 0
	for id, g := range n.gates {
		switch g.Type {
		case Input:
			vals[id] = inputs[nextInput]
			nextInput++
		case Const0:
			vals[id] = 0
		case Const1:
			vals[id] = ^uint64(0)
		case Buf:
			vals[id] = vals[g.Fanin[0]]
		case Not:
			vals[id] = ^vals[g.Fanin[0]]
		case And:
			vals[id] = vals[g.Fanin[0]] & vals[g.Fanin[1]]
		case Or:
			vals[id] = vals[g.Fanin[0]] | vals[g.Fanin[1]]
		case Xor:
			vals[id] = vals[g.Fanin[0]] ^ vals[g.Fanin[1]]
		case Xnor:
			vals[id] = ^(vals[g.Fanin[0]] ^ vals[g.Fanin[1]])
		case Nand:
			vals[id] = ^(vals[g.Fanin[0]] & vals[g.Fanin[1]])
		case Nor:
			vals[id] = ^(vals[g.Fanin[0]] | vals[g.Fanin[1]])
		case Aoi21:
			vals[id] = ^(vals[g.Fanin[0]]&vals[g.Fanin[1]] | vals[g.Fanin[2]])
		case Oai21:
			vals[id] = ^((vals[g.Fanin[0]] | vals[g.Fanin[1]]) & vals[g.Fanin[2]])
		case Aoi22:
			vals[id] = ^(vals[g.Fanin[0]]&vals[g.Fanin[1]] | vals[g.Fanin[2]]&vals[g.Fanin[3]])
		case Oai22:
			vals[id] = ^((vals[g.Fanin[0]] | vals[g.Fanin[1]]) & (vals[g.Fanin[2]] | vals[g.Fanin[3]]))
		case Mux:
			s := vals[g.Fanin[2]]
			vals[id] = vals[g.Fanin[0]]&^s | vals[g.Fanin[1]]&s
		case Lut:
			vals[id] = n.simLut(g, vals)
		default:
			return nil, fmt.Errorf("netlist: cannot simulate gate type %v", g.Type)
		}
		if flips != nil {
			if m, ok := flips[id]; ok {
				vals[id] ^= m
			}
		}
	}
	return vals, nil
}

// simLut evaluates a truth-table gate across 64 lanes by OR-ing, for every
// minterm row, the AND of (possibly complemented) fanin words.
func (n *Netlist) simLut(g Gate, vals []uint64) uint64 {
	var out uint64
	for row, bit := range g.Table {
		if !bit {
			continue
		}
		word := ^uint64(0)
		for i, f := range g.Fanin {
			if row&(1<<uint(i)) != 0 {
				word &= vals[f]
			} else {
				word &= ^vals[f]
			}
		}
		out |= word
	}
	return out
}

// OutputWords extracts the primary-output words from a Simulate result.
func (n *Netlist) OutputWords(vals []uint64) []uint64 {
	out := make([]uint64, len(n.outputs))
	for i, id := range n.outputs {
		out[i] = vals[id]
	}
	return out
}

// FanoutCone returns root plus every gate in root's transitive fanout, in
// ascending ID order — the dual of Cone. A trojan at gate g can only disturb
// outputs inside FanoutCone(g), which is what localization accuracy is
// judged against.
func (n *Netlist) FanoutCone(root int) []int {
	mark := make([]bool, len(n.gates))
	mark[root] = true
	out := []int{root}
	for id := root + 1; id < len(n.gates); id++ {
		for _, f := range n.gates[id].Fanin {
			if mark[f] {
				mark[id] = true
				out = append(out, id)
				break
			}
		}
	}
	return out
}
