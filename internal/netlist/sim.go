package netlist

import "fmt"

// Simulate runs 64-way bit-parallel simulation: each primary input carries
// 64 independent Boolean test vectors packed into a uint64, and the returned
// slice holds the 64 response bits of every gate. inputs must supply one
// word per primary input in port order.
//
// Simulation is the randomized cross-check used alongside the formal ANF
// comparison in package extract.
func (n *Netlist) Simulate(inputs []uint64) ([]uint64, error) {
	if len(inputs) != len(n.inputs) {
		return nil, fmt.Errorf("netlist: %d input words for %d primary inputs", len(inputs), len(n.inputs))
	}
	vals := make([]uint64, len(n.gates))
	nextInput := 0
	for id, g := range n.gates {
		switch g.Type {
		case Input:
			vals[id] = inputs[nextInput]
			nextInput++
		case Const0:
			vals[id] = 0
		case Const1:
			vals[id] = ^uint64(0)
		case Buf:
			vals[id] = vals[g.Fanin[0]]
		case Not:
			vals[id] = ^vals[g.Fanin[0]]
		case And:
			vals[id] = vals[g.Fanin[0]] & vals[g.Fanin[1]]
		case Or:
			vals[id] = vals[g.Fanin[0]] | vals[g.Fanin[1]]
		case Xor:
			vals[id] = vals[g.Fanin[0]] ^ vals[g.Fanin[1]]
		case Xnor:
			vals[id] = ^(vals[g.Fanin[0]] ^ vals[g.Fanin[1]])
		case Nand:
			vals[id] = ^(vals[g.Fanin[0]] & vals[g.Fanin[1]])
		case Nor:
			vals[id] = ^(vals[g.Fanin[0]] | vals[g.Fanin[1]])
		case Aoi21:
			vals[id] = ^(vals[g.Fanin[0]]&vals[g.Fanin[1]] | vals[g.Fanin[2]])
		case Oai21:
			vals[id] = ^((vals[g.Fanin[0]] | vals[g.Fanin[1]]) & vals[g.Fanin[2]])
		case Aoi22:
			vals[id] = ^(vals[g.Fanin[0]]&vals[g.Fanin[1]] | vals[g.Fanin[2]]&vals[g.Fanin[3]])
		case Oai22:
			vals[id] = ^((vals[g.Fanin[0]] | vals[g.Fanin[1]]) & (vals[g.Fanin[2]] | vals[g.Fanin[3]]))
		case Mux:
			s := vals[g.Fanin[2]]
			vals[id] = vals[g.Fanin[0]]&^s | vals[g.Fanin[1]]&s
		case Lut:
			vals[id] = n.simLut(g, vals)
		default:
			return nil, fmt.Errorf("netlist: cannot simulate gate type %v", g.Type)
		}
	}
	return vals, nil
}

// simLut evaluates a truth-table gate across 64 lanes by OR-ing, for every
// minterm row, the AND of (possibly complemented) fanin words.
func (n *Netlist) simLut(g Gate, vals []uint64) uint64 {
	var out uint64
	for row, bit := range g.Table {
		if !bit {
			continue
		}
		word := ^uint64(0)
		for i, f := range g.Fanin {
			if row&(1<<uint(i)) != 0 {
				word &= vals[f]
			} else {
				word &= ^vals[f]
			}
		}
		out |= word
	}
	return out
}

// OutputWords extracts the primary-output words from a Simulate result.
func (n *Netlist) OutputWords(vals []uint64) []uint64 {
	out := make([]uint64, len(n.outputs))
	for i, id := range n.outputs {
		out[i] = vals[id]
	}
	return out
}
