package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// The equation format is a line-oriented text netlist in the style of ABC's
// .eqn files, extended with an XOR operator:
//
//	# comment
//	INORDER = a0 a1 b0 b1;
//	OUTORDER = z0 z1;
//	n5 = a0 * b0;            # AND
//	n6 = !(a0 + b1);         # NOR via NOT/OR
//	z0 = n5 ^ n6;            # XOR
//
// Operator precedence (high to low): ! (NOT), * (AND), ^ (XOR), + (OR);
// parentheses group. The constants 0 and 1 are literals. Assignments must
// appear in topological order (signals defined before use), which is what
// WriteEQN emits.

type eqnToken struct {
	kind byte // one of: 'i' ident, '0', '1', '=', ';', '(', ')', '!', '*', '+', '^'
	text string
	line int
}

type eqnLexer struct {
	toks []eqnToken
	pos  int
}

func isIdentRune(r byte) bool {
	return r == '_' || r == '[' || r == ']' || r == '.' ||
		r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9'
}

func lexEQN(r io.Reader) (*eqnLexer, error) {
	lx := &eqnLexer{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexAny(line, "#"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		for i := 0; i < len(line); {
			c := line[i]
			switch {
			case c == ' ' || c == '\t' || c == '\r':
				i++
			case strings.IndexByte("=;()!*+^", c) >= 0:
				lx.toks = append(lx.toks, eqnToken{kind: c, line: lineNo})
				i++
			case isIdentRune(c):
				j := i
				for j < len(line) && isIdentRune(line[j]) {
					j++
				}
				word := line[i:j]
				switch word {
				case "0":
					lx.toks = append(lx.toks, eqnToken{kind: '0', line: lineNo})
				case "1":
					lx.toks = append(lx.toks, eqnToken{kind: '1', line: lineNo})
				default:
					lx.toks = append(lx.toks, eqnToken{kind: 'i', text: word, line: lineNo})
				}
				i = j
			default:
				return nil, fmt.Errorf("eqn: line %d: unexpected character %q", lineNo, c)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("eqn: %w", err)
	}
	return lx, nil
}

func (lx *eqnLexer) peek() (eqnToken, bool) {
	if lx.pos >= len(lx.toks) {
		return eqnToken{}, false
	}
	return lx.toks[lx.pos], true
}

func (lx *eqnLexer) next() (eqnToken, bool) {
	t, ok := lx.peek()
	if ok {
		lx.pos++
	}
	return t, ok
}

func (lx *eqnLexer) expect(kind byte) (eqnToken, error) {
	t, ok := lx.next()
	if !ok {
		return t, fmt.Errorf("eqn: unexpected end of file, want %q", kind)
	}
	if t.kind != kind {
		return t, fmt.Errorf("eqn: line %d: got %q, want %q", t.line, tokenDesc(t), kind)
	}
	return t, nil
}

func tokenDesc(t eqnToken) string {
	if t.kind == 'i' {
		return t.text
	}
	return string(t.kind)
}

type eqnParser struct {
	lx *eqnLexer
	n  *Netlist
}

// EQNName extracts the netlist name recorded in a serialized EQN body's
// leading "# <name>" comment, or fallback when there is none. WriteEQN
// always emits the header, so WriteEQN → EQNName → ReadEQN → WriteEQN
// reproduces the original bytes — which is what lets a shipped netlist's
// content hash (checkpoint.HashNetlist) verify on the receiving side.
func EQNName(eqn, fallback string) string {
	if rest, ok := strings.CutPrefix(eqn, "# "); ok {
		if name, _, ok := strings.Cut(rest, "\n"); ok && name != "" {
			return name
		}
	}
	return fallback
}

// ReadEQN parses an equation-format netlist. All syntax and structure
// failures are wrapped in ErrParse.
func ReadEQN(r io.Reader, name string) (*Netlist, error) {
	n, err := readEQN(r, name)
	if err != nil {
		return nil, parseError(err)
	}
	return n, nil
}

func readEQN(r io.Reader, name string) (*Netlist, error) {
	lx, err := lexEQN(r)
	if err != nil {
		return nil, err
	}
	p := &eqnParser{lx: lx, n: New(name)}
	var outOrder []string
	for {
		t, ok := lx.next()
		if !ok {
			break
		}
		if t.kind != 'i' {
			return nil, fmt.Errorf("eqn: line %d: statement must start with a name, got %q", t.line, tokenDesc(t))
		}
		switch t.text {
		case "INORDER":
			if _, err := lx.expect('='); err != nil {
				return nil, err
			}
			for {
				t2, ok := lx.next()
				if !ok {
					return nil, fmt.Errorf("eqn: INORDER not terminated")
				}
				if t2.kind == ';' {
					break
				}
				if t2.kind != 'i' {
					return nil, fmt.Errorf("eqn: line %d: bad INORDER entry %q", t2.line, tokenDesc(t2))
				}
				if _, err := p.n.AddInput(t2.text); err != nil {
					return nil, err
				}
			}
		case "OUTORDER":
			if _, err := lx.expect('='); err != nil {
				return nil, err
			}
			for {
				t2, ok := lx.next()
				if !ok {
					return nil, fmt.Errorf("eqn: OUTORDER not terminated")
				}
				if t2.kind == ';' {
					break
				}
				if t2.kind != 'i' {
					return nil, fmt.Errorf("eqn: line %d: bad OUTORDER entry %q", t2.line, tokenDesc(t2))
				}
				outOrder = append(outOrder, t2.text)
			}
		default:
			if _, err := lx.expect('='); err != nil {
				return nil, err
			}
			id, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if _, err := lx.expect(';'); err != nil {
				return nil, err
			}
			// If the RHS reduced to an already-named node, add a buffer so
			// the LHS name binds to its own gate.
			if p.n.names[id] != "" || p.n.gates[id].Type == Input {
				if id, err = p.n.AddGate(Buf, id); err != nil {
					return nil, err
				}
			}
			if err := p.n.SetSignalName(id, t.text); err != nil {
				return nil, fmt.Errorf("eqn: line %d: %w", t.line, err)
			}
		}
	}
	for _, name := range outOrder {
		id, ok := p.n.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("eqn: OUTORDER signal %q never defined", name)
		}
		if err := p.n.MarkOutput(name, id); err != nil {
			return nil, err
		}
	}
	if len(outOrder) == 0 {
		return nil, fmt.Errorf("eqn: missing OUTORDER declaration")
	}
	return p.n, nil
}

// parseOr parses xor-expr ('+' xor-expr)*.
func (p *eqnParser) parseOr() (int, error) {
	id, err := p.parseXor()
	if err != nil {
		return 0, err
	}
	for {
		t, ok := p.lx.peek()
		if !ok || t.kind != '+' {
			return id, nil
		}
		p.lx.pos++
		rhs, err := p.parseXor()
		if err != nil {
			return 0, err
		}
		if id, err = p.n.AddGate(Or, id, rhs); err != nil {
			return 0, err
		}
	}
}

// parseXor parses and-expr ('^' and-expr)*.
func (p *eqnParser) parseXor() (int, error) {
	id, err := p.parseAnd()
	if err != nil {
		return 0, err
	}
	for {
		t, ok := p.lx.peek()
		if !ok || t.kind != '^' {
			return id, nil
		}
		p.lx.pos++
		rhs, err := p.parseAnd()
		if err != nil {
			return 0, err
		}
		if id, err = p.n.AddGate(Xor, id, rhs); err != nil {
			return 0, err
		}
	}
}

// parseAnd parses unary ('*' unary)*.
func (p *eqnParser) parseAnd() (int, error) {
	id, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		t, ok := p.lx.peek()
		if !ok || t.kind != '*' {
			return id, nil
		}
		p.lx.pos++
		rhs, err := p.parseUnary()
		if err != nil {
			return 0, err
		}
		if id, err = p.n.AddGate(And, id, rhs); err != nil {
			return 0, err
		}
	}
}

func (p *eqnParser) parseUnary() (int, error) {
	t, ok := p.lx.peek()
	if !ok {
		return 0, fmt.Errorf("eqn: unexpected end of expression")
	}
	if t.kind == '!' {
		p.lx.pos++
		id, err := p.parseUnary()
		if err != nil {
			return 0, err
		}
		return p.n.AddGate(Not, id)
	}
	return p.parsePrimary()
}

func (p *eqnParser) parsePrimary() (int, error) {
	t, ok := p.lx.next()
	if !ok {
		return 0, fmt.Errorf("eqn: unexpected end of expression")
	}
	switch t.kind {
	case 'i':
		id, ok := p.n.Lookup(t.text)
		if !ok {
			return 0, fmt.Errorf("eqn: line %d: signal %q used before definition", t.line, t.text)
		}
		return id, nil
	case '0':
		return p.n.AddGate(Const0)
	case '1':
		return p.n.AddGate(Const1)
	case '(':
		id, err := p.parseOr()
		if err != nil {
			return 0, err
		}
		if _, err := p.lx.expect(')'); err != nil {
			return 0, err
		}
		return id, nil
	default:
		return 0, fmt.Errorf("eqn: line %d: unexpected %q in expression", t.line, tokenDesc(t))
	}
}

// WriteEQN renders the netlist in equation format. Every non-input gate
// becomes one assignment in topological order; complex cells and LUTs are
// expanded into their Boolean expressions.
func (n *Netlist) WriteEQN(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", n.Name)
	fmt.Fprint(bw, "INORDER =")
	for _, id := range n.inputs {
		fmt.Fprintf(bw, " %s", n.NameOf(id))
	}
	fmt.Fprintln(bw, ";")
	fmt.Fprint(bw, "OUTORDER =")
	for _, name := range n.outputNames {
		fmt.Fprintf(bw, " %s", name)
	}
	fmt.Fprintln(bw, ";")

	// Output ports that alias an internal signal of a different name (or an
	// input) need explicit buffer assignments.
	aliased := map[string]int{}
	for i, id := range n.outputs {
		if n.NameOf(id) != n.outputNames[i] {
			aliased[n.outputNames[i]] = id
		}
	}

	for id, g := range n.gates {
		if g.Type == Input {
			continue
		}
		fmt.Fprintf(bw, "%s = %s;\n", n.NameOf(id), n.gateExpr(g))
	}
	// Deterministic order for alias buffers.
	names := make([]string, 0, len(aliased))
	for name := range aliased {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(bw, "%s = %s;\n", name, n.NameOf(aliased[name]))
	}
	return bw.Flush()
}

// gateExpr renders the RHS expression of a gate in equation syntax.
func (n *Netlist) gateExpr(g Gate) string {
	f := func(i int) string { return n.NameOf(g.Fanin[i]) }
	switch g.Type {
	case Const0:
		return "0"
	case Const1:
		return "1"
	case Buf:
		return f(0)
	case Not:
		return "!" + f(0)
	case And:
		return f(0) + " * " + f(1)
	case Or:
		return f(0) + " + " + f(1)
	case Xor:
		return f(0) + " ^ " + f(1)
	case Xnor:
		return "!(" + f(0) + " ^ " + f(1) + ")"
	case Nand:
		return "!(" + f(0) + " * " + f(1) + ")"
	case Nor:
		return "!(" + f(0) + " + " + f(1) + ")"
	case Aoi21:
		return "!(" + f(0) + " * " + f(1) + " + " + f(2) + ")"
	case Oai21:
		return "!((" + f(0) + " + " + f(1) + ") * " + f(2) + ")"
	case Aoi22:
		return "!(" + f(0) + " * " + f(1) + " + " + f(2) + " * " + f(3) + ")"
	case Oai22:
		return "!((" + f(0) + " + " + f(1) + ") * (" + f(2) + " + " + f(3) + "))"
	case Mux:
		return "!" + f(2) + " * " + f(0) + " + " + f(2) + " * " + f(1)
	case Lut:
		return n.lutExpr(g)
	}
	panic(fmt.Sprintf("netlist: gateExpr on %v", g.Type))
}

// lutExpr expands a truth-table gate as a sum of minterms.
func (n *Netlist) lutExpr(g Gate) string {
	var minterms []string
	for row, bit := range g.Table {
		if !bit {
			continue
		}
		lits := make([]string, len(g.Fanin))
		for i := range g.Fanin {
			if row&(1<<uint(i)) != 0 {
				lits[i] = n.NameOf(g.Fanin[i])
			} else {
				lits[i] = "!" + n.NameOf(g.Fanin[i])
			}
		}
		minterms = append(minterms, strings.Join(lits, " * "))
	}
	if len(minterms) == 0 {
		return "0"
	}
	return strings.Join(minterms, " + ")
}
