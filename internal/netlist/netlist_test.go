package netlist

import (
	"math/rand"
	"testing"

	"github.com/galoisfield/gfre/internal/anf"
)

// buildFigure2 constructs the post-synthesized 2-bit GF(2^2) multiplier of
// Figure 2 in the paper (P(x) = x²+x+1):
//
//	s2 = a1·b1          (G6... naming follows the schematic's signals)
//	p0 = !(a0·b1)       z0 = !(G5) where G5 = !(a0b0)·!(s2)… — the figure's
//	p1 = !(a1·b0)       exact gate set is reproduced below.
//
// Gates per Figure 2: G6=AND(a1,b1)->s2, G5=NAND(a0,b0), G4=NAND(a1,b0),
// G3=NAND(a0,b1), G2=XNOR? … The figure is drawn with:
//
//	z0 = s0 XOR s2 with s0 = a0·b0
//	z1 = s1 XOR s2 with s1 = a0b1 + a1b0
//
// implemented as: s2=AND(a1,b1); G5=NAND(a0,b0) (so s0 = !G5);
// z0 = XNOR(G5, s2); p0=NAND(a0,b1); p1=NAND(a1,b0); G1=XOR(p0,p1);
// z1 = XOR(G1, s2). This matches the rewriting trace of Figure 3
// (e.g. G1 contributes s1 = p0+p1 with the constants cancelling).
func buildFigure2(t testing.TB) *Netlist {
	t.Helper()
	n := New("fig2_gf4_mult")
	a0, err := n.AddInput("a0")
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := n.AddInput("a1")
	b0, _ := n.AddInput("b0")
	b1, _ := n.AddInput("b1")
	s2, _ := n.AddGate(And, a1, b1)
	g5, _ := n.AddGate(Nand, a0, b0)
	z0, _ := n.AddGate(Xnor, g5, s2)
	p0, _ := n.AddGate(Nand, a0, b1)
	p1, _ := n.AddGate(Nand, a1, b0)
	g1, _ := n.AddGate(Xor, p0, p1)
	z1, _ := n.AddGate(Xor, g1, s2)
	for id, name := range map[int]string{s2: "s2", g5: "g5", z0: "z0", p0: "p0", p1: "p1", g1: "g1", z1: "z1"} {
		if err := n.SetSignalName(id, name); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.MarkOutput("z0", z0); err != nil {
		t.Fatal(err)
	}
	if err := n.MarkOutput("z1", z1); err != nil {
		t.Fatal(err)
	}
	return n
}

// gf4Mul multiplies in GF(2^2) with P(x)=x²+x+1, operands as 2-bit ints.
func gf4Mul(a, b uint) uint {
	var prod uint
	for i := uint(0); i < 2; i++ {
		if b&(1<<i) != 0 {
			prod ^= a << i
		}
	}
	// reduce bits 2,3 with x^2 = x+1, x^3 = x^2+x = (x+1)+x = 1... do it
	// iteratively from the top.
	if prod&8 != 0 {
		prod ^= 8 | 6 // x^3 -> x^2+x
	}
	if prod&4 != 0 {
		prod ^= 4 | 3 // x^2 -> x+1
	}
	return prod & 3
}

func TestFigure2IsAGF4Multiplier(t *testing.T) {
	n := buildFigure2(t)
	for a := uint(0); a < 4; a++ {
		for b := uint(0); b < 4; b++ {
			in := []uint64{uint64(a & 1), uint64(a >> 1), uint64(b & 1), uint64(b >> 1)}
			// Broadcast single bits to lane 0 only; lane 0 carries the test.
			vals, err := n.Simulate(in)
			if err != nil {
				t.Fatal(err)
			}
			outs := n.OutputWords(vals)
			got := uint(outs[0]&1) | uint(outs[1]&1)<<1
			if want := gf4Mul(a, b); got != want {
				t.Errorf("%d * %d = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestAddGateValidation(t *testing.T) {
	n := New("t")
	a, _ := n.AddInput("a")
	if _, err := n.AddGate(Input); err == nil {
		t.Error("AddGate(Input) should fail")
	}
	if _, err := n.AddGate(And, a); err == nil {
		t.Error("AND with one fanin should fail")
	}
	if _, err := n.AddGate(Not, 5); err == nil {
		t.Error("forward fanin reference should fail")
	}
	if _, err := n.AddGate(Not, -1); err == nil {
		t.Error("negative fanin should fail")
	}
	if _, err := n.AddGate(Lut, a); err == nil {
		t.Error("AddGate(Lut) should direct to AddLut")
	}
	if _, err := n.AddLut([]bool{true}, a); err == nil {
		t.Error("LUT with wrong table size should fail")
	}
	if _, err := n.AddLut(nil); err == nil {
		t.Error("LUT with no inputs should fail")
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	n := New("t")
	if _, err := n.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddInput("a"); err == nil {
		t.Error("duplicate input name should fail")
	}
	id, _ := n.AddGate(Const1)
	if err := n.SetSignalName(id, "a"); err == nil {
		t.Error("duplicate signal name should fail")
	}
}

func TestConeExtraction(t *testing.T) {
	n := buildFigure2(t)
	z0, _ := n.Lookup("z0")
	z1, _ := n.Lookup("z1")
	cone0 := n.Cone(z0)
	cone1 := n.Cone(z1)
	// z0's cone: a0,a1,b0,b1? a1 and b1 feed s2 which feeds z0; a0,b0 feed
	// g5. So cone0 = {a0,a1,b0,b1,s2,g5,z0} = 7 nodes.
	if len(cone0) != 7 {
		t.Errorf("cone(z0) = %v (%d nodes), want 7", cone0, len(cone0))
	}
	// z1's cone excludes g5 and z0: {a0,a1,b0,b1,s2,p0,p1,g1,z1} = 9.
	if len(cone1) != 9 {
		t.Errorf("cone(z1) = %v (%d nodes), want 9", cone1, len(cone1))
	}
	// Cones are ascending (topological).
	for i := 1; i < len(cone1); i++ {
		if cone1[i] <= cone1[i-1] {
			t.Fatal("cone not in ascending order")
		}
	}
}

func TestLevelsAndStats(t *testing.T) {
	n := buildFigure2(t)
	// Longest path: p0 -> g1 -> z1.
	_, depth := n.Levels()
	if depth != 3 {
		t.Errorf("depth = %d, want 3", depth)
	}
	s := n.Stats()
	if s.Inputs != 4 || s.Outputs != 2 || s.Gates != 11 || s.Equations != 7 {
		t.Errorf("stats = %+v", s)
	}
	if s.ByType[Nand] != 3 || s.ByType[Xor] != 2 || s.ByType[And] != 1 || s.ByType[Xnor] != 1 {
		t.Errorf("ByType = %v", s.ByType)
	}
}

func TestNumEquationsCountsNonInputs(t *testing.T) {
	n := New("t")
	a, _ := n.AddInput("a")
	if n.NumEquations() != 0 {
		t.Error("inputs are not equations")
	}
	n.AddGate(Not, a)
	n.AddGate(Const1)
	if n.NumEquations() != 2 {
		t.Errorf("NumEquations = %d", n.NumEquations())
	}
}

// TestGateANFMatchesSimulation: for every gate type, the algebraic model of
// Eq. (1) must agree with the Boolean simulation semantics on all input
// combinations — the inductive step of Theorem 1.
func TestGateANFMatchesSimulation(t *testing.T) {
	types := []GateType{Const0, Const1, Buf, Not, And, Or, Xor, Xnor, Nand,
		Nor, Aoi21, Oai21, Aoi22, Oai22, Mux}
	for _, gt := range types {
		k := gt.Arity()
		n := New("t")
		ids := make([]int, k)
		for i := range ids {
			ids[i], _ = n.AddInput(string(rune('a' + i)))
		}
		gid, err := n.AddGate(gt, ids...)
		if err != nil {
			t.Fatalf("%v: %v", gt, err)
		}
		if err := n.MarkOutput("z", gid); err != nil {
			t.Fatal(err)
		}
		poly, err := n.GateANF(gid, func(id int) anf.Var { return anf.Var(id) })
		if err != nil {
			t.Fatalf("%v: GateANF: %v", gt, err)
		}
		for row := 0; row < 1<<uint(k); row++ {
			words := make([]uint64, k)
			for i := 0; i < k; i++ {
				if row&(1<<uint(i)) != 0 {
					words[i] = 1
				}
			}
			vals, err := n.Simulate(words)
			if err != nil {
				t.Fatal(err)
			}
			simBit := vals[gid]&1 == 1
			anfBit := poly.Eval(func(v anf.Var) bool { return words[int(v)-0]&1 == 1 })
			if simBit != anfBit {
				t.Errorf("%v row %d: sim=%v anf=%v (poly %v)", gt, row, simBit, anfBit, poly)
			}
		}
	}
}

func TestGateANFLut(t *testing.T) {
	// 3-input majority LUT.
	n := New("t")
	a, _ := n.AddInput("a")
	b, _ := n.AddInput("b")
	c, _ := n.AddInput("c")
	table := make([]bool, 8)
	for row := range table {
		ones := row&1 + row>>1&1 + row>>2&1
		table[row] = ones >= 2
	}
	id, err := n.AddLut(table, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	poly, err := n.GateANF(id, func(id int) anf.Var { return anf.Var(id) })
	if err != nil {
		t.Fatal(err)
	}
	// maj(a,b,c) = ab + ac + bc in ANF.
	want := anf.FromMonos(
		anf.NewMono(anf.Var(a), anf.Var(b)),
		anf.NewMono(anf.Var(a), anf.Var(c)),
		anf.NewMono(anf.Var(b), anf.Var(c)),
	)
	if !poly.Equal(want) {
		t.Errorf("majority ANF = %v, want %v", poly, want)
	}
}

func TestGateANFInputFails(t *testing.T) {
	n := New("t")
	a, _ := n.AddInput("a")
	if _, err := n.GateANF(a, func(id int) anf.Var { return anf.Var(id) }); err == nil {
		t.Error("GateANF on a primary input should fail")
	}
}

func TestSimulateBitParallel(t *testing.T) {
	// 64 random vectors at once must match 64 single-vector runs.
	n := buildFigure2(t)
	r := rand.New(rand.NewSource(21))
	words := []uint64{r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()}
	vals, err := n.Simulate(words)
	if err != nil {
		t.Fatal(err)
	}
	outs := n.OutputWords(vals)
	for lane := 0; lane < 64; lane++ {
		a := uint(words[0]>>uint(lane))&1 | (uint(words[1]>>uint(lane))&1)<<1
		b := uint(words[2]>>uint(lane))&1 | (uint(words[3]>>uint(lane))&1)<<1
		got := uint(outs[0]>>uint(lane))&1 | (uint(outs[1]>>uint(lane))&1)<<1
		if want := gf4Mul(a, b); got != want {
			t.Fatalf("lane %d: %d*%d = %d, want %d", lane, a, b, got, want)
		}
	}
}

func TestSimulateInputCountMismatch(t *testing.T) {
	n := buildFigure2(t)
	if _, err := n.Simulate([]uint64{1, 2}); err == nil {
		t.Error("wrong input count should fail")
	}
}

func TestGateTypeString(t *testing.T) {
	if And.String() != "AND" || Aoi21.String() != "AOI21" {
		t.Error("GateType names wrong")
	}
	if GateType(200).String() == "" {
		t.Error("unknown GateType should still render")
	}
}
