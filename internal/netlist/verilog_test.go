package netlist

import (
	"bytes"
	"strings"
	"testing"
)

const sampleVerilog = `
// GF(2^2) multiplier, P(x) = x^2+x+1
module gf4_mult ( a0, a1, b0, b1, z0, z1 );
  input a0, a1, b0, b1;
  output z0, z1;
  wire s0, s2, t0, t1;
  and g0 ( s0, a0, b0 );
  and g1 ( s2, a1, b1 );
  xor g2 ( z0, s0, s2 );
  and g3 ( t0, a0, b1 );
  and g4 ( t1, a1, b0 );
  assign z1 = t0 ^ t1 ^ s2;
endmodule
`

func TestReadVerilog(t *testing.T) {
	n, err := ReadVerilog(strings.NewReader(sampleVerilog))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "gf4_mult" {
		t.Errorf("module name = %q", n.Name)
	}
	if len(n.Inputs()) != 4 || len(n.Outputs()) != 2 {
		t.Fatalf("ports: %d in, %d out", len(n.Inputs()), len(n.Outputs()))
	}
	for a := uint(0); a < 4; a++ {
		for b := uint(0); b < 4; b++ {
			vals, err := n.Simulate([]uint64{uint64(a & 1), uint64(a >> 1), uint64(b & 1), uint64(b >> 1)})
			if err != nil {
				t.Fatal(err)
			}
			outs := n.OutputWords(vals)
			got := uint(outs[0]&1) | uint(outs[1]&1)<<1
			if want := gf4Mul(a, b); got != want {
				t.Errorf("%d*%d = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestReadVerilogVectorsAndAssignOps(t *testing.T) {
	src := `
module vec ( a, z );
  input [3:0] a;
  output [1:0] z;
  /* z[0] = a0 & a1 | ~a2 ; z[1] = a3 ^ 1'b1 */
  assign z[0] = a[0] & a[1] | ~a[2];
  assign z[1] = a[3] ^ 1'b1;
endmodule
`
	n, err := ReadVerilog(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.Inputs()); got != 4 {
		t.Fatalf("%d inputs", got)
	}
	for mask := 0; mask < 16; mask++ {
		in := make([]uint64, 4)
		for i := range in {
			in[i] = uint64(mask >> uint(i) & 1)
		}
		vals, err := n.Simulate(in)
		if err != nil {
			t.Fatal(err)
		}
		outs := n.OutputWords(vals)
		a0, a1, a2, a3 := mask&1 != 0, mask&2 != 0, mask&4 != 0, mask&8 != 0
		want0 := a0 && a1 || !a2
		want1 := !a3
		if (outs[0]&1 == 1) != want0 || (outs[1]&1 == 1) != want1 {
			t.Errorf("mask %d: got %d,%d want %v,%v", mask, outs[0]&1, outs[1]&1, want0, want1)
		}
	}
}

func TestReadVerilogOutOfOrderAndMultiInput(t *testing.T) {
	// Gates referencing signals defined later, plus a 3-input nand.
	src := `
module ooo ( a, b, c, z );
  input a, b, c; output z;
  wire t, u;
  nand g1 ( z, t, u, c );
  and g2 ( t, a, b );
  or g3 ( u, b, c );
endmodule
`
	n, err := ReadVerilog(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for mask := 0; mask < 8; mask++ {
		in := []uint64{uint64(mask & 1), uint64(mask >> 1 & 1), uint64(mask >> 2 & 1)}
		vals, err := n.Simulate(in)
		if err != nil {
			t.Fatal(err)
		}
		a, b, c := mask&1 != 0, mask&2 != 0, mask&4 != 0
		want := !((a && b) && (b || c) && c)
		if got := n.OutputWords(vals)[0]&1 == 1; got != want {
			t.Errorf("mask %d: got %v want %v", mask, got, want)
		}
	}
}

func TestReadVerilogErrors(t *testing.T) {
	bad := []string{
		"module m ( z ); output z; always @(posedge clk) z <= 1; endmodule",
		"module m ( a, z ); input a; output z; endmodule",                                     // z undriven
		"module m ( a, z ); input a; output z; and g (z, a); endmodule",                       // and with 1 input
		"module m ( a, z ); input a; output z; assign z = q; endmodule",                       // no driver
		"module m ( a, z ); input a; output z; assign z = a; assign z = a; endmodule",         // double drive
		"module m ( a, z ); input a; output z; wire w; assign w = z; assign z = w; endmodule", // cycle
		"module m ( a, z ); input a; output z; assign z = (a; endmodule",                      // paren
	}
	for i, src := range bad {
		if _, err := ReadVerilog(strings.NewReader(src)); err == nil {
			t.Errorf("case %d should fail:\n%s", i, src)
		}
	}
}

func TestVerilogRoundTrip(t *testing.T) {
	n := buildFigure2(t)
	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	n2, err := ReadVerilog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, buf.String())
	}
	assertSameFunction(t, n, n2)
}

func TestVerilogRoundTripComplexCellsAndLuts(t *testing.T) {
	n := New("cells")
	var ins []int
	for _, s := range []string{"a", "b", "c", "d"} {
		id, _ := n.AddInput(s)
		ins = append(ins, id)
	}
	g1, _ := n.AddGate(Aoi21, ins[0], ins[1], ins[2])
	g2, _ := n.AddGate(Oai22, ins[0], ins[1], ins[2], ins[3])
	g3, _ := n.AddGate(Mux, g1, g2, ins[3])
	c0, _ := n.AddGate(Const0)
	c1, _ := n.AddGate(Const1)
	g4, _ := n.AddGate(Xor, c0, c1)
	maj := make([]bool, 8)
	for row := range maj {
		maj[row] = (row&1)+(row>>1&1)+(row>>2&1) >= 2
	}
	g5, _ := n.AddLut(maj, g3, g4, ins[0])
	n.MarkOutput("z0", g3)
	n.MarkOutput("z1", g5)
	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	n2, err := ReadVerilog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, buf.String())
	}
	assertSameFunction(t, n, n2)
}

func TestVerilogCrossFormat(t *testing.T) {
	// BLIF in, Verilog out, back in.
	n, err := ReadBLIF(strings.NewReader(sampleBLIF))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	n2, err := ReadVerilog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, buf.String())
	}
	assertSameFunction(t, n, n2)
}

func TestVerilogEscapedIdentifiers(t *testing.T) {
	src := "module m ( \\a[0] , z );\n input \\a[0] ;\n output z;\n assign z = ~ \\a[0] ;\nendmodule\n"
	n, err := ReadVerilog(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	vals, err := n.Simulate([]uint64{0})
	if err != nil {
		t.Fatal(err)
	}
	if n.OutputWords(vals)[0]&1 != 1 {
		t.Error("~0 should be 1")
	}
}
