package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadBLIF parses a combinational subset of Berkeley BLIF:
// .model/.inputs/.outputs/.names/.end, with single-output covers of up to
// 16 inputs. Latches, subcircuits and multiple models are not supported —
// the paper's benchmarks are flattened combinational multipliers.
//
// Unlike the equation format, BLIF allows .names blocks in any order;
// ReadBLIF resolves forward references by topologically ordering the blocks
// before building gates. All syntax and structure failures are wrapped in
// ErrParse.
func ReadBLIF(r io.Reader) (*Netlist, error) {
	n, err := readBLIF(r)
	if err != nil {
		return nil, parseError(err)
	}
	return n, nil
}

func readBLIF(r io.Reader) (*Netlist, error) {
	type namesBlock struct {
		inputs []string
		output string
		cover  []string // cover rows "<in-bits> <out-bit>"
		line   int
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	var (
		model   string
		inputs  []string
		outputs []string
		blocks  []*namesBlock
		cur     *namesBlock
		lineNo  int
		pending string
	)
	readLine := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := sc.Text()
			if i := strings.IndexByte(line, '#'); i >= 0 {
				line = line[:i]
			}
			line = strings.TrimSpace(line)
			if pending != "" {
				line = pending + " " + line
				pending = ""
			}
			if strings.HasSuffix(line, "\\") {
				pending = strings.TrimSuffix(line, "\\")
				continue
			}
			if line == "" {
				continue
			}
			return line, true
		}
		return "", false
	}

	for {
		line, ok := readLine()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case ".model":
			if len(fields) > 1 {
				model = fields[1]
			}
		case ".inputs":
			inputs = append(inputs, fields[1:]...)
		case ".outputs":
			outputs = append(outputs, fields[1:]...)
		case ".names":
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif: line %d: .names needs at least an output", lineNo)
			}
			cur = &namesBlock{
				inputs: fields[1 : len(fields)-1],
				output: fields[len(fields)-1],
				line:   lineNo,
			}
			blocks = append(blocks, cur)
		case ".end":
			cur = nil
		case ".latch", ".subckt", ".gate":
			return nil, fmt.Errorf("blif: line %d: %s not supported (combinational netlists only)", lineNo, fields[0])
		default:
			if strings.HasPrefix(fields[0], ".") {
				continue // tolerate unknown dot-directives
			}
			if cur == nil {
				return nil, fmt.Errorf("blif: line %d: cover row outside .names", lineNo)
			}
			cur.cover = append(cur.cover, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("blif: %w", err)
	}

	n := New(model)
	for _, name := range inputs {
		if _, err := n.AddInput(name); err != nil {
			return nil, err
		}
	}

	// Topologically order blocks by signal dependencies.
	byOutput := make(map[string]*namesBlock, len(blocks))
	for _, b := range blocks {
		if _, dup := byOutput[b.output]; dup {
			return nil, fmt.Errorf("blif: line %d: signal %q defined twice", b.line, b.output)
		}
		byOutput[b.output] = b
	}
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int)
	var build func(name string) (int, error)
	build = func(name string) (int, error) {
		if id, ok := n.Lookup(name); ok {
			return id, nil
		}
		b, ok := byOutput[name]
		if !ok {
			return 0, fmt.Errorf("blif: signal %q has no driver", name)
		}
		switch state[name] {
		case visiting:
			return 0, fmt.Errorf("blif: combinational cycle through %q", name)
		case done:
			id, _ := n.Lookup(name)
			return id, nil
		}
		state[name] = visiting
		fanin := make([]int, len(b.inputs))
		for i, in := range b.inputs {
			id, err := build(in)
			if err != nil {
				return 0, err
			}
			fanin[i] = id
		}
		table, err := coverToTable(b.inputs, b.cover, b.line)
		if err != nil {
			return 0, err
		}
		var id int
		if len(fanin) == 0 {
			t := Const0
			if table[0] {
				t = Const1
			}
			id, err = n.AddGate(t)
		} else {
			id, err = n.AddLut(table, fanin...)
		}
		if err != nil {
			return 0, err
		}
		if err := n.SetSignalName(id, name); err != nil {
			return 0, err
		}
		state[name] = done
		return id, nil
	}
	// Build every block (not only output cones) so the netlist round-trips.
	for _, b := range blocks {
		if _, err := build(b.output); err != nil {
			return nil, err
		}
	}
	for _, name := range outputs {
		id, ok := n.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("blif: output %q has no driver", name)
		}
		if err := n.MarkOutput(name, id); err != nil {
			return nil, err
		}
	}
	if len(outputs) == 0 {
		return nil, fmt.Errorf("blif: no .outputs declared")
	}
	return n, nil
}

// coverToTable converts a BLIF single-output cover into a truth table.
func coverToTable(inputs []string, cover []string, line int) ([]bool, error) {
	k := len(inputs)
	if k > 16 {
		return nil, fmt.Errorf("blif: line %d: %d-input .names too wide (max 16)", line, k)
	}
	table := make([]bool, 1<<uint(k))
	if len(cover) == 0 {
		return table, nil // constant 0
	}
	outVal := byte(0)
	for rowIdx, row := range cover {
		fields := strings.Fields(row)
		var inPat, outPat string
		switch {
		case k == 0 && len(fields) == 1:
			inPat, outPat = "", fields[0]
		case len(fields) == 2:
			inPat, outPat = fields[0], fields[1]
		default:
			return nil, fmt.Errorf("blif: line %d: malformed cover row %q", line, row)
		}
		if len(inPat) != k {
			return nil, fmt.Errorf("blif: line %d: cover row %q has %d literals for %d inputs", line, row, len(inPat), k)
		}
		if outPat != "0" && outPat != "1" {
			return nil, fmt.Errorf("blif: line %d: cover output %q", line, outPat)
		}
		if rowIdx == 0 {
			outVal = outPat[0]
		} else if outPat[0] != outVal {
			return nil, fmt.Errorf("blif: line %d: mixed on-set and off-set rows", line)
		}
		// Expand the cube across don't-cares.
		expand := func(apply func(idx int)) error {
			idx := 0
			var dcBits []int
			for i := 0; i < k; i++ {
				switch inPat[i] {
				case '1':
					idx |= 1 << uint(i)
				case '0':
				case '-':
					dcBits = append(dcBits, i)
				default:
					return fmt.Errorf("blif: line %d: bad literal %q", line, inPat[i])
				}
			}
			for dc := 0; dc < 1<<uint(len(dcBits)); dc++ {
				v := idx
				for j, bitPos := range dcBits {
					if dc&(1<<uint(j)) != 0 {
						v |= 1 << uint(bitPos)
					}
				}
				apply(v)
			}
			return nil
		}
		if err := expand(func(idx int) { table[idx] = true }); err != nil {
			return nil, err
		}
	}
	if outVal == '0' {
		for i := range table {
			table[i] = !table[i]
		}
	}
	return table, nil
}

// WriteBLIF renders the netlist as BLIF, one .names block per non-input
// gate, covers enumerated from each gate's truth table.
func (n *Netlist) WriteBLIF(w io.Writer) error {
	bw := bufio.NewWriter(w)
	name := n.Name
	if name == "" {
		name = "netlist"
	}
	fmt.Fprintf(bw, ".model %s\n", name)
	fmt.Fprint(bw, ".inputs")
	for _, id := range n.inputs {
		fmt.Fprintf(bw, " %s", n.NameOf(id))
	}
	fmt.Fprintln(bw)
	fmt.Fprint(bw, ".outputs")
	for _, nm := range n.outputNames {
		fmt.Fprintf(bw, " %s", nm)
	}
	fmt.Fprintln(bw)

	for id, g := range n.gates {
		if g.Type == Input {
			continue
		}
		fmt.Fprint(bw, ".names")
		for _, f := range g.Fanin {
			fmt.Fprintf(bw, " %s", n.NameOf(f))
		}
		fmt.Fprintf(bw, " %s\n", n.NameOf(id))
		writeCover(bw, g)
	}
	// Alias buffers for outputs whose driving gate has a different name.
	for i, id := range n.outputs {
		if n.NameOf(id) != n.outputNames[i] {
			fmt.Fprintf(bw, ".names %s %s\n1 1\n", n.NameOf(id), n.outputNames[i])
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

func writeCover(w io.Writer, g Gate) {
	k := len(g.Fanin)
	table := g.Table
	if g.Type != Lut {
		table = make([]bool, 1<<uint(k))
		in := make([]bool, k)
		for row := range table {
			for i := 0; i < k; i++ {
				in[i] = row&(1<<uint(i)) != 0
			}
			table[row] = g.Type.eval(in)
		}
	}
	if k == 0 {
		if table[0] {
			fmt.Fprintln(w, "1")
		}
		return
	}
	for row, bit := range table {
		if !bit {
			continue
		}
		lits := make([]byte, k)
		for i := 0; i < k; i++ {
			if row&(1<<uint(i)) != 0 {
				lits[i] = '1'
			} else {
				lits[i] = '0'
			}
		}
		fmt.Fprintf(w, "%s 1\n", lits)
	}
}
