package netlist

import (
	"errors"
	"fmt"
)

// ErrParse is the sentinel every netlist reader (ReadEQN, ReadBLIF,
// ReadVerilog) wraps its failures in: malformed syntax, truncated files,
// unknown cell types, arity violations, duplicate or missing signals.
// Callers distinguish "the input is bad" from "the tool broke" with
// errors.Is(err, ErrParse) — the CLI maps the former to its own exit code.
var ErrParse = errors.New("netlist: parse error")

// parseError tags err as an input-format problem. Errors already carrying
// the sentinel pass through unchanged, so nesting readers never
// double-wraps.
func parseError(err error) error {
	if err == nil || errors.Is(err, ErrParse) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrParse, err)
}
