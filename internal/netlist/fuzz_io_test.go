package netlist

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// randDAG builds a random netlist inline (package netlist cannot import
// randnet, which would be a cycle).
func randDAG(t *testing.T, r *rand.Rand, inputs, gates, outputs int, luts bool) *Netlist {
	t.Helper()
	n := New(fmt.Sprintf("fuzz_%d", gates))
	for i := 0; i < inputs; i++ {
		if _, err := n.AddInput(fmt.Sprintf("x%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	types := []GateType{Not, Buf, And, Or, Xor, Xnor, Nand, Nor, Aoi21, Oai21, Aoi22, Oai22, Mux, Const0, Const1}
	for g := 0; g < gates; g++ {
		limit := n.NumGates()
		if luts && r.Intn(8) == 0 {
			k := 2 + r.Intn(3)
			table := make([]bool, 1<<uint(k))
			for i := range table {
				table[i] = r.Intn(2) == 1
			}
			fanin := make([]int, k)
			for i := range fanin {
				fanin[i] = r.Intn(limit)
			}
			if _, err := n.AddLut(table, fanin...); err != nil {
				t.Fatal(err)
			}
			continue
		}
		ty := types[r.Intn(len(types))]
		fanin := make([]int, ty.Arity())
		for i := range fanin {
			fanin[i] = r.Intn(limit)
		}
		if _, err := n.AddGate(ty, fanin...); err != nil {
			t.Fatal(err)
		}
	}
	for o := 0; o < outputs; o++ {
		id := n.NumGates() - 1 - r.Intn((n.NumGates()+1)/2)
		if id < 0 {
			id = 0
		}
		if err := n.MarkOutput(fmt.Sprintf("y%d", o), id); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

// TestPropAllFormatsRoundTripRandomNetlists: EQN, BLIF and Verilog must each
// reproduce the function of arbitrary netlists through a write/read cycle.
func TestPropAllFormatsRoundTripRandomNetlists(t *testing.T) {
	r := rand.New(rand.NewSource(31337))
	formats := []struct {
		name  string
		write func(*Netlist, *bytes.Buffer) error
		read  func(*bytes.Buffer) (*Netlist, error)
	}{
		{"eqn",
			func(n *Netlist, b *bytes.Buffer) error { return n.WriteEQN(b) },
			func(b *bytes.Buffer) (*Netlist, error) { return ReadEQN(b, "rt") }},
		{"blif",
			func(n *Netlist, b *bytes.Buffer) error { return n.WriteBLIF(b) },
			func(b *bytes.Buffer) (*Netlist, error) { return ReadBLIF(b) }},
		{"verilog",
			func(n *Netlist, b *bytes.Buffer) error { return n.WriteVerilog(b) },
			func(b *bytes.Buffer) (*Netlist, error) { return ReadVerilog(b) }},
	}
	for trial := 0; trial < 40; trial++ {
		n := randDAG(t, r, 1+r.Intn(8), 1+r.Intn(80), 1+r.Intn(4), trial%2 == 0)
		for _, f := range formats {
			var buf bytes.Buffer
			if err := f.write(n, &buf); err != nil {
				t.Fatalf("trial %d %s write: %v", trial, f.name, err)
			}
			text := buf.String()
			back, err := f.read(&buf)
			if err != nil {
				t.Fatalf("trial %d %s read: %v\n%s", trial, f.name, err, text)
			}
			if len(back.Inputs()) != len(n.Inputs()) || len(back.Outputs()) != len(n.Outputs()) {
				t.Fatalf("trial %d %s: port count changed", trial, f.name)
			}
			for round := 0; round < 3; round++ {
				words := make([]uint64, len(n.Inputs()))
				for i := range words {
					words[i] = r.Uint64()
				}
				v1, err := n.Simulate(words)
				if err != nil {
					t.Fatal(err)
				}
				v2, err := back.Simulate(words)
				if err != nil {
					t.Fatal(err)
				}
				o1, o2 := n.OutputWords(v1), back.OutputWords(v2)
				for i := range o1 {
					if o1[i] != o2[i] {
						t.Fatalf("trial %d %s: output %d differs after round trip\n%s",
							trial, f.name, i, text)
					}
				}
			}
		}
	}
}
