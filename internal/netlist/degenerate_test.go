package netlist

import (
	"reflect"
	"testing"
)

// Degenerate-shape coverage for the traversals netlint builds on: Levels and
// Cone must stay well-defined on empty netlists, disconnected outputs and
// orphan islands, and the builder must keep self-loops impossible.

func TestLevelsZeroGateNetlist(t *testing.T) {
	n := New("empty")
	levels, depth := n.Levels()
	if len(levels) != 0 {
		t.Fatalf("levels = %v, want empty", levels)
	}
	if depth != 0 {
		t.Fatalf("depth = %d, want 0", depth)
	}
}

func TestConeOnInputOnlyNetlist(t *testing.T) {
	n := New("wires")
	a, err := n.AddInput("a")
	if err != nil {
		t.Fatal(err)
	}
	// An output wired straight to an input: its cone is just the input.
	if err := n.MarkOutput("z", a); err != nil {
		t.Fatal(err)
	}
	if cone := n.Cone(a); !reflect.DeepEqual(cone, []int{a}) {
		t.Fatalf("cone(%d) = %v, want [%d]", a, cone, a)
	}
	levels, depth := n.Levels()
	if depth != 0 || levels[a] != 0 {
		t.Fatalf("levels = %v depth = %d, want all zero", levels, depth)
	}
}

func TestConeDisconnectedOutputs(t *testing.T) {
	// Two islands: z0's cone must not leak gates from z1's island and vice
	// versa, and a gate reachable from no output belongs to neither cone.
	n := New("islands")
	a, _ := n.AddInput("a")
	b, _ := n.AddInput("b")
	g0, err := n.AddGate(And, a, a)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := n.AddGate(Xor, b, b)
	if err != nil {
		t.Fatal(err)
	}
	orphan, err := n.AddGate(Not, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.MarkOutput("z0", g0); err != nil {
		t.Fatal(err)
	}
	if err := n.MarkOutput("z1", g1); err != nil {
		t.Fatal(err)
	}

	if cone := n.Cone(g0); !reflect.DeepEqual(cone, []int{a, g0}) {
		t.Fatalf("cone(z0) = %v, want [%d %d]", cone, a, g0)
	}
	if cone := n.Cone(g1); !reflect.DeepEqual(cone, []int{b, g1}) {
		t.Fatalf("cone(z1) = %v, want [%d %d]", cone, b, g1)
	}
	for _, root := range []int{g0, g1} {
		for _, id := range n.Cone(root) {
			if id == orphan {
				t.Fatalf("orphan gate %d leaked into cone(%d)", orphan, root)
			}
		}
	}
	levels, depth := n.Levels()
	if depth != 1 {
		t.Fatalf("depth = %d, want 1", depth)
	}
	for _, id := range []int{g0, g1, orphan} {
		if levels[id] != 1 {
			t.Fatalf("level(%d) = %d, want 1", id, levels[id])
		}
	}
}

func TestAddGateRejectsSelfLoop(t *testing.T) {
	n := New("loop")
	a, _ := n.AddInput("a")
	// The next gate would get ID a+1; feeding it its own ID (or anything
	// beyond) is a forward reference, which the builder must reject — this
	// is the invariant that lets netlint skip cycle checks on DAGs.
	if _, err := n.AddGate(And, a, a+1); err == nil {
		t.Fatal("self-loop fanin accepted")
	}
	if _, err := n.AddGate(And, a, a+100); err == nil {
		t.Fatal("forward-reference fanin accepted")
	}
	if _, err := n.AddGate(And, a, -1); err == nil {
		t.Fatal("negative fanin accepted")
	}
	if got := n.NumGates(); got != 1 {
		t.Fatalf("rejected gates mutated the netlist: NumGates = %d, want 1", got)
	}
}

func TestConeOfInputIsItself(t *testing.T) {
	n := New("one")
	a, _ := n.AddInput("a")
	if cone := n.Cone(a); !reflect.DeepEqual(cone, []int{a}) {
		t.Fatalf("cone of bare input = %v", cone)
	}
}
