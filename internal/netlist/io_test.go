package netlist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

const sampleEQN = `
# GF(2^2) multiplier, P(x) = x^2+x+1
INORDER = a0 a1 b0 b1;
OUTORDER = z0 z1;
s0 = a0 * b0;
s2 = a1 * b1;
z0 = s0 ^ s2;
z1 = (a0 * b1) ^ (a1 * b0) ^ s2;
`

func TestReadEQN(t *testing.T) {
	n, err := ReadEQN(strings.NewReader(sampleEQN), "gf4")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.Inputs()); got != 4 {
		t.Fatalf("inputs = %d", got)
	}
	if got := n.OutputNames(); len(got) != 2 || got[0] != "z0" || got[1] != "z1" {
		t.Fatalf("outputs = %v", got)
	}
	// Behaves as a GF(4) multiplier.
	for a := uint(0); a < 4; a++ {
		for b := uint(0); b < 4; b++ {
			vals, err := n.Simulate([]uint64{uint64(a & 1), uint64(a >> 1), uint64(b & 1), uint64(b >> 1)})
			if err != nil {
				t.Fatal(err)
			}
			outs := n.OutputWords(vals)
			got := uint(outs[0]&1) | uint(outs[1]&1)<<1
			if want := gf4Mul(a, b); got != want {
				t.Errorf("%d*%d = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestReadEQNOperatorsAndConstants(t *testing.T) {
	src := `
INORDER = a b;
OUTORDER = z;
t1 = !a;
t2 = a + 0;
t3 = b * 1;
z = !(t1 ^ t2) + t3;
`
	n, err := ReadEQN(strings.NewReader(src), "ops")
	if err != nil {
		t.Fatal(err)
	}
	// t1 = !a, t2 = a, t3 = b, z = !(t1^t2) + t3 = !(!a^a)+b = !(1)+b = b.
	for mask := 0; mask < 4; mask++ {
		a, b := uint64(mask&1), uint64(mask>>1)
		vals, err := n.Simulate([]uint64{a, b})
		if err != nil {
			t.Fatal(err)
		}
		if got := n.OutputWords(vals)[0] & 1; got != b {
			t.Errorf("mask %d: z = %d, want %d", mask, got, b)
		}
	}
}

func TestReadEQNPrecedence(t *testing.T) {
	// z = a + b * c ^ d must parse as a + ((b*c) ^ d).
	src := "INORDER = a b c d;\nOUTORDER = z;\nz = a + b * c ^ d;\n"
	n, err := ReadEQN(strings.NewReader(src), "prec")
	if err != nil {
		t.Fatal(err)
	}
	for mask := 0; mask < 16; mask++ {
		bitsIn := []uint64{uint64(mask & 1), uint64(mask >> 1 & 1), uint64(mask >> 2 & 1), uint64(mask >> 3 & 1)}
		vals, err := n.Simulate(bitsIn)
		if err != nil {
			t.Fatal(err)
		}
		a, b, c, d := bitsIn[0] == 1, bitsIn[1] == 1, bitsIn[2] == 1, bitsIn[3] == 1
		want := a || ((b && c) != d)
		if got := n.OutputWords(vals)[0]&1 == 1; got != want {
			t.Errorf("mask %d: got %v want %v", mask, got, want)
		}
	}
}

func TestReadEQNErrors(t *testing.T) {
	cases := []string{
		"INORDER = a;\nOUTORDER = z;\nz = q;\n",     // undefined signal
		"INORDER = a;\nOUTORDER = z;\nz = a ^;\n",   // dangling operator
		"INORDER = a;\nOUTORDER = z;\nz = (a;\n",    // unbalanced paren
		"INORDER = a;\nz = a;\n",                    // missing OUTORDER
		"INORDER = a;\nOUTORDER = z;\nz = a @ a;\n", // bad character
		"INORDER = a;\nOUTORDER = w;\nz = a;\n",     // undefined output
	}
	for i, src := range cases {
		if _, err := ReadEQN(strings.NewReader(src), "bad"); err == nil {
			t.Errorf("case %d should fail:\n%s", i, src)
		}
	}
}

func TestEQNRoundTrip(t *testing.T) {
	n := buildFigure2(t)
	var buf bytes.Buffer
	if err := n.WriteEQN(&buf); err != nil {
		t.Fatal(err)
	}
	n2, err := ReadEQN(bytes.NewReader(buf.Bytes()), "fig2")
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, buf.String())
	}
	assertSameFunction(t, n, n2)
}

func TestEQNRoundTripComplexCells(t *testing.T) {
	n := New("cells")
	var ins []int
	for _, s := range []string{"a", "b", "c", "d"} {
		id, _ := n.AddInput(s)
		ins = append(ins, id)
	}
	g1, _ := n.AddGate(Aoi22, ins[0], ins[1], ins[2], ins[3])
	g2, _ := n.AddGate(Oai21, ins[0], ins[2], g1)
	g3, _ := n.AddGate(Mux, g1, g2, ins[3])
	maj := make([]bool, 8)
	for row := range maj {
		maj[row] = row&1+row>>1&1+row>>2&1 >= 2
	}
	g4, _ := n.AddLut(maj, ins[0], g2, g3)
	n.MarkOutput("z0", g3)
	n.MarkOutput("z1", g4)
	var buf bytes.Buffer
	if err := n.WriteEQN(&buf); err != nil {
		t.Fatal(err)
	}
	n2, err := ReadEQN(bytes.NewReader(buf.Bytes()), "cells")
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, buf.String())
	}
	assertSameFunction(t, n, n2)
}

func TestEQNOutputAliases(t *testing.T) {
	// Output directly tied to an input and to a differently named gate.
	n := New("alias")
	a, _ := n.AddInput("a")
	b, _ := n.AddInput("b")
	g, _ := n.AddGate(And, a, b)
	n.SetSignalName(g, "inner")
	n.MarkOutput("z_and", g)
	n.MarkOutput("z_pass", a)
	var buf bytes.Buffer
	if err := n.WriteEQN(&buf); err != nil {
		t.Fatal(err)
	}
	n2, err := ReadEQN(bytes.NewReader(buf.Bytes()), "alias")
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, buf.String())
	}
	assertSameFunction(t, n, n2)
}

const sampleBLIF = `
.model gf4mult
.inputs a0 a1 b0 b1
.outputs z0 z1
# z0 = a0 b0 XOR a1 b1
.names a0 b0 s0
11 1
.names a1 b1 s2
11 1
.names s0 s2 z0
10 1
01 1
.names a0 b1 a1 b0 s1
11-- 1
--11 1
.names s1 s2 z1
10 1
01 1
.end
`

func TestReadBLIF(t *testing.T) {
	n, err := ReadBLIF(strings.NewReader(sampleBLIF))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "gf4mult" {
		t.Errorf("model name = %q", n.Name)
	}
	// Note: s1 uses don't-cares meaning OR of the two ANDs, not XOR; for
	// GF(4) inputs where both products are 1 the OR differs from XOR, so
	// check only the pure-XOR bit z0 against the field and z1 against its
	// cover semantics.
	for a := uint(0); a < 4; a++ {
		for b := uint(0); b < 4; b++ {
			vals, err := n.Simulate([]uint64{uint64(a & 1), uint64(a >> 1), uint64(b & 1), uint64(b >> 1)})
			if err != nil {
				t.Fatal(err)
			}
			outs := n.OutputWords(vals)
			wantZ0 := (a & b & 1) ^ ((a >> 1) & (b >> 1))
			if uint(outs[0]&1) != wantZ0 {
				t.Errorf("z0(%d,%d) = %d, want %d", a, b, outs[0]&1, wantZ0)
			}
			s1 := (a & 1 & (b >> 1)) | ((a >> 1) & (b & 1)) // OR cover
			s2 := (a >> 1) & (b >> 1)
			if uint(outs[1]&1) != s1^s2 {
				t.Errorf("z1(%d,%d) = %d, want %d", a, b, outs[1]&1, s1^s2)
			}
		}
	}
}

func TestReadBLIFForwardReferences(t *testing.T) {
	// Blocks in reverse dependency order must still parse.
	src := `
.model fwd
.inputs a b
.outputs z
.names t1 t2 z
11 1
.names a b t1
11 1
.names a b t2
00 1
.end
`
	n, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	vals, _ := n.Simulate([]uint64{0, 0})
	if n.OutputWords(vals)[0]&1 != 0 {
		t.Error("z(0,0) should be 0 (t1=0)")
	}
}

func TestReadBLIFConstantsAndOffset(t *testing.T) {
	src := `
.model c
.inputs a
.outputs z0 z1 zinv
.names z0
.names z1
1
.names a zinv
1 0
.end
`
	n, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	vals, _ := n.Simulate([]uint64{^uint64(0)})
	outs := n.OutputWords(vals)
	if outs[0] != 0 {
		t.Error("z0 should be constant 0")
	}
	if outs[1] != ^uint64(0) {
		t.Error("z1 should be constant 1")
	}
	if outs[2] != 0 {
		t.Error("zinv with off-set cover should invert a=1 to 0")
	}
}

func TestReadBLIFContinuationAndErrors(t *testing.T) {
	src := ".model x\n.inputs a \\\nb\n.outputs z\n.names a b \\\nz\n11 1\n.end\n"
	n, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Inputs()) != 2 {
		t.Errorf("continuation line: %d inputs", len(n.Inputs()))
	}

	bad := []string{
		".model x\n.inputs a\n.outputs z\n.latch a z\n.end\n",
		".model x\n.inputs a\n.outputs z\n.names a z\n2 1\n.end\n",
		".model x\n.inputs a\n.outputs z\n.end\n",                                     // z undriven
		".model x\n.inputs a\n.outputs z\n.names z z2\n1 1\n.names z2 z\n1 1\n.end\n", // cycle
		".model x\n.inputs a\n.outputs z\n.names a z\n1 1\n0 0\n.end\n",               // mixed on/off rows
		".model x\n.inputs a\n.outputs z\n.names a z\n11 1\n.end\n",                   // wrong width
	}
	for i, s := range bad {
		if _, err := ReadBLIF(strings.NewReader(s)); err == nil {
			t.Errorf("bad BLIF %d should fail", i)
		}
	}
}

func TestBLIFRoundTrip(t *testing.T) {
	n := buildFigure2(t)
	var buf bytes.Buffer
	if err := n.WriteBLIF(&buf); err != nil {
		t.Fatal(err)
	}
	n2, err := ReadBLIF(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, buf.String())
	}
	assertSameFunction(t, n, n2)
}

func TestBLIFtoEQNCrossFormat(t *testing.T) {
	n, err := ReadBLIF(strings.NewReader(sampleBLIF))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteEQN(&buf); err != nil {
		t.Fatal(err)
	}
	n2, err := ReadEQN(bytes.NewReader(buf.Bytes()), "cross")
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, buf.String())
	}
	assertSameFunction(t, n, n2)
}

// assertSameFunction checks I/O-count equality and randomized functional
// equivalence of two netlists with identical port order.
func assertSameFunction(t *testing.T, n1, n2 *Netlist) {
	t.Helper()
	if len(n1.Inputs()) != len(n2.Inputs()) || len(n1.Outputs()) != len(n2.Outputs()) {
		t.Fatalf("port mismatch: %d/%d inputs, %d/%d outputs",
			len(n1.Inputs()), len(n2.Inputs()), len(n1.Outputs()), len(n2.Outputs()))
	}
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		words := make([]uint64, len(n1.Inputs()))
		for i := range words {
			words[i] = r.Uint64()
		}
		v1, err := n1.Simulate(words)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := n2.Simulate(words)
		if err != nil {
			t.Fatal(err)
		}
		o1, o2 := n1.OutputWords(v1), n2.OutputWords(v2)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("output %d differs: %x vs %x", i, o1[i], o2[i])
			}
		}
	}
}
