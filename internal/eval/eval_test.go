package eval

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestTableISmallSizes(t *testing.T) {
	rows, err := TableI([]int{64, 96})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("m=%d failed: %s", r.M, r.Err)
		}
		if r.Eqns == 0 || r.Runtime <= 0 {
			t.Errorf("m=%d: empty measurements %+v", r.M, r)
		}
		if r.Paper.Eqns == 0 {
			t.Errorf("m=%d: paper row missing", r.M)
		}
	}
	// Superlinear growth shape: runtime(96) > runtime(64).
	if rows[1].Runtime <= rows[0].Runtime {
		t.Logf("warning: runtime not increasing (%v vs %v) — timing noise possible",
			rows[0].Runtime, rows[1].Runtime)
	}
	if _, err := TableI([]int{100}); err == nil {
		t.Error("non-NIST size should error")
	}
}

func TestTableIIShapeMontgomerySlower(t *testing.T) {
	mast, err := TableI([]int{64})
	if err != nil {
		t.Fatal(err)
	}
	mont, err := TableII([]int{64})
	if err != nil {
		t.Fatal(err)
	}
	if !mont[0].OK {
		t.Fatalf("Montgomery m=64 failed: %s", mont[0].Err)
	}
	// The paper's central Table I vs II shape: Montgomery extraction is
	// more expensive than Mastrovito at equal m (paper: 42.2s vs 9.2s at
	// m=64). The packed ANF core narrowed our gap — most of the old spread
	// was cone sorting and straggler scheduling, which it eliminated — so
	// the guard asserts the ordering with a 1.3x margin rather than the
	// historical 2x, which now trips on timing noise.
	if mont[0].Runtime < mast[0].Runtime*13/10 {
		t.Errorf("Montgomery (%v) should be >= 1.3x Mastrovito (%v) at m=64",
			mont[0].Runtime, mast[0].Runtime)
	}
}

func TestTableIIISynthesisReducesCost(t *testing.T) {
	raw, err := TableI([]int{64})
	if err != nil {
		t.Fatal(err)
	}
	syn, err := TableIII([]int{64})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range syn {
		if !r.OK {
			t.Errorf("%s failed: %s", r.Label, r.Err)
		}
	}
	// Synthesized Mastrovito must have fewer equations than the raw
	// matrix-form design (Table III's premise).
	if syn[0].Eqns >= raw[0].Eqns {
		t.Errorf("synthesis did not shrink Mastrovito: %d -> %d", raw[0].Eqns, syn[0].Eqns)
	}
}

func TestTableIVScaledWeightContrast(t *testing.T) {
	rows, err := TableIV(17)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("scaled Table IV should have 2 rows, got %d", len(rows))
	}
	var tri, pen Row
	for _, r := range rows {
		if !r.OK {
			t.Fatalf("%s failed: %s", r.Label, r.Err)
		}
		switch r.Label {
		case "trinomial":
			tri = r
		case "pentanomial":
			pen = r
		}
	}
	// Weight contrast: the pentanomial multiplier has more equations (more
	// reduction XORs), the root cause of the Table IV runtime spread.
	if pen.Eqns <= tri.Eqns {
		t.Errorf("pentanomial eqns (%d) should exceed trinomial (%d)", pen.Eqns, tri.Eqns)
	}
}

func TestFigure4ScaledSeries(t *testing.T) {
	series, err := Figure4(17)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.Bits) != 17 {
			t.Errorf("%s: %d bits", s.Arch, len(s.Bits))
		}
		if s.TotalRuntime() <= 0 {
			t.Errorf("%s: no runtime recorded", s.Arch)
		}
	}
	var buf bytes.Buffer
	WriteFigure4CSV(&buf, series)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 18 {
		t.Errorf("CSV has %d lines, want header + 17", len(lines))
	}
	if !strings.HasPrefix(lines[0], "bit,") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func TestWriteTableRendersPaperColumns(t *testing.T) {
	rows, err := TableI([]int{64})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteTable(&buf, "Table I", rows)
	out := buf.String()
	for _, want := range []string{"Table I", "Mastrovito", "21814", "9.2", "37 MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:           "512 B",
		2048:          "2.0 KB",
		3 << 20:       "3.0 MB",
		5 << 30:       "5.0 GB",
		1<<30 + 1<<29: "1.5 GB",
	}
	for in, want := range cases {
		if got := humanBytes(in); got != want {
			t.Errorf("humanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestArchComparison(t *testing.T) {
	rows, err := ArchComparison(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("%s failed: %s", r.Label, r.Err)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	rows, err := TableI([]int{64})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 1 || decoded[0]["label"] != "Mastrovito" {
		t.Errorf("decoded %v", decoded)
	}
	if decoded[0]["paper_eqns"].(float64) != 21814 {
		t.Errorf("paper eqns missing: %v", decoded[0])
	}
}

func TestWriteTableRendersFailureRows(t *testing.T) {
	rows := []Row{{
		Label: "Broken", M: 8,
		Err:   "extracted x^8+1, want x^8+x^4+x^3+x+1",
		Paper: PaperRow{Mem: "MO"},
	}}
	var buf bytes.Buffer
	WriteTable(&buf, "Failure rendering", rows)
	out := buf.String()
	if !strings.Contains(out, "FAILED") || !strings.Contains(out, "MO") {
		t.Errorf("failure row not rendered:\n%s", out)
	}
}

func TestFigure4CSVEmptySeries(t *testing.T) {
	var buf bytes.Buffer
	WriteFigure4CSV(&buf, nil)
	if got := strings.TrimSpace(buf.String()); got != "bit" {
		t.Errorf("empty series CSV = %q", got)
	}
}

func TestWithCheckpointDirResumesSweep(t *testing.T) {
	dir := t.TempDir()
	// First sweep populates per-row checkpoints.
	rows, err := TableI([]int{64}, WithCheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0].OK {
		t.Fatalf("rows: %+v", rows)
	}
	sub, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 1 || !sub[0].IsDir() {
		t.Fatalf("checkpoint dir entries: %v", sub)
	}
	// A re-run finds the completed snapshots and reuses every cone — the
	// restartable-sweep contract.
	again, err := TableI([]int{64}, WithCheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !again[0].OK {
		t.Fatalf("resumed row failed: %s", again[0].Err)
	}
	if got := again[0].Metrics.Counters["bits_reused"]; got != 64 {
		t.Fatalf("resumed sweep reused %d cones, want 64", got)
	}
}

func TestRowSlug(t *testing.T) {
	if got := rowSlug("GF(2^163) Mastrovito"); got != "GF_2_163__Mastrovito" {
		t.Errorf("rowSlug = %q", got)
	}
}
