// Package eval regenerates the paper's evaluation: Tables I–IV and
// Figure 4. Each experiment builds the benchmark multipliers, runs the
// extraction pipeline, and reports measured cost next to the numbers the
// paper published, so shape comparisons (who is slower, by what factor,
// where the anomalies are) are immediate.
//
// Paper numbers are embedded verbatim from the text. The paper's testbed is
// a 12-core Xeon E5-2420 running the authors' C++ tool; absolute runtimes
// and resident memory are not comparable with this Go implementation on
// different hardware — the shapes are:
//
//   - runtime grows superlinearly with m at fixed architecture (Table I);
//   - Montgomery extraction is far more expensive than Mastrovito at the
//     same m, and pentanomial fields beat trinomial fields by large factors
//     (Table II, including the paper's observation that GF(2^163) costs a
//     multiple of GF(2^233));
//   - synthesis reduces extraction cost on redundant netlists (Table III);
//   - for a fixed m=233, the architecture-optimal polynomial chosen decides
//     cost, trinomials (ARM, NIST) < pentanomials (Pentium, MSP430)
//     (Table IV and the per-bit profile of Figure 4).
package eval

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"time"

	"github.com/galoisfield/gfre/internal/checkpoint"
	"github.com/galoisfield/gfre/internal/extract"
	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/obs"
	"github.com/galoisfield/gfre/internal/opt"
	"github.com/galoisfield/gfre/internal/polytab"
	"github.com/galoisfield/gfre/internal/rewrite"
)

// Threads is the worker-pool size used for all experiments, matching the
// paper's "all results are performed in 16 threads".
const Threads = 16

// PaperRow carries the numbers a table row reports in the paper.
type PaperRow struct {
	Eqns       int     // "# eqns" column
	RuntimeSec float64 // seconds; <0 means MO (out of 32 GB memory)
	Mem        string  // as printed, e.g. "37 MB", "4.5 GB", "MO"
}

// Row is one measured table row next to its paper counterpart.
type Row struct {
	Label   string // architecture / field label
	M       int
	P       gf2poly.Poly
	Eqns    int           // equations of our generated netlist
	Runtime time.Duration // extraction wall time (Threads workers)
	Mem     int64         // modeled working set (rewrite.EstimatedMemBytes)
	OK      bool          // extraction succeeded and matched the build P(x)
	Err     string        // failure description when !OK
	Paper   PaperRow

	// Telemetry captured by the per-row recorder — the raw material of the
	// machine-readable BENCH_<design>.json reports (not part of the table
	// rendering).
	Bits    []rewrite.BitStats
	Phases  []obs.SpanRecord
	Metrics obs.Snapshot
}

// Paper-reported values, transcribed from the text.
var (
	paperTableI = map[int]PaperRow{
		64:  {21814, 9.2, "37 MB"},
		96:  {51412, 13.4, "86 MB"},
		163: {153245, 158.9, "253 MB"},
		233: {167803, 244.9, "1.5 GB"},
		283: {399688, 704.5, "4.5 GB"},
		409: {508507, 1324.7, "8.3 GB"},
		571: {1628170, 4089.9, "27.1 GB"},
	}
	paperTableII = map[int]PaperRow{
		64:  {16898, 42.2, "30 MB"},
		96:  {37634, 228.2, "119 MB"},
		163: {107582, 1614.8, "2.6 GB"},
		233: {219022, 461.1, "4.8 GB"},
		283: {322622, 21520.0, "7.8 GB"},
		409: {672396, -1, "MO"},
	}
	// Table III: extraction runtime/memory on ABC-optimized designs.
	paperTableIIIMastrovito = map[int]PaperRow{
		64:  {0, 12.8, "25 MB"},
		163: {0, 67.6, "508 MB"},
		233: {0, 149.6, "1.2 GB"},
		409: {0, 821.6, "6.5 GB"},
	}
	paperTableIIIMontgomery = map[int]PaperRow{
		64:  {0, 5.2, "20 MB"},
		163: {0, 221.4, "610 MB"},
		233: {0, 154.4, "2.9 GB"},
		409: {0, 855.4, "10.3 GB"},
	}
	paperTableIV = map[string]PaperRow{
		"Intel-Pentium":    {0, 546.7, "11.7 GB"},
		"ARM":              {0, 233.7, "5.1 GB"},
		"MSP430":           {0, 511.2, "10.9 GB"},
		"NIST-recommended": {0, 244.9, "4.8 GB"},
	}
)

// TableISizes / TableIISizes are the bit widths of the corresponding paper
// tables. The paper's Table II stops at 409 (mem-out); Montgomery rewriting
// is the most expensive experiment, so callers may trim the list.
var (
	TableISizes    = []int{64, 96, 163, 233, 283, 409, 571}
	TableIISizes   = []int{64, 96, 163, 233, 283, 409}
	TableIIISizes  = []int{64, 163, 233, 409}
	Figure4Default = 233
)

// RunOption adjusts how an experiment drives the extraction pipeline.
// The defaults (no context, no deadlines, no budget) reproduce the paper's
// unconstrained runs; the options thread the resource-governance knobs of
// extract.Options through to every table row, so a long sweep can be made
// interruptible and bounded without changing any experiment's signature.
type RunOption func(*runCfg)

type runCfg struct {
	ctx           context.Context
	budgetTerms   int
	coneDeadline  time.Duration
	checkpointDir string
}

// WithContext cancels in-flight extractions when ctx ends; remaining rows
// report the cancellation as their failure.
func WithContext(ctx context.Context) RunOption {
	return func(c *runCfg) { c.ctx = ctx }
}

// WithBudget caps every rewriting cone at the given number of resident
// terms (see rewrite.Options.BudgetTerms). Rows whose extraction trips the
// budget fail with ErrBudgetExceeded instead of exhausting memory.
func WithBudget(terms int) RunOption {
	return func(c *runCfg) { c.budgetTerms = terms }
}

// WithConeDeadline bounds the wall time spent rewriting any single output
// cone (see rewrite.Options.ConeDeadline).
func WithConeDeadline(d time.Duration) RunOption {
	return func(c *runCfg) { c.coneDeadline = d }
}

// WithCheckpointDir makes a sweep restartable: every row checkpoints its
// per-cone progress crash-safely under dir (one subdirectory per row label,
// see package checkpoint) and resumes from whatever snapshot an interrupted
// earlier sweep left there. Combine with WithContext to make long table
// sweeps both interruptible and resumable.
func WithCheckpointDir(dir string) RunOption {
	return func(c *runCfg) { c.checkpointDir = dir }
}

func applyRunOptions(ropts []RunOption) runCfg {
	var cfg runCfg
	for _, o := range ropts {
		o(&cfg)
	}
	return cfg
}

// runExtraction measures one extraction and fills a Row, capturing phase
// spans, per-bit stats and the metrics snapshot through rec. Callers with
// pre-extraction phases to attribute (synthesis) pass their own recorder;
// nil means "create one for this row".
func runExtraction(label string, n *netlist.Netlist, p gf2poly.Poly, paper PaperRow, rec *obs.Recorder, ropts ...RunOption) Row {
	if rec == nil {
		rec = obs.NewRecorder()
	}
	cfg := applyRunOptions(ropts)
	row := Row{
		Label: label,
		M:     p.Deg(),
		P:     p,
		Eqns:  n.NumEquations(),
		Paper: paper,
	}
	opts := extract.Options{
		Threads: Threads, SkipVerify: true, Recorder: rec,
		Ctx: cfg.ctx, BudgetTerms: cfg.budgetTerms, ConeDeadline: cfg.coneDeadline,
		// Preflight lints every benchmark netlist and fills unset budget and
		// deadline knobs from the cone-cost predictor, so sweep rows fail
		// fast on defective designs instead of burning their time budget.
		Preflight: true,
	}
	if cfg.checkpointDir != "" {
		opts.Checkpoint = checkpoint.NewManager(filepath.Join(cfg.checkpointDir, rowSlug(label)), -1)
		opts.Resume = true
	}
	start := time.Now()
	ext, err := extract.IrreduciblePolynomial(n, opts)
	row.Runtime = time.Since(start)
	switch {
	case err != nil:
		row.Err = err.Error()
	case !ext.P.Equal(p):
		row.Err = fmt.Sprintf("extracted %v, want %v", ext.P, p)
	default:
		row.OK = true
		row.Mem = ext.Rewrite.EstimatedMemBytes()
	}
	if ext != nil && ext.Rewrite != nil {
		for _, b := range ext.Rewrite.Bits {
			row.Bits = append(row.Bits, b.BitStats)
		}
	}
	row.Phases = rec.Spans()
	row.Metrics = rec.Snapshot()
	return row
}

// TableI reproduces Table I: reverse engineering Mastrovito multipliers
// built with the NIST-recommended polynomials, for the requested sizes.
func TableI(sizes []int, ropts ...RunOption) ([]Row, error) {
	if sizes == nil {
		sizes = TableISizes
	}
	var rows []Row
	for _, m := range sizes {
		p, ok := polytab.NIST[m]
		if !ok {
			return nil, fmt.Errorf("eval: no NIST polynomial for m=%d", m)
		}
		n, err := gen.MastrovitoMatrix(m, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, runExtraction("Mastrovito", n, p, paperTableI[m], nil, ropts...))
	}
	return rows, nil
}

// TableII reproduces Table II: flattened Montgomery multipliers with
// NIST-recommended polynomials. The paper's 409-bit run exhausted 32 GB; we
// run it anyway and report the measured cost.
func TableII(sizes []int, ropts ...RunOption) ([]Row, error) {
	if sizes == nil {
		sizes = TableIISizes
	}
	var rows []Row
	for _, m := range sizes {
		p, ok := polytab.NIST[m]
		if !ok {
			return nil, fmt.Errorf("eval: no NIST polynomial for m=%d", m)
		}
		n, err := gen.Montgomery(m, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, runExtraction("Montgomery", n, p, paperTableII[m], nil, ropts...))
	}
	return rows, nil
}

// TableIII reproduces Table III: extraction on synthesized (optimized and
// technology-mapped) Mastrovito and Montgomery multipliers.
func TableIII(sizes []int, ropts ...RunOption) ([]Row, error) {
	if sizes == nil {
		sizes = TableIIISizes
	}
	var rows []Row
	for _, m := range sizes {
		p, ok := polytab.NIST[m]
		if !ok {
			return nil, fmt.Errorf("eval: no NIST polynomial for m=%d", m)
		}
		mast, err := gen.MastrovitoMatrix(m, p)
		if err != nil {
			return nil, err
		}
		// The synthesis recorder is shared with the extraction run, so
		// Table III rows report the opt.* phase spans alongside the
		// extraction phases.
		mastRec := obs.NewRecorder()
		mastSyn, err := opt.SynthesizeObserved(mast, mastRec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, runExtraction("Mastrovito-syn", mastSyn, p, paperTableIIIMastrovito[m], mastRec, ropts...))

		mont, err := gen.Montgomery(m, p)
		if err != nil {
			return nil, err
		}
		montRec := obs.NewRecorder()
		montSyn, err := opt.SynthesizeObserved(mont, montRec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, runExtraction("Montgomery-syn", montSyn, p, paperTableIIIMontgomery[m], montRec, ropts...))
	}
	return rows, nil
}

// TableIV reproduces Table IV: GF(2^233) Mastrovito multipliers built with
// the architecture-optimal polynomials of Scott (Intel-Pentium, ARM, MSP430)
// plus the NIST recommendation. A smaller m may be passed to scale the
// experiment down; the polynomials are then the lowest-weight trinomial and
// pentanomial equivalents (only m=233 uses the genuine Table IV set).
func TableIV(m int, ropts ...RunOption) ([]Row, error) {
	var set []polytab.ArchPoly
	if m == 233 || m == 0 {
		set = polytab.Arch233
	} else {
		// Scaled-down proxy: one trinomial and one pentanomial to keep the
		// weight contrast the table demonstrates.
		if tri, ok := polytab.Trinomial(m); ok {
			set = append(set, polytab.ArchPoly{Arch: "trinomial", P: tri})
		}
		if pen, ok := polytab.Pentanomial(m); ok {
			set = append(set, polytab.ArchPoly{Arch: "pentanomial", P: pen})
		}
	}
	var rows []Row
	for _, ap := range set {
		n, err := gen.MastrovitoMatrix(ap.P.Deg(), ap.P)
		if err != nil {
			return nil, err
		}
		rows = append(rows, runExtraction(ap.Arch, n, ap.P, paperTableIV[ap.Arch], nil, ropts...))
	}
	return rows, nil
}

// Figure4Series is one per-output-bit runtime profile.
type Figure4Series struct {
	Arch string
	P    gf2poly.Poly
	Bits []rewrite.BitStats
}

// Figure4 reproduces Figure 4: the per-output-bit runtime of extracting the
// polynomial expressions of the GF(2^m) Mastrovito multipliers of Table IV.
// m = 233 matches the paper; other values use the scaled Table IV set.
func Figure4(m int, ropts ...RunOption) ([]Figure4Series, error) {
	var set []polytab.ArchPoly
	if m == 233 || m == 0 {
		set = polytab.Arch233
	} else {
		if tri, ok := polytab.Trinomial(m); ok {
			set = append(set, polytab.ArchPoly{Arch: "trinomial", P: tri})
		}
		if pen, ok := polytab.Pentanomial(m); ok {
			set = append(set, polytab.ArchPoly{Arch: "pentanomial", P: pen})
		}
	}
	var out []Figure4Series
	for _, ap := range set {
		n, err := gen.MastrovitoMatrix(ap.P.Deg(), ap.P)
		if err != nil {
			return nil, err
		}
		// Single-threaded on purpose: Figure 4 plots *per-bit* runtimes, and
		// concurrent workers contending for cores would pollute the
		// per-bit clock. (Tables I–IV measure wall time and use the full
		// pool.)
		cfg := applyRunOptions(ropts)
		rw, err := rewrite.Outputs(n, rewrite.Options{
			Threads: 1,
			Ctx:     cfg.ctx, BudgetTerms: cfg.budgetTerms, ConeDeadline: cfg.coneDeadline,
		})
		if err != nil {
			return nil, err
		}
		s := Figure4Series{Arch: ap.Arch, P: ap.P}
		for _, br := range rw.Bits {
			s.Bits = append(s.Bits, br.BitStats)
		}
		out = append(out, s)
	}
	return out, nil
}

// TotalRuntime sums a series' per-bit runtimes.
func (s Figure4Series) TotalRuntime() time.Duration {
	var t time.Duration
	for _, b := range s.Bits {
		t += b.Runtime
	}
	return t
}

// humanBytes renders a byte count like the paper's Mem column.
func humanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(b)/float64(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/float64(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/float64(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

// WriteTable renders rows as an aligned paper-vs-measured text table.
func WriteTable(w io.Writer, title string, rows []Row) {
	fmt.Fprintf(w, "%s (extraction in %d threads)\n", title, Threads)
	fmt.Fprintf(w, "%-16s %5s  %-34s %10s %12s %10s   %14s %10s %8s\n",
		"design", "m", "P(x)", "#eqns", "runtime", "mem",
		"paper #eqns", "paper t(s)", "paper mem")
	for _, r := range rows {
		status := fmt.Sprintf("%12v %10s", r.Runtime.Round(time.Millisecond), humanBytes(r.Mem))
		if !r.OK {
			status = fmt.Sprintf("%23s", "FAILED: "+r.Err)
		}
		paperEqns := "-"
		if r.Paper.Eqns > 0 {
			paperEqns = fmt.Sprintf("%d", r.Paper.Eqns)
		}
		paperT := "-"
		switch {
		case r.Paper.RuntimeSec > 0:
			paperT = fmt.Sprintf("%.1f", r.Paper.RuntimeSec)
		case r.Paper.Mem == "MO":
			paperT = "MO"
		}
		pstr := r.P.String()
		if len(pstr) > 34 {
			pstr = pstr[:31] + "..."
		}
		fmt.Fprintf(w, "%-16s %5d  %-34s %10d %s   %14s %10s %8s\n",
			r.Label, r.M, pstr, r.Eqns, status, paperEqns, paperT, r.Paper.Mem)
	}
}

// WriteFigure4CSV renders the per-bit runtime series as CSV: one column per
// architecture, one row per output bit position (the paper plots runtime in
// seconds against output bit position).
func WriteFigure4CSV(w io.Writer, series []Figure4Series) {
	headers := make([]string, 0, len(series)+1)
	headers = append(headers, "bit")
	for _, s := range series {
		headers = append(headers, s.Arch)
	}
	fmt.Fprintln(w, strings.Join(headers, ","))
	if len(series) == 0 {
		return
	}
	for bit := range series[0].Bits {
		cells := []string{fmt.Sprintf("%d", bit)}
		for _, s := range series {
			cells = append(cells, fmt.Sprintf("%.6f", s.Bits[bit].Runtime.Seconds()))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// ArchComparison is an extension beyond the paper's tables: extraction cost
// across all five implemented multiplier architectures at one field size.
// It generalizes the Mastrovito-vs-Montgomery comparison of Tables I/II;
// the interesting shape is that per-output-cone independence (matrix form,
// digit-serial) extracts fastest, while global logic sharing (Karatsuba)
// and serial chains (Montgomery) inflate intermediate expressions.
func ArchComparison(m int, ropts ...RunOption) ([]Row, error) {
	p, err := polytab.Default(m)
	if err != nil {
		return nil, err
	}
	builders := []struct {
		name  string
		build func() (*netlist.Netlist, error)
	}{
		{"Mastrovito-tab", func() (*netlist.Netlist, error) { return gen.Mastrovito(m, p) }},
		{"Mastrovito-mat", func() (*netlist.Netlist, error) { return gen.MastrovitoMatrix(m, p) }},
		{"Karatsuba", func() (*netlist.Netlist, error) { return gen.Karatsuba(m, p) }},
		{"DigitSerial-4", func() (*netlist.Netlist, error) { return gen.DigitSerial(m, p, 4) }},
		{"Montgomery", func() (*netlist.Netlist, error) { return gen.Montgomery(m, p) }},
	}
	var rows []Row
	for _, b := range builders {
		n, err := b.build()
		if err != nil {
			return nil, err
		}
		rows = append(rows, runExtraction(b.name, n, p, PaperRow{}, nil, ropts...))
	}
	return rows, nil
}

// jsonRow is the machine-readable projection of a Row.
type jsonRow struct {
	Label           string  `json:"label"`
	M               int     `json:"m"`
	P               string  `json:"p"`
	Eqns            int     `json:"eqns"`
	RuntimeSeconds  float64 `json:"runtime_seconds"`
	MemBytes        int64   `json:"mem_bytes"`
	OK              bool    `json:"ok"`
	Err             string  `json:"error,omitempty"`
	PaperEqns       int     `json:"paper_eqns,omitempty"`
	PaperRuntimeSec float64 `json:"paper_runtime_seconds,omitempty"`
	PaperMem        string  `json:"paper_mem,omitempty"`
}

// WriteJSON renders rows as a JSON array for downstream tooling.
func WriteJSON(w io.Writer, rows []Row) error {
	out := make([]jsonRow, len(rows))
	for i, r := range rows {
		out[i] = jsonRow{
			Label:           r.Label,
			M:               r.M,
			P:               r.P.String(),
			Eqns:            r.Eqns,
			RuntimeSeconds:  r.Runtime.Seconds(),
			MemBytes:        r.Mem,
			OK:              r.OK,
			Err:             r.Err,
			PaperEqns:       r.Paper.Eqns,
			PaperRuntimeSec: r.Paper.RuntimeSec,
			PaperMem:        r.Paper.Mem,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// rowSlug turns a row label into a filesystem-safe checkpoint subdirectory
// name ("GF(2^163) Mastrovito" -> "GF_2_163__Mastrovito").
func rowSlug(label string) string {
	out := make([]rune, 0, len(label))
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
