package eval

import (
	"encoding/json"
	"io"
	"strconv"
	"strings"

	"github.com/galoisfield/gfre/internal/obs"
)

// BenchReport is the machine-readable form of one measured extraction — the
// schema of the BENCH_<design>.json perf-trajectory records that gfbench
// -benchjson emits. Phase and per-bit breakdowns come from the telemetry
// recorder attached to every eval row, so successive PRs can diff where the
// time went, not just the total.
type BenchReport struct {
	Design         string       `json:"design"`
	M              int          `json:"m"`
	P              string       `json:"p"`
	Eqns           int          `json:"eqns"`
	Threads        int          `json:"threads"`
	RuntimeSeconds float64      `json:"runtime_seconds"`
	MemBytes       int64        `json:"mem_bytes"`
	OK             bool         `json:"ok"`
	Error          string       `json:"error,omitempty"`
	Phases         []BenchPhase `json:"phases,omitempty"`
	Bits           []BenchBit   `json:"bits,omitempty"`
	Metrics        obs.Snapshot `json:"metrics"`
}

// BenchPhase is one pipeline phase's wall-clock share.
type BenchPhase struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// BenchBit is one output bit's rewriting cost (Figure 4's data points).
type BenchBit struct {
	Bit       int     `json:"bit"`
	Name      string  `json:"name"`
	Cone      int     `json:"cone"`
	Subst     int     `json:"subst"`
	Peak      int     `json:"peak"`
	Final     int     `json:"final"`
	Cancelled int     `json:"cancelled"`
	Seconds   float64 `json:"seconds"`
}

// NewBenchReport projects a measured Row into the BENCH schema.
func NewBenchReport(r Row) BenchReport {
	rep := BenchReport{
		Design:         r.Label,
		M:              r.M,
		P:              r.P.String(),
		Eqns:           r.Eqns,
		Threads:        Threads,
		RuntimeSeconds: r.Runtime.Seconds(),
		MemBytes:       r.Mem,
		OK:             r.OK,
		Error:          r.Err,
		Metrics:        r.Metrics,
	}
	for _, ph := range r.Phases {
		rep.Phases = append(rep.Phases, BenchPhase{Name: ph.Name, Seconds: ph.Duration.Seconds()})
	}
	for _, b := range r.Bits {
		rep.Bits = append(rep.Bits, BenchBit{
			Bit: b.Bit, Name: b.Name, Cone: b.ConeGates, Subst: b.Substitutions,
			Peak: b.PeakTerms, Final: b.FinalTerms, Cancelled: b.Cancelled,
			Seconds: b.Runtime.Seconds(),
		})
	}
	return rep
}

// WriteBenchReport renders one row's BENCH JSON to w.
func WriteBenchReport(w io.Writer, r Row) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(NewBenchReport(r))
}

// BenchFileName returns the canonical file name for a row's report,
// BENCH_<design>_m<M>.json with the design label slugged.
func BenchFileName(r Row) string {
	slug := strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			return c
		case c >= 'A' && c <= 'Z':
			return c + ('a' - 'A')
		default:
			return '-'
		}
	}, r.Label)
	return "BENCH_" + slug + "_m" + strconv.Itoa(r.M) + ".json"
}
