package netlint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlist"
)

var p8 = gf2poly.MustParse("x^8+x^4+x^3+x+1")

func findings(rep *Report, rule string) []Finding {
	var out []Finding
	for _, f := range rep.Findings {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

func TestAnalyzeCleanMastrovito(t *testing.T) {
	n, err := gen.Mastrovito(8, p8)
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(n, Options{RequireMultiplier: true})
	if rep.HasErrors() {
		t.Fatalf("clean multiplier produced errors: %+v", rep.Findings)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("Err() = %v on clean design", err)
	}
	if rep.Fingerprint.Class != "mastrovito" {
		t.Errorf("fingerprint = %q (%s), want mastrovito", rep.Fingerprint.Class, rep.Fingerprint.Evidence)
	}
	if len(rep.Cones) != 8 {
		t.Fatalf("got %d cones, want 8", len(rep.Cones))
	}
	if rep.SuggestedBudgetTerms <= 0 {
		t.Errorf("no suggested budget")
	}
	if rep.SuggestedConeTimeoutMS <= 0 {
		t.Errorf("no suggested cone timeout")
	}
	// The no-cancellation bound must dominate the true final ANF size: bit k
	// of a degree-8 multiplier has at most 64 product terms.
	for _, c := range rep.Cones {
		if c.PredictedPeakTerms < 8 {
			t.Errorf("cone %s predicted peak %d implausibly small", c.Name, c.PredictedPeakTerms)
		}
		if c.Saturated {
			t.Errorf("cone %s saturated on a clean m=8 design", c.Name)
		}
	}
}

func TestAnalyzeMontgomeryFingerprint(t *testing.T) {
	n, err := gen.Montgomery(8, p8)
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(n, Options{RequireMultiplier: true})
	if rep.HasErrors() {
		t.Fatalf("clean montgomery produced errors: %+v", rep.Findings)
	}
	if rep.Fingerprint.Class != "montgomery" {
		t.Errorf("fingerprint = %q (%s), want montgomery", rep.Fingerprint.Class, rep.Fingerprint.Evidence)
	}
}

func TestDeadGateAndUnusedInput(t *testing.T) {
	n := netlist.New("dead")
	a, _ := n.AddInput("a0")
	b, _ := n.AddInput("a1")
	u, _ := n.AddInput("b0") // never used
	x, _ := n.AddGate(netlist.Xor, a, b)
	dead, _ := n.AddGate(netlist.And, a, u) // feeds nothing
	_ = dead
	n.MarkOutput("z0", x)
	n.MarkOutput("z1", a)

	rep := Analyze(n, Options{})
	if got := findings(rep, "dead-gate"); len(got) != 1 {
		t.Fatalf("dead-gate findings = %+v, want 1", got)
	} else if got[0].Severity != SevWarn || len(got[0].Gates) != 1 || got[0].Gates[0] != dead {
		t.Errorf("dead-gate finding = %+v", got[0])
	}
	// b0 is read only by the dead gate, hence unused from any output.
	got := findings(rep, "unused-input")
	if len(got) != 1 || !strings.Contains(got[0].Message, "b0") {
		t.Fatalf("unused-input findings = %+v", got)
	}
}

func TestConstAndRedundantGates(t *testing.T) {
	n := netlist.New("consts")
	a, _ := n.AddInput("a0")
	b, _ := n.AddInput("a1")
	c0, _ := n.AddGate(netlist.Const1)
	fold, _ := n.AddGate(netlist.And, a, c0) // folds to a
	self, _ := n.AddGate(netlist.Xor, b, b)  // x^x = 0
	dup1, _ := n.AddGate(netlist.And, a, b)
	dup2, _ := n.AddGate(netlist.And, a, b) // structural duplicate
	buf, _ := n.AddGate(netlist.Buf, dup1)
	top1, _ := n.AddGate(netlist.Xor, fold, self)
	top2, _ := n.AddGate(netlist.Xor, dup2, buf)
	n.MarkOutput("z0", top1)
	n.MarkOutput("z1", top2)

	rep := Analyze(n, Options{})
	if got := findings(rep, "const-gate"); len(got) != 2 {
		t.Errorf("const-gate findings = %+v, want constant + foldable", got)
	}
	red := findings(rep, "redundant-gate")
	var msgs []string
	for _, f := range red {
		msgs = append(msgs, f.Message)
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{"identical fanins", "duplicate", "buffer"} {
		if !strings.Contains(joined, want) {
			t.Errorf("redundant-gate findings missing %q:\n%s", want, joined)
		}
	}
}

func TestIOShapeRequireMultiplier(t *testing.T) {
	n := netlist.New("notmul")
	a, _ := n.AddInput("a0")
	b, _ := n.AddInput("a1")
	x, _ := n.AddGate(netlist.And, a, b)
	n.MarkOutput("z0", x)

	rep := Analyze(n, Options{})
	if rep.HasErrors() {
		t.Fatalf("io-shape should be a warning without RequireMultiplier: %+v", rep.Findings)
	}
	rep = Analyze(n, Options{RequireMultiplier: true})
	if !rep.HasErrors() {
		t.Fatal("io-shape should be an error with RequireMultiplier")
	}
	if err := rep.Err(); !errors.Is(err, ErrFindings) {
		t.Fatalf("Err() = %v, want ErrFindings", err)
	}
}

func TestAnalyzeSourceCycleWitness(t *testing.T) {
	src := `
INORDER = a0 a1 b0 b1;
OUTORDER = z0 z1;
p = a0 * b0;
u = p ^ w;
v = u ^ a1;
w = v * b1;
z0 = p ^ a0;
z1 = u;
`
	rep := AnalyzeSource([]byte(src), "cyclic.eqn", "", Options{})
	cyc := findings(rep, "cycle")
	if len(cyc) != 1 {
		t.Fatalf("cycle findings = %+v, want 1", rep.Findings)
	}
	f := cyc[0]
	if f.Severity != SevError {
		t.Errorf("cycle severity = %s", f.Severity)
	}
	// Witness must spell out the loop u -> w -> v -> u (direction dependent
	// on traversal; both ends must name the same signal).
	if len(f.Signals) < 3 || f.Signals[0] != f.Signals[len(f.Signals)-1] {
		t.Errorf("cycle witness %v is not a closed path", f.Signals)
	}
	for _, s := range []string{"u", "v", "w"} {
		if !strings.Contains(f.Message, s) {
			t.Errorf("cycle witness %q missing %q", f.Message, s)
		}
	}
	if err := rep.Err(); !errors.Is(err, ErrFindings) {
		t.Fatalf("Err() = %v", err)
	}
	// No redundant parse finding: the cycle already explains the failure.
	if got := findings(rep, "parse"); len(got) != 0 {
		t.Errorf("unexpected parse findings: %+v", got)
	}
}

func TestAnalyzeSourceMultiDriven(t *testing.T) {
	src := `
INORDER = a0 a1 b0 b1;
OUTORDER = z0 z1;
p = a0 * b0;
p = a1 * b1;
z0 = p ^ a0;
z1 = p;
`
	rep := AnalyzeSource([]byte(src), "multi.eqn", "", Options{})
	got := findings(rep, "multi-driven")
	if len(got) != 1 {
		t.Fatalf("multi-driven findings = %+v", rep.Findings)
	}
	if !strings.Contains(got[0].Message, `"p"`) || !strings.Contains(got[0].Message, "lines 4 and 5") {
		t.Errorf("multi-driven witness = %q", got[0].Message)
	}
}

func TestAnalyzeSourceUndriven(t *testing.T) {
	src := `
INORDER = a0 a1 b0 b1;
OUTORDER = z0 z1;
z0 = a0 * ghost;
z1 = a1 ^ b0;
`
	rep := AnalyzeSource([]byte(src), "undriven.eqn", "", Options{})
	got := findings(rep, "undriven")
	if len(got) != 1 || !strings.Contains(got[0].Message, "ghost") {
		t.Fatalf("undriven findings = %+v", rep.Findings)
	}
}

func TestAnalyzeSourceTopoOrder(t *testing.T) {
	src := `
INORDER = a0 a1 b0 b1;
OUTORDER = z0 z1;
z0 = p ^ a0;
p = a0 * b0;
z1 = p ^ a1;
`
	rep := AnalyzeSource([]byte(src), "fwd.eqn", "", Options{})
	if got := findings(rep, "topo-order"); len(got) != 1 {
		t.Fatalf("topo-order findings = %+v", rep.Findings)
	}
	// Acyclic forward reference still fails the EQN reader; the parse
	// finding must accompany the topo-order explanation.
	if got := findings(rep, "parse"); len(got) != 1 {
		t.Fatalf("parse findings = %+v", rep.Findings)
	}
}

func TestAnalyzeSourceBLIFCycle(t *testing.T) {
	src := `.model cyc
.inputs a b
.outputs z
.names a x y
11 1
.names y b x
11 1
.names x z
1 1
.end
`
	rep := AnalyzeSource([]byte(src), "cyc.blif", "", Options{})
	got := findings(rep, "cycle")
	if len(got) != 1 {
		t.Fatalf("cycle findings = %+v", rep.Findings)
	}
	if got[0].Signals[0] != got[0].Signals[len(got[0].Signals)-1] {
		t.Errorf("witness not closed: %v", got[0].Signals)
	}
}

func TestAnalyzeSourceCleanEQNRunsDAGRules(t *testing.T) {
	n, err := gen.Mastrovito(4, gf2poly.MustParse("x^4+x+1"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteEQN(&buf); err != nil {
		t.Fatal(err)
	}
	rep := AnalyzeSource(buf.Bytes(), "mast4.eqn", "", Options{RequireMultiplier: true})
	if rep.HasErrors() {
		t.Fatalf("clean EQN round-trip produced errors: %+v", rep.Findings)
	}
	if rep.Fingerprint.Class != "mastrovito" {
		t.Errorf("fingerprint = %q", rep.Fingerprint.Class)
	}
	if len(rep.Cones) != 4 {
		t.Errorf("cones = %d, want 4", len(rep.Cones))
	}
}

func TestAnalyzeSourceSelfLoop(t *testing.T) {
	src := `
INORDER = a0 a1 b0 b1;
OUTORDER = z0 z1;
z0 = z0 ^ a0;
z1 = a1;
`
	rep := AnalyzeSource([]byte(src), "self.eqn", "", Options{})
	got := findings(rep, "cycle")
	if len(got) != 1 || len(got[0].Signals) != 2 || got[0].Signals[0] != "z0" {
		t.Fatalf("self-loop findings = %+v", rep.Findings)
	}
}

func TestRenderTextAndSARIF(t *testing.T) {
	src := `
INORDER = a0 a1 b0 b1;
OUTORDER = z0 z1;
p = a0 * b0;
p = a1 * b1;
z0 = p ^ ghost;
z1 = p;
`
	rep := AnalyzeSource([]byte(src), "bad.eqn", "", Options{})

	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"error", "multi-driven", "bad.eqn"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, text.String())
		}
	}

	var sarif bytes.Buffer
	if err := WriteSARIF(&sarif, rep); err != nil {
		t.Fatal(err)
	}
	var log map[string]any
	if err := json.Unmarshal(sarif.Bytes(), &log); err != nil {
		t.Fatalf("SARIF is not valid JSON: %v", err)
	}
	if v := log["version"]; v != "2.1.0" {
		t.Errorf("SARIF version = %v", v)
	}
	runs := log["runs"].([]any)
	results := runs[0].(map[string]any)["results"].([]any)
	if len(results) != len(rep.Findings) {
		t.Errorf("SARIF results = %d, findings = %d", len(results), len(rep.Findings))
	}
	first := results[0].(map[string]any)
	if first["ruleId"] == "" || first["level"] != "error" {
		t.Errorf("SARIF result = %v", first)
	}
}

func TestReportJSONAndCounts(t *testing.T) {
	n, err := gen.Mastrovito(4, gf2poly.MustParse("x^4+x+1"))
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(n, Options{})
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"fingerprint", "findings", "suggested_budget_terms"} {
		if !bytes.Contains(data, []byte(key)) {
			t.Errorf("report JSON missing %q: %s", key, data)
		}
	}
	counts := rep.Counts()
	if counts[SevError] != 0 {
		t.Errorf("counts = %v", counts)
	}
	if rep.MaxSeverity() != SevInfo {
		t.Errorf("MaxSeverity = %q", rep.MaxSeverity())
	}
}

func TestDisabledRules(t *testing.T) {
	src := `
INORDER = a0 a1 b0 b1;
OUTORDER = z0 z1;
p = a0 * b0;
p = a1 * b1;
z0 = p;
z1 = p;
`
	rep := AnalyzeSource([]byte(src), "multi.eqn", "", Options{Disabled: []string{"multi-driven", "parse"}})
	if got := findings(rep, "multi-driven"); len(got) != 0 {
		t.Errorf("disabled rule still fired: %+v", got)
	}
}

func TestBlowupRiskSaturation(t *testing.T) {
	// An OR chain over 40 distinct inputs: each level's ANF is
	// t ^ x ^ t*x, so the term count roughly doubles per level and the true
	// expansion has ~2^40 terms. Unlike a squaring chain (which algebra
	// proves collapses to degree 1), this blowup is real: both the
	// syntactic term bound and the semantic degree bound saturate.
	n := netlist.New("blowup")
	cur, _ := n.AddInput("x0")
	for i := 1; i < 40; i++ {
		in, _ := n.AddInput(fmt.Sprintf("x%d", i))
		cur, _ = n.AddGate(netlist.Or, cur, in)
	}
	n.MarkOutput("z0", cur)
	rep := Analyze(n, Options{})
	if got := findings(rep, "blowup-risk"); len(got) != 1 {
		t.Fatalf("blowup-risk findings = %+v", rep.Findings)
	}
	if !rep.Cones[0].Saturated {
		t.Error("cone not marked saturated")
	}
	if rep.SuggestedBudgetTerms > budgetCeil {
		t.Errorf("saturated budget = %d exceeds ceiling", rep.SuggestedBudgetTerms)
	}
}

func TestGovernorFillsOnlyUnset(t *testing.T) {
	rep := &Report{SuggestedBudgetTerms: 5000, SuggestedConeTimeoutMS: 70000}
	if b, d := rep.Governor(0, 0); b != 5000 || d.Milliseconds() != 70000 {
		t.Errorf("Governor(0,0) = %d, %v", b, d)
	}
	if b, d := rep.Governor(123, 1); b != 0 || d != 0 {
		t.Errorf("Governor(set,set) = %d, %v, want zeros", b, d)
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	src := `
INORDER = a0 a1 b0 b1;
OUTORDER = z0 z1;
p = a0 * b0;
q = ghost1 ^ ghost2;
q = p;
z0 = q ^ loop;
loop = z0 * p;
z1 = p;
`
	first := AnalyzeSource([]byte(src), "messy.eqn", "", Options{})
	a, _ := json.Marshal(first)
	for i := 0; i < 10; i++ {
		b, _ := json.Marshal(AnalyzeSource([]byte(src), "messy.eqn", "", Options{}))
		if !bytes.Equal(a, b) {
			t.Fatalf("run %d differs:\n%s\n%s", i, a, b)
		}
	}
}
