package sem

import (
	"fmt"
	"sync"

	"github.com/galoisfield/gfre/internal/checkpoint"
	"github.com/galoisfield/gfre/internal/netlist"
)

// Analysis results are content-hash cached: gfred lints every submission at
// admission time and again when the job runs, gflint is rerun on unchanged
// files by editors and CI, and the diffcheck campaigns lint the same
// generated designs repeatedly. The sweep is cheap but not free, and the
// Result is immutable — so identical (netlist, options) pairs share one.
//
// The key reuses the checkpoint package's canonical netlist hashing (the
// same content binding that makes resume refuse a mismatched snapshot), so
// any two construction paths that produce the same canonical EQN text hit
// the same entry.

const cacheCap = 64

var cache = struct {
	sync.Mutex
	m     map[string]*Result
	order []string // insertion order, oldest first
}{m: make(map[string]*Result)}

// cacheKey binds the content hash to every option that shapes the result —
// plus the gate and input counts, because canonical text alone is not
// structural identity: WriteEQN synthesizes alias-buffer lines for renamed
// outputs, so a netlist and its EQN round-trip (which has real Buf gates
// for those lines) serialize identically while owning different gate ID
// spaces. Facts are indexed by gate ID; handing one netlist the other's
// Result would be out-of-bounds or, worse, silently wrong.
func cacheKey(contentHash string, n *netlist.Netlist, opts Options) string {
	return fmt.Sprintf("sem1|%s|g%d|i%d|tt%d|s%d",
		contentHash, n.NumGates(), len(n.Inputs()), opts.ttMaxVars(), opts.maxSets())
}

// AnalyzeCached is Analyze behind a bounded content-addressed cache.
// contentHash may be empty, in which case the canonical netlist hash is
// computed here; pass a precomputed hash (submission hash, source digest)
// to skip that serialization on hot paths.
func AnalyzeCached(n *netlist.Netlist, contentHash string, opts Options) *Result {
	if contentHash == "" {
		h, err := checkpoint.HashNetlist(n)
		if err != nil {
			return Analyze(n, opts)
		}
		contentHash = h
	}
	key := cacheKey(contentHash, n, opts)

	cache.Lock()
	if r, ok := cache.m[key]; ok {
		cache.Unlock()
		return r
	}
	cache.Unlock()

	r := Analyze(n, opts)

	cache.Lock()
	if prev, ok := cache.m[key]; ok {
		// A concurrent analysis won the race; share its result.
		cache.Unlock()
		return prev
	}
	cache.m[key] = r
	cache.order = append(cache.order, key)
	for len(cache.order) > cacheCap {
		delete(cache.m, cache.order[0])
		cache.order = cache.order[1:]
	}
	cache.Unlock()
	return r
}

// CacheSize reports the number of cached results (for tests and metrics).
func CacheSize() int {
	cache.Lock()
	defer cache.Unlock()
	return len(cache.m)
}
