package sem

// Exact truth-table sub-domain: any wire whose cone reaches at most six
// distinct primary inputs is represented by a 64-bit truth table over those
// inputs. Within this domain everything is decidable — constants, exact ANF
// degree, exact support, unateness — which is what lets dead-by-algebra
// prove results syntactic constant folding cannot (x XOR x through distinct
// reconvergent paths, MUX branches that agree, comparator trees that
// collapse). Row index bit i is the value of variable i.

// lowMask[i] selects the truth-table rows where variable i is 0.
var lowMask = [6]uint64{
	0x5555555555555555,
	0x3333333333333333,
	0x0f0f0f0f0f0f0f0f,
	0x00ff00ff00ff00ff,
	0x0000ffff0000ffff,
	0x00000000ffffffff,
}

// rowMask masks the valid rows of a k-variable table.
func rowMask(k int) uint64 {
	if k >= 6 {
		return ^uint64(0)
	}
	return (uint64(1) << (uint(1) << uint(k))) - 1
}

// mobius converts a truth table to its ANF spectrum in place: bit m of the
// result is the coefficient of the monomial whose variable set is m. The
// standard XOR butterfly, one pass per variable.
func mobius(tt uint64, k int) uint64 {
	for i := 0; i < k; i++ {
		tt ^= (tt & lowMask[i]) << (uint(1) << uint(i))
	}
	return tt
}

// essential reports whether variable i actually influences the function.
func essential(tt uint64, k, i int) bool {
	s := uint(1) << uint(i)
	return ((tt>>s)^tt)&lowMask[i]&rowMask(k) != 0
}

// unateIn reports whether the function is unate (monotone or anti-monotone)
// in variable i.
func unateIn(tt uint64, k, i int) bool {
	s := uint(1) << uint(i)
	rm := rowMask(k)
	c0 := tt & lowMask[i] & rm
	c1 := (tt >> s) & lowMask[i] & rm
	return c0&^c1 == 0 || c1&^c0 == 0
}

// dropVar removes (inessential) variable i from a k-variable table by taking
// the x_i = 0 cofactor and compacting the remaining rows: the even block of
// every 2^i-row block pair moves down.
func dropVar(tt uint64, k, i int) uint64 {
	bs := uint(1) << uint(i)
	mask := uint64(1)<<bs - 1
	var out uint64
	sh := uint(0)
	for off := uint(0); off < uint(1)<<uint(k); off += 2 * bs {
		out |= ((tt >> off) & mask) << sh
		sh += bs
	}
	return out
}

// dupAt inserts an ignored variable at position p of a table of sBits rows:
// every block of 2^p rows is duplicated, doubling the table. The inverse of
// dropVar, used to lift a fanin table into a joint variable space.
func dupAt(tt uint64, sBits, p int) uint64 {
	bs := 1 << uint(p)
	if bs >= sBits {
		return tt | tt<<uint(sBits)
	}
	mask := uint64(1)<<uint(bs) - 1
	var out uint64
	sh := uint(0)
	for off := 0; off < sBits; off += bs {
		blk := (tt >> uint(off)) & mask
		out |= (blk | blk<<uint(bs)) << sh
		sh += uint(2 * bs)
	}
	return out
}

// ttConst classifies a k-variable table: (isConst, value).
func ttConst(tt uint64, k int) (bool, bool) {
	rm := rowMask(k)
	switch tt & rm {
	case 0:
		return true, false
	case rm:
		return true, true
	}
	return false, false
}
