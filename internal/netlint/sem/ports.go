package sem

import (
	"regexp"
	"sort"
	"strconv"
)

// Class labels a primary input's role in the inferred operand partition.
type Class uint8

const (
	// ClassA / ClassB are the two multiplication operand vectors.
	ClassA Class = iota
	ClassB
	// ClassKey marks surplus inputs outside both operand vectors. For a
	// clean GF(2^m) multiplier the partition is exhaustive (2m inputs, two
	// vectors of m), so a key-classed input is itself a finding: it is the
	// structural signature of logic-locking keys and opaque constants.
	ClassKey
)

func (c Class) String() string {
	switch c {
	case ClassA:
		return "a"
	case ClassB:
		return "b"
	}
	return "key"
}

// Ports is the operand partition of a netlist's primary inputs, inferred
// from port naming the same way extraction's port identifier works: bit
// vectors are grouped by alphabetic prefix (a3 / a[3] / a_3 spellings).
type Ports struct {
	// Partitioned reports whether two operand vectors could be identified.
	// When false every input is classed ClassA and the per-operand degree
	// split degenerates to the total degree; key detection is disabled (an
	// unnamed or scrambled design gives no basis for calling an input
	// surplus, and guessing would fabricate false positives).
	Partitioned bool
	// APrefix / BPrefix name the chosen operand vectors.
	APrefix, BPrefix string
	// AWidth / BWidth are the vector widths.
	AWidth, BWidth int
	// Class is indexed by input position (the order of Netlist.Inputs()).
	Class []Class
	// KeyInputs holds the gate IDs of ClassKey inputs, ascending.
	KeyInputs []int
}

// portPat splits a port name into alphabetic prefix and bit index, matching
// netlint's io-naming convention.
var portPat = regexp.MustCompile(`^([A-Za-z_]+?)_?\[?(\d+)\]?$`)

// operandish prefixes get priority when several equal-width vectors compete
// for the operand slots; conventional operand names beat key/control names.
var operandish = map[string]bool{
	"a": true, "b": true, "x": true, "y": true, "A": true, "B": true,
	"in": true, "op": true, "opa": true, "opb": true,
}

// classify infers the operand partition from the named input list. ids are
// primary-input gate IDs in port order, names their signal names.
func classify(ids []int, names []string) Ports {
	p := Ports{Class: make([]Class, len(ids))}

	type vec struct {
		prefix  string
		members []int // input positions
	}
	byPrefix := map[string]*vec{}
	var order []string // first-seen prefix order, for determinism
	loose := []int{}   // positions whose names defy the convention
	for i, name := range names {
		m := portPat.FindStringSubmatch(name)
		if m == nil {
			loose = append(loose, i)
			continue
		}
		v := byPrefix[m[1]]
		if v == nil {
			v = &vec{prefix: m[1]}
			byPrefix[m[1]] = v
			order = append(order, m[1])
		}
		v.members = append(v.members, i)
	}

	vecs := make([]*vec, 0, len(order))
	for _, pre := range order {
		vecs = append(vecs, byPrefix[pre])
	}
	// Operand vectors: prefer the widest equal-width pair (multiplier
	// operands always match in width, key vectors usually don't), break
	// ties toward conventional operand prefixes, then name order. Sorting
	// is stable on the width/priority key so equal candidates keep a
	// deterministic order.
	sort.SliceStable(vecs, func(i, j int) bool {
		vi, vj := vecs[i], vecs[j]
		if len(vi.members) != len(vj.members) {
			return len(vi.members) > len(vj.members)
		}
		oi, oj := operandish[vi.prefix], operandish[vj.prefix]
		if oi != oj {
			return oi
		}
		return vi.prefix < vj.prefix
	})
	// Among the sorted candidates pick the first pair with equal widths >= 2;
	// a width-1 pair counts only when both prefixes are conventional operand
	// names (the degenerate m=1 multiplier), never on naming accidents.
	ai, bi := -1, -1
	for i := 0; i+1 < len(vecs) && ai < 0; i++ {
		w := len(vecs[i].members)
		if w != len(vecs[i+1].members) {
			continue
		}
		if w >= 2 || (w == 1 && operandish[vecs[i].prefix] && operandish[vecs[i+1].prefix]) {
			ai, bi = i, i+1
		}
	}
	if ai < 0 {
		// No equal-width pair: fall back to the two widest vectors when
		// both are plausible (>= 2 bits each).
		if len(vecs) >= 2 && len(vecs[0].members) >= 2 && len(vecs[1].members) >= 2 {
			ai, bi = 0, 1
		}
	}
	if ai < 0 {
		// Unpartitionable: single vector, anonymous naming, or degenerate
		// widths. Everything is ClassA (degTot carries the information).
		return p
	}
	a, b := vecs[ai], vecs[bi]
	// Keep the conventional a-before-b orientation when both match.
	if !operandish[a.prefix] && operandish[b.prefix] || a.prefix > b.prefix && operandish[a.prefix] == operandish[b.prefix] {
		a, b = b, a
	}
	p.Partitioned = true
	p.APrefix, p.BPrefix = a.prefix, b.prefix
	p.AWidth, p.BWidth = len(a.members), len(b.members)

	inA := map[int]bool{}
	for _, pos := range a.members {
		inA[pos] = true
	}
	inB := map[int]bool{}
	for _, pos := range b.members {
		inB[pos] = true
	}
	for pos := range names {
		switch {
		case inA[pos]:
			p.Class[pos] = ClassA
		case inB[pos]:
			p.Class[pos] = ClassB
		default:
			p.Class[pos] = ClassKey
			p.KeyInputs = append(p.KeyInputs, ids[pos])
		}
	}
	sort.Ints(p.KeyInputs)
	return p
}

// bitIndex parses the bit position out of a conventional port name
// (unused bits return -1). Exposed for tests.
func bitIndex(name string) int {
	m := portPat.FindStringSubmatch(name)
	if m == nil {
		return -1
	}
	v, err := strconv.Atoi(m[2])
	if err != nil {
		return -1
	}
	return v
}
