// Package sem is the semantic layer of netlist static analysis: an abstract
// interpreter that propagates per-wire algebraic facts through one forward
// topological sweep of the gate DAG.
//
// Every wire gets a value in a product lattice:
//
//   - an exact 64-bit truth-table sub-domain for wires whose cone reaches at
//     most six distinct primary inputs — constants, linearity, degree,
//     support and unateness are all decided exactly there (catching
//     reconvergent identities like x XOR x that syntactic rules cannot);
//   - ANF degree upper bounds, split per operand class (degree in the a
//     vector, in the b vector, in surplus "key" inputs, and total) — a
//     GF(2^m) multiplier output must be bilinear: degree <= 1 in each
//     operand, 0 in anything else;
//   - the support set (which primary inputs can influence the wire) as an
//     interned bitset, with widening to operand-class closure when a
//     degenerate design manufactures too many distinct sets;
//   - constant / unateness status.
//
// Gate transfer functions are derived from the gate's own truth table
// (restricted by constant fanins first, then Mobius-transformed to its local
// ANF), so every cell type — including LUTs and complex AOI/OAI/MUX cells —
// is handled by the same sound rule: a local monomial's degree bound is the
// saturating sum of its fanins' bounds, a gate's support the union of its
// essential fanins' supports.
//
// The whole sweep is linear in gates x support words and runs in a few
// milliseconds even at GF(2^571) scale — cheap enough to run at submit time
// before any rewriting starts, which is the point: the lint rules built on
// top (nonlinear-cone, key-gate, opaque-constant, dead-by-algebra, the
// degree-driven cost predictor) reject or budget hostile inputs for the
// price of one linear pass.
package sem

import (
	"math/bits"
	"sort"
	"time"

	"github.com/galoisfield/gfre/internal/netlist"
)

// DegCap saturates degree upper bounds; anything above is reported as
// "effectively unbounded" rather than tracked precisely.
const DegCap = 1 << 20

// Options configures an analysis.
type Options struct {
	// TTMaxVars bounds the exact truth-table sub-domain's variable count
	// (default and maximum 6: one uint64 per wire).
	TTMaxVars int
	// MaxSets caps the support-set intern table before widening kicks in
	// (default 1<<16 distinct sets).
	MaxSets int
}

const (
	defaultTTMaxVars = 6
	defaultMaxSets   = 1 << 16
)

func (o Options) ttMaxVars() int {
	if o.TTMaxVars <= 0 || o.TTMaxVars > 6 {
		return defaultTTMaxVars
	}
	return o.TTMaxVars
}

func (o Options) maxSets() int {
	if o.MaxSets <= 8 {
		return defaultMaxSets
	}
	return o.MaxSets
}

// fact is the per-wire lattice value.
type fact struct {
	supp int32 // interned support set (over input positions)

	degA, degB, degK, degTot int32 // saturating ANF degree upper bounds

	konst int8 // -1 unknown, else the constant value
	syn   bool // constant reached by propagation only (foldable, not algebraic)
	unate bool // monotone/anti-monotone in every support input
	exact bool // degrees/support/unateness are exact (truth-table domain)

	ttn int8     // exact truth-table variable count; -1 when abstract
	tt  uint64   // truth table over ttv[:ttn]
	ttv [6]int32 // variable gate IDs (primary inputs), ascending
}

func satDeg(v int32) int32 {
	if v > DegCap {
		return DegCap
	}
	return v
}

func maxDeg(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// OutputFact summarizes one primary output's algebraic classification.
type OutputFact struct {
	// Bit is the output position, Gate the driving gate ID, Name the port.
	Bit  int
	Gate int
	Name string
	// Const is -1 for non-constant outputs, else the proven value.
	Const int8
	// Degree upper bounds (exact when Exact).
	DegA, DegB, DegKey, DegTot int
	// Exact marks outputs settled in the truth-table domain.
	Exact bool
	// SupportSize counts primary inputs that can influence this output.
	SupportSize int
	// KeyInputs lists gate IDs of key-classed inputs in the support:
	// non-operand inputs whose value gates this output.
	KeyInputs []int
}

// Result is the outcome of one semantic sweep. It is immutable after
// Analyze and safe for concurrent readers (AnalyzeCached shares it).
type Result struct {
	Ports   Ports
	Outputs []OutputFact

	NumGates  int
	NumInputs int
	// SetsInterned / Widened expose intern-table pressure: Widened > 0
	// means support precision degraded to operand-class granularity for
	// some wires.
	SetsInterned int
	Widened      int
	Elapsed      time.Duration

	facts    []fact
	pool     *suppPool
	inputs   []int
	inputPos []int32 // gate ID -> input position, -1 otherwise
}

// analyzer carries the sweep's scratch state.
type analyzer struct {
	n        *netlist.Netlist
	opts     Options
	ports    Ports
	pool     *suppPool
	facts    []fact
	inputPos []int32

	uid       []int32 // distinct non-const fanins of the current gate
	slotIdx   []int8  // per fanin slot: index into uid, or -1 (constant)
	slotConst []bool  // per fanin slot: value when slotIdx < 0
	evalIn    []bool
	suppBuf   []uint64
	vbuf      []int32
	proj      [][6]int8
	memb      []int
}

// Analyze runs the semantic sweep over a constructed netlist.
func Analyze(n *netlist.Netlist, opts Options) *Result {
	start := time.Now()
	inputs := n.Inputs()
	names := make([]string, len(inputs))
	for i, id := range inputs {
		names[i] = n.NameOf(id)
	}
	ports := classify(inputs, names)

	inputPos := make([]int32, n.NumGates())
	for i := range inputPos {
		inputPos[i] = -1
	}
	for pos, id := range inputs {
		inputPos[id] = int32(pos)
	}

	a := &analyzer{
		n:        n,
		opts:     opts,
		ports:    ports,
		pool:     newSuppPool(len(inputs), opts.maxSets(), n.NumGates()/2+16, ports.Class),
		facts:    make([]fact, n.NumGates()),
		inputPos: inputPos,
		evalIn:   make([]bool, 0, 32),
		suppBuf:  make([]uint64, (len(inputs)+63)/64),
	}
	if len(a.suppBuf) == 0 {
		a.suppBuf = make([]uint64, 1)
	}
	for id := 0; id < n.NumGates(); id++ {
		a.facts[id] = a.transfer(id)
	}

	r := &Result{
		Ports:        ports,
		NumGates:     n.NumGates(),
		NumInputs:    len(inputs),
		SetsInterned: a.pool.count(),
		Widened:      a.pool.widens,
		facts:        a.facts,
		pool:         a.pool,
		inputs:       inputs,
		inputPos:     inputPos,
	}
	outs := n.Outputs()
	outNames := n.OutputNames()
	for i, id := range outs {
		f := &a.facts[id]
		of := OutputFact{
			Bit: i, Gate: id,
			Const:  f.konst,
			DegA:   int(f.degA),
			DegB:   int(f.degB),
			DegKey: int(f.degK),
			DegTot: int(f.degTot),
			Exact:  f.exact,

			SupportSize: r.SupportSize(id),
			KeyInputs:   r.KeySupport(id),
		}
		if i < len(outNames) {
			of.Name = outNames[i]
		}
		r.Outputs = append(r.Outputs, of)
	}
	r.Elapsed = time.Since(start)
	return r
}

// transfer computes the lattice value of gate id from its fanins' values.
func (a *analyzer) transfer(id int) fact {
	g := a.n.Gate(id)
	switch g.Type {
	case netlist.Input:
		pos := a.inputPos[id]
		// Exact facts carry their support explicitly in ttv[:ttn]; supp = -1
		// defers bitset interning until an abstract consumer needs it, which
		// keeps the pool out of the (dominant) exact-domain path entirely.
		f := fact{supp: -1, konst: -1, ttn: 1, tt: 0b10, degTot: 1, unate: true, exact: true}
		f.ttv[0] = int32(id)
		switch a.ports.Class[pos] {
		case ClassA:
			f.degA = 1
		case ClassB:
			f.degB = 1
		default:
			f.degK = 1
		}
		return f
	case netlist.Const0:
		return fact{konst: 0, syn: true, unate: true, exact: true}
	case netlist.Const1:
		return fact{konst: 1, syn: true, unate: true, exact: true}
	}

	// Partition fanin slots into constants and distinct variable signals;
	// constant fanins are baked into the gate-local truth table (automatic
	// constant folding), duplicate fanins collapse to one variable
	// (AND(x,x) = x, XOR(x,x) = 0 fall out of the restriction for free).
	a.uid = a.uid[:0]
	a.slotIdx = a.slotIdx[:0]
	a.slotConst = a.slotConst[:0]
	hadConstFanin := false
	for _, fi := range g.Fanin {
		ff := &a.facts[fi]
		if ff.konst >= 0 {
			hadConstFanin = true
			a.slotIdx = append(a.slotIdx, -1)
			a.slotConst = append(a.slotConst, ff.konst == 1)
			continue
		}
		j := -1
		for q, u := range a.uid {
			if u == int32(fi) {
				j = q
				break
			}
		}
		if j < 0 {
			a.uid = append(a.uid, int32(fi))
			j = len(a.uid) - 1
		}
		a.slotIdx = append(a.slotIdx, int8(j))
		a.slotConst = append(a.slotConst, false)
	}
	k := len(a.uid)

	if k > 6 {
		return a.coarse()
	}

	// Plain 1- and 2-input cells on distinct non-constant fanins — the bulk
	// of any synthesized netlist — get their local table from a lookup; both
	// variables are always essential for these types, so the restriction,
	// Eval sweep and essentiality drop below are all skipped.
	var T uint64
	fast := false
	if k == len(g.Fanin) {
		if k == 2 {
			switch g.Type {
			case netlist.And:
				T, fast = 0b1000, true
			case netlist.Or:
				T, fast = 0b1110, true
			case netlist.Xor:
				T, fast = 0b0110, true
			case netlist.Xnor:
				T, fast = 0b1001, true
			case netlist.Nand:
				T, fast = 0b0111, true
			case netlist.Nor:
				T, fast = 0b0001, true
			}
		} else if k == 1 {
			switch g.Type {
			case netlist.Buf:
				T, fast = 0b10, true
			case netlist.Not:
				T, fast = 0b01, true
			}
		}
	}
	if !fast {
		// Gate-local truth table over the distinct variable fanins.
		for cap(a.evalIn) < len(g.Fanin) {
			a.evalIn = append(a.evalIn[:cap(a.evalIn)], false)
		}
		a.evalIn = a.evalIn[:len(g.Fanin)]
		for row := 0; row < 1<<uint(k); row++ {
			for s := range g.Fanin {
				if a.slotIdx[s] < 0 {
					a.evalIn[s] = a.slotConst[s]
				} else {
					a.evalIn[s] = row>>uint(a.slotIdx[s])&1 == 1
				}
			}
			if g.Eval(a.evalIn) {
				T |= 1 << uint(row)
			}
		}

		// Drop variables the restricted function does not actually read.
		for i := k - 1; i >= 0; i-- {
			if !essential(T, k, i) {
				T = dropVar(T, k, i)
				copy(a.uid[i:], a.uid[i+1:])
				k--
				a.uid = a.uid[:k]
			}
		}
		if k == 0 {
			v := int8(0)
			if T&1 == 1 {
				v = 1
			}
			// Constant with no essential variables left: syntactic when a
			// constant fanin forced it, algebraic when distinct live signals
			// cancelled (XOR(x,x), MUX with equal branches, ...).
			return fact{konst: v, syn: hadConstFanin, unate: true, exact: true}
		}
	}

	if f, ok := a.exactCompose(T, k); ok {
		return f
	}
	return a.abstract(T, k)
}

// exactCompose tries to settle the gate in the truth-table domain: all
// remaining fanins must be exact and their combined variable set small.
func (a *analyzer) exactCompose(T uint64, k int) (fact, bool) {
	ttMax := a.opts.ttMaxVars()
	a.vbuf = a.vbuf[:0]
	for _, u := range a.uid {
		uf := &a.facts[u]
		if uf.ttn < 0 {
			return fact{}, false
		}
		for q := 0; q < int(uf.ttn); q++ {
			v := uf.ttv[q]
			pos := 0
			for pos < len(a.vbuf) && a.vbuf[pos] < v {
				pos++
			}
			if pos < len(a.vbuf) && a.vbuf[pos] == v {
				continue
			}
			if len(a.vbuf) >= ttMax {
				return fact{}, false
			}
			a.vbuf = append(a.vbuf, 0)
			copy(a.vbuf[pos+1:], a.vbuf[pos:])
			a.vbuf[pos] = v
		}
	}
	nv := len(a.vbuf)

	// Per-fanin projection: proj[j][q] is the position in vbuf of fanin
	// j's q-th truth-table variable.
	if cap(a.proj) < k {
		a.proj = make([][6]int8, k)
	}
	a.proj = a.proj[:k]
	for j, u := range a.uid {
		uf := &a.facts[u]
		pos := 0
		for q := 0; q < int(uf.ttn); q++ {
			v := uf.ttv[q]
			for a.vbuf[pos] != v {
				pos++
			}
			a.proj[j][q] = int8(pos)
		}
	}

	// Word-parallel composition: lift every fanin's table into the joint
	// 2^nv-row space by duplicating blocks at each joint variable the fanin
	// does not read, then OR the minterms of the gate-local table T over the
	// lifted fanin words. Cost is O(k * nv) word operations instead of a
	// bit-at-a-time walk over all 2^nv rows.
	var ex [6]uint64
	for j, u := range a.uid {
		uf := &a.facts[u]
		e := uf.tt
		vars := int(uf.ttn)
		q := 0
		for p := 0; p < nv; p++ {
			if q < int(uf.ttn) && int(a.proj[j][q]) == p {
				q++
				continue
			}
			e = dupAt(e, 1<<uint(vars), p)
			vars++
		}
		ex[j] = e
	}
	full := ^uint64(0)
	if nv < 6 {
		full = 1<<uint(1<<uint(nv)) - 1
	}
	var out uint64
	for frow := 0; frow < 1<<uint(k); frow++ {
		if T>>uint(frow)&1 == 0 {
			continue
		}
		term := full
		for j := 0; j < k; j++ {
			if frow>>uint(j)&1 == 1 {
				term &= ex[j]
			} else {
				term &^= ex[j]
			}
		}
		out |= term
	}

	// Composition can cancel variables (reconvergence); compact them away.
	for i := nv - 1; i >= 0; i-- {
		if !essential(out, nv, i) {
			out = dropVar(out, nv, i)
			copy(a.vbuf[i:], a.vbuf[i+1:])
			nv--
			a.vbuf = a.vbuf[:nv]
		}
	}
	if nv == 0 {
		v := int8(0)
		if out&1 == 1 {
			v = 1
		}
		return fact{konst: v, unate: true, exact: true}, true
	}

	f := fact{konst: -1, ttn: int8(nv), tt: out, exact: true}
	copy(f.ttv[:], a.vbuf)

	// Exact degrees from the ANF spectrum: bit position m of spec encodes a
	// monomial's variable set, so per-class degrees are popcounts against
	// per-class variable masks.
	spec := mobius(out, nv)
	var mskA, mskB uint64
	for j := 0; j < nv; j++ {
		switch a.ports.Class[a.inputPos[a.vbuf[j]]] {
		case ClassA:
			mskA |= 1 << uint(j)
		case ClassB:
			mskB |= 1 << uint(j)
		}
	}
	for s := spec &^ 1; s != 0; s &= s - 1 {
		m := uint64(bits.TrailingZeros64(s))
		da := int32(bits.OnesCount64(m & mskA))
		db := int32(bits.OnesCount64(m & mskB))
		dt := int32(bits.OnesCount64(m))
		f.degA, f.degB = maxDeg(f.degA, da), maxDeg(f.degB, db)
		f.degK, f.degTot = maxDeg(f.degK, dt-da-db), maxDeg(f.degTot, dt)
	}

	// Exact unateness; support stays implicit in ttv (supp = -1).
	f.supp = -1
	f.unate = true
	for j := 0; j < nv; j++ {
		if !unateIn(out, nv, j) {
			f.unate = false
		}
	}
	return f, true
}

// abstract settles the gate in the abstract domain: monomial-wise degree
// bounds from the gate-local ANF, support union, compositional unateness.
func (a *analyzer) abstract(T uint64, k int) fact {
	f := fact{konst: -1, ttn: -1}
	spec := mobius(T, k)
	for m := 1; m < 1<<uint(k); m++ {
		if spec>>uint(m)&1 == 0 {
			continue
		}
		var da, db, dk, dt int32
		for j := 0; j < k; j++ {
			if m>>uint(j)&1 == 0 {
				continue
			}
			uf := &a.facts[a.uid[j]]
			da, db = satDeg(da+uf.degA), satDeg(db+uf.degB)
			dk, dt = satDeg(dk+uf.degK), satDeg(dt+uf.degTot)
		}
		f.degA, f.degB = maxDeg(f.degA, da), maxDeg(f.degB, db)
		f.degK, f.degTot = maxDeg(f.degK, dk), maxDeg(f.degTot, dt)
	}

	for i := range a.suppBuf {
		a.suppBuf[i] = 0
	}
	sum := 0
	allUnate := true
	for _, u := range a.uid {
		uf := &a.facts[u]
		sum += a.orSupp(uf)
		if !uf.unate {
			allUnate = false
		}
	}
	f.supp = a.pool.intern(a.suppBuf)
	// Compositional unateness is sound only when fanin cones do not share
	// inputs (no path can flip polarity against another); with disjoint
	// supports, gate-local unateness in every variable lifts to the wire.
	if allUnate && sum == a.pool.size(f.supp) {
		f.unate = true
		for j := 0; j < k; j++ {
			if !unateIn(T, k, j) {
				f.unate = false
				break
			}
		}
	}
	return f
}

// coarse handles gates with more than six distinct live fanins (wide LUTs):
// the worst-case monomial multiplies every fanin, so degree bounds add.
func (a *analyzer) coarse() fact {
	f := fact{konst: -1, ttn: -1}
	for i := range a.suppBuf {
		a.suppBuf[i] = 0
	}
	for _, u := range a.uid {
		uf := &a.facts[u]
		f.degA, f.degB = satDeg(f.degA+uf.degA), satDeg(f.degB+uf.degB)
		f.degK, f.degTot = satDeg(f.degK+uf.degK), satDeg(f.degTot+uf.degTot)
		a.orSupp(uf)
	}
	f.supp = a.pool.intern(a.suppBuf)
	return f
}

// orSupp ORs fanin uf's support into suppBuf and returns its cardinality;
// exact facts (supp < 0) contribute their ttv variables directly without
// touching the pool.
func (a *analyzer) orSupp(uf *fact) int {
	if uf.supp < 0 {
		for q := 0; q < int(uf.ttn); q++ {
			pos := a.inputPos[uf.ttv[q]]
			a.suppBuf[pos/64] |= 1 << uint(pos%64)
		}
		return int(uf.ttn)
	}
	a.pool.unionInto(a.suppBuf, uf.supp)
	return a.pool.size(uf.supp)
}

// Const reports whether gate id is provably constant, and its value.
func (r *Result) Const(id int) (value bool, ok bool) {
	f := &r.facts[id]
	return f.konst == 1, f.konst >= 0
}

// AlgebraicConst reports whether gate id is provably constant for algebraic
// reasons — cancellation across distinct signals — rather than by constant
// propagation a syntactic linter already sees.
func (r *Result) AlgebraicConst(id int) bool {
	f := &r.facts[id]
	return f.konst >= 0 && !f.syn
}

// Degrees returns gate id's ANF degree upper bounds (exact for wires in the
// truth-table domain): degree in operand a, in operand b, in key inputs,
// and total.
func (r *Result) Degrees(id int) (degA, degB, degKey, degTot int) {
	f := &r.facts[id]
	return int(f.degA), int(f.degB), int(f.degK), int(f.degTot)
}

// Exact reports whether gate id was settled in the exact truth-table domain.
func (r *Result) Exact(id int) bool { return r.facts[id].exact }

// Unate reports whether gate id is monotone/anti-monotone in every support
// input (exact in the truth-table domain, conservative elsewhere).
func (r *Result) Unate(id int) bool { return r.facts[id].unate }

// SupportSize counts the primary inputs that can influence gate id.
func (r *Result) SupportSize(id int) int {
	f := &r.facts[id]
	if f.supp < 0 {
		return int(f.ttn)
	}
	return r.pool.size(f.supp)
}

// suppPositions returns gate id's support as ascending input positions;
// exact facts read it off ttv, abstract facts off the interned set.
func (r *Result) suppPositions(id int) []int {
	f := &r.facts[id]
	if f.supp < 0 {
		out := make([]int, 0, int(f.ttn))
		for q := 0; q < int(f.ttn); q++ {
			out = append(out, int(r.inputPos[f.ttv[q]]))
		}
		sort.Ints(out)
		return out
	}
	return r.pool.members(f.supp, nil)
}

// SupportInputs returns the gate IDs of primary inputs in gate id's support.
func (r *Result) SupportInputs(id int) []int {
	pos := r.suppPositions(id)
	out := make([]int, len(pos))
	for i, p := range pos {
		out[i] = r.inputs[p]
	}
	return out
}

// KeySupport returns the gate IDs of key-classed inputs in gate id's
// support — the inputs whose value gates this wire.
func (r *Result) KeySupport(id int) []int {
	if !r.Ports.Partitioned || len(r.Ports.KeyInputs) == 0 {
		return nil
	}
	var out []int
	for _, p := range r.suppPositions(id) {
		if r.Ports.Class[p] == ClassKey {
			out = append(out, r.inputs[p])
		}
	}
	return out
}

// KeyOnly reports whether gate id's support is nonempty and lies wholly in
// the key class: its value is fixed once the key is chosen — an opaque
// constant under any particular key.
func (r *Result) KeyOnly(id int) bool {
	if !r.Ports.Partitioned || len(r.Ports.KeyInputs) == 0 {
		return false
	}
	f := &r.facts[id]
	if f.konst >= 0 {
		return false
	}
	if f.supp < 0 {
		if f.ttn == 0 {
			return false
		}
		for q := 0; q < int(f.ttn); q++ {
			if r.Ports.Class[r.inputPos[f.ttv[q]]] != ClassKey {
				return false
			}
		}
		return true
	}
	return f.supp != emptySet && r.pool.subsetOfClass(f.supp, ClassKey)
}

// GatedKeyInputs returns the union, over all outputs, of key inputs in the
// output's support — every key input that actually gates an output.
func (r *Result) GatedKeyInputs() []int {
	seen := map[int]bool{}
	var out []int
	for _, of := range r.Outputs {
		for _, id := range of.KeyInputs {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Ints(out)
	return out
}

// LinearPerOperand reports whether every output is bilinear: ANF degree at
// most 1 in each operand vector and degree 0 in key inputs. Constant
// outputs count as (degenerately) linear.
func (r *Result) LinearPerOperand() bool {
	if !r.Ports.Partitioned {
		return false
	}
	for _, of := range r.Outputs {
		if of.Const >= 0 {
			continue
		}
		if of.DegA > 1 || of.DegB > 1 || of.DegKey > 0 {
			return false
		}
	}
	return true
}
