package sem

import "math/bits"

// Support sets are bitsets over primary-input positions, hash-consed into a
// slab so every distinct set is stored once and a per-wire fact carries only
// a 4-byte ID. XOR trees reuse a few hundred distinct sets across tens of
// thousands of gates, so interning is what keeps the sweep's memory linear
// in the number of *distinct* cones rather than gates x inputs.
//
// When a hostile or degenerate design manufactures more distinct sets than
// the table cap, intern widens the set to its operand-class closure (every
// class with at least one member present is rounded up to the full class).
// Closure is a superset — soundness of "input i may influence wire w" is
// preserved — and it keeps the one distinction the lint rules need exact:
// a widened set contains a key input iff the original did.
type suppPool struct {
	nwords int
	slab   []uint64         // set i occupies slab[i*nwords : (i+1)*nwords]
	index  map[uint64]int32 // FNV-1a of content -> first candidate ID
	next   []int32          // set ID -> next candidate with equal hash, -1 ends
	cap    int              // widen beyond this many distinct sets
	widens int              // widening events (observability)

	classMask [3][]uint64 // full-class masks, indexed by Class
	scratch   []uint64
}

const emptySet int32 = 0

// newSuppPool sizes the intern structures for an expected number of distinct
// sets (sizeHint, capped by maxSets) so a large sweep does not pay for
// incremental map growth and slab reallocation.
func newSuppPool(nvars, maxSets, sizeHint int, classOf []Class) *suppPool {
	nwords := (nvars + 63) / 64
	if nwords == 0 {
		nwords = 1
	}
	if sizeHint < 64 {
		sizeHint = 64
	}
	if sizeHint > maxSets {
		sizeHint = maxSets
	}
	p := &suppPool{
		nwords:  nwords,
		slab:    make([]uint64, 0, sizeHint*nwords),
		index:   make(map[uint64]int32, sizeHint),
		next:    make([]int32, 0, sizeHint),
		cap:     maxSets,
		scratch: make([]uint64, nwords),
	}
	for c := range p.classMask {
		p.classMask[c] = make([]uint64, nwords)
	}
	for i, cl := range classOf {
		p.classMask[cl][i/64] |= 1 << uint(i%64)
	}
	// Set 0 is the empty set.
	p.intern(make([]uint64, nwords))
	return p
}

func (p *suppPool) get(id int32) []uint64 {
	return p.slab[int(id)*p.nwords : (int(id)+1)*p.nwords]
}

func (p *suppPool) count() int { return len(p.slab) / p.nwords }

func hashWords(w []uint64) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range w {
		h = (h ^ v) * 1099511628211
	}
	return h
}

func eqWords(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lookupHashed returns the ID of an interned set equal to buf (whose content
// hash is h), or -1.
func (p *suppPool) lookupHashed(h uint64, buf []uint64) int32 {
	id, ok := p.index[h]
	if !ok {
		return -1
	}
	for id >= 0 {
		if eqWords(p.get(id), buf) {
			return id
		}
		id = p.next[id]
	}
	return -1
}

// lookup returns the ID of an interned set equal to buf, or -1.
func (p *suppPool) lookup(buf []uint64) int32 {
	return p.lookupHashed(hashWords(buf), buf)
}

// intern returns the canonical ID for buf, inserting it if new. Past the
// table cap, new sets are widened to their class closure first; the closure
// family is finite (2^3 sets), so memory stays bounded no matter the input.
func (p *suppPool) intern(buf []uint64) int32 {
	h := hashWords(buf)
	if id := p.lookupHashed(h, buf); id >= 0 {
		return id
	}
	if p.count() >= p.cap {
		p.widens++
		p.widen(buf)
		h = hashWords(buf)
		if id := p.lookupHashed(h, buf); id >= 0 {
			return id
		}
	}
	id := int32(p.count())
	p.slab = append(p.slab, buf...)
	prev, ok := p.index[h]
	if !ok {
		prev = -1
	}
	p.index[h] = id
	p.next = append(p.next, prev)
	return id
}

// widen rounds buf up to its operand-class closure in place.
func (p *suppPool) widen(buf []uint64) {
	for c := range p.classMask {
		mask := p.classMask[c]
		hit := false
		for i, w := range buf {
			if w&mask[i] != 0 {
				hit = true
				break
			}
		}
		if hit {
			for i := range buf {
				buf[i] |= mask[i]
			}
		}
	}
}

// union2 interns the union of two sets, reusing the pool scratch buffer.
func (p *suppPool) union2(a, b int32) int32 {
	if a == b {
		return a
	}
	if a == emptySet {
		return b
	}
	if b == emptySet {
		return a
	}
	wa, wb := p.get(a), p.get(b)
	for i := range p.scratch {
		p.scratch[i] = wa[i] | wb[i]
	}
	return p.intern(p.scratch)
}

// unionInto ORs set id into dst (len nwords).
func (p *suppPool) unionInto(dst []uint64, id int32) {
	for i, w := range p.get(id) {
		dst[i] |= w
	}
}

// size returns the cardinality of set id.
func (p *suppPool) size(id int32) int {
	n := 0
	for _, w := range p.get(id) {
		n += bits.OnesCount64(w)
	}
	return n
}

// disjoint reports whether two sets share no member.
func (p *suppPool) disjoint(a, b int32) bool {
	wa, wb := p.get(a), p.get(b)
	for i := range wa {
		if wa[i]&wb[i] != 0 {
			return false
		}
	}
	return true
}

// subsetOfClass reports whether set id is wholly inside one class's mask.
func (p *suppPool) subsetOfClass(id int32, c Class) bool {
	mask := p.classMask[c]
	for i, w := range p.get(id) {
		if w&^mask[i] != 0 {
			return false
		}
	}
	return true
}

// intersectClass reports whether set id contains any member of class c.
func (p *suppPool) intersectClass(id int32, c Class) bool {
	mask := p.classMask[c]
	for i, w := range p.get(id) {
		if w&mask[i] != 0 {
			return true
		}
	}
	return false
}

// members appends the input positions in set id to out.
func (p *suppPool) members(id int32, out []int) []int {
	for wi, w := range p.get(id) {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}
