package sem

import (
	"fmt"
	"testing"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/polytab"
)

// TestMultiplierBilinearity is the core soundness/precision check from the
// acceptance criteria: every generated multiplier must be classified fully
// linear-in-each-operand with degree-correct output bits — degA = degB = 1,
// degKey = 0, degTot = 2 for every non-constant output.
func TestMultiplierBilinearity(t *testing.T) {
	archs := map[string]func(int) (*netlist.Netlist, error){
		"mastrovito": func(m int) (*netlist.Netlist, error) {
			p, err := polytab.Default(m)
			if err != nil {
				return nil, err
			}
			return gen.Mastrovito(m, p)
		},
		"montgomery": func(m int) (*netlist.Netlist, error) {
			p, err := polytab.Default(m)
			if err != nil {
				return nil, err
			}
			return gen.Montgomery(m, p)
		},
		"mastrovito-matrix": func(m int) (*netlist.Netlist, error) {
			p, err := polytab.Default(m)
			if err != nil {
				return nil, err
			}
			return gen.MastrovitoMatrix(m, p)
		},
		"monpro": func(m int) (*netlist.Netlist, error) {
			p, err := polytab.Default(m)
			if err != nil {
				return nil, err
			}
			return gen.MonPro(m, p)
		},
	}
	for _, m := range []int{8, 64, 163, 233} {
		for name, build := range archs {
			if m > 64 && (name == "mastrovito-matrix") {
				continue // O(m^3) gates; the smaller sizes cover it
			}
			t.Run(fmt.Sprintf("%s/m=%d", name, m), func(t *testing.T) {
				n, err := build(m)
				if err != nil {
					t.Fatal(err)
				}
				r := Analyze(n, Options{})
				if !r.Ports.Partitioned {
					t.Fatalf("ports not partitioned: %+v", r.Ports)
				}
				if r.Ports.APrefix != "a" || r.Ports.BPrefix != "b" {
					t.Fatalf("operand prefixes = %q/%q", r.Ports.APrefix, r.Ports.BPrefix)
				}
				if len(r.Ports.KeyInputs) != 0 {
					t.Fatalf("clean multiplier has %d key inputs (false positives)", len(r.Ports.KeyInputs))
				}
				if !r.LinearPerOperand() {
					t.Fatalf("not linear per operand")
				}
				for _, of := range r.Outputs {
					if of.Const >= 0 {
						continue
					}
					if of.DegA != 1 || of.DegB != 1 || of.DegKey != 0 {
						t.Fatalf("output %s: degA=%d degB=%d degKey=%d, want 1/1/0",
							of.Name, of.DegA, of.DegB, of.DegKey)
					}
					if of.DegTot != 2 {
						t.Fatalf("output %s: degTot=%d, want 2", of.Name, of.DegTot)
					}
					if len(of.KeyInputs) != 0 {
						t.Fatalf("output %s: spurious key inputs %v", of.Name, of.KeyInputs)
					}
				}
			})
		}
	}
}

// TestExactDomainIdentities checks the truth-table sub-domain proves
// algebraic facts syntactic analysis cannot see.
func TestExactDomainIdentities(t *testing.T) {
	n := netlist.New("identities")
	a, _ := n.AddInput("a0")
	b, _ := n.AddInput("b0")

	// x XOR x through two distinct AND paths: AND(a,b) XOR AND(a,b) built
	// as two separate gates, reconverging. Syntactic const folding sees
	// nothing (no constant fanins, distinct gate IDs).
	p1, _ := n.AddGate(netlist.And, a, b)
	p2, _ := n.AddGate(netlist.And, a, b)
	zero, _ := n.AddGate(netlist.Xor, p1, p2)

	// MUX with equal branches is its data input regardless of select.
	mux, _ := n.AddGate(netlist.Mux, p1, p1, b)

	// OR(x, NOT x) = 1.
	na, _ := n.AddGate(netlist.Not, a)
	one, _ := n.AddGate(netlist.Or, a, na)

	// Keep everything reachable.
	t1, _ := n.AddGate(netlist.Xor, zero, mux)
	t2, _ := n.AddGate(netlist.Xor, t1, one)
	n.MarkOutput("z0", t2)
	n.MarkOutput("z1", a)

	r := Analyze(n, Options{})
	if v, ok := r.Const(zero); !ok || v {
		t.Errorf("XOR of reconvergent equal paths: const=%v ok=%v, want 0", v, ok)
	}
	if !r.AlgebraicConst(zero) {
		t.Error("reconvergent cancellation not marked algebraic")
	}
	if v, ok := r.Const(one); !ok || !v {
		t.Errorf("OR(x, NOT x): const=%v ok=%v, want 1", v, ok)
	}
	if _, ok := r.Const(mux); ok {
		t.Error("MUX with equal branches is not constant (it is p1)")
	}
	if da, db, _, dt := r.Degrees(mux); da != 1 || db != 1 || dt != 2 {
		t.Errorf("MUX(p,p,s) degrees = %d/%d/%d, want 1/1/2 (equals p)", da, db, dt)
	}
	// z0 = 0 ^ p1 ^ 1 = NOT p1: degree (1,1).
	if da, db, _, dt := r.Degrees(t2); da != 1 || db != 1 || dt != 2 {
		t.Errorf("output degrees = %d/%d/%d, want 1/1/2", da, db, dt)
	}
	if !r.Exact(t2) {
		t.Error("two-input cone should stay in the exact domain")
	}
}

// TestKeyGateDetection plants surplus key inputs and checks support
// tracking flags exactly the gated outputs.
func TestKeyGateDetection(t *testing.T) {
	p, err := polytab.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(8, p)
	if err != nil {
		t.Fatal(err)
	}
	obf, keys, err := gen.Obfuscate(n, gen.ObfuscateOptions{Style: gen.ObfXor, Keys: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(obf, Options{})
	if !r.Ports.Partitioned {
		t.Fatal("obfuscated multiplier ports not partitioned")
	}
	if len(r.Ports.KeyInputs) != len(keys.KeyInputs) {
		t.Fatalf("classified %d key inputs, planted %d", len(r.Ports.KeyInputs), len(keys.KeyInputs))
	}
	gated := r.GatedKeyInputs()
	if len(gated) != len(keys.KeyInputs) {
		t.Fatalf("flagged %d gated keys %v, planted %v", len(gated), gated, keys.KeyInputs)
	}
	want := map[int]bool{}
	for _, id := range keys.KeyInputs {
		want[id] = true
	}
	for _, id := range gated {
		if !want[id] {
			t.Fatalf("flagged non-planted input %d (%s)", id, obf.NameOf(id))
		}
	}
}

// TestSupportWidening forces the intern table past its cap and checks the
// analysis stays sound (support only grows) and key membership survives.
func TestSupportWidening(t *testing.T) {
	p, err := polytab.Default(16)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(16, p)
	if err != nil {
		t.Fatal(err)
	}
	full := Analyze(n, Options{})
	widened := Analyze(n, Options{MaxSets: 16})
	if widened.Widened == 0 {
		t.Fatal("expected widening events with a 16-set cap")
	}
	if len(full.Outputs) != len(widened.Outputs) {
		t.Fatal("output count mismatch")
	}
	for i := range full.Outputs {
		if widened.Outputs[i].SupportSize < full.Outputs[i].SupportSize {
			t.Fatalf("output %d: widened support %d < precise support %d (unsound)",
				i, widened.Outputs[i].SupportSize, full.Outputs[i].SupportSize)
		}
		if widened.Outputs[i].DegA != full.Outputs[i].DegA || widened.Outputs[i].DegB != full.Outputs[i].DegB {
			t.Fatalf("output %d: widening changed degrees", i)
		}
		if len(widened.Outputs[i].KeyInputs) != 0 {
			t.Fatalf("output %d: widening fabricated key inputs", i)
		}
	}
}

// TestUnpartitionedPorts checks scrambled/anonymous designs disable key
// detection rather than guessing.
func TestUnpartitionedPorts(t *testing.T) {
	n := netlist.New("anon")
	var ins []int
	for i := 0; i < 6; i++ {
		id, _ := n.AddInput(fmt.Sprintf("sig%d", i))
		ins = append(ins, id)
	}
	cur := ins[0]
	for _, id := range ins[1:] {
		cur, _ = n.AddGate(netlist.And, cur, id)
	}
	x, _ := n.AddGate(netlist.Xor, cur, ins[0])
	n.MarkOutput("out0", cur)
	n.MarkOutput("out1", x)
	r := Analyze(n, Options{})
	if r.Ports.Partitioned {
		t.Fatalf("single-vector design should not partition: %+v", r.Ports)
	}
	if got := r.GatedKeyInputs(); len(got) != 0 {
		t.Fatalf("unpartitioned design flagged keys %v", got)
	}
	// All inputs default to ClassA; total degree still tracked.
	if _, _, _, dt := r.Degrees(cur); dt != 6 {
		t.Fatalf("AND chain degTot = %d, want 6", dt)
	}
}

// TestAnalyzeCached checks the content-hash cache shares results.
func TestAnalyzeCached(t *testing.T) {
	p, err := polytab.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Montgomery(8, p)
	if err != nil {
		t.Fatal(err)
	}
	r1 := AnalyzeCached(n, "", Options{})
	r2 := AnalyzeCached(n, "", Options{})
	if r1 != r2 {
		t.Error("identical netlists did not share a cached result")
	}
	r3 := AnalyzeCached(n, "explicit-hash", Options{})
	r4 := AnalyzeCached(n, "explicit-hash", Options{})
	if r3 != r4 {
		t.Error("explicit-hash results not shared")
	}
}

// TestDegenerateInputs exercises edge shapes the fuzzer will feed.
func TestDegenerateInputs(t *testing.T) {
	// No inputs at all.
	n := netlist.New("consts")
	c0, _ := n.AddGate(netlist.Const0)
	c1, _ := n.AddGate(netlist.Const1)
	x, _ := n.AddGate(netlist.Xor, c0, c1)
	n.MarkOutput("z0", x)
	r := Analyze(n, Options{})
	if v, ok := r.Const(x); !ok || !v {
		t.Errorf("XOR(0,1): const=%v ok=%v", v, ok)
	}
	if r.AlgebraicConst(x) {
		t.Error("constant propagation wrongly marked algebraic")
	}

	// Output directly on an input.
	n2 := netlist.New("wire")
	a, _ := n2.AddInput("a0")
	n2.MarkOutput("z0", a)
	r2 := Analyze(n2, Options{})
	if r2.Outputs[0].DegTot != 1 || r2.Outputs[0].SupportSize != 1 {
		t.Errorf("wire output fact: %+v", r2.Outputs[0])
	}

	// LUT wider than the exact domain (7 inputs) takes the coarse path.
	n3 := netlist.New("widelut")
	var ins []int
	for i := 0; i < 7; i++ {
		id, _ := n3.AddInput(fmt.Sprintf("a%d", i))
		ins = append(ins, id)
	}
	table := make([]bool, 1<<7)
	for i := range table {
		table[i] = i%3 == 0
	}
	lut, _ := n3.AddLut(table, ins...)
	n3.MarkOutput("z0", lut)
	r3 := Analyze(n3, Options{})
	if r3.Outputs[0].SupportSize != 7 {
		t.Errorf("wide LUT support = %d, want 7", r3.Outputs[0].SupportSize)
	}
	if _, _, _, dt := r3.Degrees(lut); dt != 7 {
		t.Errorf("wide LUT coarse degTot = %d, want 7", dt)
	}
}

// TestTruthTableHelpers pins the bit-level helpers.
func TestTruthTableHelpers(t *testing.T) {
	// XOR of two variables: tt = 0110.
	xor2 := uint64(0b0110)
	if got := mobius(xor2, 2); got != 0b0110 {
		t.Errorf("mobius(xor) = %04b, want 0110 (x ^ y)", got)
	}
	// AND: tt = 1000 -> ANF has only the xy monomial (row 3).
	and2 := uint64(0b1000)
	if got := mobius(and2, 2); got != 0b1000 {
		t.Errorf("mobius(and) = %04b, want 1000 (xy)", got)
	}
	// OR: tt = 1110 -> x ^ y ^ xy (rows 1, 2, 3).
	or2 := uint64(0b1110)
	if got := mobius(or2, 2); got != 0b1110 {
		t.Errorf("mobius(or) = %04b, want 1110 (x ^ y ^ xy)", got)
	}
	if !essential(xor2, 2, 0) || !essential(xor2, 2, 1) {
		t.Error("xor essential vars")
	}
	// f = x0 (ignores x1): tt = 1010.
	proj := uint64(0b1010)
	if essential(proj, 2, 1) {
		t.Error("projection should not depend on x1")
	}
	if got := dropVar(proj, 2, 1); got != 0b10 {
		t.Errorf("dropVar = %02b, want 10", got)
	}
	if unateIn(xor2, 2, 0) {
		t.Error("xor is not unate")
	}
	if !unateIn(and2, 2, 0) || !unateIn(or2, 2, 1) {
		t.Error("and/or are unate")
	}
}
