package netlint

import (
	"fmt"
	"time"

	"github.com/galoisfield/gfre/internal/netlist"
)

// ConeCost is the predicted backward-rewriting cost of one output cone.
type ConeCost struct {
	// Output is the output bit position; Name its signal name.
	Output int    `json:"output"`
	Name   string `json:"name"`
	// Gates is the fanin-cone size (gates + inputs), Depth its logic depth.
	Gates int `json:"gates"`
	Depth int `json:"depth"`
	// PredictedPeakTerms is an upper bound on the ANF term count reached
	// while rewriting this cone: the smaller of the syntactic
	// no-cancellation term bound and the semantic degree bound (see
	// degreeBound). Saturates at costCap.
	PredictedPeakTerms int `json:"predicted_peak_terms"`
	// Saturated marks cones whose estimate hit costCap: term growth is
	// effectively unbounded (obfuscated or non-multiplier logic).
	Saturated bool `json:"saturated,omitempty"`
	// DegA / DegB / DegTot are the semantic sweep's ANF degree bounds for
	// this output (per operand vector and total).
	DegA   int `json:"deg_a"`
	DegB   int `json:"deg_b"`
	DegTot int `json:"deg_tot"`
	// Method names the bound that won: "degree" (semantic) or "term-bound"
	// (syntactic).
	Method string `json:"method"`
}

// costCap saturates the term-growth estimate. Anything above this predicts
// memory exhaustion during rewriting regardless of budget, so finer
// resolution is pointless.
const costCap = 1 << 24

// budget derivation constants. Empirically (BENCH_*.json, m=64) the true
// rewriting peak for clean multipliers sits well below the no-cancellation
// bound (peak 271 terms vs bound >= m^2/2), and the bound itself is cheap
// headroom: a 16x multiplier over the predicted peak admits every legitimate
// design we generate while still stopping doubling-chain blowups within a
// few extra substitution steps. TestConeCostCalibration pins the
// predicted >= actual relationship against real rewriting runs.
const (
	budgetSlack   = 16
	budgetFloor   = 4096
	budgetCeil    = 1 << 26
	deadlineFloor = 60 * time.Second
	// deadlinePerGate scales the per-cone deadline with cone size.
	// Recalibrated for the packed ANF core: the worst m=64 Montgomery cone
	// now rewrites in 2.9ms over ~8500 cone gates (~0.34us/gate, was ~18us
	// under the string-keyed core whose straggler bits ran 151ms), so 2ms
	// per gate still leaves >5000x headroom for slow machines and
	// pathological-but-legitimate designs while halving the auto-deadline
	// the old 5ms constant suggested on large multipliers.
	deadlinePerGate = 2 * time.Millisecond
)

// satAdd / satMul keep the estimate inside [0, costCap].
func satAdd(a, b int) int {
	if s := a + b; s < costCap {
		return s
	}
	return costCap
}

func satMul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	if a > costCap/b {
		return costCap
	}
	return a * b
}

// mixSlack pads the semantic degree bound for intermediate rewriting states:
// mid-substitution, a cone's working polynomial mixes already-substituted
// primary-input monomials with still-symbolic internal signals, which can
// transiently hold more terms than the final degree-d form over inputs
// alone. Empirically (TestConeCostCalibration, m=16 Mastrovito/Montgomery)
// actual peaks sit under half the unpadded bound; 4x is cheap insurance.
const mixSlack = 4

// degreeBound bounds the ANF term count of a function with the given support
// size and total degree: sum of C(supp, d) for d = 0..deg, times mixSlack,
// saturating at costCap. A degree-2 bilinear cone over 2m inputs comes out
// O(m^2) — the semantic bound the old doubling-chain estimate could not see
// past on reconvergent XOR trees.
func degreeBound(supp, deg int) int {
	if deg >= supp {
		// Degenerate or saturated degree: the full 2^supp spectrum.
		if supp >= 24 {
			return costCap
		}
		return satMul(1<<uint(supp), mixSlack)
	}
	total, c := 0, 1 // c walks C(supp, d)
	for d := 0; d <= deg; d++ {
		total = satAdd(total, c)
		if total >= costCap {
			return costCap
		}
		if c > costCap/(supp-d) {
			return costCap
		}
		c = c * (supp - d) / (d + 1)
	}
	return satMul(total, mixSlack)
}

// termBound computes, for every gate, an upper bound on the number of ANF
// terms its function expands to over the primary inputs, assuming no
// cancellation. XOR adds term counts, AND multiplies them, OR/complex cells
// combine both (x+y = x ^ y ^ xy). The bound is monotone in the fanin
// bounds, so one forward topological sweep settles the DAG.
func termBound(n *netlist.Netlist) []int {
	t := make([]int, n.NumGates())
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		f := func(i int) int { return t[g.Fanin[i]] }
		switch g.Type {
		case netlist.Input, netlist.Const0, netlist.Const1:
			t[id] = 1
		case netlist.Buf:
			t[id] = f(0)
		case netlist.Not:
			t[id] = satAdd(f(0), 1)
		case netlist.And:
			t[id] = satMul(f(0), f(1))
		case netlist.Xor:
			t[id] = satAdd(f(0), f(1))
		case netlist.Xnor:
			t[id] = satAdd(satAdd(f(0), f(1)), 1)
		case netlist.Or:
			t[id] = satAdd(satAdd(f(0), f(1)), satMul(f(0), f(1)))
		case netlist.Nand:
			t[id] = satAdd(satMul(f(0), f(1)), 1)
		case netlist.Nor:
			t[id] = satAdd(satAdd(satAdd(f(0), f(1)), satMul(f(0), f(1))), 1)
		case netlist.Aoi21: // !(f0·f1 + f2)
			or := satAdd(satMul(f(0), f(1)), satAdd(f(2), satMul(satMul(f(0), f(1)), f(2))))
			t[id] = satAdd(or, 1)
		case netlist.Oai21: // !((f0+f1)·f2)
			or := satAdd(satAdd(f(0), f(1)), satMul(f(0), f(1)))
			t[id] = satAdd(satMul(or, f(2)), 1)
		case netlist.Aoi22: // !(f0·f1 + f2·f3)
			p, q := satMul(f(0), f(1)), satMul(f(2), f(3))
			t[id] = satAdd(satAdd(satAdd(p, q), satMul(p, q)), 1)
		case netlist.Oai22: // !((f0+f1)·(f2+f3))
			p := satAdd(satAdd(f(0), f(1)), satMul(f(0), f(1)))
			q := satAdd(satAdd(f(2), f(3)), satMul(f(2), f(3)))
			t[id] = satAdd(satMul(p, q), 1)
		case netlist.Mux: // f2 ? f1 : f0  =  f2·f1 ^ f2·f0 ^ f0
			t[id] = satAdd(satAdd(satMul(f(2), f(1)), satMul(f(2), f(0))), f(0))
		case netlist.Lut:
			// Worst case: every minterm survives — product of (fanin bound
			// + 1) monomial choices, capped.
			b := 1
			for i := range g.Fanin {
				b = satMul(b, satAdd(f(i), 1))
			}
			t[id] = b
		default:
			t[id] = costCap
		}
		if t[id] < 1 {
			t[id] = 1
		}
	}
	return t
}

// coneSizes counts each output's transitive fanin (root included). It is
// netlist.Cone minus the parts the predictor never uses: the per-root map
// and the ID sort. One stamp array shared across roots keeps the sweep
// allocation-free after the first cone, which matters because this loop
// dominates lint time on large multipliers (m^2-gate cones, m roots).
func coneSizes(n *netlist.Netlist, outs []int) []int {
	sizes := make([]int, len(outs))
	stamp := make([]int, n.NumGates())
	var stack []int
	for i, root := range outs {
		mark := i + 1
		count := 0
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if stamp[id] == mark {
				continue
			}
			stamp[id] = mark
			count++
			stack = append(stack, n.Gate(id).Fanin...)
		}
		sizes[i] = count
	}
	return sizes
}

// predictCones computes the per-output cost table plus suggested governor
// defaults, and is also responsible for the blowup-risk finding (emitted by
// checkConeCost via the shared context). The result is memoized on the
// context: both the cone-cost rule and the report assembly need it.
func predictCones(c *Context) (cones []ConeCost, budget int, deadlineMS int64) {
	if c.conesOnce {
		return c.cones, c.coneBudget, c.coneDeadlines
	}
	c.conesOnce = true
	defer func() { c.cones, c.coneBudget, c.coneDeadlines = cones, budget, deadlineMS }()

	outs := c.N.Outputs()
	if len(outs) == 0 {
		return nil, 0, 0
	}
	bounds := termBound(c.N)
	sizes := coneSizes(c.N, outs)
	names := c.N.OutputNames()
	sems := c.Sem()
	maxPeak, maxGates := 0, 0
	for i, id := range outs {
		depth := 0
		if id < len(c.Levels) {
			depth = c.Levels[id]
		}
		of := sems.Outputs[i]
		peak, method := bounds[id], "term-bound"
		if db := degreeBound(of.SupportSize, of.DegTot); db < peak {
			peak, method = db, "degree"
		}
		cc := ConeCost{
			Output:             i,
			Gates:              sizes[i],
			Depth:              depth,
			PredictedPeakTerms: peak,
			Saturated:          peak >= costCap,
			DegA:               of.DegA,
			DegB:               of.DegB,
			DegTot:             of.DegTot,
			Method:             method,
		}
		if i < len(names) {
			cc.Name = names[i]
		}
		cones = append(cones, cc)
		if cc.PredictedPeakTerms > maxPeak {
			maxPeak = cc.PredictedPeakTerms
		}
		if cc.Gates > maxGates {
			maxGates = cc.Gates
		}
	}
	// Budget: slack over the worst predicted peak, clamped. A saturated
	// estimate keeps the cap — the point is to abort, not to admit.
	budget = maxPeak
	if budget < costCap {
		budget = satMul(budget, budgetSlack)
	}
	if budget < budgetFloor {
		budget = budgetFloor
	}
	if budget > budgetCeil {
		budget = budgetCeil
	}
	deadline := deadlineFloor + time.Duration(maxGates)*deadlinePerGate
	return cones, budget, int64(deadline / time.Millisecond)
}

// checkConeCost renders the cost table into findings: one info summary and,
// for saturated cones, a blowup-risk warning naming the offenders.
func checkConeCost(c *Context) []Finding {
	cones, budget, deadlineMS := predictCones(c)
	if len(cones) == 0 {
		return nil
	}
	maxPeak, maxGates, maxDepth := 0, 0, 0
	var saturated []int
	for _, cc := range cones {
		if cc.PredictedPeakTerms > maxPeak {
			maxPeak = cc.PredictedPeakTerms
		}
		if cc.Gates > maxGates {
			maxGates = cc.Gates
		}
		if cc.Depth > maxDepth {
			maxDepth = cc.Depth
		}
		if cc.Saturated {
			saturated = append(saturated, c.N.Outputs()[cc.Output])
		}
	}
	fs := []Finding{{
		Rule: "cone-cost", Severity: c.severityOf("cone-cost"),
		Message: fmt.Sprintf("%d output cones: max %d gates, depth %d, predicted peak %d terms; suggested -budget %d, -cone-timeout %s",
			len(cones), maxGates, maxDepth, maxPeak, budget, time.Duration(deadlineMS)*time.Millisecond),
	}}
	if len(saturated) > 0 {
		fs = append(fs, Finding{
			Rule: "blowup-risk", Severity: c.severityOf("blowup-risk"), Gates: capGates(saturated),
			Message: fmt.Sprintf("%d cone(s) exceed the term-growth bound (%d): rewriting will likely exhaust memory without a budget — outputs %s",
				len(saturated), costCap, nameList(c.N, saturated)),
		})
	}
	return fs
}

// Governor translates a report's suggestions into rewrite-governor values,
// filling only knobs the caller left at zero. It returns the suggested
// budget and deadline to apply (zero where the caller already chose).
func (r *Report) Governor(haveBudget int, haveDeadline time.Duration) (budget int, deadline time.Duration) {
	if haveBudget == 0 && r.SuggestedBudgetTerms > 0 {
		budget = r.SuggestedBudgetTerms
	}
	if haveDeadline == 0 && r.SuggestedConeTimeoutMS > 0 {
		deadline = time.Duration(r.SuggestedConeTimeoutMS) * time.Millisecond
	}
	return budget, deadline
}
