package netlint

import (
	"fmt"

	"github.com/galoisfield/gfre/internal/netlist"
)

// Fingerprint is the XOR/AND composition classification of a netlist.
//
// GF(2^m) multiplier architectures have distinctive gate mixes. A Mastrovito
// (school-book + reduction matrix) multiplier computes all m^2 partial
// products a_i·b_j directly from primary inputs and sums them through XOR
// trees: ~m^2 ANDs, nearly all fed by two primary inputs, almost no other
// cell types. A Montgomery multiplier interleaves a second product stage, so
// a large share of its AND gates read *internal* signals. Synthesized or
// technology-mapped designs pull in complemented and complex cells (NAND,
// AOI, MUX, ...) that neither hand-structured form contains.
type Fingerprint struct {
	// Class is one of mastrovito, montgomery, synthesized, unknown.
	Class string `json:"class"`
	// Confidence in [0,1], heuristic.
	Confidence float64 `json:"confidence"`
	// Evidence summarizes the signals behind the call.
	Evidence string `json:"evidence"`
	// Gate-mix statistics backing the classification.
	Xors          int `json:"xors"`
	Ands          int `json:"ands"`
	PartialAnds   int `json:"partial_ands"`  // ANDs with both fanins primary inputs
	InternalAnds  int `json:"internal_ands"` // ANDs with at least one internal fanin
	ComplexCells  int `json:"complex_cells"` // NAND/NOR/XNOR/AOI/OAI/MUX/LUT/NOT
	Combinational int `json:"combinational"` // total non-input, non-const gates
}

// fingerprint computes the classification from the gate mix.
func (c *Context) fingerprint() Fingerprint {
	fp := Fingerprint{Class: "unknown"}
	isInput := func(id int) bool { return c.N.Gate(id).Type == netlist.Input }
	for id := 0; id < c.N.NumGates(); id++ {
		g := c.N.Gate(id)
		switch g.Type {
		case netlist.Input, netlist.Const0, netlist.Const1:
			continue
		case netlist.Xor:
			fp.Xors++
		case netlist.And:
			fp.Ands++
			if len(g.Fanin) == 2 && isInput(g.Fanin[0]) && isInput(g.Fanin[1]) {
				fp.PartialAnds++
			} else {
				fp.InternalAnds++
			}
		case netlist.Buf:
			// Neutral: buffers say nothing about architecture.
		default:
			fp.ComplexCells++
		}
		fp.Combinational++
	}
	if fp.Combinational == 0 {
		fp.Evidence = "no combinational gates"
		return fp
	}
	m := len(c.N.Outputs())
	complexFrac := float64(fp.ComplexCells) / float64(fp.Combinational)
	// Depth above serialDepth indicates bit-serial chains rather than
	// balanced trees; the logarithmic floor keeps small fields (whose tree
	// depth rivals m) from tripping it.
	serialDepth := m
	if lg := 3*bitLen(m) + 4; lg > serialDepth {
		serialDepth = lg
	}
	switch {
	case complexFrac > 0.05:
		// Hand-structured multipliers are pure AND/XOR; a complemented or
		// complex-cell population means a synthesis tool has been here.
		fp.Class = "synthesized"
		fp.Confidence = 0.5 + 0.5*minF(complexFrac*2, 1)
		fp.Evidence = fmt.Sprintf("%.0f%% complex/complemented cells (%d of %d)", complexFrac*100, fp.ComplexCells, fp.Combinational)
	case m >= 2 && fp.PartialAnds >= (3*m*m)/4 && fp.InternalAnds <= m*m/8 && c.Depth < serialDepth:
		// Near-complete partial-product plane reduced through shallow
		// (logarithmic-depth) XOR trees: school-book products + reduction
		// matrix = Mastrovito. Generated designs sit at depth ~2·log2(m)+2.
		fp.Class = "mastrovito"
		fp.Confidence = minF(float64(fp.PartialAnds)/float64(m*m), 1)
		fp.Evidence = fmt.Sprintf("%d/%d partial products a_i*b_j, depth %d (balanced reduction trees)", fp.PartialAnds, m*m, c.Depth)
	case m >= 2 && fp.Ands >= m && (c.Depth >= serialDepth || fp.InternalAnds > m):
		// Either the long serial XOR chains of flattened bit-serial MonPro
		// blocks (depth grows ~2m, vs ~log m for Mastrovito) or a second
		// multiplying stage over internal signals: Montgomery.
		fp.Class = "montgomery"
		if c.Depth >= serialDepth {
			fp.Confidence = minF(float64(c.Depth)/float64(2*m), 1) * 0.9
			fp.Evidence = fmt.Sprintf("depth %d >= %d: serial XOR chains (bit-serial MonPro)", c.Depth, serialDepth)
		} else {
			fp.Confidence = minF(float64(fp.InternalAnds)/float64(fp.Ands), 1) * 0.8
			fp.Evidence = fmt.Sprintf("%d of %d ANDs read internal signals (second product stage)", fp.InternalAnds, fp.Ands)
		}
	default:
		fp.Evidence = fmt.Sprintf("%d XOR, %d AND (%d partial, %d internal), %d complex of %d gates",
			fp.Xors, fp.Ands, fp.PartialAnds, fp.InternalAnds, fp.ComplexCells, fp.Combinational)
	}
	return fp
}

func bitLen(v int) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// checkFingerprint surfaces the classification as an info finding so it
// appears in rendered reports alongside rule output.
func checkFingerprint(c *Context) []Finding {
	fp := c.fingerprint()
	return []Finding{{
		Rule: "fingerprint", Severity: c.severityOf("fingerprint"),
		Message: fmt.Sprintf("architecture %s (confidence %.2f): %s", fp.Class, fp.Confidence, fp.Evidence),
	}}
}
