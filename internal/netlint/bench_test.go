package netlint_test

import (
	"testing"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlint"
)

func BenchmarkAnalyze64(b *testing.B) {
	p, _ := gf2poly.Parse("x^64+x^4+x^3+x+1")
	n, err := gen.Mastrovito(64, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		netlint.Analyze(n, netlint.Options{RequireMultiplier: true})
	}
}
