package netlint_test

import (
	"testing"
	"time"

	"github.com/galoisfield/gfre/internal/extract"
	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlint/sem"
)

// semWallShareLimit is the cost contract the semantic sweep must honor at
// production scale: preflighting a submission may cost at most this fraction
// of one full extraction, so running it on every job is always affordable.
const semWallShareLimit = 0.05

// TestSemWallShareAtM233 guards the contract at the largest NIST field the
// differential suite exercises. The sweep is timed best-of-three so a noisy
// scheduler cannot fail the guard spuriously; extraction is timed once, as
// the yardstick. Noise can only slow the denominator and shrink the ratio,
// so the guard errs toward passing — a deliberate trade that keeps it
// non-flaky while still catching any real regression of the sweep itself.
func TestSemWallShareAtM233(t *testing.T) {
	if testing.Short() {
		t.Skip("perf guard: skipped in -short")
	}
	p, err := gf2poly.Parse("x^233+x^74+1")
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(233, p)
	if err != nil {
		t.Fatal(err)
	}

	semBest := time.Duration(1 << 62)
	var r *sem.Result
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		r = sem.Analyze(n, sem.Options{})
		if d := time.Since(t0); d < semBest {
			semBest = d
		}
	}
	// The sweep being fast is worthless if it stopped seeing the algebra:
	// pin the classification before trusting the timing.
	if !r.LinearPerOperand() {
		t.Fatal("sem no longer classifies Mastrovito m=233 as linear per operand")
	}

	t0 := time.Now()
	ext, err := extract.IrreduciblePolynomial(n, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(t0)
	if ext.P.String() != p.String() {
		t.Fatalf("extraction recovered %s, want %s", ext.P, p)
	}

	ratio := float64(semBest) / float64(wall)
	t.Logf("sem=%v extraction=%v ratio=%.2f%%", semBest, wall, 100*ratio)
	if ratio > semWallShareLimit {
		t.Errorf("semantic sweep took %.2f%% of extraction wall time at m=233, budget is %.0f%% (sem=%v, extraction=%v)",
			100*ratio, 100*semWallShareLimit, semBest, wall)
	}
}
