package netlint

import (
	"testing"
	"time"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/polytab"
	"github.com/galoisfield/gfre/internal/rewrite"
)

// TestConeCostCalibration pins the predictor against reality: for clean
// multipliers the per-cone no-cancellation bound must dominate the peak the
// rewriting engine actually reaches, the suggested budget must clear the
// run-wide peak with the documented slack, and the suggested deadline must
// dwarf the measured wall time. This is the test that keeps the
// budgetSlack / deadlinePerGate constants honest after engine changes — the
// packed ANF core cut per-gate substitution cost ~50x, which is what
// prompted the current deadlinePerGate value.
func TestConeCostCalibration(t *testing.T) {
	p, err := polytab.Default(16)
	if err != nil {
		t.Fatal(err)
	}
	run := func(t *testing.T, n *netlist.Netlist, wantDegreeWin bool) {
		rep := Analyze(n, Options{})
		if rep.HasErrors() {
			t.Fatalf("clean design lint errors: %+v", rep.Findings)
		}
		start := time.Now()
		rw, err := rewrite.Outputs(n, rewrite.Options{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)

		// Per-cone: predicted no-cancellation bound >= actual peak.
		if len(rep.Cones) != len(rw.Bits) {
			t.Fatalf("%d predicted cones, %d rewritten bits", len(rep.Cones), len(rw.Bits))
		}
		for i, cc := range rep.Cones {
			if actual := rw.Bits[i].PeakTerms; cc.PredictedPeakTerms < actual {
				t.Errorf("cone %s: predicted peak %d < actual peak %d — bound is not an upper bound",
					cc.Name, cc.PredictedPeakTerms, actual)
			}
			// A clean multiplier cone is bilinear; the semantic degree bound
			// (mixSlack * sum C(2m, d), d <= 2) caps every prediction, so
			// cost v2 can never predict worse than O(m^2) on a clean design
			// no matter how pessimistic the syntactic estimate is.
			if cc.DegA != 1 || cc.DegB != 1 || cc.DegTot != 2 {
				t.Errorf("cone %s: degrees %d/%d/%d, want 1/1/2", cc.Name, cc.DegA, cc.DegB, cc.DegTot)
			}
			if wantDegreeWin && cc.Method != "degree" {
				t.Errorf("cone %s: bound method %q, want the semantic degree bound to win", cc.Name, cc.Method)
			}
			if limit := degreeBound(2*16, 2); cc.PredictedPeakTerms > limit {
				t.Errorf("cone %s: predicted peak %d exceeds the degree bound %d", cc.Name, cc.PredictedPeakTerms, limit)
			}
		}
		// Run-wide: the suggested budget carries budgetSlack headroom over
		// the worst predicted peak, so it must clear the actual peak by at
		// least that factor on a clean design.
		peak := rw.PeakTerms()
		if rep.SuggestedBudgetTerms < peak*budgetSlack && rep.SuggestedBudgetTerms < budgetCeil {
			t.Errorf("suggested budget %d has less than %dx headroom over actual peak %d",
				rep.SuggestedBudgetTerms, budgetSlack, peak)
		}
		// The suggested deadline covers the whole run many times over; a
		// single cone brushing it would mean deadlinePerGate is miscalibrated.
		deadline := time.Duration(rep.SuggestedConeTimeoutMS) * time.Millisecond
		if deadline < deadlineFloor {
			t.Errorf("suggested deadline %v below floor %v", deadline, deadlineFloor)
		}
		if deadline < 10*elapsed {
			t.Errorf("suggested per-cone deadline %v is within 10x of the full-run wall time %v",
				deadline, elapsed)
		}
	}
	// Mastrovito's partial-product plane keeps the syntactic term bound
	// tight (often below the degree bound); Montgomery's carry chain makes
	// it explode, which is exactly where the degree bound must take over.
	t.Run("mastrovito", func(t *testing.T) {
		n, err := gen.Mastrovito(16, p)
		if err != nil {
			t.Fatal(err)
		}
		run(t, n, false)
	})
	t.Run("montgomery", func(t *testing.T) {
		n, err := gen.Montgomery(16, p)
		if err != nil {
			t.Fatal(err)
		}
		run(t, n, true)
	})
}
