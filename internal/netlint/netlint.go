// Package netlint is a rule-based static analyzer for gate-level netlists:
// the preflight stage of the extraction pipeline.
//
// The paper's algorithms assume the input is a well-formed, acyclic GF(2^m)
// multiplier; on anything else — a truncated export, a multi-driven signal,
// an adversarially obfuscated design — the failure only surfaces *during*
// backward rewriting, after real CPU has been spent (a term budget trips or
// a cone times out). netlint catches structural defects in milliseconds,
// before any rewriting starts:
//
//   - source-level rules (combinational cycles with a witness path,
//     multi-driven signals, undriven/dangling references) run on the raw
//     EQN/BLIF text, where defects the constructors reject by design are
//     still observable;
//   - DAG-level rules (dead gates, unused inputs, constant-foldable and
//     redundant gates, operand/result shape and naming conventions) run on
//     the constructed netlist;
//   - an XOR/AND composition fingerprint classifies the multiplier
//     architecture (Mastrovito vs Montgomery vs synthesized vs unknown);
//   - a cone-cost predictor estimates per-output rewriting cost (fanin-cone
//     size, depth, a term-growth bound) and derives principled defaults for
//     the rewriting governor's -budget / -cone-timeout knobs.
//
// Findings carry a severity (error / warn / info). Error findings mean the
// pipeline cannot or should not run (Report.Err wraps ErrFindings for
// errors.Is); warnings flag suspicious-but-runnable structure; infos are
// advisory. Renderers produce human text, JSON (Report marshals directly),
// and SARIF 2.1.0 for code-scanning UIs.
package netlint

import (
	"errors"
	"fmt"
	"strings"

	"github.com/galoisfield/gfre/internal/checkpoint"
	"github.com/galoisfield/gfre/internal/netlint/sem"
	"github.com/galoisfield/gfre/internal/netlist"
)

// Severity classifies a finding.
type Severity string

const (
	// SevError findings block the pipeline: the netlist is structurally
	// unusable (cycle, multi-driven, undriven) or cannot be a multiplier.
	SevError Severity = "error"
	// SevWarn findings are suspicious but runnable (dead logic, blowup risk).
	SevWarn Severity = "warn"
	// SevInfo findings are advisory (naming, fingerprint, cost prediction).
	SevInfo Severity = "info"
)

// rank orders severities for comparisons (error > warn > info).
func (s Severity) rank() int {
	switch s {
	case SevError:
		return 2
	case SevWarn:
		return 1
	}
	return 0
}

// ErrFindings is the sentinel wrapped by Report.Err when error-level
// findings exist; callers route it to "reject the input" handling (exit
// code 2 in gfre, HTTP 422 in gfred) with errors.Is.
var ErrFindings = errors.New("netlint: netlist failed preflight")

// Finding is one rule violation or observation.
type Finding struct {
	// Rule is the registry name of the rule that produced the finding.
	Rule string `json:"rule"`
	// Severity is error, warn or info.
	Severity Severity `json:"severity"`
	// Message is the human-readable diagnosis, including the witness
	// (cycle path, duplicate definition sites, dead gate names).
	Message string `json:"message"`
	// Gates lists the implicated gate IDs (DAG rules; capped).
	Gates []int `json:"gates,omitempty"`
	// Signals lists the implicated signal names (capped).
	Signals []string `json:"signals,omitempty"`
	// Line is the 1-based source line of the defect (source rules only).
	Line int `json:"line,omitempty"`
}

// Rule is one registered analysis. Source rules (cycle, multi-driven,
// undriven, parse) have a nil Check: they run inside AnalyzeSource where raw
// text is available, but are registered so Rules() describes the full set.
type Rule struct {
	// Name identifies the rule in findings and filters.
	Name string
	// Doc is a one-line description.
	Doc string
	// Default is the severity the rule's findings carry.
	Default Severity
	// Source marks rules that run on raw netlist text, before construction.
	Source bool
	// Check produces the rule's findings for a constructed netlist
	// (nil for source rules).
	Check func(*Context) []Finding
}

// Context carries the netlist plus analysis results shared across rules,
// computed once per Analyze call.
type Context struct {
	N    *netlist.Netlist
	Opts Options

	// Levels / Depth are netlist.Levels().
	Levels []int
	Depth  int
	// Reach[id] reports whether gate id lies in some output's fanin cone.
	Reach []bool
	// Fanout[id] is the number of readers of gate id (output markings count
	// as one reader each).
	Fanout []int

	// Memoized cone-cost prediction: predictCones is needed both by the
	// cone-cost rule and for the report's suggestions, and the cone sweep
	// dominates analysis time on large multipliers.
	conesOnce     bool
	cones         []ConeCost
	coneBudget    int
	coneDeadlines int64

	// Memoized semantic sweep, shared by the semantic rules and the cost
	// predictor (see Sem in semantics.go).
	semOnce bool
	sem     *sem.Result
}

// Options configures an analysis run.
type Options struct {
	// RequireMultiplier escalates the io-shape rule to error severity: the
	// netlist must look like a GF(2^m) multiplier (m >= 2 outputs, 2m
	// inputs) or the report blocks. The extraction pipeline sets this; the
	// standalone linter leaves it off by default.
	RequireMultiplier bool
	// Disabled names rules to skip.
	Disabled []string
	// ContentHash is a precomputed digest of the netlist content (source
	// bytes or canonical form). It keys the semantic sweep's cache and is
	// echoed in the report; when empty, the canonical netlist hash is
	// computed on demand.
	ContentHash string
}

func (o Options) disabled(name string) bool {
	for _, d := range o.Disabled {
		if d == name {
			return true
		}
	}
	return false
}

// maxWitness bounds the gates/signals listed per finding so a degenerate
// design cannot turn the report itself into a memory problem.
const maxWitness = 16

// registry holds every known rule, in execution order. Populated in init to
// break the initialization cycle between rule check funcs (which consult the
// registry for severities) and the registry itself.
var registry []Rule

func init() {
	registry = []Rule{
		{Name: "parse", Doc: "netlist text must parse (syntax, arity, known cells)", Default: SevError, Source: true},
		{Name: "cycle", Doc: "combinational logic must be acyclic (witness: the cycle path)", Default: SevError, Source: true},
		{Name: "multi-driven", Doc: "every signal must have exactly one driver", Default: SevError, Source: true},
		{Name: "undriven", Doc: "every referenced signal must be defined (no dangling wires)", Default: SevError, Source: true},
		{Name: "topo-order", Doc: "definitions should appear in topological order (readers require it)", Default: SevWarn, Source: true},
		{Name: "io-shape", Doc: "multiplier shape: m >= 2 outputs and exactly 2m inputs", Default: SevWarn, Check: checkIOShape},
		{Name: "io-naming", Doc: "operand/result naming convention: a<i>/b<i> inputs, z<i> outputs, contiguous bit vectors", Default: SevInfo, Check: checkIONaming},
		{Name: "dead-gate", Doc: "gates unreachable from any primary output", Default: SevWarn, Check: checkDeadGates},
		{Name: "unused-input", Doc: "primary inputs no output depends on", Default: SevWarn, Check: checkUnusedInputs},
		{Name: "const-gate", Doc: "constant and constant-foldable gates (synthesis leftovers)", Default: SevWarn, Check: checkConstGates},
		{Name: "redundant-gate", Doc: "self-cancelling, duplicate and pass-through gates", Default: SevInfo, Check: checkRedundantGates},
		{Name: "fingerprint", Doc: "XOR/AND composition fingerprint: multiplier architecture classification", Default: SevInfo, Check: checkFingerprint},
		{Name: "blowup-risk", Doc: "term-growth estimate saturated: rewriting may explode without a budget", Default: SevWarn, Check: nil}, // emitted by cone-cost
		{Name: "cone-cost", Doc: "per-output cone size, depth and predicted peak terms", Default: SevInfo, Check: checkConeCost},
		{Name: "nonlinear-cone", Doc: "output ANF degree exceeds the bilinear bound of a GF(2^m) multiplier", Default: SevWarn, Check: checkNonlinearCone},
		{Name: "key-gate", Doc: "non-operand input gates an output: logic-locking key signature", Default: SevWarn, Check: checkKeyGate},
		{Name: "opaque-constant", Doc: "key-only logic feeding the datapath: opaque constant under any fixed key", Default: SevWarn, Check: checkOpaqueConstant},
		{Name: "dead-by-algebra", Doc: "gates provably constant by reconvergent cancellation (beyond constant folding)", Default: SevWarn, Check: checkDeadByAlgebra},
	}
}

// Rules returns a copy of the rule registry, for documentation and CLIs.
func Rules() []Rule { return append([]Rule(nil), registry...) }

// Register appends a custom rule; it runs after the built-in set. Intended
// for downstream tools embedding the linter.
func Register(r Rule) { registry = append(registry, r) }

// Report is the outcome of linting one netlist.
type Report struct {
	// Design is the netlist's model name.
	Design string `json:"design"`
	// Source is the originating file path, when linted from a file (used by
	// the SARIF renderer for artifact locations).
	Source string `json:"source,omitempty"`
	// Findings holds every rule violation/observation, severity-sorted
	// (errors first), then rule name, then witness order.
	Findings []Finding `json:"findings"`
	// ContentHash is the digest keying the semantic sweep's cache: the
	// source-byte digest when linted from a file, else the canonical
	// netlist hash.
	ContentHash string `json:"content_hash,omitempty"`
	// Fingerprint is the architecture classification.
	Fingerprint Fingerprint `json:"fingerprint"`
	// Algebra is the semantic sweep's digest: operand partition, per-output
	// degree bounds, key findings.
	Algebra *AlgebraSummary `json:"algebra,omitempty"`
	// Cones holds the per-output cost predictions (empty when the netlist
	// could not be constructed).
	Cones []ConeCost `json:"cones,omitempty"`
	// SuggestedBudgetTerms is the derived default for the rewriting
	// governor's per-cone term budget (0 = no suggestion).
	SuggestedBudgetTerms int `json:"suggested_budget_terms,omitempty"`
	// SuggestedConeTimeoutMS is the derived default per-cone deadline in
	// milliseconds (0 = no suggestion).
	SuggestedConeTimeoutMS int64 `json:"suggested_cone_timeout_ms,omitempty"`
}

// Counts tallies findings by severity.
func (r *Report) Counts() map[Severity]int {
	c := map[Severity]int{}
	for _, f := range r.Findings {
		c[f.Severity]++
	}
	return c
}

// HasErrors reports whether any error-severity finding exists.
func (r *Report) HasErrors() bool {
	for _, f := range r.Findings {
		if f.Severity == SevError {
			return true
		}
	}
	return false
}

// MaxSeverity returns the highest severity present ("" when clean).
func (r *Report) MaxSeverity() Severity {
	var max Severity
	for _, f := range r.Findings {
		if max == "" || f.Severity.rank() > max.rank() {
			max = f.Severity
		}
	}
	return max
}

// Err returns nil when no error-severity findings exist, otherwise an error
// wrapping ErrFindings that quotes the first offending findings.
func (r *Report) Err() error {
	var msgs []string
	n := 0
	for _, f := range r.Findings {
		if f.Severity != SevError {
			continue
		}
		n++
		if len(msgs) < 3 {
			msgs = append(msgs, fmt.Sprintf("[%s] %s", f.Rule, f.Message))
		}
	}
	if n == 0 {
		return nil
	}
	suffix := ""
	if n > len(msgs) {
		suffix = fmt.Sprintf("; and %d more", n-len(msgs))
	}
	return fmt.Errorf("%w: %d error finding(s): %s%s", ErrFindings, n, strings.Join(msgs, "; "), suffix)
}

// MaxPredictedPeak returns the largest predicted per-cone peak term count
// (0 when no prediction ran).
func (r *Report) MaxPredictedPeak() int {
	max := 0
	for _, c := range r.Cones {
		if c.PredictedPeakTerms > max {
			max = c.PredictedPeakTerms
		}
	}
	return max
}

// Analyze runs every registered DAG rule on a constructed netlist. Source
// rules (cycle / multi-driven / undriven) cannot fire here — the netlist
// constructors enforce those invariants — so lint raw files with
// AnalyzeSource to get them.
func Analyze(n *netlist.Netlist, opts Options) *Report {
	if opts.ContentHash == "" {
		// Best effort: an unserializable netlist just runs uncached.
		if h, err := checkpoint.HashNetlist(n); err == nil {
			opts.ContentHash = h
		}
	}
	rep := &Report{Design: n.Name, ContentHash: opts.ContentHash}
	ctx := newContext(n, opts)
	for _, rule := range registry {
		if rule.Check == nil || opts.disabled(rule.Name) {
			continue
		}
		rep.Findings = append(rep.Findings, rule.Check(ctx)...)
	}
	rep.Fingerprint = ctx.fingerprint()
	rep.Algebra = buildAlgebra(ctx)
	rep.Cones, rep.SuggestedBudgetTerms, rep.SuggestedConeTimeoutMS = predictCones(ctx)
	sortFindings(rep.Findings)
	return rep
}

// newContext computes the shared analysis state once.
func newContext(n *netlist.Netlist, opts Options) *Context {
	ctx := &Context{N: n, Opts: opts}
	ctx.Levels, ctx.Depth = n.Levels()
	ctx.Fanout = make([]int, n.NumGates())
	for id := 0; id < n.NumGates(); id++ {
		for _, f := range n.Gate(id).Fanin {
			ctx.Fanout[f]++
		}
	}
	// Reachability: reverse walk from the outputs. Gates are topologically
	// ordered, so one descending sweep settles the whole DAG.
	ctx.Reach = make([]bool, n.NumGates())
	for _, out := range n.Outputs() {
		ctx.Reach[out] = true
		ctx.Fanout[out]++
	}
	for id := n.NumGates() - 1; id >= 0; id-- {
		if !ctx.Reach[id] {
			continue
		}
		for _, f := range n.Gate(id).Fanin {
			ctx.Reach[f] = true
		}
	}
	return ctx
}

// severityOf returns the effective severity for a rule, honoring the
// RequireMultiplier escalation of io-shape.
func (c *Context) severityOf(rule string) Severity {
	for _, r := range registry {
		if r.Name != rule {
			continue
		}
		if rule == "io-shape" && c.Opts.RequireMultiplier {
			return SevError
		}
		return r.Default
	}
	return SevWarn
}

// sortFindings orders errors first, then warnings, then infos; stable within
// a severity so rule execution order is preserved.
func sortFindings(fs []Finding) {
	// Insertion sort: finding lists are small and mostly ordered already.
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].Severity.rank() > fs[j-1].Severity.rank(); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// nameList renders up to maxWitness gate names for a witness message.
func nameList(n *netlist.Netlist, ids []int) string {
	var parts []string
	for i, id := range ids {
		if i == maxWitness {
			parts = append(parts, fmt.Sprintf("... %d more", len(ids)-i))
			break
		}
		parts = append(parts, n.NameOf(id))
	}
	return strings.Join(parts, " ")
}

// capGates returns at most maxWitness IDs for the Finding.Gates field.
func capGates(ids []int) []int {
	if len(ids) > maxWitness {
		ids = ids[:maxWitness]
	}
	return append([]int(nil), ids...)
}
