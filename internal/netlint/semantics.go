package netlint

import (
	"fmt"
	"sort"

	"github.com/galoisfield/gfre/internal/netlint/sem"
	"github.com/galoisfield/gfre/internal/netlist"
)

// The semantic rules sit on top of the sem abstract interpreter: one shared
// sweep per Analyze call (content-hash cached across calls), consumed by
// four rules plus the degree-driven cost predictor. Syntactic rules see gate
// shapes; these see what the gates compute.

// Sem returns the semantic sweep for the netlist under analysis, running it
// on first use. The result is shared by every semantic rule and the cost
// predictor, and cached across Analyze calls by content hash.
func (c *Context) Sem() *sem.Result {
	if !c.semOnce {
		c.semOnce = true
		c.sem = sem.AnalyzeCached(c.N, c.Opts.ContentHash, sem.Options{})
	}
	return c.sem
}

// AlgebraSummary is the report-level digest of the semantic sweep.
type AlgebraSummary struct {
	// Partitioned reports whether two operand vectors were identified from
	// port naming; APrefix/BPrefix/AWidth/BWidth describe them.
	Partitioned bool   `json:"partitioned"`
	APrefix     string `json:"a_prefix,omitempty"`
	BPrefix     string `json:"b_prefix,omitempty"`
	AWidth      int    `json:"a_width,omitempty"`
	BWidth      int    `json:"b_width,omitempty"`
	// LinearPerOperand: every output has ANF degree <= 1 in each operand
	// vector and 0 in surplus inputs — the bilinearity a GF(2^m) multiplier
	// must satisfy.
	LinearPerOperand bool `json:"linear_per_operand"`
	// Max ANF degree bounds across outputs.
	MaxDegA   int `json:"max_deg_a"`
	MaxDegB   int `json:"max_deg_b"`
	MaxDegKey int `json:"max_deg_key"`
	MaxDegTot int `json:"max_deg_tot"`
	// KeyInputs names every input outside both operand vectors;
	// GatedKeyInputs the subset that actually reaches an output's support.
	// Unlike finding witnesses these lists are not capped — campaign
	// harnesses assert exact equality against planted keys.
	KeyInputs      []string `json:"key_inputs,omitempty"`
	GatedKeyInputs []string `json:"gated_key_inputs,omitempty"`
	// ExactOutputs counts outputs settled in the exact truth-table domain.
	ExactOutputs int `json:"exact_outputs"`
	// Widened counts support-set widening events (precision loss).
	Widened int `json:"widened,omitempty"`
	// AnalysisMicros is the semantic sweep's wall time in microseconds.
	AnalysisMicros int64 `json:"analysis_micros"`
}

// buildAlgebra assembles the report digest from the shared sweep.
func buildAlgebra(c *Context) *AlgebraSummary {
	r := c.Sem()
	s := &AlgebraSummary{
		Partitioned:      r.Ports.Partitioned,
		APrefix:          r.Ports.APrefix,
		BPrefix:          r.Ports.BPrefix,
		AWidth:           r.Ports.AWidth,
		BWidth:           r.Ports.BWidth,
		LinearPerOperand: r.LinearPerOperand(),
		Widened:          r.Widened,
		AnalysisMicros:   r.Elapsed.Microseconds(),
	}
	for _, of := range r.Outputs {
		if of.DegA > s.MaxDegA {
			s.MaxDegA = of.DegA
		}
		if of.DegB > s.MaxDegB {
			s.MaxDegB = of.DegB
		}
		if of.DegKey > s.MaxDegKey {
			s.MaxDegKey = of.DegKey
		}
		if of.DegTot > s.MaxDegTot {
			s.MaxDegTot = of.DegTot
		}
		if of.Exact {
			s.ExactOutputs++
		}
	}
	for _, id := range r.Ports.KeyInputs {
		s.KeyInputs = append(s.KeyInputs, c.N.NameOf(id))
	}
	for _, id := range r.GatedKeyInputs() {
		s.GatedKeyInputs = append(s.GatedKeyInputs, c.N.NameOf(id))
	}
	return s
}

// checkNonlinearCone flags outputs whose ANF degree exceeds what a GF(2^m)
// multiplier can produce: bilinear means degree <= 1 in each operand vector.
// Without an operand partition the rule falls back to total degree > 2, and
// only when the caller demands multiplier shape (an arbitrary circuit is
// allowed to be nonlinear).
func checkNonlinearCone(c *Context) []Finding {
	r := c.Sem()
	var fs []Finding
	emit := func(of sem.OutputFact, msg string) {
		fs = append(fs, Finding{
			Rule:     "nonlinear-cone",
			Severity: c.severityOf("nonlinear-cone"),
			Message:  msg,
			Gates:    []int{of.Gate},
			Signals:  []string{of.Name},
		})
	}
	if r.Ports.Partitioned {
		for _, of := range r.Outputs {
			if of.Const >= 0 || (of.DegA <= 1 && of.DegB <= 1) {
				continue
			}
			emit(of, fmt.Sprintf(
				"output %s has ANF degree %d in operand %s and %d in operand %s: a GF(2^m) multiplier output is bilinear (degree <= 1 in each operand)",
				of.Name, of.DegA, r.Ports.APrefix, of.DegB, r.Ports.BPrefix))
		}
		return fs
	}
	if !c.Opts.RequireMultiplier {
		return nil
	}
	for _, of := range r.Outputs {
		if of.Const >= 0 || of.DegTot <= 2 {
			continue
		}
		emit(of, fmt.Sprintf(
			"output %s has total ANF degree %d: a product bit of any bilinear function has degree <= 2",
			of.Name, of.DegTot))
	}
	return fs
}

// checkKeyGate flags surplus inputs — outside both operand vectors — whose
// value reaches an output's support: the structural signature of a
// logic-locking key. One finding per gating input, with the gated outputs
// as witness.
func checkKeyGate(c *Context) []Finding {
	r := c.Sem()
	if !r.Ports.Partitioned || len(r.Ports.KeyInputs) == 0 {
		return nil
	}
	gatedOuts := map[int][]int{} // key input gate ID -> gated output gate IDs
	for _, of := range r.Outputs {
		for _, k := range of.KeyInputs {
			gatedOuts[k] = append(gatedOuts[k], of.Gate)
		}
	}
	keys := make([]int, 0, len(gatedOuts))
	for k := range gatedOuts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var fs []Finding
	for _, k := range keys {
		outs := gatedOuts[k]
		fs = append(fs, Finding{
			Rule:     "key-gate",
			Severity: c.severityOf("key-gate"),
			Message: fmt.Sprintf(
				"input %s lies outside both operand vectors (%s[%d] x %s[%d]) yet gates %d output(s): %s — logic-locking key signature",
				c.N.NameOf(k), r.Ports.APrefix, r.Ports.AWidth, r.Ports.BPrefix, r.Ports.BWidth,
				len(outs), nameList(c.N, outs)),
			Gates:   capGates(append([]int{k}, outs...)),
			Signals: []string{c.N.NameOf(k)},
		})
	}
	return fs
}

// checkOpaqueConstant flags derived gates whose support lies wholly in
// surplus inputs feeding operand-dependent logic: their value is fixed once
// the key is chosen — an opaque constant, the other half of the
// logic-locking signature (point functions, AND trees over key bits).
func checkOpaqueConstant(c *Context) []Finding {
	r := c.Sem()
	if !r.Ports.Partitioned || len(r.Ports.KeyInputs) == 0 {
		return nil
	}
	// Boundary roots: key-only derived gates with a reader that is not
	// itself key-only (the point where the opaque value meets the datapath).
	boundary := map[int]bool{}
	for id := 0; id < c.N.NumGates(); id++ {
		if !c.Reach[id] || r.KeyOnly(id) {
			continue
		}
		for _, f := range c.N.Gate(id).Fanin {
			if c.N.Gate(f).Type != netlist.Input && r.KeyOnly(f) {
				boundary[f] = true
			}
		}
	}
	if len(boundary) == 0 {
		return nil
	}
	ids := make([]int, 0, len(boundary))
	for id := range boundary {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var names []string
	for i, id := range ids {
		if i == maxWitness {
			break
		}
		names = append(names, c.N.NameOf(id))
	}
	return []Finding{{
		Rule:     "opaque-constant",
		Severity: c.severityOf("opaque-constant"),
		Message: fmt.Sprintf(
			"%d gate(s) computed entirely from non-operand inputs feed operand logic: opaque constants under any fixed key (%s)",
			len(ids), nameList(c.N, ids)),
		Gates:   capGates(ids),
		Signals: names,
	}}
}

// checkDeadByAlgebra flags gates the sweep proves constant by cancellation
// across distinct signals — reconvergent identities constant folding and the
// syntactic const-gate rule cannot see. Only cancellation roots fire;
// everything downstream is ordinary constant propagation from them.
func checkDeadByAlgebra(c *Context) []Finding {
	r := c.Sem()
	var ids []int
	for id := 0; id < c.N.NumGates(); id++ {
		if !c.Reach[id] || !r.AlgebraicConst(id) {
			continue
		}
		// Same-signal self-cancellation (XOR(x,x) as one gate) is already
		// the redundant-gate rule's finding; algebra only claims what
		// syntax cannot.
		g := c.N.Gate(id)
		dup := false
		for i := 1; i < len(g.Fanin) && !dup; i++ {
			for j := 0; j < i; j++ {
				if g.Fanin[i] == g.Fanin[j] {
					dup = true
					break
				}
			}
		}
		if dup {
			continue
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil
	}
	var fs []Finding
	for i, id := range ids {
		if i == maxWitness {
			fs = append(fs, Finding{
				Rule:     "dead-by-algebra",
				Severity: c.severityOf("dead-by-algebra"),
				Message:  fmt.Sprintf("... %d more algebraically constant gates", len(ids)-i),
			})
			break
		}
		v, _ := r.Const(id)
		val := 0
		if v {
			val = 1
		}
		fs = append(fs, Finding{
			Rule:     "dead-by-algebra",
			Severity: c.severityOf("dead-by-algebra"),
			Message: fmt.Sprintf(
				"gate %s is provably constant %d by cancellation across reconvergent paths (invisible to constant folding)",
				c.N.NameOf(id), val),
			Gates:   []int{id},
			Signals: []string{c.N.NameOf(id)},
		})
	}
	return fs
}
