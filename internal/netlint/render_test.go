package netlint

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestSARIFGoldenRoundTrip pins the SARIF rendering byte-for-byte against a
// committed golden file, and checks the properties the golden alone cannot:
// every result carries a stable partialFingerprint, the log parses back as
// JSON with the fields code-scanning consumers require, and re-linting the
// identical source reproduces identical fingerprints (alert identity is
// content-derived, not run-derived).
func TestSARIFGoldenRoundTrip(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "trojan8.eqn"))
	if err != nil {
		t.Fatal(err)
	}
	render := func() []byte {
		rep := AnalyzeSource(src, "testdata/trojan8.eqn", "", Options{RequireMultiplier: true})
		var buf bytes.Buffer
		if err := WriteSARIF(&buf, rep); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	got := render()

	golden := filepath.Join("..", "..", "testdata", "golden", "trojan8.sarif")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("SARIF output drifted from golden (run with -update if intended)\ngot:\n%s", got)
	}

	// Round-trip: the log must parse, and every result must carry the
	// versioned fingerprint key with a 16-hex-digit value.
	var log struct {
		Runs []struct {
			Results []struct {
				RuleID              string            `json:"ruleId"`
				Level               string            `json:"level"`
				PartialFingerprints map[string]string `json:"partialFingerprints"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(got, &log); err != nil {
		t.Fatalf("rendered SARIF does not parse: %v", err)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) == 0 {
		t.Fatalf("unexpected log shape: %d runs", len(log.Runs))
	}
	for _, res := range log.Runs[0].Results {
		fp := res.PartialFingerprints["gfre/v1"]
		if len(fp) != 16 {
			t.Errorf("result %s: fingerprint %q, want 16 hex digits", res.RuleID, fp)
		}
	}

	// Identity is stable across runs over identical content.
	if again := render(); !bytes.Equal(got, again) {
		t.Error("re-linting identical source changed the SARIF output")
	}
}

// TestPartialFingerprintIgnoresMessage pins that a finding's identity is its
// rule + content + witness, never its message text: rewording a diagnostic
// must not re-open resolved code-scanning alerts.
func TestPartialFingerprintIgnoresMessage(t *testing.T) {
	rep := &Report{ContentHash: "deadbeef"}
	a := Finding{Rule: "key-gate", Message: "old wording", Signals: []string{"k0"}}
	b := Finding{Rule: "key-gate", Message: "new improved wording", Signals: []string{"k0"}}
	if fa, fb := partialFingerprint(rep, a), partialFingerprint(rep, b); fa["gfre/v1"] != fb["gfre/v1"] {
		t.Errorf("message text changed the fingerprint: %q vs %q", fa["gfre/v1"], fb["gfre/v1"])
	}
	c := Finding{Rule: "key-gate", Message: "old wording", Signals: []string{"k1"}}
	if fa, fc := partialFingerprint(rep, a), partialFingerprint(rep, c); fa["gfre/v1"] == fc["gfre/v1"] {
		t.Error("distinct witnesses share a fingerprint")
	}
	other := &Report{ContentHash: "cafef00d"}
	if fa, fo := partialFingerprint(rep, a), partialFingerprint(other, a); fa["gfre/v1"] == fo["gfre/v1"] {
		t.Error("distinct content shares a fingerprint")
	}
}
