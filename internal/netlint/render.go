package netlint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteText renders the report for terminals: one line per finding with
// severity, rule, location and witness, followed by the fingerprint and
// cost summary.
func (r *Report) WriteText(w io.Writer) error {
	name := r.Design
	if name == "" {
		name = "(unnamed)"
	}
	counts := r.Counts()
	fmt.Fprintf(w, "%s: %d error(s), %d warning(s), %d info\n",
		name, counts[SevError], counts[SevWarn], counts[SevInfo])
	for _, f := range r.Findings {
		loc := ""
		if f.Line > 0 {
			loc = fmt.Sprintf(":%d", f.Line)
		}
		fmt.Fprintf(w, "  %-5s %-14s %s%s: %s\n", f.Severity, f.Rule, r.sourceOr(name), loc, f.Message)
	}
	if r.Fingerprint.Class != "" {
		fmt.Fprintf(w, "  fingerprint: %s (%.2f) — %s\n", r.Fingerprint.Class, r.Fingerprint.Confidence, r.Fingerprint.Evidence)
	}
	if len(r.Cones) > 0 {
		fmt.Fprintf(w, "  cones: %d outputs, max predicted peak %d terms; suggested -budget %d -cone-timeout %s\n",
			len(r.Cones), r.MaxPredictedPeak(), r.SuggestedBudgetTerms,
			time.Duration(r.SuggestedConeTimeoutMS)*time.Millisecond)
	}
	return nil
}

func (r *Report) sourceOr(fallback string) string {
	if r.Source != "" {
		return r.Source
	}
	return fallback
}

// SARIF 2.1.0 subset: enough structure for GitHub code scanning and other
// SARIF viewers (tool.driver with rule metadata, results with ruleId,
// level, message and a physical location per finding).

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Version        string      `json:"version,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
	// PartialFingerprints lets SARIF consumers (GitHub code scanning)
	// track a finding's identity across runs: re-linting an unchanged file
	// must not resurface resolved alerts, and a message-text tweak must
	// not re-open them.
	PartialFingerprints map[string]string `json:"partialFingerprints,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

// partialFingerprint derives a stable identity for one finding: rule ID,
// the report's content hash, the witness signal names and the source line,
// but never the message text (messages are wording, not identity). The
// "gfre/v1" key is versioned so a future scheme can coexist during
// migration.
func partialFingerprint(rep *Report, f Finding) map[string]string {
	h := sha256.New()
	io.WriteString(h, f.Rule) //nolint:errcheck — sha256 never errors
	h.Write([]byte{0})
	io.WriteString(h, rep.ContentHash) //nolint:errcheck
	for _, s := range f.Signals {
		h.Write([]byte{0})
		io.WriteString(h, s) //nolint:errcheck
	}
	if f.Line > 0 {
		fmt.Fprintf(h, "%c%d", 0, f.Line)
	}
	return map[string]string{
		"gfre/v1": hex.EncodeToString(h.Sum(nil))[:16],
	}
}

func sarifLevel(s Severity) string {
	switch s {
	case SevError:
		return "error"
	case SevWarn:
		return "warning"
	}
	return "note"
}

// WriteSARIF renders one or more reports as a single SARIF 2.1.0 log with
// one run. Reports without a Source fall back to the design name as the
// artifact URI.
func WriteSARIF(w io.Writer, reports ...*Report) error {
	driver := sarifDriver{
		Name:    "gflint",
		Version: "1.0.0",
	}
	for _, r := range Rules() {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               r.Name,
			ShortDescription: sarifMessage{Text: r.Doc},
		})
	}
	run := sarifRun{Tool: sarifTool{Driver: driver}, Results: []sarifResult{}}
	for _, rep := range reports {
		uri := rep.Source
		if uri == "" {
			uri = rep.Design
		}
		uri = strings.ReplaceAll(uri, "\\", "/")
		for _, f := range rep.Findings {
			res := sarifResult{
				RuleID:              f.Rule,
				Level:               sarifLevel(f.Severity),
				Message:             sarifMessage{Text: f.Message},
				PartialFingerprints: partialFingerprint(rep, f),
			}
			phys := sarifPhysical{ArtifactLocation: sarifArtifact{URI: uri}}
			if f.Line > 0 {
				phys.Region = &sarifRegion{StartLine: f.Line}
			}
			res.Locations = []sarifLocation{{PhysicalLocation: phys}}
			run.Results = append(run.Results, res)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	})
}
