package netlint

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"

	"github.com/galoisfield/gfre/internal/netlist"
)

// checkIOShape verifies the netlist has plausible multiplier I/O widths:
// m >= 2 result bits and exactly 2m operand bits. With RequireMultiplier
// the finding is an error (the extraction pipeline cannot run Algorithm 2
// on anything else); standalone linting reports a warning.
func checkIOShape(c *Context) []Finding {
	sev := c.severityOf("io-shape")
	ni, no := len(c.N.Inputs()), len(c.N.Outputs())
	var fs []Finding
	if no < 2 {
		fs = append(fs, Finding{
			Rule: "io-shape", Severity: sev,
			Message: fmt.Sprintf("GF(2^m) multiplier needs m >= 2 outputs, found %d", no),
		})
	}
	if no >= 2 && ni != 2*no {
		// A locked design legitimately carries extra inputs: when the
		// semantic sweep partitions exactly 2m operand bits and attributes
		// every surplus input to the non-operand class, the precise
		// diagnosis is the key-gate warning, not a shape error — extraction
		// can still run once the keys are bound.
		if r := c.Sem(); ni > 2*no && r.Ports.Partitioned &&
			r.Ports.AWidth+r.Ports.BWidth == 2*no && len(r.Ports.KeyInputs) == ni-2*no {
			fs = append(fs, Finding{
				Rule: "io-shape", Severity: SevWarn,
				Message: fmt.Sprintf(
					"multiplier over GF(2^%d) has %d operand inputs (%s, %s) plus %d non-operand input(s) — see key-gate",
					no, 2*no, r.Ports.APrefix, r.Ports.BPrefix, ni-2*no),
			})
		} else {
			fs = append(fs, Finding{
				Rule: "io-shape", Severity: sev,
				Message: fmt.Sprintf("multiplier over GF(2^%d) needs 2m = %d inputs (operands a, b), found %d", no, 2*no, ni),
			})
		}
	}
	if ni == 0 {
		fs = append(fs, Finding{
			Rule: "io-shape", Severity: sev,
			Message: "netlist has no primary inputs; nothing to extract",
		})
	}
	return fs
}

// portPat splits a port name into its alphabetic prefix and bit index,
// accepting a3, a[3] and a_3 spellings.
var portPat = regexp.MustCompile(`^([A-Za-z_]+?)_?\[?(\d+)\]?$`)

// checkIONaming reports deviations from the a<i>/b<i>/z<i> bit-vector
// convention the port identifier relies on: inputs should form exactly two
// contiguous equal-width vectors and outputs one. Purely advisory —
// extraction falls back to positional port assignment — but a finding here
// explains why `-a/-b` prefixes may be needed.
func checkIONaming(c *Context) []Finding {
	sev := c.severityOf("io-naming")
	var fs []Finding
	group := func(ids []int, what string, wantVectors int) {
		vec := map[string][]int{} // prefix -> bit indices
		loose := []string{}
		for _, id := range ids {
			name := c.N.NameOf(id)
			if m := portPat.FindStringSubmatch(name); m != nil {
				bit, _ := strconv.Atoi(m[2])
				vec[m[1]] = append(vec[m[1]], bit)
			} else {
				loose = append(loose, name)
			}
		}
		if len(loose) > 0 {
			if len(loose) > maxWitness {
				loose = loose[:maxWitness]
			}
			fs = append(fs, Finding{
				Rule: "io-naming", Severity: sev, Signals: loose,
				Message: fmt.Sprintf("%d %s port(s) do not match the <prefix><bit> convention; port identification will be positional", len(loose), what),
			})
		}
		if len(vec) != wantVectors && len(loose) == 0 {
			prefixes := make([]string, 0, len(vec))
			for p := range vec {
				prefixes = append(prefixes, p)
			}
			sort.Strings(prefixes)
			fs = append(fs, Finding{
				Rule: "io-naming", Severity: sev, Signals: prefixes,
				Message: fmt.Sprintf("expected %d %s vector(s), found %d (prefixes %v)", wantVectors, what, len(vec), prefixes),
			})
		}
		for prefix, bits := range vec {
			sort.Ints(bits)
			for i, b := range bits {
				if b != i {
					fs = append(fs, Finding{
						Rule: "io-naming", Severity: sev, Signals: []string{prefix},
						Message: fmt.Sprintf("%s vector %q is not a contiguous 0-based bit range (missing bit %d)", what, prefix, i),
					})
					break
				}
			}
		}
	}
	group(c.N.Inputs(), "input", 2)
	group(c.N.Outputs(), "output", 1)
	return fs
}

// checkDeadGates flags non-input gates outside every output's fanin cone:
// dead logic is at best a synthesis leftover and at worst a trojan or
// obfuscation payload, and it inflates cost predictions.
func checkDeadGates(c *Context) []Finding {
	var dead []int
	for id := 0; id < c.N.NumGates(); id++ {
		if !c.Reach[id] && c.N.Gate(id).Type != netlist.Input {
			dead = append(dead, id)
		}
	}
	if len(dead) == 0 {
		return nil
	}
	return []Finding{{
		Rule: "dead-gate", Severity: c.severityOf("dead-gate"), Gates: capGates(dead),
		Message: fmt.Sprintf("%d gate(s) unreachable from any primary output: %s", len(dead), nameList(c.N, dead)),
	}}
}

// checkUnusedInputs flags primary inputs no output depends on. A multiplier
// must depend on every operand bit; an unused input usually means the wrong
// module was exported or a port vector is mis-declared.
func checkUnusedInputs(c *Context) []Finding {
	var unused []int
	for _, id := range c.N.Inputs() {
		if !c.Reach[id] {
			unused = append(unused, id)
		}
	}
	if len(unused) == 0 {
		return nil
	}
	return []Finding{{
		Rule: "unused-input", Severity: c.severityOf("unused-input"), Gates: capGates(unused),
		Message: fmt.Sprintf("%d primary input(s) feed no output: %s", len(unused), nameList(c.N, unused)),
	}}
}

// checkConstGates flags constant gates and gates that fold to a constant or
// to one of their own fanins because a fanin is constant (Const0/Const1
// reaching And/Or/Xor/...). Real multiplier cones contain no constants; their
// presence signals synthesis leftovers, tie-offs, or deliberate padding.
func checkConstGates(c *Context) []Finding {
	sev := c.severityOf("const-gate")
	isConst := func(id int) (bool, bool) { // (is-constant, value)
		switch c.N.Gate(id).Type {
		case netlist.Const0:
			return true, false
		case netlist.Const1:
			return true, true
		}
		return false, false
	}
	var consts, foldable []int
	for id := 0; id < c.N.NumGates(); id++ {
		g := c.N.Gate(id)
		if ok, _ := isConst(id); ok {
			if c.Reach[id] {
				consts = append(consts, id)
			}
			continue
		}
		for _, f := range g.Fanin {
			if ok, _ := isConst(f); ok && c.Reach[id] {
				foldable = append(foldable, id)
				break
			}
		}
	}
	var fs []Finding
	if len(consts) > 0 {
		fs = append(fs, Finding{
			Rule: "const-gate", Severity: sev, Gates: capGates(consts),
			Message: fmt.Sprintf("%d constant gate(s) reachable from outputs: %s", len(consts), nameList(c.N, consts)),
		})
	}
	if len(foldable) > 0 {
		fs = append(fs, Finding{
			Rule: "const-gate", Severity: sev, Gates: capGates(foldable),
			Message: fmt.Sprintf("%d gate(s) have constant fanin and fold away: %s", len(foldable), nameList(c.N, foldable)),
		})
	}
	return fs
}

// checkRedundantGates flags structure the rewriter will cancel anyway:
// self-cancelling gates (x^x, x·x, x+x), structural duplicates (same type
// and fanin list as an earlier gate), and pass-through Buf chains. All are
// harmless to correctness but indicate a padded or scrambled design and
// inflate cone statistics.
func checkRedundantGates(c *Context) []Finding {
	sev := c.severityOf("redundant-gate")
	var selfCancel, dups, bufs []int
	// Structural duplicates are detected via an FNV-1a hash of (type,
	// fanins) verified against the stored gate — string keys allocated per
	// gate and dominated whole-netlist lint memory. An unverified hash
	// collision (~2^-64 per pair) only suppresses dup tracking for that
	// gate; it can never produce a false duplicate.
	sameGate := func(a, b netlist.Gate) bool {
		if a.Type != b.Type || len(a.Fanin) != len(b.Fanin) {
			return false
		}
		for i := range a.Fanin {
			if a.Fanin[i] != b.Fanin[i] {
				return false
			}
		}
		return true
	}
	seen := make(map[uint64]int, c.N.NumGates())
	for id := 0; id < c.N.NumGates(); id++ {
		g := c.N.Gate(id)
		switch g.Type {
		case netlist.Input, netlist.Const0, netlist.Const1, netlist.Lut:
			continue
		case netlist.Buf:
			bufs = append(bufs, id)
		}
		if len(g.Fanin) == 2 && g.Fanin[0] == g.Fanin[1] {
			// x^x = 0, x·x = x, x+x = x, etc.: degenerate either way.
			selfCancel = append(selfCancel, id)
		}
		h := uint64(1469598103934665603)
		mix := func(v uint64) { h = (h ^ v) * 1099511628211 }
		mix(uint64(g.Type))
		for _, f := range g.Fanin {
			mix(uint64(f) + 1)
		}
		if prev, ok := seen[h]; ok {
			if sameGate(c.N.Gate(prev), g) {
				dups = append(dups, id)
			}
		} else {
			seen[h] = id
		}
	}
	var fs []Finding
	if len(selfCancel) > 0 {
		fs = append(fs, Finding{
			Rule: "redundant-gate", Severity: sev, Gates: capGates(selfCancel),
			Message: fmt.Sprintf("%d gate(s) with identical fanins (x op x degenerates): %s", len(selfCancel), nameList(c.N, selfCancel)),
		})
	}
	if len(dups) > 0 {
		fs = append(fs, Finding{
			Rule: "redundant-gate", Severity: sev, Gates: capGates(dups),
			Message: fmt.Sprintf("%d structural duplicate gate(s) (same type and fanins as an earlier gate): %s", len(dups), nameList(c.N, dups)),
		})
	}
	if len(bufs) > 0 {
		fs = append(fs, Finding{
			Rule: "redundant-gate", Severity: sev, Gates: capGates(bufs),
			Message: fmt.Sprintf("%d pass-through buffer(s): %s", len(bufs), nameList(c.N, bufs)),
		})
	}
	return fs
}
