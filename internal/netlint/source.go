package netlint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/galoisfield/gfre/internal/netlist"
)

// Source-level analysis. The netlist constructors enforce acyclicity and
// single drivers *by rejecting the input*, so a constructed DAG can never
// exhibit the defects the cycle / multi-driven / undriven rules look for.
// To diagnose them with a useful witness instead of a bare parse error, we
// scan the raw EQN/BLIF text into a name-level dependency graph first and
// run the structural rules there; only a source-clean design is then handed
// to the real reader for DAG-level analysis.

// rawStmt is one signal definition in the raw text.
type rawStmt struct {
	lhs  string
	deps []string
	line int
}

// rawDesign is the name-level view of a netlist file.
type rawDesign struct {
	format  string // "eqn", "blif", "verilog"
	inputs  map[string]int
	outputs []string // declared output names, in order
	outLine map[string]int
	stmts   []rawStmt
}

// DetectFormat guesses the netlist format from a filename and its content:
// extension first, then content sniffing (".model"/".names" => BLIF,
// "module" => Verilog, otherwise EQN).
func DetectFormat(filename string, data []byte) string {
	switch strings.ToLower(filepath.Ext(filename)) {
	case ".eqn", ".eq":
		return "eqn"
	case ".blif":
		return "blif"
	case ".v", ".sv", ".vh":
		return "verilog"
	}
	head := data
	if len(head) > 4096 {
		head = head[:4096]
	}
	switch {
	case bytes.Contains(head, []byte(".model")) || bytes.Contains(head, []byte(".names")):
		return "blif"
	case bytes.Contains(head, []byte("module ")) || bytes.Contains(head, []byte("endmodule")):
		return "verilog"
	}
	return "eqn"
}

// scanEQN tokenizes equation text into raw statements without building
// gates. It is deliberately lenient — unknown characters are separators —
// because its job is dependency extraction, not validation; the real parser
// still runs afterwards on source-clean designs.
func scanEQN(data []byte) *rawDesign {
	raw := &rawDesign{format: "eqn", inputs: map[string]int{}, outLine: map[string]int{}}
	type token struct {
		text string
		line int
	}
	var toks []token
	line := 0
	for _, ln := range strings.Split(string(data), "\n") {
		line++
		if i := strings.IndexByte(ln, '#'); i >= 0 {
			ln = ln[:i]
		}
		if i := strings.Index(ln, "//"); i >= 0 {
			ln = ln[:i]
		}
		for i := 0; i < len(ln); {
			c := ln[i]
			switch {
			case c == ';' || c == '=':
				toks = append(toks, token{string(c), line})
				i++
			case isEqnIdent(c):
				j := i
				for j < len(ln) && isEqnIdent(ln[j]) {
					j++
				}
				toks = append(toks, token{ln[i:j], line})
				i = j
			default:
				i++ // operators, parens, whitespace, garbage: separators
			}
		}
	}
	// Group into statements terminated by ';'.
	for i := 0; i < len(toks); {
		// Find statement extent.
		j := i
		for j < len(toks) && toks[j].text != ";" {
			j++
		}
		stmt := toks[i:j]
		i = j + 1
		if len(stmt) == 0 {
			continue
		}
		head := stmt[0]
		isDecl := head.text == "INORDER" || head.text == "OUTORDER"
		// Collect identifier tokens after '='.
		var ids []token
		seenEq := false
		for _, t := range stmt[1:] {
			if t.text == "=" {
				seenEq = true
				continue
			}
			if t.text == "0" || t.text == "1" {
				continue // constants
			}
			if seenEq {
				ids = append(ids, t)
			}
		}
		switch {
		case head.text == "INORDER":
			for _, t := range ids {
				if _, dup := raw.inputs[t.text]; !dup {
					raw.inputs[t.text] = t.line
				} else {
					// Duplicate input declaration = multi-driven; model it
					// as a second defining statement.
					raw.stmts = append(raw.stmts, rawStmt{lhs: t.text, line: t.line})
				}
			}
		case head.text == "OUTORDER":
			for _, t := range ids {
				raw.outputs = append(raw.outputs, t.text)
				raw.outLine[t.text] = t.line
			}
		case !isDecl && seenEq:
			deps := make([]string, 0, len(ids))
			for _, t := range ids {
				deps = append(deps, t.text)
			}
			raw.stmts = append(raw.stmts, rawStmt{lhs: head.text, deps: deps, line: head.line})
		}
	}
	return raw
}

func isEqnIdent(c byte) bool {
	return c == '_' || c == '[' || c == ']' || c == '.' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// scanBLIF extracts the .inputs/.outputs/.names structure; cover rows and
// unknown directives are skipped.
func scanBLIF(data []byte) *rawDesign {
	raw := &rawDesign{format: "blif", inputs: map[string]int{}, outLine: map[string]int{}}
	line, pending := 0, ""
	for _, ln := range strings.Split(string(data), "\n") {
		line++
		if i := strings.IndexByte(ln, '#'); i >= 0 {
			ln = ln[:i]
		}
		ln = strings.TrimSpace(ln)
		if pending != "" {
			ln = pending + " " + ln
			pending = ""
		}
		if strings.HasSuffix(ln, "\\") {
			pending = strings.TrimSuffix(ln, "\\")
			continue
		}
		if ln == "" {
			continue
		}
		fields := strings.Fields(ln)
		switch fields[0] {
		case ".inputs":
			for _, f := range fields[1:] {
				if _, dup := raw.inputs[f]; !dup {
					raw.inputs[f] = line
				} else {
					raw.stmts = append(raw.stmts, rawStmt{lhs: f, line: line})
				}
			}
		case ".outputs":
			for _, f := range fields[1:] {
				raw.outputs = append(raw.outputs, f)
				raw.outLine[f] = line
			}
		case ".names":
			if len(fields) < 2 {
				continue
			}
			raw.stmts = append(raw.stmts, rawStmt{
				lhs:  fields[len(fields)-1],
				deps: fields[1 : len(fields)-1],
				line: line,
			})
		}
	}
	return raw
}

// analyzeRaw runs the source-level rules on the name graph.
func analyzeRaw(raw *rawDesign, opts Options) []Finding {
	var fs []Finding

	// Index definitions: input declarations and statement LHS both drive.
	defLine := map[string]int{}     // first defining line per name
	stmtOf := map[string]*rawStmt{} // first statement per name, for cycle walk
	multiSeen := map[string]bool{}
	for name, ln := range raw.inputs {
		defLine[name] = ln
	}
	for i := range raw.stmts {
		s := &raw.stmts[i]
		if prev, ok := defLine[s.lhs]; ok {
			if !multiSeen[s.lhs] && !opts.disabled("multi-driven") {
				multiSeen[s.lhs] = true
				fs = append(fs, Finding{
					Rule: "multi-driven", Severity: SevError, Line: s.line,
					Signals: []string{s.lhs},
					Message: fmt.Sprintf("signal %q driven more than once (lines %d and %d)", s.lhs, prev, s.line),
				})
			}
			continue
		}
		defLine[s.lhs] = s.line
		stmtOf[s.lhs] = s
	}

	// Undriven: referenced or declared-as-output but never defined.
	if !opts.disabled("undriven") {
		undriven := map[string]int{} // name -> first use line
		note := func(name string, line int) {
			if _, defined := defLine[name]; defined {
				return
			}
			if _, seen := undriven[name]; !seen {
				undriven[name] = line
			}
		}
		for i := range raw.stmts {
			for _, d := range raw.stmts[i].deps {
				note(d, raw.stmts[i].line)
			}
		}
		for _, o := range raw.outputs {
			note(o, raw.outLine[o])
		}
		if len(undriven) > 0 {
			names := make([]string, 0, len(undriven))
			first := 0
			for n, ln := range undriven {
				names = append(names, n)
				if first == 0 || ln < first {
					first = ln
				}
			}
			sortStrings(names)
			shown := names
			if len(shown) > maxWitness {
				shown = shown[:maxWitness]
			}
			fs = append(fs, Finding{
				Rule: "undriven", Severity: SevError, Line: first, Signals: shown,
				Message: fmt.Sprintf("%d signal(s) referenced but never driven: %s", len(names), strings.Join(shown, " ")),
			})
		}
	}

	// Cycles: DFS over lhs -> deps edges (edges into inputs terminate).
	if !opts.disabled("cycle") {
		const (
			unvisited = 0
			visiting  = 1
			done      = 2
		)
		state := map[string]int{}
		var stack []string
		var cycle []string
		var walk func(name string) bool // true once a cycle is recorded
		walk = func(name string) bool {
			s, ok := stmtOf[name]
			if !ok {
				return false // input or undriven: no outgoing edges
			}
			switch state[name] {
			case visiting:
				// Back-edge: the witness is the stack suffix from `name`.
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i] == name {
						cycle = append(append([]string{}, stack[i:]...), name)
						return true
					}
				}
				cycle = []string{name, name}
				return true
			case done:
				return false
			}
			state[name] = visiting
			stack = append(stack, name)
			for _, d := range s.deps {
				if walk(d) {
					return true
				}
			}
			stack = stack[:len(stack)-1]
			state[name] = done
			return false
		}
		// Deterministic start order: statement order.
		for i := range raw.stmts {
			if cycle != nil {
				break
			}
			stack = stack[:0]
			walk(raw.stmts[i].lhs)
		}
		if cycle != nil {
			line := 0
			if s, ok := stmtOf[cycle[0]]; ok {
				line = s.line
			}
			shown := cycle
			if len(shown) > maxWitness {
				shown = append(append([]string{}, shown[:maxWitness]...), "...", cycle[len(cycle)-1])
			}
			fs = append(fs, Finding{
				Rule: "cycle", Severity: SevError, Line: line, Signals: shown,
				Message: fmt.Sprintf("combinational cycle: %s", strings.Join(shown, " -> ")),
			})
		}
	}

	// Topological order (EQN only: its reader requires define-before-use).
	if raw.format == "eqn" && !opts.disabled("topo-order") {
		count, firstLine, firstName := 0, 0, ""
		for i := range raw.stmts {
			s := &raw.stmts[i]
			for _, d := range s.deps {
				if dl, ok := defLine[d]; ok && dl > s.line && !multiSeen[d] {
					count++
					if firstLine == 0 {
						firstLine, firstName = s.line, d
					}
					break
				}
			}
		}
		if count > 0 {
			fs = append(fs, Finding{
				Rule: "topo-order", Severity: SevWarn, Line: firstLine, Signals: []string{firstName},
				Message: fmt.Sprintf("%d statement(s) use signals defined later (first: %q at line %d); the EQN reader requires topological order", count, firstName, firstLine),
			})
		}
	}

	return fs
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// AnalyzeSource lints a netlist file: source-level structural rules on the
// raw text, then — when the source is clean enough to construct — the full
// DAG rule set. format is "eqn", "blif", "verilog" or "" (auto-detect).
// It never returns a nil report; unreadable input yields parse findings.
func AnalyzeSource(data []byte, filename, format string, opts Options) *Report {
	if format == "" {
		format = DetectFormat(filename, data)
	}
	if opts.ContentHash == "" {
		// Key the semantic cache on the source bytes: repeated gflint runs
		// and gfred's admission-then-execution double lint of the same file
		// share one semantic sweep without re-serializing the netlist.
		sum := sha256.Sum256(data)
		opts.ContentHash = hex.EncodeToString(sum[:])
	}
	design := strings.TrimSuffix(filepath.Base(filename), filepath.Ext(filename))
	rep := &Report{Design: design, Source: filename}

	var raw *rawDesign
	switch format {
	case "eqn":
		raw = scanEQN(data)
	case "blif":
		raw = scanBLIF(data)
	default:
		// Verilog: no source scanner; rely on the reader + DAG rules.
	}
	if raw != nil {
		rep.Findings = append(rep.Findings, analyzeRaw(raw, opts)...)
	}
	if rep.HasErrors() {
		// The constructor would reject this input for the reasons already
		// reported; a parse finding on top would be noise.
		sortFindings(rep.Findings)
		return rep
	}

	var (
		n   *netlist.Netlist
		err error
	)
	switch format {
	case "eqn":
		n, err = netlist.ReadEQN(bytes.NewReader(data), design)
	case "blif":
		n, err = netlist.ReadBLIF(bytes.NewReader(data))
	case "verilog":
		n, err = netlist.ReadVerilog(bytes.NewReader(data))
	default:
		err = fmt.Errorf("unknown netlist format %q", format)
	}
	if err != nil {
		if !opts.disabled("parse") {
			rep.Findings = append(rep.Findings, Finding{
				Rule: "parse", Severity: SevError,
				Message: fmt.Sprintf("netlist does not parse: %v", err),
			})
		}
		sortFindings(rep.Findings)
		return rep
	}

	dag := Analyze(n, opts)
	rep.Design = dag.Design
	if rep.Design == "" {
		rep.Design = design
	}
	rep.Findings = append(rep.Findings, dag.Findings...)
	rep.ContentHash = dag.ContentHash
	rep.Fingerprint = dag.Fingerprint
	rep.Algebra = dag.Algebra
	rep.Cones = dag.Cones
	rep.SuggestedBudgetTerms = dag.SuggestedBudgetTerms
	rep.SuggestedConeTimeoutMS = dag.SuggestedConeTimeoutMS
	sortFindings(rep.Findings)
	return rep
}

// LintFile reads and lints one netlist file. The error covers I/O only;
// netlist problems come back as findings.
func LintFile(path string, opts Options) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("netlint: %w", err)
	}
	return AnalyzeSource(data, path, "", opts), nil
}
