package netlint

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzNetlint asserts the linter's two hard properties on arbitrary input:
// it never panics, and it is deterministic — the same bytes always yield
// byte-identical reports, for every format path (auto-detect, EQN, BLIF).
// Seeds cover the interesting repros: a combinational cycle, a multi-driven
// signal, a self-loop, undriven references, and clean designs in both
// formats.
func FuzzNetlint(f *testing.F) {
	f.Add([]byte("INORDER = a0 a1 b0 b1;\nOUTORDER = z0 z1;\np = a0 * b0;\nz0 = p ^ a1;\nz1 = p;\n"))
	// Cycle: u -> w -> v -> u.
	f.Add([]byte("INORDER = a0 b0;\nOUTORDER = z0 z1;\nu = a0 ^ w;\nv = u * b0;\nw = v ^ a0;\nz0 = u;\nz1 = v;\n"))
	// Multi-driven p.
	f.Add([]byte("INORDER = a0 a1 b0 b1;\nOUTORDER = z0 z1;\np = a0 * b0;\np = a1 * b1;\nz0 = p;\nz1 = p;\n"))
	// Self-loop.
	f.Add([]byte("INORDER = a0 b0;\nOUTORDER = z0;\nz0 = z0 ^ a0;\n"))
	// Undriven reference + undriven output.
	f.Add([]byte("INORDER = a0;\nOUTORDER = z0 zx;\nz0 = a0 * ghost;\n"))
	// Clean BLIF and a BLIF cycle.
	f.Add([]byte(".model t\n.inputs a b\n.outputs z\n.names a b z\n11 1\n.end\n"))
	f.Add([]byte(".model c\n.inputs a\n.outputs z\n.names a y x\n11 1\n.names x y\n1 1\n.names x z\n1 1\n.end\n"))
	// Degenerate scraps.
	f.Add([]byte(""))
	f.Add([]byte(";;;===;;;"))
	f.Add([]byte("OUTORDER = ;"))
	f.Add([]byte(".names\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, format := range []string{"", "eqn", "blif"} {
			rep := AnalyzeSource(data, "fuzz.input", format, Options{})
			if rep == nil {
				t.Fatalf("nil report (format %q)", format)
			}
			first, err := json.Marshal(rep)
			if err != nil {
				t.Fatalf("report not serializable (format %q): %v", format, err)
			}
			again, _ := json.Marshal(AnalyzeSource(data, "fuzz.input", format, Options{}))
			if !bytes.Equal(first, again) {
				t.Fatalf("non-deterministic report (format %q):\n%s\n%s", format, first, again)
			}
			// Renderers must hold on whatever the analyzer produced.
			var sink bytes.Buffer
			if err := rep.WriteText(&sink); err != nil {
				t.Fatalf("WriteText: %v", err)
			}
			if err := WriteSARIF(&sink, rep); err != nil {
				t.Fatalf("WriteSARIF: %v", err)
			}
		}
	})
}
