// Package randnet generates pseudo-random combinational netlists for
// property-based testing: every optimization pass must preserve the function
// of any netlist, every I/O format must round-trip it, and backward
// rewriting must agree with simulation on it. Random DAGs exercise gate-type
// and sharing combinations (MUX/AOI/LUT fan-in reconvergence, dead logic,
// constants) that the structured multiplier generators never produce.
package randnet

import (
	"fmt"
	"math/rand"

	"github.com/galoisfield/gfre/internal/netlist"
)

// Config bounds the generated netlist.
type Config struct {
	Inputs  int
	Gates   int
	Outputs int
	// Luts enables random truth-table gates (2–4 inputs).
	Luts bool
	// Constants enables Const0/Const1 nodes.
	Constants bool
}

// New generates a random netlist. Gates draw fanins uniformly from all
// earlier nodes, so reconvergent sharing and dead logic occur naturally.
func New(r *rand.Rand, cfg Config) (*netlist.Netlist, error) {
	if cfg.Inputs < 1 || cfg.Gates < 1 || cfg.Outputs < 1 {
		return nil, fmt.Errorf("randnet: need at least one input, gate and output")
	}
	n := netlist.New(fmt.Sprintf("rand_%d_%d", cfg.Inputs, cfg.Gates))
	for i := 0; i < cfg.Inputs; i++ {
		if _, err := n.AddInput(fmt.Sprintf("x%d", i)); err != nil {
			return nil, err
		}
	}
	types := []netlist.GateType{
		netlist.Not, netlist.Buf,
		netlist.And, netlist.Or, netlist.Xor, netlist.Xnor, netlist.Nand, netlist.Nor,
		netlist.And, netlist.Xor, // weight the multiplier-typical mix
		netlist.Aoi21, netlist.Oai21, netlist.Aoi22, netlist.Oai22, netlist.Mux,
	}
	if cfg.Constants {
		types = append(types, netlist.Const0, netlist.Const1)
	}
	for g := 0; g < cfg.Gates; g++ {
		limit := n.NumGates()
		pick := func() int { return r.Intn(limit) }
		if cfg.Luts && r.Intn(8) == 0 {
			k := 2 + r.Intn(3)
			table := make([]bool, 1<<uint(k))
			for i := range table {
				table[i] = r.Intn(2) == 1
			}
			fanin := make([]int, k)
			for i := range fanin {
				fanin[i] = pick()
			}
			if _, err := n.AddLut(table, fanin...); err != nil {
				return nil, err
			}
			continue
		}
		ty := types[r.Intn(len(types))]
		fanin := make([]int, ty.Arity())
		for i := range fanin {
			fanin[i] = pick()
		}
		if _, err := n.AddGate(ty, fanin...); err != nil {
			return nil, err
		}
	}
	// Outputs: bias towards late gates so most logic is live.
	total := n.NumGates()
	for o := 0; o < cfg.Outputs; o++ {
		id := total - 1 - r.Intn((total+1)/2)
		if id < 0 {
			id = 0
		}
		if err := n.MarkOutput(fmt.Sprintf("y%d", o), id); err != nil {
			return nil, err
		}
	}
	return n, nil
}
