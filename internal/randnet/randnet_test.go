package randnet

import (
	"math/rand"
	"testing"
)

func TestNewProducesValidNetlists(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		cfg := Config{
			Inputs:    1 + r.Intn(8),
			Gates:     1 + r.Intn(60),
			Outputs:   1 + r.Intn(4),
			Luts:      trial%2 == 0,
			Constants: trial%3 == 0,
		}
		n, err := New(r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(n.Inputs()) != cfg.Inputs || len(n.Outputs()) != cfg.Outputs {
			t.Fatalf("trial %d: ports wrong", trial)
		}
		// Must simulate without error.
		words := make([]uint64, cfg.Inputs)
		for i := range words {
			words[i] = r.Uint64()
		}
		if _, err := n.Simulate(words); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestNewRejectsDegenerate(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, cfg := range []Config{{0, 1, 1, false, false}, {1, 0, 1, false, false}, {1, 1, 0, false, false}} {
		if _, err := New(r, cfg); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
}

func TestNewIsDeterministicPerSeed(t *testing.T) {
	cfg := Config{Inputs: 4, Gates: 30, Outputs: 2, Luts: true}
	a, err := New(rand.New(rand.NewSource(7)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(rand.New(rand.NewSource(7)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumGates() != b.NumGates() {
		t.Error("same seed produced different netlists")
	}
	for id := 0; id < a.NumGates(); id++ {
		if a.Gate(id).Type != b.Gate(id).Type {
			t.Fatalf("gate %d type differs", id)
		}
	}
}
