// Package extract reverse engineers the irreducible polynomial P(x) of a
// gate-level GF(2^m) multiplier — Algorithm 2 of the paper — and verifies
// the result against a golden specification.
//
// The key fact (Theorem 3): the first out-field product set
// P_m = { a_i·b_j : i+j = m } is the coefficient s_m of x^m in the raw
// product A(x)·B(x); field reduction maps s_m·x^m to s_m·P'(x) with
// P(x) = x^m + P'(x). Hence x^i belongs to P(x) (i < m) exactly when every
// product of P_m appears in the canonical ANF of output bit z_i, and x^m is
// always present. Monomials from distinct partial-product sums s_k never
// collide (a_i·b_j lives only in s_{i+j}), so the membership test is exact
// regardless of how higher s_k fold in.
//
// Verification builds the specification ANF of every output bit directly
// from the recovered P(x) — the "golden implementation constructed using the
// extracted irreducible polynomial" of the paper — and compares it with the
// extracted ANF. ANF is canonical, so this comparison is a complete
// equivalence check, not a sampling test; a random-simulation cross-check is
// available separately for defense in depth.
package extract

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"regexp"
	"strconv"
	"strings"
	"time"

	"github.com/galoisfield/gfre/internal/anf"
	"github.com/galoisfield/gfre/internal/checkpoint"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlint"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/obs"
	"github.com/galoisfield/gfre/internal/rewrite"
)

// Sentinel errors; use errors.Is against them.
var (
	// ErrNotMultiplier means the netlist's output expressions do not carry
	// the out-field product set the way any GF(2^m) multiplier must.
	ErrNotMultiplier = errors.New("extract: netlist does not look like a GF(2^m) multiplier")
	// ErrNotIrreducible means a candidate P(x) was recovered but is
	// reducible, so the netlist cannot be a field multiplier for it.
	ErrNotIrreducible = errors.New("extract: recovered polynomial is not irreducible")
	// ErrMismatch means the netlist function deviates from the golden
	// specification built from the recovered P(x) (a bug or a tampered
	// design).
	ErrMismatch = errors.New("extract: netlist does not match golden specification")
	// ErrBadPorts means operand inputs could not be identified.
	ErrBadPorts = errors.New("extract: cannot identify multiplier operand ports")
)

// Options configures extraction.
type Options struct {
	// Threads is the rewriting worker-pool size (0 = GOMAXPROCS).
	Threads int
	// PrefixA/PrefixB are the input-name prefixes of the two operands.
	// Defaults: "a" and "b". When names don't parse, the first m inputs are
	// taken as operand A and the next m as operand B, in port order.
	PrefixA, PrefixB string
	// SkipVerify skips the golden-model equivalence check (extraction only,
	// as in the paper's runtime tables). The diagnosis path (Tolerate > 0
	// or Diagnose) ignores it: consensus arbitration IS the verification.
	SkipVerify bool
	// Recorder receives telemetry for the whole pipeline: the cone-sort /
	// rewrite / extract / golden-model / verify phase spans, per-bit
	// rewriting events, and the metrics registry. nil disables
	// instrumentation at negligible cost.
	Recorder *obs.Recorder

	// Ctx cancels the whole extraction cooperatively. nil = Background.
	Ctx context.Context
	// ConeDeadline bounds the wall time of each output cone's rewriting;
	// see rewrite.Options.ConeDeadline.
	ConeDeadline time.Duration
	// BudgetTerms caps the live terms per cone; see
	// rewrite.Options.BudgetTerms. Exceeding it surfaces as
	// rewrite.ErrBudgetExceeded (strict path) or a failed cone the
	// diagnosis path can tolerate.
	BudgetTerms int
	// Tolerate enables consensus extraction: up to this many output cones
	// may fail (budget/timeout/panic) or disagree with the recovered P(x)
	// (tampering) while extraction still succeeds. 0 keeps the paper's
	// strict all-or-nothing behavior.
	Tolerate int
	// Diagnose requests a full Diagnosis (per-bit states plus the ranked
	// suspect-gate set) even when Tolerate is 0.
	Diagnose bool

	// Checkpoint, when non-nil, persists per-cone rewriting progress into
	// the manager's directory as the run proceeds, so a crash or interrupt
	// loses at most the in-flight cones. See package checkpoint.
	Checkpoint *checkpoint.Manager
	// Resume restores completed cones from the manager's snapshot (content
	// hash validated against the netlist) before rewriting starts; only
	// pending or failed cones are re-rewritten, and the reused count is
	// surfaced in Extraction.Rewrite.Reused. Without a snapshot on disk
	// the run simply starts cold.
	Resume bool

	// Preflight runs the netlint static analyzer before rewriting starts.
	// Error-level findings (cycle-adjacent damage, impossible I/O shape,
	// unparseable structure) abort with an error wrapping
	// netlint.ErrFindings; the report rides back on Extraction.Lint either
	// way. On a clean pass the cone-cost predictor fills BudgetTerms and
	// ConeDeadline when the caller left them at zero.
	Preflight bool
}

// governedRewriteOptions translates the extraction options into the rewrite
// engine's governance knobs. keepPartial is set on the diagnosis path, where
// failed cones are data rather than fatal.
func (o Options) governedRewriteOptions(keepPartial bool) rewrite.Options {
	ro := rewrite.Options{
		Threads: o.Threads, Recorder: o.Recorder,
		Ctx: o.Ctx, ConeDeadline: o.ConeDeadline, BudgetTerms: o.BudgetTerms,
	}
	if keepPartial {
		ro.KeepPartial = true
		ro.MaxFailures = o.Tolerate
	}
	return ro
}

// Extraction is the result of reverse engineering a multiplier netlist.
type Extraction struct {
	// P is the recovered irreducible polynomial.
	P gf2poly.Poly
	// M is the field extension degree (= number of output bits).
	M int
	// AInputs, BInputs hold the operand input gate IDs, LSB first.
	AInputs, BInputs []int
	// Rewrite carries the per-bit expressions and cost statistics.
	Rewrite *rewrite.Result
	// Verified records whether the golden-model check ran and passed.
	Verified bool
	// Diag carries the fault diagnosis when extraction ran with
	// Options.Tolerate > 0 or Options.Diagnose; nil on the strict path.
	Diag *Diagnosis
	// Lint carries the preflight static-analysis report when extraction ran
	// with Options.Preflight; nil otherwise.
	Lint *netlint.Report
}

var portRe = regexp.MustCompile(`^([A-Za-z_]+?)\[?(\d+)\]?$`)

// identifyPorts splits the primary inputs into the two m-bit operands.
func identifyPorts(n *netlist.Netlist, m int, prefixA, prefixB string) (a, b []int, err error) {
	ins := n.Inputs()
	if len(ins) != 2*m {
		return nil, nil, fmt.Errorf("%w: %d inputs for %d outputs (want 2m)", ErrBadPorts, len(ins), m)
	}
	a = make([]int, m)
	b = make([]int, m)
	found := 0
	seen := map[string]bool{}
	for _, id := range ins {
		match := portRe.FindStringSubmatch(n.NameOf(id))
		if match == nil {
			continue
		}
		idx, aerr := strconv.Atoi(match[2])
		if aerr != nil || idx < 0 || idx >= m {
			continue
		}
		var dst []int
		switch match[1] {
		case prefixA:
			dst = a
		case prefixB:
			dst = b
		default:
			continue
		}
		key := match[1] + match[2]
		if seen[key] {
			continue
		}
		seen[key] = true
		dst[idx] = id
		found++
	}
	if found == 2*m {
		return a, b, nil
	}
	// Fall back to positional split.
	copy(a, ins[:m])
	copy(b, ins[m:])
	return a, b, nil
}

// outFieldProducts returns the monomial set P_m = {a_i·b_j : i+j = m}.
func outFieldProducts(a, b []int) []anf.Mono {
	m := len(a)
	ms := make([]anf.Mono, 0, m-1)
	for i := 1; i < m; i++ {
		ms = append(ms, anf.NewMono(anf.Var(a[i]), anf.Var(b[m-i])))
	}
	return ms
}

// IrreduciblePolynomial reverse engineers P(x) from a multiplier netlist.
// The number of primary outputs determines m; inputs must be the two m-bit
// operands.
//
// With Options.Tolerate > 0 or Options.Diagnose the call is routed through
// the fault-tolerant consensus path (see Diagnose); otherwise any failed
// cone or deviating bit is fatal, as in the paper.
func IrreduciblePolynomial(n *netlist.Netlist, opts Options) (ext *Extraction, err error) {
	if opts.Tolerate > 0 || opts.Diagnose {
		ext, _, err := Diagnose(n, opts)
		return ext, err
	}
	if opts.PrefixA == "" {
		opts.PrefixA = "a"
	}
	if opts.PrefixB == "" {
		opts.PrefixB = "b"
	}
	m := len(n.Outputs())
	if m < 2 {
		return nil, fmt.Errorf("%w: %d outputs", ErrNotMultiplier, m)
	}
	// The extraction root span: every phase below (preflight, rewrite with
	// its per-cone children, extract, golden-model, verify) nests under it,
	// so a trace tree reconstructs the whole pipeline from one job.
	root := opts.Recorder.StartSpan("extraction", map[string]int64{"m": int64(m)})
	defer func() {
		if err != nil {
			root.SetStatus("error")
		}
		root.End()
	}()
	lint, err := preflight(n, &opts)
	if err != nil {
		return &Extraction{M: m, Lint: lint}, err
	}
	a, b, err := identifyPorts(n, m, opts.PrefixA, opts.PrefixB)
	if err != nil {
		return nil, err
	}

	rw, err := rewriteCheckpointed(n, opts, false)
	if err != nil {
		return nil, err
	}
	ext = &Extraction{M: m, AInputs: a, BInputs: b, Rewrite: rw, Lint: lint}

	// Note: the out-field product set {a_i·b_j : i+j=m} is invariant under
	// swapping the two operands (monomials are unordered), so extraction is
	// insensitive to which operand is which — only the bit order within each
	// operand matters.
	span := opts.Recorder.StartSpan("extract", map[string]int64{"m": int64(m)})
	ext.P, err = FromExpressions(rw, a, b)
	span.End()
	if err != nil {
		return nil, err
	}
	if err := finalizeCheckpoint(opts, ext); err != nil {
		return ext, err
	}

	if !opts.SkipVerify {
		if err := verifyObserved(n, ext, opts.Recorder); err != nil {
			return ext, err
		}
		ext.Verified = true
	}
	return ext, nil
}

// FromExpressions runs Algorithm 2 on already-rewritten output expressions:
// P(x) = x^m + Σ { x^i : P_m ⊆ EXP_i }.
func FromExpressions(rw *rewrite.Result, a, b []int) (gf2poly.Poly, error) {
	m := len(rw.Bits)
	pm := outFieldProducts(a, b)
	p := gf2poly.Monomial(m)
	for i, br := range rw.Bits {
		if br.Expr.ContainsAll(pm) {
			p = p.Add(gf2poly.Monomial(i))
		}
	}
	// Any irreducible polynomial has the constant term x^0; its absence
	// means the out-field products never landed where a field reduction
	// would put them.
	if p.Coeff(0) != 1 {
		return gf2poly.Poly{}, fmt.Errorf("%w: out-field product set missing from output bit 0", ErrNotMultiplier)
	}
	if !p.Irreducible() {
		return gf2poly.Poly{}, fmt.Errorf("%w: %v factors as %s", ErrNotIrreducible, p, factorString(p))
	}
	return p, nil
}

// factorString renders the irreducible factorization of p for diagnostics,
// e.g. "(x+1)^2·(x^2+x+1)".
func factorString(p gf2poly.Poly) string {
	var parts []string
	for _, f := range p.Factorize(rand.New(rand.NewSource(1))) {
		s := "(" + f.P.String() + ")"
		if f.Mult > 1 {
			s += fmt.Sprintf("^%d", f.Mult)
		}
		parts = append(parts, s)
	}
	if len(parts) == 0 {
		return p.String()
	}
	return strings.Join(parts, "·")
}

// SpecificationANF returns the golden ANF of output bit c of a GF(2^m)
// multiplier with polynomial p over the given operand input IDs:
// Σ_k [x^k mod p has coefficient c] · s_k, with s_k = Σ_{i+j=k} a_i·b_j.
func SpecificationANF(p gf2poly.Poly, a, b []int, c int) anf.Poly {
	m := p.Deg()
	spec := anf.NewPoly()
	for k := 0; k <= 2*m-2; k++ {
		red := gf2poly.Monomial(k).Mod(p)
		if red.Coeff(c) != 1 {
			continue
		}
		for i := 0; i < m; i++ {
			j := k - i
			if j < 0 || j >= m {
				continue
			}
			spec.Toggle(anf.NewMono(anf.Var(a[i]), anf.Var(b[j])))
		}
	}
	return spec
}

// Verify compares every extracted output expression with the golden
// specification derived from ext.P — a complete equivalence check thanks to
// ANF canonicity. On failure it returns ErrMismatch wrapped with the list of
// deviating bits, which is how tampered (trojaned) multipliers surface.
func Verify(n *netlist.Netlist, ext *Extraction) error {
	return verifyObserved(n, ext, nil)
}

// verifyObserved is Verify with the golden-model build and the canonical
// comparison bracketed in separate phase spans.
func verifyObserved(n *netlist.Netlist, ext *Extraction, rec *obs.Recorder) error {
	span := rec.StartSpan("golden-model", map[string]int64{"bits": int64(len(ext.Rewrite.Bits))})
	specs := make([]anf.Poly, len(ext.Rewrite.Bits))
	for c := range ext.Rewrite.Bits {
		specs[c] = SpecificationANF(ext.P, ext.AInputs, ext.BInputs, c)
	}
	span.End()

	span = rec.StartSpan("verify", nil)
	var bad []int
	for c, br := range ext.Rewrite.Bits {
		if !br.Expr.Equal(specs[c]) {
			bad = append(bad, c)
		}
	}
	span.End()
	if len(bad) > 0 {
		return fmt.Errorf("%w: output bits %v deviate from GF(2^%d) multiplication mod %v",
			ErrMismatch, bad, ext.M, ext.P)
	}
	return nil
}

// SimulationCrossCheck simulates the netlist against software field
// multiplication mod ext.P on trials×64 random vectors. It complements the
// formal Verify as an end-to-end sanity path that does not depend on the
// rewriting engine at all.
func SimulationCrossCheck(n *netlist.Netlist, ext *Extraction, trials int, seed int64) error {
	m := ext.M
	ins := n.Inputs()
	pos := make(map[int]int, len(ins)) // gate ID -> input word index
	for i, id := range ins {
		pos[id] = i
	}
	r := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		words := make([]uint64, len(ins))
		for i := range words {
			words[i] = r.Uint64()
		}
		vals, err := n.Simulate(words)
		if err != nil {
			return err
		}
		outs := n.OutputWords(vals)
		for lane := 0; lane < 64; lane++ {
			var aTerms, bTerms []int
			for i := 0; i < m; i++ {
				if words[pos[ext.AInputs[i]]]>>uint(lane)&1 == 1 {
					aTerms = append(aTerms, i)
				}
				if words[pos[ext.BInputs[i]]]>>uint(lane)&1 == 1 {
					bTerms = append(bTerms, i)
				}
			}
			av := gf2poly.FromTerms(aTerms...)
			bv := gf2poly.FromTerms(bTerms...)
			want := av.MulMod(bv, ext.P)
			for c := 0; c < m; c++ {
				got := outs[c]>>uint(lane)&1 == 1
				if got != (want.Coeff(c) == 1) {
					return fmt.Errorf("%w: simulation deviates at trial %d lane %d bit %d",
						ErrMismatch, trial, lane, c)
				}
			}
		}
	}
	return nil
}

// VerifyAgainst checks a netlist against a KNOWN irreducible polynomial —
// the classical verification problem (the paper's reference [1] setting,
// where P(x) is given). It rewrites the outputs and compares them with the
// golden specification for p; no extraction is involved, so it also works
// for netlists whose P(x) the caller obtained elsewhere.
func VerifyAgainst(n *netlist.Netlist, p gf2poly.Poly, opts Options) (ext *Extraction, err error) {
	if opts.PrefixA == "" {
		opts.PrefixA = "a"
	}
	if opts.PrefixB == "" {
		opts.PrefixB = "b"
	}
	m := len(n.Outputs())
	if p.Deg() != m {
		return nil, fmt.Errorf("extract: polynomial degree %d != output count %d", p.Deg(), m)
	}
	if !p.Irreducible() {
		return nil, fmt.Errorf("%w: %v factors as %s", ErrNotIrreducible, p, factorString(p))
	}
	root := opts.Recorder.StartSpan("extraction", map[string]int64{"m": int64(m)})
	defer func() {
		if err != nil {
			root.SetStatus("error")
		}
		root.End()
	}()
	lint, err := preflight(n, &opts)
	if err != nil {
		return &Extraction{M: m, Lint: lint}, err
	}
	a, b, err := identifyPorts(n, m, opts.PrefixA, opts.PrefixB)
	if err != nil {
		return nil, err
	}
	rw, err := rewriteCheckpointed(n, opts, false)
	if err != nil {
		return nil, err
	}
	ext = &Extraction{P: p, M: m, AInputs: a, BInputs: b, Rewrite: rw, Lint: lint}
	if err := verifyObserved(n, ext, opts.Recorder); err != nil {
		return ext, err
	}
	ext.Verified = true
	if err := finalizeCheckpoint(opts, ext); err != nil {
		return ext, err
	}
	return ext, nil
}
