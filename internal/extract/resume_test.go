package extract

import (
	"context"
	"errors"
	"testing"

	"github.com/galoisfield/gfre/internal/checkpoint"
	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/polytab"
	"github.com/galoisfield/gfre/internal/rewrite"
)

func TestExtractCheckpointLifecycle(t *testing.T) {
	p, err := polytab.Default(16)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(16, p)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	mgr := checkpoint.NewManager(dir, 0)

	ext, err := IrreduciblePolynomial(n, Options{Checkpoint: mgr})
	if err != nil {
		t.Fatal(err)
	}
	if !ext.P.Equal(p) {
		t.Fatalf("recovered %v, want %v", ext.P, p)
	}
	snap, err := checkpoint.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Complete || snap.P != p.String() {
		t.Fatalf("snapshot after success: complete=%v p=%q", snap.Complete, snap.P)
	}
	if snap.DoneCones() != 16 {
		t.Fatalf("snapshot has %d done cones, want 16", snap.DoneCones())
	}

	// A restarted process resuming the complete snapshot reuses every cone.
	ext2, err := IrreduciblePolynomial(n, Options{
		Checkpoint: checkpoint.NewManager(dir, 0), Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ext2.Rewrite.Reused != 16 {
		t.Fatalf("resumed run reused %d cones, want 16", ext2.Rewrite.Reused)
	}
	if !ext2.P.Equal(p) {
		t.Fatalf("resumed run recovered %v, want %v", ext2.P, p)
	}
}

func TestExtractResumeFromPartialSnapshot(t *testing.T) {
	p, err := polytab.Default(16)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(16, p)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a killed run: rewrite cold, then checkpoint only the first
	// seven cones — exactly what a mid-run snapshot on disk looks like.
	cold, err := rewrite.Outputs(n, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	mgr := checkpoint.NewManager(dir, 0)
	if err := mgr.Begin(n); err != nil {
		t.Fatal(err)
	}
	for _, br := range cold.Bits[:7] {
		mgr.Record(br)
	}
	if err := mgr.Sync(); err != nil {
		t.Fatal(err)
	}

	ext, err := IrreduciblePolynomial(n, Options{
		Checkpoint: checkpoint.NewManager(dir, 0), Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ext.Rewrite.Reused != 7 {
		t.Fatalf("reused %d cones, want 7", ext.Rewrite.Reused)
	}
	if !ext.P.Equal(p) {
		t.Fatalf("resumed extraction recovered %v, want %v", ext.P, p)
	}
	if !ext.Verified {
		t.Fatal("resumed extraction skipped verification")
	}
}

func TestExtractResumeRejectsForeignSnapshot(t *testing.T) {
	p, err := polytab.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	mast, err := gen.Mastrovito(8, p)
	if err != nil {
		t.Fatal(err)
	}
	mont, err := gen.Montgomery(8, p)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	mgr := checkpoint.NewManager(dir, 0)
	if err := mgr.Begin(mast); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Sync(); err != nil {
		t.Fatal(err)
	}
	_, err = IrreduciblePolynomial(mont, Options{
		Checkpoint: checkpoint.NewManager(dir, 0), Resume: true,
	})
	if !errors.Is(err, checkpoint.ErrCheckpoint) {
		t.Fatalf("foreign snapshot: got %v, want ErrCheckpoint", err)
	}
}

func TestExtractCancellationLeavesResumableSnapshot(t *testing.T) {
	p, err := polytab.Default(16)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(16, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run: every cone aborts, none complete
	dir := t.TempDir()
	_, err = IrreduciblePolynomial(n, Options{
		Checkpoint: checkpoint.NewManager(dir, 0), Ctx: ctx,
	})
	if err == nil {
		t.Fatal("cancelled extraction succeeded")
	}
	// The snapshot must exist and be loadable — the resume path of a run
	// interrupted before any cone finished is simply a cold start.
	snap, err := checkpoint.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Complete {
		t.Fatal("interrupted snapshot marked complete")
	}
	ext, err := IrreduciblePolynomial(n, Options{
		Checkpoint: checkpoint.NewManager(dir, 0), Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ext.P.Equal(p) {
		t.Fatalf("post-cancel resume recovered %v, want %v", ext.P, p)
	}
}
