package extract

import (
	"fmt"

	"github.com/galoisfield/gfre/internal/netlint"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/rewrite"
)

// Preflight exposes the static-analysis gate to out-of-package schedulers
// (the lease-based sharded extractor) that run the rewriting phase
// themselves. Behavior matches the in-package path: nil report when
// opts.Preflight is unset, error-level findings abort, and on a clean pass
// the cone-cost predictor fills any zero-valued governor knob in opts.
func Preflight(n *netlist.Netlist, opts *Options) (*netlint.Report, error) {
	return preflight(n, opts)
}

// FromRewriteResult assembles an Extraction from an already-computed
// rewrite result — the back half of IrreduciblePolynomial/Diagnose for
// callers that scheduled the per-cone rewriting externally (package shard).
// Routing mirrors the monolithic paths: Tolerate > 0, Diagnose, or any
// failed cone selects consensus extraction with localization; otherwise the
// strict Algorithm 2 path with the golden-model equivalence check runs.
//
// rw must have one entry per output bit of n. The checkpoint hooks in opts
// apply only to finalization here (the scheduler owns per-cone recording).
func FromRewriteResult(n *netlist.Netlist, rw *rewrite.Result, opts Options) (*Extraction, *Diagnosis, error) {
	if opts.PrefixA == "" {
		opts.PrefixA = "a"
	}
	if opts.PrefixB == "" {
		opts.PrefixB = "b"
	}
	m := len(n.Outputs())
	if m < 2 {
		return nil, nil, errNotMultiplierOutputs(m)
	}
	a, b, err := identifyPorts(n, m, opts.PrefixA, opts.PrefixB)
	if err != nil {
		return nil, nil, err
	}
	if opts.Tolerate > 0 || opts.Diagnose || len(rw.Failed) > 0 {
		return assembleConsensus(n, rw, a, b, opts)
	}

	ext := &Extraction{M: m, AInputs: a, BInputs: b, Rewrite: rw}
	span := opts.Recorder.StartSpan("extract", map[string]int64{"m": int64(m)})
	ext.P, err = FromExpressions(rw, a, b)
	span.End()
	if err != nil {
		return nil, nil, err
	}
	if err := finalizeCheckpoint(opts, ext); err != nil {
		return ext, nil, err
	}
	if !opts.SkipVerify {
		if err := verifyObserved(n, ext, opts.Recorder); err != nil {
			return ext, nil, err
		}
		ext.Verified = true
	}
	return ext, nil, nil
}

// assembleConsensus is the fault-tolerant back half: per-bit verdicts,
// consensus arbitration, tampering marks and localization, exactly as in
// Diagnose after its rewriting phase.
func assembleConsensus(n *netlist.Netlist, rw *rewrite.Result, a, b []int, opts Options) (*Extraction, *Diagnosis, error) {
	m := len(rw.Bits)
	diag := &Diagnosis{Tolerate: opts.Tolerate}
	diag.Bits = bitDiagnoses(rw)
	diag.FailedCones = append([]int(nil), rw.Failed...)
	ext := &Extraction{M: m, AInputs: a, BInputs: b, Rewrite: rw, Diag: diag}

	rec := opts.Recorder
	span := rec.StartSpan("consensus", map[string]int64{
		"m": int64(m), "tolerate": int64(opts.Tolerate), "failed": int64(len(rw.Failed)),
	})
	p, tampered, tried, err := consensusP(rw, a, b, opts.Tolerate)
	span.End()
	diag.CandidatesTried = tried
	if err != nil {
		return ext, diag, err
	}
	ext.P = p
	diag.P = p.String()
	diag.Recovered = true
	diag.Tampered = tampered
	for _, i := range tampered {
		diag.Bits[i].State = BitTampered
	}
	diag.Faults = len(rw.Failed) + len(tampered)
	if diag.Faults == 0 {
		ext.Verified = true
		if err := finalizeCheckpoint(opts, ext); err != nil {
			return ext, diag, err
		}
		return ext, diag, nil
	}
	span = rec.StartSpan("localize", map[string]int64{"deviating": int64(diag.Faults)})
	diag.Suspects = localize(n, ext, diag)
	span.End()
	if err := finalizeCheckpoint(opts, ext); err != nil {
		return ext, diag, err
	}
	return ext, diag, nil
}

func errNotMultiplierOutputs(m int) error {
	return fmt.Errorf("%w: %d outputs", ErrNotMultiplier, m)
}
