package extract

import (
	"testing"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/obs"
	"github.com/galoisfield/gfre/internal/polytab"
)

// TestExtractPhaseSpans: a full verified extraction must record the whole
// pipeline's phase breakdown — cone-sort, rewrite, extract, golden-model and
// verify — and leave one bit_start/bit_finish pair per output bit in the
// event stream.
func TestExtractPhaseSpans(t *testing.T) {
	p, err := polytab.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(8, p)
	if err != nil {
		t.Fatal(err)
	}
	mem := obs.NewMemorySink()
	rec := obs.NewRecorder(mem)
	ext, err := IrreduciblePolynomial(n, Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !ext.Verified {
		t.Fatal("verification should have run")
	}

	got := map[string]int{}
	for _, sp := range rec.Spans() {
		got[sp.Name]++
	}
	for _, phase := range []string{"cone-sort", "rewrite", "extract", "golden-model", "verify"} {
		if got[phase] != 1 {
			t.Errorf("phase %q recorded %d times, want 1 (all: %v)", phase, got[phase], got)
		}
	}

	if starts := mem.ByType(obs.EvBitStart); len(starts) != ext.M {
		t.Errorf("bit_start events %d, want %d", len(starts), ext.M)
	}
	if fins := mem.ByType(obs.EvBitFinish); len(fins) != ext.M {
		t.Errorf("bit_finish events %d, want %d", len(fins), ext.M)
	}
	if s := rec.Snapshot(); s.Counters["bits_done"] != int64(ext.M) {
		t.Errorf("bits_done = %d, want %d", s.Counters["bits_done"], ext.M)
	}

	// SkipVerify must suppress the golden-model and verify spans.
	rec2 := obs.NewRecorder()
	if _, err := IrreduciblePolynomial(n, Options{Recorder: rec2, SkipVerify: true}); err != nil {
		t.Fatal(err)
	}
	for _, sp := range rec2.Spans() {
		if sp.Name == "golden-model" || sp.Name == "verify" {
			t.Errorf("span %q recorded despite SkipVerify", sp.Name)
		}
	}
}
