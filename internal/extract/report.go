package extract

import (
	"fmt"
	"strings"
	"time"

	"github.com/galoisfield/gfre/internal/gf2m"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlint"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/polytab"
)

// Report renders a human-readable analysis of an extraction: the recovered
// polynomial, its class (trinomial/pentanomial), whether it is a known
// standard choice, primitivity (for fields small enough to factor the group
// order), and aggregate rewriting cost. Intended for audit logs; the CLI's
// default output is a shorter subset.
func Report(n *netlist.Netlist, ext *Extraction) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "design:      %s (%d equations, %d outputs)\n",
		n.Name, n.NumEquations(), len(n.Outputs()))
	fmt.Fprintf(&sb, "field:       GF(2^%d)\n", ext.M)
	fmt.Fprintf(&sb, "polynomial:  P(x) = %v\n", ext.P)

	class := fmt.Sprintf("weight-%d", ext.P.Weight())
	switch ext.P.Weight() {
	case 3:
		class = "trinomial"
	case 5:
		class = "pentanomial"
	}
	fmt.Fprintf(&sb, "class:       %s", class)
	if std, ok := polytab.NIST[ext.M]; ok && std.Equal(ext.P) {
		fmt.Fprintf(&sb, ", NIST-recommended for GF(2^%d)", ext.M)
	}
	for _, ap := range polytab.Arch233 {
		if ap.P.Equal(ext.P) && ap.Arch != "NIST-recommended" {
			fmt.Fprintf(&sb, ", Scott-optimal for %s", ap.Arch)
		}
	}
	sb.WriteByte('\n')

	if ext.M <= 63 {
		if f, err := gf2m.New(ext.P); err == nil {
			if gen, err := f.IsGenerator(gf2poly.X()); err == nil {
				if gen {
					fmt.Fprintf(&sb, "primitive:   yes (x generates the multiplicative group)\n")
				} else {
					ord, _ := f.ElementOrder(gf2poly.X())
					fmt.Fprintf(&sb, "primitive:   no (ord(x) = %d of %d)\n", ord, uint64(1)<<uint(ext.M)-1)
				}
			}
		}
	}

	if ext.Verified {
		fmt.Fprintf(&sb, "verified:    yes — netlist ≡ A·B mod P(x) for all inputs (canonical ANF)\n")
	} else {
		fmt.Fprintf(&sb, "verified:    no (verification skipped)\n")
	}
	if rw := ext.Rewrite; rw != nil {
		fmt.Fprintf(&sb, "rewriting:   %d substitutions, peak %d terms, %v wall (%d threads)\n",
			rw.TotalSubstitutions(), rw.PeakTerms(), rw.Runtime.Round(time.Millisecond), rw.Threads)
	}
	if l := ext.Lint; l != nil {
		counts := l.Counts()
		fmt.Fprintf(&sb, "lint:        %d error(s), %d warning(s), %d info; architecture %s (%.2f)\n",
			counts[netlint.SevError], counts[netlint.SevWarn], counts[netlint.SevInfo],
			l.Fingerprint.Class, l.Fingerprint.Confidence)
		if rw := ext.Rewrite; rw != nil && l.MaxPredictedPeak() > 0 {
			fmt.Fprintf(&sb, "  cone cost: predicted peak %d terms vs actual %d (suggested budget %d)\n",
				l.MaxPredictedPeak(), rw.PeakTerms(), l.SuggestedBudgetTerms)
		}
	}
	if d := ext.Diag; d != nil {
		switch {
		case d.Faults == 0:
			fmt.Fprintf(&sb, "diagnosis:   healthy — all %d cones agree with P(x) (tolerance %d unused)\n",
				len(d.Bits), d.Tolerate)
		case d.Recovered:
			fmt.Fprintf(&sb, "diagnosis:   recovered by consensus over %d faults (%d tampered, %d failed cones), %d candidates tried\n",
				d.Faults, len(d.Tampered), len(d.FailedCones), d.CandidatesTried)
		default:
			fmt.Fprintf(&sb, "diagnosis:   FAILED — %d faults exceed tolerance %d (%d candidates tried)\n",
				d.Faults, d.Tolerate, d.CandidatesTried)
		}
		for _, bd := range d.Bits {
			if bd.State == BitOK {
				continue
			}
			fmt.Fprintf(&sb, "  bit %3d (%s): %s", bd.Bit, bd.Name, bd.State)
			if bd.Detail != "" {
				fmt.Fprintf(&sb, " — %s", bd.Detail)
			}
			sb.WriteByte('\n')
		}
		for i, s := range d.Suspects {
			if i >= 5 {
				fmt.Fprintf(&sb, "  ... and %d more suspects\n", len(d.Suspects)-i)
				break
			}
			fmt.Fprintf(&sb, "  suspect #%d: gate %d (%s), correct-rate %.2f, structural %+.2f\n",
				i+1, s.Gate, s.Name, s.CorrectRate, s.Structural)
		}
	}
	return sb.String()
}
