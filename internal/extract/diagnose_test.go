package extract

import (
	"errors"
	"testing"

	"github.com/galoisfield/gfre/internal/anf"
	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/rewrite"
)

var p8 = gf2poly.MustParse("x^8+x^4+x^3+x+1")

// rewriteMultiplier builds a multiplier, rewrites it and returns the pieces
// the consensus machinery consumes.
func rewriteMultiplier(t *testing.T, m int, p gf2poly.Poly) (*netlist.Netlist, *rewrite.Result, []int, []int) {
	t.Helper()
	n, err := gen.Mastrovito(m, p)
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := identifyPorts(n, m, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	rw, err := rewrite.Outputs(n, rewrite.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	return n, rw, a, b
}

func TestDiagnoseCleanRun(t *testing.T) {
	n, err := gen.Mastrovito(8, p8)
	if err != nil {
		t.Fatal(err)
	}
	// Tolerate > 0 routes IrreduciblePolynomial through the consensus path;
	// a healthy netlist must come back fully verified with zero faults.
	ext, err := IrreduciblePolynomial(n, Options{Tolerate: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !ext.P.Equal(p8) {
		t.Fatalf("P = %v, want %v", ext.P, p8)
	}
	if !ext.Verified {
		t.Error("clean diagnosis run must end verified")
	}
	if ext.Diag == nil || ext.Diag.Faults != 0 || !ext.Diag.Recovered {
		t.Fatalf("diagnosis = %+v, want recovered with 0 faults", ext.Diag)
	}
	if len(ext.Diag.Suspects) != 0 {
		t.Errorf("clean run produced %d suspects", len(ext.Diag.Suspects))
	}
}

func TestConsensusToleratesFailedCones(t *testing.T) {
	_, rw, a, b := rewriteMultiplier(t, 8, p8)
	// Simulate two cones lost to the resource governor.
	for _, bit := range []int{2, 5} {
		rw.Bits[bit] = rewrite.BitResult{
			BitStats: rw.Bits[bit].BitStats,
			Status:   rewrite.StatusBudget, Err: "budget exceeded",
		}
	}
	rw.Failed = []int{2, 5}

	p, tampered, _, err := consensusP(rw, a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(p8) {
		t.Fatalf("consensus P = %v, want %v (coefficients of failed bits must be re-derived)", p, p8)
	}
	if len(tampered) != 0 {
		t.Errorf("tampered = %v, want none", tampered)
	}
}

func TestConsensusOverridesCorruptedVote(t *testing.T) {
	// Delete one out-field product from bit 4 (P has the x^4 term): the
	// bit's Algorithm 2 vote flips while all its monomials stay bilinear.
	// The s_m completeness screen must flag the bit and consensus must
	// restore the coefficient, reporting the bit as tampered.
	_, rw, a, b := rewriteMultiplier(t, 8, p8)
	mono := anf.NewMono(anf.Var(a[1]), anf.Var(b[7]))
	if !rw.Bits[4].Expr.Contains(mono) {
		t.Fatal("test premise: bit 4 must contain the out-field product a1*b7")
	}
	rw.Bits[4].Expr.Toggle(mono)

	p, tampered, _, err := consensusP(rw, a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(p8) {
		t.Fatalf("consensus P = %v, want %v", p, p8)
	}
	if len(tampered) != 1 || tampered[0] != 4 {
		t.Fatalf("tampered = %v, want [4]", tampered)
	}
}

func TestConsensusZeroToleranceFails(t *testing.T) {
	_, rw, a, b := rewriteMultiplier(t, 8, p8)
	rw.Bits[4].Expr.Toggle(anf.NewMono(anf.Var(a[1]), anf.Var(b[7])))
	_, _, _, err := consensusP(rw, a, b, 0)
	if !errors.Is(err, ErrConsensus) {
		t.Fatalf("err = %v, want ErrConsensus at tolerance 0", err)
	}
}

// flipXorToOr rebuilds n with the k-th XOR gate replaced by OR — a classic
// single-gate hardware trojan (diffcheck has the production version; this
// local copy keeps the package dependency-free).
func flipXorToOr(t *testing.T, n *netlist.Netlist, k int) (*netlist.Netlist, int) {
	t.Helper()
	out := netlist.New(n.Name + "_troj")
	idmap := make([]int, n.NumGates())
	seen, flipped := 0, -1
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		var nid int
		var err error
		if g.Type == netlist.Input {
			nid, err = out.AddInput(n.NameOf(id))
		} else {
			typ := g.Type
			if typ == netlist.Xor {
				if seen == k {
					typ = netlist.Or
				}
				seen++
			}
			fanin := make([]int, len(g.Fanin))
			for i, f := range g.Fanin {
				fanin[i] = idmap[f]
			}
			nid, err = out.AddGate(typ, fanin...)
			if typ == netlist.Or && g.Type == netlist.Xor {
				flipped = nid
			}
		}
		if err != nil {
			t.Fatal(err)
		}
		idmap[id] = nid
	}
	outs := n.Outputs()
	names := n.OutputNames()
	for i, oid := range outs {
		if err := out.MarkOutput(names[i], idmap[oid]); err != nil {
			t.Fatal(err)
		}
	}
	if flipped < 0 {
		t.Fatalf("netlist has fewer than %d XORs", k+1)
	}
	return out, flipped
}

func TestDiagnoseLocalizesTrojan(t *testing.T) {
	// Matrix-form Mastrovito: private per-output cones, so the trojan
	// corrupts exactly one bit and localization must pin it down.
	n, err := gen.MastrovitoMatrix(8, p8)
	if err != nil {
		t.Fatal(err)
	}
	nx := 0
	for id := 0; id < n.NumGates(); id++ {
		if n.Gate(id).Type == netlist.Xor {
			nx++
		}
	}
	bad, planted := flipXorToOr(t, n, nx/2)

	ext, diag, err := Diagnose(bad, Options{Tolerate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ext.P.Equal(p8) {
		t.Fatalf("P = %v, want %v despite the trojan", ext.P, p8)
	}
	if len(diag.Tampered) != 1 {
		t.Fatalf("tampered = %v, want exactly one bit", diag.Tampered)
	}
	if len(diag.Suspects) == 0 {
		t.Fatal("no suspects reported")
	}
	// The planted gate, or a gate in its fanout cone, must be in the
	// suspect set (sensitization cannot distinguish a fault from its
	// always-sensitized downstream path — both repair the output).
	fanout := map[int]bool{}
	for _, id := range bad.FanoutCone(planted) {
		fanout[id] = true
	}
	hit := false
	for _, s := range diag.Suspects {
		if fanout[s.Gate] {
			hit = true
			break
		}
	}
	if !hit {
		t.Fatalf("no suspect inside the planted gate's fanout cone; planted %d, suspects %+v",
			planted, diag.Suspects[:min(5, len(diag.Suspects))])
	}
	// The top suspect must fully explain the fault.
	if diag.Suspects[0].CorrectRate < 1.0 {
		t.Errorf("top suspect CorrectRate = %v, want 1.0", diag.Suspects[0].CorrectRate)
	}
}

func TestDiagnoseBudgetFailedCone(t *testing.T) {
	// End-to-end: one cone lost to a tiny budget, consensus still recovers
	// P(x) and reports the cone as a budget fault.
	n, err := gen.MastrovitoMatrix(8, p8)
	if err != nil {
		t.Fatal(err)
	}
	// A budget below any real cone's final size but above the trivial ones
	// is hard to pick generically; instead use a per-cone deadline of zero
	// length on one thread... simplest reliable trigger: budget just below
	// the largest cone's peak.
	rw, err := rewrite.Outputs(n, rewrite.Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	peak := rw.PeakTerms()
	ext, diag, err := Diagnose(n, Options{Tolerate: 2, BudgetTerms: peak - 1, Threads: 1})
	if err != nil {
		t.Fatalf("Diagnose: %v (diag %+v)", err, diag)
	}
	if !ext.P.Equal(p8) {
		t.Fatalf("P = %v, want %v", ext.P, p8)
	}
	if len(diag.FailedCones) == 0 {
		t.Fatal("expected at least one budget-failed cone")
	}
	for _, bit := range diag.FailedCones {
		if st := diag.Bits[bit].State; st != BitBudget {
			t.Errorf("bit %d state = %q, want budget", bit, st)
		}
	}
}
