// Consensus extraction and trojan localization.
//
// Algorithm 2 decides each coefficient of P(x) from one output bit alone:
// x^i ∈ P(x) iff the out-field product set P_m appears in the ANF of z_i
// (Theorem 3). That per-bit independence means a damaged or tampered
// netlist does not have to kill extraction: every healthy bit casts a vote,
// failed cones abstain, and structurally suspicious bits may have their
// votes overridden. Candidate polynomials are arbitrated by the golden
// model: because ANF is canonical, the true P(x) deviates only on the
// actually-tampered bits, while a wrong P(x) rewrites the reduction network
// and deviates almost everywhere — a sharp separation.
//
// Localization exploits the same canonicity. The diff Expr_i + spec_i is
// the exact error function of bit i over the primary inputs; evaluating it
// bit-parallel yields the test vectors on which bit i misbehaves, and a
// suspect gate is one whose forced complement on exactly those vectors
// repairs the output (sensitization). Fanin-cone intersection over the
// deviating bits supplies the structural prior.
package extract

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"github.com/galoisfield/gfre/internal/anf"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/rewrite"
)

// ErrConsensus means no irreducible polynomial is consistent with the
// surviving output bits within the configured fault tolerance — either too
// much of the netlist is damaged or it is not a GF(2^m) multiplier.
var ErrConsensus = errors.New("extract: consensus extraction failed to determine P(x)")

// BitState classifies one output bit in a Diagnosis.
type BitState string

const (
	BitOK        BitState = "ok"        // cone completed and matches the recovered P(x)
	BitTampered  BitState = "tampered"  // cone completed but deviates from the golden model
	BitBudget    BitState = "budget"    // cone aborted by the term budget
	BitTimeout   BitState = "timeout"   // cone aborted by the per-cone deadline
	BitPanic     BitState = "panic"     // cone worker panicked (contained)
	BitCancelled BitState = "cancelled" // cone cancelled as collateral of another failure
	BitError     BitState = "error"     // any other cone failure
)

// BitDiagnosis is the per-output-bit verdict.
type BitDiagnosis struct {
	Bit    int      `json:"bit"`
	Name   string   `json:"name"`
	State  BitState `json:"state"`
	Detail string   `json:"detail,omitempty"` // cone error or deviation size
}

// Suspect is one candidate trojan location.
type Suspect struct {
	Gate int    `json:"gate"`
	Name string `json:"name,omitempty"`
	// CorrectRate is the fraction of deviating test vectors repaired by
	// forcing this gate's complement on exactly those vectors; 1.0 means
	// the fault is fully explained by a stuck inversion here or on its
	// sensitized path. -1 when flip simulation did not reach this gate
	// (e.g. it only appears in budget-failed cones).
	CorrectRate float64 `json:"correct_rate"`
	// Structural is the fanin-cone-intersection prior: the fraction of
	// deviating bits whose cone contains the gate minus the fraction of
	// healthy bits whose cone does.
	Structural float64 `json:"structural"`
	// TamperedCones / CleanCones count the cone memberships behind
	// Structural.
	TamperedCones int `json:"tampered_cones"`
	CleanCones    int `json:"clean_cones"`
}

// Diagnosis is the outcome of fault-tolerant extraction.
type Diagnosis struct {
	// P is the recovered polynomial (string form), "" when consensus
	// failed.
	P         string `json:"p,omitempty"`
	Recovered bool   `json:"recovered"`
	Tolerate  int    `json:"tolerate"`
	// Faults = failed cones + tampered bits; Recovered extractions with
	// Faults == 0 are fully verified.
	Faults      int            `json:"faults"`
	Tampered    []int          `json:"tampered,omitempty"`     // completed bits deviating from the golden model
	FailedCones []int          `json:"failed_cones,omitempty"` // bits whose cones never completed
	Bits        []BitDiagnosis `json:"bits"`
	// Suspects is the ranked candidate-trojan list; the planted gate or
	// its sensitized fanout ranks at the top (CorrectRate 1.0).
	Suspects []Suspect `json:"suspects,omitempty"`
	// CandidatesTried counts polynomial candidates arbitrated against the
	// golden model during consensus.
	CandidatesTried int `json:"candidates_tried"`
}

// maxFlipCoords bounds the candidate-coefficient search: the consensus
// enumerates subsets of at most this many uncertain coefficient positions
// (failed cones first, then structurally anomalous bits).
const maxFlipCoords = 16

// maxSuspects bounds the ranked suspect list in a Diagnosis.
const maxSuspects = 64

// Diagnose reverse engineers P(x) from a possibly damaged or trojaned
// multiplier netlist, tolerating up to opts.Tolerate failed or deviating
// output cones, and localizes the damage. It always returns a Diagnosis
// (even on error, with whatever was learned); the Extraction is non-nil
// whenever rewriting produced usable bits.
func Diagnose(n *netlist.Netlist, opts Options) (ext *Extraction, _ *Diagnosis, err error) {
	if opts.PrefixA == "" {
		opts.PrefixA = "a"
	}
	if opts.PrefixB == "" {
		opts.PrefixB = "b"
	}
	m := len(n.Outputs())
	diag := &Diagnosis{Tolerate: opts.Tolerate}
	if m < 2 {
		return nil, diag, fmt.Errorf("%w: %d outputs", ErrNotMultiplier, m)
	}
	// Root span for the fault-tolerant pipeline; same name as the strict
	// path so trace consumers see one "extraction" tree either way.
	root := opts.Recorder.StartSpan("extraction", map[string]int64{
		"m": int64(m), "tolerate": int64(opts.Tolerate),
	})
	defer func() {
		if err != nil {
			root.SetStatus("error")
		}
		root.End()
	}()
	lint, err := preflight(n, &opts)
	if err != nil {
		return &Extraction{M: m, Lint: lint}, diag, err
	}
	a, b, err := identifyPorts(n, m, opts.PrefixA, opts.PrefixB)
	if err != nil {
		return nil, diag, err
	}

	rw, rwErr := rewriteCheckpointed(n, opts, true)
	if rw != nil {
		diag.Bits = bitDiagnoses(rw)
		diag.FailedCones = append([]int(nil), rw.Failed...)
	}
	if rwErr != nil {
		// Run-level failure: tolerance exceeded, caller context ended, or
		// a structural error. The partial per-bit picture still tells the
		// operator which cones died and why.
		return nil, diag, rwErr
	}
	ext = &Extraction{M: m, AInputs: a, BInputs: b, Rewrite: rw, Diag: diag, Lint: lint}

	rec := opts.Recorder
	span := rec.StartSpan("consensus", map[string]int64{
		"m": int64(m), "tolerate": int64(opts.Tolerate), "failed": int64(len(rw.Failed)),
	})
	p, tampered, tried, err := consensusP(rw, a, b, opts.Tolerate)
	span.End()
	diag.CandidatesTried = tried
	if err != nil {
		return ext, diag, err
	}
	ext.P = p
	diag.P = p.String()
	diag.Recovered = true
	diag.Tampered = tampered
	for _, i := range tampered {
		diag.Bits[i].State = BitTampered
	}
	diag.Faults = len(rw.Failed) + len(tampered)
	if diag.Faults == 0 {
		ext.Verified = true
		if err := finalizeCheckpoint(opts, ext); err != nil {
			return ext, diag, err
		}
		return ext, diag, nil
	}

	span = rec.StartSpan("localize", map[string]int64{"deviating": int64(diag.Faults)})
	diag.Suspects = localize(n, ext, diag)
	span.End()
	if err := finalizeCheckpoint(opts, ext); err != nil {
		return ext, diag, err
	}
	return ext, diag, nil
}

// bitDiagnoses converts rewrite statuses into the per-bit verdicts;
// tampering verdicts are refined later, once P(x) is known.
func bitDiagnoses(rw *rewrite.Result) []BitDiagnosis {
	out := make([]BitDiagnosis, len(rw.Bits))
	for i, br := range rw.Bits {
		bd := BitDiagnosis{Bit: i, Name: br.Name, State: BitOK, Detail: br.Err}
		switch br.Status {
		case rewrite.StatusBudget:
			bd.State = BitBudget
		case rewrite.StatusTimeout:
			bd.State = BitTimeout
		case rewrite.StatusPanic:
			bd.State = BitPanic
		case rewrite.StatusCancelled:
			bd.State = BitCancelled
		default:
			if br.Status.Failed() {
				bd.State = BitError
			}
		}
		out[i] = bd
	}
	return out
}

// consensusP recovers P(x) by per-bit voting plus golden-model arbitration.
// It returns the polynomial, the completed bits that deviate from it
// (tampered), and the number of candidates tried.
func consensusP(rw *rewrite.Result, a, b []int, tol int) (gf2poly.Poly, []int, int, error) {
	m := len(rw.Bits)
	pm := outFieldProducts(a, b)
	failed := rw.Failed
	if len(failed) > tol {
		return gf2poly.Poly{}, nil, 0, fmt.Errorf("%w: %d cones failed, tolerate %d", ErrConsensus, len(failed), tol)
	}

	// Base candidate: x^m plus every completed bit's membership vote
	// (Algorithm 2 restricted to the surviving cones).
	base := gf2poly.Monomial(m)
	for i, br := range rw.Bits {
		if br.Status.Failed() {
			continue
		}
		if br.Expr.ContainsAll(pm) {
			base = base.Add(gf2poly.Monomial(i))
		}
	}

	// Uncertain coefficient positions: failed cones abstained, and
	// structurally anomalous bits may have voted under duress.
	coords := append([]int(nil), failed...)
	inCoords := map[int]bool{}
	for _, i := range coords {
		inCoords[i] = true
	}
	for _, i := range anomalousBits(rw, a, b) {
		if len(coords) >= maxFlipCoords {
			break
		}
		if !inCoords[i] {
			inCoords[i] = true
			coords = append(coords, i)
		}
	}

	// Arbitrate every candidate base ⊕ {x^i : i ∈ S}, S ⊆ coords, |S| ≤
	// tol, smallest subsets first. Feasible = irreducible and deviating on
	// at most tol - |failed| completed bits; a flipped completed
	// coefficient lands in the deviation set automatically, so the bound
	// covers it. Optimal = fewest total faults; two distinct optima mean
	// the surviving bits genuinely underdetermine P(x).
	allowance := tol - len(failed)
	type candidate struct {
		p      gf2poly.Poly
		dev    []int
		faults int
	}
	var best []candidate
	tried := 0
	maxPick := tol
	if maxPick > len(coords) {
		maxPick = len(coords)
	}
	for size := 0; size <= maxPick; size++ {
		forEachSubset(len(coords), size, func(pick []int) {
			p := base
			for _, ci := range pick {
				p = p.Add(gf2poly.Monomial(coords[ci]))
			}
			tried++
			if p.Coeff(0) != 1 || !p.Irreducible() {
				return
			}
			dev, ok := deviations(rw, a, b, p, allowance)
			if !ok {
				return
			}
			c := candidate{p: p, dev: dev, faults: len(failed) + len(dev)}
			switch {
			case len(best) == 0 || c.faults < best[0].faults:
				best = []candidate{c}
			case c.faults == best[0].faults:
				best = append(best, c)
			}
		})
	}
	if len(best) == 0 {
		return gf2poly.Poly{}, nil, tried, fmt.Errorf(
			"%w: no irreducible polynomial within tolerance %d (%d candidates tried)", ErrConsensus, tol, tried)
	}
	if len(best) > 1 {
		return gf2poly.Poly{}, nil, tried, fmt.Errorf(
			"%w: ambiguous — %d polynomials tie at %d faults (first two: %v, %v)",
			ErrConsensus, len(best), best[0].faults, best[0].p, best[1].p)
	}
	return best[0].p, best[0].dev, tried, nil
}

// forEachSubset calls fn with every size-k subset of {0..n-1}, in
// lexicographic order; pick is reused across calls.
func forEachSubset(n, k int, fn func(pick []int)) {
	pick := make([]int, k)
	var rec func(start, idx int)
	rec = func(start, idx int) {
		if idx == k {
			fn(pick)
			return
		}
		for i := start; i <= n-(k-idx); i++ {
			pick[idx] = i
			rec(i+1, idx+1)
		}
	}
	rec(0, 0)
}

// deviations compares every completed bit with the golden model for p,
// giving up once more than allowance bits deviate. The abort makes wrong
// candidates cheap: an incorrect P(x) rewrites the whole reduction network,
// so nearly every bit deviates and the scan stops after allowance+1 specs.
func deviations(rw *rewrite.Result, a, b []int, p gf2poly.Poly, allowance int) ([]int, bool) {
	var dev []int
	for i, br := range rw.Bits {
		if br.Status.Failed() {
			continue
		}
		if !br.Expr.Equal(SpecificationANF(p, a, b, i)) {
			dev = append(dev, i)
			if len(dev) > allowance {
				return nil, false
			}
		}
	}
	return dev, true
}

// anomalousBits flags completed bits whose ANF violates the structure every
// GF(2^m) multiplier output must have — without knowing P(x):
//
//   - every monomial is a bilinear a_j·b_k product;
//   - each partial-product sum s_k = Σ_{i+j=k} a_i·b_j appears either in
//     full or not at all (monomials from distinct s_k never collide, so
//     reduction folds whole sums — partial presence is impossible);
//   - the in-field sums are fixed: s_i present in full, s_k (k < m, k ≠ i)
//     absent (x^k needs no reduction below degree m).
//
// The completeness checks are what make vote corruption visible: deleting a
// single out-field product from a bit flips its Algorithm 2 vote while
// keeping every monomial bilinear, but leaves s_m partially present.
// Bits are returned most-violating first.
func anomalousBits(rw *rewrite.Result, a, b []int) []int {
	m := len(a)
	inA := make(map[anf.Var]bool, len(a))
	inB := make(map[anf.Var]bool, len(b))
	for _, id := range a {
		inA[anf.Var(id)] = true
	}
	for _, id := range b {
		inB[anf.Var(id)] = true
	}
	type anomaly struct{ bit, viol int }
	var anomalies []anomaly
	for i, br := range rw.Bits {
		if br.Status.Failed() {
			continue
		}
		viol := 0
		for _, mo := range br.Expr.Monos() {
			vars := mo.Vars()
			if len(vars) != 2 || !(inA[vars[0]] && inB[vars[1]] || inA[vars[1]] && inB[vars[0]]) {
				viol++
			}
		}
		for k := 0; k <= 2*m-2; k++ {
			have, total := 0, 0
			for j := 0; j < m; j++ {
				if k-j < 0 || k-j >= m {
					continue
				}
				total++
				if br.Expr.Contains(anf.NewMono(anf.Var(a[j]), anf.Var(b[k-j]))) {
					have++
				}
			}
			switch {
			case have != 0 && have != total:
				viol++
			case k == i && have != total:
				viol++
			case k < m && k != i && have != 0:
				viol++
			}
		}
		if viol > 0 {
			anomalies = append(anomalies, anomaly{i, viol})
		}
	}
	sort.Slice(anomalies, func(x, y int) bool {
		if anomalies[x].viol != anomalies[y].viol {
			return anomalies[x].viol > anomalies[y].viol
		}
		return anomalies[x].bit < anomalies[y].bit
	})
	out := make([]int, len(anomalies))
	for i, an := range anomalies {
		out[i] = an.bit
	}
	return out
}

// localizeTrials is the number of 64-vector simulation rounds used by the
// sensitization refinement.
const localizeTrials = 4

// localize ranks candidate trojan gates. Structural prior: a gate scores by
// appearing in deviating bits' fanin cones and not in healthy ones.
// Sensitization refinement: for each tampered bit the exact deviating test
// vectors come from evaluating the ANF diff, and each cone gate is force-
// complemented on precisely those vectors — gates on the fault's sensitized
// path repair all of them (CorrectRate 1.0).
func localize(n *netlist.Netlist, ext *Extraction, diag *Diagnosis) []Suspect {
	outs := n.Outputs()
	devBits := append(append([]int(nil), diag.Tampered...), diag.FailedCones...)
	var cleanBits []int
	for i, bd := range diag.Bits {
		if bd.State == BitOK {
			cleanBits = append(cleanBits, i)
		}
	}

	tHits := map[int]int{}
	coneBits := map[int][]int{} // gate -> deviating bits whose cone holds it
	for _, i := range devBits {
		for _, id := range n.Cone(outs[i]) {
			if t := n.Gate(id).Type; t != netlist.Input && t != netlist.Const0 && t != netlist.Const1 {
				tHits[id]++
				coneBits[id] = append(coneBits[id], i)
			}
		}
	}
	cHits := map[int]int{}
	for _, i := range cleanBits {
		for _, id := range n.Cone(outs[i]) {
			if _, ok := tHits[id]; ok {
				cHits[id]++
			}
		}
	}

	corrected := map[int]int{}
	attempted := map[int]int{}
	ins := n.Inputs()
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < localizeTrials; trial++ {
		words := make([]uint64, len(ins))
		wordOf := make(map[anf.Var]uint64, len(ins))
		for i, id := range ins {
			words[i] = r.Uint64()
			wordOf[anf.Var(id)] = words[i]
		}
		vals, err := n.Simulate(words)
		if err != nil {
			break
		}
		for _, bit := range diag.Tampered {
			br := ext.Rewrite.Bits[bit]
			diff := br.Expr.Add(SpecificationANF(ext.P, ext.AInputs, ext.BInputs, bit))
			mask := evalMask(diff, wordOf)
			if mask == 0 {
				continue // no deviating vector in this round
			}
			want := vals[outs[bit]] ^ mask // the spec's response on deviating lanes
			for _, id := range n.Cone(outs[bit]) {
				if _, ok := tHits[id]; !ok {
					continue
				}
				fv, err := n.SimulateXor(words, map[int]uint64{id: mask})
				if err != nil {
					continue
				}
				fixed := ^(fv[outs[bit]] ^ want) & mask
				corrected[id] += bits.OnesCount64(fixed)
				attempted[id] += bits.OnesCount64(mask)
			}
		}
	}

	suspects := make([]Suspect, 0, len(tHits))
	for id, th := range tHits {
		s := Suspect{Gate: id, Name: n.NameOf(id), TamperedCones: th, CleanCones: cHits[id], CorrectRate: -1}
		s.Structural = float64(th) / float64(len(devBits))
		if len(cleanBits) > 0 {
			s.Structural -= float64(cHits[id]) / float64(len(cleanBits))
		}
		if attempted[id] > 0 {
			s.CorrectRate = float64(corrected[id]) / float64(attempted[id])
		}
		suspects = append(suspects, s)
	}
	rank := func(x, y Suspect) bool {
		if x.CorrectRate != y.CorrectRate {
			return x.CorrectRate > y.CorrectRate
		}
		if x.Structural != y.Structural {
			return x.Structural > y.Structural
		}
		return x.Gate > y.Gate
	}
	sort.Slice(suspects, func(x, y int) bool { return rank(suspects[x], suspects[y]) })
	if len(suspects) > maxSuspects {
		// Cap with per-cone fairness: the sensitized spine of one large cone
		// can fill the whole list with CorrectRate-1.0 ties, hiding every
		// suspect of the other tampered cones. Each deviating cone keeps its
		// best few suspects first; the remainder fills in global rank order.
		quota := maxSuspects / len(devBits)
		if quota < 1 {
			quota = 1
		}
		taken := make(map[int]bool, maxSuspects)
		per := map[int]int{}
		var out []Suspect
		for _, s := range suspects {
			need := false
			for _, b := range coneBits[s.Gate] {
				if per[b] < quota {
					need = true
				}
			}
			if !need {
				continue
			}
			taken[s.Gate] = true
			for _, b := range coneBits[s.Gate] {
				per[b]++
			}
			out = append(out, s)
		}
		for _, s := range suspects {
			if len(out) >= maxSuspects {
				break
			}
			if !taken[s.Gate] {
				taken[s.Gate] = true
				out = append(out, s)
			}
		}
		sort.Slice(out, func(x, y int) bool { return rank(out[x], out[y]) })
		suspects = out
	}
	return suspects
}

// evalMask evaluates an ANF over primary inputs bit-parallel: each input
// variable carries 64 test vectors, the result word holds the polynomial's
// value on every lane.
func evalMask(p anf.Poly, wordOf map[anf.Var]uint64) uint64 {
	var acc uint64
	for _, mo := range p.Monos() {
		w := ^uint64(0)
		for _, v := range mo.Vars() {
			w &= wordOf[v]
		}
		acc ^= w
	}
	return acc
}
