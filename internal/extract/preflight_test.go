package extract

import (
	"errors"
	"testing"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/netlint"
	"github.com/galoisfield/gfre/internal/netlist"
)

func TestPreflightCleanAutoBudgets(t *testing.T) {
	n, err := gen.Mastrovito(8, p8)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := IrreduciblePolynomial(n, Options{Preflight: true})
	if err != nil {
		t.Fatalf("preflight extraction failed: %v", err)
	}
	if ext.Lint == nil {
		t.Fatal("Extraction.Lint not populated")
	}
	if ext.Lint.HasErrors() {
		t.Fatalf("clean design lint errors: %+v", ext.Lint.Findings)
	}
	if ext.Lint.SuggestedBudgetTerms <= 0 {
		t.Error("no suggested budget on clean design")
	}
	if !ext.Verified {
		t.Error("extraction not verified")
	}
	// The auto-filled budget must clear the real rewriting peak with room:
	// a governor abort here would mean the predictor under-budgets.
	if peak := ext.Rewrite.PeakTerms(); ext.Lint.SuggestedBudgetTerms <= peak {
		t.Errorf("suggested budget %d does not clear actual peak %d",
			ext.Lint.SuggestedBudgetTerms, peak)
	}
}

func TestPreflightRejectsNonMultiplier(t *testing.T) {
	// 3 inputs / 2 outputs: io-shape escalates to an error under preflight's
	// RequireMultiplier and the run must stop before any rewriting.
	n := netlist.New("odd")
	a, _ := n.AddInput("a0")
	b, _ := n.AddInput("a1")
	c, _ := n.AddInput("b0")
	x, _ := n.AddGate(netlist.Xor, a, b)
	y, _ := n.AddGate(netlist.And, b, c)
	n.MarkOutput("z0", x)
	n.MarkOutput("z1", y)

	ext, err := IrreduciblePolynomial(n, Options{Preflight: true})
	if !errors.Is(err, netlint.ErrFindings) {
		t.Fatalf("err = %v, want ErrFindings", err)
	}
	if ext == nil || ext.Lint == nil || !ext.Lint.HasErrors() {
		t.Fatalf("findings not surfaced on the extraction: %+v", ext)
	}
	if ext.Rewrite != nil {
		t.Error("rewriting ran despite failed preflight")
	}
}

func TestPreflightKeepsCallerBudget(t *testing.T) {
	n, err := gen.Mastrovito(8, p8)
	if err != nil {
		t.Fatal(err)
	}
	// An explicit (generous) budget must not be overridden by the predictor.
	const callerBudget = 1 << 20
	ext, err := IrreduciblePolynomial(n, Options{Preflight: true, BudgetTerms: callerBudget})
	if err != nil {
		t.Fatal(err)
	}
	if ext.Lint == nil {
		t.Fatal("lint report missing")
	}
	// Indirect check: suggested value differs from the caller's, and the run
	// still succeeded under the caller's choice.
	if ext.Lint.SuggestedBudgetTerms == callerBudget {
		t.Skip("predictor coincidentally matches caller budget")
	}
}

func TestPreflightDiagnosePath(t *testing.T) {
	n, err := gen.Mastrovito(8, p8)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := IrreduciblePolynomial(n, Options{Preflight: true, Tolerate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ext.Lint == nil {
		t.Fatal("diagnose path dropped the lint report")
	}
	if ext.Diag == nil {
		t.Fatal("diagnosis missing")
	}
}
