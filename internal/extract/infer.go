package extract

import (
	"fmt"
	"sort"

	"github.com/galoisfield/gfre/internal/anf"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/rewrite"
)

// Port inference recovers the multiplier's port mapping — which inputs form
// operand A vs B, the bit order within each operand, and the numeric order
// of the outputs — purely from the extracted ANF expressions. The paper
// assumes this mapping is known (its benchmarks use canonical a/b/z names);
// real third-party netlists are often anonymized or scrambled, which this
// extension handles.
//
// The structure that makes inference possible:
//
//   - every monomial of a multiplier's ANF is a product a_i·b_j of one bit
//     from each operand, and every (i,j) pair occurs somewhere, so the
//     monomial graph on inputs is the complete bipartite graph K_{m,m};
//     two-coloring it recovers the operand partition (A/B roles are
//     interchangeable — multiplication commutes);
//   - the product a_i·b_j lives only in the partial sum s_{i+j}; for
//     i+j < m, s_{i+j} feeds exactly output bit i+j, while for i+j >= m the
//     field reduction spreads it over the (normally several) nonzero
//     positions of x^(i+j) mod P. Hence bit index i of an A-input equals
//     the number of its pair-products whose occurrence set is not a
//     singleton — a_0 has none, a_{m-1} has m-1 — and symmetrically for B;
//   - with a_0 and the B order known, output z_k is the unique output
//     containing a_0·b_k.
//
// The counting argument assumes x^k mod P(x) has weight >= 2 for
// m <= k <= 2m-2, which holds unless the multiplicative order of x in the
// field is below 2m-1 (possible only for non-primitive P of special form);
// InferPorts detects the resulting ambiguity and reports it instead of
// guessing, and IrreduciblePolynomial verifies the inferred mapping against
// the golden model anyway.

// InferredPorts is a recovered port mapping.
type InferredPorts struct {
	// A, B hold operand input gate IDs, LSB first.
	A, B []int
	// OutputOrder maps logical bit k to the netlist output position that
	// carries z_k.
	OutputOrder []int
}

// InferPorts recovers the port mapping from rewritten output expressions.
func InferPorts(n *netlist.Netlist, rw *rewrite.Result) (*InferredPorts, error) {
	m := len(rw.Bits)
	ins := n.Inputs()
	// Dangling inputs (test pins, tied-off scan ports) are tolerated: only
	// the 2m inputs that actually appear in the output expressions matter.
	if len(ins) < 2*m {
		return nil, fmt.Errorf("%w: %d inputs for %d outputs (need at least 2m)", ErrBadPorts, len(ins), m)
	}

	// occ[mono] = set of output positions whose expression contains mono.
	occ := map[anf.Mono]map[int]struct{}{}
	partners := map[anf.Var]map[anf.Var]struct{}{}
	for pos, br := range rw.Bits {
		for _, mono := range br.Expr.Monos() {
			vars := mono.Vars()
			if len(vars) != 2 {
				return nil, fmt.Errorf("%w: output %d has a degree-%d monomial; multiplier ANF monomials are a_i·b_j",
					ErrNotMultiplier, pos, len(vars))
			}
			set := occ[mono]
			if set == nil {
				set = map[int]struct{}{}
				occ[mono] = set
			}
			set[pos] = struct{}{}
			u, v := vars[0], vars[1]
			if partners[u] == nil {
				partners[u] = map[anf.Var]struct{}{}
			}
			if partners[v] == nil {
				partners[v] = map[anf.Var]struct{}{}
			}
			partners[u][v] = struct{}{}
			partners[v][u] = struct{}{}
		}
	}
	if len(partners) != 2*m {
		return nil, fmt.Errorf("%w: %d inputs appear in the output expressions, want exactly %d",
			ErrNotMultiplier, len(partners), 2*m)
	}

	// Two-color the monomial graph to split the operands, starting from any
	// participating input (the first input port may be dangling).
	color := map[anf.Var]int{}
	var queue []anf.Var
	var start anf.Var
	for _, id := range ins {
		if _, ok := partners[anf.Var(id)]; ok {
			start = anf.Var(id)
			break
		}
	}
	color[start] = 0
	queue = append(queue, start)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := range partners[u] {
			if c, ok := color[v]; ok {
				if c == color[u] {
					return nil, fmt.Errorf("%w: monomial graph is not bipartite", ErrNotMultiplier)
				}
				continue
			}
			color[v] = 1 - color[u]
			queue = append(queue, v)
		}
	}
	if len(color) != 2*m {
		return nil, fmt.Errorf("%w: monomial graph is disconnected (%d of %d inputs reached)",
			ErrNotMultiplier, len(color), 2*m)
	}
	var sideA, sideB []anf.Var
	for v, c := range color {
		if c == 0 {
			sideA = append(sideA, v)
		} else {
			sideB = append(sideB, v)
		}
	}
	if len(sideA) != m || len(sideB) != m {
		return nil, fmt.Errorf("%w: operand split is %d/%d, want %d/%d",
			ErrNotMultiplier, len(sideA), len(sideB), m, m)
	}

	// Bit order: index of u = number of pair-products whose occurrence set
	// is not a singleton.
	orderSide := func(side []anf.Var) ([]anf.Var, error) {
		type scored struct {
			v     anf.Var
			multi int
		}
		scoredVars := make([]scored, 0, len(side))
		for _, u := range side {
			multi := 0
			for v := range partners[u] {
				if len(occ[anf.NewMono(u, v)]) > 1 {
					multi++
				}
			}
			scoredVars = append(scoredVars, scored{u, multi})
		}
		sort.Slice(scoredVars, func(i, j int) bool { return scoredVars[i].multi < scoredVars[j].multi })
		out := make([]anf.Var, len(scoredVars))
		for i, s := range scoredVars {
			if s.multi != i {
				return nil, fmt.Errorf("%w: ambiguous bit order (multi-count %d at rank %d; is P(x) of unusually low order?)",
					ErrBadPorts, s.multi, i)
			}
			out[i] = s.v
		}
		return out, nil
	}
	orderedA, err := orderSide(sideA)
	if err != nil {
		return nil, err
	}
	orderedB, err := orderSide(sideB)
	if err != nil {
		return nil, err
	}

	// Output order: z_k is the unique output containing a_0·b_k.
	outputOrder := make([]int, m)
	seen := map[int]bool{}
	for k := 0; k < m; k++ {
		set := occ[anf.NewMono(orderedA[0], orderedB[k])]
		if len(set) != 1 {
			return nil, fmt.Errorf("%w: a_0·b_%d appears in %d outputs, want 1", ErrBadPorts, k, len(set))
		}
		var pos int
		for p := range set {
			pos = p
		}
		if seen[pos] {
			return nil, fmt.Errorf("%w: output %d claimed by two bit positions", ErrBadPorts, pos)
		}
		seen[pos] = true
		outputOrder[k] = pos
	}

	ip := &InferredPorts{OutputOrder: outputOrder}
	for _, v := range orderedA {
		ip.A = append(ip.A, int(v))
	}
	for _, v := range orderedB {
		ip.B = append(ip.B, int(v))
	}
	return ip, nil
}

// ReorderBits returns a copy of rw with the bit slice permuted into logical
// order: element k of the result is the expression of z_k.
func (ip *InferredPorts) ReorderBits(rw *rewrite.Result) *rewrite.Result {
	out := &rewrite.Result{
		Bits:    make([]rewrite.BitResult, len(rw.Bits)),
		Runtime: rw.Runtime,
		Threads: rw.Threads,
	}
	for k, pos := range ip.OutputOrder {
		out.Bits[k] = rw.Bits[pos]
	}
	return out
}

// IrreduciblePolynomialInferred reverse engineers P(x) from a multiplier
// netlist whose port naming and ordering are unknown or scrambled: the
// operand partition, bit order and output order are inferred from the
// expressions before Algorithm 2 runs. Golden-model verification uses the
// inferred mapping.
func IrreduciblePolynomialInferred(n *netlist.Netlist, opts Options) (*Extraction, *InferredPorts, error) {
	m := len(n.Outputs())
	if m < 2 {
		return nil, nil, fmt.Errorf("%w: %d outputs", ErrNotMultiplier, m)
	}
	lint, err := preflight(n, &opts)
	if err != nil {
		return &Extraction{M: m, Lint: lint}, nil, err
	}
	rw, err := rewrite.Outputs(n, opts.governedRewriteOptions(false))
	if err != nil {
		return nil, nil, err
	}
	span := opts.Recorder.StartSpan("infer-ports", nil)
	ip, err := InferPorts(n, rw)
	span.End()
	if err != nil {
		return nil, nil, err
	}
	ordered := ip.ReorderBits(rw)
	ext := &Extraction{M: m, AInputs: ip.A, BInputs: ip.B, Rewrite: ordered, Lint: lint}
	span = opts.Recorder.StartSpan("extract", map[string]int64{"m": int64(m)})
	ext.P, err = FromExpressions(ordered, ip.A, ip.B)
	span.End()
	if err != nil {
		return nil, ip, err
	}
	if !opts.SkipVerify {
		if err := verifyObserved(n, ext, opts.Recorder); err != nil {
			return ext, ip, err
		}
		ext.Verified = true
	}
	return ext, ip, nil
}
