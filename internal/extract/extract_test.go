package extract

import (
	"errors"
	"strings"
	"testing"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/opt"
	"github.com/galoisfield/gfre/internal/polytab"
	"github.com/galoisfield/gfre/internal/rewrite"
)

// buildFigure2 is the paper's Figure 2 circuit (see rewrite tests).
func buildFigure2(t testing.TB) *netlist.Netlist {
	t.Helper()
	n := netlist.New("fig2")
	a0, _ := n.AddInput("a0")
	a1, _ := n.AddInput("a1")
	b0, _ := n.AddInput("b0")
	b1, _ := n.AddInput("b1")
	s2, _ := n.AddGate(netlist.And, a1, b1)
	g5, _ := n.AddGate(netlist.Nand, a0, b0)
	z0, _ := n.AddGate(netlist.Xnor, g5, s2)
	p0, _ := n.AddGate(netlist.Nand, a0, b1)
	p1, _ := n.AddGate(netlist.Nand, a1, b0)
	g1, _ := n.AddGate(netlist.Xor, p0, p1)
	z1, _ := n.AddGate(netlist.Xor, g1, s2)
	n.MarkOutput("z0", z0)
	n.MarkOutput("z1", z1)
	return n
}

func TestPaperExample2(t *testing.T) {
	// Example 2: the 2-bit multiplier of Figure 2 must yield
	// P(x) = x²+x+1.
	ext, err := IrreduciblePolynomial(buildFigure2(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ext.P.String(); got != "x^2+x+1" {
		t.Errorf("P(x) = %s, want x^2+x+1", got)
	}
	if !ext.Verified {
		t.Error("golden verification should have run")
	}
}

func TestExtractMastrovitoAllDefaults(t *testing.T) {
	for _, m := range []int{2, 3, 4, 5, 8, 11, 16, 24, 32} {
		p, err := polytab.Default(m)
		if err != nil {
			t.Fatal(err)
		}
		n, err := gen.Mastrovito(m, p)
		if err != nil {
			t.Fatal(err)
		}
		ext, err := IrreduciblePolynomial(n, Options{})
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if !ext.P.Equal(p) {
			t.Errorf("m=%d: extracted %v, want %v", m, ext.P, p)
		}
	}
}

func TestExtractBothFigure1Polynomials(t *testing.T) {
	// Two different fields of the same size: extraction must tell them
	// apart — the motivating scenario of the paper.
	for _, ps := range []string{"x^4+x+1", "x^4+x^3+1"} {
		p := gf2poly.MustParse(ps)
		n, err := gen.Mastrovito(4, p)
		if err != nil {
			t.Fatal(err)
		}
		ext, err := IrreduciblePolynomial(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ext.P.Equal(p) {
			t.Errorf("extracted %v, want %s", ext.P, ps)
		}
	}
}

func TestExtractAllIrreduciblePolynomialsGF256(t *testing.T) {
	// Every irreducible octic: 30 distinct GF(2^8) constructions, all must
	// round-trip through generation and extraction.
	count := 0
	for v := uint64(1 << 8); v < 1<<9; v++ {
		p := gf2poly.FromUint64(v)
		if !p.Irreducible() {
			continue
		}
		count++
		n, err := gen.Mastrovito(8, p)
		if err != nil {
			t.Fatal(err)
		}
		ext, err := IrreduciblePolynomial(n, Options{SkipVerify: true})
		if err != nil {
			t.Fatalf("P=%v: %v", p, err)
		}
		if !ext.P.Equal(p) {
			t.Errorf("P=%v: extracted %v", p, ext.P)
		}
	}
	if count != 30 {
		t.Errorf("found %d irreducible octics, want 30", count)
	}
}

func TestExtractMontgomery(t *testing.T) {
	for _, m := range []int{2, 4, 8, 16} {
		p, err := polytab.Default(m)
		if err != nil {
			t.Fatal(err)
		}
		n, err := gen.Montgomery(m, p)
		if err != nil {
			t.Fatal(err)
		}
		ext, err := IrreduciblePolynomial(n, Options{})
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if !ext.P.Equal(p) {
			t.Errorf("m=%d: extracted %v, want %v", m, ext.P, p)
		}
	}
}

func TestExtractSynthesizedAndMapped(t *testing.T) {
	// Table III scenario: extraction is oblivious to synthesis and mapping.
	p, err := polytab.Default(16)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := gen.MastrovitoMatrix(16, p)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := opt.Synthesize(raw)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := opt.TechMap(raw, opt.MapNandHeavy)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []*netlist.Netlist{raw, syn, mapped} {
		ext, err := IrreduciblePolynomial(n, Options{})
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		if !ext.P.Equal(p) {
			t.Errorf("%s: extracted %v, want %v", n.Name, ext.P, p)
		}
	}
}

// renameInputs copies n, renaming each primary input through rename.
func renameInputs(t *testing.T, n *netlist.Netlist, rename func(string) string) *netlist.Netlist {
	t.Helper()
	out := netlist.New(n.Name + "_renamed")
	mapping := make([]int, n.NumGates())
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		var nid int
		var err error
		switch g.Type {
		case netlist.Input:
			nid, err = out.AddInput(rename(n.NameOf(id)))
		case netlist.Lut:
			nid, err = out.AddLut(g.Table, mappedIDs(mapping, g.Fanin)...)
		default:
			nid, err = out.AddGate(g.Type, mappedIDs(mapping, g.Fanin)...)
		}
		if err != nil {
			t.Fatal(err)
		}
		mapping[id] = nid
	}
	names := n.OutputNames()
	for i, id := range n.Outputs() {
		if err := out.MarkOutput(names[i], mapping[id]); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestExtractCustomPrefixes(t *testing.T) {
	// Rename ports to opA*/opB* and extract with explicit prefixes.
	p, _ := polytab.Default(4)
	n, err := gen.Mastrovito(4, p)
	if err != nil {
		t.Fatal(err)
	}
	n2 := renameInputs(t, n, func(s string) string {
		switch s[0] {
		case 'a':
			return "opA" + s[1:]
		default:
			return "opB" + s[1:]
		}
	})
	ext, err := IrreduciblePolynomial(n2, Options{PrefixA: "opA", PrefixB: "opB"})
	if err != nil {
		t.Fatal(err)
	}
	if !ext.P.Equal(p) {
		t.Errorf("extracted %v, want %v", ext.P, p)
	}
	// Positional fallback: wrong prefixes still work because the generator
	// emits operand A then operand B in port order.
	ext2, err := IrreduciblePolynomial(n2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ext2.P.Equal(p) {
		t.Errorf("positional fallback extracted %v", ext2.P)
	}
}

func TestExtractRejectsNonMultiplier(t *testing.T) {
	// A 4-bit ripple-carry integer adder is not a GF multiplier.
	n := netlist.New("adder4")
	var a, b [4]int
	for i := 0; i < 4; i++ {
		a[i], _ = n.AddInput("a" + string(rune('0'+i)))
	}
	for i := 0; i < 4; i++ {
		b[i], _ = n.AddInput("b" + string(rune('0'+i)))
	}
	carry := -1
	for i := 0; i < 4; i++ {
		s, _ := n.AddGate(netlist.Xor, a[i], b[i])
		if carry == -1 {
			n.MarkOutput("z"+string(rune('0'+i)), s)
			carry, _ = n.AddGate(netlist.And, a[i], b[i])
			continue
		}
		s2, _ := n.AddGate(netlist.Xor, s, carry)
		n.MarkOutput("z"+string(rune('0'+i)), s2)
		c1, _ := n.AddGate(netlist.And, a[i], b[i])
		c2, _ := n.AddGate(netlist.And, s, carry)
		carry, _ = n.AddGate(netlist.Or, c1, c2)
	}
	_, err := IrreduciblePolynomial(n, Options{})
	if err == nil {
		t.Fatal("adder should not extract")
	}
	if !errors.Is(err, ErrNotMultiplier) && !errors.Is(err, ErrNotIrreducible) {
		t.Errorf("unexpected error class: %v", err)
	}
}

func TestExtractRejectsWrongInputCount(t *testing.T) {
	n := netlist.New("bad")
	x, _ := n.AddInput("a0")
	y, _ := n.AddInput("b0")
	g, _ := n.AddGate(netlist.And, x, y)
	h, _ := n.AddGate(netlist.Xor, x, y)
	n.MarkOutput("z0", g)
	n.MarkOutput("z1", h)
	// 2 inputs for 2 outputs: want 4.
	if _, err := IrreduciblePolynomial(n, Options{}); !errors.Is(err, ErrBadPorts) {
		t.Errorf("want ErrBadPorts, got %v", err)
	}
}

func TestExtractSingleOutputRejected(t *testing.T) {
	n := netlist.New("one")
	x, _ := n.AddInput("a0")
	n.MarkOutput("z0", x)
	if _, err := IrreduciblePolynomial(n, Options{}); !errors.Is(err, ErrNotMultiplier) {
		t.Errorf("want ErrNotMultiplier, got %v", err)
	}
}

// tamper returns a copy of n with one XOR gate's function changed to OR —
// a minimal malicious edit that preserves structure.
func tamper(t *testing.T, n *netlist.Netlist, victimIdx int) *netlist.Netlist {
	t.Helper()
	out := netlist.New(n.Name + "_trojan")
	mapping := make([]int, n.NumGates())
	seen := 0
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		var nid int
		var err error
		switch {
		case g.Type == netlist.Input:
			nid, err = out.AddInput(n.NameOf(id))
		case g.Type == netlist.Xor:
			ty := netlist.Xor
			if seen == victimIdx {
				ty = netlist.Or
			}
			seen++
			nid, err = out.AddGate(ty, mapping[g.Fanin[0]], mapping[g.Fanin[1]])
		case g.Type == netlist.Lut:
			nid, err = out.AddLut(g.Table, mappedIDs(mapping, g.Fanin)...)
		default:
			nid, err = out.AddGate(g.Type, mappedIDs(mapping, g.Fanin)...)
		}
		if err != nil {
			t.Fatal(err)
		}
		mapping[id] = nid
	}
	names := n.OutputNames()
	for i, id := range n.Outputs() {
		if err := out.MarkOutput(names[i], mapping[id]); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func mappedIDs(mapping []int, fanin []int) []int {
	out := make([]int, len(fanin))
	for i, f := range fanin {
		out[i] = mapping[f]
	}
	return out
}

func TestTamperedMultiplierDetected(t *testing.T) {
	p, _ := polytab.Default(8)
	n, err := gen.Mastrovito(8, p)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the untampered design verifies.
	if _, err := IrreduciblePolynomial(n, Options{}); err != nil {
		t.Fatalf("clean design failed: %v", err)
	}
	detected := 0
	for victim := 0; victim < 8; victim++ {
		bad := tamper(t, n, victim*3)
		_, err := IrreduciblePolynomial(bad, Options{})
		if err != nil {
			detected++
			if !errors.Is(err, ErrMismatch) && !errors.Is(err, ErrNotIrreducible) && !errors.Is(err, ErrNotMultiplier) {
				t.Errorf("victim %d: unexpected error class %v", victim, err)
			}
		}
	}
	if detected != 8 {
		t.Errorf("only %d/8 tampered designs detected", detected)
	}
}

func TestSimulationCrossCheck(t *testing.T) {
	p, _ := polytab.Default(8)
	n, err := gen.Montgomery(8, p)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := IrreduciblePolynomial(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := SimulationCrossCheck(n, ext, 4, 1); err != nil {
		t.Errorf("cross check failed on clean design: %v", err)
	}
	// Against a tampered netlist the cross-check must fail (reuse the
	// extraction's P from the clean design).
	bad := tamper(t, n, 5)
	if err := SimulationCrossCheck(bad, ext, 8, 1); !errors.Is(err, ErrMismatch) {
		t.Errorf("cross check on trojan: %v", err)
	}
}

func TestFromExpressionsReuse(t *testing.T) {
	// FromExpressions lets callers reuse one rewriting run for several
	// analyses.
	p, _ := polytab.Default(8)
	n, err := gen.Mastrovito(8, p)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := rewrite.Outputs(n, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ins := n.Inputs()
	got, err := FromExpressions(rw, ins[:8], ins[8:])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Errorf("FromExpressions = %v, want %v", got, p)
	}
}

func TestSpecificationANFSymmetry(t *testing.T) {
	// Multiplication commutes: swapping operand roles must not change the
	// specification.
	p, _ := polytab.Default(5)
	a := []int{0, 1, 2, 3, 4}
	b := []int{5, 6, 7, 8, 9}
	for c := 0; c < 5; c++ {
		s1 := SpecificationANF(p, a, b, c)
		s2 := SpecificationANF(p, b, a, c)
		if !s1.Equal(s2) {
			t.Errorf("bit %d: specification not symmetric", c)
		}
	}
}

func TestExtractKaratsubaAndDigitSerial(t *testing.T) {
	// Extraction must be oblivious to these architectures too (the paper's
	// "regardless of the GF(2^m) algorithm" claim, widened beyond its own
	// benchmark set).
	for _, m := range []int{8, 16, 32} {
		p, err := polytab.Default(m)
		if err != nil {
			t.Fatal(err)
		}
		kar, err := gen.Karatsuba(m, p)
		if err != nil {
			t.Fatal(err)
		}
		ext, err := IrreduciblePolynomial(kar, Options{})
		if err != nil {
			t.Fatalf("karatsuba m=%d: %v", m, err)
		}
		if !ext.P.Equal(p) {
			t.Errorf("karatsuba m=%d: extracted %v", m, ext.P)
		}
		for _, d := range []int{2, 4} {
			ds, err := gen.DigitSerial(m, p, d)
			if err != nil {
				t.Fatal(err)
			}
			ext, err := IrreduciblePolynomial(ds, Options{})
			if err != nil {
				t.Fatalf("digitserial m=%d d=%d: %v", m, d, err)
			}
			if !ext.P.Equal(p) {
				t.Errorf("digitserial m=%d d=%d: extracted %v", m, d, ext.P)
			}
		}
	}
}

func TestExtractKaratsubaScrambled(t *testing.T) {
	// Port inference on the most share-heavy architecture.
	p, _ := polytab.Default(16)
	n, err := gen.Karatsuba(16, p)
	if err != nil {
		t.Fatal(err)
	}
	s := scramble(t, n, 3)
	ext, _, err := IrreduciblePolynomialInferred(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ext.P.Equal(p) {
		t.Errorf("extracted %v, want %v", ext.P, p)
	}
}

func TestVerifyAgainstKnownPolynomial(t *testing.T) {
	p, _ := polytab.Default(8)
	n, err := gen.Montgomery(8, p)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := VerifyAgainst(n, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ext.Verified {
		t.Error("should verify")
	}
	// Wrong polynomial of the right degree must be rejected as a mismatch
	// (note Default(8) is the AES pentanomial, so pick a different octic).
	wrong := gf2poly.MustParse("x^8+x^4+x^3+x^2+1")
	if _, err := VerifyAgainst(n, wrong, Options{}); !errors.Is(err, ErrMismatch) {
		t.Errorf("wrong P should mismatch, got %v", err)
	}
	// Degree mismatch and reducible P are rejected up front.
	if _, err := VerifyAgainst(n, gf2poly.MustParse("x^4+x+1"), Options{}); err == nil {
		t.Error("degree mismatch should fail")
	}
	if _, err := VerifyAgainst(n, gf2poly.MustParse("x^8+1"), Options{}); !errors.Is(err, ErrNotIrreducible) {
		t.Errorf("reducible P: %v", err)
	}
	// Tampered netlist caught against the true P.
	bad := tamper(t, n, 3)
	if _, err := VerifyAgainst(bad, p, Options{}); !errors.Is(err, ErrMismatch) {
		t.Errorf("tampered netlist: %v", err)
	}
}

func TestReport(t *testing.T) {
	p := polytab.NIST[64]
	n, err := gen.Mastrovito(64, p)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := IrreduciblePolynomial(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Report(n, ext)
	for _, want := range []string{
		"GF(2^64)", "x^64+x^21+x^19+x^4+1", "pentanomial",
		"NIST-recommended", "verified:    yes", "substitutions",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	// Non-primitive quartic reports the order.
	p2 := gf2poly.MustParse("x^4+x^3+x^2+x+1")
	n2, err := gen.Mastrovito(4, p2)
	if err != nil {
		t.Fatal(err)
	}
	ext2, err := IrreduciblePolynomial(n2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep2 := Report(n2, ext2)
	if !strings.Contains(rep2, "primitive:   no (ord(x) = 5 of 15)") {
		t.Errorf("report should flag non-primitive P:\n%s", rep2)
	}
	// Skipped verification is reported.
	ext3, err := IrreduciblePolynomial(n2, Options{SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Report(n2, ext3), "verified:    no") {
		t.Error("unverified extraction should say so")
	}
}
