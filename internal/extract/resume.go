package extract

import (
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/rewrite"
)

// rewriteCheckpointed is the Snapshot/Restore seam between extraction and
// the rewriting engine. Without a checkpoint manager it is exactly
// rewrite.Outputs under the governed options. With one:
//
//   - Resume loads the directory's snapshot (validating the netlist content
//     hash) and feeds its completed cones to rewrite.Options.Prior, so only
//     pending or failed cones are re-rewritten;
//   - without Resume a fresh snapshot is begun, replacing any stale one at
//     the first cone completion;
//   - every freshly computed cone — completed or failed — lands in the
//     snapshot via the OnBitDone hook as the run progresses;
//   - whatever way the run ends (success, governed abort, cancellation),
//     Sync flushes the last throttle window, so the snapshot on disk is
//     never more than the in-flight cones behind the run.
func rewriteCheckpointed(n *netlist.Netlist, opts Options, keepPartial bool) (*rewrite.Result, error) {
	ro := opts.governedRewriteOptions(keepPartial)
	ckpt := opts.Checkpoint
	if ckpt != nil {
		if opts.Resume {
			prior, err := ckpt.Restore(n)
			if err != nil {
				return nil, err
			}
			ro.Prior = prior
		} else if err := ckpt.Begin(n); err != nil {
			return nil, err
		}
		ro.OnBitDone = ckpt.Record
	}
	rw, err := rewrite.Outputs(n, ro)
	if ckpt != nil {
		if rw != nil {
			ckpt.AddRetries(rw.Retries)
		}
		if serr := ckpt.Sync(); serr != nil && err == nil {
			err = serr
		}
	}
	return rw, err
}

// finalizeCheckpoint records the recovered polynomial in the snapshot once
// extraction has it; nil-safe on every argument.
func finalizeCheckpoint(opts Options, ext *Extraction) error {
	if opts.Checkpoint == nil || ext == nil {
		return nil
	}
	return opts.Checkpoint.Finalize(ext.P)
}
