package extract

import (
	"github.com/galoisfield/gfre/internal/netlint"
	"github.com/galoisfield/gfre/internal/netlist"
)

// preflight runs the netlint static analyzer ahead of rewriting when
// Options.Preflight is set. Error-level findings abort the run (the returned
// error wraps netlint.ErrFindings, and the report travels back on the
// Extraction so callers can render the findings). On a clean pass the
// cone-cost predictor's suggestions fill any governor knob the caller left
// at zero, so hostile or degenerate designs hit a principled budget instead
// of running unbounded.
func preflight(n *netlist.Netlist, opts *Options) (*netlint.Report, error) {
	if !opts.Preflight {
		return nil, nil
	}
	span := opts.Recorder.StartSpan("preflight", map[string]int64{
		"gates": int64(n.NumGates()),
	})
	rep := netlint.Analyze(n, netlint.Options{RequireMultiplier: true})
	span.End()
	if err := rep.Err(); err != nil {
		return rep, err
	}
	budget, deadline := rep.Governor(opts.BudgetTerms, opts.ConeDeadline)
	if budget > 0 {
		opts.BudgetTerms = budget
	}
	if deadline > 0 {
		opts.ConeDeadline = deadline
	}
	return rep, nil
}
