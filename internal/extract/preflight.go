package extract

import (
	"github.com/galoisfield/gfre/internal/netlint"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/obs"
)

// preflight runs the netlint static analyzer ahead of rewriting when
// Options.Preflight is set. Error-level findings abort the run (the returned
// error wraps netlint.ErrFindings, and the report travels back on the
// Extraction so callers can render the findings). On a clean pass the
// cone-cost predictor's suggestions fill any governor knob the caller left
// at zero, so hostile or degenerate designs hit a principled budget instead
// of running unbounded.
func preflight(n *netlist.Netlist, opts *Options) (*netlint.Report, error) {
	if !opts.Preflight {
		return nil, nil
	}
	span := opts.Recorder.StartSpan("preflight", map[string]int64{
		"gates": int64(n.NumGates()),
	})
	rep := netlint.Analyze(n, netlint.Options{RequireMultiplier: true})
	span.End()
	if err := rep.Err(); err != nil {
		return rep, err
	}
	budget, deadline := rep.Governor(opts.BudgetTerms, opts.ConeDeadline)
	if budget > 0 {
		opts.BudgetTerms = budget
	}
	if deadline > 0 {
		opts.ConeDeadline = deadline
	}
	// Arm the cone anomaly stage with the predictor's no-cancellation
	// bounds: at each cone finish the recorder compares the actual peak
	// against these and emits cone_anomaly when cancellation failed to fire
	// (see internal/obs/anomaly.go). Saturated estimates are still armed
	// with their capped value: the cap is a LOWER bound on the true
	// no-cancellation cost, so the observed ratio understates the real one
	// — a cone that reaches a meaningful fraction even of the cap is all
	// the more anomalous, and dropping these cones would blind the stage
	// to exactly the fattest candidates.
	pred := make(map[int]int64, len(rep.Cones))
	for _, c := range rep.Cones {
		pred[c.Output] = int64(c.PredictedPeakTerms)
	}
	opts.Recorder.EnableConeAnomalies(pred, obs.AnomalyConfig{})
	return rep, nil
}
