package extract

import (
	"strings"
	"testing"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/polytab"
)

// reportFor runs a real extraction on a Mastrovito multiplier over p and
// renders its report.
func reportFor(t *testing.T, m int, p gf2poly.Poly) string {
	t.Helper()
	n, err := gen.Mastrovito(m, p)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := IrreduciblePolynomial(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return Report(n, ext)
}

func TestReportTrinomialPrimitive(t *testing.T) {
	// x^4+x+1 is a trinomial and primitive: x generates all of GF(16)*.
	rep := reportFor(t, 4, gf2poly.FromTerms(4, 1, 0))
	for _, want := range []string{
		"field:       GF(2^4)",
		"polynomial:  P(x) = x^4+x+1",
		"class:       trinomial",
		"primitive:   yes",
		"verified:    yes",
		"rewriting:   ",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestReportPentanomialNonPrimitive(t *testing.T) {
	// The AES polynomial x^8+x^4+x^3+x+1 is a pentanomial and not
	// primitive: ord(x) = 51, not the full 255.
	rep := reportFor(t, 8, gf2poly.FromTerms(8, 4, 3, 1, 0))
	for _, want := range []string{
		"class:       pentanomial",
		"primitive:   no (ord(x) = 51 of 255)",
		"verified:    yes",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if strings.Contains(rep, "NIST-recommended") {
		t.Errorf("AES polynomial is not a NIST curve choice:\n%s", rep)
	}
}

func TestReportNISTMatchAndUnverified(t *testing.T) {
	// A synthetic extraction carrying the NIST B-163 polynomial: the report
	// must flag the standard match, skip the primitivity check (m > 63 means
	// factoring 2^m-1 is off the table), and print the unverified footer.
	n := netlist.New("stub")
	a, _ := n.AddInput("a0")
	n.MarkOutput("z0", a)
	p, ok := polytab.NIST[163]
	if !ok {
		t.Fatal("no NIST polynomial for m=163")
	}
	rep := Report(n, &Extraction{P: p, M: 163})
	for _, want := range []string{
		"field:       GF(2^163)",
		"class:       pentanomial, NIST-recommended for GF(2^163)",
		"verified:    no (verification skipped)",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if strings.Contains(rep, "primitive:") {
		t.Errorf("primitivity should not be attempted at m=163:\n%s", rep)
	}
	if strings.Contains(rep, "rewriting:") {
		t.Errorf("no rewrite stats were attached, none should print:\n%s", rep)
	}
}

func TestReportDiagnosisSection(t *testing.T) {
	n := netlist.New("stub")
	a, _ := n.AddInput("a0")
	n.MarkOutput("z0", a)
	p := gf2poly.FromTerms(8, 4, 3, 1, 0)

	healthy := Report(n, &Extraction{P: p, M: 8, Diag: &Diagnosis{
		Recovered: true, Tolerate: 2,
		Bits: []BitDiagnosis{{Bit: 0, Name: "z0", State: BitOK}},
	}})
	if !strings.Contains(healthy, "diagnosis:   healthy") {
		t.Errorf("healthy diagnosis not rendered:\n%s", healthy)
	}

	recovered := Report(n, &Extraction{P: p, M: 8, Diag: &Diagnosis{
		Recovered: true, Tolerate: 2, Faults: 1, Tampered: []int{3},
		CandidatesTried: 4,
		Bits: []BitDiagnosis{
			{Bit: 0, Name: "z0", State: BitOK},
			{Bit: 3, Name: "z3", State: BitTampered, Detail: "5 deviating vectors"},
		},
		Suspects: []Suspect{{Gate: 17, Name: "n17", CorrectRate: 1.0, Structural: 0.5}},
	}})
	for _, want := range []string{
		"diagnosis:   recovered by consensus over 1 faults (1 tampered, 0 failed cones), 4 candidates tried",
		"bit   3 (z3): tampered — 5 deviating vectors",
		"suspect #1: gate 17 (n17), correct-rate 1.00, structural +0.50",
	} {
		if !strings.Contains(recovered, want) {
			t.Errorf("report missing %q:\n%s", want, recovered)
		}
	}
	if strings.Contains(recovered, "bit   0") {
		t.Errorf("healthy bits must not be listed:\n%s", recovered)
	}

	failed := Report(n, &Extraction{P: p, M: 8, Diag: &Diagnosis{
		Tolerate: 1, Faults: 3, CandidatesTried: 9,
	}})
	if !strings.Contains(failed, "diagnosis:   FAILED — 3 faults exceed tolerance 1 (9 candidates tried)") {
		t.Errorf("failed diagnosis not rendered:\n%s", failed)
	}
}

func TestReportWeightClassFallback(t *testing.T) {
	// Polynomials that are neither trinomials nor pentanomials get the
	// generic "weight-N" class. Report does not require irreducibility to
	// render the class line, so a synthetic extraction suffices.
	n := netlist.New("stub")
	a, _ := n.AddInput("a0")
	n.MarkOutput("z0", a)
	p := gf2poly.FromTerms(7, 6, 5, 4, 3, 2, 1, 0) // weight 8
	rep := Report(n, &Extraction{P: p, M: 7})
	if !strings.Contains(rep, "class:       weight-8") {
		t.Errorf("generic weight class not rendered:\n%s", rep)
	}
}
