package extract

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/polytab"
	"github.com/galoisfield/gfre/internal/rewrite"
)

// scramble rebuilds n with inputs permuted and renamed to meaningless
// identifiers, and outputs permuted and renamed — the anonymized third-party
// netlist scenario.
func scramble(t *testing.T, n *netlist.Netlist, seed int64) *netlist.Netlist {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	ins := n.Inputs()
	perm := r.Perm(len(ins))
	out := netlist.New(n.Name + "_scrambled")
	mapping := make([]int, n.NumGates())
	// Add inputs in permuted order with opaque names.
	for newPos, oldPos := range perm {
		id, err := out.AddInput(fmt.Sprintf("sig_%03d", newPos))
		if err != nil {
			t.Fatal(err)
		}
		mapping[ins[oldPos]] = id
	}
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		if g.Type == netlist.Input {
			continue
		}
		fanin := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = mapping[f]
		}
		var nid int
		var err error
		if g.Type == netlist.Lut {
			nid, err = out.AddLut(g.Table, fanin...)
		} else {
			nid, err = out.AddGate(g.Type, fanin...)
		}
		if err != nil {
			t.Fatal(err)
		}
		mapping[id] = nid
	}
	outs := n.Outputs()
	operm := r.Perm(len(outs))
	for newPos, oldPos := range operm {
		if err := out.MarkOutput(fmt.Sprintf("port_%03d", newPos), mapping[outs[oldPos]]); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestInferPortsOnScrambledMultipliers(t *testing.T) {
	for _, tc := range []struct {
		m     int
		build func(int, gf2poly.Poly) (*netlist.Netlist, error)
		name  string
	}{
		{4, gen.Mastrovito, "mastrovito4"},
		{8, gen.Mastrovito, "mastrovito8"},
		{16, gen.MastrovitoMatrix, "matrix16"},
		{8, gen.Montgomery, "montgomery8"},
		{23, gen.Mastrovito, "mastrovito23"},
	} {
		p, err := polytab.Default(tc.m)
		if err != nil {
			t.Fatal(err)
		}
		n, err := tc.build(tc.m, p)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 3; seed++ {
			s := scramble(t, n, seed)
			ext, ip, err := IrreduciblePolynomialInferred(s, Options{})
			if err != nil {
				t.Fatalf("%s seed %d: %v", tc.name, seed, err)
			}
			if !ext.P.Equal(p) {
				t.Errorf("%s seed %d: extracted %v, want %v", tc.name, seed, ext.P, p)
			}
			if !ext.Verified {
				t.Errorf("%s seed %d: not verified", tc.name, seed)
			}
			if len(ip.A) != tc.m || len(ip.B) != tc.m || len(ip.OutputOrder) != tc.m {
				t.Errorf("%s seed %d: malformed port inference %+v", tc.name, seed, ip)
			}
		}
	}
}

func TestInferPortsRecoversExactMapping(t *testing.T) {
	// On an UNscrambled netlist, inference must reproduce the canonical
	// mapping (up to the immaterial A/B operand swap).
	p, _ := polytab.Default(8)
	n, err := gen.Mastrovito(8, p)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := rewrite.Outputs(n, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ip, err := InferPorts(n, rw)
	if err != nil {
		t.Fatal(err)
	}
	ins := n.Inputs()
	wantA, wantB := ins[:8], ins[8:]
	sameSlice := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	ok := sameSlice(ip.A, wantA) && sameSlice(ip.B, wantB) ||
		sameSlice(ip.A, wantB) && sameSlice(ip.B, wantA)
	if !ok {
		t.Errorf("inferred A=%v B=%v, want %v/%v (either order)", ip.A, ip.B, wantA, wantB)
	}
	for k, pos := range ip.OutputOrder {
		if k != pos {
			t.Errorf("output order: z_%d inferred at position %d", k, pos)
		}
	}
}

func TestInferPortsRejectsNonMultiplier(t *testing.T) {
	// XOR-only circuit: monomials are degree 1, not products.
	n := netlist.New("xors")
	a, _ := n.AddInput("x0")
	b, _ := n.AddInput("x1")
	c, _ := n.AddInput("x2")
	d, _ := n.AddInput("x3")
	g1, _ := n.AddGate(netlist.Xor, a, b)
	g2, _ := n.AddGate(netlist.Xor, c, d)
	n.MarkOutput("o0", g1)
	n.MarkOutput("o1", g2)
	rw, err := rewrite.Outputs(n, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InferPorts(n, rw); !errors.Is(err, ErrNotMultiplier) {
		t.Errorf("want ErrNotMultiplier, got %v", err)
	}
}

func TestInferPortsRejectsNonBipartite(t *testing.T) {
	// Products within one "operand": a0·a1 makes the graph odd-cyclic when
	// combined with cross products... simplest: triangle x0x1, x1x2, x0x2.
	n := netlist.New("tri")
	x0, _ := n.AddInput("x0")
	x1, _ := n.AddInput("x1")
	x2, _ := n.AddInput("x2")
	x3, _ := n.AddInput("x3")
	_ = x3
	g1, _ := n.AddGate(netlist.And, x0, x1)
	g2, _ := n.AddGate(netlist.And, x1, x2)
	g3, _ := n.AddGate(netlist.And, x0, x2)
	o1, _ := n.AddGate(netlist.Xor, g1, g2)
	n.MarkOutput("o0", o1)
	n.MarkOutput("o1", g3)
	rw, err := rewrite.Outputs(n, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InferPorts(n, rw); !errors.Is(err, ErrNotMultiplier) {
		t.Errorf("want ErrNotMultiplier, got %v", err)
	}
}

func TestInferredExtractionDetectsTampering(t *testing.T) {
	p, _ := polytab.Default(8)
	n, err := gen.Mastrovito(8, p)
	if err != nil {
		t.Fatal(err)
	}
	bad := scramble(t, tamper(t, n, 7), 1)
	_, _, err = IrreduciblePolynomialInferred(bad, Options{})
	if err == nil {
		t.Fatal("tampered scrambled design should fail")
	}
}

func TestReorderBitsPermutation(t *testing.T) {
	rw := &rewrite.Result{Bits: make([]rewrite.BitResult, 3)}
	for i := range rw.Bits {
		rw.Bits[i].Bit = i
	}
	ip := &InferredPorts{OutputOrder: []int{2, 0, 1}}
	got := ip.ReorderBits(rw)
	if got.Bits[0].Bit != 2 || got.Bits[1].Bit != 0 || got.Bits[2].Bit != 1 {
		t.Errorf("reorder wrong: %+v", got.Bits)
	}
}

func TestInferPortsToleratesDanglingInputs(t *testing.T) {
	// A netlist with unused pins (scan enable, spare inputs) must still
	// infer and extract.
	p, _ := polytab.Default(8)
	base, err := gen.Mastrovito(8, p)
	if err != nil {
		t.Fatal(err)
	}
	n := netlist.New("dangling")
	// Interleave dangling pins before, between and after the operands.
	if _, err := n.AddInput("scan_en"); err != nil {
		t.Fatal(err)
	}
	mapping := make([]int, base.NumGates())
	ins := base.Inputs()
	for i, id := range ins {
		nid, err := n.AddInput(base.NameOf(id))
		if err != nil {
			t.Fatal(err)
		}
		mapping[id] = nid
		if i == 7 {
			if _, err := n.AddInput("spare0"); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := n.AddInput("spare1"); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < base.NumGates(); id++ {
		g := base.Gate(id)
		if g.Type == netlist.Input {
			continue
		}
		fanin := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = mapping[f]
		}
		nid, err := n.AddGate(g.Type, fanin...)
		if err != nil {
			t.Fatal(err)
		}
		mapping[id] = nid
	}
	names := base.OutputNames()
	for i, id := range base.Outputs() {
		if err := n.MarkOutput(names[i], mapping[id]); err != nil {
			t.Fatal(err)
		}
	}

	ext, ip, err := IrreduciblePolynomialInferred(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ext.P.Equal(p) {
		t.Errorf("extracted %v, want %v", ext.P, p)
	}
	// The dangling pins must not appear in the inferred operands.
	for _, id := range append(append([]int(nil), ip.A...), ip.B...) {
		switch n.NameOf(id) {
		case "scan_en", "spare0", "spare1":
			t.Errorf("dangling pin %s classified as an operand bit", n.NameOf(id))
		}
	}
}

func TestLowOrderPolynomialEdgeCase(t *testing.T) {
	// P = x^6+x^3+1 is irreducible but non-primitive with ord(x) = 9, so
	// x^9 mod P = 1 — an out-field power reducing to a SINGLE term. Named
	// extraction (Theorem 3) is unaffected; the occurrence-counting bit
	// ordering of port inference becomes ambiguous and must report that
	// instead of guessing.
	p := gf2poly.MustParse("x^6+x^3+1")
	if !p.Irreducible() {
		t.Fatal("x^6+x^3+1 should be irreducible")
	}
	n, err := gen.Mastrovito(6, p)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := IrreduciblePolynomial(n, Options{})
	if err != nil {
		t.Fatalf("named extraction must handle non-primitive P: %v", err)
	}
	if !ext.P.Equal(p) {
		t.Errorf("extracted %v", ext.P)
	}

	rw, err := rewrite.Outputs(n, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InferPorts(n, rw); err == nil {
		t.Log("note: inference succeeded despite low ord(x) — counting was unambiguous here")
	} else if !errors.Is(err, ErrBadPorts) {
		t.Errorf("ambiguity should surface as ErrBadPorts, got %v", err)
	}
}
