// Package diffcheck is the differential-testing subsystem: it turns the
// repository's own generators into a correctness oracle for the whole
// reverse-engineering pipeline.
//
// A test case plants a random irreducible P(x), generates a multiplier in a
// random architecture, optionally pushes it through optimization passes, a
// port scrambling, and a serialize→parse round trip in one of the netlist
// formats, then asserts two independent oracles:
//
//   - the pipeline oracle: rewrite+extract must recover exactly the planted
//     P(x) (Algorithm 2 / Theorem 3), and the golden-model verification must
//     pass — across every architecture and synthesis variant;
//   - the simulation oracle: 64-way bit-parallel simulation of the netlist
//     must agree with software GF(2^m) arithmetic (gf2poly.MulMod) on random
//     vectors, independently of the rewriting engine.
//
// Adversarial cases (random DAGs from package randnet) additionally check
// that every layer degrades gracefully on non-multipliers: the formats must
// round-trip them and extraction must return an error, never panic.
//
// Package campaign.go runs cases in parallel with per-case timeouts and
// panic capture; minimize.go shrinks a failing netlist to a near-minimal
// repro. Command gffuzz is the CLI front end.
package diffcheck

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime/debug"
	"strings"
	"time"

	"github.com/galoisfield/gfre/internal/extract"
	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlint"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/opt"
	"github.com/galoisfield/gfre/internal/randnet"
)

// Arch selects the multiplier generator.
type Arch string

// Supported architectures.
const (
	ArchMastrovito  Arch = "mastrovito"
	ArchMatrix      Arch = "matrix"
	ArchMontgomery  Arch = "montgomery"
	ArchKaratsuba   Arch = "karatsuba"
	ArchDigitSerial Arch = "digitserial"
)

// AllArchs lists every supported architecture.
func AllArchs() []Arch {
	return []Arch{ArchMastrovito, ArchMatrix, ArchMontgomery, ArchKaratsuba, ArchDigitSerial}
}

// Format selects the serialize→parse round trip of a case.
type Format string

// Round-trip formats. FormatNone feeds the netlist to extraction directly.
const (
	FormatNone    Format = "none"
	FormatEQN     Format = "eqn"
	FormatBLIF    Format = "blif"
	FormatVerilog Format = "verilog"
)

// AllFormats lists every round-trip option including FormatNone.
func AllFormats() []Format {
	return []Format{FormatNone, FormatEQN, FormatBLIF, FormatVerilog}
}

// Passes maps optimization-pass names to their implementations; case
// sampling draws pass sequences from PassNames.
var Passes = map[string]func(*netlist.Netlist) (*netlist.Netlist, error){
	"simplify":     opt.Simplify,
	"balance":      opt.BalanceXor,
	"techmap-fuse": func(n *netlist.Netlist) (*netlist.Netlist, error) { return opt.TechMap(n, opt.MapFuseInverters) },
	"techmap-nand": func(n *netlist.Netlist) (*netlist.Netlist, error) { return opt.TechMap(n, opt.MapNandHeavy) },
	"aoi":          opt.MapAOI,
	"synth":        opt.Synthesize,
}

// PassNames is the deterministic sampling order of Passes.
var PassNames = []string{"simplify", "balance", "techmap-fuse", "techmap-nand", "aoi", "synth"}

// Kind separates planted-multiplier cases from adversarial random DAGs.
type Kind string

// Case kinds.
const (
	KindMultiplier  Kind = "multiplier"
	KindAdversarial Kind = "adversarial"
	// KindDiagnose plants Inject trojans in distinct output cones of a
	// matrix-form multiplier and asserts that fault-tolerant extraction
	// recovers P(x) AND localizes every planted gate (suspect inside its
	// fanout cone).
	KindDiagnose Kind = "diagnose"
	// KindResume hard-cancels an extraction at a random cone boundary, then
	// resumes it from the on-disk checkpoint and asserts both the recovered
	// P(x) and the cone-reuse count match the snapshot (the crash-safety
	// oracle of package checkpoint).
	KindResume Kind = "resume"
	// KindChaos runs the extraction through the lease-based shard scheduler
	// under injected faults — killed workers, expired leases, delayed,
	// duplicated and reordered submissions — and asserts the planted P(x) is
	// still recovered exactly, with zero double-counted cones (the
	// distributed-robustness oracle of package shard).
	KindChaos Kind = "chaos"
	// KindObfuscate locks a generated multiplier with planted key gates
	// (XOR lock, MUX lock, or opaque AND-tree — gen.Obfuscate) and asserts
	// the semantic detector's arms-race oracle: the locked design under the
	// correct (all-zero) key is simulation-equivalent to the clean one, the
	// clean design produces zero key findings (no false positives), and the
	// locked design's detected gated-key set equals the planted set exactly
	// (100% detection, nothing fabricated).
	KindObfuscate Kind = "obfuscate"
	// KindOverload attacks a small gfred queue with adversarial tenants — a
	// greedy batch-flooder and a deadline-abuser — while one well-behaved
	// tenant slow-drips jobs, and asserts the admission plane isolated them:
	// exact P(x) for the polite tenant at bounded p99, zero quota violations,
	// dedup and deadline expiry observed, one terminal event per accepted job
	// (the multi-tenant-resilience oracle of package server).
	KindOverload Kind = "overload"
)

// Case is one deterministic differential test: everything Run does is a
// function of the case alone.
type Case struct {
	Index int
	Seed  int64
	Kind  Kind

	// Multiplier-case parameters.
	M        int
	P        gf2poly.Poly
	Arch     Arch
	Digit    int // digit width for ArchDigitSerial
	Opt      []string
	Format   Format
	Scramble bool

	// Inject, when positive, flips XOR gate #((Inject-1) mod CountXor) to OR
	// right after generation — a deliberate fault the harness must catch
	// (the self-check mode of gffuzz).
	Inject int

	// Obfuscation-case parameters (KindObfuscate): key-gating style name
	// ("xor" / "mux" / "opaque") and planted key count.
	Lock string
	Keys int

	// SimTrials is the number of 64-vector simulation words per oracle.
	SimTrials int
	// Threads is the rewriting worker count (campaigns parallelize across
	// cases, so 0 is normalized to 1).
	Threads int
}

// Label renders a compact human-readable case descriptor.
func (c Case) Label() string {
	if c.Kind == KindAdversarial {
		return fmt.Sprintf("adversarial/seed=%d", c.Seed)
	}
	if c.Kind == KindDiagnose {
		return fmt.Sprintf("diagnose/%s/m=%d/k=%d", c.Arch, c.M, c.Inject)
	}
	if c.Kind == KindResume {
		return fmt.Sprintf("resume/%s/m=%d", c.Arch, c.M)
	}
	if c.Kind == KindChaos {
		return fmt.Sprintf("chaos/%s/m=%d", c.Arch, c.M)
	}
	if c.Kind == KindOverload {
		return fmt.Sprintf("overload/%s/m=%d", c.Arch, c.M)
	}
	if c.Kind == KindObfuscate {
		return fmt.Sprintf("obfuscate/%s/%s/m=%d/k=%d", c.Lock, c.Arch, c.M, c.Keys)
	}
	parts := []string{string(c.Arch), fmt.Sprintf("m=%d", c.M)}
	if c.Arch == ArchDigitSerial {
		parts = append(parts, fmt.Sprintf("d=%d", c.Digit))
	}
	if len(c.Opt) > 0 {
		parts = append(parts, strings.Join(c.Opt, "+"))
	}
	if c.Format != FormatNone && c.Format != "" {
		parts = append(parts, string(c.Format))
	}
	if c.Scramble {
		parts = append(parts, "scrambled")
	}
	return strings.Join(parts, "/")
}

// Generate builds the case's multiplier netlist from the planted P(x).
func (c Case) Generate() (*netlist.Netlist, error) {
	switch c.Arch {
	case ArchMastrovito:
		return gen.Mastrovito(c.M, c.P)
	case ArchMatrix:
		return gen.MastrovitoMatrix(c.M, c.P)
	case ArchMontgomery:
		return gen.Montgomery(c.M, c.P)
	case ArchKaratsuba:
		return gen.Karatsuba(c.M, c.P)
	case ArchDigitSerial:
		return gen.DigitSerial(c.M, c.P, c.Digit)
	}
	return nil, fmt.Errorf("diffcheck: unknown architecture %q", c.Arch)
}

// Status classifies a case outcome.
type Status string

// Case outcomes.
const (
	Pass Status = "pass"
	Fail Status = "fail"
)

// Result is the outcome of running one case.
type Result struct {
	Case     Case
	Status   Status
	Stage    string // pipeline stage that failed ("" on pass)
	Err      string // failure description ("" on pass)
	Panicked bool
	Gates    int // gate count of the netlist fed to extraction
	Dur      time.Duration

	// Failure context for minimization: the final pipeline netlist and the
	// planted port binding valid in it (nil/empty when not applicable).
	Netlist *netlist.Netlist
	Binding Binding

	// Diagnosis-case outcome (KindDiagnose only).
	Diagnosed bool // the case ran the fault-tolerant diagnosis pipeline
	LocHit    bool // every planted gate had a suspect in its fanout cone
	LocRank   int  // best (lowest) suspect rank hitting a planted cone; -1 when none

	// Resume-case outcome (KindResume only).
	Resumed bool // the case ran the interrupt→resume pipeline
	Reused  int  // cones the resumed run adopted from the checkpoint

	// Chaos-case outcome (KindChaos only).
	Chaosed bool // the case ran the fault-injected shard scheduler
	Kills   int  // workers killed mid-lease by the harness
	Expired int  // leases that missed their heartbeat and re-queued
	Fenced  int  // zombie submissions rejected by the epoch fence
	Stolen  int  // straggler leases split by work stealing

	// Obfuscation-case outcome (KindObfuscate only).
	Obfuscated   bool // the case ran the lock→detect arms-race oracle
	KeysPlanted  int  // key inputs planted by the lock transform
	KeysDetected int  // key inputs the semantic detector reported as gating
	OpaqueHit    bool // an opaque-constant finding fired (opaque style only)

	// Overload-case outcome (KindOverload only).
	Overloaded      bool  // the case ran the adversarial-tenant queue attack
	QuotaRejects    int   // submissions rejected by per-tenant quotas
	ShedRejects     int   // submissions rejected by the staged load-shedder
	Deduped         int   // batch submissions collapsed onto a leader
	DeadlineExpired int   // jobs whose deadline expired before/while running
	WellP99MS       int64 // well-behaved tenant's p99 latency, milliseconds
}

// Binding names the multiplier ports of a netlist: operand input names (LSB
// first) and the output port name of every logical bit. Names survive every
// pipeline stage (optimization, scrambling, format round trips), unlike gate
// IDs, so the planted binding can be re-resolved at any point.
type Binding struct {
	A, B []string
	Out  []string
}

// CanonicalBinding is the generator port convention: a0.., b0.., z0...
func CanonicalBinding(m int) Binding {
	bd := Binding{A: make([]string, m), B: make([]string, m), Out: make([]string, m)}
	for i := 0; i < m; i++ {
		bd.A[i] = fmt.Sprintf("a%d", i)
		bd.B[i] = fmt.Sprintf("b%d", i)
		bd.Out[i] = fmt.Sprintf("z%d", i)
	}
	return bd
}

// Resolve maps the binding onto a concrete netlist: operand input gate IDs
// and, per logical bit, the output position carrying it.
func (bd Binding) Resolve(n *netlist.Netlist) (a, b, outPos []int, err error) {
	lookupIn := func(names []string) ([]int, error) {
		ids := make([]int, len(names))
		for i, nm := range names {
			id, ok := n.Lookup(nm)
			if !ok {
				return nil, fmt.Errorf("diffcheck: input %q not found", nm)
			}
			ids[i] = id
		}
		return ids, nil
	}
	if a, err = lookupIn(bd.A); err != nil {
		return nil, nil, nil, err
	}
	if b, err = lookupIn(bd.B); err != nil {
		return nil, nil, nil, err
	}
	byName := map[string]int{}
	for pos, nm := range n.OutputNames() {
		byName[nm] = pos
	}
	outPos = make([]int, len(bd.Out))
	for k, nm := range bd.Out {
		pos, ok := byName[nm]
		if !ok {
			return nil, nil, nil, fmt.Errorf("diffcheck: output %q not found", nm)
		}
		outPos[k] = pos
	}
	return a, b, outPos, nil
}

// Run executes the case's full differential pipeline. It never panics: a
// panic anywhere in the pipeline is captured into a Fail result with the
// stack attached.
func Run(c Case) (res Result) {
	if c.SimTrials <= 0 {
		c.SimTrials = 4
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	res.Case = c
	res.Status = Pass
	start := time.Now()
	defer func() { res.Dur = time.Since(start) }()

	stage := "init"
	defer func() {
		if r := recover(); r != nil {
			res.Status = Fail
			res.Panicked = true
			res.Stage = stage
			res.Err = fmt.Sprintf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	fail := func(err error) Result {
		res.Status = Fail
		res.Stage = stage
		res.Err = err.Error()
		return res
	}

	if c.Kind == KindAdversarial {
		return runAdversarial(c, &stage, fail)
	}
	if c.Kind == KindDiagnose {
		return runDiagnose(c, &stage, fail)
	}
	if c.Kind == KindResume {
		return runResume(c, &stage, fail)
	}
	if c.Kind == KindChaos {
		return runChaos(c, &stage, fail)
	}
	if c.Kind == KindOverload {
		return runOverload(c, &stage, fail)
	}
	if c.Kind == KindObfuscate {
		return runObfuscate(c, &stage, fail)
	}

	stage = "gen"
	n, err := c.Generate()
	if err != nil {
		return fail(err)
	}
	bd := CanonicalBinding(c.M)
	res.Gates = n.NumGates()

	if c.Inject > 0 {
		stage = "inject"
		if nx := CountXor(n); nx > 0 {
			if n, err = FlipXor(n, (c.Inject-1)%nx); err != nil {
				return fail(err)
			}
		}
	}

	// Simulation oracle on the raw generator output: catches generator bugs
	// without involving optimization or the rewriting engine.
	stage = "sim-gen"
	if err := SimOracle(n, c.P, bd, c.SimTrials, c.Seed); err != nil {
		res.Netlist, res.Binding = n, bd
		return fail(err)
	}

	for _, pass := range c.Opt {
		stage = "opt:" + pass
		fn := Passes[pass]
		if fn == nil {
			return fail(fmt.Errorf("diffcheck: unknown pass %q", pass))
		}
		if n, err = fn(n); err != nil {
			return fail(err)
		}
	}
	if len(c.Opt) > 0 {
		// Simulation oracle again: catches function-breaking passes.
		stage = "sim-opt"
		if err := SimOracle(n, c.P, bd, c.SimTrials, c.Seed+1); err != nil {
			res.Netlist, res.Binding = n, bd
			return fail(err)
		}
	}

	if c.Scramble {
		stage = "scramble"
		scrambled, sm, err := ScrambleMapped(n, c.Seed)
		if err != nil {
			return fail(err)
		}
		bd = bd.afterScramble(n, scrambled, sm)
		n = scrambled
	}

	if c.Format != "" && c.Format != FormatNone {
		stage = "serialize"
		var buf bytes.Buffer
		switch c.Format {
		case FormatEQN:
			err = n.WriteEQN(&buf)
		case FormatBLIF:
			err = n.WriteBLIF(&buf)
		case FormatVerilog:
			err = n.WriteVerilog(&buf)
		default:
			err = fmt.Errorf("diffcheck: unknown format %q", c.Format)
		}
		if err != nil {
			return fail(err)
		}
		stage = "parse"
		switch c.Format {
		case FormatEQN:
			n, err = netlist.ReadEQN(&buf, n.Name)
		case FormatBLIF:
			n, err = netlist.ReadBLIF(&buf)
		case FormatVerilog:
			n, err = netlist.ReadVerilog(&buf)
		}
		if err != nil {
			return fail(err)
		}
	}
	res.Gates = n.NumGates()
	res.Netlist, res.Binding = n, bd

	// Lint oracle: a healthy generated design — optimized, scrambled and
	// round-tripped or not — must carry zero error-level findings.
	// Scrambled port names may demote the naming rules to info severity,
	// never to error; anything stronger is a generator or pass bug.
	stage = "lint"
	if rep := netlint.Analyze(n, netlint.Options{RequireMultiplier: true}); rep.HasErrors() {
		return fail(rep.Err())
	}

	// Pipeline oracle: extraction must recover the planted polynomial and
	// the golden-model verification (inside Extract) must pass.
	stage = "extract"
	var got gf2poly.Poly
	if c.Scramble {
		ext, _, err := extract.IrreduciblePolynomialInferred(n, extract.Options{Threads: c.Threads})
		if err != nil {
			return fail(err)
		}
		got = ext.P
	} else {
		ext, err := extract.IrreduciblePolynomial(n, extract.Options{Threads: c.Threads})
		if err != nil {
			return fail(err)
		}
		got = ext.P
		// Exercise the exported cross-check path on canonical ports too.
		stage = "sim-x"
		if err := extract.SimulationCrossCheck(n, ext, 1, c.Seed+2); err != nil {
			return fail(err)
		}
	}
	stage = "compare"
	if !got.Equal(c.P) {
		return fail(fmt.Errorf("diffcheck: extracted %v, planted %v", got, c.P))
	}

	// Final simulation oracle on the exact netlist extraction saw.
	stage = "sim-final"
	if err := SimOracle(n, c.P, bd, c.SimTrials, c.Seed+3); err != nil {
		return fail(err)
	}
	res.Netlist, res.Binding = nil, Binding{} // passing cases drop the context
	return res
}

// runDiagnose executes a fault-tolerance case: plant c.Inject XOR→OR trojans
// in distinct output cones of a matrix-form multiplier, then require that
//
//   - extract.Diagnose recovers the planted P(x) by consensus at tolerance
//     c.Inject despite the tampered cones, and
//   - the ranked suspect set localizes every planted gate: each trojan's
//     fanout cone must contain at least one suspect (sensitization cannot
//     distinguish a fault from its always-sensitized downstream path, so
//     "planted or fanout" is the sharpest assertable criterion).
func runDiagnose(c Case, stage *string, fail func(error) Result) Result {
	k := c.Inject
	if k <= 0 {
		k = 1
	}
	*stage = "gen"
	n, err := c.Generate()
	if err != nil {
		return fail(err)
	}

	// Pick one XOR in each of k distinct output cones, deterministically
	// from the case seed. Distinct cones keep the faults independent: two
	// trojans in one cone could partially mask each other, which is a
	// consensus scenario, not a localization one.
	*stage = "plant"
	xorIdx := map[int]int{}
	idx := 0
	for id := 0; id < n.NumGates(); id++ {
		if n.Gate(id).Type == netlist.Xor {
			xorIdx[id] = idx
			idx++
		}
	}
	r := rand.New(rand.NewSource(c.Seed))
	outs := n.Outputs()
	chosen := map[int]bool{}
	var ks []int
	for _, oi := range r.Perm(len(outs)) {
		if len(ks) == k {
			break
		}
		var inCone []int
		for _, id := range n.Cone(outs[oi]) {
			if xi, ok := xorIdx[id]; ok && !chosen[xi] {
				inCone = append(inCone, xi)
			}
		}
		if len(inCone) == 0 {
			continue
		}
		xi := inCone[r.Intn(len(inCone))]
		chosen[xi] = true
		ks = append(ks, xi)
	}
	if len(ks) < k {
		return fail(fmt.Errorf("diffcheck: only %d of %d cones have an unclaimed XOR to trojan", len(ks), k))
	}
	*stage = "inject"
	bad, planted, err := FlipXors(n, ks)
	if err != nil {
		return fail(err)
	}

	res := Result{Case: c, Status: Pass, Gates: bad.NumGates(), Diagnosed: true, LocRank: -1}
	*stage = "diagnose"
	ext, diag, err := extract.Diagnose(bad, extract.Options{Threads: c.Threads, Tolerate: k})
	if err != nil {
		return fail(err)
	}
	if !ext.P.Equal(c.P) {
		return fail(fmt.Errorf("diffcheck: diagnosed %v, planted %v", ext.P, c.P))
	}
	*stage = "localize"
	if diag.Faults == 0 {
		// The trojans were functionally masked; nothing to localize.
		res.LocHit = true
		return res
	}
	hits := 0
	for _, g := range planted {
		fan := map[int]bool{}
		for _, id := range bad.FanoutCone(g) {
			fan[id] = true
		}
		for rank, s := range diag.Suspects {
			if fan[s.Gate] {
				hits++
				if res.LocRank < 0 || rank < res.LocRank {
					res.LocRank = rank
				}
				break
			}
		}
	}
	res.LocHit = hits == len(planted)
	if !res.LocHit {
		return fail(fmt.Errorf("diffcheck: localization missed %d of %d planted gates (suspects %d, tampered bits %v)",
			len(planted)-hits, len(planted), len(diag.Suspects), diag.Tampered))
	}
	return res
}

// afterScramble rewrites the binding's names through a scramble: pre is the
// netlist the binding resolves in, post its scrambled copy.
func (bd Binding) afterScramble(pre, post *netlist.Netlist, sm *ScrambleMap) Binding {
	out := Binding{A: make([]string, len(bd.A)), B: make([]string, len(bd.B)), Out: make([]string, len(bd.Out))}
	for i, nm := range bd.A {
		id, _ := pre.Lookup(nm)
		out.A[i] = post.NameOf(sm.Gate[id])
	}
	for i, nm := range bd.B {
		id, _ := pre.Lookup(nm)
		out.B[i] = post.NameOf(sm.Gate[id])
	}
	prePos := map[string]int{}
	for pos, nm := range pre.OutputNames() {
		prePos[nm] = pos
	}
	postNames := post.OutputNames()
	for k, nm := range bd.Out {
		out.Out[k] = postNames[sm.OutPos[prePos[nm]]]
	}
	return out
}

// SimOracle checks the netlist against software GF(2^m) arithmetic:
// words×64 random vectors are simulated and every output bit is compared
// with the corresponding coefficient of A(x)·B(x) mod p. It is fully
// independent of the rewriting engine.
func SimOracle(n *netlist.Netlist, p gf2poly.Poly, bd Binding, words int, seed int64) error {
	a, b, outPos, err := bd.Resolve(n)
	if err != nil {
		return err
	}
	m := len(a)
	ins := n.Inputs()
	pos := make(map[int]int, len(ins))
	for i, id := range ins {
		pos[id] = i
	}
	r := rand.New(rand.NewSource(seed))
	for w := 0; w < words; w++ {
		in := make([]uint64, len(ins))
		for i := range in {
			in[i] = r.Uint64()
		}
		vals, err := n.Simulate(in)
		if err != nil {
			return err
		}
		outs := n.OutputWords(vals)
		for lane := 0; lane < 64; lane++ {
			var aTerms, bTerms []int
			for i := 0; i < m; i++ {
				if in[pos[a[i]]]>>uint(lane)&1 == 1 {
					aTerms = append(aTerms, i)
				}
				if in[pos[b[i]]]>>uint(lane)&1 == 1 {
					bTerms = append(bTerms, i)
				}
			}
			want := gf2poly.FromTerms(aTerms...).MulMod(gf2poly.FromTerms(bTerms...), p)
			for c := 0; c < m; c++ {
				got := outs[outPos[c]]>>uint(lane)&1 == 1
				if got != (want.Coeff(c) == 1) {
					return fmt.Errorf("diffcheck: simulation deviates from A·B mod %v at word %d lane %d bit %d",
						p, w, lane, c)
				}
			}
		}
	}
	return nil
}

// runAdversarial exercises the pipeline on a random non-multiplier DAG: the
// three formats must round-trip it function-identically (differential check
// across parsers/writers), and extraction must fail gracefully, not panic.
func runAdversarial(c Case, stage *string, fail func(error) Result) Result {
	r := rand.New(rand.NewSource(c.Seed))
	*stage = "adv-gen"
	n, err := randnet.New(r, randnet.Config{
		Inputs:    2 + r.Intn(10),
		Gates:     1 + r.Intn(150),
		Outputs:   1 + r.Intn(6),
		Luts:      r.Intn(2) == 0,
		Constants: r.Intn(3) == 0,
	})
	if err != nil {
		return fail(err)
	}
	res := Result{Case: c, Status: Pass, Gates: n.NumGates()}

	type rt struct {
		name  string
		write func(*netlist.Netlist, *bytes.Buffer) error
		read  func(*bytes.Buffer) (*netlist.Netlist, error)
	}
	formats := []rt{
		{"eqn",
			func(n *netlist.Netlist, b *bytes.Buffer) error { return n.WriteEQN(b) },
			func(b *bytes.Buffer) (*netlist.Netlist, error) { return netlist.ReadEQN(b, "rt") }},
		{"blif",
			func(n *netlist.Netlist, b *bytes.Buffer) error { return n.WriteBLIF(b) },
			func(b *bytes.Buffer) (*netlist.Netlist, error) { return netlist.ReadBLIF(b) }},
		{"verilog",
			func(n *netlist.Netlist, b *bytes.Buffer) error { return n.WriteVerilog(b) },
			func(b *bytes.Buffer) (*netlist.Netlist, error) { return netlist.ReadVerilog(b) }},
	}
	for _, f := range formats {
		*stage = "adv-roundtrip-" + f.name
		var buf bytes.Buffer
		if err := f.write(n, &buf); err != nil {
			return fail(err)
		}
		back, err := f.read(&buf)
		if err != nil {
			return fail(err)
		}
		if err := functionsAgree(n, back, c.Seed+7); err != nil {
			return fail(fmt.Errorf("%s round trip: %w", f.name, err))
		}
	}

	// Extraction on garbage: any error is fine, a panic is not (the deferred
	// recover in Run converts it into a Fail). The term budget makes the
	// exit deterministic on exploding DAGs — the governor aborts the cone
	// with ErrBudgetExceeded instead of racing the case timeout.
	*stage = "adv-extract"
	_, _ = extract.IrreduciblePolynomial(n, extract.Options{Threads: c.Threads, BudgetTerms: advTermBudget})
	*stage = "adv-extract-inferred"
	_, _, _ = extract.IrreduciblePolynomialInferred(n, extract.Options{Threads: c.Threads, BudgetTerms: advTermBudget})
	return res
}

// advTermBudget is the per-cone resident-term cap for adversarial
// extraction. Random DAGs are exactly the cancellation-free blowup the
// resource governor exists for; half a million terms is far beyond any
// in-range multiplier cone and still aborts a 2^50-term explosion in
// milliseconds.
const advTermBudget = 1 << 19

// functionsAgree simulates both netlists on shared random vectors and
// compares the primary-output words.
func functionsAgree(n1, n2 *netlist.Netlist, seed int64) error {
	if len(n1.Inputs()) != len(n2.Inputs()) || len(n1.Outputs()) != len(n2.Outputs()) {
		return fmt.Errorf("port counts changed: %d/%d inputs, %d/%d outputs",
			len(n1.Inputs()), len(n2.Inputs()), len(n1.Outputs()), len(n2.Outputs()))
	}
	r := rand.New(rand.NewSource(seed))
	for round := 0; round < 4; round++ {
		words := make([]uint64, len(n1.Inputs()))
		for i := range words {
			words[i] = r.Uint64()
		}
		v1, err := n1.Simulate(words)
		if err != nil {
			return err
		}
		v2, err := n2.Simulate(words)
		if err != nil {
			return err
		}
		o1, o2 := n1.OutputWords(v1), n2.OutputWords(v2)
		for i := range o1 {
			if o1[i] != o2[i] {
				return fmt.Errorf("output %d differs", i)
			}
		}
	}
	return nil
}
