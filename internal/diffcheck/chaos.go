package diffcheck

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/galoisfield/gfre/internal/checkpoint"
	"github.com/galoisfield/gfre/internal/extract"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/rewrite"
	"github.com/galoisfield/gfre/internal/shard"
)

// runChaos is the chaos-injection oracle for lease-based sharded extraction
// (package shard): it plants a known P(x), then executes the extraction
// through a pack of deliberately unreliable workers — workers are killed
// mid-lease, heartbeats are swallowed so leases expire under their owners,
// live leases are force-expired ("network partition"), submissions are
// delayed past the deadline, duplicated and submitted out of order. The
// oracle then demands that none of it mattered:
//
//   - the assembled extraction recovers exactly the planted P(x) and passes
//     golden-model verification;
//   - no cone result was ever accepted twice (Stats().DoubleAccepts == 0 —
//     the epoch fence held against every zombie);
//   - the run terminates (a hang is caught by the campaign's case timeout).
func runChaos(c Case, stage *string, fail func(error) Result) Result {
	*stage = "gen"
	n, err := c.Generate()
	if err != nil {
		return fail(err)
	}
	res := Result{Case: c, Status: Pass, Gates: n.NumGates()}

	hash, err := checkpoint.HashNetlist(n)
	if err != nil {
		return fail(err)
	}

	// Aggressive timings: leases must expire, back off and be stolen many
	// times within one case, so every recovery path actually runs.
	*stage = "pool"
	pool, err := shard.NewPool(shard.Config{
		Hash: hash, Bits: c.M,
		LeaseTTL:         40 * time.Millisecond,
		MaxConesPerLease: 4,
		BackoffBase:      time.Millisecond,
		BackoffCap:       8 * time.Millisecond,
		StealAge:         15 * time.Millisecond,
		Seed:             c.Seed,
	})
	if err != nil {
		return fail(err)
	}
	defer pool.Close()

	ctx, cancel := context.WithTimeout(context.Background(), chaosCaseBudget)
	defer cancel()

	ch := &chaosWorkers{
		pool: pool,
		rng:  rand.New(rand.NewSource(c.Seed ^ 0x5ca1ab1e)),
	}
	var wg sync.WaitGroup
	for w := 0; w < chaosWorkerCount; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ch.loop(ctx, n, w)
		}(w)
	}
	// The partitioner force-expires a random live lease now and then — the
	// scheduler-side view of a worker SIGKILL or network partition.
	partDone := make(chan struct{})
	go func() {
		defer close(partDone)
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Duration(10+ch.intn(30)) * time.Millisecond):
			}
			if id := ch.randomLease(); id != "" && pool.ExpireLease(id) {
				ch.count(&ch.forcedExpiries)
			}
		}
	}()

	*stage = "chaos-run"
	waitErr := pool.Wait(ctx)
	cancel()
	wg.Wait()
	<-partDone
	if waitErr != nil {
		return fail(fmt.Errorf("chaos extraction did not terminate within %v: %w (stats %+v)",
			chaosCaseBudget, waitErr, pool.Stats()))
	}

	stats := pool.Stats()
	res.Chaosed = true
	res.Kills = int(ch.kills)
	res.Expired = stats.Expired
	res.Fenced = stats.Fenced
	res.Stolen = stats.Stolen

	// The fence invariant: no cone accepted under two epochs, ever.
	*stage = "fence"
	if stats.DoubleAccepts != 0 {
		return fail(fmt.Errorf("chaos: %d cone results double-accepted — the epoch fence is broken (stats %+v)",
			stats.DoubleAccepts, stats))
	}
	if stats.Accepted != c.M {
		return fail(fmt.Errorf("chaos: %d cones accepted for %d bits (stats %+v)", stats.Accepted, c.M, stats))
	}

	// The pipeline oracle: the assembled result must yield exactly the
	// planted P(x), with golden-model verification passing.
	*stage = "assemble"
	rw := pool.Result()
	rw.Threads = chaosWorkerCount
	ext, _, err := extract.FromRewriteResult(n, rw, extract.Options{Threads: c.Threads})
	if err != nil {
		return fail(err)
	}
	*stage = "compare"
	if !ext.P.Equal(c.P) {
		return fail(fmt.Errorf("chaos: extracted %v, planted %v", ext.P, c.P))
	}
	if !ext.Verified {
		return fail(fmt.Errorf("chaos: golden-model verification did not run"))
	}
	return res
}

const (
	chaosWorkerCount = 4
	chaosCaseBudget  = 60 * time.Second
)

// chaosWorkers drives unreliable workers against one pool and tallies the
// faults it injected.
type chaosWorkers struct {
	pool *shard.Pool

	mu     sync.Mutex
	rng    *rand.Rand
	leases []string // recently seen lease IDs, for the partitioner to shoot at

	kills          int64 // workers killed mid-lease (cones abandoned)
	swallowedHB    int64 // heartbeats dropped so the lease expires under its owner
	dupSubmits     int64 // envelopes submitted twice
	splitSubmits   int64 // envelopes split and submitted tail-first
	delayedSubmits int64 // submissions delayed past the lease deadline
	forcedExpiries int64 // leases force-expired by the partitioner
}

func (ch *chaosWorkers) intn(n int) int {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.rng.Intn(n)
}

func (ch *chaosWorkers) count(p *int64) {
	ch.mu.Lock()
	*p++
	ch.mu.Unlock()
}

func (ch *chaosWorkers) recordLease(id string) {
	ch.mu.Lock()
	ch.leases = append(ch.leases, id)
	if len(ch.leases) > 32 {
		ch.leases = ch.leases[len(ch.leases)-32:]
	}
	ch.mu.Unlock()
}

func (ch *chaosWorkers) randomLease() string {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if len(ch.leases) == 0 {
		return ""
	}
	return ch.leases[ch.rng.Intn(len(ch.leases))]
}

// loop is one unreliable worker: it leases, computes, and mistreats the
// lease protocol in every way a real distributed worker could.
func (ch *chaosWorkers) loop(ctx context.Context, n *netlist.Netlist, w int) {
	name := fmt.Sprintf("chaos-%d", w)
	for ctx.Err() == nil {
		g, err := ch.pool.Lease(name, 0)
		switch {
		case errors.Is(err, shard.ErrDone):
			return
		case err != nil:
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Duration(1+ch.intn(4)) * time.Millisecond):
			}
			continue
		}
		ch.recordLease(g.Lease)
		ch.execute(ctx, n, g)
	}
}

// execute computes the cones of one grant under a chaos regime drawn per
// lease: killed mid-lease, heartbeat-starved, or merely abused on submit.
func (ch *chaosWorkers) execute(ctx context.Context, n *netlist.Netlist, g *shard.Grant) {
	regime := ch.intn(10)

	// Regimes 0-1: SIGKILL mid-lease — maybe compute a cone, submit
	// nothing. The lease expires and every cone re-queues elsewhere.
	if regime < 2 {
		ch.count(&ch.kills)
		if len(g.Cones) > 0 && ch.intn(2) == 0 {
			rewrite.RewriteCone(n, g.Cones[0], rewrite.Options{Ctx: ctx})
		}
		return
	}

	// Regimes 2-3 starve the heartbeat: the lease expires under its owner
	// while it keeps computing, so the eventual submission must be fenced
	// (or deduped), never double-counted. Other regimes renew properly.
	starve := regime < 4
	if starve {
		ch.count(&ch.swallowedHB)
	}
	hbCtx, hbCancel := context.WithCancel(ctx)
	defer hbCancel()
	var hbWG sync.WaitGroup
	if !starve {
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			t := time.NewTicker(10 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-hbCtx.Done():
					return
				case <-t.C:
					if _, err := ch.pool.Renew(g.Lease, g.Epoch); err != nil {
						return
					}
				}
			}
		}()
	}

	var cones []checkpoint.Cone
	for _, bit := range g.Cones {
		if ctx.Err() != nil {
			break
		}
		br, _ := rewrite.RewriteCone(n, bit, rewrite.Options{Ctx: ctx})
		if br.Status == rewrite.StatusCancelled {
			continue
		}
		cones = append(cones, checkpoint.FromBitResult(br))
	}
	hbCancel()
	hbWG.Wait()
	if len(cones) == 0 {
		return
	}

	// Delay some submissions past the lease TTL — the scheduler must fence
	// or dedup them.
	if ch.intn(4) == 0 {
		ch.count(&ch.delayedSubmits)
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Duration(30+ch.intn(40)) * time.Millisecond):
		}
	}
	// Reorder: split the envelope and submit the tail first; otherwise one
	// envelope. Errors (fenced leases) are the scheduler's business.
	if len(cones) > 1 && ch.intn(3) == 0 {
		ch.count(&ch.splitSubmits)
		half := len(cones) / 2
		ch.pool.Submit(g.Lease, g.Epoch, cones[half:])
		ch.pool.Submit(g.Lease, g.Epoch, cones[:half])
	} else {
		ch.pool.Submit(g.Lease, g.Epoch, cones)
	}
	// Duplicate: re-send the whole envelope (idempotency probe).
	if ch.intn(3) == 0 {
		ch.count(&ch.dupSubmits)
		ch.pool.Submit(g.Lease, g.Epoch, cones)
	}
}
