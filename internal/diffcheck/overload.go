package diffcheck

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/obs"
	"github.com/galoisfield/gfre/internal/server"
)

// runOverload is the adversarial-tenant oracle for the gfred admission and
// scheduling plane (package server): a small queue — 16 slots, 2 workers —
// is attacked by a greedy batch-flooder and a deadline-abuser while one
// well-behaved tenant slow-drips ordinary jobs through the same front door.
// The oracle demands that multi-tenant isolation actually held:
//
//   - every well-behaved job completes with exactly the planted P(x),
//     golden-model verified, and its p99 latency stays bounded — the flood
//     cannot starve a polite tenant;
//   - no quota was ever violated: sampled concurrently with the attack, no
//     tenant exceeds its MaxActive or MaxRunning grant;
//   - the batch-flooder's identical submissions collapse onto one extraction
//     (dedup observed), its overflow is rejected by its own token bucket
//     (quota rejections observed), and the deadline-abuser's expired jobs
//     fail without burning a worker (deadline expiries observed);
//   - every accepted job reaches exactly one terminal event — admission
//     under attack never loses or double-settles a job.
func runOverload(c Case, stage *string, fail func(error) Result) Result {
	*stage = "gen"
	n, err := c.Generate()
	if err != nil {
		return fail(err)
	}
	res := Result{Case: c, Status: Pass, Gates: n.NumGates()}
	var wellBuf bytes.Buffer
	if err := n.WriteEQN(&wellBuf); err != nil {
		return fail(err)
	}
	wellSrc := wellBuf.String()

	// The adversaries attack with their own multipliers (distinct content,
	// distinct architectures); the oracle only asserts the well-behaved
	// tenant's extractions, the adversaries exist to saturate the queue.
	r := rand.New(rand.NewSource(c.Seed ^ 0x0ff10ad))
	greedySrc, err := overloadSource(r, gen.MastrovitoMatrix)
	if err != nil {
		return fail(err)
	}
	abuseSrc, err := overloadSource(r, gen.Montgomery)
	if err != nil {
		return fail(err)
	}

	*stage = "queue"
	dir, err := os.MkdirTemp("", "gfre-overload-*")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(dir)
	journal := obs.NewJournal(1 << 16)
	policy := server.TenantPolicy{
		Tenants: map[string]server.TenantQuota{
			// The polite tenant: high weight, good priority, no caps.
			"well": {Weight: 4, Priority: 2},
			// The flooder: a tight token bucket plus active/running caps; its
			// own quota, not global collapse, must absorb the flood.
			"greedy": {Rate: 150, Burst: 8, MaxActive: 7, MaxRunning: 1, Priority: 6},
			// The deadline-abuser: lowest class, so stage-1 shedding and the
			// dispatcher both deprioritize it.
			"abuser": {MaxActive: 4, MaxRunning: 1, Priority: 8},
		},
	}
	q, err := server.NewQueue(server.Config{
		Dir: dir, Capacity: 16, Workers: 2, MaxAttempts: 1,
		RetrySeed: c.Seed, Journal: journal,
		AgingStep: 25 * time.Millisecond,
		Policy:    policy,
	})
	if err != nil {
		return fail(err)
	}
	defer q.Drain(time.Second)
	metrics := q.Recorder().Metrics()

	ctx, cancel := context.WithTimeout(context.Background(), overloadCaseBudget)
	defer cancel()

	var (
		mu       sync.Mutex
		accepted []string
	)
	admit := func(items []server.BatchItem) {
		mu.Lock()
		for _, it := range items {
			if it.Err == nil {
				accepted = append(accepted, it.State.ID)
			}
		}
		mu.Unlock()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// The greedy tenant floods batches: five identical items per round (the
	// dedup probe) plus three knob-varied ones that force real extractions
	// (the capacity probe). Rounds are bounded so the journal cannot wrap.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < overloadMaxRounds; round++ {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-time.After(2 * time.Millisecond):
			}
			specs := make([]*server.JobSpec, 0, 8)
			for i := 0; i < 5; i++ {
				specs = append(specs, &server.JobSpec{Netlist: greedySrc, Name: "flood", Tenant: "greedy"})
			}
			for i := 0; i < 3; i++ {
				specs = append(specs, &server.JobSpec{
					Netlist: greedySrc, Name: "flood-u", Tenant: "greedy",
					// A distinct (harmless) knob defeats dedup: each of these
					// is new content for the hash and extracts for real.
					ConeDeadlineMS: int64(600000 + round*8 + i),
				})
			}
			admit(q.SubmitBatch(specs))
		}
	}()

	// The abuser submits jobs whose 1ms deadline cannot survive any queueing:
	// they must expire at dispatch — counted, not retried, not extracted.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < overloadMaxRounds; round++ {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-time.After(3 * time.Millisecond):
			}
			st, err := q.Submit(&server.JobSpec{
				Netlist: abuseSrc, Name: "abuse", Tenant: "abuser", DeadlineMS: 1,
			})
			admit([]server.BatchItem{{State: st, Err: err}})
		}
	}()

	// The quota monitor samples tenant state concurrently with the attack:
	// a single observation above MaxActive or MaxRunning is a violation.
	violations := make(chan string, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-time.After(2 * time.Millisecond):
			}
			for _, ts := range q.Tenants() {
				quota := policy.Quota(ts.Tenant)
				switch {
				case quota.MaxActive > 0 && ts.Active > quota.MaxActive:
					overloadViolation(violations, fmt.Sprintf("tenant %s active %d > quota %d", ts.Tenant, ts.Active, quota.MaxActive))
				case quota.MaxRunning > 0 && ts.Running > quota.MaxRunning:
					overloadViolation(violations, fmt.Sprintf("tenant %s running %d > quota %d", ts.Tenant, ts.Running, quota.MaxRunning))
				}
			}
		}
	}()

	// The well-behaved tenant slow-drips jobs and times each one end to end.
	// Admission retries on transient rejection (a polite client's behavior);
	// the latency clock starts at acceptance.
	*stage = "drive"
	var latencies []time.Duration
	wellDone := 0
	for i := 0; i < overloadWellJobs; i++ {
		st, err := overloadSubmitWell(ctx, q, wellSrc, fmt.Sprintf("well-%d", i))
		if err != nil {
			close(stop)
			wg.Wait()
			return fail(err)
		}
		admit([]server.BatchItem{{State: st, Err: nil}})
		start := time.Now()
		final, err := overloadAwait(ctx, q, st.ID)
		if err != nil {
			close(stop)
			wg.Wait()
			return fail(err)
		}
		latencies = append(latencies, time.Since(start))
		if final.Status != server.StatusDone {
			close(stop)
			wg.Wait()
			return fail(fmt.Errorf("overload: well job %s ended %s under attack: %s", st.ID, final.Status, final.Error))
		}
		got, err := gf2poly.Parse(final.Result.Polynomial)
		if err != nil {
			close(stop)
			wg.Wait()
			return fail(fmt.Errorf("overload: well job %s result unparsable: %v", st.ID, err))
		}
		if !got.Equal(c.P) {
			close(stop)
			wg.Wait()
			return fail(fmt.Errorf("overload: well job extracted %v, planted %v", got, c.P))
		}
		if !final.Result.Verified {
			close(stop)
			wg.Wait()
			return fail(fmt.Errorf("overload: well job %s skipped golden-model verification", st.ID))
		}
		wellDone++
	}
	close(stop)
	wg.Wait()

	select {
	case v := <-violations:
		return fail(fmt.Errorf("overload: quota violated under attack: %s", v))
	default:
	}

	// Settle: with the attack stopped, every accepted job must reach a
	// terminal state on its own (expired, deduped, extracted, or failed).
	*stage = "settle"
	mu.Lock()
	ids := append([]string(nil), accepted...)
	mu.Unlock()
	for _, id := range ids {
		if _, err := overloadAwait(ctx, q, id); err != nil {
			return fail(fmt.Errorf("overload: job %s never settled: %v", id, err))
		}
	}

	// Deterministic deadline probe: if the racing abuser never managed to
	// expire a job (an idle-enough queue dispatches within 1ms), park a
	// 1ms-deadline job behind a wall of blockers until one expires.
	*stage = "deadline"
	for round := 0; metrics.Counter("jobs_deadline_expired").Value() == 0 && round < 3; round++ {
		var probe []string
		for i := 0; i < 4*(round+1); i++ {
			st, err := overloadSubmitWell(ctx, q, wellSrc, fmt.Sprintf("blocker-%d-%d", round, i))
			if err != nil {
				return fail(err)
			}
			probe = append(probe, st.ID)
		}
		st, err := q.Submit(&server.JobSpec{
			Netlist: abuseSrc, Name: "abuse-probe", Tenant: "abuser", DeadlineMS: 1,
		})
		if err == nil {
			probe = append(probe, st.ID)
		}
		for _, id := range probe {
			if _, err := overloadAwait(ctx, q, id); err != nil {
				return fail(err)
			}
		}
		ids = append(ids, probe...)
	}

	res.Overloaded = true
	res.QuotaRejects = int(metrics.Counter("jobs_quota_rejected").Value())
	res.ShedRejects = int(metrics.Counter("jobs_shed").Value())
	res.Deduped = int(metrics.Counter("jobs_deduped").Value())
	res.DeadlineExpired = int(metrics.Counter("jobs_deadline_expired").Value())

	*stage = "assert"
	if res.QuotaRejects == 0 {
		return fail(fmt.Errorf("overload: the flood was never quota-rejected — admission control did not engage"))
	}
	if res.Deduped == 0 {
		return fail(fmt.Errorf("overload: identical batch items were never deduplicated"))
	}
	if res.DeadlineExpired == 0 {
		return fail(fmt.Errorf("overload: no 1ms-deadline job ever expired, even behind %d blockers", 4+8+12))
	}
	if wellDone != overloadWellJobs {
		return fail(fmt.Errorf("overload: %d of %d well-behaved jobs completed", wellDone, overloadWellJobs))
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	res.WellP99MS = p99.Milliseconds()
	if p99 > overloadWellP99Budget {
		return fail(fmt.Errorf("overload: well-behaved p99 %v exceeds %v — the flood starved the polite tenant", p99, overloadWellP99Budget))
	}

	// The ledger invariant: every accepted job owes exactly one terminal
	// event, however it ended.
	*stage = "ledger"
	terminals := map[string]int{}
	events, _ := journal.ReplaySince(0)
	for _, ev := range events {
		if ev.Ev == "job_done" || ev.Ev == "job_failed" {
			terminals[ev.Job]++
		}
	}
	for _, id := range ids {
		if terminals[id] != 1 {
			return fail(fmt.Errorf("overload: job %s has %d terminal events, want exactly 1", id, terminals[id]))
		}
	}
	return res
}

const (
	overloadCaseBudget    = 60 * time.Second
	overloadWellJobs      = 6
	overloadMaxRounds     = 250
	overloadWellP99Budget = 5 * time.Second
)

// overloadSource generates a small multiplier in the given architecture and
// renders it to EQN text for submission.
func overloadSource(r *rand.Rand, generate func(int, gf2poly.Poly) (*netlist.Netlist, error)) (string, error) {
	m := 4 + r.Intn(4)
	p, err := gf2poly.RandomIrreducible(r, m)
	if err != nil {
		return "", err
	}
	n, err := generate(m, p)
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := n.WriteEQN(&buf); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// overloadSubmitWell submits one well-tenant job, retrying transient
// admission rejections (full queue, shed stage) until the context expires.
func overloadSubmitWell(ctx context.Context, q *server.Queue, src, name string) (*server.JobState, error) {
	for {
		st, err := q.Submit(&server.JobSpec{Netlist: src, Name: name, Tenant: "well"})
		switch {
		case err == nil:
			return st, nil
		case errors.Is(err, server.ErrQueueFull) || errors.Is(err, server.ErrOverloaded):
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("overload: well tenant starved of admission: %w", err)
			case <-time.After(time.Millisecond):
			}
		default:
			return nil, fmt.Errorf("overload: well tenant rejected: %w", err)
		}
	}
}

// overloadAwait polls the job to a terminal state.
func overloadAwait(ctx context.Context, q *server.Queue, id string) (*server.JobState, error) {
	for {
		st, err := q.Get(id)
		if err != nil {
			return nil, err
		}
		if st.Status.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("overload: job %s still %s at case budget", id, st.Status)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// overloadViolation records the first quota violation (later ones drop).
func overloadViolation(ch chan string, msg string) {
	select {
	case ch <- msg:
	default:
	}
}
