package diffcheck

import (
	"errors"
	"fmt"
	"testing"

	"github.com/galoisfield/gfre/internal/extract"
	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/polytab"
	"github.com/galoisfield/gfre/internal/rewrite"
)

func TestFlipXors(t *testing.T) {
	p8 := gf2poly.MustParse("x^8+x^4+x^3+x+1")
	n, err := gen.MastrovitoMatrix(8, p8)
	if err != nil {
		t.Fatal(err)
	}
	nx := CountXor(n)
	if nx < 4 {
		t.Fatalf("test premise: need >= 4 XORs, have %d", nx)
	}
	bad, flipped, err := FlipXors(n, []int{1, nx - 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(flipped) != 2 {
		t.Fatalf("flipped = %v, want 2 gates", flipped)
	}
	for _, id := range flipped {
		if got := bad.Gate(id).Type; got != netlist.Or {
			t.Errorf("gate %d type = %v, want Or", id, got)
		}
	}
	if got := CountXor(bad); got != nx-2 {
		t.Errorf("trojaned netlist has %d XORs, want %d", got, nx-2)
	}
	// Out-of-range and duplicate indices must error, not mangle the netlist.
	if _, _, err := FlipXors(n, []int{nx}); err == nil {
		t.Error("out-of-range XOR index must fail")
	}
	if _, _, err := FlipXors(n, []int{0, 0}); err == nil {
		t.Error("duplicate XOR index must fail")
	}
}

func TestDiagnoseCaseRecoversAndLocalizes(t *testing.T) {
	p8 := gf2poly.MustParse("x^8+x^4+x^3+x+1")
	res := Run(Case{Kind: KindDiagnose, M: 8, P: p8, Arch: ArchMatrix, Inject: 1, Seed: 42})
	if res.Status != Pass {
		t.Fatalf("%s at %s: %s", res.Status, res.Stage, res.Err)
	}
	if !res.Diagnosed || !res.LocHit {
		t.Fatalf("result = %+v, want diagnosed with localization hit", res)
	}
	if res.LocRank < 0 {
		t.Errorf("LocRank = %d, want a real suspect rank", res.LocRank)
	}
}

func TestDiagnoseCampaignLocalizationPrecision(t *testing.T) {
	sum, err := RunCampaign(Config{
		N: 4, Seed: 11, Workers: 2,
		Diagnose: true, Inject: 1, MinM: 5, MaxM: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Diagnosed != 4 {
		t.Fatalf("Diagnosed = %d, want 4 (summary %+v)", sum.Diagnosed, sum)
	}
	if sum.Failed != 0 {
		t.Fatalf("diagnosis campaign failed %d cases: %+v", sum.Failed, sum.Failures)
	}
	if got := sum.LocPrecision(); got != 1.0 {
		t.Errorf("localization precision = %v, want 1.0", got)
	}
	if sum.MedianLocRank() < 0 {
		t.Errorf("median rank = %d, want >= 0", sum.MedianLocRank())
	}
}

// TestDiagnoseTwoTrojansGF64 is the headline acceptance scenario: a
// GF(2^64) matrix-form Mastrovito multiplier built on the NIST polynomial,
// with trojans planted in two different output cones, must still yield the
// correct P(x) at tolerance 2, and the diagnosis must place a suspect
// inside each planted gate's fanout cone.
func TestDiagnoseTwoTrojansGF64(t *testing.T) {
	if testing.Short() {
		t.Skip("GF(2^64) extraction in -short mode")
	}
	res := Run(Case{
		Kind: KindDiagnose, M: 64, P: polytab.NIST[64],
		Arch: ArchMatrix, Inject: 2, Seed: 7, Threads: 8,
	})
	if res.Status != Pass {
		t.Fatalf("%s at %s: %s", res.Status, res.Stage, res.Err)
	}
	if !res.LocHit {
		t.Fatal("localization missed a planted trojan")
	}
}

// TestAdversarialBudgetAbort pins the governed failure mode on a
// cancellation-free exploding circuit (the worst-case non-multiplier):
// extraction under a term budget must end in ErrBudgetExceeded — a clean,
// typed abort — rather than exhausting memory.
func TestAdversarialBudgetAbort(t *testing.T) {
	const l = 16
	n := netlist.New("explode")
	var sums, prods []int
	for i := 0; i < l; i++ {
		ai, _ := n.AddInput(fmt.Sprintf("a%d", i))
		bi, _ := n.AddInput(fmt.Sprintf("b%d", i))
		x, _ := n.AddGate(netlist.Xor, ai, bi)
		sums = append(sums, x)
		pr, _ := n.AddGate(netlist.And, ai, bi)
		prods = append(prods, pr)
	}
	for len(sums) > 1 {
		var next []int
		for i := 0; i+1 < len(sums); i += 2 {
			g, _ := n.AddGate(netlist.And, sums[i], sums[i+1])
			next = append(next, g)
		}
		if len(sums)%2 == 1 {
			next = append(next, sums[len(sums)-1])
		}
		sums = next
	}
	for i := 0; i < l-1; i++ {
		if err := n.MarkOutput(fmt.Sprintf("z%d", i), prods[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.MarkOutput(fmt.Sprintf("z%d", l-1), sums[0]); err != nil {
		t.Fatal(err)
	}

	_, err := extract.IrreduciblePolynomial(n, extract.Options{Threads: 2, BudgetTerms: 4096})
	if !errors.Is(err, rewrite.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}
