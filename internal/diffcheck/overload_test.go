package diffcheck

import (
	"testing"
	"time"
)

// TestOverloadCaseIsolatesTenants runs overload cases directly: under a
// greedy batch-flooder and a deadline-abuser, the well-behaved tenant must
// still extract its planted P(x) at bounded latency, no quota may be
// violated, and the attack machinery (quota rejection, dedup collapse,
// deadline expiry) must all demonstrably fire.
func TestOverloadCaseIsolatesTenants(t *testing.T) {
	if testing.Short() {
		t.Skip("overload cases take seconds each")
	}
	cfg := Config{Seed: 17, Overload: true, MinM: 4, MaxM: 8}
	for idx := 0; idx < 2; idx++ {
		c := NewCase(idx, cfg)
		if c.Kind != KindOverload {
			t.Fatalf("case %d sampled kind %q, want overload", idx, c.Kind)
		}
		res := Run(c)
		if res.Status != Pass {
			t.Fatalf("case %d [%s] failed at %s: %s", idx, c.Label(), res.Stage, res.Err)
		}
		if !res.Overloaded {
			t.Fatalf("case %d did not run the overload pipeline", idx)
		}
		if res.QuotaRejects == 0 || res.Deduped == 0 || res.DeadlineExpired == 0 {
			t.Fatalf("case %d engaged no admission machinery: %+v", idx, res)
		}
	}
}

// TestOverloadCampaignAggregates runs a small overload campaign end to end
// and checks the summary carries the admission tallies: a campaign in which
// no quota ever rejected and nothing ever deduped means the adversarial
// tenants are not actually attacking.
func TestOverloadCampaignAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("overload campaigns take seconds")
	}
	sum, err := RunCampaign(Config{
		N: 2, Seed: 5, Overload: true, MinM: 4, MaxM: 7,
		Workers: 1, Timeout: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 {
		for _, f := range sum.Failures {
			t.Errorf("FAIL case %d [%s] at %s: %s", f.Case.Index, f.Case.Label(), f.Stage, f.Err)
		}
		t.Fatalf("%d of %d overload cases failed", sum.Failed, sum.Cases)
	}
	if sum.Overloaded != 2 {
		t.Fatalf("Overloaded = %d, want 2", sum.Overloaded)
	}
	if sum.QuotaRejects == 0 || sum.Deduped == 0 || sum.DeadlinesExpired == 0 {
		t.Fatalf("campaign engaged no admission machinery: %+v", sum)
	}
	if sum.ByArch["overload"] != 2 {
		t.Fatalf("ByArch = %v", sum.ByArch)
	}
}
