package diffcheck

import (
	"testing"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlint"
)

// TestObfuscateCaseEveryStyle runs one direct case per lock style: the clean
// design must lint key-silent, the locked design must stay functionally
// intact under the all-zeros key, and the detector must recover exactly the
// planted key set.
func TestObfuscateCaseEveryStyle(t *testing.T) {
	p8 := gf2poly.MustParse("x^8+x^4+x^3+x+1")
	for _, lock := range LockStyles() {
		c := Case{
			Kind: KindObfuscate, M: 8, P: p8, Arch: ArchMastrovito,
			Lock: lock, Keys: 3, Seed: 41, SimTrials: 4,
		}
		res := Run(c)
		if res.Status != Pass {
			t.Fatalf("[%s] failed at %s: %s", c.Label(), res.Stage, res.Err)
		}
		if !res.Obfuscated || res.KeysPlanted != 3 || res.KeysDetected != 3 {
			t.Fatalf("[%s] planted/detected = %d/%d (obfuscated=%v), want 3/3",
				c.Label(), res.KeysPlanted, res.KeysDetected, res.Obfuscated)
		}
		if (lock == "opaque") != res.OpaqueHit {
			t.Fatalf("[%s] OpaqueHit = %v", c.Label(), res.OpaqueHit)
		}
	}
}

// TestObfuscateCampaignAggregates runs a small campaign end to end: every
// case passes, and the summary's planted/detected tallies balance (the
// per-case exact-set oracle makes any imbalance a failed case first).
func TestObfuscateCampaignAggregates(t *testing.T) {
	sum, err := RunCampaign(Config{N: 10, Seed: 17, Obfuscate: true, MinM: 4, MaxM: 10, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 {
		for _, f := range sum.Failures {
			t.Errorf("FAIL case %d [%s] at %s: %s", f.Case.Index, f.Case.Label(), f.Stage, f.Err)
		}
		t.Fatalf("%d of %d obfuscation cases failed", sum.Failed, sum.Cases)
	}
	if sum.Obfuscated != 10 {
		t.Fatalf("Obfuscated = %d, want 10", sum.Obfuscated)
	}
	if sum.KeysPlanted == 0 || sum.KeysDetected != sum.KeysPlanted {
		t.Fatalf("keys detected/planted = %d/%d, want equal and nonzero",
			sum.KeysDetected, sum.KeysPlanted)
	}
	if sum.ByArch["obfuscate"] != 10 {
		t.Fatalf("ByArch = %v", sum.ByArch)
	}
}

// TestObfuscateWrongKeyDeviates pins that the lock is a real lock: under an
// incorrect key at least one XOR-locked output must deviate from the clean
// function (otherwise the "obfuscation" is a no-op and detecting it proves
// nothing).
func TestObfuscateWrongKeyDeviates(t *testing.T) {
	p8 := gf2poly.MustParse("x^8+x^4+x^3+x+1")
	n, err := gen.Mastrovito(8, p8)
	if err != nil {
		t.Fatal(err)
	}
	obf, info, err := gen.Obfuscate(n, gen.ObfuscateOptions{Style: gen.ObfXor, Keys: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Correct key (all zeros) agrees...
	if err := lockedEquiv(n, obf, len(info.KeyInputs), 2, 1); err != nil {
		t.Fatalf("correct key: %v", err)
	}
	// ...a stuck-high key does not.
	in := make([]uint64, len(n.Inputs()))
	for i := range in {
		in[i] = 0x5555aaaa5555aaaa
	}
	lin := make([]uint64, len(obf.Inputs()))
	copy(lin, in)
	for i := len(in); i < len(lin); i++ {
		lin[i] = ^uint64(0)
	}
	cv, err := n.Simulate(in)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := obf.Simulate(lin)
	if err != nil {
		t.Fatal(err)
	}
	co, lo := n.OutputWords(cv), obf.OutputWords(lv)
	same := true
	for i := range co {
		if co[i] != lo[i] {
			same = false
		}
	}
	if same {
		t.Fatal("wrong key produced identical outputs: the lock is a no-op")
	}
}

// TestLockedDesignPreflightWarns pins the gflint contract for locked
// multipliers: RequireMultiplier analysis must warn (key-gate plus the
// key-aware io-shape note) without erroring, so -strict rejects the design
// while plain preflight still describes it.
func TestLockedDesignPreflightWarns(t *testing.T) {
	p8 := gf2poly.MustParse("x^8+x^4+x^3+x+1")
	n, err := gen.Mastrovito(8, p8)
	if err != nil {
		t.Fatal(err)
	}
	obf, info, err := gen.Obfuscate(n, gen.ObfuscateOptions{Style: gen.ObfMux, Keys: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep := netlint.Analyze(obf, netlint.Options{RequireMultiplier: true})
	if rep.HasErrors() {
		t.Fatalf("locked design escalated to error: %v", rep.Err())
	}
	var keyGate, ioShapeWarn bool
	for _, f := range rep.Findings {
		if f.Rule == "key-gate" {
			keyGate = true
		}
		if f.Rule == "io-shape" && f.Severity == netlint.SevWarn {
			ioShapeWarn = true
		}
	}
	if !keyGate || !ioShapeWarn {
		t.Fatalf("keyGate=%v ioShapeWarn=%v; findings: %+v", keyGate, ioShapeWarn, rep.Findings)
	}
	if got := len(rep.Algebra.GatedKeyInputs); got != len(info.KeyNames) {
		t.Fatalf("GatedKeyInputs = %v, planted %v", rep.Algebra.GatedKeyInputs, info.KeyNames)
	}
}
