package diffcheck

import (
	"testing"
	"time"
)

// TestChaosCaseRecoversPlantedP runs a handful of chaos cases directly:
// despite killed workers, expired leases and duplicated submissions, each
// must recover its planted P(x) exactly with zero double-accepted cones.
func TestChaosCaseRecoversPlantedP(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos cases take seconds each")
	}
	cfg := Config{Seed: 11, Chaos: true, MinM: 4, MaxM: 8}
	for idx := 0; idx < 4; idx++ {
		c := NewCase(idx, cfg)
		if c.Kind != KindChaos {
			t.Fatalf("case %d sampled kind %q, want chaos", idx, c.Kind)
		}
		res := Run(c)
		if res.Status != Pass {
			t.Fatalf("case %d [%s] failed at %s: %s", idx, c.Label(), res.Stage, res.Err)
		}
		if !res.Chaosed {
			t.Fatalf("case %d did not run the chaos pipeline", idx)
		}
	}
}

// TestChaosCampaignAggregates runs a small campaign end to end and checks
// the summary carries the chaos tallies: with 40ms leases and a partitioner
// in play, a multi-case campaign that never expires a lease would mean the
// fault injection is not actually firing.
func TestChaosCampaignAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaigns take seconds")
	}
	sum, err := RunCampaign(Config{
		N: 6, Seed: 3, Chaos: true, MinM: 4, MaxM: 7,
		Workers: 2, Timeout: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 {
		for _, f := range sum.Failures {
			t.Errorf("FAIL case %d [%s] at %s: %s", f.Case.Index, f.Case.Label(), f.Stage, f.Err)
		}
		t.Fatalf("%d of %d chaos cases failed", sum.Failed, sum.Cases)
	}
	if sum.Chaosed != 6 {
		t.Fatalf("Chaosed = %d, want 6", sum.Chaosed)
	}
	if sum.ChaosExpired == 0 {
		t.Fatal("no lease ever expired across the campaign: fault injection is not firing")
	}
	if sum.ByArch["chaos"] != 6 {
		t.Fatalf("ByArch = %v", sum.ByArch)
	}
}
