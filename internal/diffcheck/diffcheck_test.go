package diffcheck

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/polytab"
)

func TestRunPassesEveryArchitecture(t *testing.T) {
	p8 := gf2poly.MustParse("x^8+x^4+x^3+x+1")
	for _, arch := range AllArchs() {
		c := Case{Kind: KindMultiplier, M: 8, P: p8, Arch: arch, Digit: 3, Format: FormatNone}
		res := Run(c)
		if res.Status != Pass {
			t.Errorf("%s: %s at %s: %s", arch, res.Status, res.Stage, res.Err)
		}
	}
}

func TestRunPassesEveryFormatAndScramble(t *testing.T) {
	p, err := gf2poly.RandomIrreducible(rand.New(rand.NewSource(5)), 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range AllFormats() {
		for _, scramble := range []bool{false, true} {
			if scramble && !InferenceSafe(p) {
				t.Skip("sampled polynomial not inference-safe")
			}
			c := Case{Kind: KindMultiplier, M: 9, P: p, Arch: ArchMastrovito,
				Format: format, Scramble: scramble, Seed: 17}
			res := Run(c)
			if res.Status != Pass {
				t.Errorf("%s/scramble=%v: %s at %s: %s", format, scramble, res.Status, res.Stage, res.Err)
			}
		}
	}
}

func TestRunWithOptPasses(t *testing.T) {
	p8 := gf2poly.MustParse("x^8+x^4+x^3+x+1")
	for _, passes := range [][]string{{"simplify"}, {"synth"}, {"balance", "techmap-nand"}, {"aoi", "simplify"}} {
		c := Case{Kind: KindMultiplier, M: 8, P: p8, Arch: ArchKaratsuba,
			Opt: passes, Format: FormatBLIF, Seed: 3}
		res := Run(c)
		if res.Status != Pass {
			t.Errorf("%v: %s at %s: %s", passes, res.Status, res.Stage, res.Err)
		}
	}
}

func TestRunCatchesInjectedBug(t *testing.T) {
	// A single flipped gate anywhere must surface at one of the oracle
	// stages — this is the harness's reason to exist.
	p8 := gf2poly.MustParse("x^8+x^4+x^3+x+1")
	n, err := gen.Mastrovito(8, p8)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 7, 23} {
		bad, err := FlipXor(n, k)
		if err != nil {
			t.Fatal(err)
		}
		bd := CanonicalBinding(8)
		if err := SimOracle(bad, p8, bd, 4, 1); err == nil {
			t.Errorf("flip %d: simulation oracle missed the corruption", k)
		}
		dev, err := Deviations(bad, p8, bd, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(dev) == 0 {
			t.Errorf("flip %d: exhaustive deviation check found nothing", k)
		}
	}
}

func TestScrambleKeepsFunctionAndMap(t *testing.T) {
	p8 := gf2poly.MustParse("x^8+x^4+x^3+x+1")
	n, err := gen.Mastrovito(8, p8)
	if err != nil {
		t.Fatal(err)
	}
	sc, sm, err := ScrambleMapped(n, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(sm.Gate) != n.NumGates() || len(sm.OutPos) != 8 {
		t.Fatalf("scramble map sizes: %d gates, %d outputs", len(sm.Gate), len(sm.OutPos))
	}
	for _, nm := range sc.OutputNames() {
		if !strings.HasPrefix(nm, "port_") {
			t.Fatalf("output %q not anonymized", nm)
		}
	}
	// The mapped binding must still satisfy the simulation oracle.
	bd := CanonicalBinding(8).afterScramble(n, sc, sm)
	if err := SimOracle(sc, p8, bd, 4, 2); err != nil {
		t.Fatalf("scrambled netlist fails the sim oracle through the map: %v", err)
	}
}

func TestInferenceSafe(t *testing.T) {
	// x^4+x^3+x^2+x+1 has ord(x)=5 < 2m-1: the documented ambiguous corner.
	if InferenceSafe(gf2poly.MustParse("x^4+x^3+x^2+x+1")) {
		t.Error("low-order pentanomial should be inference-unsafe")
	}
	for _, m := range []int{8, 16, 32} {
		if !InferenceSafe(polytab.NIST[m]) {
			t.Errorf("NIST polynomial for m=%d should be inference-safe", m)
		}
	}
}

func TestAdversarialCasesSurvive(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		res := Run(Case{Kind: KindAdversarial, Seed: seed})
		if res.Status != Pass {
			t.Errorf("seed %d: %s at %s: %s", seed, res.Status, res.Stage, res.Err)
		}
	}
}

func TestRunNeverPanicsOutward(t *testing.T) {
	// An impossible case (unknown arch) must come back as a Fail result,
	// not a panic or a zero value.
	res := Run(Case{Kind: KindMultiplier, M: 4, P: gf2poly.MustParse("x^4+x+1"), Arch: "nosuch"})
	if res.Status != Fail || res.Stage != "gen" {
		t.Errorf("got %s at %q", res.Status, res.Stage)
	}
}

func TestNewCaseDeterministic(t *testing.T) {
	cfg := Config{N: 50, Seed: 42, Scramble: true, Adversarial: 8}
	for i := 0; i < 50; i++ {
		a, b := NewCase(i, cfg), NewCase(i, cfg)
		if a.Label() != b.Label() || !a.P.Equal(b.P) || a.Seed != b.Seed {
			t.Fatalf("case %d not deterministic: %s vs %s", i, a.Label(), b.Label())
		}
	}
}

func TestCampaignSmallCleanRun(t *testing.T) {
	sum, err := RunCampaign(Config{
		N: 24, Seed: 7, Workers: 4, MinM: 3, MaxM: 8,
		Scramble: true, Adversarial: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cases != 24 || sum.Passed != 24 || sum.Failed != 0 {
		for _, f := range sum.Failures {
			t.Logf("failure: %s at %s: %s", f.Case.Label(), f.Stage, f.Err)
		}
		t.Fatalf("campaign: %d cases, %d passed, %d failed", sum.Cases, sum.Passed, sum.Failed)
	}
	if sum.ByArch["adversarial"] != 4 {
		t.Errorf("expected 4 adversarial cases, got %d", sum.ByArch["adversarial"])
	}
}
