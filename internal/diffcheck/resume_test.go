package diffcheck

import (
	"strings"
	"testing"

	"github.com/galoisfield/gfre/internal/gf2poly"
)

func TestRunResumeCase(t *testing.T) {
	c := Case{
		Index: 0, Seed: 42, Kind: KindResume,
		M: 16, P: gf2poly.MustParse("x^16+x^5+x^3+x^2+1"),
		Arch: ArchMastrovito, Threads: 1,
	}
	res := Run(c)
	if res.Status != Pass {
		t.Fatalf("resume case failed at %s: %s", res.Stage, res.Err)
	}
	if !res.Resumed {
		t.Fatal("passing resume case did not mark Resumed")
	}
	if res.Reused < 1 || res.Reused > c.M {
		t.Fatalf("reused %d cones, want 1..%d", res.Reused, c.M)
	}
}

func TestRunResumeCaseAcrossArchs(t *testing.T) {
	for i, arch := range []Arch{ArchMatrix, ArchMontgomery, ArchKaratsuba} {
		c := Case{
			Index: i, Seed: int64(100 + i), Kind: KindResume,
			M: 8, P: gf2poly.MustParse("x^8+x^4+x^3+x+1"),
			Arch: arch, Threads: 1,
		}
		if res := Run(c); res.Status != Pass {
			t.Errorf("%s: failed at %s: %s", arch, res.Stage, res.Err)
		}
	}
}

func TestResumeCampaignSampling(t *testing.T) {
	cfg := Config{N: 10, Seed: 7, Resume: true, MinM: 4, MaxM: 10}
	for i := 0; i < cfg.N; i++ {
		c := NewCase(i, cfg)
		if c.Kind != KindResume {
			t.Fatalf("case %d sampled kind %s, want resume", i, c.Kind)
		}
		if c.M < 4 || c.M > 10 {
			t.Fatalf("case %d sampled m=%d outside 4..10", i, c.M)
		}
		if len(c.Opt) != 0 || c.Format != "" || c.Scramble {
			t.Fatalf("resume case %d carries pipeline stages: %+v", i, c)
		}
		if !strings.HasPrefix(c.Label(), "resume/") {
			t.Fatalf("case %d label %q", i, c.Label())
		}
	}
}

func TestResumeCampaignEndToEnd(t *testing.T) {
	sum, err := RunCampaign(Config{N: 6, Seed: 11, Resume: true, MinM: 4, MaxM: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 {
		for _, f := range sum.Failures {
			t.Errorf("case %d [%s] at %s: %s", f.Case.Index, f.Case.Label(), f.Stage, f.Err)
		}
		t.Fatalf("%d of %d resume cases failed", sum.Failed, sum.Cases)
	}
	if sum.Resumed != 6 {
		t.Fatalf("Resumed=%d, want 6", sum.Resumed)
	}
	if sum.ReusedCones < 6 {
		t.Fatalf("ReusedCones=%d, want at least one per case", sum.ReusedCones)
	}
	if sum.ByArch["resume"] != 6 {
		t.Fatalf("ByArch: %v", sum.ByArch)
	}
}
