package diffcheck

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/obs"
)

// Config bounds a differential campaign.
type Config struct {
	// N is the number of cases; Seed makes the whole campaign deterministic
	// (case i depends only on Seed and i, not on scheduling).
	N    int
	Seed int64
	// Workers is the parallel case-runner count (0 = GOMAXPROCS).
	Workers int
	// Timeout is the per-case budget (0 = 30s). A timed-out case is a
	// failure; its goroutine is abandoned, which a fuzzing campaign accepts
	// in exchange for forward progress.
	Timeout time.Duration

	// MinM..MaxM is the field-size range (defaults 3..12).
	MinM, MaxM int
	// Archs and Formats restrict sampling (defaults: all).
	Archs   []Arch
	Formats []Format
	// MaxOptPasses bounds the random pass sequence per case (default 2).
	MaxOptPasses int
	// Scramble enables port-scrambled cases (extraction must then infer the
	// operand partition and bit orders).
	Scramble bool
	// Adversarial mixes in one random-DAG robustness case every this many
	// cases (0 = off).
	Adversarial int
	// Inject plants a flipped XOR in every multiplier case (see Case.Inject)
	// to prove the harness catches and minimizes real faults.
	Inject int
	// Diagnose routes injected faults through fault-tolerant extraction
	// instead: every case becomes a KindDiagnose case planting
	// max(Inject, 1) XOR→OR trojans in distinct cones of a matrix-form
	// multiplier, and asserts P(x) recovery plus trojan localization.
	Diagnose bool
	// Resume turns every multiplier case into a KindResume case: extraction
	// is hard-cancelled at a random cone boundary and resumed from its
	// checkpoint, asserting P(x) recovery and exact cone reuse.
	Resume bool
	// Chaos turns every multiplier case into a KindChaos case: the
	// extraction runs through the lease-based shard scheduler while the
	// harness kills workers, expires leases, and delays, duplicates and
	// reorders submissions — asserting exact P(x) recovery and zero
	// double-counted cones.
	Chaos bool
	// Overload turns every multiplier case into a KindOverload case: a small
	// gfred queue is attacked by a greedy batch-flooder and a deadline-abuser
	// while a well-behaved tenant submits normally — asserting exact P(x)
	// recovery for the polite tenant at bounded p99, zero quota violations,
	// and exactly one terminal event per accepted job.
	Overload bool
	// Obfuscate turns every multiplier case into a KindObfuscate case: the
	// clean design is lint-checked for key-finding false positives, locked
	// with 1-4 key gates in a random style (xor/mux/opaque), proven
	// functionally intact under the correct key, and the semantic detector
	// must then recover exactly the planted key set.
	Obfuscate bool

	// SimTrials is the 64-vector word count per simulation oracle (default 2).
	SimTrials int
	// Threads is the per-case rewriting worker count (default 1: the
	// campaign parallelizes across cases instead).
	Threads int

	// Recorder streams campaign telemetry (case_start / case_pass /
	// case_fail events and the campaign span); nil disables it.
	Recorder *obs.Recorder
	// ReproDir, when set, receives a minimized .eqn repro per failure.
	ReproDir string
	// Minimize shrinks failing netlists before writing repros (default on
	// when ReproDir is set; requires a functional deviation to hold onto).
	Minimize bool
}

func (cfg *Config) setDefaults() {
	if cfg.N <= 0 {
		cfg.N = 100
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.MinM < 2 {
		cfg.MinM = 3
	}
	if cfg.MaxM < cfg.MinM {
		cfg.MaxM = cfg.MinM + 9
	}
	if len(cfg.Archs) == 0 {
		cfg.Archs = AllArchs()
	}
	if len(cfg.Formats) == 0 {
		cfg.Formats = AllFormats()
	}
	if cfg.MaxOptPasses == 0 {
		cfg.MaxOptPasses = 2
	}
	if cfg.SimTrials <= 0 {
		cfg.SimTrials = 2
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
}

// NewCase deterministically samples case idx of a campaign.
func NewCase(idx int, cfg Config) Case {
	cfg.setDefaults()
	// Per-case generator: mix the index into the seed with a splitmix-style
	// odd constant so neighboring cases decorrelate.
	seed := cfg.Seed + int64(idx)*-0x61C8864680B583EB + 1
	r := rand.New(rand.NewSource(seed))
	c := Case{
		Index:     idx,
		Seed:      seed,
		Kind:      KindMultiplier,
		SimTrials: cfg.SimTrials,
		Threads:   cfg.Threads,
	}
	if cfg.Adversarial > 0 && idx%cfg.Adversarial == cfg.Adversarial-1 {
		c.Kind = KindAdversarial
		return c
	}
	if cfg.Overload {
		// Overload cases bypass optimization/format/scramble stages: the
		// oracle under test is the queue's admission plane, not the synthesis
		// pipeline, and each case submits dozens of jobs — small fields keep
		// every extraction fast enough that the well-behaved tenant's latency
		// bound measures scheduling, not rewriting.
		c.Kind = KindOverload
		maxM := cfg.MaxM
		if maxM > 10 {
			maxM = 10
		}
		if maxM < cfg.MinM {
			maxM = cfg.MinM
		}
		c.M = cfg.MinM + r.Intn(maxM-cfg.MinM+1)
		p, err := gf2poly.RandomIrreducible(r, c.M)
		if err != nil {
			p = gf2poly.MustParse("x^8+x^4+x^3+x+1")
			c.M = 8
		}
		c.P = p
		c.Arch = cfg.Archs[r.Intn(len(cfg.Archs))]
		if c.Arch == ArchDigitSerial {
			max := c.M - 1
			if max > 8 {
				max = 8
			}
			if max < 1 {
				max = 1
			}
			c.Digit = 1 + r.Intn(max)
		}
		return c
	}
	if cfg.Obfuscate {
		// Obfuscation cases bypass optimization/format/scramble stages: the
		// oracle under test is the lock→detect arms race, and the detector
		// must succeed on raw generated structure before it earns credit on
		// optimized variants.
		c.Kind = KindObfuscate
		c.M = cfg.MinM + r.Intn(cfg.MaxM-cfg.MinM+1)
		p, err := gf2poly.RandomIrreducible(r, c.M)
		if err != nil {
			p = gf2poly.MustParse("x^8+x^4+x^3+x+1")
			c.M = 8
		}
		c.P = p
		c.Arch = cfg.Archs[r.Intn(len(cfg.Archs))]
		if c.Arch == ArchDigitSerial {
			max := c.M - 1
			if max > 8 {
				max = 8
			}
			if max < 1 {
				max = 1
			}
			c.Digit = 1 + r.Intn(max)
		}
		styles := LockStyles()
		c.Lock = styles[r.Intn(len(styles))]
		c.Keys = 1 + r.Intn(4)
		return c
	}
	if cfg.Chaos {
		// Chaos cases bypass optimization/format/scramble stages: the oracle
		// under test is the lease scheduler's fault recovery, and the raw
		// generated netlist keeps per-cone work small enough that dozens of
		// lease expiries fit in one case.
		c.Kind = KindChaos
		c.M = cfg.MinM + r.Intn(cfg.MaxM-cfg.MinM+1)
		p, err := gf2poly.RandomIrreducible(r, c.M)
		if err != nil {
			p = gf2poly.MustParse("x^8+x^4+x^3+x+1")
			c.M = 8
		}
		c.P = p
		c.Arch = cfg.Archs[r.Intn(len(cfg.Archs))]
		if c.Arch == ArchDigitSerial {
			max := c.M - 1
			if max > 8 {
				max = 8
			}
			if max < 1 {
				max = 1
			}
			c.Digit = 1 + r.Intn(max)
		}
		return c
	}
	if cfg.Resume {
		// Resume cases bypass optimization/format/scramble stages: the
		// checkpoint binds to the generated netlist, and the oracle under
		// test is the interrupt→resume path, not the synthesis pipeline.
		c.Kind = KindResume
		c.M = cfg.MinM + r.Intn(cfg.MaxM-cfg.MinM+1)
		p, err := gf2poly.RandomIrreducible(r, c.M)
		if err != nil {
			p = gf2poly.MustParse("x^8+x^4+x^3+x+1")
			c.M = 8
		}
		c.P = p
		c.Arch = cfg.Archs[r.Intn(len(cfg.Archs))]
		if c.Arch == ArchDigitSerial {
			max := c.M - 1
			if max > 8 {
				max = 8
			}
			if max < 1 {
				max = 1
			}
			c.Digit = 1 + r.Intn(max)
		}
		return c
	}
	if cfg.Diagnose {
		// Diagnosis cases are matrix-form only (private per-output cones keep
		// each trojan confined to one bit) and need enough healthy bits for
		// consensus: m >= 3k+2 leaves a solid majority at tolerance k.
		k := cfg.Inject
		if k <= 0 {
			k = 1
		}
		c.Kind = KindDiagnose
		c.Inject = k
		c.Arch = ArchMatrix
		minM := cfg.MinM
		if minM < 3*k+2 {
			minM = 3*k + 2
		}
		maxM := cfg.MaxM
		if maxM < minM {
			maxM = minM
		}
		c.M = minM + r.Intn(maxM-minM+1)
		p, err := gf2poly.RandomIrreducible(r, c.M)
		if err != nil {
			p = gf2poly.MustParse("x^8+x^4+x^3+x+1")
			c.M = 8
		}
		c.P = p
		return c
	}
	c.Inject = cfg.Inject
	c.M = cfg.MinM + r.Intn(cfg.MaxM-cfg.MinM+1)
	p, err := gf2poly.RandomIrreducible(r, c.M)
	if err != nil {
		// Unreachable for m >= 1; degrade to the standard choice.
		p = gf2poly.MustParse("x^8+x^4+x^3+x+1")
		c.M = 8
	}
	c.P = p
	c.Arch = cfg.Archs[r.Intn(len(cfg.Archs))]
	if c.Arch == ArchDigitSerial {
		max := c.M - 1
		if max > 8 {
			max = 8
		}
		if max < 1 {
			max = 1
		}
		c.Digit = 1 + r.Intn(max)
	}
	if k := r.Intn(cfg.MaxOptPasses + 1); k > 0 {
		perm := r.Perm(len(PassNames))
		for _, pi := range perm[:k] {
			c.Opt = append(c.Opt, PassNames[pi])
		}
	}
	c.Format = cfg.Formats[r.Intn(len(cfg.Formats))]
	if cfg.Scramble && r.Intn(4) == 0 && InferenceSafe(c.P) {
		c.Scramble = true
	}
	return c
}

// InferenceSafe reports whether port inference is unambiguous for p: every
// reduced power x^k mod p for m <= k <= 2m-2 must have weight >= 2 (see
// package extract's port-inference preconditions). Rare low-order
// polynomials fail this; scrambled cases skip them rather than demand the
// impossible from inference.
func InferenceSafe(p gf2poly.Poly) bool {
	m := p.Deg()
	for k := m; k <= 2*m-2; k++ {
		if gf2poly.Monomial(k).Mod(p).Weight() < 2 {
			return false
		}
	}
	return true
}

// Summary aggregates a campaign.
type Summary struct {
	Cases    int
	Passed   int
	Failed   int
	Panics   int
	Timeouts int
	Duration time.Duration
	// ByArch / ByFormat count cases per dimension (failures in parens are
	// tracked separately in Failures).
	ByArch   map[string]int
	ByFormat map[string]int
	// Failures holds every failing result, in case order.
	Failures []Result
	// Repros lists written repro file paths, parallel to Failures where
	// minimization succeeded ("" where it did not apply).
	Repros []string

	// Localization aggregates of a diagnosis campaign (Config.Diagnose):
	// Diagnosed counts KindDiagnose cases, LocHits those whose suspect set
	// covered every planted gate, and LocRanks collects the best suspect
	// rank per localized case (0 = top suspect), in case order.
	Diagnosed int
	LocHits   int
	LocRanks  []int

	// Resume aggregates of a resume campaign (Config.Resume): Resumed
	// counts KindResume cases, ReusedCones the total cones adopted from
	// checkpoints across them.
	Resumed     int
	ReusedCones int

	// Chaos aggregates of a chaos campaign (Config.Chaos): Chaosed counts
	// KindChaos cases; the totals tally the fault-recovery machinery those
	// cases exercised (a healthy campaign has all three well above zero).
	Chaosed      int
	ChaosExpired int // leases that expired and re-queued
	ChaosFenced  int // zombie submissions rejected by the epoch fence
	ChaosStolen  int // straggler leases split by work stealing

	// Overload aggregates of an overload campaign (Config.Overload):
	// Overloaded counts KindOverload cases; the totals tally the admission
	// machinery those cases engaged, and WorstWellP99MS is the worst
	// well-behaved-tenant p99 observed across them.
	Overloaded       int
	QuotaRejects     int   // submissions rejected by per-tenant quotas
	ShedRejects      int   // submissions rejected by the staged load-shedder
	Deduped          int   // batch submissions collapsed onto dedup leaders
	DeadlinesExpired int   // jobs that hit their deadline
	WorstWellP99MS   int64 // max well-tenant p99 across overload cases

	// Obfuscation aggregates of a lock→detect campaign (Config.Obfuscate):
	// Obfuscated counts KindObfuscate cases; KeysPlanted / KeysDetected tally
	// planted and recovered key inputs (a passing campaign has them equal,
	// since every case asserts exact set equality); OpaqueHits counts cases
	// where the opaque-constant rule additionally fired.
	Obfuscated   int
	KeysPlanted  int
	KeysDetected int
	OpaqueHits   int
}

// LocPrecision is LocHits / Diagnosed, the fraction of diagnosis cases
// whose localization covered every planted trojan (NaN-free: 0 when no
// diagnosis case ran).
func (s *Summary) LocPrecision() float64 {
	if s.Diagnosed == 0 {
		return 0
	}
	return float64(s.LocHits) / float64(s.Diagnosed)
}

// MedianLocRank is the median best-suspect rank across localized cases
// (-1 when none).
func (s *Summary) MedianLocRank() int {
	if len(s.LocRanks) == 0 {
		return -1
	}
	ranks := append([]int(nil), s.LocRanks...)
	sort.Ints(ranks)
	return ranks[len(ranks)/2]
}

// RunCampaign executes cfg.N deterministic cases on a worker pool and
// aggregates the outcomes. The error return reports campaign-infrastructure
// problems only (e.g. an unwritable repro directory); case failures are
// reported through the summary.
func RunCampaign(cfg Config) (*Summary, error) {
	cfg.setDefaults()
	if cfg.ReproDir != "" {
		if err := os.MkdirAll(cfg.ReproDir, 0o755); err != nil {
			return nil, err
		}
		cfg.Minimize = true
	}
	rec := cfg.Recorder
	span := rec.StartSpan("diffcheck.campaign", map[string]int64{
		"cases": int64(cfg.N), "workers": int64(cfg.Workers), "seed": cfg.Seed,
	})

	jobs := make(chan int)
	results := make(chan Result)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				c := NewCase(idx, cfg)
				rec.Emit("case_start", c.Label(), map[string]int64{"case": int64(idx)})
				results <- runWithTimeout(c, cfg.Timeout)
			}
		}()
	}
	go func() {
		for i := 0; i < cfg.N; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	sum := &Summary{ByArch: map[string]int{}, ByFormat: map[string]int{}}
	start := time.Now()
	collected := make([]Result, 0, cfg.N)
	for res := range results {
		collected = append(collected, res)
		ev := "case_pass"
		if res.Status == Fail {
			ev = "case_fail"
		}
		v := map[string]int64{
			"case": int64(res.Case.Index), "m": int64(res.Case.M),
			"gates": int64(res.Gates), "dur_ns": int64(res.Dur),
		}
		if res.Diagnosed {
			var hit int64
			if res.LocHit {
				hit = 1
			}
			v["loc_hit"] = hit
			v["loc_rank"] = int64(res.LocRank)
		}
		if res.Resumed {
			v["reused"] = int64(res.Reused)
		}
		if res.Chaosed {
			v["kills"] = int64(res.Kills)
			v["expired"] = int64(res.Expired)
			v["fenced"] = int64(res.Fenced)
			v["stolen"] = int64(res.Stolen)
		}
		if res.Overloaded {
			v["quota_rejects"] = int64(res.QuotaRejects)
			v["shed_rejects"] = int64(res.ShedRejects)
			v["deduped"] = int64(res.Deduped)
			v["deadline_expired"] = int64(res.DeadlineExpired)
			v["well_p99_ms"] = res.WellP99MS
		}
		if res.Obfuscated {
			v["keys_planted"] = int64(res.KeysPlanted)
			v["keys_detected"] = int64(res.KeysDetected)
			var opq int64
			if res.OpaqueHit {
				opq = 1
			}
			v["opaque_hit"] = opq
		}
		rec.Emit(ev, res.Case.Label(), v)
		rec.Metrics().Counter("diffcheck_" + string(res.Status)).Inc()
	}
	// Deterministic report order regardless of worker scheduling.
	sort.Slice(collected, func(i, j int) bool { return collected[i].Case.Index < collected[j].Case.Index })

	for _, res := range collected {
		sum.Cases++
		key := string(res.Case.Arch)
		switch res.Case.Kind {
		case KindAdversarial:
			key = "adversarial"
		case KindDiagnose:
			key = "diagnose"
			sum.Diagnosed++
			if res.LocHit {
				sum.LocHits++
			}
			if res.LocRank >= 0 {
				sum.LocRanks = append(sum.LocRanks, res.LocRank)
			}
		case KindResume:
			key = "resume"
			if res.Resumed {
				sum.Resumed++
				sum.ReusedCones += res.Reused
			}
		case KindChaos:
			key = "chaos"
			if res.Chaosed {
				sum.Chaosed++
				sum.ChaosExpired += res.Expired
				sum.ChaosFenced += res.Fenced
				sum.ChaosStolen += res.Stolen
			}
		case KindOverload:
			key = "overload"
			if res.Overloaded {
				sum.Overloaded++
				sum.QuotaRejects += res.QuotaRejects
				sum.ShedRejects += res.ShedRejects
				sum.Deduped += res.Deduped
				sum.DeadlinesExpired += res.DeadlineExpired
				if res.WellP99MS > sum.WorstWellP99MS {
					sum.WorstWellP99MS = res.WellP99MS
				}
			}
		case KindObfuscate:
			key = "obfuscate"
			if res.Obfuscated {
				sum.Obfuscated++
				sum.KeysPlanted += res.KeysPlanted
				sum.KeysDetected += res.KeysDetected
				if res.OpaqueHit {
					sum.OpaqueHits++
				}
			}
		}
		sum.ByArch[key]++
		if res.Case.Kind == KindMultiplier {
			sum.ByFormat[string(res.Case.Format)]++
		}
		if res.Status == Pass {
			sum.Passed++
			continue
		}
		sum.Failed++
		if res.Panicked {
			sum.Panics++
		}
		if res.Stage == "timeout" {
			sum.Timeouts++
		}
		repro := ""
		if cfg.Minimize && cfg.ReproDir != "" && res.Netlist != nil {
			if path, err := writeRepro(cfg.ReproDir, res); err == nil {
				repro = path
			}
		}
		sum.Failures = append(sum.Failures, res)
		sum.Repros = append(sum.Repros, repro)
	}
	sum.Duration = time.Since(start)
	span.End()
	return sum, nil
}

// runWithTimeout runs the case on its own goroutine and abandons it past
// the deadline (Run itself converts panics into Fail results).
func runWithTimeout(c Case, timeout time.Duration) Result {
	done := make(chan Result, 1)
	go func() { done <- Run(c) }()
	select {
	case res := <-done:
		return res
	case <-time.After(timeout):
		return Result{
			Case:   c,
			Status: Fail,
			Stage:  "timeout",
			Err:    fmt.Sprintf("case exceeded %v", timeout),
		}
	}
}

// writeRepro minimizes the failing netlist (when it functionally deviates
// from the planted specification) and writes it as an .eqn repro file.
func writeRepro(dir string, res Result) (string, error) {
	n := res.Netlist
	if min, err := Minimize(n, MinimizeOptions{
		P:       res.Case.P,
		Binding: res.Binding,
		Seed:    res.Case.Seed,
	}); err == nil {
		n = min
	}
	n.Name = fmt.Sprintf("repro_case%d_%s", res.Case.Index, sanitize(res.Case.Label()))
	path := filepath.Join(dir, fmt.Sprintf("repro_case%d.eqn", res.Case.Index))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	werr := n.WriteEQN(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", werr
	}
	return path, nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
