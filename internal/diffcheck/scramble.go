package diffcheck

import (
	"fmt"
	"math/rand"

	"github.com/galoisfield/gfre/internal/netlist"
)

// ScrambleMap records how Scramble permuted a netlist: Gate maps old gate
// IDs to new ones, OutPos maps old output positions to new positions.
type ScrambleMap struct {
	Gate   []int
	OutPos []int
}

// Scramble rebuilds n with the primary inputs shuffled and renamed sig_###
// and the outputs shuffled and renamed port_### — the "obfuscated
// third-party IP" adversary of the paper's threat model, destroying every
// naming hint extraction could rely on. Deterministic in (n, seed).
func Scramble(n *netlist.Netlist, seed int64) (*netlist.Netlist, error) {
	s, _, err := ScrambleMapped(n, seed)
	return s, err
}

// ScrambleMapped is Scramble returning the permutation, so callers that
// planted the design can still locate its ports afterwards.
func ScrambleMapped(n *netlist.Netlist, seed int64) (*netlist.Netlist, *ScrambleMap, error) {
	r := rand.New(rand.NewSource(seed))
	ins := n.Inputs()
	perm := r.Perm(len(ins))
	out := netlist.New(n.Name + "_anon")
	mapping := make([]int, n.NumGates())
	for newPos, oldPos := range perm {
		id, err := out.AddInput(fmt.Sprintf("sig_%03d", newPos))
		if err != nil {
			return nil, nil, err
		}
		mapping[ins[oldPos]] = id
	}
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		if g.Type == netlist.Input {
			continue
		}
		fanin := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = mapping[f]
		}
		var nid int
		var err error
		if g.Type == netlist.Lut {
			nid, err = out.AddLut(g.Table, fanin...)
		} else {
			nid, err = out.AddGate(g.Type, fanin...)
		}
		if err != nil {
			return nil, nil, err
		}
		mapping[id] = nid
	}
	outs := n.Outputs()
	operm := r.Perm(len(outs))
	outPos := make([]int, len(outs))
	for newPos, oldPos := range operm {
		if err := out.MarkOutput(fmt.Sprintf("port_%03d", newPos), mapping[outs[oldPos]]); err != nil {
			return nil, nil, err
		}
		outPos[oldPos] = newPos
	}
	return out, &ScrambleMap{Gate: mapping, OutPos: outPos}, nil
}

// FlipXor returns a copy of n with its k-th XOR gate (in creation order)
// replaced by OR — the single-gate trojan used to prove the differential
// harness catches real function corruptions. Signal names of internal gates
// are dropped; port names and order are preserved.
func FlipXor(n *netlist.Netlist, k int) (*netlist.Netlist, error) {
	out := netlist.New(n.Name + "_trojan")
	mapping := make([]int, n.NumGates())
	seen := 0
	flipped := false
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		fanin := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = mapping[f]
		}
		var nid int
		var err error
		switch {
		case g.Type == netlist.Input:
			nid, err = out.AddInput(n.NameOf(id))
		case g.Type == netlist.Lut:
			nid, err = out.AddLut(g.Table, fanin...)
		case g.Type == netlist.Xor:
			ty := netlist.Xor
			if seen == k {
				ty = netlist.Or
				flipped = true
			}
			seen++
			nid, err = out.AddGate(ty, fanin...)
		default:
			nid, err = out.AddGate(g.Type, fanin...)
		}
		if err != nil {
			return nil, err
		}
		mapping[id] = nid
	}
	if !flipped {
		return nil, fmt.Errorf("diffcheck: netlist has only %d XOR gates, cannot flip #%d", seen, k)
	}
	names := n.OutputNames()
	for i, id := range n.Outputs() {
		if err := out.MarkOutput(names[i], mapping[id]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// FlipXors returns a copy of n with the XOR gates at the given creation-order
// indices replaced by OR, plus the new-netlist gate IDs of the flipped gates
// (in the order of ks) — the multi-gate trojan used by the fault-tolerance
// campaign, where localization must name each planted gate or its fanout.
func FlipXors(n *netlist.Netlist, ks []int) (*netlist.Netlist, []int, error) {
	want := make(map[int]int, len(ks)) // xor index -> position in ks
	for i, k := range ks {
		if _, dup := want[k]; dup {
			return nil, nil, fmt.Errorf("diffcheck: duplicate XOR index %d", k)
		}
		want[k] = i
	}
	out := netlist.New(n.Name + "_trojan")
	mapping := make([]int, n.NumGates())
	flipped := make([]int, len(ks))
	for i := range flipped {
		flipped[i] = -1
	}
	seen := 0
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		fanin := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = mapping[f]
		}
		var nid int
		var err error
		switch {
		case g.Type == netlist.Input:
			nid, err = out.AddInput(n.NameOf(id))
		case g.Type == netlist.Lut:
			nid, err = out.AddLut(g.Table, fanin...)
		case g.Type == netlist.Xor:
			ty := netlist.Xor
			pos, hit := want[seen]
			if hit {
				ty = netlist.Or
			}
			seen++
			nid, err = out.AddGate(ty, fanin...)
			if hit {
				flipped[pos] = nid
			}
		default:
			nid, err = out.AddGate(g.Type, fanin...)
		}
		if err != nil {
			return nil, nil, err
		}
		mapping[id] = nid
	}
	for i, id := range flipped {
		if id < 0 {
			return nil, nil, fmt.Errorf("diffcheck: netlist has only %d XOR gates, cannot flip #%d", seen, ks[i])
		}
	}
	names := n.OutputNames()
	for i, id := range n.Outputs() {
		if err := out.MarkOutput(names[i], mapping[id]); err != nil {
			return nil, nil, err
		}
	}
	return out, flipped, nil
}

// CountXor returns the number of XOR gates in n (the valid k range of
// FlipXor is [0, CountXor)).
func CountXor(n *netlist.Netlist) int {
	c := 0
	for id := 0; id < n.NumGates(); id++ {
		if n.Gate(id).Type == netlist.Xor {
			c++
		}
	}
	return c
}
