package diffcheck

import (
	"math/rand"
	"testing"

	"github.com/galoisfield/gfre/internal/gf2poly"
)

// FuzzPipeline drives the full differential pipeline from fuzzed scalars:
// every reachable (m, P, architecture, opt passes, format, scramble)
// combination must come back Pass — generation, optimization, scrambling,
// serialization and extraction all agree on the planted polynomial. The
// scalars are folded into valid ranges rather than rejected so the fuzzer's
// mutations always reach the pipeline.
func FuzzPipeline(f *testing.F) {
	f.Add(int64(1), byte(8), byte(0), byte(1), byte(0), false)
	f.Add(int64(7), byte(5), byte(2), byte(2), byte(3), true)
	f.Add(int64(42), byte(10), byte(4), byte(3), byte(9), false)
	f.Fuzz(func(t *testing.T, seed int64, mRaw, archRaw, formatRaw, optMask byte, scramble bool) {
		m := 3 + int(mRaw)%8 // 3..10: exhaustive enough, fast enough
		r := rand.New(rand.NewSource(seed))
		p, err := gf2poly.RandomIrreducible(r, m)
		if err != nil {
			t.Fatalf("no irreducible polynomial of degree %d: %v", m, err)
		}
		archs := AllArchs()
		formats := AllFormats()
		c := Case{
			Kind:   KindMultiplier,
			Seed:   seed,
			M:      m,
			P:      p,
			Arch:   archs[int(archRaw)%len(archs)],
			Format: formats[int(formatRaw)%len(formats)],
		}
		if c.Arch == ArchDigitSerial {
			c.Digit = 1 + int(archRaw/8)%(m-1)
		}
		// optMask selects an ordered subset of passes, capped at two so a
		// single exec stays in the low milliseconds.
		for i, name := range PassNames {
			if optMask&(1<<uint(i)) != 0 && len(c.Opt) < 2 {
				c.Opt = append(c.Opt, name)
			}
		}
		if scramble && InferenceSafe(p) {
			c.Scramble = true
		}
		res := Run(c)
		if res.Status != Pass {
			t.Fatalf("%s: failed at %s: %s", c.Label(), res.Stage, res.Err)
		}
	})
}
