package diffcheck

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlist"
)

// TestMinimizeReductionNetworkBug encodes the headline acceptance criterion:
// a deliberately injected reduction-network bug must be caught and minimized
// to a repro of fewer than 50 gates, without the minimizer sliding off onto
// a different (easier) bug.
func TestMinimizeReductionNetworkBug(t *testing.T) {
	p8 := gf2poly.MustParse("x^8+x^4+x^3+x+1")
	n, err := gen.Mastrovito(8, p8)
	if err != nil {
		t.Fatal(err)
	}
	// Mastrovito builds the m^2 partial products first (m^2 - (2m-1) XORs in
	// the column trees), then the reduction network as the final XOR trees —
	// so any flip index >= m^2-(2m-1) corrupts the reduction network.
	m := 8
	redStart := m*m - (2*m - 1)
	nx := CountXor(n)
	if nx <= redStart {
		t.Fatalf("expected reduction-network XORs beyond index %d, have %d total", redStart, nx)
	}
	bd := CanonicalBinding(m)
	for _, k := range []int{redStart + 1, (redStart + nx) / 2, nx - 1} {
		bad, err := FlipXor(n, k)
		if err != nil {
			t.Fatal(err)
		}
		min, err := Minimize(bad, MinimizeOptions{P: p8, Binding: bd, Seed: 1})
		if err != nil {
			t.Fatalf("flip %d: minimize: %v", k, err)
		}
		if min.NumGates() >= 50 {
			t.Errorf("flip %d: repro has %d gates, want < 50 (started from %d)",
				k, min.NumGates(), bad.NumGates())
		}
		// The repro must still exhibit the planted bug, not merely be small.
		dev, err := Deviations(min, p8, bd, 1)
		if err != nil {
			t.Fatalf("flip %d: deviation check on repro: %v", k, err)
		}
		if len(dev) == 0 {
			t.Errorf("flip %d: minimized repro no longer deviates from the spec", k)
		}
		// And it must survive the repro file format round trip intact.
		var buf bytes.Buffer
		if err := min.WriteEQN(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := netlist.ReadEQN(&buf, min.Name)
		if err != nil {
			t.Fatalf("flip %d: repro does not re-parse: %v", k, err)
		}
		// Parsing may add one alias buffer for the output port; nothing more.
		if back.NumGates() > min.NumGates()+1 {
			t.Errorf("flip %d: EQN round trip grew gate count %d -> %d",
				k, min.NumGates(), back.NumGates())
		}
		bdev, err := Deviations(back, p8, bd, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(bdev) == 0 {
			t.Errorf("flip %d: round-tripped repro no longer deviates", k)
		}
	}
}

func TestMinimizeRejectsCorrectNetlist(t *testing.T) {
	p8 := gf2poly.MustParse("x^8+x^4+x^3+x+1")
	n, err := gen.Mastrovito(8, p8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Minimize(n, MinimizeOptions{P: p8, Binding: CanonicalBinding(8), Seed: 1}); err == nil {
		t.Fatal("minimizing a correct multiplier must fail: there is no bug to hold onto")
	}
}

// TestCampaignInjectWritesMinimizedRepros drives the self-check path end to
// end: every multiplier case carries a flipped XOR, the campaign must catch
// all of them at the first oracle and write a parseable, smaller repro.
func TestCampaignInjectWritesMinimizedRepros(t *testing.T) {
	dir := t.TempDir()
	sum, err := RunCampaign(Config{
		N: 6, Seed: 3, Workers: 2, MinM: 4, MaxM: 8,
		Inject: 5, ReproDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != sum.Cases || sum.Passed != 0 {
		t.Fatalf("injected campaign: %d/%d cases failed, want all", sum.Failed, sum.Cases)
	}
	for i, res := range sum.Failures {
		if res.Stage != "sim-gen" {
			t.Errorf("case %d: caught at %q, want the first oracle (sim-gen)", res.Case.Index, res.Stage)
		}
		repro := sum.Repros[i]
		if repro == "" {
			t.Errorf("case %d: no repro written", res.Case.Index)
			continue
		}
		f, err := os.Open(repro)
		if err != nil {
			t.Fatal(err)
		}
		back, rerr := netlist.ReadEQN(f, filepath.Base(repro))
		f.Close()
		if rerr != nil {
			t.Errorf("case %d: repro %s does not parse: %v", res.Case.Index, repro, rerr)
			continue
		}
		if back.NumGates() == 0 || back.NumGates() > res.Gates {
			t.Errorf("case %d: repro has %d gates, original had %d", res.Case.Index, back.NumGates(), res.Gates)
		}
	}
}
