package diffcheck

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/galoisfield/gfre/internal/checkpoint"
	"github.com/galoisfield/gfre/internal/extract"
)

// runResume exercises the crash-safe checkpoint/resume path differentially:
// extraction is hard-cancelled at a random cone boundary (the seed picks how
// many cones must finish first), then resumed from the on-disk snapshot. The
// resumed run must recover exactly the planted P(x), and its cone-reuse
// count must equal the snapshot's completed-cone count — proving the
// snapshot captured every finished cone and the resume re-rewrote only the
// pending ones.
func runResume(c Case, stage *string, fail func(error) Result) Result {
	*stage = "gen"
	n, err := c.Generate()
	if err != nil {
		return fail(err)
	}
	res := Result{Case: c, Status: Pass, Gates: n.NumGates()}

	dir, err := os.MkdirTemp("", "gfre-diffresume-*")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(dir)

	// Interrupted run: single-threaded so cones complete one at a time, an
	// unthrottled manager so every completed cone hits the disk, and a
	// watcher that cancels the context the moment `target` cones are done —
	// a cancellation landing at a cone boundary, like a SIGTERM would.
	r := rand.New(rand.NewSource(c.Seed))
	target := 1 + r.Intn(c.M)
	mgr := checkpoint.NewManager(dir, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stopWatch := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		for {
			select {
			case <-stopWatch:
				return
			case <-time.After(200 * time.Microsecond):
			}
			if s := mgr.Snapshot(); s != nil && s.DoneCones() >= target {
				cancel()
				return
			}
		}
	}()
	*stage = "interrupt"
	_, ierr := extract.IrreduciblePolynomial(n, extract.Options{
		Threads: 1, Ctx: ctx, Checkpoint: mgr,
	})
	close(stopWatch)
	<-watchDone

	// The run either was cancelled (expected) or outran the watcher and
	// finished — both leave a loadable snapshot; anything else is a failure.
	if ierr != nil && !errors.Is(ierr, context.Canceled) {
		return fail(fmt.Errorf("interrupted run failed outside cancellation: %w", ierr))
	}
	*stage = "snapshot"
	snap, err := checkpoint.Load(dir)
	if err != nil {
		return fail(fmt.Errorf("no resumable snapshot after cancellation: %w", err))
	}
	doneAtCancel := snap.DoneCones()
	if doneAtCancel == 0 {
		return fail(fmt.Errorf("snapshot recorded no completed cones (target %d)", target))
	}

	*stage = "resume"
	ext, err := extract.IrreduciblePolynomial(n, extract.Options{
		Threads:    c.Threads,
		Checkpoint: checkpoint.NewManager(dir, 0),
		Resume:     true,
	})
	if err != nil {
		return fail(err)
	}
	*stage = "compare"
	if !ext.P.Equal(c.P) {
		return fail(fmt.Errorf("diffcheck: resumed run extracted %v, planted %v", ext.P, c.P))
	}
	if ext.Rewrite.Reused != doneAtCancel {
		return fail(fmt.Errorf("diffcheck: resume reused %d cones, snapshot held %d",
			ext.Rewrite.Reused, doneAtCancel))
	}
	res.Resumed = true
	res.Reused = ext.Rewrite.Reused
	return res
}
