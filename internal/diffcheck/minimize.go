package diffcheck

import (
	"fmt"
	"math/rand"

	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlist"
)

// The minimizer shrinks a netlist that functionally deviates from the
// planted GF(2^m) specification into a near-minimal repro while keeping the
// ORIGINAL buggy behavior intact — it never trades the real failure for a
// trivially-broken circuit (the classic test-case-slippage pitfall):
//
//  1. pick the deviating output bit with the smallest logic cone and drop
//     every other output (cone restriction);
//  2. repeatedly try replacing each gate with one of its fanins or a
//     constant, accepting only replacements that are observationally
//     equivalent on a test-vector battery (exhaustive for small input
//     counts), so the kept output's function — including the deviation
//     witness — is preserved exactly;
//  3. cofactor: pin live primary inputs to constant 0 one at a time — this
//     DOES change the kept function, so each pin is accepted only when the
//     kept output still deviates from the correspondingly cofactored
//     specification (looseResolve treats an absent operand bit as 0; pinning
//     to 1 is never attempted because it would fabricate deviations) — and
//     re-run step 2 on the smaller cofactor;
//  4. drop primary inputs the remaining cone no longer reads, re-checking
//     after each drop that the deviation survives.
//
// The result is written by campaign runs as a committed-style .eqn repro.

// MinimizeOptions configures Minimize.
type MinimizeOptions struct {
	// P is the planted irreducible polynomial.
	P gf2poly.Poly
	// Binding names the multiplier ports in the failing netlist.
	Binding Binding
	// Seed drives the sampled battery when inputs are too many to enumerate.
	Seed int64
	// Words is the sampled-battery size in 64-vector words (default 64;
	// ignored when the input count permits exhaustive enumeration).
	Words int
}

// exhaustiveLimit is the input count up to which batteries enumerate all
// 2^k vectors, making the equivalence checks exact. 16 covers both operands
// of the GF(2^8) designs the repro tests shrink.
const exhaustiveLimit = 16

// battery is a set of simulation input batches: batch b assigns word
// words[b][i] to input port i; only the first lanes[b] lanes are valid.
type battery struct {
	words [][]uint64
	lanes []int
}

func makeBattery(numInputs int, seed int64, sampled int) battery {
	if sampled <= 0 {
		sampled = 64
	}
	var bt battery
	if numInputs <= exhaustiveLimit {
		total := 1 << uint(numInputs)
		for base := 0; base < total; base += 64 {
			w := make([]uint64, numInputs)
			lanes := total - base
			if lanes > 64 {
				lanes = 64
			}
			for lane := 0; lane < lanes; lane++ {
				v := base + lane
				for i := 0; i < numInputs; i++ {
					if v>>uint(i)&1 == 1 {
						w[i] |= 1 << uint(lane)
					}
				}
			}
			bt.words = append(bt.words, w)
			bt.lanes = append(bt.lanes, lanes)
		}
		return bt
	}
	r := rand.New(rand.NewSource(seed))
	for b := 0; b < sampled; b++ {
		w := make([]uint64, numInputs)
		for i := range w {
			w[i] = r.Uint64()
		}
		bt.words = append(bt.words, w)
		bt.lanes = append(bt.lanes, 64)
	}
	return bt
}

// specTable precomputes, per logical output bit c, the (i, j) operand-bit
// pairs whose product a_i·b_j feeds bit c of A·B mod P — the bit-parallel
// form of extract.SpecificationANF.
func specTable(p gf2poly.Poly) [][][2]int {
	m := p.Deg()
	tab := make([][][2]int, m)
	for k := 0; k <= 2*m-2; k++ {
		red := gf2poly.Monomial(k).Mod(p)
		for c := 0; c < m; c++ {
			if red.Coeff(c) != 1 {
				continue
			}
			lo := k - m + 1
			if lo < 0 {
				lo = 0
			}
			hi := k
			if hi > m-1 {
				hi = m - 1
			}
			for i := lo; i <= hi; i++ {
				tab[c] = append(tab[c], [2]int{i, k - i})
			}
		}
	}
	return tab
}

// looseResolve maps the binding onto n, tolerating missing ports: a missing
// operand input resolves to port index -1 (its value is taken as constant
// 0, i.e. the specification is cofactored), and a missing output resolves
// to position -1 (that bit is not checked).
func looseResolve(n *netlist.Netlist, bd Binding) (aPort, bPort, outPos []int) {
	ins := n.Inputs()
	portOf := make(map[int]int, len(ins))
	for i, id := range ins {
		portOf[id] = i
	}
	resolveIn := func(names []string) []int {
		out := make([]int, len(names))
		for i, nm := range names {
			out[i] = -1
			if id, ok := n.Lookup(nm); ok {
				if pi, ok := portOf[id]; ok {
					out[i] = pi
				}
			}
		}
		return out
	}
	aPort = resolveIn(bd.A)
	bPort = resolveIn(bd.B)
	posOf := map[string]int{}
	for pos, nm := range n.OutputNames() {
		posOf[nm] = pos
	}
	outPos = make([]int, len(bd.Out))
	for k, nm := range bd.Out {
		outPos[k] = -1
		if pos, ok := posOf[nm]; ok {
			outPos[k] = pos
		}
	}
	return aPort, bPort, outPos
}

// Deviations simulates n on a battery (exhaustive when the input count
// allows) and returns the logical output bits that deviate from
// A(x)·B(x) mod p. Operand bits whose inputs are absent from n are treated
// as constant 0; absent outputs are skipped.
func Deviations(n *netlist.Netlist, p gf2poly.Poly, bd Binding, seed int64) ([]int, error) {
	return deviationsOn(n, p, bd, makeBattery(len(n.Inputs()), seed, 0))
}

func deviationsOn(n *netlist.Netlist, p gf2poly.Poly, bd Binding, bt battery) ([]int, error) {
	aPort, bPort, outPos := looseResolve(n, bd)
	tab := specTable(p)
	deviating := map[int]bool{}
	for bi, words := range bt.words {
		vals, err := n.Simulate(words)
		if err != nil {
			return nil, err
		}
		outs := n.OutputWords(vals)
		mask := ^uint64(0)
		if bt.lanes[bi] < 64 {
			mask = 1<<uint(bt.lanes[bi]) - 1
		}
		opWord := func(ports []int, i int) uint64 {
			if ports[i] < 0 {
				return 0
			}
			return words[ports[i]]
		}
		for c, pos := range outPos {
			if pos < 0 || deviating[c] {
				continue
			}
			var spec uint64
			for _, ij := range tab[c] {
				spec ^= opWord(aPort, ij[0]) & opWord(bPort, ij[1])
			}
			if (outs[pos]^spec)&mask != 0 {
				deviating[c] = true
			}
		}
	}
	var out []int
	for c := range deviating {
		out = append(out, c)
	}
	sortInts(out)
	return out, nil
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// shrinker is the mutable working copy: gates can be redefined to constants
// and references redirected through repl; pack() materializes the live part.
type shrinker struct {
	src     *netlist.Netlist
	gates   []netlist.Gate
	repl    []int // gate substitution; repl[id] == id means "itself"
	inputs  []int // original input IDs in port order
	dropped map[int]bool
	outName string
	outRoot int // original gate ID driving the kept output
}

func newShrinker(n *netlist.Netlist, outName string, outRoot int) *shrinker {
	s := &shrinker{
		src:     n,
		gates:   make([]netlist.Gate, n.NumGates()),
		repl:    make([]int, n.NumGates()),
		inputs:  n.Inputs(),
		dropped: map[int]bool{},
		outName: outName,
		outRoot: outRoot,
	}
	for id := 0; id < n.NumGates(); id++ {
		s.gates[id] = n.Gate(id)
		s.repl[id] = id
	}
	return s
}

func (s *shrinker) resolve(id int) int {
	for s.repl[id] != id {
		id = s.repl[id]
	}
	return id
}

// live returns the set of gate IDs reachable from the kept output through
// the current substitutions.
func (s *shrinker) live() map[int]bool {
	seen := map[int]bool{}
	stack := []int{s.resolve(s.outRoot)}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		for _, f := range s.gates[id].Fanin {
			stack = append(stack, s.resolve(f))
		}
	}
	return seen
}

// pack materializes the current state: all non-dropped inputs (in original
// port order), the live logic cone, and the single kept output.
func (s *shrinker) pack() (*netlist.Netlist, error) {
	out := netlist.New(s.src.Name)
	mapping := make(map[int]int, len(s.gates))
	for _, id := range s.inputs {
		if s.dropped[id] {
			continue
		}
		nid, err := out.AddInput(s.src.NameOf(id))
		if err != nil {
			return nil, err
		}
		mapping[id] = nid
	}
	liveSet := s.live()
	for id := 0; id < len(s.gates); id++ {
		if !liveSet[id] || s.resolve(id) != id {
			continue
		}
		g := s.gates[id]
		if g.Type == netlist.Input {
			if _, ok := mapping[id]; !ok {
				return nil, fmt.Errorf("diffcheck: minimizer dropped the live input %q", s.src.NameOf(id))
			}
			continue
		}
		fanin := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			nf, ok := mapping[s.resolve(f)]
			if !ok {
				return nil, fmt.Errorf("diffcheck: minimizer lost fanin of gate %d", id)
			}
			fanin[i] = nf
		}
		var nid int
		var err error
		if g.Type == netlist.Lut {
			nid, err = out.AddLut(g.Table, fanin...)
		} else {
			nid, err = out.AddGate(g.Type, fanin...)
		}
		if err != nil {
			return nil, err
		}
		mapping[id] = nid
	}
	root, ok := mapping[s.resolve(s.outRoot)]
	if !ok {
		return nil, fmt.Errorf("diffcheck: minimizer lost the output root")
	}
	if err := out.MarkOutput(s.outName, root); err != nil {
		return nil, err
	}
	return out, nil
}

// outputWords simulates the current state on the battery and returns the
// kept output's word per batch. The battery is indexed by the ORIGINAL
// input port order; dropped inputs read as 0.
func (s *shrinker) outputWords(bt battery) ([]uint64, error) {
	n, err := s.pack()
	if err != nil {
		return nil, err
	}
	// Map battery words onto the packed netlist's (possibly reduced) ports.
	kept := make([]int, 0, len(s.inputs))
	for i, id := range s.inputs {
		if !s.dropped[id] {
			kept = append(kept, i)
		}
	}
	out := make([]uint64, len(bt.words))
	for bi, words := range bt.words {
		in := make([]uint64, len(kept))
		for j, srcIdx := range kept {
			in[j] = words[srcIdx]
		}
		vals, err := n.Simulate(in)
		if err != nil {
			return nil, err
		}
		out[bi] = n.OutputWords(vals)[0]
	}
	return out, nil
}

// mergeBySignature simulates the source netlist on the battery and
// redirects every gate onto the earliest gate with an identical word
// vector. Function-preserving whenever the battery is exhaustive; callers
// with sampled batteries re-validate afterwards.
func (s *shrinker) mergeBySignature(bt battery) error {
	type sigKey string
	first := map[sigKey]int{}
	sigs := make([][]uint64, len(s.gates))
	for bi, words := range bt.words {
		in := make([]uint64, len(s.inputs))
		copy(in, words)
		vals, err := s.src.Simulate(in)
		if err != nil {
			return err
		}
		mask := ^uint64(0)
		if bt.lanes[bi] < 64 {
			mask = 1<<uint(bt.lanes[bi]) - 1
		}
		for id, v := range vals {
			sigs[id] = append(sigs[id], v&mask)
		}
	}
	for id := 0; id < len(s.gates); id++ {
		buf := make([]byte, 0, 8*len(sigs[id]))
		for _, w := range sigs[id] {
			for sh := 0; sh < 64; sh += 8 {
				buf = append(buf, byte(w>>uint(sh)))
			}
		}
		key := sigKey(buf)
		if prev, ok := first[key]; ok {
			s.repl[id] = prev
		} else {
			first[key] = id
		}
	}
	return nil
}

// Minimize shrinks a netlist that deviates from multiplication mod o.P into
// a near-minimal single-output repro with the deviation preserved. It
// returns an error when the netlist does not functionally deviate (e.g. the
// failure was structural, not functional).
func Minimize(n *netlist.Netlist, o MinimizeOptions) (*netlist.Netlist, error) {
	if len(o.Binding.A) == 0 {
		return nil, fmt.Errorf("diffcheck: minimizer needs a port binding")
	}
	fullBt := makeBattery(len(n.Inputs()), o.Seed, o.Words)
	dev, err := deviationsOn(n, o.P, o.Binding, fullBt)
	if err != nil {
		return nil, err
	}
	if len(dev) == 0 {
		return nil, fmt.Errorf("diffcheck: netlist does not deviate from A·B mod %v on the battery", o.P)
	}

	// Cone-restrict to the deviating bit with the smallest cone.
	_, _, outPos := looseResolve(n, o.Binding)
	outs := n.Outputs()
	best, bestCone := -1, 0
	for _, c := range dev {
		cone := len(n.Cone(outs[outPos[c]]))
		if best < 0 || cone < bestCone {
			best, bestCone = c, cone
		}
	}
	s := newShrinker(n, o.Binding.Out[best], outs[outPos[best]])

	champion, err := s.outputWords(fullBt)
	if err != nil {
		return nil, err
	}
	equivalent := func() bool {
		words, err := s.outputWords(fullBt)
		if err != nil {
			return false
		}
		for bi := range words {
			mask := ^uint64(0)
			if fullBt.lanes[bi] < 64 {
				mask = 1<<uint(fullBt.lanes[bi]) - 1
			}
			if (words[bi]^champion[bi])&mask != 0 {
				return false
			}
		}
		return true
	}

	// Merge battery-equivalent gates first: redirect every live gate onto
	// the earliest gate computing the same word vector (exact for
	// exhaustive batteries). This collapses structural duplicates the
	// fanin/constant shrink below cannot reach.
	if err := s.mergeBySignature(fullBt); err != nil {
		return nil, err
	}
	if !equivalent() {
		// Only possible with a sampled battery that aliased two functions;
		// undo by starting over without the merge.
		s = newShrinker(n, o.Binding.Out[best], outs[outPos[best]])
	}

	// Observational-equivalence gate shrinking to fixpoint.
	shrinkFixpoint := func() {
		for changed := true; changed; {
			changed = false
			liveSet := s.live()
			for id := len(s.gates) - 1; id >= 0; id-- {
				if !liveSet[id] || s.resolve(id) != id {
					continue
				}
				g := s.gates[id]
				if g.Type == netlist.Input {
					continue
				}
				accepted := false
				// Try collapsing onto each fanin first (removes a gate and often
				// a whole subtree), then onto constants.
				for _, f := range g.Fanin {
					s.repl[id] = s.resolve(f)
					if equivalent() {
						accepted = true
						break
					}
					s.repl[id] = id
				}
				if !accepted && g.Type != netlist.Const0 && g.Type != netlist.Const1 {
					for _, ct := range []netlist.GateType{netlist.Const0, netlist.Const1} {
						s.gates[id] = netlist.Gate{Type: ct}
						if equivalent() {
							accepted = true
							break
						}
						s.gates[id] = g
					}
				}
				if accepted {
					changed = true
					liveSet = s.live()
				}
			}
		}
	}
	shrinkFixpoint()

	// Cofactor phase: pin live inputs to constant 0. Unlike the
	// function-preserving shrink above, each pin is guarded by the deviation
	// predicate — the cofactored cone must still disagree with the
	// cofactored specification on the kept output.
	for _, id := range s.inputs {
		if s.dropped[id] || !s.live()[id] {
			continue
		}
		saved := s.gates[id]
		s.gates[id] = netlist.Gate{Type: netlist.Const0}
		s.dropped[id] = true
		keep := false
		if packed, perr := s.pack(); perr == nil {
			if still, derr := Deviations(packed, o.P, o.Binding, o.Seed); derr == nil && len(still) > 0 {
				keep = true
			}
		}
		if !keep {
			s.gates[id] = saved
			delete(s.dropped, id)
			continue
		}
		// The kept function changed: rebase the champion and propagate the
		// new constant through the cone.
		if champion, err = s.outputWords(fullBt); err != nil {
			return nil, err
		}
		shrinkFixpoint()
	}

	// Drop inputs the cone no longer reads, keeping the deviation alive
	// against the cofactored specification.
	liveSet := s.live()
	for _, id := range s.inputs {
		if liveSet[id] {
			continue
		}
		s.dropped[id] = true
		packed, err := s.pack()
		if err != nil {
			s.dropped[id] = false
			continue
		}
		still, err := Deviations(packed, o.P, o.Binding, o.Seed)
		if err != nil || len(still) == 0 {
			delete(s.dropped, id)
		}
	}

	min, err := s.pack()
	if err != nil {
		return nil, err
	}
	still, err := Deviations(min, o.P, o.Binding, o.Seed)
	if err != nil {
		return nil, err
	}
	if len(still) == 0 {
		return nil, fmt.Errorf("diffcheck: minimization lost the deviation (shrink battery too small)")
	}
	return min, nil
}
