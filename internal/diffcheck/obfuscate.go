package diffcheck

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/netlint"
	"github.com/galoisfield/gfre/internal/netlist"
)

// The obfuscation campaign is the arms-race oracle: the repository's own
// logic-locking transforms (gen.Obfuscate) versus its own semantic detector
// (netlint's key-gate / opaque-constant rules over the sem sweep). A healthy
// detector is exact on this corpus — every planted key flagged, nothing
// flagged on clean designs — because the planted key inputs are, by
// construction, surplus to the operand partition and reach output supports.

// obfStyleOf maps a Case.Lock name to the generator style.
func obfStyleOf(name string) (gen.ObfStyle, error) {
	switch name {
	case "xor":
		return gen.ObfXor, nil
	case "mux":
		return gen.ObfMux, nil
	case "opaque":
		return gen.ObfOpaque, nil
	}
	return 0, fmt.Errorf("diffcheck: unknown lock style %q", name)
}

// LockStyles lists the lock-style names case sampling draws from.
func LockStyles() []string { return []string{"xor", "mux", "opaque"} }

// keyFindingRules are the lint rules that must stay silent on clean designs
// and (for the first two) fire on locked ones. dead-by-algebra is excluded:
// it legitimately fires on clean generated designs (karatsuba's combine step
// emits cancelling XOR pairs for some polynomials), so it is a redundancy
// report, not a lock indicator.
var keyFindingRules = map[string]bool{
	"key-gate":        true,
	"opaque-constant": true,
	"nonlinear-cone":  true,
}

// runObfuscate executes one lock→detect case. Stages:
//
//	lint-clean   zero key/opaque/nonlinear findings on the clean design
//	obfuscate    plant Keys key gates in Lock style
//	sim-locked   locked design ∘ (key = 0) ≡ clean design on random vectors
//	detect       detected gated keys == planted keys, exactly; locked
//	             designs still pass preflight (warn, never error)
func runObfuscate(c Case, stage *string, fail func(error) Result) Result {
	*stage = "gen"
	n, err := c.Generate()
	if err != nil {
		return fail(err)
	}

	// Clean-corpus oracle: any key-ish finding here is a false positive by
	// definition — the generator planted nothing.
	*stage = "lint-clean"
	rep := netlint.Analyze(n, netlint.Options{RequireMultiplier: true})
	if rep.HasErrors() {
		return fail(rep.Err())
	}
	for _, f := range rep.Findings {
		if keyFindingRules[f.Rule] {
			return fail(fmt.Errorf("diffcheck: false positive %s on clean %s: %s", f.Rule, c.Arch, f.Message))
		}
	}
	if alg := rep.Algebra; alg == nil {
		return fail(fmt.Errorf("diffcheck: clean design report has no algebra summary"))
	} else if len(alg.KeyInputs) != 0 || len(alg.GatedKeyInputs) != 0 {
		return fail(fmt.Errorf("diffcheck: clean design reports key inputs %v (gated %v)", alg.KeyInputs, alg.GatedKeyInputs))
	}

	*stage = "obfuscate"
	style, err := obfStyleOf(c.Lock)
	if err != nil {
		return fail(err)
	}
	keys := c.Keys
	if keys < 1 {
		keys = 1
	}
	obf, info, err := gen.Obfuscate(n, gen.ObfuscateOptions{Style: style, Keys: keys, Seed: c.Seed})
	if err != nil {
		return fail(err)
	}
	res := Result{Case: c, Status: Pass, Gates: obf.NumGates(), Obfuscated: true, KeysPlanted: len(info.KeyInputs)}

	// Correct-key equivalence: the transform must not have changed the
	// function it claims to hide.
	*stage = "sim-locked"
	if err := lockedEquiv(n, obf, len(info.KeyInputs), c.SimTrials, c.Seed+11); err != nil {
		res.Netlist, res.Binding = obf, CanonicalBinding(c.M)
		return fail(err)
	}

	*stage = "detect"
	rep = netlint.Analyze(obf, netlint.Options{RequireMultiplier: true})
	if rep.HasErrors() {
		// Locked designs are suspicious, not malformed: preflight must warn
		// (so -strict and submit-time policy can reject) without erroring.
		return fail(fmt.Errorf("diffcheck: locked design escalated to error: %v", rep.Err()))
	}
	if rep.Algebra == nil {
		return fail(fmt.Errorf("diffcheck: locked design report has no algebra summary"))
	}
	detected := append([]string(nil), rep.Algebra.GatedKeyInputs...)
	planted := append([]string(nil), info.KeyNames...)
	sort.Strings(detected)
	sort.Strings(planted)
	res.KeysDetected = len(detected)
	if !equalStrings(detected, planted) {
		return fail(fmt.Errorf("diffcheck: detector found gated keys %v, planted %v (style %s)", detected, planted, c.Lock))
	}
	var keyGates, opaques int
	for _, f := range rep.Findings {
		switch f.Rule {
		case "key-gate":
			keyGates++
		case "opaque-constant":
			opaques++
		}
	}
	if keyGates == 0 {
		return fail(fmt.Errorf("diffcheck: %d keys planted but no key-gate finding", len(planted)))
	}
	if style == gen.ObfOpaque {
		if opaques == 0 {
			return fail(fmt.Errorf("diffcheck: opaque lock planted but no opaque-constant finding"))
		}
		res.OpaqueHit = true
	}
	return res
}

// lockedEquiv simulates the locked netlist with every key input forced to
// zero and the original inputs driven by shared random words, and compares
// all output words against the clean netlist. nkeys key inputs occupy the
// tail of the locked design's input list (gen.Obfuscate appends them).
func lockedEquiv(clean, locked *netlist.Netlist, nkeys, words int, seed int64) error {
	ci, li := clean.Inputs(), locked.Inputs()
	if len(li) != len(ci)+nkeys {
		return fmt.Errorf("diffcheck: locked design has %d inputs, want %d + %d keys", len(li), len(ci), nkeys)
	}
	if words <= 0 {
		words = 2
	}
	r := rand.New(rand.NewSource(seed))
	for w := 0; w < words; w++ {
		in := make([]uint64, len(ci))
		for i := range in {
			in[i] = r.Uint64()
		}
		lin := make([]uint64, len(li))
		copy(lin, in) // keys stay zero
		cv, err := clean.Simulate(in)
		if err != nil {
			return err
		}
		lv, err := locked.Simulate(lin)
		if err != nil {
			return err
		}
		co, lo := clean.OutputWords(cv), locked.OutputWords(lv)
		for i := range co {
			if co[i] != lo[i] {
				return fmt.Errorf("diffcheck: locked design deviates from clean under the correct key at output %d word %d", i, w)
			}
		}
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
