package diffcheck

import (
	"testing"

	"github.com/galoisfield/gfre/internal/polytab"
)

// TestDiagnoseGF163NIST pins fault tolerance at the paper's largest
// "everyday" field size: a GF(2^163) matrix Mastrovito over the NIST
// pentanomial with one planted trojan recovers P(x) and localizes the gate
// in seconds. (The gffuzz -diagnose campaign at m=163 is far slower only
// because it samples dense random irreducibles, which inflate the
// reduction network — see EXPERIMENTS.md.)
func TestDiagnoseGF163NIST(t *testing.T) {
	if testing.Short() {
		t.Skip("GF(2^163) diagnosis in -short mode")
	}
	res := Run(Case{
		Kind: KindDiagnose, M: 163, P: polytab.NIST[163],
		Arch: ArchMatrix, Inject: 1, Seed: 5, Threads: 8,
	})
	if res.Status != Pass {
		t.Fatalf("%s at %s: %s", res.Status, res.Stage, res.Err)
	}
}
