// Package rewrite implements backward rewriting of gate-level netlists into
// canonical per-output algebraic normal forms — Algorithm 1 of the paper,
// parallelized across output bits per Theorem 2.
//
// For each primary output z, the engine starts from the polynomial F₀ = z
// and walks the output's transitive-fanin cone in reverse topological order,
// substituting every gate-output variable by the gate's algebraic model
// (Eq. 1) with immediate mod-2 simplification, until only primary-input
// variables remain. Because GF(2^m) multipliers have no carry chain,
// cancellations never cross cones (Theorem 2), so output bits are processed
// by an independent worker each — the "extraction in n threads" of the
// paper's title claim, with a configurable pool size like the paper's
// 16-thread runs.
//
// Variables are netlist gate IDs: anf.Var(id). Final expressions therefore
// refer to primary-input gate IDs.
package rewrite

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/galoisfield/gfre/internal/anf"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/obs"
)

// Options configures a rewriting run.
type Options struct {
	// Threads is the worker-pool size. 0 selects runtime.GOMAXPROCS(0).
	// The paper's experiments use 16.
	Threads int
	// Recorder receives telemetry: per-bit start/finish events, the
	// rewrite and cone-sort phase spans, and the substitutions /
	// cancellations / live_terms / workers_busy metrics. nil disables
	// instrumentation at negligible cost.
	Recorder *obs.Recorder
}

// BitStats records the per-output-bit cost counters that Figure 4 and the
// memory columns of Tables I–IV are built from.
type BitStats struct {
	Bit           int           // output position
	Name          string        // output port name
	ConeGates     int           // gates in the output's transitive fanin
	Substitutions int           // rewriting iterations actually performed
	PeakTerms     int           // largest intermediate polynomial size
	FinalTerms    int           // terms in the extracted expression
	Cancelled     int           // terms eliminated mod 2 across all substitutions (exact)
	Runtime       time.Duration // wall time to rewrite this bit
}

// BitResult is the extracted expression of one output bit plus its cost.
type BitResult struct {
	BitStats
	Expr anf.Poly // canonical ANF over primary-input variables
}

// Result is the outcome of rewriting all outputs of a netlist.
type Result struct {
	Bits    []BitResult   // indexed by output position
	Runtime time.Duration // wall time for the whole run (all workers)
	Threads int           // worker count actually used
}

// TotalSubstitutions sums the rewriting iterations over all bits.
func (r *Result) TotalSubstitutions() int {
	n := 0
	for _, b := range r.Bits {
		n += b.Substitutions
	}
	return n
}

// TotalCancelled sums the mod-2 term eliminations over all bits.
func (r *Result) TotalCancelled() int {
	n := 0
	for _, b := range r.Bits {
		n += b.Cancelled
	}
	return n
}

// PeakTerms returns the largest intermediate polynomial seen in any bit.
func (r *Result) PeakTerms() int {
	p := 0
	for _, b := range r.Bits {
		if b.PeakTerms > p {
			p = b.PeakTerms
		}
	}
	return p
}

// EstimatedMemBytes approximates the working-set high-water mark: the peak
// term count of every concurrently live bit times an empirical per-term
// cost. It is the analogue of the paper's "Mem" column (their numbers are
// resident-set sizes of the C++ tool; ours are model estimates — shapes are
// comparable, absolute values are not).
func (r *Result) EstimatedMemBytes() int64 {
	const bytesPerTerm = 48 // map entry + encoded monomial, measured empirically
	var total int64
	for _, b := range r.Bits {
		total += int64(b.PeakTerms) * bytesPerTerm
	}
	return total
}

// hooks carries pre-fetched metric handles into the rewriting hot loop, so
// the instrumented path costs one predictable nil check per event site and
// the registry lock is never touched mid-rewrite. A nil *hooks disables
// everything.
type hooks struct {
	rec    *obs.Recorder
	subst  *obs.Counter // substitutions performed
	cancel *obs.Counter // terms eliminated mod 2
	coneNs *obs.Counter // cone sorting, CPU ns summed over workers
	live   *obs.Gauge   // resident terms across all in-flight bits
	busy   *obs.Gauge   // workers currently rewriting a bit
}

func newHooks(rec *obs.Recorder) *hooks {
	if rec == nil {
		return nil
	}
	m := rec.Metrics()
	return &hooks{
		rec:    rec,
		subst:  m.Counter("substitutions"),
		cancel: m.Counter("cancellations"),
		coneNs: m.Counter("cone_sort_ns"),
		live:   m.Gauge("live_terms"),
		busy:   m.Gauge("workers_busy"),
	}
}

// Outputs rewrites every primary output of n into its canonical ANF.
func Outputs(n *netlist.Netlist, opts Options) (*Result, error) {
	threads := opts.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	outs := n.Outputs()
	names := n.OutputNames()
	res := &Result{Bits: make([]BitResult, len(outs)), Threads: threads}
	if len(outs) == 0 {
		return nil, fmt.Errorf("rewrite: netlist %q has no outputs", n.Name)
	}

	rec := opts.Recorder
	h := newHooks(rec)
	span := rec.StartSpan("rewrite", map[string]int64{
		"bits": int64(len(outs)), "threads": int64(threads),
	})

	start := time.Now()
	jobs := make(chan int)
	errs := make([]error, len(outs))
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for bit := range jobs {
				rec.BitStart(bit, names[bit])
				h.busyAdd(1)
				br, err := rewriteOutput(n, outs[bit], h)
				h.busyAdd(-1)
				if err != nil {
					errs[bit] = err
					continue
				}
				br.Bit = bit
				br.Name = names[bit]
				res.Bits[bit] = br
				rec.BitFinish(obs.BitStats{
					Bit: br.Bit, Name: br.Name, ConeGates: br.ConeGates,
					Substitutions: br.Substitutions, PeakTerms: br.PeakTerms,
					FinalTerms: br.FinalTerms, Cancelled: br.Cancelled,
					Duration: br.Runtime,
				})
			}
		}()
	}
	for bit := range outs {
		jobs <- bit
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.Runtime = time.Since(start)
	if h != nil {
		// Cone sorting runs inside the workers; its span is CPU time summed
		// across them, not a wall-clock bracket.
		rec.RecordSpan("cone-sort", time.Duration(h.coneNs.Value()))
	}
	span.End()
	return res, nil
}

func (h *hooks) busyAdd(delta int64) {
	if h != nil {
		h.busy.Add(delta)
	}
}

// Output rewrites the single output driven by gate root into its canonical
// ANF over primary inputs (Algorithm 1 restricted to root's cone).
func Output(n *netlist.Netlist, root int) (BitResult, error) {
	return rewriteOutput(n, root, nil)
}

func rewriteOutput(n *netlist.Netlist, root int, h *hooks) (BitResult, error) {
	start := time.Now()
	cone := n.Cone(root)
	br := BitResult{}
	br.ConeGates = len(cone)
	if h != nil {
		h.coneNs.Add(int64(time.Since(start)))
		h.live.Add(1) // F₀ = z
	}

	f := anf.Variable(anf.Var(root))
	br.PeakTerms = 1
	varOf := func(id int) anf.Var { return anf.Var(id) }

	// Reverse topological order: cone is ascending and every fanin ID is
	// smaller than its reader, so walking backwards guarantees each gate
	// variable is eliminated before its fanins are visited.
	for i := len(cone) - 1; i >= 0; i-- {
		id := cone[i]
		g := n.Gate(id)
		if g.Type == netlist.Input {
			continue
		}
		v := anf.Var(id)
		k := f.VarOccurrences(v)
		if k == 0 {
			// The gate's contribution cancelled out earlier; nothing to do.
			continue
		}
		e, err := n.GateANF(id, varOf)
		if err != nil {
			return br, fmt.Errorf("rewrite: gate %d (%s): %w", id, n.NameOf(id), err)
		}
		before := f.Len()
		f.Substitute(v, e)
		after := f.Len()
		br.Substitutions++
		// Exact mod-2 accounting: the k occurrences of v expand to k·|e|
		// terms, so before-k+k·|e| were produced and the shortfall vanished
		// in cancelling pairs.
		cancelled := before - k + k*e.Len() - after
		br.Cancelled += cancelled
		if after > br.PeakTerms {
			br.PeakTerms = after
		}
		if h != nil {
			h.subst.Inc()
			h.cancel.Add(int64(cancelled))
			h.live.Add(int64(after - before))
		}
	}

	// Sanity: only primary-input variables may remain (Theorem 1).
	for _, v := range f.SupportVars() {
		if n.Gate(int(v)).Type != netlist.Input {
			return br, fmt.Errorf("rewrite: non-input variable v%d (%s) survived rewriting", v, n.NameOf(int(v)))
		}
	}
	br.Expr = f
	br.FinalTerms = f.Len()
	br.Runtime = time.Since(start)
	if h != nil {
		h.live.Add(-int64(br.FinalTerms)) // bit retired; its terms leave the working set
	}
	return br, nil
}
