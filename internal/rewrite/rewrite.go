// Package rewrite implements backward rewriting of gate-level netlists into
// canonical per-output algebraic normal forms — Algorithm 1 of the paper,
// parallelized across output bits per Theorem 2.
//
// For each primary output z, the engine starts from the polynomial F₀ = z
// and walks the output's transitive-fanin cone in reverse topological order,
// substituting every gate-output variable by the gate's algebraic model
// (Eq. 1) with immediate mod-2 simplification, until only primary-input
// variables remain. Because GF(2^m) multipliers have no carry chain,
// cancellations never cross cones (Theorem 2), so output bits are processed
// by an independent worker each — the "extraction in n threads" of the
// paper's title claim, with a configurable pool size like the paper's
// 16-thread runs.
//
// Variables are netlist gate IDs: anf.Var(id). Final expressions therefore
// refer to primary-input gate IDs.
package rewrite

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/galoisfield/gfre/internal/anf"
	"github.com/galoisfield/gfre/internal/netlist"
)

// Options configures a rewriting run.
type Options struct {
	// Threads is the worker-pool size. 0 selects runtime.GOMAXPROCS(0).
	// The paper's experiments use 16.
	Threads int
}

// BitStats records the per-output-bit cost counters that Figure 4 and the
// memory columns of Tables I–IV are built from.
type BitStats struct {
	Bit           int           // output position
	Name          string        // output port name
	ConeGates     int           // gates in the output's transitive fanin
	Substitutions int           // rewriting iterations actually performed
	PeakTerms     int           // largest intermediate polynomial size
	FinalTerms    int           // terms in the extracted expression
	Runtime       time.Duration // wall time to rewrite this bit
}

// BitResult is the extracted expression of one output bit plus its cost.
type BitResult struct {
	BitStats
	Expr anf.Poly // canonical ANF over primary-input variables
}

// Result is the outcome of rewriting all outputs of a netlist.
type Result struct {
	Bits    []BitResult   // indexed by output position
	Runtime time.Duration // wall time for the whole run (all workers)
	Threads int           // worker count actually used
}

// TotalSubstitutions sums the rewriting iterations over all bits.
func (r *Result) TotalSubstitutions() int {
	n := 0
	for _, b := range r.Bits {
		n += b.Substitutions
	}
	return n
}

// PeakTerms returns the largest intermediate polynomial seen in any bit.
func (r *Result) PeakTerms() int {
	p := 0
	for _, b := range r.Bits {
		if b.PeakTerms > p {
			p = b.PeakTerms
		}
	}
	return p
}

// EstimatedMemBytes approximates the working-set high-water mark: the peak
// term count of every concurrently live bit times an empirical per-term
// cost. It is the analogue of the paper's "Mem" column (their numbers are
// resident-set sizes of the C++ tool; ours are model estimates — shapes are
// comparable, absolute values are not).
func (r *Result) EstimatedMemBytes() int64 {
	const bytesPerTerm = 48 // map entry + encoded monomial, measured empirically
	var total int64
	for _, b := range r.Bits {
		total += int64(b.PeakTerms) * bytesPerTerm
	}
	return total
}

// Outputs rewrites every primary output of n into its canonical ANF.
func Outputs(n *netlist.Netlist, opts Options) (*Result, error) {
	threads := opts.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	outs := n.Outputs()
	names := n.OutputNames()
	res := &Result{Bits: make([]BitResult, len(outs)), Threads: threads}
	if len(outs) == 0 {
		return nil, fmt.Errorf("rewrite: netlist %q has no outputs", n.Name)
	}

	start := time.Now()
	jobs := make(chan int)
	errs := make([]error, len(outs))
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for bit := range jobs {
				br, err := Output(n, outs[bit])
				if err != nil {
					errs[bit] = err
					continue
				}
				br.Bit = bit
				br.Name = names[bit]
				res.Bits[bit] = br
			}
		}()
	}
	for bit := range outs {
		jobs <- bit
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.Runtime = time.Since(start)
	return res, nil
}

// Output rewrites the single output driven by gate root into its canonical
// ANF over primary inputs (Algorithm 1 restricted to root's cone).
func Output(n *netlist.Netlist, root int) (BitResult, error) {
	start := time.Now()
	cone := n.Cone(root)
	br := BitResult{}
	br.ConeGates = len(cone)

	f := anf.Variable(anf.Var(root))
	br.PeakTerms = 1
	varOf := func(id int) anf.Var { return anf.Var(id) }

	// Reverse topological order: cone is ascending and every fanin ID is
	// smaller than its reader, so walking backwards guarantees each gate
	// variable is eliminated before its fanins are visited.
	for i := len(cone) - 1; i >= 0; i-- {
		id := cone[i]
		g := n.Gate(id)
		if g.Type == netlist.Input {
			continue
		}
		v := anf.Var(id)
		if !f.ContainsVar(v) {
			// The gate's contribution cancelled out earlier; nothing to do.
			continue
		}
		e, err := n.GateANF(id, varOf)
		if err != nil {
			return br, fmt.Errorf("rewrite: gate %d (%s): %w", id, n.NameOf(id), err)
		}
		f.Substitute(v, e)
		br.Substitutions++
		if l := f.Len(); l > br.PeakTerms {
			br.PeakTerms = l
		}
	}

	// Sanity: only primary-input variables may remain (Theorem 1).
	for _, v := range f.SupportVars() {
		if n.Gate(int(v)).Type != netlist.Input {
			return br, fmt.Errorf("rewrite: non-input variable v%d (%s) survived rewriting", v, n.NameOf(int(v)))
		}
	}
	br.Expr = f
	br.FinalTerms = f.Len()
	br.Runtime = time.Since(start)
	return br, nil
}
