// Package rewrite implements backward rewriting of gate-level netlists into
// canonical per-output algebraic normal forms — Algorithm 1 of the paper,
// parallelized across output bits per Theorem 2.
//
// For each primary output z, the engine starts from the polynomial F₀ = z
// and walks the output's transitive-fanin cone in reverse topological order,
// substituting every gate-output variable by the gate's algebraic model
// (Eq. 1) with immediate mod-2 simplification, until only primary-input
// variables remain. Because GF(2^m) multipliers have no carry chain,
// cancellations never cross cones (Theorem 2), so output bits are processed
// by an independent worker each — the "extraction in n threads" of the
// paper's title claim, with a configurable pool size like the paper's
// 16-thread runs.
//
// Variables are netlist gate IDs: anf.Var(id). Final expressions therefore
// refer to primary-input gate IDs.
package rewrite

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/galoisfield/gfre/internal/anf"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/obs"
)

// Options configures a rewriting run.
type Options struct {
	// Threads is the worker-pool size. 0 selects runtime.GOMAXPROCS(0).
	// The paper's experiments use 16.
	Threads int
	// Recorder receives telemetry: per-bit start/finish events, the
	// rewrite and cone-sort phase spans, and the substitutions /
	// cancellations / live_terms / workers_busy metrics. nil disables
	// instrumentation at negligible cost.
	Recorder *obs.Recorder

	// Ctx cancels the whole run cooperatively: in-flight cones stop at the
	// next substitution and queued cones are skipped. nil means Background.
	Ctx context.Context
	// ConeDeadline bounds the wall time of each individual cone; a cone
	// over deadline aborts with ErrConeTimeout. 0 disables the deadline.
	ConeDeadline time.Duration
	// BudgetTerms caps the live terms of each cone's intermediate
	// polynomial; exceeding it aborts the cone with a *BudgetError
	// (errors.Is ErrBudgetExceeded). 0 disables the budget.
	BudgetTerms int
	// NoRetry disables the retry ladder: budget-aborted cones are not
	// re-attempted under the alternative substitution order.
	NoRetry bool
	// KeepPartial makes Outputs survive individual cone failures: failed
	// bits carry a Status and empty Expr, healthy bits complete normally,
	// and the Result comes back with a nil error as long as the failure
	// count stays within MaxFailures. Without KeepPartial the first
	// failure cancels all sibling cones promptly and fails the run.
	KeepPartial bool
	// MaxFailures bounds the tolerated failed-cone count under
	// KeepPartial; one failure beyond it fails the run with
	// ErrTooManyFailures (wrapping the last cone error). 0 = unlimited.
	MaxFailures int

	// Prior restores completed cones from an earlier (checkpointed) run:
	// entries with Status ok whose Bit/Name match an output are adopted
	// verbatim and never re-rewritten; everything else is rewritten as
	// usual. Result.Reused counts the adopted cones. Entries that do not
	// match the netlist (stale bit index or renamed output) are ignored —
	// callers gate on a content hash, this is defense in depth.
	Prior []BitResult
	// OnBitDone, when non-nil, observes every freshly computed terminal
	// BitResult — completed or failed — right after the worker stores it.
	// It is invoked concurrently from the worker pool (the checkpoint
	// manager serializes internally) and is NOT called for Prior-reused
	// cones, which the caller already has.
	OnBitDone func(BitResult)
}

// BitStats records the per-output-bit cost counters that Figure 4 and the
// memory columns of Tables I–IV are built from.
type BitStats struct {
	Bit           int           // output position
	Name          string        // output port name
	ConeGates     int           // gates in the output's transitive fanin
	Substitutions int           // rewriting iterations actually performed
	PeakTerms     int           // largest intermediate polynomial size
	FinalTerms    int           // terms in the extracted expression
	Cancelled     int           // terms eliminated mod 2 across all substitutions (exact)
	Runtime       time.Duration // wall time to rewrite this bit
}

// BitResult is the extracted expression of one output bit plus its cost.
type BitResult struct {
	BitStats
	Expr anf.Poly // canonical ANF over primary-input variables
	// Status classifies how the cone ended; "" and StatusOK both mean a
	// completed cone with a valid Expr.
	Status Status
	// Err holds the cone's failure message when Status.Failed().
	Err string
}

// Result is the outcome of rewriting all outputs of a netlist.
type Result struct {
	Bits    []BitResult   // indexed by output position
	Runtime time.Duration // wall time for the whole run (all workers)
	Threads int           // worker count actually used
	// Failed lists the output positions whose cones did not complete
	// (budget, timeout, panic, cancellation or structural error).
	Failed []int
	// Retries counts budget-aborted cones that were re-attempted under the
	// alternative substitution order.
	Retries int
	// Reused counts cones adopted from Options.Prior instead of being
	// rewritten — the quantity a resumed run saves over a cold one.
	Reused int
}

// TotalSubstitutions sums the rewriting iterations over all bits.
func (r *Result) TotalSubstitutions() int {
	n := 0
	for _, b := range r.Bits {
		n += b.Substitutions
	}
	return n
}

// TotalCancelled sums the mod-2 term eliminations over all bits.
func (r *Result) TotalCancelled() int {
	n := 0
	for _, b := range r.Bits {
		n += b.Cancelled
	}
	return n
}

// PeakTerms returns the largest intermediate polynomial seen in any bit.
func (r *Result) PeakTerms() int {
	p := 0
	for _, b := range r.Bits {
		if b.PeakTerms > p {
			p = b.PeakTerms
		}
	}
	return p
}

// EstimatedMemBytes approximates the working-set high-water mark: the peak
// term count of every concurrently live bit times an empirical per-term
// cost. It is the analogue of the paper's "Mem" column (their numbers are
// resident-set sizes of the C++ tool; ours are model estimates — shapes are
// comparable, absolute values are not).
func (r *Result) EstimatedMemBytes() int64 {
	// Measured on the packed intern-table core by holding the compacted
	// expressions of a GF(2^64) Montgomery run and reading the GC-settled
	// HeapAlloc delta: ~183 B per term (key string + index entry + arena
	// variables + occurrence list entry + bitset share), rounded up to
	// cover per-poly fixed overhead at small term counts.
	const bytesPerTerm = 192
	var total int64
	for _, b := range r.Bits {
		total += int64(b.PeakTerms) * bytesPerTerm
	}
	return total
}

// hooks carries pre-fetched metric handles into the rewriting hot loop, so
// the instrumented path costs one predictable nil check per event site and
// the registry lock is never touched mid-rewrite. A nil *hooks disables
// everything.
type hooks struct {
	rec    *obs.Recorder
	subst  *obs.Counter // substitutions performed
	cancel *obs.Counter // terms eliminated mod 2
	coneNs *obs.Counter // cone sorting, CPU ns summed over workers
	live   *obs.Gauge   // resident terms across all in-flight bits
	busy   *obs.Gauge   // workers currently rewriting a bit
	retry  *obs.Counter // cone_retries: budget aborts re-attempted
	aborts *obs.Counter // cone_aborts: cones that ended without an Expr
}

func newHooks(rec *obs.Recorder) *hooks {
	if rec == nil {
		return nil
	}
	m := rec.Metrics()
	return &hooks{
		rec:    rec,
		subst:  m.Counter("substitutions"),
		cancel: m.Counter("cancellations"),
		coneNs: m.Counter("cone_sort_ns"),
		live:   m.Gauge("live_terms"),
		busy:   m.Gauge("workers_busy"),
		retry:  m.Counter("cone_retries"),
		aborts: m.Counter("cone_aborts"),
	}
}

func (h *hooks) countRetry() {
	if h != nil {
		h.retry.Inc()
	}
}

// countAbort bumps the abort counter and emits a structured cone_abort event
// carrying the bit, its status and the progress made before the abort.
func (h *hooks) countAbort(br BitResult) {
	if h == nil {
		return
	}
	h.aborts.Inc()
	h.rec.Emit("cone_abort", string(br.Status), map[string]int64{
		"bit":           int64(br.Bit),
		"cone_gates":    int64(br.ConeGates),
		"substitutions": int64(br.Substitutions),
		"peak_terms":    int64(br.PeakTerms),
	})
}

// Outputs rewrites every primary output of n into its canonical ANF.
//
// Failure semantics: without Options.KeepPartial the first failing cone
// cancels its siblings promptly and Outputs returns that cone's error
// together with the partial Result (completed bits keep their expressions,
// aborted bits carry a Status). With KeepPartial, up to MaxFailures cones
// may fail while the run still returns nil; the failures are listed in
// Result.Failed.
func Outputs(n *netlist.Netlist, opts Options) (*Result, error) {
	threads := opts.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	outs := n.Outputs()
	names := n.OutputNames()
	res := &Result{Bits: make([]BitResult, len(outs)), Threads: threads}
	if len(outs) == 0 {
		return nil, fmt.Errorf("rewrite: netlist %q has no outputs", n.Name)
	}

	base := opts.Ctx
	if base == nil {
		base = context.Background()
	}
	// The internal cancel context lets the first fatal cone stop its
	// siblings at their next substitution instead of burning cores on a run
	// that is already lost.
	ctx, cancel := context.WithCancel(base)
	defer cancel()

	rec := opts.Recorder
	h := newHooks(rec)
	span := rec.StartSpan("rewrite", map[string]int64{
		"bits": int64(len(outs)), "threads": int64(threads),
	})

	// Adopt checkpointed cones before any worker starts: a reused bit is
	// final state, not work. Name matching guards against stale snapshots
	// (callers additionally gate on a netlist content hash).
	reused := make([]bool, len(outs))
	for _, pb := range opts.Prior {
		if pb.Status != StatusOK || pb.Bit < 0 || pb.Bit >= len(outs) ||
			pb.Name != names[pb.Bit] || reused[pb.Bit] {
			continue
		}
		res.Bits[pb.Bit] = pb
		reused[pb.Bit] = true
		res.Reused++
		rec.Emit("bit_reused", pb.Name, map[string]int64{
			"bit": int64(pb.Bit), "final": int64(pb.FinalTerms),
		})
	}
	if res.Reused > 0 {
		rec.Metrics().Counter("bits_reused").Add(int64(res.Reused))
	}

	var (
		failures  atomic.Int64
		retries   atomic.Int64
		fatalOnce sync.Once
		fatalErr  error
	)
	fatal := func(err error) {
		fatalOnce.Do(func() {
			fatalErr = err
			cancel()
		})
	}

	start := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for bit := range jobs {
				if err := ctx.Err(); err != nil {
					res.Bits[bit] = BitResult{
						BitStats: BitStats{Bit: bit, Name: names[bit]},
						Status:   StatusCancelled, Err: err.Error(),
					}
					continue
				}
				rec.BitStart(bit, names[bit])
				// Per-cone child span under the rewrite phase: concurrent
				// siblings in the trace tree, one per output bit. Child is
				// nil-safe and the attrs ride on EndWith, so the nil-recorder
				// path stays allocation-free.
				coneSpan := span.Child(names[bit], nil)
				h.busyAdd(1)
				br, err, retried := rewriteGoverned(n, outs[bit], h, opts, ctx)
				h.busyAdd(-1)
				if retried {
					retries.Add(1)
				}
				br.Bit = bit
				br.Name = names[bit]
				if coneSpan != nil {
					retriedV := int64(0)
					if retried {
						retriedV = 1
					}
					if br.Status != "" {
						coneSpan.SetStatus(string(br.Status))
					} else if err == nil {
						coneSpan.SetStatus(string(StatusOK))
					} else {
						coneSpan.SetStatus(string(StatusError))
					}
					coneSpan.EndWith(map[string]int64{
						"bit": int64(bit), "cone_gates": int64(br.ConeGates),
						"subst": int64(br.Substitutions), "peak_terms": int64(br.PeakTerms),
						"cancelled": int64(br.Cancelled), "retries": retriedV,
					})
				}
				if err == nil {
					br.Status = StatusOK
					res.Bits[bit] = br
					if opts.OnBitDone != nil {
						opts.OnBitDone(br)
					}
					rec.BitFinish(obs.BitStats{
						Bit: br.Bit, Name: br.Name, ConeGates: br.ConeGates,
						Substitutions: br.Substitutions, PeakTerms: br.PeakTerms,
						FinalTerms: br.FinalTerms, Cancelled: br.Cancelled,
						Duration: br.Runtime,
					})
					continue
				}
				if be := (*BudgetError)(nil); errors.As(err, &be) {
					be.Bit, be.Name = bit, names[bit]
				}
				if br.Status == "" || br.Status == StatusOK {
					br.Status = StatusError
				}
				br.Err = err.Error()
				res.Bits[bit] = br
				if opts.OnBitDone != nil {
					opts.OnBitDone(br)
				}
				h.countAbort(br)
				if br.Status == StatusCancelled {
					// Collateral of someone else's failure (or the
					// caller's context): not this cone's fault and not a
					// tolerated-failure slot.
					continue
				}
				n := failures.Add(1)
				if !opts.KeepPartial {
					fatal(err)
				} else if opts.MaxFailures > 0 && n > int64(opts.MaxFailures) {
					fatal(fmt.Errorf("%w: %d cones failed (tolerate %d), last: %w",
						ErrTooManyFailures, n, opts.MaxFailures, err))
				}
			}
		}()
	}
	// Straggler-aware handoff: feed predicted-expensive cones first. With
	// per-bit costs spanning two orders of magnitude (the Montgomery z20/z28
	// class vs their ~ms siblings), feeding in bit order can land a fat cone
	// on the last free worker and serialize the tail of the run behind it;
	// starting the deep cones first bounds the tail by the cheap ones
	// instead. Root logic depth is the predictor — it is computed in one
	// O(gates) sweep and correlates with both cone size and substitution
	// cost on every architecture we generate (see EXPERIMENTS.md).
	levels, _ := n.Levels()
	order := make([]int, 0, len(outs))
	for bit := range outs {
		if !reused[bit] {
			order = append(order, bit)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		return levels[outs[order[i]]] > levels[outs[order[j]]]
	})
	for _, bit := range order {
		jobs <- bit
	}
	close(jobs)
	wg.Wait()

	res.Retries = int(retries.Load())
	for bit, br := range res.Bits {
		if br.Status.Failed() {
			res.Failed = append(res.Failed, bit)
		}
	}
	res.Runtime = time.Since(start)
	if h != nil {
		// Cone sorting runs inside the workers; its span is CPU time summed
		// across them, not a wall-clock bracket.
		rec.RecordSpan("cone-sort", time.Duration(h.coneNs.Value()))
	}
	span.End()
	if fatalErr != nil {
		return res, fatalErr
	}
	if err := base.Err(); err != nil {
		return res, err
	}
	return res, nil
}

func (h *hooks) busyAdd(delta int64) {
	if h != nil {
		h.busy.Add(delta)
	}
}

// Output rewrites the single output driven by gate root into its canonical
// ANF over primary inputs (Algorithm 1 restricted to root's cone).
func Output(n *netlist.Netlist, root int) (BitResult, error) {
	return rewriteOutput(n, root, nil, nil, nil)
}

// rewriteOutput runs Algorithm 1 on root's cone. gov (may be nil) enforces
// the per-cone resource policy; order (may be nil) overrides the default
// descending-ID substitution schedule with an explicit linear extension.
func rewriteOutput(n *netlist.Netlist, root int, h *hooks, gov *governor, order []int) (BitResult, error) {
	start := time.Now()
	cone := n.Cone(root)
	br := BitResult{}
	br.Bit = -1
	br.ConeGates = len(cone)
	if h != nil {
		h.coneNs.Add(int64(time.Since(start)))
		h.live.Add(1) // F₀ = z
	}

	f := anf.Variable(anf.Var(root))
	br.PeakTerms = 1
	varOf := func(id int) anf.Var { return anf.Var(id) }
	if h != nil {
		// On every exit path the bit's resident terms leave the working
		// set — aborted cones must not leak into the live_terms gauge.
		defer func() { h.live.Add(-int64(f.Len())) }()
	}

	// Reverse topological order: cone is ascending and every fanin ID is
	// smaller than its reader, so walking backwards guarantees each gate
	// variable is eliminated before its fanins are visited. An explicit
	// order replaces the walk with its own schedule (already reversed).
	step := func(id int) error {
		g := n.Gate(id)
		if g.Type == netlist.Input {
			return nil
		}
		if id == testPanicOutput {
			panic(fmt.Sprintf("test-injected panic at gate %d", id))
		}
		v := anf.Var(id)
		k := f.VarOccurrences(v)
		if k == 0 {
			// The gate's contribution cancelled out earlier; nothing to do.
			return nil
		}
		if st, err := gov.poll(); err != nil {
			br.Status = st
			return err
		}
		e, err := n.GateANF(id, varOf)
		if err != nil {
			return fmt.Errorf("rewrite: gate %d (%s): %w", id, n.NameOf(id), err)
		}
		before := f.Len()
		f.Substitute(v, e)
		after := f.Len()
		br.Substitutions++
		// Exact mod-2 accounting: the k occurrences of v expand to k·|e|
		// terms, so before-k+k·|e| were produced and the shortfall vanished
		// in cancelling pairs.
		cancelled := before - k + k*e.Len() - after
		br.Cancelled += cancelled
		if after > br.PeakTerms {
			br.PeakTerms = after
		}
		if h != nil {
			h.subst.Inc()
			h.cancel.Add(int64(cancelled))
			h.live.Add(int64(after - before))
		}
		if gov.charge(after) {
			br.Status = StatusBudget
			return &BudgetError{Bit: -1, Name: n.NameOf(root),
				Terms: after, Budget: gov.budget, Substitutions: br.Substitutions}
		}
		return nil
	}
	if order == nil {
		for i := len(cone) - 1; i >= 0; i-- {
			if err := step(cone[i]); err != nil {
				br.Runtime = time.Since(start)
				return br, err
			}
		}
	} else {
		for _, id := range order {
			if err := step(id); err != nil {
				br.Runtime = time.Since(start)
				return br, err
			}
		}
	}

	// Sanity: only primary-input variables may remain (Theorem 1).
	for _, v := range f.SupportVars() {
		if n.Gate(int(v)).Type != netlist.Input {
			br.Status = StatusError
			return br, fmt.Errorf("rewrite: non-input variable v%d (%s) survived rewriting", v, n.NameOf(int(v)))
		}
	}
	// Compact drops the cone's intern-table churn (every monomial that ever
	// existed during rewriting plus the product memo) so the returned
	// expression holds only its final terms — the difference between MBs and
	// KBs per bit on the large-m runs whose results live until extraction.
	br.Expr = f.Compact()
	br.FinalTerms = br.Expr.Len()
	br.Runtime = time.Since(start)
	return br, nil
}
