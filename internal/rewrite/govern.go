// Resource governance for backward rewriting: per-cone term budgets and
// deadlines, cooperative cancellation, panic containment and a bounded retry
// ladder. The paper assumes well-formed GF(2^m) multipliers, whose rewriting
// is cancellation-heavy and cheap; adversarial or damaged netlists can make
// the intermediate polynomial blow up exponentially instead (the non-GF
// explosion the paper warns about in Section V). The governor turns that
// failure mode from an OOM kill into a typed, per-cone error with partial
// progress preserved.
package rewrite

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/galoisfield/gfre/internal/netlist"
)

// Sentinel errors; use errors.Is against them.
var (
	// ErrBudgetExceeded means a cone's intermediate polynomial outgrew the
	// configured term budget. The returned BitResult still carries the cost
	// counters accumulated up to the abort.
	ErrBudgetExceeded = errors.New("rewrite: per-cone term budget exceeded")
	// ErrConeTimeout means a single cone exceeded Options.ConeDeadline.
	ErrConeTimeout = errors.New("rewrite: per-cone deadline exceeded")
	// ErrConePanic means a worker panicked while rewriting a cone; the panic
	// was contained and converted into this error instead of taking down the
	// process.
	ErrConePanic = errors.New("rewrite: panic during cone rewriting")
	// ErrTooManyFailures means more cones failed than Options.MaxFailures
	// allows under KeepPartial.
	ErrTooManyFailures = errors.New("rewrite: failed cones exceed tolerance")
)

// BudgetError is the concrete error behind ErrBudgetExceeded; it records how
// far the cone got before the governor stopped it.
type BudgetError struct {
	Bit           int    // output position (-1 for single-output Output calls)
	Name          string // output port name
	Terms         int    // live terms when the budget tripped
	Budget        int    // the configured ceiling
	Substitutions int    // rewriting steps completed before the abort
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("rewrite: cone %q (bit %d): %d live terms exceed budget %d after %d substitutions",
		e.Name, e.Bit, e.Terms, e.Budget, e.Substitutions)
}

func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// Status classifies how a single output cone ended.
type Status string

const (
	// StatusOK is a completed cone; for backward compatibility the zero
	// value "" also reads as OK (see BitResult.Failed).
	StatusOK Status = "ok"
	// StatusBudget marks a cone aborted by the term budget.
	StatusBudget Status = "budget"
	// StatusTimeout marks a cone aborted by its per-cone deadline.
	StatusTimeout Status = "timeout"
	// StatusPanic marks a cone whose worker panicked (contained).
	StatusPanic Status = "panic"
	// StatusCancelled marks a cone cut short because a sibling failed
	// fatally or the caller's context ended; the cone itself is innocent.
	StatusCancelled Status = "cancelled"
	// StatusError marks any other per-cone failure (e.g. a structural
	// error such as a non-input variable surviving rewriting).
	StatusError Status = "error"
)

// Failed reports whether the cone ended without an expression. The zero
// Status counts as OK so that pre-governance constructors of BitResult keep
// working.
func (s Status) Failed() bool { return s != "" && s != StatusOK }

// governor enforces the per-cone resource policy inside the substitution
// loop. A nil governor disables every check.
type governor struct {
	ctx      context.Context
	deadline time.Time // zero = no per-cone deadline
	budget   int       // max live terms, 0 = unlimited
}

// poll checks cancellation and the cone deadline. It runs once per
// substitution actually performed — substitutions dominate the loop cost by
// orders of magnitude, so the two clock reads are noise (see
// BenchmarkExtract/governed).
func (g *governor) poll() (Status, error) {
	if g == nil {
		return StatusOK, nil
	}
	if err := g.ctx.Err(); err != nil {
		return StatusCancelled, err
	}
	if !g.deadline.IsZero() && time.Now().After(g.deadline) {
		return StatusTimeout, ErrConeTimeout
	}
	return StatusOK, nil
}

// charge checks the live-term budget after a substitution landed. The check
// is post-hoc rather than predictive on purpose: mod-2 cancellation (the
// paper's central phenomenon) makes the projected k·|e| expansion a wild
// overestimate on legitimate multipliers, so a pre-check would abort healthy
// cones. Transient overshoot is bounded by one substitution's expansion.
func (g *governor) charge(terms int) bool {
	return g != nil && g.budget > 0 && terms > g.budget
}

// testPanicOutput, when >= 0, makes rewriteOutput panic upon visiting that
// gate ID. The public API cannot build a netlist that panics mid-rewrite
// (constructors validate shapes), so the containment path needs a seam.
var testPanicOutput = -1

// rewriteSafe runs one rewriting attempt with panic containment: a panicking
// cone yields ErrConePanic instead of crashing the process.
func rewriteSafe(n *netlist.Netlist, root int, h *hooks, gov *governor, order []int) (br BitResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			br.Status = StatusPanic
			err = fmt.Errorf("%w: output %q: %v", ErrConePanic, n.NameOf(root), r)
		}
	}()
	return rewriteOutput(n, root, h, gov, order)
}

// rewriteGoverned is the per-cone retry ladder: one attempt in the default
// reverse-topological order, then — only for budget aborts — one retry with
// the alternative substitution schedule, then cone abandonment. Timeouts and
// cancellations are never retried: the clock that killed the first attempt
// is still running.
func rewriteGoverned(n *netlist.Netlist, root int, h *hooks, opts Options, ctx context.Context) (BitResult, error, bool) {
	gov := &governor{ctx: ctx, budget: opts.BudgetTerms}
	if opts.ConeDeadline > 0 {
		gov.deadline = time.Now().Add(opts.ConeDeadline)
	}
	br, err := rewriteSafe(n, root, h, gov, nil)
	if err == nil || opts.NoRetry || !errors.Is(err, ErrBudgetExceeded) {
		return br, err, false
	}
	// Budget abort: substitution order changes which products meet which,
	// and hence when cancellations fire; a level-driven schedule often keeps
	// the frontier smaller than the ID-driven one. The deadline keeps
	// running, so a retry cannot extend the cone's wall budget.
	h.countRetry()
	br2, err2 := rewriteSafe(n, root, h, gov, altOrder(n, n.Cone(root)))
	if err2 != nil {
		// Report the attempt that got further; both failed.
		if br2.Substitutions < br.Substitutions {
			return br, err, true
		}
		return br2, err2, true
	}
	return br2, nil, true
}

// altOrder returns an alternative substitution schedule for the cone:
// descending logic level, and within a level cheaper gate models first,
// then ascending ID. Every reader of a gate sits at a strictly higher
// level, so this is still a valid reverse-topological elimination order —
// just a different interleaving across branches than the default
// descending-ID walk.
//
// The schedule is produced by a counting sort over (level, gate-cost)
// buckets fed from the Kahn-levelized depths that Levels computes in one
// forward sweep. Keys are few and small — depth·4 buckets — so this is
// O(cone + depth) instead of the comparison sort's O(cone·log cone), which
// matters because altOrder runs on exactly the cones that already blew a
// budget (i.e. the biggest ones). A single ascending pass over cone fills
// the buckets, preserving the ascending-ID tiebreak for free.
func altOrder(n *netlist.Netlist, cone []int) []int {
	levels, depth := n.Levels()
	// Bucket key: (depth-level)*4 + cost-1, so lower keys mean deeper
	// gates and cheaper models — exactly the order the retry wants.
	const costs = 4
	counts := make([]int, (depth+1)*costs)
	for _, id := range cone {
		counts[(depth-levels[id])*costs+gateCost(n.Gate(id).Type)-1]++
	}
	starts := counts // prefix sums, reused in place
	sum := 0
	for k, c := range counts {
		starts[k] = sum
		sum += c
	}
	order := make([]int, len(cone))
	for _, id := range cone { // ascending IDs → stable within buckets
		k := (depth-levels[id])*costs + gateCost(n.Gate(id).Type) - 1
		order[starts[k]] = id
		starts[k]++
	}
	return order
}

// gateCost estimates the term count of a gate's algebraic model (Eq. 1) —
// how much a substitution can expand the polynomial per occurrence.
func gateCost(t netlist.GateType) int {
	switch t {
	case netlist.Buf, netlist.And, netlist.Const0, netlist.Const1:
		return 1
	case netlist.Not, netlist.Xor, netlist.Nand, netlist.Xnor:
		return 2
	case netlist.Or, netlist.Nor:
		return 3
	default:
		return 4
	}
}
