package rewrite

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/galoisfield/gfre/internal/netlist"
)

// explodingNetlist builds a circuit whose backward rewriting has no mod-2
// cancellation at all: z = Π_i (a_i ⊕ b_i) expands to 2^l distinct
// monomials — the non-GF blowup the paper warns about, in its purest form.
func explodingNetlist(t testing.TB, l int) *netlist.Netlist {
	t.Helper()
	n := netlist.New("explode")
	sums := make([]int, l)
	for i := 0; i < l; i++ {
		ai, err := n.AddInput(fmt.Sprintf("a%d", i))
		if err != nil {
			t.Fatal(err)
		}
		bi, err := n.AddInput(fmt.Sprintf("b%d", i))
		if err != nil {
			t.Fatal(err)
		}
		x, err := n.AddGate(netlist.Xor, ai, bi)
		if err != nil {
			t.Fatal(err)
		}
		sums[i] = x
	}
	for len(sums) > 1 {
		var next []int
		for i := 0; i+1 < len(sums); i += 2 {
			g, err := n.AddGate(netlist.And, sums[i], sums[i+1])
			if err != nil {
				t.Fatal(err)
			}
			next = append(next, g)
		}
		if len(sums)%2 == 1 {
			next = append(next, sums[len(sums)-1])
		}
		sums = next
	}
	if err := n.MarkOutput("z", sums[0]); err != nil {
		t.Fatal(err)
	}
	return n
}

// addSimpleOutput appends an extra cheap output (a_0·b_0 style AND over two
// fresh inputs) so multi-cone failure semantics can be observed.
func addSimpleOutput(t testing.TB, n *netlist.Netlist, tag string) {
	t.Helper()
	x, err := n.AddInput("x" + tag)
	if err != nil {
		t.Fatal(err)
	}
	y, err := n.AddInput("y" + tag)
	if err != nil {
		t.Fatal(err)
	}
	g, err := n.AddGate(netlist.And, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.MarkOutput("w"+tag, g); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetExceeded(t *testing.T) {
	n := explodingNetlist(t, 16) // 65536 terms if left unchecked
	const budget = 2048
	res, err := Outputs(n, Options{Threads: 1, BudgetTerms: budget})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err %v does not unwrap to *BudgetError", err)
	}
	if be.Budget != budget || be.Terms <= budget {
		t.Errorf("BudgetError = %+v, want Terms > Budget = %d", be, budget)
	}
	// Transient overshoot is bounded by one substitution's expansion: each
	// AND/XOR substitution at most doubles the polynomial.
	if be.Terms > 2*budget {
		t.Errorf("abort at %d terms, want <= 2x budget %d", be.Terms, budget)
	}
	if res == nil {
		t.Fatal("want partial result alongside the error")
	}
	br := res.Bits[0]
	if br.Status != StatusBudget {
		t.Errorf("bit status = %q, want %q", br.Status, StatusBudget)
	}
	if br.Substitutions == 0 || br.PeakTerms <= budget {
		t.Errorf("partial progress not recorded: %+v", br.BitStats)
	}
	if res.Retries != 1 {
		t.Errorf("Retries = %d, want 1 (budget abort triggers the alternative-order retry)", res.Retries)
	}
}

func TestBudgetRetryDisabled(t *testing.T) {
	n := explodingNetlist(t, 14)
	res, err := Outputs(n, Options{Threads: 1, BudgetTerms: 512, NoRetry: true})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if res.Retries != 0 {
		t.Errorf("Retries = %d, want 0 with NoRetry", res.Retries)
	}
}

func TestConeTimeout(t *testing.T) {
	n := explodingNetlist(t, 18)
	res, err := Outputs(n, Options{Threads: 1, ConeDeadline: time.Microsecond})
	if !errors.Is(err, ErrConeTimeout) {
		t.Fatalf("err = %v, want ErrConeTimeout", err)
	}
	if res.Bits[0].Status != StatusTimeout {
		t.Errorf("bit status = %q, want %q", res.Bits[0].Status, StatusTimeout)
	}
}

func TestContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := explodingNetlist(t, 8)
	addSimpleOutput(t, n, "0")
	res, err := Outputs(n, Options{Threads: 1, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, br := range res.Bits {
		if br.Status != StatusCancelled {
			t.Errorf("bit %d status = %q, want %q", i, br.Status, StatusCancelled)
		}
	}
}

func TestSiblingCancellation(t *testing.T) {
	// Single worker, three outputs: the cheap one completes, the exploding
	// one aborts fatally, the queued one must be cancelled, not rewritten.
	n := explodingNetlist(t, 14)
	addSimpleOutput(t, n, "0")
	addSimpleOutput(t, n, "1")
	res, err := Outputs(n, Options{Threads: 1, BudgetTerms: 256})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if got := res.Bits[0].Status; got != StatusBudget {
		t.Errorf("exploding bit status = %q, want %q", got, StatusBudget)
	}
	if got := res.Bits[1].Status; got != StatusCancelled {
		t.Errorf("queued sibling status = %q, want %q (prompt cancellation)", got, StatusCancelled)
	}
	if got := res.Bits[2].Status; got != StatusCancelled {
		t.Errorf("queued sibling status = %q, want %q", got, StatusCancelled)
	}
}

func TestKeepPartial(t *testing.T) {
	n := explodingNetlist(t, 14)
	addSimpleOutput(t, n, "0")
	res, err := Outputs(n, Options{
		Threads: 1, BudgetTerms: 256, KeepPartial: true, MaxFailures: 1,
	})
	if err != nil {
		t.Fatalf("KeepPartial within tolerance must succeed, got %v", err)
	}
	if len(res.Failed) != 1 || res.Failed[0] != 0 {
		t.Fatalf("Failed = %v, want [0]", res.Failed)
	}
	if res.Bits[0].Status != StatusBudget {
		t.Errorf("failed bit status = %q, want %q", res.Bits[0].Status, StatusBudget)
	}
	if res.Bits[1].Status != StatusOK || res.Bits[1].Expr.Len() != 1 {
		t.Errorf("healthy bit did not complete: %+v", res.Bits[1])
	}
}

func TestTooManyFailures(t *testing.T) {
	n := explodingNetlist(t, 14)
	// Second exploding cone: reuse the same root under another output name.
	if err := n.MarkOutput("z2", n.Outputs()[0]); err != nil {
		t.Fatal(err)
	}
	_, err := Outputs(n, Options{
		Threads: 1, BudgetTerms: 256, KeepPartial: true, MaxFailures: 1,
	})
	if !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("err = %v, want ErrTooManyFailures", err)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("ErrTooManyFailures should wrap the last cone error, got %v", err)
	}
}

func TestPanicContainment(t *testing.T) {
	n := explodingNetlist(t, 4)
	addSimpleOutput(t, n, "0")
	target := n.Outputs()[0] // panic when the worker visits the root gate
	testPanicOutput = target
	defer func() { testPanicOutput = -1 }()

	res, err := Outputs(n, Options{Threads: 1, KeepPartial: true, MaxFailures: 1})
	if err != nil {
		t.Fatalf("contained panic within tolerance must succeed, got %v", err)
	}
	if res.Bits[0].Status != StatusPanic {
		t.Errorf("bit status = %q, want %q", res.Bits[0].Status, StatusPanic)
	}
	if res.Bits[1].Status != StatusOK {
		t.Errorf("sibling bit status = %q, want ok", res.Bits[1].Status)
	}

	// Without KeepPartial the contained panic is a normal fatal error.
	_, err = Outputs(n, Options{Threads: 1})
	if !errors.Is(err, ErrConePanic) {
		t.Fatalf("err = %v, want ErrConePanic", err)
	}
}

func TestAltOrderEquivalent(t *testing.T) {
	// The alternative substitution schedule must compute the same canonical
	// ANF as the default order — it is a different linear extension of the
	// same dependency order, nothing more.
	n := explodingNetlist(t, 6)
	root := n.Outputs()[0]
	def, err := rewriteOutput(n, root, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	alt, err := rewriteOutput(n, root, nil, nil, altOrder(n, n.Cone(root)))
	if err != nil {
		t.Fatal(err)
	}
	if !def.Expr.Equal(alt.Expr) {
		t.Fatal("alternative substitution order changed the canonical ANF")
	}
	if def.Expr.Len() != 64 { // 2^6 monomials, no cancellation
		t.Fatalf("expected 64 terms, got %d", def.Expr.Len())
	}
}

func TestGovernedMatchesUngovernedOnCleanRun(t *testing.T) {
	n := explodingNetlist(t, 8)
	plain, err := Outputs(n, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	governed, err := Outputs(n, Options{
		Threads: 1, Ctx: context.Background(),
		ConeDeadline: time.Minute, BudgetTerms: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Bits[0].Expr.Equal(governed.Bits[0].Expr) {
		t.Fatal("governance changed the result of a clean run")
	}
	if governed.Bits[0].Status != StatusOK {
		t.Fatalf("clean bit status = %q", governed.Bits[0].Status)
	}
}
