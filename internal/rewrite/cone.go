// Single-cone entry point for sharded extraction: the same governed
// rewriting (budget, deadline, panic containment, retry ladder) that
// Outputs applies per worker, exposed for schedulers that hand out cones
// one lease at a time instead of owning the whole worker pool.
package rewrite

import (
	"context"
	"errors"
	"fmt"

	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/obs"
)

func statsOf(br BitResult) obs.BitStats {
	return obs.BitStats{
		Bit: br.Bit, Name: br.Name, ConeGates: br.ConeGates,
		Substitutions: br.Substitutions, PeakTerms: br.PeakTerms,
		FinalTerms: br.FinalTerms, Cancelled: br.Cancelled,
		Duration: br.Runtime,
	}
}

// RewriteCone rewrites the single output bit `bit` of n under the full
// resource-governance policy of opts (Ctx, ConeDeadline, BudgetTerms,
// NoRetry). The returned BitResult always carries the bit index, output
// name and a terminal Status — StatusOK with a valid Expr on success, or
// the failure class with the cost counters accumulated up to the abort.
//
// Unlike Outputs, no worker pool, straggler ordering or sibling
// cancellation is involved: this is exactly one cone, for callers (the
// shard scheduler, remote gfred peers) that do their own scheduling.
func RewriteCone(n *netlist.Netlist, bit int, opts Options) (BitResult, error) {
	outs := n.Outputs()
	if bit < 0 || bit >= len(outs) {
		return BitResult{}, fmt.Errorf("rewrite: output bit %d out of range (netlist has %d outputs)", bit, len(outs))
	}
	name := n.OutputNames()[bit]
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	h := newHooks(opts.Recorder)
	rec := opts.Recorder
	rec.BitStart(bit, name)
	h.busyAdd(1)
	br, err, _ := rewriteGoverned(n, outs[bit], h, opts, ctx)
	h.busyAdd(-1)
	br.Bit = bit
	br.Name = name
	if err == nil {
		br.Status = StatusOK
		rec.BitFinish(statsOf(br))
		return br, nil
	}
	if be := (*BudgetError)(nil); errors.As(err, &be) {
		be.Bit, be.Name = bit, name
	}
	if br.Status == "" || br.Status == StatusOK {
		br.Status = StatusError
	}
	br.Err = err.Error()
	h.countAbort(br)
	return br, err
}
