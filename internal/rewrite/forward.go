package rewrite

import (
	"fmt"
	"time"

	"github.com/galoisfield/gfre/internal/anf"
	"github.com/galoisfield/gfre/internal/netlist"
)

// Forward computes the canonical ANF of every output by forward
// abstraction: every gate's expression over primary inputs is built
// bottom-up by composing its fanins' expressions through the gate's
// algebraic model.
//
// This is the baseline the paper's technique is designed to beat. Forward
// abstraction materializes an input-level expression for EVERY internal
// gate simultaneously, so its working set is the sum of all intermediate
// expression sizes — the "memory explosion" that makes naive symbolic
// approaches fail on large arithmetic circuits. Backward rewriting
// (Outputs) instead keeps one polynomial per output bit and only within
// that bit's cone, which is what Theorem 2 exploits. The two must agree
// bit-for-bit (both are canonical); BenchmarkAblationForwardVsBackward
// measures the cost gap.
func Forward(n *netlist.Netlist) (*Result, error) {
	start := time.Now()
	outs := n.Outputs()
	if len(outs) == 0 {
		return nil, fmt.Errorf("rewrite: netlist %q has no outputs", n.Name)
	}

	exprs := make([]anf.Poly, n.NumGates())
	have := make([]bool, n.NumGates())
	resident := 0 // total terms held across ALL gate expressions
	varOf := func(id int) anf.Var { return anf.Var(id) }
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		if g.Type == netlist.Input {
			exprs[id] = anf.Variable(anf.Var(id))
			have[id] = true
			continue
		}
		// Gate model over fanin variables, then substitute each fanin
		// variable by its input-level expression.
		e, err := n.GateANF(id, varOf)
		if err != nil {
			return nil, err
		}
		for _, f := range g.Fanin {
			if !have[f] {
				return nil, fmt.Errorf("rewrite: forward pass reached gate %d before fanin %d", id, f)
			}
			if e.ContainsVar(anf.Var(f)) && n.Gate(f).Type != netlist.Input {
				e.Substitute(anf.Var(f), exprs[f])
			}
		}
		exprs[id] = e
		have[id] = true
		resident += e.Len()
	}

	res := &Result{Bits: make([]BitResult, len(outs)), Threads: 1}
	names := n.OutputNames()
	for i, root := range outs {
		br := BitResult{Expr: exprs[root]}
		br.Bit = i
		br.Name = names[i]
		br.FinalTerms = exprs[root].Len()
		// Forward abstraction holds every gate's expression at once; the
		// whole-pass resident term count is the honest "peak" for each bit.
		br.PeakTerms = resident
		br.ConeGates = len(n.Cone(root))
		res.Bits[i] = br
	}
	res.Runtime = time.Since(start)
	return res, nil
}
