package rewrite

import (
	"strings"
	"testing"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/obs"
	"github.com/galoisfield/gfre/internal/polytab"
)

// buildCancelPair builds z = g·a + g·b with g = a+b: substituting g (two
// occurrences, two-term expansion) produces four terms of which the two a·b
// copies vanish mod 2 — the smallest netlist with a known-exact cancellation
// count, and one where the pre-fix estimate (which assumed a single
// occurrence) reported an odd count, impossible for pairwise elimination.
func buildCancelPair(t testing.TB) *netlist.Netlist {
	t.Helper()
	n := netlist.New("cancelpair")
	a, _ := n.AddInput("a")
	b, _ := n.AddInput("b")
	g, _ := n.AddGate(netlist.Xor, a, b)
	h1, _ := n.AddGate(netlist.And, g, a)
	h2, _ := n.AddGate(netlist.And, g, b)
	z, _ := n.AddGate(netlist.Xor, h1, h2)
	n.MarkOutput("z", z)
	return n
}

func TestExactCancellationCount(t *testing.T) {
	n := buildCancelPair(t)
	br, err := Output(n, n.Outputs()[0])
	if err != nil {
		t.Fatal(err)
	}
	// (a+b)a + (a+b)b = a + ab + ab + b → exactly 2 cancelled, 2 final.
	if br.Cancelled != 2 {
		t.Errorf("Cancelled = %d, want 2", br.Cancelled)
	}
	if br.FinalTerms != 2 {
		t.Errorf("FinalTerms = %d, want 2", br.FinalTerms)
	}
	if br.Cancelled%2 != 0 {
		t.Errorf("Cancelled = %d is odd; mod-2 eliminations come in pairs", br.Cancelled)
	}

	var sb strings.Builder
	traced, err := TraceOutput(n, n.Outputs()[0], &sb)
	if err != nil {
		t.Fatal(err)
	}
	if traced.Cancelled != br.Cancelled {
		t.Errorf("trace counted %d cancellations, rewrite counted %d", traced.Cancelled, br.Cancelled)
	}
	if !strings.Contains(sb.String(), "[2 terms cancelled mod 2]") {
		t.Errorf("trace missing the exact cancellation annotation:\n%s", sb.String())
	}
}

func TestTraceCancelledAgreesOnMultipliers(t *testing.T) {
	// The same exact formula runs in the parallel engine and the tracer;
	// their per-bit totals must agree on a real multiplier.
	p, err := polytab.Default(4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(4, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Outputs(n, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, br := range res.Bits {
		traced, err := TraceOutput(n, n.Outputs()[br.Bit], &strings.Builder{})
		if err != nil {
			t.Fatal(err)
		}
		if traced.Cancelled != br.Cancelled {
			t.Errorf("bit %d: trace %d vs rewrite %d cancellations", br.Bit, traced.Cancelled, br.Cancelled)
		}
		if br.Cancelled%2 != 0 {
			t.Errorf("bit %d: odd cancellation count %d", br.Bit, br.Cancelled)
		}
	}
}

func TestOutputsWithRecorder(t *testing.T) {
	p, err := polytab.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(8, p)
	if err != nil {
		t.Fatal(err)
	}
	mem := obs.NewMemorySink()
	rec := obs.NewRecorder(mem)
	res, err := Outputs(n, Options{Threads: 4, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}

	m := len(res.Bits)
	if got := mem.ByType(obs.EvBitStart); len(got) != m {
		t.Errorf("bit_start events: %d, want %d", len(got), m)
	}
	fins := mem.ByType(obs.EvBitFinish)
	if len(fins) != m {
		t.Fatalf("bit_finish events: %d, want %d", len(fins), m)
	}
	// Every finish payload must mirror the returned BitStats.
	byBit := map[int64]obs.Event{}
	for _, e := range fins {
		byBit[e.V["bit"]] = e
	}
	for _, br := range res.Bits {
		e, ok := byBit[int64(br.Bit)]
		if !ok {
			t.Fatalf("no bit_finish for bit %d", br.Bit)
		}
		if e.Name != br.Name || e.V["subst"] != int64(br.Substitutions) ||
			e.V["peak"] != int64(br.PeakTerms) || e.V["cancelled"] != int64(br.Cancelled) ||
			e.V["final"] != int64(br.FinalTerms) || e.V["cone"] != int64(br.ConeGates) {
			t.Errorf("bit %d: event payload %v does not match stats %+v", br.Bit, e.V, br.BitStats)
		}
	}

	// Span bookkeeping: one rewrite span (wall), one cone-sort span (CPU),
	// and one child span per output cone parented under rewrite.
	var rewriteStarts, coneStarts []obs.Event
	for _, e := range mem.ByType(obs.EvSpanStart) {
		if e.Name == "rewrite" {
			rewriteStarts = append(rewriteStarts, e)
		} else {
			coneStarts = append(coneStarts, e)
		}
	}
	if len(rewriteStarts) != 1 || rewriteStarts[0].V["bits"] != int64(m) ||
		rewriteStarts[0].V["threads"] != 4 {
		t.Errorf("rewrite span_start %+v", rewriteStarts)
	}
	if len(coneStarts) != m {
		t.Errorf("cone span_start events: %d, want %d", len(coneStarts), m)
	}
	for _, e := range coneStarts {
		if e.Parent != rewriteStarts[0].Span {
			t.Errorf("cone span %q parent %d, want rewrite span %d", e.Name, e.Parent, rewriteStarts[0].Span)
		}
	}
	spanNames := map[string]bool{}
	coneSpans := 0
	for _, sp := range rec.Spans() {
		spanNames[sp.Name] = true
		if sp.Parent != 0 && sp.Parent == rewriteStarts[0].Span && sp.Name != "cone-sort" {
			coneSpans++
			if sp.Status != string(StatusOK) {
				t.Errorf("cone span %q status %q", sp.Name, sp.Status)
			}
			if sp.Attrs["peak_terms"] <= 0 || sp.Attrs["subst"] <= 0 {
				t.Errorf("cone span %q attrs %v", sp.Name, sp.Attrs)
			}
		}
	}
	if coneSpans != m {
		t.Errorf("cone child spans recorded: %d, want %d", coneSpans, m)
	}
	if !spanNames["rewrite"] || !spanNames["cone-sort"] {
		t.Errorf("spans %v, want rewrite and cone-sort", spanNames)
	}

	// Metric consistency with the returned result.
	s := rec.Snapshot()
	if got := s.Counters["substitutions"]; got != int64(res.TotalSubstitutions()) {
		t.Errorf("substitutions metric %d, result says %d", got, res.TotalSubstitutions())
	}
	if got := s.Counters["cancellations"]; got != int64(res.TotalCancelled()) {
		t.Errorf("cancellations metric %d, result says %d", got, res.TotalCancelled())
	}
	if got := s.Counters["bits_done"]; got != int64(m) {
		t.Errorf("bits_done %d, want %d", got, m)
	}
	// All bits retired: no live terms, no busy workers; watermarks were hit.
	if s.Gauges["live_terms"] != 0 || s.Gauges["workers_busy"] != 0 {
		t.Errorf("gauges not drained: %v", s.Gauges)
	}
	if s.GaugeMaxes["workers_busy"] < 1 || s.GaugeMaxes["workers_busy"] > 4 {
		t.Errorf("workers_busy watermark %d outside [1,4]", s.GaugeMaxes["workers_busy"])
	}
	// The resident-terms watermark is at least one bit's peak and at most the
	// sum of all peaks (all bits in flight at once).
	var sum int64
	for _, br := range res.Bits {
		sum += int64(br.PeakTerms)
	}
	if w := s.GaugeMaxes["live_terms"]; w < int64(res.PeakTerms()) || w > sum {
		t.Errorf("live_terms watermark %d outside [%d,%d]", w, res.PeakTerms(), sum)
	}
	if got := s.Histograms["peak_terms"].Count; got != int64(m) {
		t.Errorf("peak_terms histogram count %d, want %d", got, m)
	}

	// The recorder must not change the math.
	plain, err := Outputs(n, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	for bit := range plain.Bits {
		if !plain.Bits[bit].Expr.Equal(res.Bits[bit].Expr) {
			t.Errorf("bit %d: expression differs with recorder attached", bit)
		}
	}
}
