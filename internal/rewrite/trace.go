package rewrite

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/galoisfield/gfre/internal/anf"
	"github.com/galoisfield/gfre/internal/netlist"
)

// FormatPoly renders an ANF polynomial with netlist signal names instead of
// raw variable IDs — the notation of the paper's Figure 3 (e.g.
// "a0·b1+a1·b0+a1·b1").
func FormatPoly(p anf.Poly, n *netlist.Netlist) string {
	if p.IsZero() {
		return "0"
	}
	monos := p.Monos()
	parts := make([]string, 0, len(monos))
	for _, m := range monos {
		if m.IsOne() {
			parts = append(parts, "1")
			continue
		}
		vars := m.Vars()
		names := make([]string, len(vars))
		for i, v := range vars {
			names[i] = n.NameOf(int(v))
		}
		sort.Strings(names)
		parts = append(parts, strings.Join(names, "·"))
	}
	sort.Strings(parts)
	return strings.Join(parts, "+")
}

// TraceOutput rewrites the single output driven by gate root exactly like
// Output, but logs every iteration of Algorithm 1 to w in the style of the
// paper's Figure 3: the gate substituted, the polynomial after mod-2
// simplification, and the number of monomials cancelled in the step.
// Intended for small designs (the full expression is printed per step).
func TraceOutput(n *netlist.Netlist, root int, w io.Writer) (BitResult, error) {
	cone := n.Cone(root)
	br := BitResult{}
	br.ConeGates = len(cone)

	f := anf.Variable(anf.Var(root))
	br.PeakTerms = 1
	varOf := func(id int) anf.Var { return anf.Var(id) }
	fmt.Fprintf(w, "F0 = %s\n", n.NameOf(root))

	for i := len(cone) - 1; i >= 0; i-- {
		id := cone[i]
		g := n.Gate(id)
		if g.Type == netlist.Input {
			continue
		}
		v := anf.Var(id)
		k := f.VarOccurrences(v)
		if k == 0 {
			continue
		}
		e, err := n.GateANF(id, varOf)
		if err != nil {
			return br, err
		}
		before := f.Len()
		f.Substitute(v, e)
		br.Substitutions++
		after := f.Len()
		// Exact count of the terms the expansion produced: each of the k
		// occurrences of v expands to |e| terms, so the pre-cancellation
		// size is before-k+k·|e| and the shortfall is the number of mod-2
		// cancellations ("2x"-style eliminations) — always an even number,
		// since collisions vanish in pairs.
		produced := before - k + k*e.Len()
		br.Cancelled += produced - after
		elim := ""
		if after < produced {
			elim = fmt.Sprintf("   [%d terms cancelled mod 2]", produced-after)
		}
		fmt.Fprintf(w, "%-6s %s = %-24s F%d = %s%s\n",
			n.NameOf(id)+":", g.Type, FormatPoly(e, n), br.Substitutions, FormatPoly(f, n), elim)
		if after > br.PeakTerms {
			br.PeakTerms = after
		}
	}
	br.Expr = f
	br.FinalTerms = f.Len()
	return br, nil
}
