package rewrite

import (
	"sync"
	"testing"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/polytab"
)

func TestPriorReusesCompletedCones(t *testing.T) {
	p, err := polytab.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(8, p)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Outputs(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Reused != 0 {
		t.Fatalf("cold run reused %d cones", cold.Reused)
	}

	// Resume with half the cones checkpointed: those come back verbatim,
	// the rest are recomputed, the combined result matches the cold run.
	prior := append([]BitResult(nil), cold.Bits[:4]...)
	warm, err := Outputs(n, Options{Prior: prior})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Reused != 4 {
		t.Fatalf("reused %d cones, want 4", warm.Reused)
	}
	for i := range cold.Bits {
		if !warm.Bits[i].Expr.Equal(cold.Bits[i].Expr) {
			t.Fatalf("bit %d differs between cold and resumed run", i)
		}
	}
	// Adopted verbatim means the cost counters are the prior's, too.
	for i := 0; i < 4; i++ {
		if warm.Bits[i].Substitutions != cold.Bits[i].Substitutions {
			t.Fatalf("bit %d was re-rewritten despite a valid prior", i)
		}
	}
}

func TestPriorIgnoresStaleEntries(t *testing.T) {
	p, err := polytab.Default(4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(4, p)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Outputs(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stale := []BitResult{
		func() BitResult { b := cold.Bits[0]; b.Status = StatusBudget; return b }(), // failed cone
		func() BitResult { b := cold.Bits[1]; b.Bit = 17; return b }(),              // out of range
		func() BitResult { b := cold.Bits[2]; b.Name = "zz"; return b }(),           // renamed output
	}
	warm, err := Outputs(n, Options{Prior: stale})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Reused != 0 {
		t.Fatalf("stale priors were adopted: reused=%d", warm.Reused)
	}
	for i := range cold.Bits {
		if !warm.Bits[i].Expr.Equal(cold.Bits[i].Expr) {
			t.Fatalf("bit %d wrong after ignoring stale priors", i)
		}
	}
}

func TestOnBitDoneSeesFreshConesOnly(t *testing.T) {
	p, err := polytab.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(8, p)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Outputs(n, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	seen := map[int]int{}
	_, err = Outputs(n, Options{
		Prior: cold.Bits[:3],
		OnBitDone: func(br BitResult) {
			mu.Lock()
			seen[br.Bit]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < 3; bit++ {
		if seen[bit] != 0 {
			t.Fatalf("OnBitDone fired for reused bit %d", bit)
		}
	}
	for bit := 3; bit < 8; bit++ {
		if seen[bit] != 1 {
			t.Fatalf("OnBitDone fired %d times for fresh bit %d, want 1", seen[bit], bit)
		}
	}
}
