package rewrite

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/galoisfield/gfre/internal/anf"
	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/opt"
	"github.com/galoisfield/gfre/internal/polytab"
	"github.com/galoisfield/gfre/internal/randnet"
)

// buildFigure2 reproduces the post-synthesized GF(2^2) multiplier of the
// paper's Figure 2 (P(x) = x²+x+1) with NAND/XNOR cells.
func buildFigure2(t testing.TB) (n *netlist.Netlist, a [2]int, b [2]int) {
	t.Helper()
	n = netlist.New("fig2")
	a0, _ := n.AddInput("a0")
	a1, _ := n.AddInput("a1")
	b0, _ := n.AddInput("b0")
	b1, _ := n.AddInput("b1")
	s2, _ := n.AddGate(netlist.And, a1, b1)
	g5, _ := n.AddGate(netlist.Nand, a0, b0)
	z0, _ := n.AddGate(netlist.Xnor, g5, s2)
	p0, _ := n.AddGate(netlist.Nand, a0, b1)
	p1, _ := n.AddGate(netlist.Nand, a1, b0)
	g1, _ := n.AddGate(netlist.Xor, p0, p1)
	z1, _ := n.AddGate(netlist.Xor, g1, s2)
	n.SetSignalName(z0, "z0")
	n.SetSignalName(z1, "z1")
	n.MarkOutput("z0", z0)
	n.MarkOutput("z1", z1)
	return n, [2]int{a0, a1}, [2]int{b0, b1}
}

func TestPaperExample2Expressions(t *testing.T) {
	// Figure 3's result: z0 = a0b0 + a1b1, z1 = a1b1 + a1b0 + a0b1.
	n, a, b := buildFigure2(t)
	res, err := Outputs(n, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	v := func(id int) anf.Var { return anf.Var(id) }
	wantZ0 := anf.FromMonos(
		anf.NewMono(v(a[0]), v(b[0])),
		anf.NewMono(v(a[1]), v(b[1])),
	)
	wantZ1 := anf.FromMonos(
		anf.NewMono(v(a[1]), v(b[1])),
		anf.NewMono(v(a[1]), v(b[0])),
		anf.NewMono(v(a[0]), v(b[1])),
	)
	if !res.Bits[0].Expr.Equal(wantZ0) {
		t.Errorf("z0 = %v, want %v", res.Bits[0].Expr, wantZ0)
	}
	if !res.Bits[1].Expr.Equal(wantZ1) {
		t.Errorf("z1 = %v, want %v", res.Bits[1].Expr, wantZ1)
	}
	// The NAND/XNOR constants must have cancelled (the "2x" eliminations of
	// Figure 3): no constant-1 monomial in either output.
	for i, br := range res.Bits {
		if br.Expr.Contains(anf.MonoOne) {
			t.Errorf("z%d still contains the constant term", i)
		}
	}
}

// assertExprMatchesSimulation checks, on random 64-lane vectors, that each
// extracted ANF evaluates exactly like the netlist's simulated output.
func assertExprMatchesSimulation(t *testing.T, n *netlist.Netlist, res *Result, trials int) {
	t.Helper()
	r := rand.New(rand.NewSource(4242))
	ins := n.Inputs()
	for trial := 0; trial < trials; trial++ {
		words := make([]uint64, len(ins))
		inputVal := map[anf.Var]uint64{}
		for i := range words {
			words[i] = r.Uint64()
			inputVal[anf.Var(ins[i])] = words[i]
		}
		vals, err := n.Simulate(words)
		if err != nil {
			t.Fatal(err)
		}
		outs := n.OutputWords(vals)
		for bit, br := range res.Bits {
			for lane := 0; lane < 64; lane++ {
				want := outs[bit]>>uint(lane)&1 == 1
				got := br.Expr.Eval(func(v anf.Var) bool {
					return inputVal[v]>>uint(lane)&1 == 1
				})
				if got != want {
					t.Fatalf("trial %d bit %d lane %d: expr=%v sim=%v", trial, bit, lane, got, want)
				}
			}
		}
	}
}

func TestRewriteMatchesSimulationMastrovito(t *testing.T) {
	for _, m := range []int{2, 4, 8, 16} {
		p, err := polytab.Default(m)
		if err != nil {
			t.Fatal(err)
		}
		n, err := gen.Mastrovito(m, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Outputs(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		assertExprMatchesSimulation(t, n, res, 3)
	}
}

func TestRewriteMatchesSimulationMontgomery(t *testing.T) {
	for _, m := range []int{2, 4, 8} {
		p, err := polytab.Default(m)
		if err != nil {
			t.Fatal(err)
		}
		n, err := gen.Montgomery(m, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Outputs(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		assertExprMatchesSimulation(t, n, res, 3)
	}
}

func TestRewriteMatchesSimulationSynthesized(t *testing.T) {
	p, err := polytab.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := gen.MastrovitoMatrix(8, p)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := opt.Synthesize(raw)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := opt.TechMap(raw, opt.MapNandHeavy)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []*netlist.Netlist{syn, mapped} {
		res, err := Outputs(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		assertExprMatchesSimulation(t, n, res, 3)
	}
}

func TestRewriteCanonicalAcrossArchitectures(t *testing.T) {
	// Mastrovito, matrix Mastrovito, Montgomery and the synthesized variant
	// of the same field must all rewrite to the identical canonical ANF —
	// that is what makes extraction architecture-independent.
	m := 8
	p, err := polytab.Default(m)
	if err != nil {
		t.Fatal(err)
	}
	mast, err := gen.Mastrovito(m, p)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Outputs(mast, Options{})
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]*netlist.Netlist{}
	if v, err := gen.MastrovitoMatrix(m, p); err == nil {
		variants["matrix"] = v
	} else {
		t.Fatal(err)
	}
	if v, err := gen.Montgomery(m, p); err == nil {
		variants["montgomery"] = v
	} else {
		t.Fatal(err)
	}
	if v, err := opt.Synthesize(mast); err == nil {
		variants["synthesized"] = v
	} else {
		t.Fatal(err)
	}
	for name, v := range variants {
		res, err := Outputs(v, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for bit := range ref.Bits {
			if !res.Bits[bit].Expr.Equal(ref.Bits[bit].Expr) {
				t.Errorf("%s: bit %d ANF differs from Mastrovito reference", name, bit)
			}
		}
	}
}

func TestRewriteSpecificationMatch(t *testing.T) {
	// The extracted expression of bit c must equal the specification
	// Σ_k [coeff c of x^k mod P] · s_k with s_k = Σ_{i+j=k} a_i b_j.
	m := 8
	p, err := polytab.Default(m)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Montgomery(m, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Outputs(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ins := n.Inputs()
	aVar := func(i int) anf.Var { return anf.Var(ins[i]) }
	bVar := func(j int) anf.Var { return anf.Var(ins[m+j]) }
	for c := 0; c < m; c++ {
		spec := anf.NewPoly()
		for k := 0; k <= 2*m-2; k++ {
			if gf2poly.Monomial(k).Mod(p).Coeff(c) != 1 {
				continue
			}
			for i := 0; i < m; i++ {
				j := k - i
				if j < 0 || j >= m {
					continue
				}
				spec.Toggle(anf.NewMono(aVar(i), bVar(j)))
			}
		}
		if !res.Bits[c].Expr.Equal(spec) {
			t.Errorf("bit %d: extracted ANF differs from specification", c)
		}
	}
}

func TestThreadCountsAgree(t *testing.T) {
	p, err := polytab.Default(16)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(16, p)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Outputs(n, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Outputs(n, Options{Threads: 16})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Threads != 1 || par.Threads != 16 {
		t.Errorf("thread bookkeeping wrong: %d, %d", seq.Threads, par.Threads)
	}
	for bit := range seq.Bits {
		if !seq.Bits[bit].Expr.Equal(par.Bits[bit].Expr) {
			t.Errorf("bit %d differs between 1 and 16 threads", bit)
		}
	}
}

func TestStatsArePopulated(t *testing.T) {
	n, _, _ := buildFigure2(t)
	res, err := Outputs(n, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, br := range res.Bits {
		if br.ConeGates == 0 || br.Substitutions == 0 || br.PeakTerms == 0 || br.FinalTerms == 0 {
			t.Errorf("bit %d stats incomplete: %+v", br.Bit, br.BitStats)
		}
		if br.Name == "" {
			t.Errorf("bit %d has no name", br.Bit)
		}
	}
	if res.TotalSubstitutions() < 7-2 { // at least the shared-cone gates
		t.Errorf("TotalSubstitutions = %d", res.TotalSubstitutions())
	}
	if res.PeakTerms() == 0 || res.EstimatedMemBytes() == 0 {
		t.Error("aggregate stats empty")
	}
	if res.Runtime <= 0 {
		t.Error("runtime not measured")
	}
}

func TestOutputOnInputGate(t *testing.T) {
	// An output wired straight to a primary input rewrites to that variable.
	n := netlist.New("wire")
	a, _ := n.AddInput("a")
	n.MarkOutput("z", a)
	res, err := Outputs(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := anf.Variable(anf.Var(a)); !res.Bits[0].Expr.Equal(want) {
		t.Errorf("z = %v", res.Bits[0].Expr)
	}
}

func TestNoOutputsError(t *testing.T) {
	n := netlist.New("empty")
	n.AddInput("a")
	if _, err := Outputs(n, Options{}); err == nil {
		t.Error("netlist without outputs should fail")
	}
}

func TestRewriteConstantOutput(t *testing.T) {
	n := netlist.New("const")
	a, _ := n.AddInput("a")
	na, _ := n.AddGate(netlist.Not, a)
	x, _ := n.AddGate(netlist.Xor, a, na) // constant 1
	n.MarkOutput("z", x)
	res, err := Outputs(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Bits[0].Expr.IsOne() {
		t.Errorf("a ^ !a = %v, want 1", res.Bits[0].Expr)
	}
}

func BenchmarkRewriteMastrovito16(b *testing.B) {
	p, _ := polytab.Default(16)
	n, err := gen.Mastrovito(16, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Outputs(n, Options{Threads: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPropRewriteMatchesSimulationOnRandomNetlists(t *testing.T) {
	// Algorithm 1's soundness (Theorem 1) on arbitrary DAGs: the canonical
	// ANF of every output must agree with bit-parallel simulation,
	// including LUTs, complex cells, constants and dead logic.
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 40; trial++ {
		n, err := randnet.New(r, randnet.Config{
			Inputs:    1 + r.Intn(8),
			Gates:     1 + r.Intn(90),
			Outputs:   1 + r.Intn(4),
			Luts:      trial%2 == 0,
			Constants: trial%3 == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Outputs(n, Options{Threads: 1 + trial%4})
		if err != nil {
			t.Fatal(err)
		}
		assertExprMatchesSimulation(t, n, res, 2)
	}
}

func TestForwardAgreesWithBackward(t *testing.T) {
	// Both directions compute canonical ANF, so they must agree exactly —
	// on multipliers and on random DAGs.
	p, _ := polytab.Default(8)
	designs := []*netlist.Netlist{}
	if n, err := gen.Mastrovito(8, p); err == nil {
		designs = append(designs, n)
	} else {
		t.Fatal(err)
	}
	if n, err := gen.Montgomery(8, p); err == nil {
		designs = append(designs, n)
	} else {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(55))
	for i := 0; i < 10; i++ {
		n, err := randnet.New(r, randnet.Config{
			Inputs: 1 + r.Intn(6), Gates: 1 + r.Intn(50), Outputs: 1 + r.Intn(3),
			Luts: true, Constants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		designs = append(designs, n)
	}
	for di, n := range designs {
		fwd, err := Forward(n)
		if err != nil {
			t.Fatalf("design %d: %v", di, err)
		}
		bwd, err := Outputs(n, Options{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		for bit := range bwd.Bits {
			if !fwd.Bits[bit].Expr.Equal(bwd.Bits[bit].Expr) {
				t.Errorf("design %d bit %d: forward and backward ANF differ", di, bit)
			}
		}
	}
}

func TestForwardNoOutputs(t *testing.T) {
	n := netlist.New("none")
	n.AddInput("a")
	if _, err := Forward(n); err == nil {
		t.Error("should fail without outputs")
	}
}

func TestForwardPeakDominatesBackward(t *testing.T) {
	// The baseline holds every gate's input-level expression at once, so
	// its resident term count must exceed the per-cone backward peak on a
	// shared-logic design — the memory-explosion argument of the paper's
	// Section II-B.
	p, _ := polytab.Default(16)
	n, err := gen.Karatsuba(16, p)
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := Forward(n)
	if err != nil {
		t.Fatal(err)
	}
	bwd, err := Outputs(n, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fwd.Bits[0].PeakTerms < bwd.PeakTerms() {
		t.Errorf("forward peak %d unexpectedly below backward peak %d",
			fwd.Bits[0].PeakTerms, bwd.PeakTerms())
	}
}

func TestTraceOutputMatchesOutput(t *testing.T) {
	n, _, _ := buildFigure2(t)
	var sb strings.Builder
	for i, root := range n.Outputs() {
		traced, err := TraceOutput(n, root, &sb)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Output(n, root)
		if err != nil {
			t.Fatal(err)
		}
		if !traced.Expr.Equal(plain.Expr) {
			t.Errorf("bit %d: traced expression differs", i)
		}
		if traced.Substitutions != plain.Substitutions {
			t.Errorf("bit %d: substitution counts differ (%d vs %d)",
				i, traced.Substitutions, plain.Substitutions)
		}
	}
	out := sb.String()
	// The Figure 3 walkthrough: the z1 thread must show a mod-2
	// cancellation (the "2x" elimination) and the final expressions must
	// appear with signal names.
	if !strings.Contains(out, "cancelled mod 2") {
		t.Errorf("trace shows no cancellations:\n%s", out)
	}
	for _, want := range []string{"a0·b0", "a1·b1", "F0 = z0", "F0 = z1"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestFormatPoly(t *testing.T) {
	n, a, b := buildFigure2(t)
	p := anf.FromMonos(
		anf.NewMono(anf.Var(a[0]), anf.Var(b[0])),
		anf.NewMono(anf.Var(a[1])),
		anf.MonoOne,
	)
	got := FormatPoly(p, n)
	if got != "1+a0·b0+a1" {
		t.Errorf("FormatPoly = %q", got)
	}
	if FormatPoly(anf.NewPoly(), n) != "0" {
		t.Error("zero polynomial should print 0")
	}
}
