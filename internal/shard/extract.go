// Extract is the lease-scheduled form of extract.IrreduciblePolynomial:
// the same pipeline (preflight → rewrite → Algorithm 2 → golden model /
// consensus), with the rewriting phase turned into a Pool of cone leases
// executed by local workers and any remote peers reached through a Hub.
package shard

import (
	"context"
	"errors"
	"time"

	"github.com/galoisfield/gfre/internal/checkpoint"
	"github.com/galoisfield/gfre/internal/extract"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/rewrite"
)

// ExtractOptions tunes the scheduling side of a sharded extraction; the
// extraction semantics (ports, tolerance, verification, checkpointing)
// stay in extract.Options.
type ExtractOptions struct {
	// Workers is the local lease-executing goroutine count. 0 selects 1;
	// negative runs no local workers (pure coordinator — remote peers via
	// Hub do all the work).
	Workers int
	// MaxCones caps the cones per lease (0 = DefaultMaxCones).
	MaxCones int
	// LeaseTTL / MaxAttempts / BackoffBase / BackoffCap / StealAge / Seed
	// forward to Config.
	LeaseTTL                time.Duration
	MaxAttempts             int
	BackoffBase, BackoffCap time.Duration
	StealAge                time.Duration
	Seed                    int64
	// Store is the cross-job result cache; nil allocates a private one.
	Store *Store
	// Hub, when non-nil, exposes the pool to remote peers under HubKey for
	// the duration of the run.
	Hub *Hub
	// HubKey names the pool in the hub ("" selects the content hash).
	HubKey string
}

// Extract reverse engineers P(x) with lease-based sharded rewriting. The
// returned Stats carry the robustness counters (expiries, steals, fenced
// zombies, reuse) of the run; the Extraction/Diagnosis pair matches what
// the monolithic extract paths produce for the same options.
func Extract(n *netlist.Netlist, eopts extract.Options, sopts ExtractOptions) (*extract.Extraction, *extract.Diagnosis, Stats, error) {
	m := len(n.Outputs())
	rec := eopts.Recorder
	root := rec.StartSpan("extraction", map[string]int64{"m": int64(m), "sharded": 1})
	var rootErr error
	defer func() {
		if rootErr != nil {
			root.SetStatus("error")
		}
		root.End()
	}()

	lint, err := extract.Preflight(n, &eopts)
	if err != nil {
		rootErr = err
		return &extract.Extraction{M: m, Lint: lint}, nil, Stats{}, err
	}

	hash, err := checkpoint.HashNetlist(n)
	if err != nil {
		rootErr = err
		return nil, nil, Stats{}, err
	}

	// Checkpoint seam, mirroring extract's rewriteCheckpointed: Resume
	// feeds the snapshot into Config.Prior, fresh runs Begin a snapshot,
	// and every newly terminal cone lands in it through OnResult.
	var (
		prior    []rewrite.BitResult
		onResult func(rewrite.BitResult)
	)
	if ckpt := eopts.Checkpoint; ckpt != nil {
		if eopts.Resume {
			if prior, err = ckpt.Restore(n); err != nil {
				rootErr = err
				return nil, nil, Stats{}, err
			}
		} else if err := ckpt.Begin(n); err != nil {
			rootErr = err
			return nil, nil, Stats{}, err
		}
		onResult = ckpt.Record
	}

	pool, err := NewPool(Config{
		Hash: hash, Bits: m,
		LeaseTTL: sopts.LeaseTTL, MaxConesPerLease: sopts.MaxCones,
		MaxAttempts: sopts.MaxAttempts,
		BackoffBase: sopts.BackoffBase, BackoffCap: sopts.BackoffCap,
		StealAge:    sopts.StealAge,
		BudgetTerms: eopts.BudgetTerms, ConeDeadline: eopts.ConeDeadline,
		Store: sopts.Store, Prior: prior, OnResult: onResult,
		Recorder: rec, Seed: sopts.Seed,
	})
	if err != nil {
		rootErr = err
		return nil, nil, Stats{}, err
	}
	defer pool.Close()

	if sopts.Hub != nil {
		key := sopts.HubKey
		if key == "" {
			key = hash
		}
		if err := sopts.Hub.Register(key, pool, n); err != nil {
			rootErr = err
			return nil, nil, Stats{}, err
		}
		defer sopts.Hub.Unregister(key)
	}

	ctx := eopts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	span := rec.StartSpan("rewrite", map[string]int64{"bits": int64(m), "sharded": 1})
	if sopts.Workers >= 0 {
		workers := sopts.Workers
		if workers == 0 {
			workers = 1
		}
		// RunWorkers returns on ErrDone; remote peers may race it to the
		// last cone, which simply makes the local loop exit early.
		RunWorkers(ctx, pool, n, WorkerConfig{
			Workers: workers, MaxCones: sopts.MaxCones,
			Rewrite: rewrite.Options{Recorder: rec, Threads: eopts.Threads},
		})
	}
	waitErr := pool.Wait(ctx)
	span.End()

	rw := pool.Result()
	rw.Runtime = time.Since(start)
	rw.Threads = sopts.Workers
	stats := pool.Stats()
	if ckpt := eopts.Checkpoint; ckpt != nil {
		if serr := ckpt.Sync(); serr != nil && waitErr == nil {
			waitErr = serr
		}
	}
	// A cancelled/expired wait still assembles: pending cones surface as
	// cancelled bits the consensus path can vote around. Other errors
	// (checkpoint I/O) abort.
	if waitErr != nil && !errors.Is(waitErr, context.Canceled) && !errors.Is(waitErr, context.DeadlineExceeded) {
		rootErr = waitErr
		return nil, nil, stats, waitErr
	}

	ext, diag, err := extract.FromRewriteResult(n, rw, eopts)
	if ext != nil {
		ext.Lint = lint
	}
	if err == nil && waitErr != nil {
		err = waitErr
	}
	rootErr = err
	return ext, diag, stats, err
}
