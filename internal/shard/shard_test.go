package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/galoisfield/gfre/internal/anf"
	"github.com/galoisfield/gfre/internal/checkpoint"
	"github.com/galoisfield/gfre/internal/extract"
	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/polytab"
	"github.com/galoisfield/gfre/internal/rewrite"
)

// testHash is a syntactically valid content hash for pool-only tests.
const testHash = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// okResult fabricates a completed cone with a small distinct expression.
func okResult(bit int) rewrite.BitResult {
	p := anf.NewPoly()
	p.Toggle(anf.NewMono(anf.Var(bit + 1)))
	return rewrite.BitResult{
		BitStats: rewrite.BitStats{Bit: bit, Name: fmt.Sprintf("z%d", bit), FinalTerms: p.Len()},
		Expr:     p,
		Status:   rewrite.StatusOK,
	}
}

func failResult(bit int) rewrite.BitResult {
	return rewrite.BitResult{
		BitStats: rewrite.BitStats{Bit: bit, Name: fmt.Sprintf("z%d", bit)},
		Status:   rewrite.StatusBudget,
		Err:      "budget exceeded",
	}
}

func pack(brs ...rewrite.BitResult) []checkpoint.Cone {
	cones := make([]checkpoint.Cone, len(brs))
	for i, br := range brs {
		cones[i] = checkpoint.FromBitResult(br)
	}
	return cones
}

func newTestPool(t *testing.T, bits int, clk *fakeClock, mut func(*Config)) *Pool {
	t.Helper()
	cfg := Config{Hash: testHash, Bits: bits, LeaseTTL: time.Second, Seed: 7}
	if clk != nil {
		cfg.Clock = clk.Now
	}
	if mut != nil {
		mut(&cfg)
	}
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestPoolLeaseSubmitLifecycle(t *testing.T) {
	p := newTestPool(t, 4, nil, nil)
	g, err := p.Lease("w1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Cones) != 4 || g.Epoch != 1 || g.Hash != testHash {
		t.Fatalf("unexpected grant %+v", g)
	}
	var brs []rewrite.BitResult
	for _, bit := range g.Cones {
		brs = append(brs, okResult(bit))
	}
	reply, err := p.Submit(g.Lease, g.Epoch, pack(brs...))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Accepted != 4 {
		t.Fatalf("accepted %d, want 4: %+v", reply.Accepted, reply)
	}
	if !p.Finished() {
		t.Fatal("pool should be finished")
	}
	if _, err := p.Lease("w2", 0); !errors.Is(err, ErrDone) {
		t.Fatalf("lease after completion: %v, want ErrDone", err)
	}
	rw := p.Result()
	if len(rw.Failed) != 0 || len(rw.Bits) != 4 {
		t.Fatalf("result: failed=%v bits=%d", rw.Failed, len(rw.Bits))
	}
}

func TestResubmitSameEnvelopeIsDuplicate(t *testing.T) {
	// Idempotency: a worker whose first submission's *response* was lost
	// re-sends the identical envelope and must see duplicates, not fences,
	// and the pool must not double-count.
	p := newTestPool(t, 2, nil, nil)
	g, _ := p.Lease("w1", 0)
	env := pack(okResult(g.Cones[0]), okResult(g.Cones[1]))
	if _, err := p.Submit(g.Lease, g.Epoch, env); err != nil {
		t.Fatal(err)
	}
	reply, err := p.Submit(g.Lease, g.Epoch, env)
	if err != nil {
		t.Fatalf("re-send errored: %v", err)
	}
	if reply.Duplicate != 2 || reply.Accepted != 0 || reply.Fenced != 0 {
		t.Fatalf("re-send classified %+v, want 2 duplicates", reply)
	}
	st := p.Stats()
	if st.Accepted != 2 || st.DoubleAccepts != 0 {
		t.Fatalf("stats %+v: want Accepted=2 DoubleAccepts=0", st)
	}
}

func TestLeaseExpiryRequeuesAndFencesZombie(t *testing.T) {
	clk := newFakeClock()
	p := newTestPool(t, 2, clk, nil)
	g1, err := p.Lease("zombie", 0)
	if err != nil {
		t.Fatal(err)
	}

	// Miss the heartbeat; the cones must re-queue for another worker once
	// the backoff gate passes.
	clk.Advance(2 * time.Second)
	if _, err := p.Renew(g1.Lease, g1.Epoch); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("renew after expiry: %v, want ErrLeaseExpired", err)
	}
	clk.Advance(3 * time.Second) // past any requeue backoff
	g2, err := p.Lease("healthy", 0)
	if err != nil {
		t.Fatalf("re-lease after expiry: %v", err)
	}
	if g2.Epoch <= g1.Epoch {
		t.Fatalf("epoch must advance: %d then %d", g1.Epoch, g2.Epoch)
	}

	// The zombie's late submission must be fenced in its entirety.
	reply, err := p.Submit(g1.Lease, g1.Epoch, pack(okResult(g1.Cones[0]), okResult(g1.Cones[1])))
	if !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("zombie submit: err=%v, want ErrLeaseExpired", err)
	}
	if reply.Fenced != 2 || reply.Accepted != 0 {
		t.Fatalf("zombie submit classified %+v, want 2 fenced", reply)
	}

	// The healthy worker completes; nothing was double-counted.
	if _, err := p.Submit(g2.Lease, g2.Epoch, pack(okResult(g2.Cones[0]), okResult(g2.Cones[1]))); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Accepted != 2 || st.Fenced != 2 || st.Expired != 1 || st.DoubleAccepts != 0 {
		t.Fatalf("stats %+v", st)
	}
	if !p.Finished() {
		t.Fatal("pool should be finished")
	}
}

func TestZombieSubmitAfterConeRecomputed(t *testing.T) {
	// The hardest fence case: the cone is already terminal under a NEWER
	// epoch when the zombie's submission lands. It must classify as fenced
	// (the zombie's epoch never owned the accepted result).
	clk := newFakeClock()
	p := newTestPool(t, 1, clk, nil)
	g1, _ := p.Lease("zombie", 0)
	clk.Advance(2 * time.Second)
	p.expiryTick()
	clk.Advance(3 * time.Second)
	g2, err := p.Lease("healthy", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(g2.Lease, g2.Epoch, pack(okResult(0))); err != nil {
		t.Fatal(err)
	}
	reply, err := p.Submit(g1.Lease, g1.Epoch, pack(okResult(0)))
	if !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("zombie submit err=%v", err)
	}
	if reply.Fenced != 1 || reply.Duplicate != 0 {
		t.Fatalf("zombie submit classified %+v, want 1 fenced", reply)
	}
	if st := p.Stats(); st.DoubleAccepts != 0 || st.Accepted != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestWorkStealingSplitsStraggler(t *testing.T) {
	clk := newFakeClock()
	p := newTestPool(t, 8, clk, func(c *Config) {
		c.StealAge = 100 * time.Millisecond
	})
	g1, err := p.Lease("slow", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(g1.Cones) != 8 {
		t.Fatalf("first lease got %d cones, want all 8", len(g1.Cones))
	}
	clk.Advance(200 * time.Millisecond) // past StealAge, before LeaseTTL
	g2, err := p.Lease("thief", 0)
	if err != nil {
		t.Fatalf("steal failed: %v", err)
	}
	if len(g2.Cones) != 4 {
		t.Fatalf("stole %d cones, want half (4)", len(g2.Cones))
	}
	if p.Stats().Stolen != 1 {
		t.Fatalf("stats %+v, want Stolen=1", p.Stats())
	}

	// The victim's submissions for its REMAINING cones still land; its
	// submissions for the stolen ones are fenced.
	keep, stolen := g1.Cones[0], g2.Cones[0]
	reply, err := p.Submit(g1.Lease, g1.Epoch, pack(okResult(keep), okResult(stolen)))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Accepted != 1 || reply.Fenced != 1 {
		t.Fatalf("victim submit classified %+v, want 1 accepted + 1 fenced", reply)
	}
}

func TestGovernorFailureBoundedByMaxAttempts(t *testing.T) {
	clk := newFakeClock()
	p := newTestPool(t, 1, clk, func(c *Config) {
		c.MaxAttempts = 2
		c.BackoffBase = 10 * time.Millisecond
		c.BackoffCap = 20 * time.Millisecond
	})
	submits := 0
	for !p.Finished() {
		g, err := p.Lease("w", 0)
		if errors.Is(err, ErrNoWork) {
			clk.Advance(50 * time.Millisecond)
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		reply, err := p.Submit(g.Lease, g.Epoch, pack(failResult(0)))
		if err != nil {
			t.Fatal(err)
		}
		if reply.Failed != 1 {
			t.Fatalf("submit %d classified %+v", submits+1, reply)
		}
		if submits++; submits > 2 {
			t.Fatalf("still retrying after %d governor failures, want MaxAttempts=2", submits)
		}
	}
	if submits != 2 {
		t.Fatalf("cone failed permanently after %d attempts, want 2", submits)
	}
	rw := p.Result()
	if len(rw.Failed) != 1 || rw.Failed[0] != 0 {
		t.Fatalf("result failed=%v, want [0]", rw.Failed)
	}
	if rw.Bits[0].Status != rewrite.StatusBudget {
		t.Fatalf("failed bit status %q", rw.Bits[0].Status)
	}
}

func TestExpiryRequeueIsUnbounded(t *testing.T) {
	// Worker death is not the cone's fault: expiry re-queues must NOT count
	// against MaxAttempts, or chaos (many kills) would exhaust real work.
	clk := newFakeClock()
	p := newTestPool(t, 1, clk, func(c *Config) {
		c.MaxAttempts = 2
		c.BackoffBase = time.Millisecond
		c.BackoffCap = 2 * time.Millisecond
	})
	for i := 0; i < 10; i++ {
		g, err := p.Lease(fmt.Sprintf("w%d", i), 0)
		if errors.Is(err, ErrNoWork) {
			clk.Advance(10 * time.Millisecond)
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		_ = g
		clk.Advance(2 * time.Second) // let it expire
		p.expiryTick()
	}
	clk.Advance(time.Second)
	g, err := p.Lease("finisher", 0)
	if err != nil {
		t.Fatalf("cone must still be leasable after many expiries: %v", err)
	}
	if _, err := p.Submit(g.Lease, g.Epoch, pack(okResult(0))); err != nil {
		t.Fatal(err)
	}
	if !p.Finished() {
		t.Fatal("pool should finish")
	}
}

func TestPriorAndStoreSeeding(t *testing.T) {
	store := NewStore(0)
	// First pool: complete bit 0 via Prior, bit 1 via a worker.
	p1 := newTestPool(t, 2, nil, func(c *Config) {
		c.Store = store
		c.Prior = []rewrite.BitResult{okResult(0)}
	})
	if st := p1.Stats(); st.Reused != 1 {
		t.Fatalf("stats %+v, want Reused=1", st)
	}
	g, err := p1.Lease("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Cones) != 1 || g.Cones[0] != 1 {
		t.Fatalf("lease after prior seeding got %v, want [1]", g.Cones)
	}
	if _, err := p1.Submit(g.Lease, g.Epoch, pack(okResult(1))); err != nil {
		t.Fatal(err)
	}

	// Second pool over the same hash: every cone served from the store,
	// no lease ever granted.
	var observed []int
	p2 := newTestPool(t, 2, nil, func(c *Config) {
		c.Store = store
		c.OnResult = func(br rewrite.BitResult) { observed = append(observed, br.Bit) }
	})
	if !p2.Finished() {
		t.Fatal("second pool should start finished")
	}
	if st := p2.Stats(); st.Cached != 2 {
		t.Fatalf("stats %+v, want Cached=2", st)
	}
	if len(observed) != 2 {
		t.Fatalf("OnResult saw %v, want both cached cones", observed)
	}
	if rw := p2.Result(); rw.Reused != 2 {
		t.Fatalf("Result().Reused = %d, want 2", rw.Reused)
	}
}

func TestStoreSingleFlightAndEviction(t *testing.T) {
	s := NewStore(2)
	if !s.Put(testHash, 0, okResult(0)) {
		t.Fatal("first Put must win")
	}
	if s.Put(testHash, 0, okResult(0)) {
		t.Fatal("second Put of same key must report not-new")
	}
	if s.Put(testHash, 1, failResult(1)) {
		t.Fatal("failed results must not be cacheable")
	}
	s.Put(testHash, 1, okResult(1))
	s.Put(testHash, 2, okResult(2)) // evicts (hash,0) FIFO
	if _, ok := s.Get(testHash, 0); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	if _, ok := s.Get(testHash, 2); !ok {
		t.Fatal("newest entry missing")
	}
	if s.Len() != 2 {
		t.Fatalf("Len=%d, want 2", s.Len())
	}
}

func TestHubRoutesAndShipsNetlist(t *testing.T) {
	p, err := polytab.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(8, p)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := checkpoint.HashNetlist(n)
	if err != nil {
		t.Fatal(err)
	}
	pool := newTestPool(t, 8, nil, func(c *Config) { c.Hash = hash })
	hub := NewHub()
	if err := hub.Register("job1", pool, n); err != nil {
		t.Fatal(err)
	}

	// First grant to a worker without the hash ships the netlist body.
	g, err := hub.Lease("w1", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Netlist == "" {
		t.Fatal("grant to a cold worker must carry the netlist body")
	}
	// A worker advertising the hash gets a body-free grant.
	g2, err := hub.Lease("w2", 2, []string{hash})
	if err != nil {
		t.Fatal(err)
	}
	if g2.Netlist != "" {
		t.Fatal("grant must omit the netlist when the worker has the hash")
	}

	// Renew routes by lease ID; after Unregister everything fences.
	if _, err := hub.Renew(g.Lease, g.Epoch); err != nil {
		t.Fatal(err)
	}
	hub.Unregister("job1")
	if _, err := hub.Renew(g.Lease, g.Epoch); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("renew after unregister: %v, want ErrLeaseExpired", err)
	}
	if _, err := hub.Lease("w3", 0, nil); !errors.Is(err, ErrNoWork) {
		t.Fatalf("lease with no pools: %v, want ErrNoWork", err)
	}
}

func TestExtractShardedMatchesMonolithic(t *testing.T) {
	for _, m := range []int{4, 8, 16} {
		p, err := polytab.Default(m)
		if err != nil {
			t.Fatal(err)
		}
		n, err := gen.Mastrovito(m, p)
		if err != nil {
			t.Fatal(err)
		}
		ext, diag, stats, err := Extract(n, extract.Options{}, ExtractOptions{Workers: 4, MaxCones: 3})
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if !ext.P.Equal(p) {
			t.Errorf("m=%d: extracted %v, want %v", m, ext.P, p)
		}
		if !ext.Verified {
			t.Errorf("m=%d: golden verification should have run", m)
		}
		if diag != nil {
			t.Errorf("m=%d: clean strict run should not produce a diagnosis", m)
		}
		if stats.Accepted != m {
			t.Errorf("m=%d: accepted %d cones, want %d", m, stats.Accepted, m)
		}
		if stats.DoubleAccepts != 0 {
			t.Errorf("m=%d: double accepts: %+v", m, stats)
		}
	}
}

func TestExtractShardedReusesStoreAcrossJobs(t *testing.T) {
	p, err := polytab.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(8, p)
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(0)
	if _, _, _, err := Extract(n, extract.Options{}, ExtractOptions{Workers: 2, Store: store}); err != nil {
		t.Fatal(err)
	}
	ext, _, stats, err := Extract(n, extract.Options{}, ExtractOptions{Workers: 2, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if !ext.P.Equal(p) {
		t.Fatalf("second run extracted %v, want %v", ext.P, p)
	}
	if stats.Cached != 8 || stats.Granted != 0 {
		t.Fatalf("second run stats %+v: want every cone cached, no lease granted", stats)
	}
	if ext.Rewrite.Reused != 8 {
		t.Fatalf("Reused = %d, want 8", ext.Rewrite.Reused)
	}
}

func TestExtractShardedWithRemotePeerOverHub(t *testing.T) {
	// A coordinator with NO local workers completes through a peer driving
	// RunWorkers against the hub — the in-process version of the 2-node
	// setup, proving grants/submissions flow through the Hub Source.
	p, err := polytab.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(8, p)
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan struct{})
	go func() {
		defer close(done)
		// The peer polls the hub until the extraction registers, executes
		// leases, and exits when the pool unregisters (ErrNoWork forever —
		// stopped via ctx).
		src := hubSource{hub}
		for ctx.Err() == nil {
			g, err := src.Lease("peer-0", 0)
			if err != nil {
				time.Sleep(time.Millisecond)
				continue
			}
			if _, err := ExecuteLease(ctx, src, n, g, rewrite.Options{}); err != nil &&
				!errors.Is(err, ErrLeaseExpired) {
				t.Errorf("peer execute: %v", err)
				return
			}
		}
	}()

	ext, _, stats, err := Extract(n, extract.Options{}, ExtractOptions{Workers: -1, Hub: hub, HubKey: "job"})
	cancel()
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if !ext.P.Equal(p) {
		t.Fatalf("extracted %v, want %v", ext.P, p)
	}
	if stats.Accepted != 8 || stats.DoubleAccepts != 0 {
		t.Fatalf("stats %+v", stats)
	}
}

// hubSource adapts a Hub to the worker's Source interface the way a remote
// peer sees it (no have-list optimization).
type hubSource struct{ h *Hub }

func (s hubSource) Lease(worker string, max int) (*Grant, error) {
	return s.h.Lease(worker, max, nil)
}
func (s hubSource) Renew(id string, epoch uint64) (time.Time, error) { return s.h.Renew(id, epoch) }
func (s hubSource) Submit(id string, epoch uint64, cones []checkpoint.Cone) (SubmitReply, error) {
	return s.h.Submit(id, epoch, cones)
}

// expiryTick forces one on-demand expiry scan (tests drive the fake clock,
// so the background ticker's wall-time cadence is irrelevant).
func (p *Pool) expiryTick() {
	p.mu.Lock()
	p.expireLocked(p.cfg.Clock())
	p.mu.Unlock()
}
