// HTTP client side of the /shards protocol: a Source over a remote hub,
// plus RunPeer — the long-running loop a gfred node uses to execute cone
// leases for its peers. Transport robustness lives here: submissions are
// idempotent server-side, so the client retries 5xx bursts and dropped
// connections with capped backoff; 410 is the epoch fence and is final.
package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/galoisfield/gfre/internal/checkpoint"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/obs"
	"github.com/galoisfield/gfre/internal/rewrite"
)

// Client speaks the /shards endpoints of one coordinator. It implements
// Source; the Have callback lets the peer advertise cached netlists.
type Client struct {
	// Base is the coordinator's base URL, e.g. "http://host:8080".
	Base string
	// HTTPClient defaults to a client with a per-request timeout.
	HTTPClient *http.Client
	// Have returns the content hashes this worker already holds.
	Have func() []string
	// Retries bounds the submit/renew retry ladder on transport faults
	// and 5xx (0 selects 4).
	Retries int
	// RetryBase is the backoff base between retries (0 selects 100ms).
	RetryBase time.Duration

	// LastNetlist holds the EQN body of the most recent grant that
	// carried one, keyed for the caller by LastHash.
	mu          sync.Mutex
	lastNetlist string
	lastHash    string
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) retries() int {
	if c.Retries <= 0 {
		return 4
	}
	return c.Retries
}

func (c *Client) retryBase() time.Duration {
	if c.RetryBase <= 0 {
		return 100 * time.Millisecond
	}
	return c.RetryBase
}

// Lease requests work. A grant carrying a netlist body is stashed for
// TakeNetlist; ErrNoWork maps from 204.
func (c *Client) Lease(worker string, max int) (*Grant, error) {
	var have []string
	if c.Have != nil {
		have = c.Have()
	}
	body, _ := json.Marshal(LeaseRequest{Worker: worker, Max: max, Have: have})
	resp, err := c.http().Post(c.Base+"/shards/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil, ErrNoWork
	case http.StatusOK:
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("shard: lease: unexpected status %s", resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxEnvelopeBytes+1))
	if err != nil {
		return nil, err
	}
	g, err := DecodeGrant(data)
	if err != nil {
		return nil, err
	}
	if g.Netlist != "" {
		c.mu.Lock()
		c.lastNetlist, c.lastHash = g.Netlist, g.Hash
		c.mu.Unlock()
	}
	return g, nil
}

// TakeNetlist returns the EQN body delivered with the last grant for hash,
// if any.
func (c *Client) TakeNetlist(hash string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lastHash != hash || c.lastNetlist == "" {
		return "", false
	}
	return c.lastNetlist, true
}

// Renew heartbeats a lease; 410 maps to ErrLeaseExpired.
func (c *Client) Renew(leaseID string, epoch uint64) (time.Time, error) {
	body, _ := json.Marshal(RenewRequest{Epoch: epoch})
	var reply RenewReply
	err := c.postRetry("/shards/"+leaseID+"/renew", body, &reply)
	if err != nil {
		return time.Time{}, err
	}
	return time.Unix(0, reply.DeadlineUnixNS), nil
}

// Submit pushes a result envelope; transport faults and 5xx retry with
// capped backoff (idempotent server-side), 410 maps to ErrLeaseExpired.
func (c *Client) Submit(leaseID string, epoch uint64, cones []checkpoint.Cone) (SubmitReply, error) {
	body, _ := json.Marshal(ResultEnvelope{Epoch: epoch, Cones: cones})
	var reply SubmitReply
	err := c.postRetry("/shards/"+leaseID+"/result", body, &reply)
	return reply, err
}

// postRetry POSTs body to path, retrying transport errors and 5xx with
// capped-exponential backoff. 410 Gone is the epoch fence: final.
func (c *Client) postRetry(path string, body []byte, out any) error {
	var last error
	delay := c.retryBase()
	for attempt := 0; attempt <= c.retries(); attempt++ {
		if attempt > 0 {
			time.Sleep(delay)
			if delay < 2*time.Second {
				delay *= 2
			}
		}
		resp, err := c.http().Post(c.Base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			last = err
			continue
		}
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxEnvelopeBytes))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusGone:
			return ErrLeaseExpired
		case resp.StatusCode >= 500:
			last = fmt.Errorf("shard: %s: %s", path, resp.Status)
			continue
		case resp.StatusCode != http.StatusOK:
			return fmt.Errorf("shard: %s: unexpected status %s", path, resp.Status)
		case rerr != nil:
			last = rerr // truncated body: retry, the server already acted
			continue
		}
		if err := json.Unmarshal(data, out); err != nil {
			last = err
			continue
		}
		return nil
	}
	return last
}

// PeerConfig tunes RunPeer.
type PeerConfig struct {
	// ID names this peer in worker IDs ("" selects "peer").
	ID string
	// Workers is the concurrent lease-executing goroutine count (0 = 1).
	Workers int
	// Rewrite carries local governance overrides (grant hints fill zeros).
	Rewrite rewrite.Options
	// IdleSleep is the poll interval when the coordinator has no work
	// (0 selects 250ms).
	IdleSleep time.Duration
	// Recorder observes peer_lease events; nil disables.
	Recorder *obs.Recorder
}

// RunPeer executes cone leases from a remote coordinator until ctx ends.
// Netlists arrive with the first grant per content hash and are cached for
// the lifetime of the loop; the coordinator omits bodies for hashes the
// peer advertises. Unlike RunWorkers there is no ErrDone — a peer outlives
// any single job and keeps polling for the next one.
func RunPeer(ctx context.Context, base string, cfg PeerConfig) error {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.ID == "" {
		cfg.ID = "peer"
	}
	if cfg.IdleSleep <= 0 {
		cfg.IdleSleep = 250 * time.Millisecond
	}
	base = strings.TrimRight(base, "/")

	var (
		nmu  sync.Mutex
		nets = map[string]*netlist.Netlist{}
	)
	cl := &Client{Base: base, Have: func() []string {
		nmu.Lock()
		defer nmu.Unlock()
		hashes := make([]string, 0, len(nets))
		for h := range nets {
			hashes = append(hashes, h)
		}
		return hashes
	}}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Reusable idle timer: time.After per iteration would leak a
			// timer allocation for every empty poll.
			var idle *time.Timer
			defer func() {
				if idle != nil {
					idle.Stop()
				}
			}()
			for ctx.Err() == nil {
				g, err := cl.Lease(workerName(cfg.ID, w), 0)
				if err != nil || g == nil {
					if idle == nil {
						idle = time.NewTimer(cfg.IdleSleep)
					} else {
						// Safe: the loop only re-reaches this Reset after
						// draining idle.C (the ctx.Done arm ends the loop).
						idle.Reset(cfg.IdleSleep)
					}
					select {
					case <-ctx.Done():
					case <-idle.C:
					}
					continue
				}
				n := resolveNetlist(cl, g, nets, &nmu)
				if n == nil {
					continue // no body and no cache: let the lease expire
				}
				if cfg.Recorder != nil {
					cfg.Recorder.Emit("peer_lease", g.Lease, map[string]int64{
						"epoch": int64(g.Epoch), "cones": int64(len(g.Cones)),
					})
				}
				ExecuteLease(ctx, cl, n, g, cfg.Rewrite)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

func resolveNetlist(cl *Client, g *Grant, nets map[string]*netlist.Netlist, mu *sync.Mutex) *netlist.Netlist {
	mu.Lock()
	n := nets[g.Hash]
	mu.Unlock()
	if n != nil {
		return n
	}
	eqn, ok := cl.TakeNetlist(g.Hash)
	if !ok {
		return nil
	}
	// Re-read under the name recorded in the EQN header: the content hash
	// covers the canonical serialization including that name, so parsing
	// under a local alias would make the verification below always fail.
	n, err := netlist.ReadEQN(strings.NewReader(eqn), netlist.EQNName(eqn, "shard-"+g.Hash[:8]))
	if err != nil {
		return nil
	}
	// Defense in depth: recompute the content hash before caching, so a
	// corrupted or mismatched body can never poison results for g.Hash.
	if h, err := checkpoint.HashNetlist(n); err != nil || h != g.Hash {
		return nil
	}
	mu.Lock()
	nets[g.Hash] = n
	mu.Unlock()
	return n
}
