package shard

import (
	"errors"
	"testing"
	"time"
)

func TestBreakerTripAndRecover(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(BreakerConfig{Threshold: 3, Cooldown: 2 * time.Second, CooldownCap: 30 * time.Second})

	for i := 0; i < 2; i++ {
		if b.failure(now) {
			t.Fatalf("failure %d tripped early", i+1)
		}
		if !b.allow(now) {
			t.Fatalf("breaker closed after %d failures, want open admission", i+1)
		}
	}
	if !b.failure(now) {
		t.Fatal("third consecutive failure did not trip the breaker")
	}
	if b.allow(now) {
		t.Fatal("open breaker allowed a grant before cooldown")
	}

	// Cooldown passes: exactly one half-open probe admits.
	later := now.Add(2 * time.Second)
	if !b.allow(later) {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if b.state != breakerHalfOpen {
		t.Fatalf("state = %s, want %s", b.state, breakerHalfOpen)
	}
	if b.allow(later) {
		t.Fatal("second grant admitted while a probe is outstanding")
	}

	b.success()
	if b.state != breakerClosed || b.failures != 0 {
		t.Fatalf("after probe success: state=%s failures=%d, want closed/0", b.state, b.failures)
	}
	if b.cooldown != 2*time.Second {
		t.Fatalf("cooldown = %v after success, want reset to 2s", b.cooldown)
	}
}

func TestBreakerFailedProbeDoublesCooldown(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second, CooldownCap: 3 * time.Second})

	if !b.failure(now) {
		t.Fatal("threshold-1 breaker did not trip on first failure")
	}
	cooldowns := []time.Duration{2 * time.Second, 3 * time.Second, 3 * time.Second} // doubling, capped
	for i, want := range cooldowns {
		now = now.Add(b.cooldown)
		if !b.allow(now) {
			t.Fatalf("round %d: probe refused after cooldown", i)
		}
		if !b.failure(now) {
			t.Fatalf("round %d: failed probe did not re-open", i)
		}
		if b.cooldown != want {
			t.Fatalf("round %d: cooldown = %v, want %v", i, b.cooldown, want)
		}
		if b.allow(now) {
			t.Fatalf("round %d: re-opened breaker admitted immediately", i)
		}
	}
}

func TestHubBreakerSuspendsFlappingPeer(t *testing.T) {
	n, hash := testMultiplier(t, 4)
	pool := newTestPool(t, 4, nil, func(c *Config) {
		c.Hash = hash
		c.MaxConesPerLease = 1
	})

	h := NewHub()
	h.SetBreakerConfig(BreakerConfig{Threshold: 2, Cooldown: time.Hour})
	if err := h.Register("job", pool, n); err != nil {
		t.Fatal(err)
	}

	// The flaky peer takes leases and never submits: each expiry is a
	// breaker failure once the sweep sees it.
	for i := 0; i < 2; i++ {
		g, err := h.Lease("flaky", 1, nil)
		if err != nil {
			t.Fatalf("lease %d: %v", i, err)
		}
		if !pool.ExpireLease(g.Lease) {
			t.Fatalf("lease %d: force-expiry failed", i)
		}
		// The sweep inside the next Lease call attributes the death.
	}
	if _, err := h.Lease("flaky", 1, nil); !errors.Is(err, ErrPeerSuspended) {
		t.Fatalf("third lease err = %v, want ErrPeerSuspended", err)
	}
	if st := h.BreakerStates()["flaky"]; st != breakerOpen {
		t.Fatalf("breaker state = %q, want open", st)
	}

	// A healthy peer is unaffected by the flaky one's breaker.
	if _, err := h.Lease("steady", 1, nil); err != nil {
		t.Fatalf("healthy peer lease: %v", err)
	}
}
