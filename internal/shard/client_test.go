package shard

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/galoisfield/gfre/internal/checkpoint"
	"github.com/galoisfield/gfre/internal/extract"
	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/polytab"
	"github.com/galoisfield/gfre/internal/rewrite"
)

// newShardMux mirrors the gfred /shards endpoints over a Hub, so the client
// tests exercise the exact wire protocol without importing internal/server
// (which imports this package).
func newShardMux(hub *Hub) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /shards/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		g, err := hub.Lease(req.Worker, req.Max, req.Have)
		if err != nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(g)
	})
	mux.HandleFunc("POST /shards/{id}/renew", func(w http.ResponseWriter, r *http.Request) {
		var req RenewRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		deadline, err := hub.Renew(r.PathValue("id"), req.Epoch)
		if err != nil {
			w.WriteHeader(http.StatusGone)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(RenewReply{DeadlineUnixNS: deadline.UnixNano()})
	})
	mux.HandleFunc("POST /shards/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(io.LimitReader(r.Body, maxEnvelopeBytes))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		env, err := DecodeResultEnvelope(data)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		reply, err := hub.Submit(r.PathValue("id"), env.Epoch, env.Cones)
		if err != nil {
			w.WriteHeader(http.StatusGone)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(reply)
	})
	return mux
}

func testMultiplier(t *testing.T, m int) (*netlist.Netlist, string) {
	t.Helper()
	p, err := polytab.Default(m)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(m, p)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := checkpoint.HashNetlist(n)
	if err != nil {
		t.Fatal(err)
	}
	return n, hash
}

func TestClientRoundTripOverHTTP(t *testing.T) {
	n, hash := testMultiplier(t, 4)
	pool := newTestPool(t, 4, nil, func(c *Config) { c.Hash = hash })
	hub := NewHub()
	if err := hub.Register("job", pool, n); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newShardMux(hub))
	defer srv.Close()

	cl := &Client{Base: srv.URL, RetryBase: time.Millisecond}
	g, err := cl.Lease("remote-0", 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Hash != hash || len(g.Cones) != 2 {
		t.Fatalf("grant %+v", g)
	}
	if g.Netlist == "" {
		t.Fatal("cold worker's grant must ship the netlist over the wire")
	}
	eqn, ok := cl.TakeNetlist(hash)
	if !ok {
		t.Fatal("TakeNetlist must surface the shipped body")
	}
	parsed, err := netlist.ReadEQN(strings.NewReader(eqn), netlist.EQNName(eqn, "wire"))
	if err != nil {
		t.Fatalf("shipped netlist does not parse: %v", err)
	}
	if h, err := checkpoint.HashNetlist(parsed); err != nil || h != hash {
		t.Fatalf("shipped netlist hash mismatch: %v %v", h, err)
	}

	if _, err := cl.Renew(g.Lease, g.Epoch); err != nil {
		t.Fatalf("renew over HTTP: %v", err)
	}
	// A worker advertising the hash gets a body-free grant.
	cl2 := &Client{Base: srv.URL, Have: func() []string { return []string{hash} }}
	g2, err := cl2.Lease("remote-1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Netlist != "" {
		t.Fatal("grant must omit the netlist for an advertising worker")
	}

	// Drive both leases to completion through the real worker loop.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := ExecuteLease(ctx, cl, parsed, g, rewrite.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteLease(ctx, cl2, parsed, g2, rewrite.Options{}); err != nil {
		t.Fatal(err)
	}
	if !pool.Finished() {
		t.Fatalf("pool not finished: %+v", pool.Stats())
	}
	if st := pool.Stats(); st.Accepted != 4 || st.DoubleAccepts != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestClientRetriesTransientServerFaults(t *testing.T) {
	n, hash := testMultiplier(t, 4)
	pool := newTestPool(t, 4, nil, func(c *Config) { c.Hash = hash })
	hub := NewHub()
	if err := hub.Register("job", pool, n); err != nil {
		t.Fatal(err)
	}
	inner := newShardMux(hub)
	var faults atomic.Int32
	faults.Store(3)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The first submissions hit a flapping server; the client must
		// absorb the 503 burst and land the (idempotent) envelope.
		if strings.HasSuffix(r.URL.Path, "/result") && faults.Add(-1) >= 0 {
			http.Error(w, "flapping", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	cl := &Client{Base: srv.URL, Retries: 6, RetryBase: time.Millisecond}
	g, err := cl.Lease("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	var brs []checkpoint.Cone
	for _, bit := range g.Cones {
		brs = append(brs, checkpoint.FromBitResult(okResult(bit)))
	}
	reply, err := cl.Submit(g.Lease, g.Epoch, brs)
	if err != nil {
		t.Fatalf("submit through 503 burst: %v", err)
	}
	if reply.Accepted != 4 {
		t.Fatalf("reply %+v", reply)
	}
	if !pool.Finished() {
		t.Fatal("pool should be finished")
	}
}

func TestClientMapsGoneToLeaseExpired(t *testing.T) {
	hub := NewHub() // no pools: every lease ID is unknown
	srv := httptest.NewServer(newShardMux(hub))
	defer srv.Close()
	cl := &Client{Base: srv.URL, RetryBase: time.Millisecond}
	if _, err := cl.Renew("0123456789abcdef", 1); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("renew of unknown lease: %v, want ErrLeaseExpired", err)
	}
	env := []checkpoint.Cone{checkpoint.FromBitResult(okResult(0))}
	if _, err := cl.Submit("0123456789abcdef", 1, env); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("submit to unknown lease: %v, want ErrLeaseExpired", err)
	}
	if _, err := cl.Lease("w", 0); !errors.Is(err, ErrNoWork) {
		t.Fatalf("lease with no pools: %v, want ErrNoWork", err)
	}
}

func TestRunPeerExecutesRemoteExtraction(t *testing.T) {
	// Full 2-node shape in one process: a coordinator with no local workers
	// publishes a pool over HTTP; RunPeer on the other side pulls the
	// netlist over the wire, verifies its hash, computes every cone and
	// submits back. The extraction must produce the exact P(x).
	p, err := polytab.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(8, p)
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub()
	srv := httptest.NewServer(newShardMux(hub))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	peerDone := make(chan error, 1)
	go func() {
		peerDone <- RunPeer(ctx, srv.URL, PeerConfig{ID: "p", Workers: 2, IdleSleep: time.Millisecond})
	}()

	ext, _, stats, err := Extract(n, extract.Options{}, ExtractOptions{Workers: -1, Hub: hub})
	if err != nil {
		t.Fatal(err)
	}
	if !ext.P.Equal(p) {
		t.Fatalf("remote extraction got %v, want %v", ext.P, p)
	}
	if !ext.Verified {
		t.Fatal("golden verification should pass")
	}
	if stats.Accepted != 8 || stats.DoubleAccepts != 0 {
		t.Fatalf("stats %+v", stats)
	}
	cancel()
	if err := <-peerDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("peer exit: %v", err)
	}
}
