// Wire envelopes of the /shards HTTP protocol, with validating decoders.
// Everything a peer sends crosses a trust boundary — lease IDs, epochs and
// packed cone expressions all come from the network — so decoding is
// strict: bounded sizes, well-formed IDs, and per-cone expression unpacking
// through the same CRC-checked path the checkpoint codec uses. The fuzz
// targets (FuzzResultEnvelope, FuzzGrant) hammer exactly these functions.
package shard

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"github.com/galoisfield/gfre/internal/checkpoint"
)

// Envelope size bounds: a result envelope is at most one lease's cones and
// a grant at most one netlist, so multi-megabyte payloads are garbage.
const (
	maxEnvelopeCones = 4096
	maxEnvelopeBytes = 64 << 20
)

// LeaseRequest is the body of POST /shards/lease.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max,omitempty"`
	// Have lists netlist content hashes the worker already holds, so the
	// grant can omit the netlist body.
	Have []string `json:"have,omitempty"`
}

// RenewRequest is the body of POST /shards/{id}/renew.
type RenewRequest struct {
	Epoch uint64 `json:"epoch"`
}

// RenewReply acknowledges a heartbeat with the extended deadline.
type RenewReply struct {
	DeadlineUnixNS int64 `json:"deadline_unix_ns"`
}

// ResultEnvelope is the body of POST /shards/{id}/result: the packed cone
// results of one lease, submitted under its epoch.
type ResultEnvelope struct {
	Epoch  uint64            `json:"epoch"`
	Worker string            `json:"worker,omitempty"`
	Cones  []checkpoint.Cone `json:"cones"`
}

// DecodeResultEnvelope parses and validates a result envelope. Cones must
// be in range of no particular netlist here (the pool re-checks against its
// own bit count), but each completed cone's packed expression must decode —
// a truncated or bit-flipped body fails here, before any scheduling state
// is touched.
func DecodeResultEnvelope(data []byte) (*ResultEnvelope, error) {
	if len(data) > maxEnvelopeBytes {
		return nil, fmt.Errorf("shard: result envelope of %d bytes exceeds limit", len(data))
	}
	var env ResultEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("shard: bad result envelope: %w", err)
	}
	if env.Epoch == 0 {
		return nil, fmt.Errorf("shard: result envelope missing epoch")
	}
	if len(env.Cones) == 0 || len(env.Cones) > maxEnvelopeCones {
		return nil, fmt.Errorf("shard: result envelope holds %d cones (want 1..%d)", len(env.Cones), maxEnvelopeCones)
	}
	seen := map[int]bool{}
	for i, c := range env.Cones {
		if c.Bit < 0 {
			return nil, fmt.Errorf("shard: cone %d has negative bit %d", i, c.Bit)
		}
		if seen[c.Bit] {
			return nil, fmt.Errorf("shard: bit %d appears twice in one envelope", c.Bit)
		}
		seen[c.Bit] = true
		if _, err := c.BitResult(); err != nil {
			return nil, fmt.Errorf("shard: cone %d (bit %d): %w", i, c.Bit, err)
		}
	}
	return &env, nil
}

// DecodeGrant parses and validates a lease grant as received by a peer.
func DecodeGrant(data []byte) (*Grant, error) {
	if len(data) > maxEnvelopeBytes {
		return nil, fmt.Errorf("shard: grant of %d bytes exceeds limit", len(data))
	}
	var g Grant
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("shard: bad grant: %w", err)
	}
	if !validLeaseID(g.Lease) {
		return nil, fmt.Errorf("shard: bad lease ID %q", g.Lease)
	}
	if g.Epoch == 0 {
		return nil, fmt.Errorf("shard: grant missing epoch")
	}
	if len(g.Hash) != 64 {
		return nil, fmt.Errorf("shard: grant hash %q is not a sha256 hex digest", g.Hash)
	}
	if _, err := hex.DecodeString(g.Hash); err != nil {
		return nil, fmt.Errorf("shard: grant hash %q is not hex", g.Hash)
	}
	if len(g.Cones) == 0 || len(g.Cones) > maxEnvelopeCones {
		return nil, fmt.Errorf("shard: grant holds %d cones (want 1..%d)", len(g.Cones), maxEnvelopeCones)
	}
	seen := map[int]bool{}
	for _, bit := range g.Cones {
		if bit < 0 {
			return nil, fmt.Errorf("shard: grant cone bit %d is negative", bit)
		}
		if seen[bit] {
			return nil, fmt.Errorf("shard: grant lists bit %d twice", bit)
		}
		seen[bit] = true
	}
	if g.BudgetTerms < 0 || g.ConeDeadlineMS < 0 {
		return nil, fmt.Errorf("shard: grant carries negative governance hints")
	}
	return &g, nil
}

// newLeaseID returns a 16-hex-char random lease identifier.
func newLeaseID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("shard: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// validLeaseID matches what newLeaseID produces — and nothing else, since
// lease IDs travel in URL paths.
func validLeaseID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f':
		default:
			return false
		}
	}
	return true
}
