// Hub is the server-side registry that exposes the active pools of one
// gfred process to remote peers: one lease namespace over any number of
// concurrently sharded jobs. Grants carry the netlist body on a worker's
// first encounter with a content hash; renewals and submissions route by
// lease ID alone.
package shard

import (
	"bytes"
	"sync"
	"time"

	"github.com/galoisfield/gfre/internal/checkpoint"
	"github.com/galoisfield/gfre/internal/netlist"
)

// Hub multiplexes lease traffic across registered pools.
type Hub struct {
	mu       sync.Mutex
	entries  map[string]*hubEntry // key = job ID (or caller-chosen key)
	keys     []string             // registration order, for round-robin
	rr       int
	leaseIdx map[string]string // lease ID -> pool key
}

type hubEntry struct {
	pool *Pool
	eqn  string
}

// NewHub builds an empty registry.
func NewHub() *Hub {
	return &Hub{entries: map[string]*hubEntry{}, leaseIdx: map[string]string{}}
}

// Register exposes a pool under key, serializing n once so grants can ship
// the netlist to peers that lack its hash. Re-registering a key replaces
// the previous pool.
func (h *Hub) Register(key string, p *Pool, n *netlist.Netlist) error {
	var buf bytes.Buffer
	if err := n.WriteEQN(&buf); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.entries[key]; !ok {
		h.keys = append(h.keys, key)
	}
	h.entries[key] = &hubEntry{pool: p, eqn: buf.String()}
	return nil
}

// Unregister withdraws a pool; its outstanding leases fence at the hub.
func (h *Hub) Unregister(key string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.entries, key)
	for i, k := range h.keys {
		if k == key {
			h.keys = append(h.keys[:i], h.keys[i+1:]...)
			break
		}
	}
	for id, k := range h.leaseIdx {
		if k == key {
			delete(h.leaseIdx, id)
		}
	}
}

// Pools returns the number of registered pools.
func (h *Hub) Pools() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.entries)
}

// Lease round-robins over registered pools for leasable work. The grant's
// Netlist body is filled unless the worker's have list contains the pool's
// hash. Returns ErrNoWork when no pool has leasable cones.
func (h *Hub) Lease(worker string, max int, have []string) (*Grant, error) {
	h.mu.Lock()
	keys := append([]string(nil), h.keys...)
	start := h.rr
	h.rr++
	h.mu.Unlock()
	if len(keys) == 0 {
		return nil, ErrNoWork
	}
	haveSet := map[string]bool{}
	for _, hash := range have {
		haveSet[hash] = true
	}
	for i := 0; i < len(keys); i++ {
		key := keys[(start+i)%len(keys)]
		h.mu.Lock()
		e := h.entries[key]
		h.mu.Unlock()
		if e == nil {
			continue
		}
		g, err := e.pool.Lease(worker, max)
		if err != nil {
			continue // done or empty: try the next pool
		}
		h.mu.Lock()
		h.leaseIdx[g.Lease] = key
		h.mu.Unlock()
		if !haveSet[g.Hash] {
			g.Netlist = e.eqn
		}
		return g, nil
	}
	return nil, ErrNoWork
}

// Renew routes a heartbeat to the lease's pool. Unknown leases (expired,
// or their pool unregistered) get ErrLeaseExpired.
func (h *Hub) Renew(leaseID string, epoch uint64) (time.Time, error) {
	p := h.poolOf(leaseID)
	if p == nil {
		return time.Time{}, ErrLeaseExpired
	}
	return p.Renew(leaseID, epoch)
}

// Submit routes a result envelope to the lease's pool.
func (h *Hub) Submit(leaseID string, epoch uint64, cones []checkpoint.Cone) (SubmitReply, error) {
	p := h.poolOf(leaseID)
	if p == nil {
		return SubmitReply{Fenced: len(cones)}, ErrLeaseExpired
	}
	return p.Submit(leaseID, epoch, cones)
}

func (h *Hub) poolOf(leaseID string) *Pool {
	h.mu.Lock()
	defer h.mu.Unlock()
	key, ok := h.leaseIdx[leaseID]
	if !ok {
		return nil
	}
	e := h.entries[key]
	if e == nil {
		return nil
	}
	return e.pool
}
