// Hub is the server-side registry that exposes the active pools of one
// gfred process to remote peers: one lease namespace over any number of
// concurrently sharded jobs. Grants carry the netlist body on a worker's
// first encounter with a content hash; renewals and submissions route by
// lease ID alone.
package shard

import (
	"bytes"
	"errors"
	"sync"
	"time"

	"github.com/galoisfield/gfre/internal/checkpoint"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/obs"
)

// ErrPeerSuspended means the requesting peer's circuit breaker is open: its
// recent leases expired unfinished, so the hub withholds grants until a
// half-open probe succeeds. The peer should back off and retry.
var ErrPeerSuspended = errors.New("shard: peer suspended by circuit breaker")

// Hub multiplexes lease traffic across registered pools.
type Hub struct {
	mu       sync.Mutex
	entries  map[string]*hubEntry // key = job ID (or caller-chosen key)
	keys     []string             // registration order, for round-robin
	rr       int
	leaseIdx map[string]leaseRef // lease ID -> pool key + owning worker

	// Per-peer circuit breakers: a worker whose leases keep dying stops
	// receiving grants until a cooldown passes (then one half-open probe).
	bcfg     BreakerConfig
	breakers map[string]*breaker
	rec      *obs.Recorder
}

type hubEntry struct {
	pool *Pool
	eqn  string
}

// leaseRef remembers where a grant routes and which peer holds it.
type leaseRef struct {
	key    string
	worker string
}

// NewHub builds an empty registry.
func NewHub() *Hub {
	return &Hub{
		entries:  map[string]*hubEntry{},
		leaseIdx: map[string]leaseRef{},
		bcfg:     BreakerConfig{}.withDefaults(),
		breakers: map[string]*breaker{},
	}
}

// SetBreakerConfig replaces the per-peer breaker parameters; existing
// breaker state is reset. Call before serving traffic.
func (h *Hub) SetBreakerConfig(cfg BreakerConfig) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.bcfg = cfg.withDefaults()
	h.breakers = map[string]*breaker{}
}

// SetRecorder attaches an observability recorder: breaker transitions emit
// events and move the hub_breaker_* metrics.
func (h *Hub) SetRecorder(rec *obs.Recorder) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rec = rec
}

// BreakerStates snapshots every known peer's breaker state, keyed by worker
// name ("closed", "open", "half-open") — surfaced on /metrics and asserted
// by tests.
func (h *Hub) BreakerStates() map[string]string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]string, len(h.breakers))
	for w, b := range h.breakers {
		out[w] = b.state
	}
	return out
}

// breakerLocked returns (creating if needed) a worker's breaker.
func (h *Hub) breakerLocked(worker string) *breaker {
	b := h.breakers[worker]
	if b == nil {
		b = newBreaker(h.bcfg)
		h.breakers[worker] = b
	}
	return b
}

// peerFailureLocked charges one dead lease to its owner's breaker.
func (h *Hub) peerFailureLocked(worker string, now time.Time) {
	if h.breakerLocked(worker).failure(now) {
		if h.rec != nil {
			h.rec.Metrics().Counter("hub_breaker_tripped").Inc()
			h.rec.Emit("breaker_open", worker, nil)
		}
		h.updateBreakerGaugeLocked()
	}
}

// peerSuccessLocked records a healthy submit, closing the breaker.
func (h *Hub) peerSuccessLocked(worker string) {
	b := h.breakerLocked(worker)
	wasOpen := b.state != breakerClosed
	b.success()
	if wasOpen {
		if h.rec != nil {
			h.rec.Metrics().Counter("hub_breaker_closed").Inc()
			h.rec.Emit("breaker_close", worker, nil)
		}
		h.updateBreakerGaugeLocked()
	}
}

func (h *Hub) updateBreakerGaugeLocked() {
	if h.rec == nil {
		return
	}
	open := int64(0)
	for _, b := range h.breakers {
		if b.state != breakerClosed {
			open++
		}
	}
	h.rec.Metrics().Gauge("hub_breakers_open").Set(open)
}

// sweepDeadLeases finds tracked leases that disappeared from their (still
// registered) pool without a successful submit — they expired or were
// stolen — and charges each to its owner's breaker. Unregistered pools are
// the job finishing, not the peer's fault.
func (h *Hub) sweepDeadLeases(now time.Time) {
	h.mu.Lock()
	type probe struct {
		id     string
		worker string
		pool   *Pool
	}
	var probes []probe
	for id, ref := range h.leaseIdx {
		e := h.entries[ref.key]
		if e == nil {
			delete(h.leaseIdx, id)
			continue
		}
		probes = append(probes, probe{id: id, worker: ref.worker, pool: e.pool})
	}
	h.mu.Unlock()
	var dead []probe
	for _, p := range probes {
		if !p.pool.LeaseLive(p.id) {
			dead = append(dead, p)
		}
	}
	if len(dead) == 0 {
		return
	}
	h.mu.Lock()
	for _, p := range dead {
		if _, still := h.leaseIdx[p.id]; !still {
			continue // a concurrent submit settled it
		}
		delete(h.leaseIdx, p.id)
		h.peerFailureLocked(p.worker, now)
	}
	h.mu.Unlock()
}

// Register exposes a pool under key, serializing n once so grants can ship
// the netlist to peers that lack its hash. Re-registering a key replaces
// the previous pool.
func (h *Hub) Register(key string, p *Pool, n *netlist.Netlist) error {
	var buf bytes.Buffer
	if err := n.WriteEQN(&buf); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.entries[key]; !ok {
		h.keys = append(h.keys, key)
	}
	h.entries[key] = &hubEntry{pool: p, eqn: buf.String()}
	return nil
}

// Unregister withdraws a pool; its outstanding leases fence at the hub.
func (h *Hub) Unregister(key string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.entries, key)
	for i, k := range h.keys {
		if k == key {
			h.keys = append(h.keys[:i], h.keys[i+1:]...)
			break
		}
	}
	for id, ref := range h.leaseIdx {
		if ref.key == key {
			delete(h.leaseIdx, id)
		}
	}
}

// Pools returns the number of registered pools.
func (h *Hub) Pools() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.entries)
}

// Lease round-robins over registered pools for leasable work. The grant's
// Netlist body is filled unless the worker's have list contains the pool's
// hash. Returns ErrNoWork when no pool has leasable cones, ErrPeerSuspended
// while the worker's circuit breaker is open.
func (h *Hub) Lease(worker string, max int, have []string) (*Grant, error) {
	now := time.Now()
	// Settle expired leases first so the requesting peer's own failures are
	// on its breaker before admission is decided.
	h.sweepDeadLeases(now)
	h.mu.Lock()
	if !h.breakerLocked(worker).allow(now) {
		h.mu.Unlock()
		return nil, ErrPeerSuspended
	}
	keys := append([]string(nil), h.keys...)
	start := h.rr
	h.rr++
	h.mu.Unlock()
	if len(keys) == 0 {
		return nil, ErrNoWork
	}
	haveSet := map[string]bool{}
	for _, hash := range have {
		haveSet[hash] = true
	}
	for i := 0; i < len(keys); i++ {
		key := keys[(start+i)%len(keys)]
		h.mu.Lock()
		e := h.entries[key]
		h.mu.Unlock()
		if e == nil {
			continue
		}
		g, err := e.pool.Lease(worker, max)
		if err != nil {
			continue // done or empty: try the next pool
		}
		h.mu.Lock()
		h.leaseIdx[g.Lease] = leaseRef{key: key, worker: worker}
		h.mu.Unlock()
		if !haveSet[g.Hash] {
			g.Netlist = e.eqn
		}
		return g, nil
	}
	// Nothing granted: a half-open probe stays armed for the next request
	// rather than counting an empty hub as a peer failure.
	h.mu.Lock()
	if b := h.breakers[worker]; b != nil && b.state == breakerHalfOpen {
		b.probing = false
	}
	h.mu.Unlock()
	return nil, ErrNoWork
}

// Renew routes a heartbeat to the lease's pool. Unknown leases (expired,
// or their pool unregistered) get ErrLeaseExpired.
func (h *Hub) Renew(leaseID string, epoch uint64) (time.Time, error) {
	p, _ := h.routeOf(leaseID)
	if p == nil {
		return time.Time{}, ErrLeaseExpired
	}
	deadline, err := p.Renew(leaseID, epoch)
	if errors.Is(err, ErrLeaseExpired) {
		h.settleDead(leaseID, time.Now())
	}
	return deadline, err
}

// Submit routes a result envelope to the lease's pool. An accepted submit
// counts as peer health (closing its breaker); a fenced one counts as a
// failure.
func (h *Hub) Submit(leaseID string, epoch uint64, cones []checkpoint.Cone) (SubmitReply, error) {
	p, worker := h.routeOf(leaseID)
	if p == nil {
		return SubmitReply{Fenced: len(cones)}, ErrLeaseExpired
	}
	reply, err := p.Submit(leaseID, epoch, cones)
	switch {
	case errors.Is(err, ErrLeaseExpired):
		h.settleDead(leaseID, time.Now())
	case err == nil:
		h.mu.Lock()
		h.peerSuccessLocked(worker)
		h.mu.Unlock()
		if !p.LeaseLive(leaseID) {
			// Fully submitted: stop tracking so the sweep cannot
			// misattribute the closed lease as an expiry.
			h.mu.Lock()
			delete(h.leaseIdx, leaseID)
			h.mu.Unlock()
		}
	}
	return reply, err
}

// settleDead removes a fenced lease from tracking and charges its owner.
func (h *Hub) settleDead(leaseID string, now time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ref, ok := h.leaseIdx[leaseID]
	if !ok {
		return
	}
	delete(h.leaseIdx, leaseID)
	h.peerFailureLocked(ref.worker, now)
}

func (h *Hub) routeOf(leaseID string) (*Pool, string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ref, ok := h.leaseIdx[leaseID]
	if !ok {
		return nil, ""
	}
	e := h.entries[ref.key]
	if e == nil {
		return nil, ref.worker
	}
	return e.pool, ref.worker
}
