package shard

import (
	"encoding/json"
	"testing"

	"github.com/galoisfield/gfre/internal/checkpoint"
)

// validEnvelopeJSON builds a well-formed result envelope for seeding.
func validEnvelopeJSON(tb testing.TB) []byte {
	tb.Helper()
	env := ResultEnvelope{
		Epoch:  3,
		Worker: "w-0",
		Cones:  pack(okResult(0), okResult(5), failResult(2)),
	}
	data, err := json.Marshal(env)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

func FuzzResultEnvelope(f *testing.F) {
	f.Add(validEnvelopeJSON(f))
	f.Add([]byte(`{"epoch":1,"cones":[{"bit":0,"status":"budget","err":"x"}]}`))
	f.Add([]byte(`{"epoch":0,"cones":[]}`))
	f.Add([]byte(`{"epoch":1,"cones":[{"bit":-1}]}`))
	f.Add([]byte(`{"epoch":1,"cones":[{"bit":2,"status":"ok","expr":"garbage","final_terms":9}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeResultEnvelope(data)
		if err != nil {
			return
		}
		// Whatever the decoder accepts must uphold the envelope invariants
		// the pool relies on: a live epoch, a bounded batch, distinct
		// non-negative bits, and per-cone expressions that unpack.
		if env.Epoch == 0 {
			t.Fatal("accepted envelope with epoch 0")
		}
		if len(env.Cones) == 0 || len(env.Cones) > maxEnvelopeCones {
			t.Fatalf("accepted envelope with %d cones", len(env.Cones))
		}
		seen := map[int]bool{}
		for _, c := range env.Cones {
			if c.Bit < 0 || seen[c.Bit] {
				t.Fatalf("accepted bad bit %d", c.Bit)
			}
			seen[c.Bit] = true
			if _, err := c.BitResult(); err != nil {
				t.Fatalf("accepted cone whose result does not decode: %v", err)
			}
		}
	})
}

func FuzzGrant(f *testing.F) {
	valid, err := json.Marshal(Grant{
		Lease: "0123456789abcdef", Epoch: 1, Hash: testHash,
		Cones: []int{0, 1, 2}, DeadlineUnixNS: 1 << 50,
		BudgetTerms: 1000, ConeDeadlineMS: 5000, Netlist: "# x\nINORDER = a;\nOUTORDER = z;\nz = a;\n",
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{"lease":"XYZ","epoch":1,"hash":"` + testHash + `","cones":[0]}`))
	f.Add([]byte(`{"lease":"0123456789abcdef","epoch":1,"hash":"short","cones":[0]}`))
	f.Add([]byte(`{"lease":"0123456789abcdef","epoch":1,"hash":"` + testHash + `","cones":[0,0]}`))
	f.Add([]byte(`{"lease":"0123456789abcdef","epoch":1,"hash":"` + testHash + `","cones":[0],"budget_terms":-1}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := DecodeGrant(data)
		if err != nil {
			return
		}
		if !validLeaseID(g.Lease) || g.Epoch == 0 {
			t.Fatalf("accepted grant with bad identity: %+v", g)
		}
		if len(g.Hash) != 64 {
			t.Fatalf("accepted grant with bad hash %q", g.Hash)
		}
		if len(g.Cones) == 0 || len(g.Cones) > maxEnvelopeCones {
			t.Fatalf("accepted grant with %d cones", len(g.Cones))
		}
		if g.BudgetTerms < 0 || g.ConeDeadlineMS < 0 {
			t.Fatal("accepted grant with negative governance hints")
		}
	})
}

// TestEnvelopeRoundTrip pins the wire form: a packed envelope decodes to
// bit-identical results.
func TestEnvelopeRoundTrip(t *testing.T) {
	data := validEnvelopeJSON(t)
	env, err := DecodeResultEnvelope(data)
	if err != nil {
		t.Fatal(err)
	}
	if env.Epoch != 3 || len(env.Cones) != 3 {
		t.Fatalf("decoded %+v", env)
	}
	br, err := env.Cones[0].BitResult()
	if err != nil {
		t.Fatal(err)
	}
	want := okResult(0)
	if br.Bit != want.Bit || br.Status != want.Status || br.Expr.String() != want.Expr.String() {
		t.Fatalf("round trip drifted: %+v vs %+v", br, want)
	}
	// Re-encode and decode again: stable.
	again, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResultEnvelope(again); err != nil {
		t.Fatal(err)
	}
	var c checkpoint.Cone
	if err := json.Unmarshal([]byte(`{"bit":1,"status":"ok","expr":"!!!","final_terms":1}`), &c); err != nil {
		t.Fatal(err)
	}
	if _, err := c.BitResult(); err == nil {
		t.Fatal("corrupt packed expression must not decode")
	}
}
