// Worker side of the lease protocol: pull a grant, heartbeat it, compute
// the cones with the governed single-cone rewriter, submit the packed
// results. The same loop drives local goroutines (Source = *Pool) and
// remote peers (Source = *Client); the chaos harness wraps a Source to
// inject delays, duplicates and reordering between the worker and the
// scheduler.
package shard

import (
	"context"
	"errors"
	"time"

	"github.com/galoisfield/gfre/internal/checkpoint"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/rewrite"
)

// Source is the scheduler as seen by one worker. *Pool implements it
// directly; *Client speaks it over HTTP.
type Source interface {
	Lease(worker string, max int) (*Grant, error)
	Renew(leaseID string, epoch uint64) (time.Time, error)
	Submit(leaseID string, epoch uint64, cones []checkpoint.Cone) (SubmitReply, error)
}

// WorkerConfig tunes RunWorkers.
type WorkerConfig struct {
	// ID prefixes the per-goroutine worker names. "" selects "local".
	ID string
	// Workers is the number of concurrent lease-pulling goroutines.
	// 0 selects 1.
	Workers int
	// MaxCones caps the cones requested per lease (0 = scheduler default).
	MaxCones int
	// Rewrite carries the governance knobs applied to each cone. Ctx is
	// overridden per lease so a fenced lease aborts its remaining cones.
	Rewrite rewrite.Options
	// IdleSleep is the base delay after ErrNoWork (doubled up to 16x).
	// 0 selects 10ms.
	IdleSleep time.Duration
}

// RunWorkers drives cfg.Workers concurrent workers against src until the
// scheduler reports ErrDone or ctx ends. Worker-side failures (fenced
// leases, transport errors from a Client source) are absorbed: the
// scheduler's expiry machinery re-queues whatever was lost, which is the
// whole point of leasing.
func RunWorkers(ctx context.Context, src Source, n *netlist.Netlist, cfg WorkerConfig) error {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.ID == "" {
		cfg.ID = "local"
	}
	if cfg.IdleSleep <= 0 {
		cfg.IdleSleep = 10 * time.Millisecond
	}
	errc := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go func(w int) {
			errc <- workerLoop(ctx, src, n, cfg, w)
		}(w)
	}
	var first error
	for w := 0; w < cfg.Workers; w++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}

func workerLoop(ctx context.Context, src Source, n *netlist.Netlist, cfg WorkerConfig, w int) error {
	name := workerName(cfg.ID, w)
	idle := cfg.IdleSleep
	// One reusable backoff timer for the whole loop; time.After here would
	// allocate a timer per idle iteration that lives until it fires.
	var backoff *time.Timer
	defer func() {
		if backoff != nil {
			backoff.Stop()
		}
	}()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		g, err := src.Lease(name, cfg.MaxCones)
		switch {
		case errors.Is(err, ErrDone):
			return nil
		case err != nil || g == nil:
			// Transport errors land here too: back off and retry — the
			// scheduler owns correctness, the worker only owes patience.
			if backoff == nil {
				backoff = time.NewTimer(idle)
			} else {
				// Safe: the only way past the select below without
				// returning is draining backoff.C.
				backoff.Reset(idle)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-backoff.C:
			}
			if idle < 16*cfg.IdleSleep {
				idle *= 2
			}
			continue
		}
		idle = cfg.IdleSleep
		ExecuteLease(ctx, src, n, g, cfg.Rewrite)
	}
}

func workerName(id string, w int) string {
	return id + "-" + string(rune('0'+w%10))
}

// ExecuteLease computes the cones of one grant and submits the results,
// heartbeating the lease from a sidecar goroutine. A failed renewal (the
// lease was fenced: expired, stolen whole, or the pool is gone) cancels
// the remaining cones — continuing would be wasted work whose submission
// is rejected anyway. Per-cone results are submitted in one envelope at
// the end; cancelled cones are dropped, not submitted (the scheduler
// re-queues them on expiry).
func ExecuteLease(ctx context.Context, src Source, n *netlist.Netlist, g *Grant, ropts rewrite.Options) (SubmitReply, error) {
	lctx, cancel := context.WithCancel(ctx)
	defer cancel()

	ttl := time.Until(time.Unix(0, g.DeadlineUnixNS))
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	hb := time.NewTicker(ttl / 3)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		for {
			select {
			case <-lctx.Done():
				return
			case <-hb.C:
				if _, err := src.Renew(g.Lease, g.Epoch); errors.Is(err, ErrLeaseExpired) {
					cancel()
					return
				}
			}
		}
	}()

	// Governance: the grant's hints override zero-valued local options so
	// remote peers govern exactly like the coordinator's own workers.
	ropts.Ctx = lctx
	if ropts.BudgetTerms == 0 {
		ropts.BudgetTerms = g.BudgetTerms
	}
	if ropts.ConeDeadline == 0 && g.ConeDeadlineMS > 0 {
		ropts.ConeDeadline = time.Duration(g.ConeDeadlineMS) * time.Millisecond
	}

	var cones []checkpoint.Cone
	for _, bit := range g.Cones {
		if lctx.Err() != nil {
			break
		}
		br, _ := rewrite.RewriteCone(n, bit, ropts)
		if br.Status == rewrite.StatusCancelled {
			continue // lease fenced or worker dying: the cone re-queues
		}
		cones = append(cones, checkpoint.FromBitResult(br))
	}
	hb.Stop()
	cancel()
	<-hbDone
	if len(cones) == 0 {
		return SubmitReply{}, ctx.Err()
	}
	return src.Submit(g.Lease, g.Epoch, cones)
}
