// Per-peer circuit breakers for the Hub: a remote worker whose leases keep
// expiring (crashed, wedged, or partitioned — it takes work and never
// returns it) stops receiving grants until a cooldown passes, then gets a
// single half-open probe lease. One flapping peer therefore costs the run a
// bounded number of lease-TTL round trips instead of a steady drip of
// expired cones re-queued with backoff.
package shard

import "time"

// Breaker states.
const (
	breakerClosed   = "closed"    // healthy: grants flow
	breakerOpen     = "open"      // tripped: no grants until cooldown passes
	breakerHalfOpen = "half-open" // probing: exactly one grant in flight
)

// BreakerConfig parameterizes the hub's per-peer circuit breakers.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the breaker
	// (0 selects 3). A failure is a lease that expired unfinished or a
	// fenced renew/submit.
	Threshold int
	// Cooldown is how long a freshly tripped breaker stays open before the
	// first half-open probe (0 selects 2s). A failed probe doubles it, up
	// to CooldownCap.
	Cooldown time.Duration
	// CooldownCap bounds the doubling (0 selects 30s).
	CooldownCap time.Duration
	// Clock is a test seam; nil selects time.Now.
	Clock func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.CooldownCap <= 0 {
		c.CooldownCap = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// breaker is one peer's circuit state. The owner (Hub) serializes access.
type breaker struct {
	cfg      BreakerConfig
	state    string
	failures int           // consecutive failures while closed
	cooldown time.Duration // current open duration (doubles per failed probe)
	openedAt time.Time
	probing  bool // a half-open probe lease is outstanding
}

func newBreaker(cfg BreakerConfig) *breaker {
	cfg = cfg.withDefaults()
	return &breaker{cfg: cfg, state: breakerClosed, cooldown: cfg.Cooldown}
}

// allow reports whether the peer may receive a grant right now. In the open
// state it transitions to half-open once the cooldown has passed, admitting
// exactly one probe until success or failure resolves it.
func (b *breaker) allow(now time.Time) bool {
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a completed lease: the breaker closes and the cooldown
// resets to its base value.
func (b *breaker) success() {
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
	b.cooldown = b.cfg.Cooldown
}

// failure records an expired or fenced lease. It reports true when this
// failure tripped the breaker open (from closed or from a failed half-open
// probe, which also doubles the cooldown).
func (b *breaker) failure(now time.Time) bool {
	switch b.state {
	case breakerHalfOpen:
		b.probing = false
		b.cooldown *= 2
		if b.cooldown > b.cfg.CooldownCap {
			b.cooldown = b.cfg.CooldownCap
		}
		b.state = breakerOpen
		b.openedAt = now
		return true
	case breakerClosed:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.state = breakerOpen
			b.openedAt = now
			return true
		}
	}
	return false
}
