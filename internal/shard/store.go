// Content-addressed result store: completed cones keyed on (netlist
// content hash, bit). Shared across pools, it is what makes a million
// submissions of the same m=163 multiplier pay for one extraction — a new
// pool over a hash already in the store starts with its cones done.
package shard

import (
	"sync"

	"github.com/galoisfield/gfre/internal/rewrite"
)

// DefaultStoreEntries bounds an unconfigured store; at ~192 bytes per
// resident term the default keeps worst-case memory in the low hundreds of
// MB for in-range fields.
const DefaultStoreEntries = 1 << 16

type storeKey struct {
	hash string
	bit  int
}

// Store is a bounded content-addressed cache of completed cone results.
// Eviction is FIFO: extraction working sets are generational (a job's
// cones arrive together and are re-read together), so recency tracking
// buys little over insertion order here.
type Store struct {
	mu      sync.Mutex
	max     int
	entries map[storeKey]rewrite.BitResult
	order   []storeKey
	hits    int
	misses  int
}

// NewStore builds a store bounded to max entries (0 selects
// DefaultStoreEntries).
func NewStore(max int) *Store {
	if max <= 0 {
		max = DefaultStoreEntries
	}
	return &Store{max: max, entries: map[storeKey]rewrite.BitResult{}}
}

// Get returns the cached result of (hash, bit).
func (s *Store) Get(hash string, bit int) (rewrite.BitResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	br, ok := s.entries[storeKey{hash, bit}]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return br, ok
}

// Put stores a completed cone result. It reports whether the entry was new
// — false means another flight already landed it (single-flight dedup).
func (s *Store) Put(hash string, bit int, br rewrite.BitResult) bool {
	if br.Status != rewrite.StatusOK {
		return false // only completed cones are cacheable
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := storeKey{hash, bit}
	if _, ok := s.entries[k]; ok {
		return false
	}
	if len(s.entries) >= s.max {
		old := s.order[0]
		s.order = s.order[1:]
		delete(s.entries, old)
	}
	s.entries[k] = br
	s.order = append(s.order, k)
	return true
}

// Len returns the resident entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// HitRate returns (hits, misses) since creation.
func (s *Store) HitRate() (hits, misses int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}
