// Package shard turns one extraction into a pool of independently failable
// cone leases — the distributed form of the paper's Theorem 2, which makes
// every output-bit cone an isolated work unit.
//
// A Pool owns the per-cone state machine of a single netlist (identified by
// its checkpoint content hash). Workers — local goroutines or remote gfred
// peers speaking the /shards HTTP endpoints — pull leases (a batch of cone
// IDs plus a deadline and an epoch), heartbeat them with Renew, compute the
// cones with rewrite.RewriteCone, and push the packed results back with
// Submit. Robustness invariants:
//
//   - a lease that misses its heartbeat expires: its unfinished cones are
//     re-queued with capped-exponential backoff and the pool's epoch fence
//     advances, so a zombie worker's late Submit is rejected, not
//     double-counted;
//   - work stealing splits the remaining cones of a straggling lease onto a
//     fresh epoch when an idle worker asks for work, so one slow or dead
//     worker cannot serialize the tail of the run;
//   - results are keyed (content hash, bit) in a content-addressed Store
//     with single-flight semantics per pool — a cone is held by at most one
//     live epoch, duplicate submissions are served from cache, and a second
//     job over the same netlist reuses the first job's cones outright;
//   - worker loss degrades, never hangs: cones lost to expiry are retried
//     indefinitely (worker death is not the cone's fault), cones that FAIL
//     under the governor (budget/timeout) are bounded by MaxAttempts and
//     surface as failed bits that consensus extraction can vote around.
//
// The chaos harness (diffcheck.KindChaos / gffuzz -chaos) exists to prove
// these invariants: it kills workers, force-expires leases, duplicates,
// delays and reorders submissions, and injects transport faults, then
// asserts the exact planted P(x) is recovered with Stats().DoubleAccepts
// still zero.
package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/galoisfield/gfre/internal/checkpoint"
	"github.com/galoisfield/gfre/internal/obs"
	"github.com/galoisfield/gfre/internal/rewrite"
)

// Sentinel errors; use errors.Is against them.
var (
	// ErrNoWork means no cone is leasable right now (all leased out or
	// parked in backoff); the worker should retry shortly.
	ErrNoWork = errors.New("shard: no leasable cones right now")
	// ErrDone means every cone reached a terminal state; workers exit.
	ErrDone = errors.New("shard: extraction complete")
	// ErrLeaseExpired fences a zombie: the lease (or the submitted epoch)
	// is no longer current, so renewals and results are rejected.
	ErrLeaseExpired = errors.New("shard: lease expired or superseded")
)

// Defaults for the zero Config.
const (
	DefaultLeaseTTL   = 10 * time.Second
	DefaultMaxCones   = 8
	DefaultAttempts   = 3
	defaultBackoff    = 50 * time.Millisecond
	defaultBackoffCap = 2 * time.Second
)

// Config parameterizes a Pool.
type Config struct {
	// Hash is the netlist content hash (checkpoint.HashNetlist) every
	// result is keyed on. Required.
	Hash string
	// Bits is the number of output cones (bit IDs 0..Bits-1). Required.
	Bits int

	// LeaseTTL is the heartbeat deadline: a lease not renewed within it
	// expires and its cones re-queue. 0 selects DefaultLeaseTTL.
	LeaseTTL time.Duration
	// MaxConesPerLease bounds the batch size of one grant. 0 selects
	// DefaultMaxCones.
	MaxConesPerLease int
	// MaxAttempts bounds how often a cone that FAILED under the governor
	// (budget/timeout/error — not expiry, not cancellation) is re-leased
	// before it is marked permanently failed. 0 selects DefaultAttempts.
	MaxAttempts int
	// BackoffBase/BackoffCap shape the capped-exponential re-queue delay
	// of expired and failed cones.
	BackoffBase, BackoffCap time.Duration
	// StealAge is the minimum age of a lease before an idle worker may
	// split off its unfinished cones. 0 selects LeaseTTL/2.
	StealAge time.Duration

	// BudgetTerms / ConeDeadline ride on every grant so remote peers
	// govern their cones identically to local workers.
	BudgetTerms  int
	ConeDeadline time.Duration

	// Store is the content-addressed result cache, shareable across pools
	// (and hence jobs). nil allocates a private one.
	Store *Store
	// Prior seeds completed cones from a restored checkpoint: StatusOK
	// entries within range are terminal before any lease is granted and
	// count into Stats().Reused.
	Prior []rewrite.BitResult
	// OnResult observes every newly terminal cone (completed, cached or
	// permanently failed) exactly once — the checkpoint hook. Not invoked
	// for Prior cones, which the caller already has. Called without the
	// pool lock held.
	OnResult func(rewrite.BitResult)

	// Recorder receives lease lifecycle events and metrics; nil disables.
	Recorder *obs.Recorder
	// Seed makes the backoff jitter deterministic; 0 selects 1.
	Seed int64
	// Clock is a test seam; nil selects time.Now.
	Clock func() time.Time
}

// Grant is one lease as handed to a worker (and the /shards/lease wire
// reply; Netlist and PoolKey are filled by the Hub for remote peers).
type Grant struct {
	Lease          string `json:"lease"`
	Epoch          uint64 `json:"epoch"`
	Hash           string `json:"hash"`
	Cones          []int  `json:"cones"`
	DeadlineUnixNS int64  `json:"deadline_unix_ns"`
	BudgetTerms    int    `json:"budget_terms,omitempty"`
	ConeDeadlineMS int64  `json:"cone_deadline_ms,omitempty"`
	// Netlist carries the canonical EQN text when the worker's Have list
	// missed Hash; empty otherwise.
	Netlist string `json:"netlist,omitempty"`
}

// SubmitReply classifies the cones of one result envelope.
type SubmitReply struct {
	Accepted  int `json:"accepted"`
	Duplicate int `json:"duplicate"` // cone already terminal; served from cache
	Fenced    int `json:"fenced"`    // stale epoch — zombie result rejected
	Failed    int `json:"failed"`    // governor-failed cone recorded (re-queued or exhausted)
}

// Stats is a snapshot of the pool's robustness counters.
type Stats struct {
	Granted   int // leases handed out
	Renewed   int // successful heartbeats
	Expired   int // leases that missed their heartbeat
	Stolen    int // leases split by work stealing
	Accepted  int // cone results accepted
	Duplicate int // duplicate submissions served from cache
	Fenced    int // zombie results rejected by the epoch fence
	Requeued  int // cone re-queues (expiry, steal, governor failure)
	Reused    int // cones seeded from Prior (checkpoint restore)
	Cached    int // cones served from the cross-job Store
	Failed    int // cones permanently failed (MaxAttempts governor failures)
	// DoubleAccepts counts results accepted for an already-terminal cone.
	// It is structurally impossible and asserted zero by the chaos
	// harness; a nonzero value means the epoch fence is broken.
	DoubleAccepts int
}

const (
	conePending = iota
	coneLeased
	coneDone
	coneFailed
)

type coneState struct {
	state     int
	epoch     uint64    // epoch of the owning lease (leased) or the accepting epoch (done)
	lease     string    // owning lease ID when leased
	failures  int       // governor failures (bounded by MaxAttempts)
	requeues  int       // expiry/steal re-queues (unbounded; drives backoff only)
	notBefore time.Time // backoff gate for re-leasing
}

type lease struct {
	id       string
	epoch    uint64
	worker   string
	cones    []int // cones still owned (submitted/stolen ones are removed)
	deadline time.Time
	granted  time.Time
}

// Pool schedules the cones of one extraction across failable workers.
type Pool struct {
	cfg Config

	mu      sync.Mutex
	cones   []coneState
	results []rewrite.BitResult // terminal results, indexed by bit
	leases  map[string]*lease
	fence   map[string]uint64 // expired/closed lease -> its dead epoch
	epoch   uint64
	open    int // cones not yet terminal
	stats   Stats
	rng     *rand.Rand
	donec   chan struct{}
	stopc   chan struct{}
	stopped bool

	met *poolMetrics
}

type poolMetrics struct {
	rec       *obs.Recorder
	granted   *obs.Counter
	renewed   *obs.Counter
	expired   *obs.Counter
	stolen    *obs.Counter
	accepted  *obs.Counter
	fenced    *obs.Counter
	duplicate *obs.Counter
	requeued  *obs.Counter
	cached    *obs.Counter
	active    *obs.Gauge
	pending   *obs.Gauge
}

func newPoolMetrics(rec *obs.Recorder) *poolMetrics {
	if rec == nil {
		return nil
	}
	m := rec.Metrics()
	return &poolMetrics{
		rec:       rec,
		granted:   m.Counter("leases_granted"),
		renewed:   m.Counter("leases_renewed"),
		expired:   m.Counter("leases_expired"),
		stolen:    m.Counter("leases_stolen"),
		accepted:  m.Counter("shard_results_accepted"),
		fenced:    m.Counter("shard_results_fenced"),
		duplicate: m.Counter("shard_results_duplicate"),
		requeued:  m.Counter("shard_cones_requeued"),
		cached:    m.Counter("shard_cones_cached"),
		active:    m.Gauge("leases_active"),
		pending:   m.Gauge("shard_cones_pending"),
	}
}

// NewPool builds the scheduler for one netlist and starts its expiry
// monitor. Close it (or drain it with Wait) when done.
func NewPool(cfg Config) (*Pool, error) {
	if cfg.Hash == "" {
		return nil, errors.New("shard: Config.Hash is required")
	}
	if cfg.Bits <= 0 {
		return nil, fmt.Errorf("shard: Config.Bits must be positive, got %d", cfg.Bits)
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.MaxConesPerLease <= 0 {
		cfg.MaxConesPerLease = DefaultMaxCones
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultAttempts
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = defaultBackoff
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = defaultBackoffCap
	}
	if cfg.StealAge <= 0 {
		cfg.StealAge = cfg.LeaseTTL / 2
	}
	if cfg.Store == nil {
		cfg.Store = NewStore(0)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	p := &Pool{
		cfg:     cfg,
		cones:   make([]coneState, cfg.Bits),
		results: make([]rewrite.BitResult, cfg.Bits),
		leases:  map[string]*lease{},
		fence:   map[string]uint64{},
		open:    cfg.Bits,
		rng:     rand.New(rand.NewSource(seed)),
		donec:   make(chan struct{}),
		stopc:   make(chan struct{}),
		met:     newPoolMetrics(cfg.Recorder),
	}

	// Seed terminal cones before any lease can be granted: checkpointed
	// results first, then the cross-job content-addressed cache.
	var seeded []rewrite.BitResult
	p.mu.Lock()
	for _, br := range cfg.Prior {
		if br.Status != rewrite.StatusOK || br.Bit < 0 || br.Bit >= cfg.Bits {
			continue
		}
		if p.cones[br.Bit].state == coneDone {
			continue
		}
		p.finishLocked(br.Bit, br, 0)
		p.stats.Reused++
		cfg.Store.Put(cfg.Hash, br.Bit, br)
	}
	for bit := 0; bit < cfg.Bits; bit++ {
		if p.cones[bit].state != conePending {
			continue
		}
		if br, ok := cfg.Store.Get(cfg.Hash, bit); ok {
			p.finishLocked(bit, br, 0)
			p.stats.Cached++
			p.met.incCached()
			seeded = append(seeded, br)
		}
	}
	p.met.setPending(int64(p.open))
	p.mu.Unlock()
	if cfg.OnResult != nil {
		for _, br := range seeded {
			cfg.OnResult(br)
		}
	}

	go p.expiryLoop()
	return p, nil
}

func (m *poolMetrics) incCached() {
	if m != nil {
		m.cached.Inc()
	}
}

func (m *poolMetrics) setPending(v int64) {
	if m != nil {
		m.pending.Set(v)
	}
}

// finishLocked marks bit terminal-done with br accepted under epoch.
func (p *Pool) finishLocked(bit int, br rewrite.BitResult, epoch uint64) {
	cs := &p.cones[bit]
	cs.state = coneDone
	cs.epoch = epoch
	cs.lease = ""
	p.results[bit] = br
	p.open--
	if p.open == 0 {
		close(p.donec)
	}
}

// failLocked marks bit permanently failed after exhausting MaxAttempts.
func (p *Pool) failLocked(bit int, br rewrite.BitResult, epoch uint64) {
	cs := &p.cones[bit]
	cs.state = coneFailed
	cs.epoch = epoch
	cs.lease = ""
	p.results[bit] = br
	p.stats.Failed++
	p.open--
	if p.open == 0 {
		close(p.donec)
	}
}

// backoffLocked computes the capped-exponential re-queue delay with jitter
// for a cone on its n-th retry (n >= 1).
func (p *Pool) backoffLocked(n int) time.Duration {
	if n < 1 {
		n = 1
	}
	d := p.cfg.BackoffBase
	for i := 1; i < n && d < p.cfg.BackoffCap; i++ {
		d *= 2
	}
	if d > p.cfg.BackoffCap {
		d = p.cfg.BackoffCap
	}
	// Jitter into [0.5d, d]: desynchronizes re-queues without ever
	// shortening the base delay below half.
	return time.Duration(float64(d) * (0.5 + 0.5*p.rng.Float64()))
}

// requeueLocked returns bit to the pending queue after expiry, steal or a
// retryable governor failure.
func (p *Pool) requeueLocked(bit int, now time.Time) {
	cs := &p.cones[bit]
	cs.state = conePending
	cs.lease = ""
	cs.requeues++
	cs.notBefore = now.Add(p.backoffLocked(cs.requeues + cs.failures))
	p.stats.Requeued++
	if p.met != nil {
		p.met.requeued.Inc()
	}
}

// Lease hands out up to max pending cones to worker. When nothing is
// pending but a straggling lease holds several cones, the tail of that
// lease is split off onto a fresh epoch (work stealing). Returns ErrDone
// when every cone is terminal and ErrNoWork when the worker should retry
// after a short sleep.
func (p *Pool) Lease(worker string, max int) (*Grant, error) {
	if max <= 0 || max > p.cfg.MaxConesPerLease {
		max = p.cfg.MaxConesPerLease
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.open == 0 {
		return nil, ErrDone
	}
	now := p.cfg.Clock()
	p.expireLocked(now)

	var batch []int
	for bit := 0; bit < p.cfg.Bits && len(batch) < max; bit++ {
		cs := &p.cones[bit]
		if cs.state == conePending && !now.Before(cs.notBefore) {
			batch = append(batch, bit)
		}
	}
	stolen := false
	if len(batch) == 0 {
		batch = p.stealLocked(now, max)
		stolen = len(batch) > 0
	}
	if len(batch) == 0 {
		return nil, ErrNoWork
	}

	p.epoch++
	l := &lease{
		id:       newLeaseID(),
		epoch:    p.epoch,
		worker:   worker,
		cones:    batch,
		deadline: now.Add(p.cfg.LeaseTTL),
		granted:  now,
	}
	p.leases[l.id] = l
	for _, bit := range batch {
		cs := &p.cones[bit]
		cs.state = coneLeased
		cs.epoch = l.epoch
		cs.lease = l.id
	}
	p.stats.Granted++
	if stolen {
		p.stats.Stolen++
	}
	p.emitLeaseLocked(l, stolen)
	return &Grant{
		Lease: l.id, Epoch: l.epoch, Hash: p.cfg.Hash,
		Cones:          append([]int(nil), batch...),
		DeadlineUnixNS: l.deadline.UnixNano(),
		BudgetTerms:    p.cfg.BudgetTerms,
		ConeDeadlineMS: p.cfg.ConeDeadline.Milliseconds(),
	}, nil
}

// emitLeaseLocked records the grant in telemetry: one lease_grant (or
// lease_steal on the thief's side) plus per-cone cone_leased events that
// drive the gftop lease heat grid.
func (p *Pool) emitLeaseLocked(l *lease, stolen bool) {
	if p.met == nil {
		return
	}
	p.met.granted.Inc()
	p.met.active.Set(int64(len(p.leases)))
	ev := obs.EvLeaseGrant
	if stolen {
		ev = obs.EvLeaseSteal
		p.met.stolen.Inc()
	}
	p.met.rec.Emit(ev, l.id, map[string]int64{
		"epoch": int64(l.epoch), "cones": int64(len(l.cones)),
	})
	for _, bit := range l.cones {
		p.met.rec.Emit(obs.EvConeLeased, l.id, map[string]int64{
			"bit": int64(bit), "epoch": int64(l.epoch),
		})
	}
}

// stealLocked splits the second half of the oldest splittable lease onto
// the caller. Only leases past StealAge with at least two cones qualify —
// a lease down to its last cone cannot be split, only expired.
func (p *Pool) stealLocked(now time.Time, max int) []int {
	var victim *lease
	for _, l := range p.leases {
		if len(l.cones) < 2 || now.Sub(l.granted) < p.cfg.StealAge {
			continue
		}
		if victim == nil || l.granted.Before(victim.granted) ||
			(l.granted.Equal(victim.granted) && l.id < victim.id) {
			victim = l
		}
	}
	if victim == nil {
		return nil
	}
	half := len(victim.cones) / 2
	if half > max {
		half = max
	}
	stolen := append([]int(nil), victim.cones[len(victim.cones)-half:]...)
	victim.cones = victim.cones[:len(victim.cones)-half]
	if p.met != nil {
		p.met.rec.Emit(obs.EvLeaseSteal, victim.id, map[string]int64{
			"epoch": int64(victim.epoch), "cones": int64(len(stolen)), "victim": 1,
		})
	}
	return stolen
}

// Renew extends the lease's heartbeat deadline. A stale epoch or an
// unknown (expired) lease gets ErrLeaseExpired — the worker must abandon
// the lease's remaining cones.
func (p *Pool) Renew(leaseID string, epoch uint64) (time.Time, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.cfg.Clock()
	p.expireLocked(now)
	l, ok := p.leases[leaseID]
	if !ok || l.epoch != epoch {
		return time.Time{}, ErrLeaseExpired
	}
	l.deadline = now.Add(p.cfg.LeaseTTL)
	p.stats.Renewed++
	if p.met != nil {
		p.met.renewed.Inc()
	}
	return l.deadline, nil
}

// Submit records a batch of packed cone results for a lease. Every cone is
// classified independently (accepted / duplicate / fenced / failed); the
// call errors only when the envelope itself is unusable or the whole lease
// is fenced. Submissions are idempotent: re-sending an accepted envelope
// yields duplicates, never double counts.
func (p *Pool) Submit(leaseID string, epoch uint64, cones []checkpoint.Cone) (SubmitReply, error) {
	var (
		reply    SubmitReply
		finished []rewrite.BitResult
	)
	p.mu.Lock()
	now := p.cfg.Clock()
	p.expireLocked(now)
	l, live := p.leases[leaseID]
	if live && l.epoch != epoch {
		live = false
	}
	// A retired lease (fully submitted or expired) keeps its epoch in the
	// fence map, so re-sent envelopes classify as duplicates, not zombies.
	knownEpoch := live || p.fence[leaseID] == epoch
	for _, c := range cones {
		if c.Bit < 0 || c.Bit >= p.cfg.Bits {
			p.mu.Unlock()
			return reply, fmt.Errorf("shard: result bit %d out of range [0,%d)", c.Bit, p.cfg.Bits)
		}
		cs := &p.cones[c.Bit]
		switch {
		case cs.state == coneDone || cs.state == coneFailed:
			// Already terminal: duplicate when the same epoch re-sends its
			// own accepted result, never a second accept.
			if knownEpoch && cs.epoch == epoch && cs.state == coneDone {
				reply.Duplicate++
				p.stats.Duplicate++
				if p.met != nil {
					p.met.duplicate.Inc()
				}
			} else {
				reply.Fenced++
				p.stats.Fenced++
				if p.met != nil {
					p.met.fenced.Inc()
				}
			}
		case !live, cs.lease != leaseID, cs.epoch != epoch:
			// Zombie: the cone moved on to another epoch (expiry or steal).
			reply.Fenced++
			p.stats.Fenced++
			if p.met != nil {
				p.met.fenced.Inc()
			}
		default:
			br, err := c.BitResult()
			if err != nil {
				p.mu.Unlock()
				return reply, fmt.Errorf("shard: bit %d: %w", c.Bit, err)
			}
			l.cones = removeCone(l.cones, c.Bit)
			if br.Status == rewrite.StatusOK {
				if cs.state == coneDone {
					p.stats.DoubleAccepts++ // unreachable; chaos asserts 0
				}
				p.finishLocked(c.Bit, br, epoch)
				p.cfg.Store.Put(p.cfg.Hash, c.Bit, br)
				reply.Accepted++
				p.stats.Accepted++
				if p.met != nil {
					p.met.accepted.Inc()
				}
				finished = append(finished, br)
			} else {
				// Governor failure: bounded retries, then the cone is data
				// for consensus extraction rather than a hang.
				reply.Failed++
				cs.failures++
				if cs.failures >= p.cfg.MaxAttempts {
					p.failLocked(c.Bit, br, epoch)
					finished = append(finished, br)
				} else {
					p.requeueLocked(c.Bit, now)
				}
			}
		}
	}
	if live && len(l.cones) == 0 {
		p.closeLeaseLocked(l)
	}
	p.met.setPending(int64(p.open))
	if p.met != nil {
		p.met.rec.Emit(obs.EvShardResult, leaseID, map[string]int64{
			"accepted": int64(reply.Accepted), "duplicate": int64(reply.Duplicate),
			"fenced": int64(reply.Fenced), "failed": int64(reply.Failed),
		})
	}
	p.mu.Unlock()

	if p.cfg.OnResult != nil {
		for _, br := range finished {
			p.cfg.OnResult(br)
		}
	}
	if !live && reply.Accepted == 0 && reply.Duplicate == 0 && len(cones) > 0 {
		return reply, ErrLeaseExpired
	}
	return reply, nil
}

func removeCone(cones []int, bit int) []int {
	for i, b := range cones {
		if b == bit {
			return append(cones[:i], cones[i+1:]...)
		}
	}
	return cones
}

// closeLeaseLocked retires a fully-submitted lease; its ID stays in the
// fence map so late duplicates classify as duplicates, not unknown leases.
func (p *Pool) closeLeaseLocked(l *lease) {
	delete(p.leases, l.id)
	p.fence[l.id] = l.epoch
	if p.met != nil {
		p.met.active.Set(int64(len(p.leases)))
	}
}

// expireLocked re-queues the cones of every lease past its heartbeat
// deadline and advances the fence.
func (p *Pool) expireLocked(now time.Time) {
	for _, l := range p.leases {
		if now.Before(l.deadline) {
			continue
		}
		for _, bit := range l.cones {
			cs := &p.cones[bit]
			if cs.state == coneLeased && cs.lease == l.id {
				p.requeueLocked(bit, now)
			}
		}
		delete(p.leases, l.id)
		p.fence[l.id] = l.epoch
		p.stats.Expired++
		if p.met != nil {
			p.met.expired.Inc()
			p.met.active.Set(int64(len(p.leases)))
			p.met.rec.Emit(obs.EvLeaseExpire, l.id, map[string]int64{
				"epoch": int64(l.epoch), "cones": int64(len(l.cones)),
			})
		}
	}
}

// LeaseLive reports whether a lease is still current (granted and neither
// fully submitted, expired, nor stolen away). The hub's per-peer circuit
// breakers use it to classify a tracked lease that disappeared without a
// successful submit as a peer failure.
func (p *Pool) LeaseLive(leaseID string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.leases[leaseID]
	return ok
}

// ExpireLease force-expires one lease immediately — the chaos harness's
// handle for "the network partitioned this worker away".
func (p *Pool) ExpireLease(leaseID string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	l, ok := p.leases[leaseID]
	if !ok {
		return false
	}
	l.deadline = p.cfg.Clock()
	p.expireLocked(l.deadline)
	return true
}

// expiryLoop drives expiry for pools whose workers stop calling in (a dead
// worker never triggers the on-demand checks).
func (p *Pool) expiryLoop() {
	tick := p.cfg.LeaseTTL / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-p.donec:
			return
		case <-p.stopc:
			return
		case <-t.C:
			p.mu.Lock()
			p.expireLocked(p.cfg.Clock())
			p.mu.Unlock()
		}
	}
}

// Wait blocks until every cone is terminal or ctx ends.
func (p *Pool) Wait(ctx context.Context) error {
	select {
	case <-p.donec:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Finished reports whether every cone reached a terminal state.
func (p *Pool) Finished() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.open == 0
}

// Close stops the expiry monitor and fences every outstanding lease — a
// closed pool (job finished, cancelled, or past its deadline) must not hold
// grants alive, and late submits against them classify as fenced. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return
	}
	p.stopped = true
	close(p.stopc)
	for _, l := range p.leases {
		delete(p.leases, l.id)
		p.fence[l.id] = l.epoch
	}
	if p.met != nil {
		p.met.active.Set(0)
	}
}

// Stats snapshots the robustness counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Result assembles the per-bit outcomes into a rewrite.Result. Cones still
// pending (Wait cancelled) come back as cancelled bits, so the consensus
// path can vote over whatever completed.
func (p *Pool) Result() *rewrite.Result {
	p.mu.Lock()
	defer p.mu.Unlock()
	rw := &rewrite.Result{
		Bits:   make([]rewrite.BitResult, p.cfg.Bits),
		Reused: p.stats.Reused + p.stats.Cached,
	}
	for bit := 0; bit < p.cfg.Bits; bit++ {
		switch p.cones[bit].state {
		case coneDone, coneFailed:
			rw.Bits[bit] = p.results[bit]
		default:
			rw.Bits[bit] = rewrite.BitResult{
				BitStats: rewrite.BitStats{Bit: bit},
				Status:   rewrite.StatusCancelled,
				Err:      "shard: cone never completed",
			}
		}
		if rw.Bits[bit].Status.Failed() {
			rw.Failed = append(rw.Failed, bit)
		}
	}
	sort.Ints(rw.Failed)
	return rw
}
