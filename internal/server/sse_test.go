package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/galoisfield/gfre/internal/obs"
)

// sseFrame is one parsed Server-Sent Event.
type sseFrame struct {
	ID      uint64
	Event   string // "" = default "message"
	Data    string
	Comment bool // a bare ": hb" keep-alive
}

// readFrame parses the next SSE frame off the stream; io.EOF when the server
// closed it.
func readFrame(br *bufio.Reader) (sseFrame, error) {
	f := sseFrame{}
	seen := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return f, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			if seen {
				return f, nil
			}
			continue
		}
		seen = true
		switch {
		case strings.HasPrefix(line, ":"):
			f.Comment = true
		case strings.HasPrefix(line, "id: "):
			f.ID, _ = strconv.ParseUint(line[4:], 10, 64)
		case strings.HasPrefix(line, "event: "):
			f.Event = line[7:]
		case strings.HasPrefix(line, "data: "):
			f.Data = line[6:]
		}
	}
}

// openStream GETs an SSE endpoint with optional Last-Event-ID.
func openStream(t *testing.T, ctx context.Context, url, lastID string) (*http.Response, *bufio.Reader) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	return resp, bufio.NewReader(resp.Body)
}

func submitJob(t *testing.T, ts *httptest.Server, body string) *JobState {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	return decodeState(t, resp)
}

// TestSSEJobStreamLifecycle: a fresh per-job stream opens with a snapshot
// frame, carries the job's telemetry (including the per-bit rewriting flow)
// with journal sequence numbers as SSE ids, and closes itself at job_done.
func TestSSEJobStreamLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := submitJob(t, ts, eqnText(t, 8))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, br := openStream(t, ctx, ts.URL+"/jobs/"+st.ID+"/events", "")
	defer resp.Body.Close()

	first, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if first.Event != "snapshot" {
		t.Fatalf("first frame %+v, want snapshot", first)
	}
	snap := &JobState{}
	if err := json.Unmarshal([]byte(first.Data), snap); err != nil || snap.ID != st.ID {
		t.Fatalf("snapshot payload %q: %v", first.Data, err)
	}

	var evs []string
	var lastID uint64
	sawBits := false
	for {
		f, err := readFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if f.Comment {
			continue
		}
		var e obs.Event
		if err := json.Unmarshal([]byte(f.Data), &e); err != nil {
			t.Fatalf("bad event payload %q: %v", f.Data, err)
		}
		if e.Job != st.ID {
			t.Fatalf("foreign job event leaked into per-job stream: %+v", e)
		}
		if f.ID != 0 {
			if f.ID <= lastID {
				t.Fatalf("SSE ids not increasing: %d after %d", f.ID, lastID)
			}
			lastID = f.ID
		}
		if e.Ev == obs.EvBitFinish {
			sawBits = true
		}
		evs = append(evs, e.Ev)
	}
	// Stream must have closed at the terminal event.
	if len(evs) == 0 || evs[len(evs)-1] != "job_done" {
		t.Fatalf("stream events %v, want job_done last", evs)
	}
	if !sawBits {
		t.Fatalf("per-job stream carried no bit_finish telemetry: %v", evs)
	}
}

// TestSSEResumeWithLastEventID: a reconnecting client with a valid cursor
// gets no snapshot and resumes exactly after its last seq.
func TestSSEResumeWithLastEventID(t *testing.T) {
	q, ts := newTestServer(t, Config{})
	st := submitJob(t, ts, eqnText(t, 8))
	pollDone(t, ts, st.ID)

	j := q.Journal()
	cursor := j.LastSeq() - 3 // client saw everything but the last 3 events

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, br := openStream(t, ctx, ts.URL+"/jobs/"+st.ID+"/events", strconv.FormatUint(cursor, 10))
	defer resp.Body.Close()

	want := cursor
	for {
		f, err := readFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if f.Event == "snapshot" {
			t.Fatal("valid cursor got a snapshot frame")
		}
		if f.Comment || f.ID == 0 {
			continue
		}
		if f.ID <= want {
			t.Fatalf("replayed id %d not after cursor %d", f.ID, want)
		}
		want = f.ID
	}
	if want == cursor {
		t.Fatal("resume delivered nothing")
	}
}

// TestSSESnapshotOnTruncatedCursor: a cursor that has fallen off the bounded
// journal cannot be caught up event-by-event — the server must say so with a
// snapshot frame, then resume from the oldest retained event.
func TestSSESnapshotOnTruncatedCursor(t *testing.T) {
	q, ts := newTestServer(t, Config{Journal: obs.NewJournal(4)})
	st := submitJob(t, ts, eqnText(t, 8))
	pollDone(t, ts, st.ID)

	j := q.Journal()
	if j.OldestSeq() <= 2 {
		t.Fatalf("journal did not evict (oldest %d); test needs a stale cursor", j.OldestSeq())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, br := openStream(t, ctx, ts.URL+"/jobs/"+st.ID+"/events", "1")
	defer resp.Body.Close()

	first, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if first.Event != "snapshot" {
		t.Fatalf("truncated cursor: first frame %+v, want snapshot", first)
	}
	snap := &JobState{}
	if err := json.Unmarshal([]byte(first.Data), snap); err != nil || snap.Status != StatusDone {
		t.Fatalf("snapshot payload %q: %v", first.Data, err)
	}
	// Whatever follows must come from the retained window only, and the
	// stream still terminates (synthetic terminal frame if job_done itself
	// was evicted).
	sawEnd := false
	for {
		f, err := readFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if f.ID != 0 && f.ID < j.OldestSeq() {
			t.Fatalf("frame id %d older than retention %d", f.ID, j.OldestSeq())
		}
		if strings.Contains(f.Data, `"job_done"`) {
			sawEnd = true
		}
	}
	if !sawEnd {
		t.Fatal("stream ended without a terminal job_done frame")
	}
}

// TestSSEClientDisconnectReleasesSubscription: closing the client side must
// tear the handler down and deregister its journal subscription.
func TestSSEClientDisconnectReleasesSubscription(t *testing.T) {
	q, ts := newTestServer(t, Config{})

	ctx, cancel := context.WithCancel(context.Background())
	resp, br := openStream(t, ctx, ts.URL+"/events", "")
	defer resp.Body.Close()
	if _, err := readFrame(br); err != nil { // the connect snapshot
		t.Fatal(err)
	}
	if n := q.Journal().Subscribers(); n != 1 {
		t.Fatalf("subscribers while connected: %d", n)
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for q.Journal().Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription not released after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSSEDrainClosesStream: draining the queue ends the global stream after
// the buffered terminal events are delivered.
func TestSSEDrainClosesStream(t *testing.T) {
	q, ts := newTestServer(t, Config{})
	st := submitJob(t, ts, eqnText(t, 8))
	pollDone(t, ts, st.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	resp, br := openStream(t, ctx, ts.URL+"/events", "")
	defer resp.Body.Close()

	go q.Drain(5 * time.Second)

	sawDone := false
	for {
		f, err := readFrame(br)
		if err == io.EOF {
			break // server closed the stream — the drain-safe shutdown
		}
		if err != nil {
			t.Fatalf("stream did not close on drain: %v", err)
		}
		if strings.Contains(f.Data, `"job_done"`) {
			sawDone = true
		}
	}
	if !sawDone {
		t.Fatal("drained stream never carried the job_done event")
	}
}

// TestSSEHeartbeat: an idle stream stays alive via comment frames.
func TestSSEHeartbeat(t *testing.T) {
	cfg := Config{Dir: t.TempDir(), RetrySeed: 1, Recorder: obs.NewRecorder()}
	q, err := NewQueue(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(q, cfg.Recorder)
	srv.heartbeat = 20 * time.Millisecond
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); q.Drain(time.Second) })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, br := openStream(t, ctx, ts.URL+"/events", "")
	defer resp.Body.Close()
	for {
		f, err := readFrame(br)
		if err != nil {
			t.Fatalf("no heartbeat before error: %v", err)
		}
		if f.Comment {
			return // keep-alive observed
		}
	}
}

// TestHTTPMetricsPrometheus: Accept: text/plain flips /metrics into valid
// Prometheus text format 0.0.4 that our own parser accepts, while the
// default stays JSON (covered by TestHTTPMetricsSnapshot).
func TestHTTPMetricsPrometheus(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := submitJob(t, ts, eqnText(t, 8))
	pollDone(t, ts, st.ID)

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type %q", ct)
	}
	fams, err := obs.ParsePrometheusText(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	for _, want := range []string{
		"gfre_jobs_submitted_total", "gfre_jobs_done_total",
		"gfre_queue_depth", "gfre_substitutions_total", "gfre_peak_terms",
	} {
		if fams[want] == nil {
			t.Errorf("exposition lacks %s", want)
		}
	}
}

// TestSSELiveDashboardServed: /debug/live returns the embedded page wired to
// the event stream.
func TestSSELiveDashboardServed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/debug/live")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "EventSource") {
		t.Fatal("dashboard page lacks the EventSource wiring")
	}
}
