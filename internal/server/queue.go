package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/galoisfield/gfre/internal/checkpoint"
	"github.com/galoisfield/gfre/internal/extract"
	"github.com/galoisfield/gfre/internal/netlint"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/obs"
	"github.com/galoisfield/gfre/internal/shard"
)

// Queue failure classes; test with errors.Is.
var (
	// ErrQueueFull means the bounded queue is at capacity — the client
	// should shed load and retry later (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("server: queue full")
	// ErrDraining means the daemon is shutting down and no longer accepts
	// jobs (HTTP 503).
	ErrDraining = errors.New("server: draining")
	// ErrUnknownJob means no job with that ID exists in the spool.
	ErrUnknownJob = errors.New("server: unknown job")
	// ErrBadSpec tags submissions the queue refuses outright (empty or
	// unparseable netlist, unknown format) — these never enter the spool.
	ErrBadSpec = errors.New("server: bad job spec")
	// ErrDeadlineExceeded marks jobs whose wall-clock deadline expired
	// before they could finish; they fail permanently (retrying cannot beat
	// an absolute deadline).
	ErrDeadlineExceeded = errors.New("server: job deadline exceeded")
)

// LintRejection is returned by Submit when the preflight static analysis
// finds error-level defects in the uploaded netlist. It matches errors.Is
// for both ErrBadSpec (the job never entered the spool) and
// netlint.ErrFindings; the HTTP layer maps it to 422 with the findings in
// the response body so the client can see the cycle witness or the
// offending signals instead of a bare status line.
type LintRejection struct {
	Report *netlint.Report
}

func (e *LintRejection) Error() string {
	counts := e.Report.Counts()
	return fmt.Sprintf("server: netlist failed preflight lint with %d error finding(s)", counts[netlint.SevError])
}

func (e *LintRejection) Unwrap() []error { return []error{ErrBadSpec, netlint.ErrFindings} }

// Config parameterizes a Queue.
type Config struct {
	// Dir is the spool directory (created if missing).
	Dir string
	// Capacity bounds queued + running + backing-off jobs; submissions
	// beyond it are rejected with ErrQueueFull. Default 64.
	Capacity int
	// Workers is the number of concurrent extractions. Default 1 — cone
	// rewriting is already parallel inside a job.
	Workers int
	// MaxAttempts is the default per-job attempt bound (spec override
	// wins). Default 3.
	MaxAttempts int
	// RetryBase/RetryCap shape the exponential backoff between attempts.
	// Defaults 1s / 2m.
	RetryBase, RetryCap time.Duration
	// CheckpointThrottle is passed to each job's checkpoint manager
	// (0 saves on every cone; <0 selects the package default).
	CheckpointThrottle time.Duration
	// Recorder receives queue metrics (jobs_* counters, queue_depth and
	// jobs_running gauges) and per-job telemetry. nil creates a fresh one —
	// the queue always records, because the SSE event stream and the live
	// dashboard are fed from it.
	Recorder *obs.Recorder
	// Journal is the bounded event buffer backing SSE replay. nil creates
	// one with obs.DefaultJournalCapacity. NewQueue attaches it to the
	// recorder itself; callers must NOT AttachSink the same journal, or
	// every event is delivered twice.
	Journal *obs.Journal
	// RetrySeed seeds the backoff jitter (0 = wall clock).
	RetrySeed int64
	// Hub, when non-nil, exposes sharded jobs' cone leases to remote gfred
	// peers over the /shards endpoints. Jobs with JobSpec.Shard == 0 never
	// touch it.
	Hub *shard.Hub
	// ShardLeaseTTL is the heartbeat deadline for sharded jobs' leases
	// (0 = shard.DefaultLeaseTTL).
	ShardLeaseTTL time.Duration
	// Policy is the tenant admission policy (zero value: one unlimited
	// default tenant).
	Policy TenantPolicy
	// AgingStep is the dispatcher's starvation-aging interval: a queued
	// job's effective priority improves one class per step waited
	// (0 = DefaultAgingStep).
	AgingStep time.Duration
	// Shed parameterizes the staged load-shed controller.
	Shed ShedConfig
}

type jobEntry struct {
	state *JobState
	// retryTimer re-enqueues a backed-off job; stopped on drain.
	retryTimer *time.Timer
	// bytes is the netlist size charged against the tenant's queued-bytes
	// quota until the job is terminal.
	bytes int64
	// dedupKey indexes q.dedup while this job leads a dedup group.
	dedupKey string
}

// Queue is a bounded durable job queue: every accepted job is on disk
// before Submit returns, and the spool replays across daemon restarts.
type Queue struct {
	cfg     Config
	rec     *obs.Recorder
	journal *obs.Journal

	runCtx    context.Context // cancelled to abort in-flight extractions
	cancelRun context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*jobEntry
	draining bool
	rng      *rand.Rand
	seq      uint64 // next enqueue sequence (persisted per job for replay order)

	// sched is the weighted-fair priority dispatcher feeding the workers.
	sched *dispatcher
	// tenants holds per-tenant admission state (token buckets, counters).
	tenants map[string]*tenantState
	// shed is the staged overload controller.
	shed *shedder
	// dedup maps content-hash keys to in-flight leader job IDs; followers
	// of each leader wait in dedupWaiters until the leader is terminal.
	dedup       map[string]string
	dedupWaiter map[string][]string

	// shardStore is the cross-job content-addressed cone cache: a resubmitted
	// netlist (same content hash) reuses every completed cone outright.
	shardStore *shard.Store

	wg   sync.WaitGroup
	done chan struct{} // closed when Drain has fully finished
}

// NewQueue creates the spool directory, replays any jobs a previous daemon
// left behind, and starts the worker pool.
func NewQueue(cfg Config) (*Queue, error) {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = time.Second
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = 2 * time.Minute
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	seed := cfg.RetrySeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	// The observability plane is always on: a recorder feeds metrics and the
	// journal buffers the event stream for SSE replay. An explicit Journal
	// (or one already adopted by the caller's recorder) is respected;
	// otherwise a default-capacity one is created and attached here.
	if cfg.Recorder == nil {
		cfg.Recorder = obs.NewRecorder()
	}
	if cfg.Journal == nil {
		cfg.Journal = cfg.Recorder.Journal()
	}
	if cfg.Journal == nil {
		cfg.Journal = obs.NewJournal(0)
	}
	if cfg.Recorder.Journal() != cfg.Journal {
		cfg.Recorder.AttachSink(cfg.Journal)
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		cfg:         cfg,
		rec:         cfg.Recorder,
		journal:     cfg.Journal,
		runCtx:      ctx,
		cancelRun:   cancel,
		jobs:        make(map[string]*jobEntry),
		rng:         rand.New(rand.NewSource(seed)),
		done:        make(chan struct{}),
		shardStore:  shard.NewStore(0),
		seq:         1,
		sched:       newDispatcher(cfg.AgingStep, nil),
		tenants:     make(map[string]*tenantState),
		shed:        newShedder(cfg.Shed),
		dedup:       make(map[string]string),
		dedupWaiter: make(map[string][]string),
	}
	spooled, err := listSpool(cfg.Dir)
	if err != nil {
		cancel()
		return nil, err
	}
	if err := q.recover(spooled); err != nil {
		cancel()
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q, nil
}

// recover replays the spool: terminal jobs are kept for status queries,
// interrupted ones (queued, running, or mid-backoff when the daemon died)
// are re-enqueued — a job that was running resumes from its checkpoint.
// Live jobs re-enqueue in their original enqueue-sequence order (not
// directory-scan order), so a restart never reorders a tenant's pipeline;
// dedup groups re-link, and followers of an already-finished leader
// complete immediately.
func (q *Queue) recover(ids []string) error {
	now := time.Now()
	var live []*jobEntry
	for _, id := range ids {
		st, err := loadState(q.cfg.Dir, id)
		if errors.Is(err, os.ErrNotExist) {
			// Crashed between spec and state write: the job was never
			// acknowledged, but the spec is durable — adopt it.
			st = &JobState{ID: id, Status: StatusQueued,
				MaxAttempts: q.cfg.MaxAttempts, SubmittedUnixNS: now.UnixNano()}
		} else if err != nil {
			// Quarantine: skip the damaged entry (leaving its files for the
			// operator) and keep replaying the rest of the spool — one
			// truncated state file must not cost the healthy jobs around it.
			q.counter("spool_corrupt").Inc()
			q.emit("spool_corrupt", id, nil)
			continue
		}
		entry := &jobEntry{state: st}
		q.jobs[id] = entry
		if st.Seq >= q.seq {
			q.seq = st.Seq + 1
		}
		if st.Status.Terminal() {
			continue
		}
		live = append(live, entry)
	}
	// Original admission order: by persisted sequence, falling back to
	// submission time for pre-sequence spools.
	sort.Slice(live, func(i, j int) bool {
		a, b := live[i].state, live[j].state
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.SubmittedUnixNS != b.SubmittedUnixNS {
			return a.SubmittedUnixNS < b.SubmittedUnixNS
		}
		return a.ID < b.ID
	})
	var fanout []*jobEntry
	for _, entry := range live {
		st := entry.state
		if st.Seq == 0 {
			st.Seq = q.seq
			q.seq++
		}
		st.Tenant = normalizeTenant(st.Tenant)
		st.Priority = clampPriority(st.Priority, DefaultPriority)
		spec, specErr := loadSpec(q.cfg.Dir, st.ID)
		if specErr == nil {
			entry.bytes = int64(len(spec.Netlist))
		}
		ts := q.tenantLocked(st.Tenant)
		ts.active++
		ts.queuedBytes += entry.bytes
		q.counter("jobs_recovered").Inc()
		q.gauge("queue_depth").Add(1)

		if st.DedupOf != "" {
			// Follower: re-attach to its leader if the leader is still
			// live; complete from the leader's result if it already
			// finished; run standalone if the leader is gone.
			if le, ok := q.jobs[st.DedupOf]; ok && !le.state.Status.Terminal() {
				q.dedupWaiter[st.DedupOf] = append(q.dedupWaiter[st.DedupOf], st.ID)
				continue
			} else if ok && le.state.Status.Terminal() {
				fanout = append(fanout, entry)
				continue
			}
			st.DedupOf = ""
			saveState(q.cfg.Dir, st) //nolint:errcheck — re-saved on next transition
		}
		if specErr == nil && spec.Dedup {
			key := dedupKey(spec)
			if _, taken := q.dedup[key]; !taken {
				q.dedup[key] = st.ID
				entry.dedupKey = key
			}
		}
		if st.Status == StatusRunning {
			// Interrupted mid-extraction; its checkpoint directory holds the
			// completed cones and the resumed run reuses them.
			st.Status = StatusQueued
			saveState(q.cfg.Dir, st) //nolint:errcheck — re-saved on next transition
		}
		if wait := time.Until(time.Unix(0, st.NextRetryUnixNS)); st.NextRetryUnixNS > 0 && wait > 0 {
			q.scheduleRetryLocked(entry, wait)
		} else {
			q.pushLocked(st)
		}
	}
	for _, entry := range fanout {
		leader := q.jobs[entry.state.DedupOf].state
		q.completeFollowerLocked(entry, leader)
	}
	q.updateShedLocked()
	return nil
}

// normalizeTenant maps empty or invalid names to DefaultTenant; Submit
// validates eagerly, this guards replayed spools.
func normalizeTenant(t string) string {
	if t == "" || !validTenantName(t) {
		return DefaultTenant
	}
	return t
}

// pushLocked hands a queued job to the dispatcher under its tenant's
// scheduling parameters; the caller holds q.mu.
func (q *Queue) pushLocked(st *JobState) {
	quota := q.cfg.Policy.Quota(st.Tenant)
	q.sched.Push(schedEntry{
		id: st.ID, tenant: st.Tenant, priority: st.Priority, seq: st.Seq,
	}, quota.Weight, quota.MaxRunning)
}

// Submit validates, persists and enqueues a job. The spec is on disk before
// Submit returns — an accepted job survives any subsequent crash.
//
// Admission applies, in order: lint preflight, drain state, the staged
// load-shed controller, queue capacity, then the tenant's token-bucket and
// resource quotas. With JobSpec.Dedup set, an identical in-flight
// submission turns this job into a follower of that leader: accepted and
// durable, but it never runs — it completes when the leader does (or
// instantly, when the leader already succeeded).
func (q *Queue) Submit(spec *JobSpec) (*JobState, error) {
	if strings.TrimSpace(spec.Netlist) == "" {
		return nil, fmt.Errorf("%w: empty netlist", ErrBadSpec)
	}
	switch spec.Format {
	case "", "eqn", "blif", "verilog":
	default:
		return nil, fmt.Errorf("%w: unknown netlist format %q", ErrBadSpec, spec.Format)
	}
	tenant := spec.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	if !validTenantName(tenant) {
		return nil, fmt.Errorf("%w: invalid tenant name %q", ErrBadSpec, spec.Tenant)
	}
	if spec.DeadlineMS < 0 {
		return nil, fmt.Errorf("%w: negative deadline_ms", ErrBadSpec)
	}
	if spec.Priority < 0 || spec.Priority > numPriorities {
		return nil, fmt.Errorf("%w: priority %d out of range 1..%d", ErrBadSpec, spec.Priority, numPriorities)
	}
	// Lint eagerly so defective uploads fail the submission (HTTP 422 with
	// the findings in the body), not the first extraction attempt. The
	// source-level rules diagnose cycles and multi-driven signals with line
	// numbers the parser's own errors lack, and a clean report implies the
	// netlist parses — AnalyzeSource runs the real reader on clean source.
	format := spec.Format
	if format == "" {
		format = "eqn"
	}
	name := spec.Name
	if name == "" {
		name = "submit"
	}
	rep := netlint.AnalyzeSource([]byte(spec.Netlist), name, format, netlint.Options{RequireMultiplier: true})
	if rep.HasErrors() {
		return nil, &LintRejection{Report: rep}
	}

	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		q.counter("jobs_rejected").Inc()
		return nil, ErrDraining
	}
	quota := q.cfg.Policy.Quota(tenant)
	priority := clampPriority(spec.Priority, clampPriority(quota.Priority, DefaultPriority))
	// A hard-full queue is ErrQueueFull regardless of shed stage; the staged
	// controller owns the soft watermarks below capacity.
	if q.activeLocked() >= q.cfg.Capacity {
		q.counter("jobs_rejected").Inc()
		q.tenantLocked(tenant).rejected++
		q.updateShedLocked()
		return nil, ErrQueueFull
	}
	// Overload next: a shedding queue rejects before any quota is charged.
	if stage := q.updateShedLocked(); stage > 0 {
		if err := q.shed.admitStage(stage, spec, priority); err != nil {
			q.counter("jobs_rejected").Inc()
			q.counter("jobs_shed").Inc()
			q.tenantLocked(tenant).rejected++
			return nil, err
		}
	}
	now := time.Now()
	size := int64(len(spec.Netlist))
	ts := q.tenantLocked(tenant)
	if err := ts.admit(now, size); err != nil {
		q.counter("jobs_rejected").Inc()
		q.counter("jobs_quota_rejected").Inc()
		q.tenantCounter("tenant_rejected", tenant).Inc()
		return nil, err
	}
	// Admitted: any failure past this point must return the charge.
	id, err := newJobID()
	if err != nil {
		ts.release(size)
		return nil, err
	}
	maxAttempts := spec.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = q.cfg.MaxAttempts
	}
	st := &JobState{
		ID: id, Name: spec.Name, Status: StatusQueued,
		MaxAttempts: maxAttempts, SubmittedUnixNS: now.UnixNano(),
		Tenant: tenant, Priority: priority, Seq: q.seq,
	}
	if spec.DeadlineMS > 0 {
		st.DeadlineUnixNS = now.Add(time.Duration(spec.DeadlineMS) * time.Millisecond).UnixNano()
	}
	// Dedup: an identical in-flight submission makes this job a follower; a
	// leader that already succeeded completes the follower instantly from
	// its result (a failed leader is forgotten, so identical content can be
	// retried fresh).
	var key, leaderID string
	var doneLeader *JobState
	if spec.Dedup {
		key = dedupKey(spec)
		if lid, ok := q.dedup[key]; ok {
			if le, live := q.jobs[lid]; live {
				switch {
				case !le.state.Status.Terminal():
					leaderID = lid
					st.DedupOf = lid
				case le.state.Status == StatusDone:
					doneLeader = le.state
					st.DedupOf = lid
				}
			}
		}
	}
	// Durability order: spec first, then state, then the in-memory enqueue.
	sp := *spec
	sp.Tenant = tenant
	if err := saveSpec(q.cfg.Dir, id, &sp); err != nil {
		ts.release(size)
		return nil, err
	}
	if err := saveState(q.cfg.Dir, st); err != nil {
		ts.release(size)
		return nil, err
	}
	q.seq++
	entry := &jobEntry{state: st, bytes: size}
	q.jobs[id] = entry
	switch {
	case doneLeader != nil:
		q.counter("jobs_deduped").Inc()
		q.completeFollowerLocked(entry, doneLeader)
	case leaderID != "":
		q.dedupWaiter[leaderID] = append(q.dedupWaiter[leaderID], id)
		q.counter("jobs_deduped").Inc()
	default:
		if key != "" {
			q.dedup[key] = id
			entry.dedupKey = key
		}
		q.pushLocked(st)
	}
	q.counter("jobs_submitted").Inc()
	q.tenantCounter("tenant_submitted", tenant).Inc()
	q.gauge("queue_depth").Add(1)
	q.updateShedLocked()
	q.rec.EmitJob(id, "job_submitted", tenant, map[string]int64{
		"priority": int64(priority), "seq": int64(st.Seq),
	})
	cp := *st
	return &cp, nil
}

// BatchItem is one outcome of SubmitBatch, positionally matching the input.
type BatchItem struct {
	State *JobState
	Err   error
}

// SubmitBatch admits specs as one batch with content-hash dedup forced: N
// identical submissions admit a single extraction, whose result fans out
// to every accepted job when the leader finishes. Outcomes are per-item —
// one rejection (quota, capacity, lint) does not fail the rest.
func (q *Queue) SubmitBatch(specs []*JobSpec) []BatchItem {
	out := make([]BatchItem, len(specs))
	for i, spec := range specs {
		sp := *spec
		sp.Dedup = true
		st, err := q.Submit(&sp)
		out[i] = BatchItem{State: st, Err: err}
	}
	return out
}

// Get returns a copy of the job's current state.
func (q *Queue) Get(id string) (*JobState, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	entry, ok := q.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	cp := *entry.state
	return &cp, nil
}

// List returns a copy of every known job state, newest first.
func (q *Queue) List() []*JobState {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*JobState, 0, len(q.jobs))
	for _, e := range q.jobs {
		cp := *e.state
		out = append(out, &cp)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].SubmittedUnixNS > out[j-1].SubmittedUnixNS; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Active counts the jobs not yet in a terminal state.
func (q *Queue) Active() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.activeLocked()
}

func (q *Queue) activeLocked() int {
	n := 0
	for _, e := range q.jobs {
		if !e.state.Status.Terminal() {
			n++
		}
	}
	return n
}

// Draining reports whether the queue has stopped accepting jobs.
func (q *Queue) Draining() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.draining
}

// Drain shuts the queue down gracefully: intake stops immediately, then
// in-flight and queued jobs get up to grace to finish; whatever is still
// unfinished is cancelled cooperatively — the governed cancellation path
// syncs each job's checkpoint, so the next daemon start resumes it.
// Idempotent: a repeated Drain (second SIGTERM) just waits for the first.
func (q *Queue) Drain(grace time.Duration) {
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.draining = true
	for _, e := range q.jobs {
		// Backed-off retries won't get to run; hand them to the next start.
		if e.retryTimer != nil {
			e.retryTimer.Stop()
			e.retryTimer = nil
		}
	}
	q.mu.Unlock()
	q.emit("drain_begin", "", map[string]int64{"grace_ms": grace.Milliseconds()})

	deadline := time.Now().Add(grace)
	for q.Active() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	q.cancelRun()
	q.sched.Close()
	q.wg.Wait()
	q.emit("drain_end", "", map[string]int64{"active_left": int64(q.Active())})
	close(q.done)
}

// Done returns a channel closed once Drain has fully finished — the signal
// event-stream handlers use to end their streams instead of holding client
// connections open across shutdown.
func (q *Queue) Done() <-chan struct{} { return q.done }

// Journal returns the bounded event buffer the queue's telemetry flows
// through; SSE handlers subscribe and replay from it.
func (q *Queue) Journal() *obs.Journal { return q.journal }

// Recorder returns the queue's recorder (never nil once NewQueue returns).
func (q *Queue) Recorder() *obs.Recorder { return q.rec }

// Hub returns the shard hub remote peers lease cones from (nil when the
// daemon runs without one).
func (q *Queue) Hub() *shard.Hub { return q.cfg.Hub }

// RetryAfterHint estimates how long a client rejected with ErrQueueFull
// should wait before resubmitting, from the actual queue state: if every
// active job is parked in retry backoff, nothing can finish before the
// earliest backoff expires, so that expiry (plus a grace second) is the
// honest hint; otherwise jobs are actively draining and the hint scales
// with how many must finish per worker before a slot frees.
func (q *Queue) RetryAfterHint() time.Duration {
	const (
		floor = time.Second
		ceil  = 5 * time.Minute
	)
	q.mu.Lock()
	defer q.mu.Unlock()
	now := time.Now()
	active, parked := 0, 0
	var earliest time.Duration = -1
	for _, e := range q.jobs {
		st := e.state
		if st.Status.Terminal() {
			continue
		}
		active++
		if st.Status == StatusQueued && st.NextRetryUnixNS > 0 {
			if wait := time.Unix(0, st.NextRetryUnixNS).Sub(now); wait > 0 {
				parked++
				if earliest < 0 || wait < earliest {
					earliest = wait
				}
			}
		}
	}
	var hint time.Duration
	switch {
	case active == 0:
		hint = floor
	case parked == active && earliest > 0:
		hint = earliest + floor
	default:
		perWorker := (active - parked + q.cfg.Workers - 1) / q.cfg.Workers
		hint = floor * time.Duration(perWorker)
	}
	if hint < floor {
		hint = floor
	}
	if hint > ceil {
		hint = ceil
	}
	return hint
}

// worker pulls dispatched jobs until the queue closes. The dispatcher
// charges the popped entry's tenant a running slot; it is returned here no
// matter how the attempt ends.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		e, ok := q.sched.Next()
		if !ok {
			return
		}
		if q.runCtx.Err() == nil {
			q.runJob(e.id)
		}
		// Drained mid-loop: the job stays queued for the next start.
		q.sched.Release(e.tenant)
	}
}

// scheduleRetryLocked arms the re-enqueue timer for a backed-off job; the
// caller holds q.mu.
func (q *Queue) scheduleRetryLocked(entry *jobEntry, wait time.Duration) {
	entry.retryTimer = time.AfterFunc(wait, func() {
		q.mu.Lock()
		defer q.mu.Unlock()
		if q.draining || entry.retryTimer == nil {
			return
		}
		entry.retryTimer = nil
		q.pushLocked(entry.state)
	})
}

// runJob executes one attempt of one job.
func (q *Queue) runJob(id string) {
	q.mu.Lock()
	entry, ok := q.jobs[id]
	if !ok || entry.state.Status != StatusQueued {
		q.mu.Unlock()
		return
	}
	st := entry.state
	if st.DeadlineUnixNS > 0 && time.Now().UnixNano() >= st.DeadlineUnixNS {
		// Expired while queued: fail without burning a worker on it.
		st.Status = StatusFailed
		st.Error = ErrDeadlineExceeded.Error()
		st.FinishedUnixNS = time.Now().UnixNano()
		q.counter("jobs_deadline_expired").Inc()
		q.finishAccountingLocked(entry, StatusFailed)
		q.settleDedupLocked(entry)
		q.updateShedLocked()
		saveState(q.cfg.Dir, st) //nolint:errcheck — terminal state, best effort
		q.emit("job_failed", id, map[string]int64{"attempt": 0, "deadline": 1})
		q.mu.Unlock()
		return
	}
	st.Status = StatusRunning
	st.Attempts++
	st.StartedUnixNS = time.Now().UnixNano()
	st.NextRetryUnixNS = 0
	saveState(q.cfg.Dir, st) //nolint:errcheck — worst case the attempt repeats
	q.gauge("jobs_running").Add(1)
	q.counter("extractions_started").Inc()
	deadlineNS := st.DeadlineUnixNS
	q.mu.Unlock()
	q.emit("job_start", id, map[string]int64{"attempt": int64(st.Attempts)})

	result, err := q.extract(id, deadlineNS)

	q.mu.Lock()
	defer q.mu.Unlock()
	q.gauge("jobs_running").Add(-1)
	now := time.Now()
	deadlineHit := err != nil && deadlineNS > 0 &&
		(errors.Is(err, context.DeadlineExceeded) || now.UnixNano() >= deadlineNS)
	switch {
	case err == nil:
		st.Status = StatusDone
		st.Result = result
		st.Error = ""
		st.FinishedUnixNS = now.UnixNano()
		q.finishAccountingLocked(entry, StatusDone)
		q.emit("job_done", id, map[string]int64{"attempt": int64(st.Attempts)})

	case q.runCtx.Err() != nil:
		// Drain cancelled the attempt, not the job: back to queued so the
		// next daemon start resumes from the synced checkpoint. The attempt
		// is not charged against the budget.
		st.Status = StatusQueued
		st.Attempts--
		q.emit("job_interrupted", id, nil)

	case deadlineHit:
		// The job's own deadline expired mid-extraction: the governed
		// context already cancelled the rewrite (and released shard leases
		// via pool shutdown); no retry can beat an absolute deadline.
		st.Status = StatusFailed
		st.Error = ErrDeadlineExceeded.Error() + ": " + err.Error()
		st.FinishedUnixNS = now.UnixNano()
		q.counter("jobs_deadline_expired").Inc()
		q.finishAccountingLocked(entry, StatusFailed)
		q.emit("job_failed", id, map[string]int64{"attempt": int64(st.Attempts), "deadline": 1})

	case permanentError(err) || st.Attempts >= st.MaxAttempts:
		st.Status = StatusFailed
		st.Error = err.Error()
		st.FinishedUnixNS = now.UnixNano()
		q.finishAccountingLocked(entry, StatusFailed)
		q.emit("job_failed", id, map[string]int64{"attempt": int64(st.Attempts)})

	default:
		// Retryable: exponential backoff with jitter. A corrupt checkpoint
		// is retryable exactly once the snapshot is wiped — re-running on
		// top of it would fail identically forever.
		if errors.Is(err, checkpoint.ErrCheckpoint) {
			os.RemoveAll(q.ckptDir(id)) //nolint:errcheck — next attempt starts cold either way
		}
		wait := backoff(q.cfg.RetryBase, q.cfg.RetryCap, st.Attempts, q.rng.Float64())
		st.Status = StatusQueued
		st.Error = err.Error()
		st.NextRetryUnixNS = now.Add(wait).UnixNano()
		q.counter("jobs_retried").Inc()
		q.emit("job_retry", id, map[string]int64{
			"attempt": int64(st.Attempts), "backoff_ms": wait.Milliseconds(),
		})
		if !q.draining {
			q.scheduleRetryLocked(entry, wait)
		}
	}
	if st.Status.Terminal() {
		q.settleDedupLocked(entry)
		q.updateShedLocked()
	}
	saveState(q.cfg.Dir, st) //nolint:errcheck — state rewrites on every later transition
}

// finishAccountingLocked books one job's terminal transition: the done or
// failed counter, the queue-depth gauge, and the tenant's quota charge.
func (q *Queue) finishAccountingLocked(entry *jobEntry, status JobStatus) {
	if status == StatusDone {
		q.counter("jobs_done").Inc()
		q.tenantCounter("tenant_done", entry.state.Tenant).Inc()
	} else {
		q.counter("jobs_failed").Inc()
		q.tenantCounter("tenant_failed", entry.state.Tenant).Inc()
	}
	q.gauge("queue_depth").Add(-1)
	q.tenantLocked(entry.state.Tenant).release(entry.bytes)
}

// settleDedupLocked settles a terminal job's dedup bookkeeping: every
// follower completes with a copy of its outcome. A successful leader keeps
// its content key so identical later submissions reuse the result without
// extracting; a failed leader releases the key so the content can be
// retried fresh.
func (q *Queue) settleDedupLocked(entry *jobEntry) {
	st := entry.state
	if entry.dedupKey != "" && st.Status != StatusDone {
		if q.dedup[entry.dedupKey] == st.ID {
			delete(q.dedup, entry.dedupKey)
		}
		entry.dedupKey = ""
	}
	waiters := q.dedupWaiter[st.ID]
	delete(q.dedupWaiter, st.ID)
	for _, fid := range waiters {
		if fe := q.jobs[fid]; fe != nil && !fe.state.Status.Terminal() {
			q.completeFollowerLocked(fe, st)
		}
	}
}

// completeFollowerLocked finishes a dedup follower from its leader's
// terminal state: same status, same error, a copy of the result.
func (q *Queue) completeFollowerLocked(entry *jobEntry, leader *JobState) {
	st := entry.state
	st.Status = leader.Status
	st.Error = leader.Error
	st.Result = nil
	if leader.Result != nil {
		r := *leader.Result
		st.Result = &r
	}
	st.FinishedUnixNS = time.Now().UnixNano()
	saveState(q.cfg.Dir, st) //nolint:errcheck — terminal state, best effort
	q.finishAccountingLocked(entry, st.Status)
	ev := "job_done"
	if st.Status == StatusFailed {
		ev = "job_failed"
	}
	q.rec.EmitJob(st.ID, ev, st.Tenant, map[string]int64{"dedup": 1})
}

// ckptDir is the job's checkpoint directory inside the spool.
func (q *Queue) ckptDir(id string) string {
	return filepath.Join(q.cfg.Dir, id+ckptSuffix)
}

// extract runs one governed, checkpointed extraction attempt. A nonzero
// deadlineNS is the job's absolute completion deadline: it propagates as a
// context deadline through the governor (cancelling every rewrite worker),
// caps the per-cone deadline, and clamps sharded jobs' lease TTLs so remote
// workers holding leases past expiry lose them within one heartbeat.
func (q *Queue) extract(id string, deadlineNS int64) (*JobResult, error) {
	spec, err := loadSpec(q.cfg.Dir, id)
	if err != nil {
		return nil, err
	}
	n, err := parseNetlist(spec, id)
	if err != nil {
		return nil, err
	}
	runCtx := q.runCtx
	coneDeadline := time.Duration(spec.ConeDeadlineMS) * time.Millisecond
	leaseTTL := q.cfg.ShardLeaseTTL
	if deadlineNS > 0 {
		deadline := time.Unix(0, deadlineNS)
		var cancel context.CancelFunc
		runCtx, cancel = context.WithDeadline(runCtx, deadline)
		defer cancel()
		remaining := time.Until(deadline)
		if remaining < time.Millisecond {
			remaining = time.Millisecond
		}
		if coneDeadline <= 0 || coneDeadline > remaining {
			coneDeadline = remaining
		}
		if leaseTTL <= 0 {
			leaseTTL = shard.DefaultLeaseTTL
		}
		if min := 10 * time.Millisecond; leaseTTL > remaining {
			leaseTTL = remaining
			if leaseTTL < min {
				leaseTTL = min
			}
		}
	}
	opts := extract.Options{
		Threads:      spec.Threads,
		PrefixA:      spec.PrefixA,
		PrefixB:      spec.PrefixB,
		SkipVerify:   spec.SkipVerify,
		Tolerate:     spec.Tolerate,
		BudgetTerms:  spec.BudgetTerms,
		ConeDeadline: coneDeadline,
		// Re-lint at run time: a job replayed from an old spool never went
		// through submit-time lint, and the cost predictor fills unset
		// budget/deadline knobs either way.
		Preflight: true,
		Ctx:       runCtx,
		// Per-attempt child recorder: every rewrite/extract event and span of
		// this attempt carries the job ID, so SSE consumers and the live
		// dashboard can follow one job through the shared journal.
		Recorder: q.rec.JobRecorder(id),
		// Resume is unconditional: with no snapshot on disk it is a cold
		// start, and after a crash or drain it reuses the completed cones.
		Checkpoint: checkpoint.NewManager(q.ckptDir(id), q.cfg.CheckpointThrottle),
		Resume:     true,
	}
	start := time.Now()
	var (
		ext    *extract.Extraction
		sstats shard.Stats
	)
	switch {
	case spec.Shard != 0:
		// Lease-scheduled rewriting: local workers plus any peers reached
		// through the hub. The job ID keys the hub registration so peers'
		// telemetry can be correlated with this job.
		ext, _, sstats, err = shard.Extract(n, opts, shard.ExtractOptions{
			Workers: spec.Shard,
			Hub:     q.cfg.Hub, HubKey: id,
			Store:    q.shardStore,
			LeaseTTL: leaseTTL,
		})
	case spec.Tolerate > 0:
		ext, _, err = extract.Diagnose(n, opts)
	default:
		ext, err = extract.IrreduciblePolynomial(n, opts)
	}
	if err != nil {
		return nil, err
	}
	return &JobResult{
		Polynomial:     ext.P.String(),
		M:              ext.M,
		Verified:       ext.Verified,
		ReusedCones:    ext.Rewrite.Reused,
		Retries:        ext.Rewrite.Retries,
		LeasesExpired:  sstats.Expired,
		LeasesStolen:   sstats.Stolen,
		RuntimeSeconds: time.Since(start).Seconds(),
	}, nil
}

// parseNetlist builds the netlist from a spec.
func parseNetlist(spec *JobSpec, name string) (*netlist.Netlist, error) {
	if spec.Name != "" {
		name = spec.Name
	}
	r := strings.NewReader(spec.Netlist)
	switch spec.Format {
	case "", "eqn":
		return netlist.ReadEQN(r, name)
	case "blif":
		return netlist.ReadBLIF(r)
	case "verilog":
		return netlist.ReadVerilog(r)
	default:
		return nil, fmt.Errorf("unknown netlist format %q", spec.Format)
	}
}

// permanentError classifies failures no retry can fix: the input itself is
// wrong (unparseable, not a field multiplier, tampered beyond tolerance),
// so re-running burns cycles to reach the same verdict.
func permanentError(err error) bool {
	return errors.Is(err, netlist.ErrParse) ||
		errors.Is(err, netlint.ErrFindings) ||
		errors.Is(err, extract.ErrNotMultiplier) ||
		errors.Is(err, extract.ErrNotIrreducible) ||
		errors.Is(err, extract.ErrMismatch) ||
		errors.Is(err, extract.ErrBadPorts) ||
		errors.Is(err, extract.ErrConsensus)
}

// dedupKey is the content-hash grouping identical submissions: the netlist
// source plus every knob that changes the extraction's outcome. Tenant,
// priority, deadline, and name are deliberately excluded — two tenants
// submitting the same work share one extraction.
func dedupKey(spec *JobSpec) string {
	return checkpoint.HashSubmission(spec.Netlist, spec.Format,
		spec.PrefixA, spec.PrefixB,
		strconv.Itoa(spec.BudgetTerms),
		strconv.FormatInt(spec.ConeDeadlineMS, 10),
		strconv.Itoa(spec.Tolerate),
		strconv.FormatBool(spec.SkipVerify),
		strconv.Itoa(spec.Shard),
	)
}

// metricSafe maps a tenant name into the Prometheus metric-name alphabet
// ([a-zA-Z0-9_]): dots and dashes become underscores. Tenant names are
// already restricted to those four character classes by validTenantName.
func metricSafe(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
}

// tenantCounter is a per-tenant labelled counter, flattened into the metric
// name (the obs plane is label-free by design).
func (q *Queue) tenantCounter(name, tenant string) *obs.Counter {
	return q.counter(name + "_" + metricSafe(tenant))
}

// counter/gauge/emit are nil-safe metric helpers. Lifecycle events carry the
// job ID in both Name (display) and Job (stream filtering) fields.
func (q *Queue) counter(name string) *obs.Counter { return q.rec.Metrics().Counter(name) }
func (q *Queue) gauge(name string) *obs.Gauge     { return q.rec.Metrics().Gauge(name) }
func (q *Queue) emit(ev, id string, v map[string]int64) {
	if id == "" {
		q.rec.Emit(ev, "", v)
		return
	}
	q.rec.EmitJob(id, ev, id, v)
}
