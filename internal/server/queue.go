package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/galoisfield/gfre/internal/checkpoint"
	"github.com/galoisfield/gfre/internal/extract"
	"github.com/galoisfield/gfre/internal/netlint"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/obs"
	"github.com/galoisfield/gfre/internal/shard"
)

// Queue failure classes; test with errors.Is.
var (
	// ErrQueueFull means the bounded queue is at capacity — the client
	// should shed load and retry later (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("server: queue full")
	// ErrDraining means the daemon is shutting down and no longer accepts
	// jobs (HTTP 503).
	ErrDraining = errors.New("server: draining")
	// ErrUnknownJob means no job with that ID exists in the spool.
	ErrUnknownJob = errors.New("server: unknown job")
	// ErrBadSpec tags submissions the queue refuses outright (empty or
	// unparseable netlist, unknown format) — these never enter the spool.
	ErrBadSpec = errors.New("server: bad job spec")
)

// LintRejection is returned by Submit when the preflight static analysis
// finds error-level defects in the uploaded netlist. It matches errors.Is
// for both ErrBadSpec (the job never entered the spool) and
// netlint.ErrFindings; the HTTP layer maps it to 422 with the findings in
// the response body so the client can see the cycle witness or the
// offending signals instead of a bare status line.
type LintRejection struct {
	Report *netlint.Report
}

func (e *LintRejection) Error() string {
	counts := e.Report.Counts()
	return fmt.Sprintf("server: netlist failed preflight lint with %d error finding(s)", counts[netlint.SevError])
}

func (e *LintRejection) Unwrap() []error { return []error{ErrBadSpec, netlint.ErrFindings} }

// Config parameterizes a Queue.
type Config struct {
	// Dir is the spool directory (created if missing).
	Dir string
	// Capacity bounds queued + running + backing-off jobs; submissions
	// beyond it are rejected with ErrQueueFull. Default 64.
	Capacity int
	// Workers is the number of concurrent extractions. Default 1 — cone
	// rewriting is already parallel inside a job.
	Workers int
	// MaxAttempts is the default per-job attempt bound (spec override
	// wins). Default 3.
	MaxAttempts int
	// RetryBase/RetryCap shape the exponential backoff between attempts.
	// Defaults 1s / 2m.
	RetryBase, RetryCap time.Duration
	// CheckpointThrottle is passed to each job's checkpoint manager
	// (0 saves on every cone; <0 selects the package default).
	CheckpointThrottle time.Duration
	// Recorder receives queue metrics (jobs_* counters, queue_depth and
	// jobs_running gauges) and per-job telemetry. nil creates a fresh one —
	// the queue always records, because the SSE event stream and the live
	// dashboard are fed from it.
	Recorder *obs.Recorder
	// Journal is the bounded event buffer backing SSE replay. nil creates
	// one with obs.DefaultJournalCapacity. NewQueue attaches it to the
	// recorder itself; callers must NOT AttachSink the same journal, or
	// every event is delivered twice.
	Journal *obs.Journal
	// RetrySeed seeds the backoff jitter (0 = wall clock).
	RetrySeed int64
	// Hub, when non-nil, exposes sharded jobs' cone leases to remote gfred
	// peers over the /shards endpoints. Jobs with JobSpec.Shard == 0 never
	// touch it.
	Hub *shard.Hub
	// ShardLeaseTTL is the heartbeat deadline for sharded jobs' leases
	// (0 = shard.DefaultLeaseTTL).
	ShardLeaseTTL time.Duration
}

type jobEntry struct {
	state *JobState
	// retryTimer re-enqueues a backed-off job; stopped on drain.
	retryTimer *time.Timer
}

// Queue is a bounded durable job queue: every accepted job is on disk
// before Submit returns, and the spool replays across daemon restarts.
type Queue struct {
	cfg     Config
	rec     *obs.Recorder
	journal *obs.Journal

	runCtx    context.Context // cancelled to abort in-flight extractions
	cancelRun context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*jobEntry
	runnable chan string
	draining bool
	rng      *rand.Rand

	// shardStore is the cross-job content-addressed cone cache: a resubmitted
	// netlist (same content hash) reuses every completed cone outright.
	shardStore *shard.Store

	wg   sync.WaitGroup
	done chan struct{} // closed when Drain has fully finished
}

// NewQueue creates the spool directory, replays any jobs a previous daemon
// left behind, and starts the worker pool.
func NewQueue(cfg Config) (*Queue, error) {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = time.Second
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = 2 * time.Minute
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	seed := cfg.RetrySeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	// The observability plane is always on: a recorder feeds metrics and the
	// journal buffers the event stream for SSE replay. An explicit Journal
	// (or one already adopted by the caller's recorder) is respected;
	// otherwise a default-capacity one is created and attached here.
	if cfg.Recorder == nil {
		cfg.Recorder = obs.NewRecorder()
	}
	if cfg.Journal == nil {
		cfg.Journal = cfg.Recorder.Journal()
	}
	if cfg.Journal == nil {
		cfg.Journal = obs.NewJournal(0)
	}
	if cfg.Recorder.Journal() != cfg.Journal {
		cfg.Recorder.AttachSink(cfg.Journal)
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		cfg:        cfg,
		rec:        cfg.Recorder,
		journal:    cfg.Journal,
		runCtx:     ctx,
		cancelRun:  cancel,
		jobs:       make(map[string]*jobEntry),
		rng:        rand.New(rand.NewSource(seed)),
		done:       make(chan struct{}),
		shardStore: shard.NewStore(0),
	}
	// The channel must hold every job that can ever be runnable at once, so
	// sends under mu never block: live capacity plus whatever a previous
	// daemon (possibly configured larger) left in the spool.
	spooled, err := listSpool(cfg.Dir)
	if err != nil {
		cancel()
		return nil, err
	}
	q.runnable = make(chan string, cfg.Capacity+len(spooled))
	if err := q.recover(spooled); err != nil {
		cancel()
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q, nil
}

// recover replays the spool: terminal jobs are kept for status queries,
// interrupted ones (queued, running, or mid-backoff when the daemon died)
// are re-enqueued — a job that was running resumes from its checkpoint.
func (q *Queue) recover(ids []string) error {
	now := time.Now()
	for _, id := range ids {
		st, err := loadState(q.cfg.Dir, id)
		if errors.Is(err, os.ErrNotExist) {
			// Crashed between spec and state write: the job was never
			// acknowledged, but the spec is durable — adopt it.
			st = &JobState{ID: id, Status: StatusQueued,
				MaxAttempts: q.cfg.MaxAttempts, SubmittedUnixNS: now.UnixNano()}
		} else if err != nil {
			// Quarantine: skip the damaged entry (leaving its files for the
			// operator) and keep replaying the rest of the spool — one
			// truncated state file must not cost the healthy jobs around it.
			q.counter("spool_corrupt").Inc()
			q.emit("spool_corrupt", id, nil)
			continue
		}
		entry := &jobEntry{state: st}
		q.jobs[id] = entry
		if st.Status.Terminal() {
			continue
		}
		q.counter("jobs_recovered").Inc()
		if st.Status == StatusRunning {
			// Interrupted mid-extraction; its checkpoint directory holds the
			// completed cones and the resumed run reuses them.
			st.Status = StatusQueued
			saveState(q.cfg.Dir, st) //nolint:errcheck — re-saved on next transition
		}
		if wait := time.Until(time.Unix(0, st.NextRetryUnixNS)); st.NextRetryUnixNS > 0 && wait > 0 {
			q.scheduleRetryLocked(entry, wait)
		} else {
			q.runnable <- id
		}
		q.gauge("queue_depth").Add(1)
	}
	return nil
}

// Submit validates, persists and enqueues a job. The spec is on disk before
// Submit returns — an accepted job survives any subsequent crash.
func (q *Queue) Submit(spec *JobSpec) (*JobState, error) {
	if strings.TrimSpace(spec.Netlist) == "" {
		return nil, fmt.Errorf("%w: empty netlist", ErrBadSpec)
	}
	switch spec.Format {
	case "", "eqn", "blif", "verilog":
	default:
		return nil, fmt.Errorf("%w: unknown netlist format %q", ErrBadSpec, spec.Format)
	}
	// Lint eagerly so defective uploads fail the submission (HTTP 422 with
	// the findings in the body), not the first extraction attempt. The
	// source-level rules diagnose cycles and multi-driven signals with line
	// numbers the parser's own errors lack, and a clean report implies the
	// netlist parses — AnalyzeSource runs the real reader on clean source.
	format := spec.Format
	if format == "" {
		format = "eqn"
	}
	name := spec.Name
	if name == "" {
		name = "submit"
	}
	rep := netlint.AnalyzeSource([]byte(spec.Netlist), name, format, netlint.Options{RequireMultiplier: true})
	if rep.HasErrors() {
		return nil, &LintRejection{Report: rep}
	}

	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		q.counter("jobs_rejected").Inc()
		return nil, ErrDraining
	}
	if q.activeLocked() >= q.cfg.Capacity {
		q.counter("jobs_rejected").Inc()
		return nil, ErrQueueFull
	}
	id, err := newJobID()
	if err != nil {
		return nil, err
	}
	maxAttempts := spec.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = q.cfg.MaxAttempts
	}
	st := &JobState{
		ID: id, Name: spec.Name, Status: StatusQueued,
		MaxAttempts: maxAttempts, SubmittedUnixNS: time.Now().UnixNano(),
	}
	// Durability order: spec first, then state, then the in-memory enqueue.
	if err := saveSpec(q.cfg.Dir, id, spec); err != nil {
		return nil, err
	}
	if err := saveState(q.cfg.Dir, st); err != nil {
		return nil, err
	}
	q.jobs[id] = &jobEntry{state: st}
	q.runnable <- id
	q.counter("jobs_submitted").Inc()
	q.gauge("queue_depth").Add(1)
	q.emit("job_submitted", id, nil)
	cp := *st
	return &cp, nil
}

// Get returns a copy of the job's current state.
func (q *Queue) Get(id string) (*JobState, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	entry, ok := q.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	cp := *entry.state
	return &cp, nil
}

// List returns a copy of every known job state, newest first.
func (q *Queue) List() []*JobState {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*JobState, 0, len(q.jobs))
	for _, e := range q.jobs {
		cp := *e.state
		out = append(out, &cp)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].SubmittedUnixNS > out[j-1].SubmittedUnixNS; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Active counts the jobs not yet in a terminal state.
func (q *Queue) Active() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.activeLocked()
}

func (q *Queue) activeLocked() int {
	n := 0
	for _, e := range q.jobs {
		if !e.state.Status.Terminal() {
			n++
		}
	}
	return n
}

// Draining reports whether the queue has stopped accepting jobs.
func (q *Queue) Draining() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.draining
}

// Drain shuts the queue down gracefully: intake stops immediately, then
// in-flight and queued jobs get up to grace to finish; whatever is still
// unfinished is cancelled cooperatively — the governed cancellation path
// syncs each job's checkpoint, so the next daemon start resumes it.
// Idempotent: a repeated Drain (second SIGTERM) just waits for the first.
func (q *Queue) Drain(grace time.Duration) {
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.draining = true
	for _, e := range q.jobs {
		// Backed-off retries won't get to run; hand them to the next start.
		if e.retryTimer != nil {
			e.retryTimer.Stop()
			e.retryTimer = nil
		}
	}
	q.mu.Unlock()
	q.emit("drain_begin", "", map[string]int64{"grace_ms": grace.Milliseconds()})

	deadline := time.Now().Add(grace)
	for q.Active() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	q.cancelRun()
	close(q.runnable)
	q.wg.Wait()
	q.emit("drain_end", "", map[string]int64{"active_left": int64(q.Active())})
	close(q.done)
}

// Done returns a channel closed once Drain has fully finished — the signal
// event-stream handlers use to end their streams instead of holding client
// connections open across shutdown.
func (q *Queue) Done() <-chan struct{} { return q.done }

// Journal returns the bounded event buffer the queue's telemetry flows
// through; SSE handlers subscribe and replay from it.
func (q *Queue) Journal() *obs.Journal { return q.journal }

// Recorder returns the queue's recorder (never nil once NewQueue returns).
func (q *Queue) Recorder() *obs.Recorder { return q.rec }

// Hub returns the shard hub remote peers lease cones from (nil when the
// daemon runs without one).
func (q *Queue) Hub() *shard.Hub { return q.cfg.Hub }

// RetryAfterHint estimates how long a client rejected with ErrQueueFull
// should wait before resubmitting, from the actual queue state: if every
// active job is parked in retry backoff, nothing can finish before the
// earliest backoff expires, so that expiry (plus a grace second) is the
// honest hint; otherwise jobs are actively draining and the hint scales
// with how many must finish per worker before a slot frees.
func (q *Queue) RetryAfterHint() time.Duration {
	const (
		floor = time.Second
		ceil  = 5 * time.Minute
	)
	q.mu.Lock()
	defer q.mu.Unlock()
	now := time.Now()
	active, parked := 0, 0
	var earliest time.Duration = -1
	for _, e := range q.jobs {
		st := e.state
		if st.Status.Terminal() {
			continue
		}
		active++
		if st.Status == StatusQueued && st.NextRetryUnixNS > 0 {
			if wait := time.Unix(0, st.NextRetryUnixNS).Sub(now); wait > 0 {
				parked++
				if earliest < 0 || wait < earliest {
					earliest = wait
				}
			}
		}
	}
	var hint time.Duration
	switch {
	case active == 0:
		hint = floor
	case parked == active && earliest > 0:
		hint = earliest + floor
	default:
		perWorker := (active - parked + q.cfg.Workers - 1) / q.cfg.Workers
		hint = floor * time.Duration(perWorker)
	}
	if hint < floor {
		hint = floor
	}
	if hint > ceil {
		hint = ceil
	}
	return hint
}

// worker pulls runnable job IDs until the queue closes.
func (q *Queue) worker() {
	defer q.wg.Done()
	for id := range q.runnable {
		if q.runCtx.Err() != nil {
			// Drained mid-loop; leave the job queued for the next start.
			continue
		}
		q.runJob(id)
	}
}

// scheduleRetryLocked arms the re-enqueue timer for a backed-off job; the
// caller holds q.mu.
func (q *Queue) scheduleRetryLocked(entry *jobEntry, wait time.Duration) {
	id := entry.state.ID
	entry.retryTimer = time.AfterFunc(wait, func() {
		q.mu.Lock()
		defer q.mu.Unlock()
		if q.draining || entry.retryTimer == nil {
			return
		}
		entry.retryTimer = nil
		q.runnable <- id
	})
}

// runJob executes one attempt of one job.
func (q *Queue) runJob(id string) {
	q.mu.Lock()
	entry, ok := q.jobs[id]
	if !ok || entry.state.Status != StatusQueued {
		q.mu.Unlock()
		return
	}
	st := entry.state
	st.Status = StatusRunning
	st.Attempts++
	st.StartedUnixNS = time.Now().UnixNano()
	st.NextRetryUnixNS = 0
	saveState(q.cfg.Dir, st) //nolint:errcheck — worst case the attempt repeats
	q.gauge("jobs_running").Add(1)
	q.mu.Unlock()
	q.emit("job_start", id, map[string]int64{"attempt": int64(st.Attempts)})

	result, err := q.extract(id)

	q.mu.Lock()
	defer q.mu.Unlock()
	q.gauge("jobs_running").Add(-1)
	switch {
	case err == nil:
		st.Status = StatusDone
		st.Result = result
		st.Error = ""
		st.FinishedUnixNS = time.Now().UnixNano()
		q.counter("jobs_done").Inc()
		q.gauge("queue_depth").Add(-1)
		q.emit("job_done", id, map[string]int64{"attempt": int64(st.Attempts)})

	case q.runCtx.Err() != nil:
		// Drain cancelled the attempt, not the job: back to queued so the
		// next daemon start resumes from the synced checkpoint. The attempt
		// is not charged against the budget.
		st.Status = StatusQueued
		st.Attempts--
		q.emit("job_interrupted", id, nil)

	case permanentError(err) || st.Attempts >= st.MaxAttempts:
		st.Status = StatusFailed
		st.Error = err.Error()
		st.FinishedUnixNS = time.Now().UnixNano()
		q.counter("jobs_failed").Inc()
		q.gauge("queue_depth").Add(-1)
		q.emit("job_failed", id, map[string]int64{"attempt": int64(st.Attempts)})

	default:
		// Retryable: exponential backoff with jitter. A corrupt checkpoint
		// is retryable exactly once the snapshot is wiped — re-running on
		// top of it would fail identically forever.
		if errors.Is(err, checkpoint.ErrCheckpoint) {
			os.RemoveAll(q.ckptDir(id)) //nolint:errcheck — next attempt starts cold either way
		}
		wait := backoff(q.cfg.RetryBase, q.cfg.RetryCap, st.Attempts, q.rng.Float64())
		st.Status = StatusQueued
		st.Error = err.Error()
		st.NextRetryUnixNS = time.Now().Add(wait).UnixNano()
		q.counter("jobs_retried").Inc()
		q.emit("job_retry", id, map[string]int64{
			"attempt": int64(st.Attempts), "backoff_ms": wait.Milliseconds(),
		})
		if !q.draining {
			q.scheduleRetryLocked(entry, wait)
		}
	}
	saveState(q.cfg.Dir, st) //nolint:errcheck — state rewrites on every later transition
}

// ckptDir is the job's checkpoint directory inside the spool.
func (q *Queue) ckptDir(id string) string {
	return filepath.Join(q.cfg.Dir, id+ckptSuffix)
}

// extract runs one governed, checkpointed extraction attempt.
func (q *Queue) extract(id string) (*JobResult, error) {
	spec, err := loadSpec(q.cfg.Dir, id)
	if err != nil {
		return nil, err
	}
	n, err := parseNetlist(spec, id)
	if err != nil {
		return nil, err
	}
	opts := extract.Options{
		Threads:      spec.Threads,
		PrefixA:      spec.PrefixA,
		PrefixB:      spec.PrefixB,
		SkipVerify:   spec.SkipVerify,
		Tolerate:     spec.Tolerate,
		BudgetTerms:  spec.BudgetTerms,
		ConeDeadline: time.Duration(spec.ConeDeadlineMS) * time.Millisecond,
		// Re-lint at run time: a job replayed from an old spool never went
		// through submit-time lint, and the cost predictor fills unset
		// budget/deadline knobs either way.
		Preflight: true,
		Ctx:       q.runCtx,
		// Per-attempt child recorder: every rewrite/extract event and span of
		// this attempt carries the job ID, so SSE consumers and the live
		// dashboard can follow one job through the shared journal.
		Recorder: q.rec.JobRecorder(id),
		// Resume is unconditional: with no snapshot on disk it is a cold
		// start, and after a crash or drain it reuses the completed cones.
		Checkpoint: checkpoint.NewManager(q.ckptDir(id), q.cfg.CheckpointThrottle),
		Resume:     true,
	}
	start := time.Now()
	var (
		ext    *extract.Extraction
		sstats shard.Stats
	)
	switch {
	case spec.Shard != 0:
		// Lease-scheduled rewriting: local workers plus any peers reached
		// through the hub. The job ID keys the hub registration so peers'
		// telemetry can be correlated with this job.
		ext, _, sstats, err = shard.Extract(n, opts, shard.ExtractOptions{
			Workers: spec.Shard,
			Hub:     q.cfg.Hub, HubKey: id,
			Store:    q.shardStore,
			LeaseTTL: q.cfg.ShardLeaseTTL,
		})
	case spec.Tolerate > 0:
		ext, _, err = extract.Diagnose(n, opts)
	default:
		ext, err = extract.IrreduciblePolynomial(n, opts)
	}
	if err != nil {
		return nil, err
	}
	return &JobResult{
		Polynomial:     ext.P.String(),
		M:              ext.M,
		Verified:       ext.Verified,
		ReusedCones:    ext.Rewrite.Reused,
		Retries:        ext.Rewrite.Retries,
		LeasesExpired:  sstats.Expired,
		LeasesStolen:   sstats.Stolen,
		RuntimeSeconds: time.Since(start).Seconds(),
	}, nil
}

// parseNetlist builds the netlist from a spec.
func parseNetlist(spec *JobSpec, name string) (*netlist.Netlist, error) {
	if spec.Name != "" {
		name = spec.Name
	}
	r := strings.NewReader(spec.Netlist)
	switch spec.Format {
	case "", "eqn":
		return netlist.ReadEQN(r, name)
	case "blif":
		return netlist.ReadBLIF(r)
	case "verilog":
		return netlist.ReadVerilog(r)
	default:
		return nil, fmt.Errorf("unknown netlist format %q", spec.Format)
	}
}

// permanentError classifies failures no retry can fix: the input itself is
// wrong (unparseable, not a field multiplier, tampered beyond tolerance),
// so re-running burns cycles to reach the same verdict.
func permanentError(err error) bool {
	return errors.Is(err, netlist.ErrParse) ||
		errors.Is(err, netlint.ErrFindings) ||
		errors.Is(err, extract.ErrNotMultiplier) ||
		errors.Is(err, extract.ErrNotIrreducible) ||
		errors.Is(err, extract.ErrMismatch) ||
		errors.Is(err, extract.ErrBadPorts) ||
		errors.Is(err, extract.ErrConsensus)
}

// counter/gauge/emit are nil-safe metric helpers. Lifecycle events carry the
// job ID in both Name (display) and Job (stream filtering) fields.
func (q *Queue) counter(name string) *obs.Counter { return q.rec.Metrics().Counter(name) }
func (q *Queue) gauge(name string) *obs.Gauge     { return q.rec.Metrics().Gauge(name) }
func (q *Queue) emit(ev, id string, v map[string]int64) {
	if id == "" {
		q.rec.Emit(ev, "", v)
		return
	}
	q.rec.EmitJob(id, ev, id, v)
}
