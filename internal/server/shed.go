package server

import (
	"errors"
	"fmt"
	"runtime"
	"time"
)

// ErrOverloaded tags submissions rejected by the load-shed controller; the
// HTTP layer maps it to 429 with a Retry-After hint.
var ErrOverloaded = errors.New("server: overloaded")

// OverloadError reports which shed stage rejected the submission.
type OverloadError struct {
	Stage  int
	Reason string
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("server: overloaded (shed stage %d: %s)", e.Stage, e.Reason)
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// ShedConfig parameterizes the staged load-shed controller. Load is the
// queue's active fraction (non-terminal jobs / capacity); memory pressure
// escalates independently. The stages degrade in documented order:
//
//	stage 1 — reject new submissions at priority >= ShedPriority (the
//	          lowest classes), everything else admits;
//	stage 2 — coordinator-only: additionally reject every job that would
//	          consume local extraction capacity (only JobSpec.Shard < 0
//	          jobs, whose rewriting is done entirely by remote peers,
//	          still admit);
//	stage 3 — reject everything and flip /readyz to 503 so load balancers
//	          stop routing here.
//
// Stages disengage with hysteresis (Enter[i] - Hysteresis) so the
// controller cannot flap around a watermark.
type ShedConfig struct {
	// Enter holds the load fractions at which stages 1..3 engage.
	// Defaults {0.75, 0.90, 0.97}.
	Enter [3]float64
	// Hysteresis is subtracted from Enter for the disengage thresholds
	// (default 0.10).
	Hysteresis float64
	// MemHighBytes, when nonzero, forces at least stage 2 while the Go
	// heap's in-use bytes sit at or above it.
	MemHighBytes uint64
	// ShedPriority is the priority class at which stage 1 starts
	// rejecting (default 7: classes 7-9 shed first).
	ShedPriority int
	// MemProbe overrides the heap probe for tests; nil reads
	// runtime.MemStats.HeapInuse (rate-limited).
	MemProbe func() uint64
}

// shedder tracks the current shed stage. Callers hold q.mu.
type shedder struct {
	cfg   ShedConfig
	stage int

	lastProbe time.Time
	lastHeap  uint64
}

func newShedder(cfg ShedConfig) *shedder {
	if cfg.Enter[0] <= 0 {
		cfg.Enter = [3]float64{0.75, 0.90, 0.97}
	}
	if cfg.Enter[1] < cfg.Enter[0] {
		cfg.Enter[1] = cfg.Enter[0]
	}
	if cfg.Enter[2] < cfg.Enter[1] {
		cfg.Enter[2] = cfg.Enter[1]
	}
	if cfg.Hysteresis <= 0 {
		cfg.Hysteresis = 0.10
	}
	if cfg.ShedPriority <= 0 {
		cfg.ShedPriority = 7
	}
	return &shedder{cfg: cfg}
}

// recompute maps the current load to a stage, honoring hysteresis and the
// memory watermark, and returns it.
func (s *shedder) recompute(load float64) int {
	stage := s.stage
	for stage < 3 && load >= s.cfg.Enter[stage] {
		stage++
	}
	for stage > 0 && load < s.cfg.Enter[stage-1]-s.cfg.Hysteresis {
		stage--
	}
	if s.cfg.MemHighBytes > 0 && stage < 2 && s.heap() >= s.cfg.MemHighBytes {
		stage = 2
	}
	s.stage = stage
	return stage
}

// heap reads the in-use heap bytes, at most once per 100ms — ReadMemStats
// stops the world and admission is on the submit path.
func (s *shedder) heap() uint64 {
	if s.cfg.MemProbe != nil {
		return s.cfg.MemProbe()
	}
	if now := time.Now(); now.Sub(s.lastProbe) >= 100*time.Millisecond {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.lastHeap = ms.HeapInuse
		s.lastProbe = now
	}
	return s.lastHeap
}

// admitStage applies the stage's rejection rules to one submission.
func (s *shedder) admitStage(stage int, spec *JobSpec, priority int) error {
	switch {
	case stage >= 3:
		return &OverloadError{Stage: stage, Reason: "queue saturated, rejecting all submissions"}
	case stage >= 2 && spec.Shard >= 0:
		return &OverloadError{Stage: stage, Reason: "coordinator-only mode, local extraction suspended"}
	case stage >= 1 && priority >= s.cfg.ShedPriority:
		return &OverloadError{Stage: stage, Reason: fmt.Sprintf("shedding priority >= %d", s.cfg.ShedPriority)}
	}
	return nil
}

// updateShedLocked recomputes the shed stage from the queue's load and
// publishes transitions (shed_stage gauge + event); the caller holds q.mu.
func (q *Queue) updateShedLocked() int {
	load := float64(q.activeLocked()) / float64(q.cfg.Capacity)
	old := q.shed.stage
	stage := q.shed.recompute(load)
	if stage != old {
		q.gauge("shed_stage").Set(int64(stage))
		if stage > old {
			q.counter("shed_escalations").Inc()
		}
		q.rec.Emit("shed_stage", "", map[string]int64{
			"stage": int64(stage), "from": int64(old),
			"load_pct": int64(load * 100),
		})
	}
	return stage
}

// ShedStage reports the load-shed controller's current stage (0 = normal).
func (q *Queue) ShedStage() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.updateShedLocked()
}

// ReadyState is the /readyz payload: readiness plus the queue pressure that
// justifies it, so operators see why a node flipped.
type ReadyState struct {
	Ready     bool   `json:"ready"`
	Reason    string `json:"reason,omitempty"`
	Draining  bool   `json:"draining"`
	ShedStage int    `json:"shed_stage"`
	Active    int    `json:"active"`
	Capacity  int    `json:"capacity"`
}

// ReadyState reports whether the queue should receive traffic: not draining
// and not at shed stage 3.
func (q *Queue) ReadyState() ReadyState {
	q.mu.Lock()
	defer q.mu.Unlock()
	rs := ReadyState{
		Ready:     true,
		Draining:  q.draining,
		ShedStage: q.updateShedLocked(),
		Active:    q.activeLocked(),
		Capacity:  q.cfg.Capacity,
	}
	switch {
	case rs.Draining:
		rs.Ready, rs.Reason = false, "draining"
	case rs.ShedStage >= 3:
		rs.Ready, rs.Reason = false, "overloaded: queue saturated"
	}
	return rs
}
