package server

import (
	"testing"
	"time"
)

// injectJob plants a synthetic job entry directly in the queue map, so the
// hint can be probed against exact queue states without racing real workers.
func injectJob(q *Queue, id string, status JobStatus, nextRetry time.Time) {
	st := &JobState{ID: id, Status: status}
	if !nextRetry.IsZero() {
		st.NextRetryUnixNS = nextRetry.UnixNano()
	}
	q.mu.Lock()
	q.jobs[id] = &jobEntry{state: st}
	q.mu.Unlock()
}

// RetryAfterHint must be derived from the actual queue state: short when
// jobs are actively draining, long when everything is parked in backoff.
func TestRetryAfterHintTracksQueueState(t *testing.T) {
	q, err := NewQueue(Config{Dir: t.TempDir(), Workers: 2, RetrySeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(time.Second)

	// Empty queue: the floor.
	if h := q.RetryAfterHint(); h != time.Second {
		t.Fatalf("empty-queue hint = %v, want 1s", h)
	}

	// Terminal jobs are not load.
	injectJob(q, "d1", StatusDone, time.Time{})
	injectJob(q, "f1", StatusFailed, time.Time{})
	if h := q.RetryAfterHint(); h != time.Second {
		t.Fatalf("terminal-only hint = %v, want 1s", h)
	}

	// Actively draining: 4 running jobs on 2 workers ≈ 2 turns per worker.
	for _, id := range []string{"r1", "r2", "r3", "r4"} {
		injectJob(q, id, StatusRunning, time.Time{})
	}
	if h := q.RetryAfterHint(); h != 2*time.Second {
		t.Fatalf("draining hint = %v, want 2s (4 jobs / 2 workers)", h)
	}

	// Everything parked in retry backoff: nothing can finish before the
	// earliest backoff expires, so the hint must cover that wait.
	q.mu.Lock()
	for id, e := range q.jobs {
		if !e.state.Status.Terminal() {
			e.state.Status = StatusQueued
			e.state.NextRetryUnixNS = time.Now().Add(30 * time.Second).UnixNano()
			if id == "r2" {
				e.state.NextRetryUnixNS = time.Now().Add(10 * time.Second).UnixNano()
			}
		}
	}
	q.mu.Unlock()
	h := q.RetryAfterHint()
	if h < 10*time.Second || h > 12*time.Second {
		t.Fatalf("all-parked hint = %v, want earliest backoff (~10s) + grace", h)
	}

	// The hint is clamped to an honest ceiling even for absurd backoffs.
	q.mu.Lock()
	for _, e := range q.jobs {
		if !e.state.Status.Terminal() {
			e.state.NextRetryUnixNS = time.Now().Add(2 * time.Hour).UnixNano()
		}
	}
	q.mu.Unlock()
	if h := q.RetryAfterHint(); h != 5*time.Minute {
		t.Fatalf("clamped hint = %v, want 5m ceiling", h)
	}
}
