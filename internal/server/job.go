// Package server implements the gfred extraction service: an HTTP API over
// a bounded, durable job queue. Jobs are spooled to disk before they are
// acknowledged, run under the resource governor with per-job retry and
// exponential backoff, checkpoint their per-cone progress, and survive a
// daemon restart — the spool is replayed on startup and interrupted runs
// resume from their checkpoints instead of starting over.
package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// JobStatus is the lifecycle state of a spooled job.
type JobStatus string

const (
	// StatusQueued: accepted and persisted, waiting for a worker (also the
	// state of a retry waiting out its backoff).
	StatusQueued JobStatus = "queued"
	// StatusRunning: a worker is extracting. A job found in this state
	// during spool replay was interrupted by a daemon crash and is
	// re-enqueued to resume from its checkpoint.
	StatusRunning JobStatus = "running"
	// StatusDone: extraction succeeded; Result holds P(x).
	StatusDone JobStatus = "done"
	// StatusFailed: extraction failed permanently (unretryable error or
	// attempts exhausted); Error explains why.
	StatusFailed JobStatus = "failed"
)

// Terminal reports whether the status is an end state.
func (s JobStatus) Terminal() bool { return s == StatusDone || s == StatusFailed }

// JobSpec is what a client submits: the netlist and the extraction knobs.
type JobSpec struct {
	// Netlist is the circuit text; Format selects the parser (eqn, blif,
	// verilog; default eqn).
	Netlist string `json:"netlist"`
	Format  string `json:"format,omitempty"`
	// Name labels the job in results and logs (default: the job ID).
	Name string `json:"name,omitempty"`

	// Extraction options, mirroring the gfre CLI flags.
	Threads        int    `json:"threads,omitempty"`
	PrefixA        string `json:"prefix_a,omitempty"`
	PrefixB        string `json:"prefix_b,omitempty"`
	BudgetTerms    int    `json:"budget_terms,omitempty"`
	ConeDeadlineMS int64  `json:"cone_deadline_ms,omitempty"`
	Tolerate       int    `json:"tolerate,omitempty"`
	SkipVerify     bool   `json:"skip_verify,omitempty"`

	// MaxAttempts bounds how often the job is tried before it fails
	// permanently (0 = the queue's default).
	MaxAttempts int `json:"max_attempts,omitempty"`

	// Tenant attributes the job for admission control and fair scheduling.
	// The HTTP layer fills it from the X-Tenant header or API key; empty
	// means DefaultTenant.
	Tenant string `json:"tenant,omitempty"`
	// Priority is the scheduling class, 1 (highest) to 9 (lowest);
	// 0 = the tenant's default.
	Priority int `json:"priority,omitempty"`
	// DeadlineMS is a wall-clock completion budget measured from admission.
	// When it expires, the job is cancelled everywhere — queued jobs fail
	// at dispatch, running extractions are cancelled through the governor
	// context, and sharded jobs' lease TTLs are capped to the remaining
	// budget so remote workers stop within one TTL. 0 = no deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Dedup opts the job into content-hash deduplication: if an identical
	// submission (same netlist and extraction knobs) is already in flight,
	// this job becomes a follower that shares the leader's single
	// extraction and completes when it does. POST /jobs/batch forces it.
	Dedup bool `json:"dedup,omitempty"`

	// Shard routes the job through the lease-based sharded extractor with
	// this many local workers (negative = none: remote peers via the
	// daemon's hub do all the rewriting). 0 keeps the monolithic path.
	Shard int `json:"shard,omitempty"`
}

// JobResult is the payload of a completed extraction.
type JobResult struct {
	Polynomial     string  `json:"polynomial"`
	M              int     `json:"m"`
	Verified       bool    `json:"verified"`
	ReusedCones    int     `json:"reused_cones,omitempty"`
	Retries        int     `json:"retries,omitempty"`
	LeasesExpired  int     `json:"leases_expired,omitempty"`
	LeasesStolen   int     `json:"leases_stolen,omitempty"`
	RuntimeSeconds float64 `json:"runtime_seconds"`
}

// JobState is the durable, client-visible record of a job.
type JobState struct {
	ID       string    `json:"id"`
	Name     string    `json:"name,omitempty"`
	Status   JobStatus `json:"status"`
	Attempts int       `json:"attempts"`
	// MaxAttempts is the resolved retry bound (spec value or queue default).
	MaxAttempts int `json:"max_attempts"`

	// Tenant and Priority are the resolved admission attributes; Seq is the
	// global enqueue sequence — spool replay re-enqueues in Seq order so a
	// restart never reorders a tenant's pipeline.
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
	Seq      uint64 `json:"seq,omitempty"`
	// DeadlineUnixNS is the absolute completion deadline (0 = none).
	DeadlineUnixNS int64 `json:"deadline_unix_ns,omitempty"`
	// DedupOf names the leader job whose extraction this job shares; a
	// follower never runs itself, it completes when its leader does.
	DedupOf string `json:"dedup_of,omitempty"`

	SubmittedUnixNS int64 `json:"submitted_unix_ns"`
	StartedUnixNS   int64 `json:"started_unix_ns,omitempty"`
	FinishedUnixNS  int64 `json:"finished_unix_ns,omitempty"`
	// NextRetryUnixNS is when a backed-off retry becomes runnable.
	NextRetryUnixNS int64 `json:"next_retry_unix_ns,omitempty"`

	Error  string     `json:"error,omitempty"`
	Result *JobResult `json:"result,omitempty"`
}

// Spool file layout: <id>.job holds the immutable JobSpec, <id>.state the
// mutable JobState (atomically replaced on every transition), and <id>.ckpt/
// the extraction checkpoint directory.
const (
	specSuffix  = ".job"
	stateSuffix = ".state"
	ckptSuffix  = ".ckpt"
)

// newJobID returns a 16-hex-digit random job identifier.
func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// validJobID guards spool paths against traversal: IDs are exactly the
// strings newJobID produces.
func validJobID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for _, c := range id {
		if !strings.ContainsRune("0123456789abcdef", c) {
			return false
		}
	}
	return true
}

// writeFileAtomic persists data under path via temp file + fsync + rename,
// the same discipline the checkpoint package uses: a crash leaves either
// the old file or the new one.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// saveSpec persists the immutable job spec (written once, at submission,
// BEFORE the job is acknowledged to the client).
func saveSpec(dir, id string, spec *JobSpec) error {
	data, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, id+specSuffix), data)
}

// loadSpec reads a job spec from the spool.
func loadSpec(dir, id string) (*JobSpec, error) {
	data, err := os.ReadFile(filepath.Join(dir, id+specSuffix))
	if err != nil {
		return nil, err
	}
	spec := &JobSpec{}
	if err := json.Unmarshal(data, spec); err != nil {
		return nil, fmt.Errorf("spool %s: corrupt spec: %w", id, err)
	}
	return spec, nil
}

// saveState atomically replaces the job's state file.
func saveState(dir string, st *JobState) error {
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, st.ID+stateSuffix), data)
}

// loadState reads a job state from the spool.
func loadState(dir, id string) (*JobState, error) {
	data, err := os.ReadFile(filepath.Join(dir, id+stateSuffix))
	if err != nil {
		return nil, err
	}
	st := &JobState{}
	if err := json.Unmarshal(data, st); err != nil {
		return nil, fmt.Errorf("spool %s: corrupt state: %w", id, err)
	}
	return st, nil
}

// listSpool returns the IDs of every job with a spec file in dir.
func listSpool(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range ents {
		name := e.Name()
		if id, ok := strings.CutSuffix(name, specSuffix); ok && validJobID(id) {
			ids = append(ids, id)
		}
	}
	return ids, nil
}

// backoff computes the wait before retry number attempt (1-based first
// retry), exponential with full jitter: base·2^(attempt-1), capped, then
// scaled by a uniform factor in [0.5, 1.0] so restarting fleets do not
// retry in lockstep.
func backoff(base, cap time.Duration, attempt int, unit float64) time.Duration {
	if base <= 0 {
		base = time.Second
	}
	if cap <= 0 {
		cap = 2 * time.Minute
	}
	d := base
	for i := 1; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	return time.Duration(float64(d) * (0.5 + 0.5*unit))
}
