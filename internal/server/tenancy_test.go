package server

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/polytab"
)

// montgomeryText renders a Montgomery multiplier as EQN text — the slow
// workload (deep recombination cones) for deadline and overload tests.
func montgomeryText(t *testing.T, m int) string {
	t.Helper()
	p, err := polytab.Default(m)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Montgomery(m, p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteEQN(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// --- dispatcher unit tests -------------------------------------------------

func drainN(t *testing.T, d *dispatcher, n int) []schedEntry {
	t.Helper()
	out := make([]schedEntry, 0, n)
	for i := 0; i < n; i++ {
		e, ok := d.Next()
		if !ok {
			t.Fatalf("dispatcher closed after %d entries, want %d", i, n)
		}
		out = append(out, e)
		d.Release(e.tenant)
	}
	return out
}

func TestDispatcherPriorityOrder(t *testing.T) {
	now := time.Unix(1000, 0)
	d := newDispatcher(time.Hour, func() time.Time { return now })
	d.Push(schedEntry{id: "low", tenant: "a", priority: 9, seq: 1}, 1, 0)
	d.Push(schedEntry{id: "high", tenant: "a", priority: 1, seq: 2}, 1, 0)
	d.Push(schedEntry{id: "mid", tenant: "a", priority: 5, seq: 3}, 1, 0)

	got := drainN(t, d, 3)
	want := []string{"high", "mid", "low"}
	for i, e := range got {
		if e.id != want[i] {
			t.Fatalf("pop %d = %s, want %s (full order %v)", i, e.id, want[i], got)
		}
	}
}

func TestDispatcherWeightedFairness(t *testing.T) {
	now := time.Unix(1000, 0)
	d := newDispatcher(time.Hour, func() time.Time { return now })
	for i := 0; i < 6; i++ {
		d.Push(schedEntry{id: "a", tenant: "heavy", priority: 5, seq: uint64(i)}, 3, 0)
		d.Push(schedEntry{id: "b", tenant: "light", priority: 5, seq: uint64(100 + i)}, 1, 0)
	}
	// First 8 pops: the weight-3 tenant should land ~3x the weight-1 one.
	counts := map[string]int{}
	for _, e := range drainN(t, d, 8) {
		counts[e.tenant]++
	}
	if counts["heavy"] != 6 || counts["light"] != 2 {
		t.Fatalf("8 pops split heavy=%d light=%d, want 6/2", counts["heavy"], counts["light"])
	}
}

func TestDispatcherAgingBeatsFreshHighPriority(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := &clock
	d := newDispatcher(time.Second, func() time.Time { return *now })
	d.Push(schedEntry{id: "old-low", tenant: "a", priority: 9, seq: 1}, 1, 0)
	// 6 aging steps later a fresh priority-5 job arrives: the old job's
	// effective priority is 9-6=3, so it must run first.
	clock = clock.Add(6 * time.Second)
	d.Push(schedEntry{id: "fresh-mid", tenant: "b", priority: 5, seq: 2}, 1, 0)

	if got := drainN(t, d, 2); got[0].id != "old-low" {
		t.Fatalf("aged priority-9 job lost to fresh priority-5: order %v, %v", got[0].id, got[1].id)
	}
}

func TestDispatcherMaxRunningCap(t *testing.T) {
	now := time.Unix(1000, 0)
	d := newDispatcher(time.Hour, func() time.Time { return now })
	d.Push(schedEntry{id: "c1", tenant: "capped", priority: 1, seq: 1}, 1, 1)
	d.Push(schedEntry{id: "c2", tenant: "capped", priority: 1, seq: 2}, 1, 1)
	d.Push(schedEntry{id: "o1", tenant: "other", priority: 9, seq: 3}, 1, 0)

	e1, _ := d.Next() // capped tenant's first job (priority 1)
	if e1.id != "c1" {
		t.Fatalf("first pop %s, want c1", e1.id)
	}
	// capped is now at MaxRunning=1: its second priority-1 job must NOT
	// dispatch; the other tenant's priority-9 job does.
	e2, _ := d.Next()
	if e2.id != "o1" {
		t.Fatalf("second pop %s, want o1 (capped tenant at MaxRunning)", e2.id)
	}
	// Releasing the slot unblocks the capped tenant.
	d.Release("capped")
	e3, _ := d.Next()
	if e3.id != "c2" {
		t.Fatalf("third pop %s, want c2 after Release", e3.id)
	}
	d.Close()
}

// --- quota admission -------------------------------------------------------

func TestTenantQuotaMaxActive(t *testing.T) {
	q, err := NewQueue(Config{
		Dir: t.TempDir(), RetrySeed: 1, Workers: 1,
		RetryBase: time.Hour, RetryCap: 2 * time.Hour,
		Policy: TenantPolicy{
			Tenants: map[string]TenantQuota{"greedy": {MaxActive: 2}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(time.Second)

	// Budget-starved jobs fail fast and park in hour-long backoff, pinning
	// their active slots.
	small := eqnText(t, 8)
	spec := func() *JobSpec { return &JobSpec{Netlist: small, BudgetTerms: 1, MaxAttempts: 3} }
	for i := 0; i < 2; i++ {
		sp := spec()
		sp.Tenant = "greedy"
		if _, err := q.Submit(sp); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	sp := spec()
	sp.Tenant = "greedy"
	_, err = q.Submit(sp)
	var qe *QuotaError
	if !errors.As(err, &qe) || !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third submit err = %v, want QuotaError", err)
	}
	if qe.Reason != "active" || qe.Tenant != "greedy" {
		t.Fatalf("QuotaError = %+v, want reason=active tenant=greedy", qe)
	}
	if qe.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want positive", qe.RetryAfter)
	}
	// Another tenant is not affected by greedy's quota.
	if _, err := q.Submit(spec()); err != nil {
		t.Fatalf("default-tenant submit blocked by greedy's quota: %v", err)
	}
	// Quota released on terminal: check tenant accounting is visible.
	for _, ts := range q.Tenants() {
		if ts.Tenant == "greedy" {
			if ts.Active != 2 || ts.Rejected != 1 {
				t.Fatalf("greedy status = %+v, want Active=2 Rejected=1", ts)
			}
		}
	}
}

func TestTenantQuotaRateBucket(t *testing.T) {
	q, err := NewQueue(Config{
		Dir: t.TempDir(), RetrySeed: 1, Workers: 1,
		RetryBase: time.Hour, RetryCap: 2 * time.Hour,
		Policy: TenantPolicy{
			Tenants: map[string]TenantQuota{"drip": {Rate: 0.001, Burst: 1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(time.Second)

	small := eqnText(t, 8)
	sp := &JobSpec{Netlist: small, Tenant: "drip", BudgetTerms: 1}
	if _, err := q.Submit(sp); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, err = q.Submit(&JobSpec{Netlist: small, Tenant: "drip", BudgetTerms: 1})
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Reason != "rate" {
		t.Fatalf("second submit err = %v, want rate QuotaError", err)
	}
	// 1 token at 0.001/s: the honest hint is ~1000s, derived from the
	// tenant's own bucket, not the global queue.
	if qe.RetryAfter < 500*time.Second {
		t.Fatalf("RetryAfter = %v, want ~1000s from token refill", qe.RetryAfter)
	}
}

func TestTenantQuotaQueuedBytes(t *testing.T) {
	small := eqnText(t, 8)
	q, err := NewQueue(Config{
		Dir: t.TempDir(), RetrySeed: 1, Workers: 1,
		RetryBase: time.Hour, RetryCap: 2 * time.Hour,
		Policy: TenantPolicy{
			Tenants: map[string]TenantQuota{"bulky": {MaxQueuedBytes: int64(len(small)) + 10}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(time.Second)

	if _, err := q.Submit(&JobSpec{Netlist: small, Tenant: "bulky", BudgetTerms: 1}); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, err = q.Submit(&JobSpec{Netlist: small, Tenant: "bulky", BudgetTerms: 1})
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Reason != "bytes" {
		t.Fatalf("second submit err = %v, want bytes QuotaError", err)
	}
}

// --- load shedding ---------------------------------------------------------

func TestShedderStagesAndHysteresis(t *testing.T) {
	s := newShedder(ShedConfig{})
	steps := []struct {
		load float64
		want int
	}{
		{0.50, 0}, {0.80, 1}, {0.92, 2}, {0.99, 3},
		// De-escalation honors hysteresis: stage 3 exits below 0.87,
		// stage 2 below 0.80, stage 1 below 0.65.
		{0.88, 3}, {0.85, 2}, {0.79, 1}, {0.70, 1}, {0.60, 0},
	}
	for i, st := range steps {
		if got := s.recompute(st.load); got != st.want {
			t.Fatalf("step %d: recompute(%.2f) = %d, want %d", i, st.load, got, st.want)
		}
	}
}

func TestShedderMemoryWatermark(t *testing.T) {
	heap := uint64(0)
	s := newShedder(ShedConfig{MemHighBytes: 1 << 30, MemProbe: func() uint64 { return heap }})
	if got := s.recompute(0.1); got != 0 {
		t.Fatalf("low heap: stage %d, want 0", got)
	}
	heap = 2 << 30
	if got := s.recompute(0.1); got != 2 {
		t.Fatalf("high heap: stage %d, want forced 2", got)
	}
	heap = 0
	if got := s.recompute(0.1); got != 0 {
		t.Fatalf("heap back down: stage %d, want 0", got)
	}
}

func TestShedderStageRules(t *testing.T) {
	s := newShedder(ShedConfig{})
	local := &JobSpec{}
	remote := &JobSpec{Shard: -1}
	if err := s.admitStage(0, local, 9); err != nil {
		t.Fatalf("stage 0 rejected priority 9: %v", err)
	}
	if err := s.admitStage(1, local, 7); err == nil {
		t.Fatal("stage 1 admitted priority 7")
	}
	if err := s.admitStage(1, local, 6); err != nil {
		t.Fatalf("stage 1 rejected priority 6: %v", err)
	}
	if err := s.admitStage(2, local, 1); err == nil {
		t.Fatal("stage 2 admitted a local-extraction job")
	}
	if err := s.admitStage(2, remote, 1); err != nil {
		t.Fatalf("stage 2 rejected a coordinator-only job: %v", err)
	}
	if err := s.admitStage(3, remote, 1); err == nil {
		t.Fatal("stage 3 admitted a job")
	}
	var oe *OverloadError
	err := s.admitStage(3, local, 5)
	if !errors.As(err, &oe) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("stage-3 rejection err = %v, want OverloadError", err)
	}
	if oe.Stage != 3 {
		t.Fatalf("OverloadError.Stage = %d, want 3", oe.Stage)
	}
}

// --- batch dedup -----------------------------------------------------------

func TestBatchDedupSingleExtraction(t *testing.T) {
	q, err := NewQueue(Config{Dir: t.TempDir(), RetrySeed: 1, Capacity: 128, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(5 * time.Second)

	small := eqnText(t, 8)
	specs := make([]*JobSpec, 50)
	for i := range specs {
		specs[i] = &JobSpec{Netlist: small, Name: "dup"}
	}
	items := q.SubmitBatch(specs)
	ids := make([]string, 0, len(items))
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("batch item %d rejected: %v", i, it.Err)
		}
		ids = append(ids, it.State.ID)
	}

	var wantP string
	for _, id := range ids {
		st := waitStatus(t, q, id)
		if st.Status != StatusDone {
			t.Fatalf("job %s ended %s: %s", id, st.Status, st.Error)
		}
		if st.Result == nil || !st.Result.Verified {
			t.Fatalf("job %s: missing/unverified result %+v", id, st.Result)
		}
		if wantP == "" {
			wantP = st.Result.Polynomial
		} else if st.Result.Polynomial != wantP {
			t.Fatalf("job %s polynomial %s, want %s", id, st.Result.Polynomial, wantP)
		}
	}
	if started := q.counter("extractions_started").Value(); started != 1 {
		t.Fatalf("extractions_started = %d for 50 identical jobs, want exactly 1", started)
	}
	if deduped := q.counter("jobs_deduped").Value(); deduped != 49 {
		t.Fatalf("jobs_deduped = %d, want 49", deduped)
	}
}

func TestDedupLeaderFailureFansOutToFollowers(t *testing.T) {
	q, err := NewQueue(Config{Dir: t.TempDir(), RetrySeed: 1, Workers: 1, MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(5 * time.Second)

	// Budget-starved: the leader fails permanently; followers must fail too,
	// not hang forever waiting on a result that never comes.
	small := eqnText(t, 8)
	items := q.SubmitBatch([]*JobSpec{
		{Netlist: small, BudgetTerms: 1, MaxAttempts: 1},
		{Netlist: small, BudgetTerms: 1, MaxAttempts: 1},
	})
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("batch item %d: %v", i, it.Err)
		}
		st := waitStatus(t, q, it.State.ID)
		if st.Status != StatusFailed || st.Error == "" {
			t.Fatalf("item %d ended %s (%q), want failed with the leader's error", i, st.Status, st.Error)
		}
	}
}

// --- deadline propagation --------------------------------------------------

func TestDeadlineExpiresWhileQueued(t *testing.T) {
	q, err := NewQueue(Config{Dir: t.TempDir(), RetrySeed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(5 * time.Second)

	// A slow blocker pins the single worker past the second job's 1ms
	// deadline; the deadline job must fail at dispatch without extracting.
	blocker, err := q.Submit(&JobSpec{Netlist: eqnText(t, 32), Name: "blocker"})
	if err != nil {
		t.Fatal(err)
	}
	doomed, err := q.Submit(&JobSpec{Netlist: eqnText(t, 8), DeadlineMS: 1, Name: "doomed"})
	if err != nil {
		t.Fatal(err)
	}
	st := waitStatus(t, q, doomed.ID)
	if st.Status != StatusFailed || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("doomed job: %s (%q), want deadline failure", st.Status, st.Error)
	}
	if st.Attempts != 0 {
		t.Fatalf("doomed job burned %d attempts, want 0 (failed at dispatch)", st.Attempts)
	}
	if n := q.counter("jobs_deadline_expired").Value(); n < 1 {
		t.Fatalf("jobs_deadline_expired = %d, want >= 1", n)
	}
	waitStatus(t, q, blocker.ID)
}

func TestDeadlineCancelsMidExtraction(t *testing.T) {
	q, err := NewQueue(Config{
		Dir: t.TempDir(), RetrySeed: 1, Workers: 1, MaxAttempts: 3,
		ShardLeaseTTL: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(5 * time.Second)

	// A sharded extraction big enough to outlive its 150ms deadline (a
	// Montgomery multiplier's deep cones take seconds at this width): the
	// deadline context must cancel the governor cone work AND release the
	// pool's leases (pool.Close on the extract return path) within one TTL.
	st0, err := q.Submit(&JobSpec{
		Netlist: montgomeryText(t, 96), Shard: 2, DeadlineMS: 150, Name: "deadline-shard",
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	st := waitStatus(t, q, st0.ID)
	elapsed := time.Since(start)
	if st.Status != StatusFailed || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("job ended %s (%q), want deadline failure", st.Status, st.Error)
	}
	// Attempts must not retry past an absolute deadline.
	if st.Attempts != 1 {
		t.Fatalf("attempts = %d, want exactly 1 (no retry after deadline)", st.Attempts)
	}
	// Terminal within deadline + one lease TTL + scheduling slack.
	if elapsed > 5*time.Second {
		t.Fatalf("deadline job took %v to settle, want prompt cancellation", elapsed)
	}
	// Every lease the pool granted was released when the pool closed.
	if active := q.gauge("leases_active").Value(); active != 0 {
		t.Fatalf("leases_active = %d after deadline cancellation, want 0", active)
	}
	if n := q.counter("jobs_deadline_expired").Value(); n < 1 {
		t.Fatalf("jobs_deadline_expired = %d, want >= 1", n)
	}
}

// --- readyz / shed integration --------------------------------------------

func TestReadyStateFlipsUnderSaturationAndBack(t *testing.T) {
	q, err := NewQueue(Config{
		Dir: t.TempDir(), RetrySeed: 1, Capacity: 4, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(5 * time.Second)

	if rs := q.ReadyState(); !rs.Ready {
		t.Fatalf("fresh queue not ready: %+v", rs)
	}
	// Fill to capacity: two slow Montgomery jobs pin both workers for
	// seconds while two small jobs queue behind them, so load is still 1.0
	// (=> stage 3) when sampled — small jobs alone can finish during the
	// fsync-paced submit loop and deflate the load before the check.
	slow, small := montgomeryText(t, 96), eqnText(t, 16)
	ids := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		text := small
		if i < 2 {
			text = slow
		}
		st, err := q.Submit(&JobSpec{Netlist: text})
		if err != nil {
			t.Fatalf("fill submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}
	rs := q.ReadyState()
	if rs.Ready || rs.ShedStage < 3 {
		t.Fatalf("saturated queue ReadyState = %+v, want not-ready at stage 3", rs)
	}
	if rs.Reason == "" {
		t.Fatal("not-ready state must carry a reason")
	}
	// Drain the work; readiness must flip back on its own.
	for _, id := range ids {
		waitStatus(t, q, id)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		rs = q.ReadyState()
		if rs.Ready && rs.ShedStage == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ReadyState never recovered: %+v", rs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
