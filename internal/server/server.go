package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/galoisfield/gfre/internal/obs"
	"github.com/galoisfield/gfre/internal/shard"
)

// maxUploadBytes bounds a job submission body. The largest generated
// benchmarks (GF(2^571) Montgomery EQN) are tens of megabytes; anything
// past this is abuse, not a netlist.
const maxUploadBytes = 256 << 20

// Server is the gfred HTTP API over a Queue.
//
// Submissions are attributed to a tenant: the X-Tenant header names one
// directly, or "Authorization: Bearer <key>" resolves through the queue's
// API-key table; absent both, jobs run as the default tenant. Per-tenant
// token-bucket and resource quotas answer 429 with a Retry-After derived
// from that tenant's own refill state.
//
//	POST /jobs             submit a job (JSON JobSpec, or a raw netlist body)
//	POST /jobs/batch       submit a JSON array of JobSpecs as one batch with
//	                       content-hash dedup forced: identical items share a
//	                       single extraction, per-item outcomes in the reply
//	GET  /jobs             list known jobs, newest first
//	GET  /jobs/{id}        one job's state (includes the result when done)
//	GET  /jobs/{id}/events one job's telemetry as SSE (ends at the terminal event)
//	GET  /events           the whole telemetry journal as SSE
//	GET  /tenants          per-tenant admission state (active, rejected, ...)
//	GET  /debug/live       self-contained live dashboard over /events
//	GET  /healthz          liveness: 200 while the process serves
//	GET  /readyz           readiness as JSON: 200 while accepting jobs, 503
//	                       with the reason (draining, shed stage) when not
//	GET  /metrics          metrics registry: JSON by default, Prometheus text
//	                       format 0.0.4 under Accept: text/plain (or
//	                       ?format=prometheus)
//	POST /shards/lease       lease a batch of cone IDs (204 = no work)
//	POST /shards/{id}/renew  heartbeat a lease (410 = fenced)
//	POST /shards/{id}/result submit packed cone results (410 = fenced)
type Server struct {
	queue *Queue
	rec   *obs.Recorder
	mux   *http.ServeMux
	// heartbeat overrides the SSE keep-alive period (0 = defaultHeartbeat);
	// tests shrink it to observe heartbeats without waiting 15s.
	heartbeat time.Duration
}

// NewServer wires the API around a queue. rec backs GET /metrics; use the
// same recorder the queue was configured with.
func NewServer(q *Queue, rec *obs.Recorder) *Server {
	s := &Server{queue: q, rec: rec, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /jobs/batch", s.handleBatch)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /tenants", s.handleTenants)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /events", s.handleEvents)
	s.mux.HandleFunc("GET /debug/live", s.handleLive)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /shards/lease", s.handleShardLease)
	s.mux.HandleFunc("POST /shards/{id}/renew", s.handleShardRenew)
	s.mux.HandleFunc("POST /shards/{id}/result", s.handleShardResult)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// tenantFromRequest resolves the submission's tenant: X-Tenant header first,
// then an API key presented as "Authorization: Bearer <key>". An unknown key
// is an authentication failure (the client asked for an identity the policy
// does not grant), not a fall-through to the default tenant.
func (s *Server) tenantFromRequest(r *http.Request) (string, error) {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t, nil
	}
	if auth := r.Header.Get("Authorization"); auth != "" {
		key, ok := strings.CutPrefix(auth, "Bearer ")
		if !ok {
			return "", fmt.Errorf("unsupported Authorization scheme")
		}
		tenant, ok := s.queue.ResolveAPIKey(strings.TrimSpace(key))
		if !ok {
			return "", fmt.Errorf("unknown API key")
		}
		return tenant, nil
	}
	return "", nil // queue defaults to DefaultTenant
}

// handleSubmit accepts a job: a JSON JobSpec body (Content-Type
// application/json) or a raw netlist body (any other type; format from the
// ?format= query parameter, extraction knobs at their defaults).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant, err := s.tenantFromRequest(r)
	if err != nil {
		httpError(w, http.StatusUnauthorized, "%v", err)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxUploadBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxUploadBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", maxUploadBytes)
		return
	}
	spec := &JobSpec{}
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(body, spec); err != nil {
			httpError(w, http.StatusBadRequest, "job spec: %v", err)
			return
		}
	} else {
		spec.Netlist = string(body)
		spec.Format = r.URL.Query().Get("format")
	}
	if tenant != "" {
		spec.Tenant = tenant
	}
	st, err := s.queue.Submit(spec)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

// writeSubmitError maps a Submit failure onto the HTTP response.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	code, retryAfter := submitErrorCode(err, s.queue)
	if retryAfter != "" {
		w.Header().Set("Retry-After", retryAfter)
	}
	var lintRej *LintRejection
	if errors.As(err, &lintRej) {
		// Structurally defective netlist: the findings body tells the
		// client what to fix (cycle witness, multi-driven signals, ...).
		writeJSON(w, code, struct {
			Error    string `json:"error"`
			Findings any    `json:"findings"`
		}{Error: lintRej.Error(), Findings: lintRej.Report.Findings})
		return
	}
	httpError(w, code, "%v", err)
}

// submitErrorCode classifies a Submit failure into a status code plus an
// optional Retry-After value. Quota rejections carry the tenant's own retry
// hint (token refill time); queue-full and overload rejections derive one
// from the global queue state.
func submitErrorCode(err error, q *Queue) (code int, retryAfter string) {
	var (
		lintRej  *LintRejection
		quotaErr *QuotaError
	)
	switch {
	case errors.As(err, &lintRej):
		return http.StatusUnprocessableEntity, ""
	case errors.As(err, &quotaErr):
		return http.StatusTooManyRequests, retryAfterSeconds(quotaErr.RetryAfter)
	case errors.Is(err, ErrQuotaExceeded):
		return http.StatusTooManyRequests, retryAfterSeconds(time.Second)
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrOverloaded):
		// Shed load, with an honest hint derived from the queue's actual
		// state: seconds until the earliest parked backoff expires when
		// everything is backing off, or the estimated per-worker drain when
		// jobs are actively running.
		return http.StatusTooManyRequests, retryAfterSeconds(q.RetryAfterHint())
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, ""
	case errors.Is(err, ErrBadSpec):
		return http.StatusBadRequest, ""
	default:
		return http.StatusInternalServerError, ""
	}
}

// maxBatchItems bounds one POST /jobs/batch request.
const maxBatchItems = 256

// batchItemReply is one submission outcome in a batch response.
type batchItemReply struct {
	Job   *JobState `json:"job,omitempty"`
	Error string    `json:"error,omitempty"`
	Code  int       `json:"code,omitempty"`
}

// batchReply is the POST /jobs/batch response body.
type batchReply struct {
	Accepted int              `json:"accepted"`
	Rejected int              `json:"rejected"`
	Items    []batchItemReply `json:"items"`
}

// handleBatch accepts a JSON array of JobSpecs as one batch. Dedup is forced:
// N identical items admit a single extraction whose result fans out to every
// accepted job. Outcomes are per item — the reply is 202 if anything was
// accepted, 429 if everything was rejected for load or quota reasons, 400
// otherwise.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	tenant, err := s.tenantFromRequest(r)
	if err != nil {
		httpError(w, http.StatusUnauthorized, "%v", err)
		return
	}
	var specs []*JobSpec
	if err := readJSON(r, maxUploadBytes, &specs); err != nil {
		httpError(w, http.StatusBadRequest, "batch body: %v", err)
		return
	}
	if len(specs) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(specs) > maxBatchItems {
		httpError(w, http.StatusRequestEntityTooLarge, "batch exceeds %d items", maxBatchItems)
		return
	}
	for _, spec := range specs {
		if spec != nil && tenant != "" {
			spec.Tenant = tenant
		}
	}
	reply := batchReply{Items: make([]batchItemReply, len(specs))}
	results := s.queue.SubmitBatch(specs)
	allThrottled := true
	for i, res := range results {
		if res.Err != nil {
			code, _ := submitErrorCode(res.Err, s.queue)
			reply.Items[i] = batchItemReply{Error: res.Err.Error(), Code: code}
			reply.Rejected++
			if code != http.StatusTooManyRequests {
				allThrottled = false
			}
			continue
		}
		reply.Items[i] = batchItemReply{Job: res.State}
		reply.Accepted++
	}
	switch {
	case reply.Accepted > 0:
		writeJSON(w, http.StatusAccepted, reply)
	case allThrottled:
		w.Header().Set("Retry-After", retryAfterSeconds(s.queue.RetryAfterHint()))
		writeJSON(w, http.StatusTooManyRequests, reply)
	default:
		writeJSON(w, http.StatusBadRequest, reply)
	}
}

// handleTenants reports per-tenant admission state.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.queue.Tenants())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.queue.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.queue.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n") //nolint:errcheck — best-effort health body
}

// handleReadyz reports readiness as JSON with the queue pressure behind the
// verdict: 503 while draining or while the load-shed controller sits at its
// reject-everything stage, so load balancers stop routing to a node that
// would only answer 429.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rs := s.queue.ReadyState()
	code := http.StatusOK
	if !rs.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, rs)
}

// handleMetrics content-negotiates the registry snapshot: Prometheus text
// format 0.0.4 when the client asks for text/plain or openmetrics (that is
// what scrapers send), or with ?format=prometheus; indented JSON otherwise,
// which keeps curl and the existing tooling unchanged.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	accept := r.Header.Get("Accept")
	if r.URL.Query().Get("format") == "prometheus" ||
		strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "openmetrics") {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, s.rec.Snapshot(), "gfre") //nolint:errcheck — client went away
		return
	}
	writeJSON(w, http.StatusOK, s.rec.Snapshot())
}

// retryAfterSeconds renders a duration as the integral seconds form of the
// Retry-After header, rounding up so the client never retries early.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// handleShardLease hands a batch of cone leases to a remote peer. 204 means
// no leasable work right now (retry shortly); 404 means this daemon runs
// without a hub.
func (s *Server) handleShardLease(w http.ResponseWriter, r *http.Request) {
	hub := s.queue.Hub()
	if hub == nil {
		httpError(w, http.StatusNotFound, "shard hub not enabled")
		return
	}
	var req shard.LeaseRequest
	if err := readJSON(r, 1<<20, &req); err != nil {
		httpError(w, http.StatusBadRequest, "lease request: %v", err)
		return
	}
	g, err := hub.Lease(req.Worker, req.Max, req.Have)
	if err != nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, g)
}

// handleShardRenew heartbeats a lease; 410 Gone is the epoch fence.
func (s *Server) handleShardRenew(w http.ResponseWriter, r *http.Request) {
	hub := s.queue.Hub()
	if hub == nil {
		httpError(w, http.StatusNotFound, "shard hub not enabled")
		return
	}
	var req shard.RenewRequest
	if err := readJSON(r, 1<<20, &req); err != nil {
		httpError(w, http.StatusBadRequest, "renew request: %v", err)
		return
	}
	deadline, err := hub.Renew(r.PathValue("id"), req.Epoch)
	if err != nil {
		httpError(w, http.StatusGone, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, shard.RenewReply{DeadlineUnixNS: deadline.UnixNano()})
}

// handleShardResult accepts a peer's result envelope. The per-cone verdicts
// ride back in the SubmitReply; a fully fenced lease gets 410 so the peer
// abandons it.
func (s *Server) handleShardResult(w http.ResponseWriter, r *http.Request) {
	hub := s.queue.Hub()
	if hub == nil {
		httpError(w, http.StatusNotFound, "shard hub not enabled")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxUploadBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	env, err := shard.DecodeResultEnvelope(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "result envelope: %v", err)
		return
	}
	reply, err := hub.Submit(r.PathValue("id"), env.Epoch, env.Cones)
	if err != nil {
		httpError(w, http.StatusGone, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

// readJSON decodes a bounded JSON request body into v.
func readJSON(r *http.Request, limit int64, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, limit))
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck — client went away, nothing to do
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}
