package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/galoisfield/gfre/internal/obs"
	"github.com/galoisfield/gfre/internal/shard"
)

// maxUploadBytes bounds a job submission body. The largest generated
// benchmarks (GF(2^571) Montgomery EQN) are tens of megabytes; anything
// past this is abuse, not a netlist.
const maxUploadBytes = 256 << 20

// Server is the gfred HTTP API over a Queue.
//
//	POST /jobs             submit a job (JSON JobSpec, or a raw netlist body)
//	GET  /jobs             list known jobs, newest first
//	GET  /jobs/{id}        one job's state (includes the result when done)
//	GET  /jobs/{id}/events one job's telemetry as SSE (ends at the terminal event)
//	GET  /events           the whole telemetry journal as SSE
//	GET  /debug/live       self-contained live dashboard over /events
//	GET  /healthz          liveness: 200 while the process serves
//	GET  /readyz           readiness: 200 while accepting jobs, 503 when draining
//	GET  /metrics          metrics registry: JSON by default, Prometheus text
//	                       format 0.0.4 under Accept: text/plain (or
//	                       ?format=prometheus)
//	POST /shards/lease       lease a batch of cone IDs (204 = no work)
//	POST /shards/{id}/renew  heartbeat a lease (410 = fenced)
//	POST /shards/{id}/result submit packed cone results (410 = fenced)
type Server struct {
	queue *Queue
	rec   *obs.Recorder
	mux   *http.ServeMux
	// heartbeat overrides the SSE keep-alive period (0 = defaultHeartbeat);
	// tests shrink it to observe heartbeats without waiting 15s.
	heartbeat time.Duration
}

// NewServer wires the API around a queue. rec backs GET /metrics; use the
// same recorder the queue was configured with.
func NewServer(q *Queue, rec *obs.Recorder) *Server {
	s := &Server{queue: q, rec: rec, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /events", s.handleEvents)
	s.mux.HandleFunc("GET /debug/live", s.handleLive)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /shards/lease", s.handleShardLease)
	s.mux.HandleFunc("POST /shards/{id}/renew", s.handleShardRenew)
	s.mux.HandleFunc("POST /shards/{id}/result", s.handleShardResult)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// handleSubmit accepts a job: a JSON JobSpec body (Content-Type
// application/json) or a raw netlist body (any other type; format from the
// ?format= query parameter, extraction knobs at their defaults).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxUploadBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxUploadBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", maxUploadBytes)
		return
	}
	spec := &JobSpec{}
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(body, spec); err != nil {
			httpError(w, http.StatusBadRequest, "job spec: %v", err)
			return
		}
	} else {
		spec.Netlist = string(body)
		spec.Format = r.URL.Query().Get("format")
	}
	st, err := s.queue.Submit(spec)
	var lintRej *LintRejection
	switch {
	case errors.As(err, &lintRej):
		// Structurally defective netlist: the findings body tells the
		// client what to fix (cycle witness, multi-driven signals, ...).
		writeJSON(w, http.StatusUnprocessableEntity, struct {
			Error    string `json:"error"`
			Findings any    `json:"findings"`
		}{Error: lintRej.Error(), Findings: lintRej.Report.Findings})
		return
	case errors.Is(err, ErrQueueFull):
		// Shed load, with an honest hint derived from the queue's actual
		// state: seconds until the earliest parked backoff expires when
		// everything is backing off, or the estimated per-worker drain when
		// jobs are actively running.
		w.Header().Set("Retry-After", retryAfterSeconds(s.queue.RetryAfterHint()))
		httpError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, ErrBadSpec):
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Location", "/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.queue.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.queue.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n") //nolint:errcheck — best-effort health body
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.queue.Draining() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ready\n") //nolint:errcheck — best-effort readiness body
}

// handleMetrics content-negotiates the registry snapshot: Prometheus text
// format 0.0.4 when the client asks for text/plain or openmetrics (that is
// what scrapers send), or with ?format=prometheus; indented JSON otherwise,
// which keeps curl and the existing tooling unchanged.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	accept := r.Header.Get("Accept")
	if r.URL.Query().Get("format") == "prometheus" ||
		strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "openmetrics") {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, s.rec.Snapshot(), "gfre") //nolint:errcheck — client went away
		return
	}
	writeJSON(w, http.StatusOK, s.rec.Snapshot())
}

// retryAfterSeconds renders a duration as the integral seconds form of the
// Retry-After header, rounding up so the client never retries early.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// handleShardLease hands a batch of cone leases to a remote peer. 204 means
// no leasable work right now (retry shortly); 404 means this daemon runs
// without a hub.
func (s *Server) handleShardLease(w http.ResponseWriter, r *http.Request) {
	hub := s.queue.Hub()
	if hub == nil {
		httpError(w, http.StatusNotFound, "shard hub not enabled")
		return
	}
	var req shard.LeaseRequest
	if err := readJSON(r, 1<<20, &req); err != nil {
		httpError(w, http.StatusBadRequest, "lease request: %v", err)
		return
	}
	g, err := hub.Lease(req.Worker, req.Max, req.Have)
	if err != nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, g)
}

// handleShardRenew heartbeats a lease; 410 Gone is the epoch fence.
func (s *Server) handleShardRenew(w http.ResponseWriter, r *http.Request) {
	hub := s.queue.Hub()
	if hub == nil {
		httpError(w, http.StatusNotFound, "shard hub not enabled")
		return
	}
	var req shard.RenewRequest
	if err := readJSON(r, 1<<20, &req); err != nil {
		httpError(w, http.StatusBadRequest, "renew request: %v", err)
		return
	}
	deadline, err := hub.Renew(r.PathValue("id"), req.Epoch)
	if err != nil {
		httpError(w, http.StatusGone, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, shard.RenewReply{DeadlineUnixNS: deadline.UnixNano()})
}

// handleShardResult accepts a peer's result envelope. The per-cone verdicts
// ride back in the SubmitReply; a fully fenced lease gets 410 so the peer
// abandons it.
func (s *Server) handleShardResult(w http.ResponseWriter, r *http.Request) {
	hub := s.queue.Hub()
	if hub == nil {
		httpError(w, http.StatusNotFound, "shard hub not enabled")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxUploadBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	env, err := shard.DecodeResultEnvelope(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "result envelope: %v", err)
		return
	}
	reply, err := hub.Submit(r.PathValue("id"), env.Epoch, env.Cones)
	if err != nil {
		httpError(w, http.StatusGone, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

// readJSON decodes a bounded JSON request body into v.
func readJSON(r *http.Request, limit int64, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, limit))
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck — client went away, nothing to do
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}
