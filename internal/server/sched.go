package server

import (
	"sync"
	"time"
)

const (
	// numPriorities is the number of priority classes: 1 (highest) through
	// 9 (lowest).
	numPriorities = 9
	// DefaultPriority is assigned when neither the spec nor the tenant
	// policy sets one.
	DefaultPriority = 5
	// DefaultAgingStep is the starvation-aging interval: a queued job's
	// effective priority improves by one class per step waited, so even
	// priority-9 work under a saturated priority-1 flood runs within
	// 8 steps.
	DefaultAgingStep = 30 * time.Second
)

// clampPriority normalizes a client- or policy-supplied priority into the
// 1..numPriorities scale (0 = unset → fallback).
func clampPriority(p, fallback int) int {
	if p == 0 {
		p = fallback
	}
	if p < 1 {
		p = 1
	}
	if p > numPriorities {
		p = numPriorities
	}
	return p
}

// schedEntry is one queued job in the dispatcher.
type schedEntry struct {
	id       string
	tenant   string
	priority int // 1..numPriorities after clamping
	seq      uint64
	enqueued time.Time
}

// tenantSched is the per-tenant scheduling state: one FIFO bucket per
// priority class, a stride-scheduling pass value, and the running count the
// MaxRunning quota is enforced against.
type tenantSched struct {
	name    string
	pass    float64
	weight  int
	maxRun  int
	buckets [numPriorities][]schedEntry
	queued  int
	running int
}

// dispatcher replaces the strict-FIFO runnable channel with weighted-fair
// priority scheduling:
//
//   - within a tenant, the lowest effective priority class runs first, FIFO
//     within a class. Effective priority ages: a bucket's head improves by
//     one class per aging step it has waited, so low-priority work always
//     drains (starvation freedom);
//   - across tenants tied on effective priority, stride scheduling picks
//     the smallest pass value and advances it by 1/weight — a weight-3
//     tenant drains three jobs per one of a weight-1 tenant;
//   - a tenant at its MaxRunning cap is skipped entirely, so one tenant's
//     long jobs can never occupy every worker.
//
// All methods are safe for concurrent use; Next blocks until work is
// dispatchable or Close is called.
type dispatcher struct {
	mu      sync.Mutex
	cond    *sync.Cond
	closed  bool
	aging   time.Duration
	clock   func() time.Time
	tenants map[string]*tenantSched
	queued  int
}

func newDispatcher(aging time.Duration, clock func() time.Time) *dispatcher {
	if aging <= 0 {
		aging = DefaultAgingStep
	}
	if clock == nil {
		clock = time.Now
	}
	d := &dispatcher{aging: aging, clock: clock, tenants: map[string]*tenantSched{}}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// Push enqueues an entry under its tenant, adopting weight and maxRun from
// the tenant's quota. A tenant (re)entering the active set starts at the
// current minimum pass, so idling never banks credit to monopolize later.
func (d *dispatcher) Push(e schedEntry, weight, maxRun int) {
	e.priority = clampPriority(e.priority, DefaultPriority)
	if weight < 1 {
		weight = 1
	}
	if e.enqueued.IsZero() {
		e.enqueued = d.clock()
	}
	d.mu.Lock()
	t := d.tenants[e.tenant]
	if t == nil {
		t = &tenantSched{name: e.tenant}
		d.tenants[e.tenant] = t
	}
	t.weight, t.maxRun = weight, maxRun
	if t.queued == 0 && t.running == 0 {
		minPass, found := 0.0, false
		for _, o := range d.tenants {
			if o == t || (o.queued == 0 && o.running == 0) {
				continue
			}
			if !found || o.pass < minPass {
				minPass, found = o.pass, true
			}
		}
		if found && t.pass < minPass {
			t.pass = minPass
		}
	}
	t.buckets[e.priority-1] = append(t.buckets[e.priority-1], e)
	t.queued++
	d.queued++
	d.mu.Unlock()
	d.cond.Signal()
}

// Next blocks for the next dispatchable entry. ok is false once the
// dispatcher is closed — entries still queued stay queued (they are durable
// in the spool; a drain hands them to the next daemon start). The popped
// entry's tenant is charged one running slot; the caller must Release it.
func (d *dispatcher) Next() (schedEntry, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.closed {
			return schedEntry{}, false
		}
		if e, ok := d.popLocked(d.clock()); ok {
			return e, true
		}
		// Either nothing is queued, or everything queued belongs to tenants
		// at their MaxRunning cap — both resolve via Push or Release, so a
		// plain wait suffices (aging changes ordering, never eligibility).
		d.cond.Wait()
	}
}

func (d *dispatcher) popLocked(now time.Time) (schedEntry, bool) {
	var (
		best       *tenantSched
		bestEff    = numPriorities + 1
		bestBucket = -1
	)
	for _, t := range d.tenants {
		if t.queued == 0 || (t.maxRun > 0 && t.running >= t.maxRun) {
			continue
		}
		eff, bucket := t.bestBucketLocked(now, d.aging)
		if eff < bestEff ||
			(eff == bestEff && (t.pass < best.pass ||
				(t.pass == best.pass && t.name < best.name))) {
			best, bestEff, bestBucket = t, eff, bucket
		}
	}
	if best == nil {
		return schedEntry{}, false
	}
	b := best.buckets[bestBucket]
	e := b[0]
	copy(b, b[1:])
	best.buckets[bestBucket] = b[:len(b)-1]
	best.queued--
	d.queued--
	best.running++
	best.pass += 1.0 / float64(best.weight)
	return e, true
}

// bestBucketLocked finds the tenant's most urgent non-empty bucket: lowest
// aged effective priority, ties broken by oldest head sequence. Buckets are
// FIFO, so the head is the oldest entry and the bucket's best effective
// priority is computable from it alone.
func (t *tenantSched) bestBucketLocked(now time.Time, aging time.Duration) (eff, bucket int) {
	eff, bucket = numPriorities+1, -1
	var bestSeq uint64
	for p := range t.buckets {
		b := t.buckets[p]
		if len(b) == 0 {
			continue
		}
		e := p + 1
		if w := now.Sub(b[0].enqueued); w > 0 && aging > 0 {
			e -= int(w / aging)
		}
		if e < 1 {
			e = 1
		}
		if e < eff || (e == eff && b[0].seq < bestSeq) {
			eff, bucket, bestSeq = e, p, b[0].seq
		}
	}
	return eff, bucket
}

// Release returns a tenant's running slot once its job leaves the running
// state (terminal, retry-parked, or drain-interrupted).
func (d *dispatcher) Release(tenant string) {
	d.mu.Lock()
	if t := d.tenants[tenant]; t != nil && t.running > 0 {
		t.running--
	}
	d.mu.Unlock()
	d.cond.Broadcast()
}

// Running reports a tenant's currently dispatched job count.
func (d *dispatcher) Running(tenant string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if t := d.tenants[tenant]; t != nil {
		return t.running
	}
	return 0
}

// Len is the total queued entry count.
func (d *dispatcher) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.queued
}

// Close wakes every blocked Next with ok=false. Queued entries are left in
// place — the spool owns durability.
func (d *dispatcher) Close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.cond.Broadcast()
}
