package server

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// DefaultTenant is the tenant jobs are attributed to when the submission
// carries no X-Tenant header, API key, or spec field.
const DefaultTenant = "default"

// TenantQuota bounds one tenant's use of the queue. The zero value is
// unlimited on every axis — a single-user deployment behaves exactly as it
// did before tenancy existed.
type TenantQuota struct {
	// Rate is the sustained admission rate in jobs per second, enforced by
	// a token bucket of Burst capacity (0 = unlimited). Burst defaults to
	// max(1, ceil(Rate)) when Rate is set.
	Rate  float64 `json:"rate,omitempty"`
	Burst int     `json:"burst,omitempty"`
	// MaxActive caps the tenant's non-terminal jobs (queued + running +
	// backing off); 0 = unlimited.
	MaxActive int `json:"max_active,omitempty"`
	// MaxRunning caps the tenant's concurrently extracting jobs; the
	// dispatcher never starts a job past it (0 = unlimited).
	MaxRunning int `json:"max_running,omitempty"`
	// MaxQueuedBytes caps the netlist bytes the tenant may hold in the
	// spool across its non-terminal jobs; 0 = unlimited.
	MaxQueuedBytes int64 `json:"max_queued_bytes,omitempty"`
	// Weight is the tenant's weighted-fair share in the dispatcher's stride
	// scheduler (0 = 1). A weight-3 tenant drains three jobs for every one
	// of a weight-1 tenant at equal priority.
	Weight int `json:"weight,omitempty"`
	// Priority is the default priority of the tenant's jobs, 1 (highest)
	// to 9 (lowest); 0 = DefaultPriority. A JobSpec.Priority overrides it.
	Priority int `json:"priority,omitempty"`
}

// TenantPolicy is the admission policy of a queue: quotas per tenant name
// plus the default applied to unknown tenants. The zero value admits
// everything under one unlimited default tenant.
type TenantPolicy struct {
	// Default applies to every tenant without an explicit entry.
	Default TenantQuota `json:"default"`
	// Tenants maps tenant name to quota.
	Tenants map[string]TenantQuota `json:"tenants,omitempty"`
	// APIKeys maps bearer tokens to tenant names, so clients can
	// authenticate with "Authorization: Bearer <key>" instead of the plain
	// X-Tenant header.
	APIKeys map[string]string `json:"api_keys,omitempty"`
}

// Quota resolves the quota for a tenant name.
func (p *TenantPolicy) Quota(tenant string) TenantQuota {
	if q, ok := p.Tenants[tenant]; ok {
		return q
	}
	return p.Default
}

// ErrQuotaExceeded tags admissions rejected by a per-tenant quota; the HTTP
// layer maps it to 429 with a Retry-After derived from the tenant's own
// state (token refill time), not the global queue.
var ErrQuotaExceeded = errors.New("server: tenant quota exceeded")

// QuotaError carries which tenant hit which quota and when retrying could
// succeed.
type QuotaError struct {
	Tenant     string
	Reason     string // "rate", "active", "bytes"
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("server: tenant %q quota exceeded (%s)", e.Tenant, e.Reason)
}

func (e *QuotaError) Unwrap() error { return ErrQuotaExceeded }

// validTenantName bounds tenant names to metric- and header-safe strings.
func validTenantName(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// tenantState is the live admission state of one tenant: a token bucket and
// the resource counters its quotas are enforced against.
type tenantState struct {
	name  string
	quota TenantQuota

	tokens     float64
	lastRefill time.Time

	active      int   // non-terminal jobs
	queuedBytes int64 // netlist bytes of non-terminal jobs

	admitted int64
	rejected int64
}

// tenantLocked returns (creating if needed) the tenant's admission state;
// the caller holds q.mu.
func (q *Queue) tenantLocked(name string) *tenantState {
	ts := q.tenants[name]
	if ts == nil {
		quota := q.cfg.Policy.Quota(name)
		ts = &tenantState{name: name, quota: quota, lastRefill: time.Now()}
		if quota.Rate > 0 {
			ts.tokens = float64(ts.burst())
		}
		q.tenants[name] = ts
	}
	return ts
}

func (ts *tenantState) burst() int {
	if ts.quota.Burst > 0 {
		return ts.quota.Burst
	}
	b := int(ts.quota.Rate + 0.999)
	if b < 1 {
		b = 1
	}
	return b
}

// admit charges one submission of size bytes against the tenant's quotas.
// It either consumes a token and reserves the resources, or returns a
// QuotaError with a retry hint; nothing is charged on rejection.
func (ts *tenantState) admit(now time.Time, size int64) error {
	if ts.quota.Rate > 0 {
		ts.refill(now)
		if ts.tokens < 1 {
			ts.rejected++
			wait := time.Duration((1 - ts.tokens) / ts.quota.Rate * float64(time.Second))
			return &QuotaError{Tenant: ts.name, Reason: "rate", RetryAfter: wait}
		}
	}
	if ts.quota.MaxActive > 0 && ts.active >= ts.quota.MaxActive {
		ts.rejected++
		return &QuotaError{Tenant: ts.name, Reason: "active", RetryAfter: time.Second}
	}
	if ts.quota.MaxQueuedBytes > 0 && ts.queuedBytes+size > ts.quota.MaxQueuedBytes {
		ts.rejected++
		return &QuotaError{Tenant: ts.name, Reason: "bytes", RetryAfter: time.Second}
	}
	if ts.quota.Rate > 0 {
		ts.tokens--
	}
	ts.active++
	ts.queuedBytes += size
	ts.admitted++
	return nil
}

// release returns a terminal job's resources to the tenant.
func (ts *tenantState) release(size int64) {
	if ts.active > 0 {
		ts.active--
	}
	ts.queuedBytes -= size
	if ts.queuedBytes < 0 {
		ts.queuedBytes = 0
	}
}

func (ts *tenantState) refill(now time.Time) {
	if d := now.Sub(ts.lastRefill); d > 0 {
		ts.tokens += ts.quota.Rate * d.Seconds()
		if max := float64(ts.burst()); ts.tokens > max {
			ts.tokens = max
		}
	}
	ts.lastRefill = now
}

// TenantStatus is one tenant's point-in-time admission state, for tests,
// the chaos harness, and operators.
type TenantStatus struct {
	Tenant      string `json:"tenant"`
	Active      int    `json:"active"`
	Running     int    `json:"running"`
	QueuedBytes int64  `json:"queued_bytes"`
	Admitted    int64  `json:"admitted"`
	Rejected    int64  `json:"rejected"`
}

// Tenants snapshots every tenant the queue has seen, sorted by name.
func (q *Queue) Tenants() []TenantStatus {
	q.mu.Lock()
	out := make([]TenantStatus, 0, len(q.tenants))
	for _, ts := range q.tenants {
		out = append(out, TenantStatus{
			Tenant: ts.name, Active: ts.active, QueuedBytes: ts.queuedBytes,
			Admitted: ts.admitted, Rejected: ts.rejected,
		})
	}
	q.mu.Unlock()
	for i := range out {
		out[i].Running = q.sched.Running(out[i].Tenant)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// ResolveAPIKey maps a bearer token to its tenant name.
func (q *Queue) ResolveAPIKey(key string) (string, bool) {
	tenant, ok := q.cfg.Policy.APIKeys[key]
	return tenant, ok
}
