package server

import (
	_ "embed"
	"net/http"
)

// liveHTML is the self-contained live dashboard: stdlib-only, no external
// assets, fed entirely by the /events SSE stream.
//
//go:embed live.html
var liveHTML []byte

// handleLive serves the dashboard page.
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(liveHTML) //nolint:errcheck — client went away, nothing to do
}
