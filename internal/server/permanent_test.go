// Lives in the external test package: it needs diffcheck's trojan mutator,
// and diffcheck's overload harness imports server — an in-package test
// importing diffcheck would be an import cycle.
package server_test

import (
	"bytes"
	"testing"
	"time"

	"github.com/galoisfield/gfre/internal/diffcheck"
	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/polytab"
	"github.com/galoisfield/gfre/internal/server"
)

func awaitTerminal(t *testing.T, q *server.Queue, id string) *server.JobState {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := q.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Status.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job did not reach a terminal state in 30s")
	return nil
}

func TestPermanentErrorFailsFast(t *testing.T) {
	// A trojaned multiplier fails verification — retrying cannot fix the
	// netlist, so the job must burn exactly one attempt.
	p, err := polytab.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.MastrovitoMatrix(8, p)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := diffcheck.FlipXor(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := bad.WriteEQN(&buf); err != nil {
		t.Fatal(err)
	}

	q, err := server.NewQueue(server.Config{
		Dir: t.TempDir(), MaxAttempts: 5, RetryBase: time.Millisecond, RetrySeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(time.Second)
	st, err := q.Submit(&server.JobSpec{Netlist: buf.String()})
	if err != nil {
		t.Fatal(err)
	}
	final := awaitTerminal(t, q, st.ID)
	if final.Status != server.StatusFailed {
		t.Fatalf("trojaned job ended %s", final.Status)
	}
	if final.Attempts != 1 {
		t.Fatalf("permanent failure took %d attempts, want 1", final.Attempts)
	}
	if final.Error == "" {
		t.Fatal("failed job carries no error")
	}
}
