package server

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/galoisfield/gfre/internal/checkpoint"
	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/obs"
	"github.com/galoisfield/gfre/internal/polytab"
	"github.com/galoisfield/gfre/internal/rewrite"
)

// eqnText renders a generated multiplier as EQN text, the upload format.
func eqnText(t *testing.T, m int) string {
	t.Helper()
	p, err := polytab.Default(m)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(m, p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteEQN(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// waitStatus polls until the job reaches a terminal state.
func waitStatus(t *testing.T, q *Queue, id string) *JobState {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := q.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Status.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job did not reach a terminal state in 30s")
	return nil
}

func TestQueueRunsJobToCompletion(t *testing.T) {
	q, err := NewQueue(Config{Dir: t.TempDir(), RetrySeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(time.Second)

	st, err := q.Submit(&JobSpec{Netlist: eqnText(t, 8), Name: "gf8"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusQueued || st.ID == "" {
		t.Fatalf("submission state: %+v", st)
	}
	final := waitStatus(t, q, st.ID)
	if final.Status != StatusDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
	p, _ := polytab.Default(8)
	if final.Result == nil || final.Result.Polynomial != p.String() {
		t.Fatalf("result: %+v", final.Result)
	}
	if !final.Result.Verified {
		t.Fatal("service skipped verification")
	}
	if final.Attempts != 1 {
		t.Fatalf("attempts=%d, want 1", final.Attempts)
	}
}

func TestQueueFullSubmitRejected(t *testing.T) {
	// Deterministic occupancy: budget-starved jobs fail their first attempt
	// in milliseconds and then park in an hour-long retry backoff, holding
	// their slots regardless of how fast the worker runs.
	q, err := NewQueue(Config{
		Dir: t.TempDir(), Capacity: 2, RetrySeed: 1,
		RetryBase: time.Hour, RetryCap: 2 * time.Hour, MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(5 * time.Second)

	small := eqnText(t, 8)
	ids := []string{}
	for i := 0; i < 2; i++ {
		st, err := q.Submit(&JobSpec{Netlist: small, BudgetTerms: 2})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitBackoff(t, q, id)
	}
	if _, err := q.Submit(&JobSpec{Netlist: small}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit: err=%v, want ErrQueueFull", err)
	}
}

// waitBackoff polls until the job has burned one attempt and is parked in
// retry backoff (non-terminal, so it still occupies a queue slot).
func waitBackoff(t *testing.T, q *Queue, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := q.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Attempts >= 1 && st.Status == StatusQueued {
			return
		}
		if st.Status.Terminal() {
			t.Fatalf("job %s went terminal (%s: %s), expected backoff", id, st.Status, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never entered backoff: %+v", id, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	q, err := NewQueue(Config{Dir: t.TempDir(), RetrySeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(time.Second)

	for name, spec := range map[string]*JobSpec{
		"empty":      {},
		"garbage":    {Netlist: "this is not a netlist"},
		"bad format": {Netlist: eqnText(t, 4), Format: "vhdl"},
	} {
		if _, err := q.Submit(spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: got %v, want ErrBadSpec", name, err)
		}
	}
	if q.Active() != 0 {
		t.Fatalf("rejected specs entered the queue: active=%d", q.Active())
	}
}

func TestRetryableErrorBacksOffThenFails(t *testing.T) {
	rec := obs.NewRecorder()
	q, err := NewQueue(Config{
		Dir: t.TempDir(), MaxAttempts: 3,
		RetryBase: time.Millisecond, RetryCap: 5 * time.Millisecond,
		Recorder: rec, RetrySeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(time.Second)

	// An absurdly small term budget aborts every cone — a resource failure,
	// which is retryable (the operator may raise the budget or the box may
	// have more memory next time), until attempts run out.
	st, err := q.Submit(&JobSpec{Netlist: eqnText(t, 8), BudgetTerms: 2})
	if err != nil {
		t.Fatal(err)
	}
	final := waitStatus(t, q, st.ID)
	if final.Status != StatusFailed {
		t.Fatalf("budget-starved job ended %s", final.Status)
	}
	if final.Attempts != 3 {
		t.Fatalf("attempts=%d, want 3 (retry ladder exhausted)", final.Attempts)
	}
	if got := rec.Metrics().Counter("jobs_retried").Value(); got != 2 {
		t.Fatalf("jobs_retried=%d, want 2", got)
	}
}

func TestSpoolReplayAfterRestart(t *testing.T) {
	dir := t.TempDir()
	m := 16
	p, err := polytab.Default(m)
	if err != nil {
		t.Fatal(err)
	}
	net16, err := gen.Mastrovito(m, p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net16.WriteEQN(&buf); err != nil {
		t.Fatal(err)
	}

	// Fabricate the spool of a daemon that died mid-extraction: a job in
	// state "running" whose checkpoint directory holds 5 completed cones.
	id := "00000000000000aa"
	if err := saveSpec(dir, id, &JobSpec{Netlist: buf.String()}); err != nil {
		t.Fatal(err)
	}
	if err := saveState(dir, &JobState{
		ID: id, Status: StatusRunning, Attempts: 1, MaxAttempts: 3,
		SubmittedUnixNS: time.Now().UnixNano(),
	}); err != nil {
		t.Fatal(err)
	}
	// The daemon will parse the spooled text with the job ID as the netlist
	// name, and the checkpoint binds to that parsed netlist's content hash —
	// build the fixture checkpoint the same way.
	asParsed, err := netlist.ReadEQN(strings.NewReader(buf.String()), id)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := rewrite.Outputs(asParsed, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mgr := checkpoint.NewManager(filepath.Join(dir, id+ckptSuffix), 0)
	if err := mgr.Begin(asParsed); err != nil {
		t.Fatal(err)
	}
	for _, br := range cold.Bits[:5] {
		mgr.Record(br)
	}
	if err := mgr.Sync(); err != nil {
		t.Fatal(err)
	}

	// Also a queued job the dead daemon never started.
	id2 := "00000000000000bb"
	if err := saveSpec(dir, id2, &JobSpec{Netlist: eqnText(t, 8)}); err != nil {
		t.Fatal(err)
	}
	if err := saveState(dir, &JobState{
		ID: id2, Status: StatusQueued, MaxAttempts: 3,
		SubmittedUnixNS: time.Now().UnixNano(),
	}); err != nil {
		t.Fatal(err)
	}

	rec := obs.NewRecorder()
	q, err := NewQueue(Config{Dir: dir, Recorder: rec, RetrySeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(time.Second)

	final := waitStatus(t, q, id)
	if final.Status != StatusDone {
		t.Fatalf("replayed job ended %s: %s", final.Status, final.Error)
	}
	if final.Result.Polynomial != p.String() {
		t.Fatalf("replayed job recovered %s, want %s", final.Result.Polynomial, p)
	}
	if final.Result.ReusedCones != 5 {
		t.Fatalf("replayed job reused %d cones, want 5 from the checkpoint", final.Result.ReusedCones)
	}
	if final2 := waitStatus(t, q, id2); final2.Status != StatusDone {
		t.Fatalf("replayed queued job ended %s: %s", final2.Status, final2.Error)
	}
	if got := rec.Metrics().Counter("jobs_recovered").Value(); got != 2 {
		t.Fatalf("jobs_recovered=%d, want 2", got)
	}
}

func TestDrainInterruptsAndNextStartResumes(t *testing.T) {
	dir := t.TempDir()
	q, err := NewQueue(Config{Dir: dir, CheckpointThrottle: 0, RetrySeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Large enough that the drain below lands mid-extraction.
	st, err := q.Submit(&JobSpec{Netlist: eqnText(t, 64), Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the job to actually start and checkpoint at least one cone.
	ckpt := filepath.Join(dir, st.ID+ckptSuffix)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if snap, err := checkpoint.Load(ckpt); err == nil && snap.DoneCones() >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job produced no checkpoint in 30s")
		}
		time.Sleep(time.Millisecond)
	}
	q.Drain(0) // no grace: cancel immediately

	after, err := q.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.Status == StatusDone {
		t.Skip("job finished before the drain landed; nothing to resume")
	}
	if after.Status != StatusQueued {
		t.Fatalf("interrupted job is %s, want queued", after.Status)
	}
	if after.Attempts != 0 {
		t.Fatalf("interruption charged an attempt: %d", after.Attempts)
	}

	// The "restarted daemon": same spool, fresh queue. The job resumes from
	// its checkpoint and completes with reused cones.
	q2, err := NewQueue(Config{Dir: dir, RetrySeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Drain(time.Second)
	final := waitStatus(t, q2, st.ID)
	if final.Status != StatusDone {
		t.Fatalf("resumed job ended %s: %s", final.Status, final.Error)
	}
	if final.Result.ReusedCones < 1 {
		t.Fatal("resumed job reused no cones")
	}
	p, _ := polytab.Default(64)
	if final.Result.Polynomial != p.String() {
		t.Fatalf("resumed job recovered %s, want %s", final.Result.Polynomial, p)
	}
}

func TestSubmitPersistsBeforeAck(t *testing.T) {
	dir := t.TempDir()
	q, err := NewQueue(Config{Dir: dir, RetrySeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(time.Second)
	st, err := q.Submit(&JobSpec{Netlist: eqnText(t, 4)})
	if err != nil {
		t.Fatal(err)
	}
	// The durability contract: by the time Submit returns, both spool files
	// exist on disk.
	if _, err := os.Stat(filepath.Join(dir, st.ID+specSuffix)); err != nil {
		t.Fatalf("spec not on disk at ack time: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, st.ID+stateSuffix)); err != nil {
		t.Fatalf("state not on disk at ack time: %v", err)
	}
}

func TestValidJobID(t *testing.T) {
	good, err := newJobID()
	if err != nil {
		t.Fatal(err)
	}
	if !validJobID(good) {
		t.Fatalf("generated ID %q rejected", good)
	}
	for _, bad := range []string{"", "short", strings.Repeat("g", 16), "../../etc/passwd"} {
		if validJobID(bad) {
			t.Errorf("accepted %q", bad)
		}
	}
}
