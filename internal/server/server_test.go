package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/galoisfield/gfre/internal/obs"
	"github.com/galoisfield/gfre/internal/polytab"
)

// newTestServer wires a queue and its HTTP API for handler tests.
func newTestServer(t *testing.T, cfg Config) (*Queue, *httptest.Server) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.RetrySeed == 0 {
		cfg.RetrySeed = 1
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = obs.NewRecorder()
		cfg.Recorder = rec
	}
	q, err := NewQueue(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(q, rec))
	t.Cleanup(func() {
		ts.Close()
		q.Drain(5 * time.Second)
	})
	return q, ts
}

func decodeState(t *testing.T, resp *http.Response) *JobState {
	t.Helper()
	defer resp.Body.Close()
	st := &JobState{}
	if err := json.NewDecoder(resp.Body).Decode(st); err != nil {
		t.Fatal(err)
	}
	return st
}

// pollDone polls GET /jobs/{id} until the job is terminal.
func pollDone(t *testing.T, ts *httptest.Server, id string) *JobState {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeState(t, resp)
		if st.Status.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job did not finish in 30s")
	return nil
}

func TestHTTPSubmitJSONAndPoll(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	spec, err := json.Marshal(&JobSpec{Netlist: eqnText(t, 8), Name: "gf8-api"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(string(spec)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/jobs/") {
		t.Fatalf("Location header: %q", loc)
	}
	st := decodeState(t, resp)
	if st.ID == "" || st.Status != StatusQueued {
		t.Fatalf("ack state: %+v", st)
	}

	final := pollDone(t, ts, st.ID)
	if final.Status != StatusDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
	p, _ := polytab.Default(8)
	if final.Result == nil || final.Result.Polynomial != p.String() || !final.Result.Verified {
		t.Fatalf("result: %+v", final.Result)
	}
}

func TestHTTPSubmitRawBody(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Post(ts.URL+"/jobs?format=eqn", "text/plain", strings.NewReader(eqnText(t, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("raw submit: %s", resp.Status)
	}
	st := decodeState(t, resp)
	if final := pollDone(t, ts, st.ID); final.Status != StatusDone {
		t.Fatalf("raw-body job ended %s: %s", final.Status, final.Error)
	}
}

func TestHTTPSubmitBadSpec(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Garbage text fails the preflight lint, not a bare parse error: 422
	// with the findings in the body.
	resp, err := http.Post(ts.URL+"/jobs", "text/plain", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("garbage netlist: %s, want 422", resp.Status)
	}

	resp, err = http.Post(ts.URL+"/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %s, want 400", resp.Status)
	}
}

func TestHTTPSubmitLintReject422(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// A combinational cycle: the preflight lint rejects it at submit time
	// with 422 and a findings body naming the cycle witness.
	cyclic := "INORDER = a0 a1 b0 b1;\nOUTORDER = z0 z1;\n" +
		"u = a0 * v;\nv = b0 * u;\nz0 = u + a1;\nz1 = v + b1;\n"
	resp, err := http.Post(ts.URL+"/jobs?format=eqn", "text/plain", strings.NewReader(cyclic))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("cyclic netlist: %s, want 422", resp.Status)
	}
	var body struct {
		Error    string `json:"error"`
		Findings []struct {
			Rule     string   `json:"rule"`
			Severity string   `json:"severity"`
			Signals  []string `json:"signals"`
		} `json:"findings"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding 422 body: %v", err)
	}
	if body.Error == "" || len(body.Findings) == 0 {
		t.Fatalf("422 body lacks error/findings: %+v", body)
	}
	found := false
	for _, f := range body.Findings {
		if f.Rule == "cycle" && len(f.Signals) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cycle finding with a witness in 422 body: %+v", body.Findings)
	}
}

func TestHTTPQueueFull429(t *testing.T) {
	// Deterministic occupancy: a budget-starved job fails its first attempt
	// in milliseconds, then parks in an hour-long retry backoff — holding
	// the queue's single slot without racing the test's HTTP requests.
	q, ts := newTestServer(t, Config{Capacity: 1, RetryBase: time.Hour, MaxAttempts: 3})

	spec, err := json.Marshal(&JobSpec{Netlist: eqnText(t, 8), BudgetTerms: 2})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(string(spec)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %s", resp.Status)
	}
	st := decodeState(t, resp)
	waitBackoff(t, q, st.ID)

	resp, err = http.Post(ts.URL+"/jobs", "text/plain", strings.NewReader(eqnText(t, 8)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
}

func TestHTTPGetUnknownJob404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/jobs/ffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %s, want 404", resp.Status)
	}
}

func TestHTTPListJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/jobs", "text/plain", strings.NewReader(eqnText(t, 8)))
	if err != nil {
		t.Fatal(err)
	}
	st := decodeState(t, resp)
	pollDone(t, ts, st.ID)

	resp, err = http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []*JobState
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list: %+v", list)
	}
}

func TestHTTPHealthAndReadiness(t *testing.T) {
	q, ts := newTestServer(t, Config{})

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %s, want 200", path, resp.Status)
		}
	}

	// Draining flips readiness to 503 while liveness stays 200, and new
	// submissions are refused with 503.
	q.Drain(time.Second)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %s, want 503", resp.Status)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %s, want 200", resp.Status)
	}
	resp, err = http.Post(ts.URL+"/jobs", "text/plain", strings.NewReader(eqnText(t, 8)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %s, want 503", resp.Status)
	}
}

func TestHTTPMetricsSnapshot(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/jobs", "text/plain", strings.NewReader(eqnText(t, 8)))
	if err != nil {
		t.Fatal(err)
	}
	st := decodeState(t, resp)
	pollDone(t, ts, st.ID)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %s", resp.Status)
	}
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics body is not JSON: %v", err)
	}
}
