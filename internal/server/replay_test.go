package server

import (
	"sync"
	"testing"
	"time"

	"github.com/galoisfield/gfre/internal/obs"
)

// TestReplayPreservesEnqueueOrder is the regression test for spool replay
// ordering: jobs land back in the dispatcher in their original enqueue
// sequence, not the directory-scan order of the spool. The fixture writes
// three spool entries whose state files carry Seq 3, 1, 2 (IDs chosen so a
// lexical directory scan would yield yet another order), then boots a
// single-worker queue and asserts the journal's job_start order follows the
// sequence numbers.
func TestReplayPreservesEnqueueOrder(t *testing.T) {
	dir := t.TempDir()
	small := eqnText(t, 8)
	now := time.Now().UnixNano()

	// IDs are valid 16-hex spool names; lexical order (aaaa.. < bbbb.. <
	// cccc..) disagrees with sequence order (bbbb=1, cccc=2, aaaa=3) so a
	// scan-order replay fails the test.
	fixture := []struct {
		id  string
		seq uint64
	}{
		{"aaaaaaaaaaaaaaaa", 3},
		{"bbbbbbbbbbbbbbbb", 1},
		{"cccccccccccccccc", 2},
	}
	for _, f := range fixture {
		if err := saveSpec(dir, f.id, &JobSpec{Netlist: small, Name: f.id[:4]}); err != nil {
			t.Fatal(err)
		}
		st := &JobState{
			ID: f.id, Status: StatusQueued, MaxAttempts: 3,
			Tenant: DefaultTenant, Priority: DefaultPriority,
			Seq: f.seq, SubmittedUnixNS: now + int64(f.seq),
		}
		if err := saveState(dir, st); err != nil {
			t.Fatal(err)
		}
	}

	q, err := NewQueue(Config{Dir: dir, RetrySeed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Drain(5 * time.Second)

	wantOrder := []string{"bbbbbbbbbbbbbbbb", "cccccccccccccccc", "aaaaaaaaaaaaaaaa"}
	for _, f := range fixture {
		if st := waitStatus(t, q, f.id); st.Status != StatusDone {
			t.Fatalf("job %s ended %s: %s", f.id, st.Status, st.Error)
		}
	}
	events, _ := q.Journal().ReplaySince(0)
	var started []string
	for _, ev := range events {
		if ev.Ev == "job_start" {
			started = append(started, ev.Job)
		}
	}
	if len(started) != 3 {
		t.Fatalf("job_start events = %v, want 3", started)
	}
	for i, id := range wantOrder {
		if started[i] != id {
			t.Fatalf("replay start order %v, want %v (seq order, not scan order)", started, wantOrder)
		}
	}
}

// TestBatchSubmitVersusDrain races concurrent batch submissions against a
// SIGTERM-style drain, then replays the spool in a second queue generation:
// every job that was ACCEPTED must reach exactly one terminal state across
// the two generations — completed in generation 1, or replayed and completed
// in generation 2 — and no job may complete twice.
func TestBatchSubmitVersusDrain(t *testing.T) {
	dir := t.TempDir()
	small := eqnText(t, 8)
	journal := obs.NewJournal(1 << 16)
	q, err := NewQueue(Config{
		Dir: dir, RetrySeed: 1, Capacity: 256, Workers: 2, Journal: journal,
	})
	if err != nil {
		t.Fatal(err)
	}

	var (
		mu       sync.Mutex
		accepted []string
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Batch dedup collapses identical items onto one leader, so
				// the drain must also settle follower fan-out correctly —
				// every accepted ID still owes exactly one terminal event.
				items := q.SubmitBatch([]*JobSpec{
					{Netlist: small, Name: "race"},
					{Netlist: small, Name: "race"},
				})
				mu.Lock()
				for _, it := range items {
					if it.Err == nil {
						accepted = append(accepted, it.State.ID)
					}
				}
				mu.Unlock()
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	q.Drain(20 * time.Millisecond) // cut the grace short: interrupt mid-flight
	close(stop)
	wg.Wait()

	countTerminals := func(j *obs.Journal) map[string]int {
		counts := map[string]int{}
		events, _ := j.ReplaySince(0)
		for _, ev := range events {
			if ev.Ev == "job_done" || ev.Ev == "job_failed" {
				counts[ev.Job]++
			}
		}
		return counts
	}
	gen1 := countTerminals(journal)

	// Generation 2: replay the spool and let everything finish.
	journal2 := obs.NewJournal(1 << 16)
	q2, err := NewQueue(Config{Dir: dir, RetrySeed: 2, Capacity: 256, Workers: 2, Journal: journal2})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range accepted {
		st := waitStatus(t, q2, id)
		if st.Status != StatusDone {
			t.Fatalf("accepted job %s ended %s after replay: %s", id, st.Status, st.Error)
		}
	}
	q2.Drain(5 * time.Second)
	gen2 := countTerminals(journal2)

	for _, id := range accepted {
		total := gen1[id] + gen2[id]
		if total != 1 {
			t.Fatalf("job %s reached %d terminal events across generations (gen1=%d gen2=%d), want exactly 1",
				id, total, gen1[id], gen2[id])
		}
	}
	if len(accepted) == 0 {
		t.Fatal("race window accepted zero jobs; the test exercised nothing")
	}
}
