package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/galoisfield/gfre/internal/obs"
)

// defaultHeartbeat paces the SSE keep-alive comments; proxies and LBs drop
// idle streams well above this.
const defaultHeartbeat = 15 * time.Second

// handleEvents streams the whole telemetry journal as Server-Sent Events.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.streamEvents(w, r, "")
}

// handleJobEvents streams one job's telemetry. The stream ends with the
// job's terminal event (job_done / job_failed).
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.queue.Get(id); err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	s.streamEvents(w, r, id)
}

// streamEvents is the shared SSE loop. Protocol:
//
//   - Journal events are sent as default "message" events whose data is the
//     Event JSON and whose SSE id is the journal sequence number, so a
//     reconnecting client resumes exactly where it left off by sending
//     Last-Event-ID (the ?last_id= query parameter works as a fallback for
//     clients that cannot set headers).
//   - On a fresh connect, or when the client's cursor has fallen off the
//     bounded journal, an "event: snapshot" frame with the current job
//     state(s) precedes the event flow — the client rebuilds from state,
//     then follows increments.
//   - Heartbeat comments (": hb") keep intermediaries from reaping the
//     stream.
//   - The stream closes after the job's terminal event (per-job streams),
//     when the client disconnects, or when the queue finishes draining.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, job string) {
	j := s.queue.Journal()
	if j == nil {
		httpError(w, http.StatusServiceUnavailable, "event journal unavailable")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	var since uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		since, _ = strconv.ParseUint(v, 10, 64)
	} else if v := r.URL.Query().Get("last_id"); v != "" {
		since, _ = strconv.ParseUint(v, 10, 64)
	}

	// Subscribe BEFORE replaying so nothing falls between the replayed tail
	// and the live feed; the overlap is deduplicated by sequence number.
	sub := j.Subscribe(512)
	defer sub.Cancel()
	replay, truncated := j.ReplaySince(since)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	var last uint64
	// writeEvent delivers one event; false means the stream is complete.
	writeEvent := func(e obs.Event) bool {
		if e.Seq != 0 {
			if e.Seq <= last {
				return true // replay/live overlap
			}
			last = e.Seq
		}
		if job != "" && e.Job != job {
			return true
		}
		data, err := json.Marshal(e)
		if err != nil {
			return true
		}
		if e.Seq != 0 {
			fmt.Fprintf(w, "id: %d\n", e.Seq)
		}
		fmt.Fprintf(w, "data: %s\n\n", data)
		fl.Flush()
		return !(job != "" && (e.Ev == "job_done" || e.Ev == "job_failed"))
	}

	if since == 0 || truncated {
		s.writeSnapshot(w, job)
		fl.Flush()
	}
	for _, e := range replay {
		if !writeEvent(e) {
			return
		}
	}
	if job != "" {
		// The job may have ended before this client connected (and its
		// terminal event may already have been evicted from the journal):
		// close the stream with a synthetic terminal frame instead of
		// holding the connection open forever.
		if st, err := s.queue.Get(job); err == nil && st.Status.Terminal() {
			ev := "job_done"
			if st.Status == StatusFailed {
				ev = "job_failed"
			}
			writeEvent(obs.Event{Ev: ev, Name: job, Job: job})
			return
		}
	}

	hb := s.heartbeat
	if hb <= 0 {
		hb = defaultHeartbeat
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.queue.Done():
			// Drain finished: deliver whatever is still buffered (the
			// terminal job events precede drain_end in the journal), then
			// end the stream so shutdown is not held hostage by clients.
			for {
				select {
				case e, ok := <-sub.C:
					if !ok || !writeEvent(e) {
						return
					}
				default:
					return
				}
			}
		case e, ok := <-sub.C:
			if !ok {
				// Lagged out: the journal closed this subscription. The
				// client reconnects with Last-Event-ID and resumes (or gets
				// a snapshot if the gap outgrew the ring).
				return
			}
			if !writeEvent(e) {
				return
			}
		case <-ticker.C:
			fmt.Fprint(w, ": hb\n\n")
			fl.Flush()
		}
	}
}

// writeSnapshot emits the "event: snapshot" frame: one job's state on a
// per-job stream, the full job list otherwise.
func (s *Server) writeSnapshot(w http.ResponseWriter, job string) {
	var v any
	if job != "" {
		st, err := s.queue.Get(job)
		if err != nil {
			return
		}
		v = st
	} else {
		v = s.queue.List()
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: snapshot\ndata: %s\n\n", data)
}
