package server

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// A truncated .state file (torn write during a crash) must quarantine that
// entry only: the counter ticks, the files stay on disk for the operator,
// and every healthy neighbor still replays and runs to completion.
func TestSpoolReplaySkipsCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	now := time.Now().UnixNano()

	healthy := "00000000000000ab"
	if err := saveSpec(dir, healthy, &JobSpec{Netlist: eqnText(t, 4)}); err != nil {
		t.Fatal(err)
	}
	if err := saveState(dir, &JobState{
		ID: healthy, Status: StatusQueued, MaxAttempts: 3, SubmittedUnixNS: now,
	}); err != nil {
		t.Fatal(err)
	}

	corrupt := "00000000000000cc"
	if err := saveSpec(dir, corrupt, &JobSpec{Netlist: eqnText(t, 4)}); err != nil {
		t.Fatal(err)
	}
	torn := []byte(`{"id":"00000000000000cc","status":"runni`)
	if err := os.WriteFile(filepath.Join(dir, corrupt+stateSuffix), torn, 0o644); err != nil {
		t.Fatal(err)
	}

	q, err := NewQueue(Config{Dir: dir, RetrySeed: 1})
	if err != nil {
		t.Fatalf("one torn state file must not fail the whole replay: %v", err)
	}
	defer q.Drain(5 * time.Second)

	final := waitStatus(t, q, healthy)
	if final.Status != StatusDone {
		t.Fatalf("healthy neighbor ended %s: %s", final.Status, final.Error)
	}
	if _, err := q.Get(corrupt); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("corrupt entry not quarantined: %v", err)
	}
	if v := q.Recorder().Metrics().Counter("spool_corrupt").Value(); v != 1 {
		t.Fatalf("spool_corrupt = %d, want 1", v)
	}
	// The damaged files are evidence, not garbage: both must survive for
	// post-mortem.
	for _, name := range []string{corrupt + specSuffix, corrupt + stateSuffix} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("quarantined file %s removed: %v", name, err)
		}
	}
}
