package gen

import (
	"fmt"

	"github.com/galoisfield/gfre/internal/netlist"
)

// Obfuscation transforms: the countermeasure side of the arms race
// ("Algorithmic Obfuscation over GF(2^m)", arXiv:1809.06207). A logic-locked
// multiplier adds key inputs whose correct value restores the original
// function and whose wrong values corrupt it; the extraction attack then
// faces 2^k candidate functions instead of one. These transforms exist so
// the defense can be tested against the detector netlint/sem builds on top
// of support tracking: a key input is *structurally* surplus (outside both
// operand vectors), and any output whose support contains one is key-gated.
//
// All styles plant the all-zeros correct key, so the obfuscated netlist
// composed with k = 0 is simulation-equivalent to the original — the
// property diffcheck's obfuscation campaign verifies before asserting the
// detector flags every planted key.

// ObfStyle selects the gating construction.
type ObfStyle int

const (
	// ObfXor splices w' = w XOR k_i into a victim wire's readers: the
	// classic XOR lock. Wrong key inverts the wire.
	ObfXor ObfStyle = iota
	// ObfMux routes a victim wire through MUX(w, NOT w, k_i): same
	// function as the XOR lock, but hidden behind a complex cell the way
	// technology mapping would leave it.
	ObfMux
	// ObfOpaque gates a victim wire with an opaquely-true AND tree over
	// complemented key bits (all-zero key -> tree is 1 -> wire passes).
	// The tree's support is key-only: the opaque-constant signature.
	ObfOpaque
)

func (s ObfStyle) String() string {
	switch s {
	case ObfXor:
		return "xor"
	case ObfMux:
		return "mux"
	case ObfOpaque:
		return "opaque"
	}
	return fmt.Sprintf("ObfStyle(%d)", int(s))
}

// ObfuscateOptions configures a key-gating transform.
type ObfuscateOptions struct {
	// Style is the gating construction.
	Style ObfStyle
	// Keys is the number of key inputs to plant (default 1; capped at the
	// number of distinct gateable wires).
	Keys int
	// Seed drives deterministic victim selection.
	Seed int64
	// KeyPrefix names the key inputs (default "k": k0, k1, ...).
	KeyPrefix string
}

// Obfuscation reports what was planted, in new-netlist gate IDs.
type Obfuscation struct {
	// Style echoes the construction used.
	Style ObfStyle
	// KeyInputs / KeyNames identify the planted key ports.
	KeyInputs []int
	KeyNames  []string
	// Victims are the gated wires (the pre-gating signal IDs).
	Victims []int
}

// splitmix64 is the deterministic placement PRNG (no global rand state;
// identical seeds replay identical transforms).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Obfuscate rebuilds n with Keys planted key inputs gating randomly chosen
// reachable wires. The returned netlist computes the original function when
// every key input is 0.
func Obfuscate(n *netlist.Netlist, o ObfuscateOptions) (*netlist.Netlist, *Obfuscation, error) {
	if o.Keys < 1 {
		o.Keys = 1
	}
	if o.KeyPrefix == "" {
		o.KeyPrefix = "k"
	}

	// Victim pool: non-input gates inside some output's cone (a gated wire
	// outside every cone would be undetectable and unverifiable).
	reach := make([]bool, n.NumGates())
	for _, out := range n.Outputs() {
		reach[out] = true
	}
	for id := n.NumGates() - 1; id >= 0; id-- {
		if !reach[id] {
			continue
		}
		for _, f := range n.Gate(id).Fanin {
			reach[f] = true
		}
	}
	var pool []int
	for id := 0; id < n.NumGates(); id++ {
		if reach[id] && n.Gate(id).Type != netlist.Input {
			pool = append(pool, id)
		}
	}
	if len(pool) == 0 {
		// Degenerate (outputs wired straight to inputs): gate the inputs.
		for _, id := range n.Inputs() {
			if reach[id] {
				pool = append(pool, id)
			}
		}
	}
	if len(pool) == 0 {
		return nil, nil, fmt.Errorf("gen: nothing reachable to obfuscate in %q", n.Name)
	}

	// Victim count: one per key for xor/mux; opaque groups several key
	// bits into one comparator tree per victim.
	groupSize := 1
	if o.Style == ObfOpaque {
		groupSize = 4
	}
	nvictims := (o.Keys + groupSize - 1) / groupSize
	if nvictims > len(pool) {
		nvictims = len(pool)
		o.Keys = nvictims * groupSize
	}

	// Deterministic sample without replacement (partial Fisher-Yates).
	state := uint64(o.Seed)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	idx := make([]int, len(pool))
	for i := range idx {
		idx[i] = i
	}
	victims := make([]int, 0, nvictims)
	for i := 0; i < nvictims; i++ {
		j := i + int(splitmix64(&state)%uint64(len(idx)-i))
		idx[i], idx[j] = idx[j], idx[i]
		victims = append(victims, pool[idx[i]])
	}

	out := netlist.New(n.Name + "_obf")
	remap := make([]int, n.NumGates())
	for i := range remap {
		remap[i] = -1
	}

	// Original inputs first, preserving port order and names.
	for _, id := range n.Inputs() {
		nid, err := out.AddInput(n.NameOf(id))
		if err != nil {
			return nil, nil, fmt.Errorf("gen: obfuscate: %w", err)
		}
		remap[id] = nid
	}
	// Then the key inputs.
	info := &Obfuscation{Style: o.Style}
	for i := 0; i < o.Keys; i++ {
		name := fmt.Sprintf("%s%d", o.KeyPrefix, i)
		nid, err := out.AddInput(name)
		if err != nil {
			return nil, nil, fmt.Errorf("gen: obfuscate: key input %s: %w", name, err)
		}
		info.KeyInputs = append(info.KeyInputs, nid)
		info.KeyNames = append(info.KeyNames, name)
	}

	isVictim := map[int]int{} // original gate ID -> victim ordinal
	for i, v := range victims {
		isVictim[v] = i
	}
	nextKey := 0

	gate := func(w, ordinal int) (int, error) {
		switch o.Style {
		case ObfXor:
			k := info.KeyInputs[nextKey]
			nextKey++
			return out.AddGate(netlist.Xor, w, k)
		case ObfMux:
			k := info.KeyInputs[nextKey]
			nextKey++
			nw, err := out.AddGate(netlist.Not, w)
			if err != nil {
				return 0, err
			}
			return out.AddGate(netlist.Mux, w, nw, k)
		case ObfOpaque:
			// t = AND of NOT(k_j) over this victim's key group; opaque 1
			// under the correct (all-zero) key.
			tree := -1
			for j := 0; j < groupSize && nextKey < len(info.KeyInputs); j++ {
				nk, err := out.AddGate(netlist.Not, info.KeyInputs[nextKey])
				nextKey++
				if err != nil {
					return 0, err
				}
				if tree < 0 {
					tree = nk
					continue
				}
				if tree, err = out.AddGate(netlist.And, tree, nk); err != nil {
					return 0, err
				}
			}
			if tree < 0 {
				return w, nil
			}
			return out.AddGate(netlist.And, w, tree)
		}
		return 0, fmt.Errorf("gen: unknown obfuscation style %v", o.Style)
	}

	// Replay the DAG in topological order; a victim's mapping is swapped to
	// its gated replacement so every downstream reader (and output marking)
	// sees the locked wire.
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		if g.Type == netlist.Input {
			// Already mapped; inputs can still be victims (degenerate pool).
			if ord, ok := isVictim[id]; ok {
				gid, err := gate(remap[id], ord)
				if err != nil {
					return nil, nil, fmt.Errorf("gen: obfuscate: %w", err)
				}
				info.Victims = append(info.Victims, remap[id])
				remap[id] = gid
			}
			continue
		}
		fanin := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = remap[f]
		}
		var (
			nid int
			err error
		)
		if g.Type == netlist.Lut {
			nid, err = out.AddLut(append([]bool(nil), g.Table...), fanin...)
		} else {
			nid, err = out.AddGate(g.Type, fanin...)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("gen: obfuscate: gate %d: %w", id, err)
		}
		// Preserve real signal names (anonymous gates get none).
		if name := n.NameOf(id); name != "" {
			if lid, ok := n.Lookup(name); ok && lid == id {
				if err := out.SetSignalName(nid, name); err != nil {
					return nil, nil, fmt.Errorf("gen: obfuscate: name %q: %w", name, err)
				}
			}
		}
		remap[id] = nid
		if _, ok := isVictim[id]; ok {
			gid, err := gate(nid, isVictim[id])
			if err != nil {
				return nil, nil, fmt.Errorf("gen: obfuscate: %w", err)
			}
			info.Victims = append(info.Victims, nid)
			remap[id] = gid
		}
	}

	names := n.OutputNames()
	for i, oid := range n.Outputs() {
		if err := out.MarkOutput(names[i], remap[oid]); err != nil {
			return nil, nil, fmt.Errorf("gen: obfuscate: output %s: %w", names[i], err)
		}
	}
	return out, info, nil
}
