// Package gen generates gate-level GF(2^m) multiplier netlists — the
// benchmark circuits of the paper's evaluation (Tables I–IV). The paper
// takes its generators from Lv/Kalla/Enescu; those are not public, so this
// package implements the two standard constructions from scratch:
//
//   - Mastrovito: an AND partial-product matrix followed by per-column XOR
//     reduction trees whose structure is dictated by x^k mod P(x) — exactly
//     the tabular construction of Figure 1;
//   - Montgomery: flattened composition of two bit-serial MonPro blocks
//     (Koç–Acar), MonPro(MonPro(A,B), x^{2m} mod P) = A·B mod P. As in the
//     paper, block boundaries are erased — the produced netlist is a flat
//     gate list with the same end-to-end function as the Mastrovito design,
//     but with the long serial XOR chains that make backward rewriting much
//     more expensive (the Table II effect).
//
// Port conventions: inputs "a0".."a<m-1>", "b0".."b<m-1>" (LSB first),
// outputs "z0".."z<m-1>".
package gen

import (
	"fmt"

	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/polytab"
)

// operands adds the 2m primary inputs and returns their IDs.
func operands(n *netlist.Netlist, m int) (a, b []int, err error) {
	a = make([]int, m)
	b = make([]int, m)
	for i := 0; i < m; i++ {
		if a[i], err = n.AddInput(fmt.Sprintf("a%d", i)); err != nil {
			return nil, nil, err
		}
	}
	for i := 0; i < m; i++ {
		if b[i], err = n.AddInput(fmt.Sprintf("b%d", i)); err != nil {
			return nil, nil, err
		}
	}
	return a, b, nil
}

// xorTree reduces the signals with a balanced tree of 2-input XOR gates and
// returns the root. It returns -1 for an empty list (logical zero).
func xorTree(n *netlist.Netlist, sigs []int) (int, error) {
	switch len(sigs) {
	case 0:
		return -1, nil
	case 1:
		return sigs[0], nil
	}
	cur := append([]int(nil), sigs...)
	for len(cur) > 1 {
		tmp := make([]int, 0, (len(cur)+1)/2)
		for i := 0; i+1 < len(cur); i += 2 {
			id, err := n.AddGate(netlist.Xor, cur[i], cur[i+1])
			if err != nil {
				return 0, err
			}
			tmp = append(tmp, id)
		}
		if len(cur)%2 == 1 {
			tmp = append(tmp, cur[len(cur)-1])
		}
		cur = tmp
	}
	return cur[0], nil
}

func validate(m int, p gf2poly.Poly) error {
	if m < 2 {
		return fmt.Errorf("gen: field size m=%d; need m >= 2", m)
	}
	if p.Deg() != m {
		return fmt.Errorf("gen: polynomial %v has degree %d, want %d", p, p.Deg(), m)
	}
	if !p.Irreducible() {
		return fmt.Errorf("gen: %v is not irreducible", p)
	}
	return nil
}

// Mastrovito generates a combinational Mastrovito multiplier for GF(2^m)
// with irreducible polynomial p (deg p = m).
func Mastrovito(m int, p gf2poly.Poly) (*netlist.Netlist, error) {
	if err := validate(m, p); err != nil {
		return nil, err
	}
	n := netlist.New(fmt.Sprintf("mastrovito_gf2_%d", m))
	a, b, err := operands(n, m)
	if err != nil {
		return nil, err
	}

	// Partial-product sums s_k = XOR_{i+j=k} a_i·b_j for k = 0..2m-2
	// (the rows above the double line in Figure 1).
	s := make([]int, 2*m-1)
	for k := range s {
		var prods []int
		for i := 0; i < m; i++ {
			j := k - i
			if j < 0 || j >= m {
				continue
			}
			id, err := n.AddGate(netlist.And, a[i], b[j])
			if err != nil {
				return nil, err
			}
			prods = append(prods, id)
		}
		if s[k], err = xorTree(n, prods); err != nil {
			return nil, err
		}
		if err := n.SetSignalName(s[k], fmt.Sprintf("s%d", k)); err != nil {
			// Single-product columns reuse the AND gate; naming may collide
			// only if the same gate got a name already, which cannot happen
			// here, so any error is real.
			return nil, err
		}
	}

	// Field reduction: s_{m+t} folds into the columns given by
	// x^{m+t} mod P(x) (the reduction table of Figure 1).
	rows := polytab.ReductionRows(p)
	for c := 0; c < m; c++ {
		col := []int{s[c]}
		for t, row := range rows {
			if row.Coeff(c) == 1 {
				col = append(col, s[m+t])
			}
		}
		z, err := xorTree(n, col)
		if err != nil {
			return nil, err
		}
		if err := n.MarkOutput(fmt.Sprintf("z%d", c), z); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// monProVar appends a bit-serial MonPro block computing X·Y·x^(-m) mod p for
// variable operand signal vectors x and y (length m each). The returned
// slice holds the m result signals; -1 entries denote constant zero.
func monProVar(n *netlist.Netlist, p gf2poly.Poly, x, y []int) ([]int, error) {
	m := p.Deg()
	// c has m+1 positions: adding c0·P can set bit m before the shift.
	c := make([]int, m+1)
	for i := range c {
		c[i] = -1
	}
	xorSig := func(s, t int) (int, error) {
		switch {
		case s == -1:
			return t, nil
		case t == -1:
			return s, nil
		}
		return n.AddGate(netlist.Xor, s, t)
	}
	var err error
	for i := 0; i < m; i++ {
		// C += x_i · Y
		for j := 0; j < m; j++ {
			if y[j] == -1 {
				continue
			}
			t, err := n.AddGate(netlist.And, x[i], y[j])
			if err != nil {
				return nil, err
			}
			if c[j], err = xorSig(c[j], t); err != nil {
				return nil, err
			}
		}
		// C += c0 · P; the constant term of P cancels C[0] exactly.
		if c0 := c[0]; c0 != -1 {
			for _, e := range p.Terms() {
				if e == 0 {
					continue
				}
				if c[e], err = xorSig(c[e], c0); err != nil {
					return nil, err
				}
			}
			c[0] = -1
		}
		// C /= x.
		copy(c, c[1:])
		c[m] = -1
	}
	return c[:m], nil
}

// monProConst appends a MonPro block whose second operand is the constant k
// (degree < m): AND gates with constant bits fold into wires or vanish.
func monProConst(n *netlist.Netlist, p gf2poly.Poly, x []int, k gf2poly.Poly) ([]int, error) {
	m := p.Deg()
	c := make([]int, m+1)
	for i := range c {
		c[i] = -1
	}
	xorSig := func(s, t int) (int, error) {
		switch {
		case s == -1:
			return t, nil
		case t == -1:
			return s, nil
		}
		return n.AddGate(netlist.Xor, s, t)
	}
	var err error
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if k.Coeff(j) == 0 {
				continue
			}
			// x_i · 1 is just the wire x_i.
			if c[j], err = xorSig(c[j], x[i]); err != nil {
				return nil, err
			}
		}
		if c0 := c[0]; c0 != -1 {
			for _, e := range p.Terms() {
				if e == 0 {
					continue
				}
				if c[e], err = xorSig(c[e], c0); err != nil {
					return nil, err
				}
			}
			c[0] = -1
		}
		copy(c, c[1:])
		c[m] = -1
	}
	return c[:m], nil
}

// Montgomery generates a flattened Montgomery multiplier for GF(2^m) with
// irreducible polynomial p: Z = MonPro(MonPro(A,B), x^{2m} mod P) = A·B mod
// P. The two MonPro blocks are emitted into one flat netlist with no
// hierarchy, matching the paper's "flattened version Montgomery multipliers,
// i.e. we have no knowledge of the block boundaries".
func Montgomery(m int, p gf2poly.Poly) (*netlist.Netlist, error) {
	if err := validate(m, p); err != nil {
		return nil, err
	}
	n := netlist.New(fmt.Sprintf("montgomery_gf2_%d", m))
	a, b, err := operands(n, m)
	if err != nil {
		return nil, err
	}
	u, err := monProVar(n, p, a, b)
	if err != nil {
		return nil, err
	}
	for i, id := range u {
		if id != -1 {
			if err := n.SetSignalName(id, fmt.Sprintf("u%d", i)); err != nil {
				return nil, err
			}
		}
	}
	// A zero intermediate bit can only occur for degenerate p; materialize
	// constants so the second block sees real signals.
	for i, id := range u {
		if id == -1 {
			if u[i], err = n.AddGate(netlist.Const0); err != nil {
				return nil, err
			}
		}
	}
	r2 := gf2poly.Monomial(2 * m).Mod(p)
	z, err := monProConst(n, p, u, r2)
	if err != nil {
		return nil, err
	}
	for i := 0; i < m; i++ {
		zi := z[i]
		if zi == -1 {
			if zi, err = n.AddGate(netlist.Const0); err != nil {
				return nil, err
			}
		}
		if err := n.MarkOutput(fmt.Sprintf("z%d", i), zi); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// MonPro generates a standalone bit-serial MonPro block computing
// A·B·x^(-m) mod p, exposed for unit testing and for building custom
// Montgomery-domain datapaths.
func MonPro(m int, p gf2poly.Poly) (*netlist.Netlist, error) {
	if err := validate(m, p); err != nil {
		return nil, err
	}
	n := netlist.New(fmt.Sprintf("monpro_gf2_%d", m))
	a, b, err := operands(n, m)
	if err != nil {
		return nil, err
	}
	u, err := monProVar(n, p, a, b)
	if err != nil {
		return nil, err
	}
	for i := 0; i < m; i++ {
		ui := u[i]
		if ui == -1 {
			if ui, err = n.AddGate(netlist.Const0); err != nil {
				return nil, err
			}
		}
		if err := n.MarkOutput(fmt.Sprintf("z%d", i), ui); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// MastrovitoMatrix generates the classic matrix-form Mastrovito multiplier:
// z_i = XOR_j b_j · M_ij(a), where M is the Mastrovito product matrix and
// every entry M_ij — an XOR combination of a-bits determined by
// x^j·A mod P(x) — is materialized as its own XOR tree. Unlike Mastrovito
// (the tabular Figure 1 construction, which shares the partial-product sums
// s_k across output columns), the matrix form duplicates logic between
// outputs, so each output bit has a fully independent cone. This is the
// redundant style of generated benchmark the paper evaluates: its equation
// counts are close to Table I's (~5m² for pentanomials) and it is what gives
// the synthesis flow of Table III real sharing to recover.
func MastrovitoMatrix(m int, p gf2poly.Poly) (*netlist.Netlist, error) {
	if err := validate(m, p); err != nil {
		return nil, err
	}
	n := netlist.New(fmt.Sprintf("mastrovito_matrix_gf2_%d", m))
	a, b, err := operands(n, m)
	if err != nil {
		return nil, err
	}

	// masks[j] is the bit-matrix column for x^j·A mod P: masks[j][i] tells
	// which a-bits XOR into M_ij. Computed symbolically: start with the
	// identity (x^0·A = A), then shift and fold the wrapped top bit through
	// P'(x) each step.
	masks := make([][]gf2poly.Poly, m) // masks[j][i]: set of a-indices as a bit vector
	cur := make([]gf2poly.Poly, m)
	for i := range cur {
		cur[i] = gf2poly.Monomial(i) // M_i0 = a_i
	}
	pp := p.Add(gf2poly.Monomial(m)) // P'(x)
	for j := 0; j < m; j++ {
		masks[j] = append([]gf2poly.Poly(nil), cur...)
		top := cur[m-1]
		next := make([]gf2poly.Poly, m)
		for i := m - 1; i >= 1; i-- {
			next[i] = cur[i-1]
		}
		next[0] = gf2poly.Zero()
		for i := 0; i < m; i++ {
			if pp.Coeff(i) == 1 {
				next[i] = next[i].Add(top)
			}
		}
		cur = next
	}

	for i := 0; i < m; i++ {
		var terms []int
		for j := 0; j < m; j++ {
			mask := masks[j][i]
			if mask.IsZero() {
				continue
			}
			var abits []int
			for _, e := range mask.Terms() {
				abits = append(abits, a[e])
			}
			mij, err := xorTree(n, abits)
			if err != nil {
				return nil, err
			}
			prod, err := n.AddGate(netlist.And, mij, b[j])
			if err != nil {
				return nil, err
			}
			terms = append(terms, prod)
		}
		z, err := xorTree(n, terms)
		if err != nil {
			return nil, err
		}
		if z == -1 {
			if z, err = n.AddGate(netlist.Const0); err != nil {
				return nil, err
			}
		}
		if err := n.MarkOutput(fmt.Sprintf("z%d", i), z); err != nil {
			return nil, err
		}
	}
	return n, nil
}
