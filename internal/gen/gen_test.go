package gen

import (
	"math/rand"
	"testing"

	"github.com/galoisfield/gfre/internal/gf2m"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/polytab"
)

// packVectors converts 64 field elements per operand into the bit-sliced
// input words the simulator expects: word i of operand a carries, in lane l,
// coefficient i of element l.
func packVectors(m int, as, bs []gf2poly.Poly) []uint64 {
	words := make([]uint64, 2*m)
	for lane := 0; lane < len(as); lane++ {
		for i := 0; i < m; i++ {
			if as[lane].Coeff(i) == 1 {
				words[i] |= 1 << uint(lane)
			}
			if bs[lane].Coeff(i) == 1 {
				words[m+i] |= 1 << uint(lane)
			}
		}
	}
	return words
}

// unpackOutputs reads lane l of the output words as a field element.
func unpackOutputs(m int, outs []uint64, lane int) gf2poly.Poly {
	var terms []int
	for i := 0; i < m; i++ {
		if outs[i]>>uint(lane)&1 == 1 {
			terms = append(terms, i)
		}
	}
	return gf2poly.FromTerms(terms...)
}

// checkMultiplier simulates 64 random operand pairs and compares every lane
// against the gf2m golden model applied through ref.
func checkMultiplier(t *testing.T, n *netlist.Netlist, p gf2poly.Poly,
	ref func(f *gf2m.Field, a, b gf2poly.Poly) gf2poly.Poly) {
	t.Helper()
	m := p.Deg()
	f := gf2m.MustNew(p)
	r := rand.New(rand.NewSource(int64(m)*31 + 7))
	as := make([]gf2poly.Poly, 64)
	bs := make([]gf2poly.Poly, 64)
	for i := range as {
		as[i], bs[i] = f.Rand(r), f.Rand(r)
	}
	vals, err := n.Simulate(packVectors(m, as, bs))
	if err != nil {
		t.Fatal(err)
	}
	outs := n.OutputWords(vals)
	if len(outs) != m {
		t.Fatalf("multiplier has %d outputs, want %d", len(outs), m)
	}
	for lane := 0; lane < 64; lane++ {
		got := unpackOutputs(m, outs, lane)
		want := ref(f, as[lane], bs[lane])
		if !got.Equal(want) {
			t.Fatalf("lane %d: (%v)*(%v) = %v, want %v", lane, as[lane], bs[lane], got, want)
		}
	}
}

func mulRef(f *gf2m.Field, a, b gf2poly.Poly) gf2poly.Poly { return f.Mul(a, b) }

func TestMastrovitoMatchesField(t *testing.T) {
	for _, m := range []int{2, 3, 4, 5, 8, 11, 16, 23, 32, 64} {
		p, err := polytab.Default(m)
		if err != nil {
			t.Fatal(err)
		}
		n, err := Mastrovito(m, p)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		checkMultiplier(t, n, p, mulRef)
	}
}

func TestMastrovitoBothFigure1Polynomials(t *testing.T) {
	// Same field size, different P(x) — Figure 1's two constructions must
	// both be correct multipliers for their own field.
	for _, ps := range []string{"x^4+x+1", "x^4+x^3+1"} {
		p := gf2poly.MustParse(ps)
		n, err := Mastrovito(4, p)
		if err != nil {
			t.Fatal(err)
		}
		checkMultiplier(t, n, p, mulRef)
	}
}

func TestMastrovitoXORCountMatchesCostModel(t *testing.T) {
	// Section II-D: the two GF(2^4) constructions differ only in reduction
	// XORs: 9 for P1 vs 6 for P2. Partial-product XORs are identical, so
	// the difference in total XOR gates must be exactly 3.
	n1, err := Mastrovito(4, gf2poly.MustParse("x^4+x^3+1"))
	if err != nil {
		t.Fatal(err)
	}
	n2, err := Mastrovito(4, gf2poly.MustParse("x^4+x+1"))
	if err != nil {
		t.Fatal(err)
	}
	x1 := n1.Stats().ByType[netlist.Xor]
	x2 := n2.Stats().ByType[netlist.Xor]
	if x1-x2 != 3 {
		t.Errorf("XOR gates: P1=%d P2=%d, difference %d, want 3", x1, x2, x1-x2)
	}
	// AND gates (partial products) are m² in both.
	if n1.Stats().ByType[netlist.And] != 16 || n2.Stats().ByType[netlist.And] != 16 {
		t.Error("partial-product AND count should be m²")
	}
}

func TestMonProMatchesField(t *testing.T) {
	for _, m := range []int{2, 4, 8, 16, 32} {
		p, err := polytab.Default(m)
		if err != nil {
			t.Fatal(err)
		}
		n, err := MonPro(m, p)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		checkMultiplier(t, n, p, func(f *gf2m.Field, a, b gf2poly.Poly) gf2poly.Poly {
			return f.MonPro(a, b)
		})
	}
}

func TestMontgomeryMatchesField(t *testing.T) {
	// The flattened two-block Montgomery multiplier computes the plain
	// field product — same function as Mastrovito.
	for _, m := range []int{2, 3, 4, 8, 16, 32} {
		p, err := polytab.Default(m)
		if err != nil {
			t.Fatal(err)
		}
		n, err := Montgomery(m, p)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		checkMultiplier(t, n, p, mulRef)
	}
}

func TestMontgomeryNIST64(t *testing.T) {
	p := polytab.NIST[64]
	n, err := Montgomery(64, p)
	if err != nil {
		t.Fatal(err)
	}
	checkMultiplier(t, n, p, mulRef)
}

func TestGeneratorsValidateArguments(t *testing.T) {
	good := gf2poly.MustParse("x^4+x+1")
	if _, err := Mastrovito(1, gf2poly.MustParse("x+1")); err == nil {
		t.Error("m=1 should be rejected")
	}
	if _, err := Mastrovito(5, good); err == nil {
		t.Error("degree mismatch should be rejected")
	}
	if _, err := Mastrovito(4, gf2poly.MustParse("x^4+x^2+1")); err == nil {
		t.Error("reducible polynomial should be rejected")
	}
	if _, err := Montgomery(5, good); err == nil {
		t.Error("Montgomery degree mismatch should be rejected")
	}
	if _, err := MonPro(5, good); err == nil {
		t.Error("MonPro degree mismatch should be rejected")
	}
}

func TestGateMixIsAndXorOnly(t *testing.T) {
	// Raw generated multipliers consist solely of AND partial products and
	// XOR reductions (plus inputs), as the paper describes.
	p := polytab.NIST[64]
	for _, build := range []func(int, gf2poly.Poly) (*netlist.Netlist, error){Mastrovito, Montgomery} {
		n, err := build(64, p)
		if err != nil {
			t.Fatal(err)
		}
		for ty, cnt := range n.Stats().ByType {
			switch ty {
			case netlist.Input, netlist.And, netlist.Xor:
			default:
				t.Errorf("%s: unexpected %d gates of type %v", n.Name, cnt, ty)
			}
		}
	}
}

func TestEquationCountsGrowQuadratically(t *testing.T) {
	// #eqns ~ c·m²: doubling m should roughly quadruple equations for both
	// architectures (the scale column of Tables I and II).
	for _, build := range []struct {
		name string
		f    func(int, gf2poly.Poly) (*netlist.Netlist, error)
	}{{"mastrovito", Mastrovito}, {"montgomery", Montgomery}} {
		var prev int
		for _, m := range []int{16, 32, 64} {
			p, err := polytab.Default(m)
			if err != nil {
				t.Fatal(err)
			}
			n, err := build.f(m, p)
			if err != nil {
				t.Fatal(err)
			}
			eqns := n.NumEquations()
			if prev > 0 {
				ratio := float64(eqns) / float64(prev)
				if ratio < 3 || ratio > 5.5 {
					t.Errorf("%s: eqns ratio m*2 = %.2f, want ~4", build.name, ratio)
				}
			}
			prev = eqns
		}
	}
}

func TestMastrovitoNamedPartialSums(t *testing.T) {
	p := gf2poly.MustParse("x^4+x+1")
	n, err := Mastrovito(4, p)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 6; k++ {
		if _, ok := n.Lookup("s" + string(rune('0'+k))); !ok {
			t.Errorf("partial sum s%d not named", k)
		}
	}
}

func BenchmarkMastrovito64(b *testing.B) {
	p := polytab.NIST[64]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Mastrovito(64, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMontgomery64(b *testing.B) {
	p := polytab.NIST[64]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Montgomery(64, p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMastrovitoMatrixMatchesField(t *testing.T) {
	for _, m := range []int{2, 3, 4, 8, 16, 32, 64} {
		p, err := polytab.Default(m)
		if err != nil {
			t.Fatal(err)
		}
		n, err := MastrovitoMatrix(m, p)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		checkMultiplier(t, n, p, mulRef)
	}
}

func TestMastrovitoMatrixConesAreIndependent(t *testing.T) {
	// In the matrix form, no internal logic is shared between output bits:
	// the cones of distinct outputs intersect only in primary inputs.
	p := polytab.NIST[64]
	n, err := MastrovitoMatrix(64, p)
	if err != nil {
		t.Fatal(err)
	}
	outs := n.Outputs()
	owner := make(map[int]int)
	for oi, root := range outs {
		for _, id := range n.Cone(root) {
			if n.Gate(id).Type == netlist.Input {
				continue
			}
			if prev, ok := owner[id]; ok && prev != oi {
				t.Fatalf("gate %d shared between outputs %d and %d", id, prev, oi)
			}
			owner[id] = oi
		}
	}
}

func TestMastrovitoMatrixEquationScale(t *testing.T) {
	// The matrix form should be substantially more redundant than the
	// tabular form — the headroom Table III's synthesis removes.
	p := polytab.NIST[64]
	tab, err := Mastrovito(64, p)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := MastrovitoMatrix(64, p)
	if err != nil {
		t.Fatal(err)
	}
	if float64(mat.NumEquations()) < 1.5*float64(tab.NumEquations()) {
		t.Errorf("matrix form %d eqns vs tabular %d: expected >= 1.5x redundancy",
			mat.NumEquations(), tab.NumEquations())
	}
}

func TestKaratsubaMatchesField(t *testing.T) {
	for _, m := range []int{2, 3, 4, 5, 8, 11, 16, 32, 64} {
		p, err := polytab.Default(m)
		if err != nil {
			t.Fatal(err)
		}
		n, err := Karatsuba(m, p)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		checkMultiplier(t, n, p, mulRef)
	}
}

func TestKaratsubaSharesLogicAcrossOutputs(t *testing.T) {
	// Unlike the matrix form, Karatsuba sub-products feed many outputs.
	p := polytab.NIST[64]
	kar, err := Karatsuba(64, p)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := MastrovitoMatrix(64, p)
	if err != nil {
		t.Fatal(err)
	}
	if kar.NumEquations() >= mat.NumEquations() {
		t.Errorf("karatsuba (%d eqns) should be smaller than matrix form (%d)",
			kar.NumEquations(), mat.NumEquations())
	}
}

func TestDigitSerialMatchesField(t *testing.T) {
	for _, m := range []int{4, 8, 16, 32} {
		p, err := polytab.Default(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []int{1, 2, 3, 4, 8, m} {
			if d > m {
				continue
			}
			n, err := DigitSerial(m, p, d)
			if err != nil {
				t.Fatalf("m=%d d=%d: %v", m, d, err)
			}
			checkMultiplier(t, n, p, mulRef)
		}
	}
}

func TestDigitSerialValidatesDigit(t *testing.T) {
	p, _ := polytab.Default(8)
	if _, err := DigitSerial(8, p, 0); err == nil {
		t.Error("d=0 should fail")
	}
	if _, err := DigitSerial(8, p, 9); err == nil {
		t.Error("d>m should fail")
	}
}

func TestDigitSerialFullDigitEqualsBitParallel(t *testing.T) {
	// d=m is a single step: functionally a bit-parallel multiplier.
	p, _ := polytab.Default(8)
	n, err := DigitSerial(8, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkMultiplier(t, n, p, mulRef)
}
