package gen

import (
	"fmt"

	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/polytab"
)

// karatsubaThreshold is the operand width below which the recursion falls
// back to schoolbook partial products (the usual practice in hardware
// Karatsuba generators; tiny sub-multipliers are cheaper flat).
const karatsubaThreshold = 4

// sigVec is a vector of signal IDs; -1 entries are logical zero.
type sigVec []int

func (b *sigBuilder) xorSig(s, t int) (int, error) {
	switch {
	case s == -1:
		return t, nil
	case t == -1:
		return s, nil
	}
	return b.n.AddGate(netlist.Xor, s, t)
}

type sigBuilder struct{ n *netlist.Netlist }

// schoolbook returns the 2n-1 product-coefficient signals of x·y by direct
// partial products.
func (b *sigBuilder) schoolbook(x, y sigVec) (sigVec, error) {
	n := len(x)
	out := make(sigVec, 2*n-1)
	for i := range out {
		out[i] = -1
	}
	for i := 0; i < n; i++ {
		if x[i] == -1 {
			continue
		}
		for j := 0; j < n; j++ {
			if y[j] == -1 {
				continue
			}
			t, err := b.n.AddGate(netlist.And, x[i], y[j])
			if err != nil {
				return nil, err
			}
			if out[i+j], err = b.xorSig(out[i+j], t); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// karatsuba returns the 2n-1 product coefficients of x·y using the
// recursive three-multiplication split.
func (b *sigBuilder) karatsuba(x, y sigVec) (sigVec, error) {
	n := len(x)
	if n <= karatsubaThreshold {
		return b.schoolbook(x, y)
	}
	n0 := n / 2
	xl, xh := x[:n0], x[n0:]
	yl, yh := y[:n0], y[n0:]

	low, err := b.karatsuba(xl, yl) // deg < 2n0-1
	if err != nil {
		return nil, err
	}
	high, err := b.karatsuba(xh, yh)
	if err != nil {
		return nil, err
	}
	// Middle operands: (xl+xh) and (yl+yh), padded to the high half width.
	n1 := n - n0
	xs := make(sigVec, n1)
	ys := make(sigVec, n1)
	for i := 0; i < n1; i++ {
		xs[i], ys[i] = xh[i], yh[i]
		if i < n0 {
			if xs[i], err = b.xorSig(xs[i], xl[i]); err != nil {
				return nil, err
			}
			if ys[i], err = b.xorSig(ys[i], yl[i]); err != nil {
				return nil, err
			}
		}
	}
	mid, err := b.karatsuba(xs, ys)
	if err != nil {
		return nil, err
	}

	// out = low + x^n0·(mid + low + high) + x^(2n0)·high (all XOR over GF(2)).
	out := make(sigVec, 2*n-1)
	for i := range out {
		out[i] = -1
	}
	for i, s := range low {
		if out[i], err = b.xorSig(out[i], s); err != nil {
			return nil, err
		}
	}
	for i, s := range high {
		if out[2*n0+i], err = b.xorSig(out[2*n0+i], s); err != nil {
			return nil, err
		}
	}
	for i := range mid {
		t := mid[i]
		if i < len(low) {
			if t, err = b.xorSig(t, low[i]); err != nil {
				return nil, err
			}
		}
		if i < len(high) {
			if t, err = b.xorSig(t, high[i]); err != nil {
				return nil, err
			}
		}
		if out[n0+i], err = b.xorSig(out[n0+i], t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Karatsuba generates a GF(2^m) multiplier whose polynomial product is
// computed by recursive Karatsuba decomposition (three half-width
// sub-products instead of four) followed by the same x^k mod P(x) column
// reduction as Mastrovito. A third architecture family for exercising the
// paper's claim that extraction is oblivious to the multiplier algorithm;
// its deeply shared XOR structure sits between Mastrovito's flat tree and
// Montgomery's serial chains.
func Karatsuba(m int, p gf2poly.Poly) (*netlist.Netlist, error) {
	if err := validate(m, p); err != nil {
		return nil, err
	}
	n := netlist.New(fmt.Sprintf("karatsuba_gf2_%d", m))
	a, b, err := operands(n, m)
	if err != nil {
		return nil, err
	}
	sb := &sigBuilder{n: n}
	s, err := sb.karatsuba(sigVec(a), sigVec(b))
	if err != nil {
		return nil, err
	}

	rows := polytab.ReductionRows(p)
	for c := 0; c < m; c++ {
		col := []int{}
		if s[c] != -1 {
			col = append(col, s[c])
		}
		for t, row := range rows {
			if row.Coeff(c) == 1 && s[m+t] != -1 {
				col = append(col, s[m+t])
			}
		}
		z, err := xorTree(n, col)
		if err != nil {
			return nil, err
		}
		if z == -1 {
			if z, err = n.AddGate(netlist.Const0); err != nil {
				return nil, err
			}
		}
		if err := n.MarkOutput(fmt.Sprintf("z%d", c), z); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// DigitSerial generates a least-significant-digit-first digit-serial
// GF(2^m) multiplier with digit width d: the area/throughput compromise
// used when a full bit-parallel multiplier is too large. Per digit step the
// datapath computes C += A_digit·Bcur and Bcur = Bcur·x^d mod P (a pure XOR
// shift-reduce network); the accumulator's d-1 out-field positions are
// folded back at the end through the usual reduction rows.
func DigitSerial(m int, p gf2poly.Poly, d int) (*netlist.Netlist, error) {
	if err := validate(m, p); err != nil {
		return nil, err
	}
	if d < 1 || d > m {
		return nil, fmt.Errorf("gen: digit width %d out of range [1, %d]", d, m)
	}
	n := netlist.New(fmt.Sprintf("digitserial%d_gf2_%d", d, m))
	a, b, err := operands(n, m)
	if err != nil {
		return nil, err
	}
	sb := &sigBuilder{n: n}

	// xTimes returns v·x mod P for a signal vector v of width m: a wiring
	// shift plus XORs of the wrapped top bit into P'(x) positions.
	xTimes := func(v sigVec) (sigVec, error) {
		out := make(sigVec, m)
		top := v[m-1]
		out[0] = top
		for i := 1; i < m; i++ {
			out[i] = v[i-1]
		}
		if top != -1 {
			for _, e := range p.Terms() {
				if e == 0 || e == m {
					continue
				}
				if out[e], err = sb.xorSig(out[e], top); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}

	acc := make(sigVec, m+d-1)
	for i := range acc {
		acc[i] = -1
	}
	bcur := make(sigVec, m)
	copy(bcur, b)
	steps := (m + d - 1) / d
	for step := 0; step < steps; step++ {
		for k := 0; k < d; k++ {
			bit := step*d + k
			if bit >= m {
				break
			}
			for j := 0; j < m; j++ {
				if bcur[j] == -1 {
					continue
				}
				t, err := n.AddGate(netlist.And, a[bit], bcur[j])
				if err != nil {
					return nil, err
				}
				if acc[k+j], err = sb.xorSig(acc[k+j], t); err != nil {
					return nil, err
				}
			}
		}
		if step != steps-1 {
			for k := 0; k < d; k++ {
				if bcur, err = xTimes(bcur); err != nil {
					return nil, err
				}
			}
		}
	}

	// Fold the d-1 out-field accumulator positions back through
	// x^(m+t) mod P.
	rows := polytab.ReductionRows(p)
	for c := 0; c < m; c++ {
		col := []int{}
		if acc[c] != -1 {
			col = append(col, acc[c])
		}
		for t := 0; t < d-1; t++ {
			if rows[t].Coeff(c) == 1 && acc[m+t] != -1 {
				col = append(col, acc[m+t])
			}
		}
		z, err := xorTree(n, col)
		if err != nil {
			return nil, err
		}
		if z == -1 {
			if z, err = n.AddGate(netlist.Const0); err != nil {
				return nil, err
			}
		}
		if err := n.MarkOutput(fmt.Sprintf("z%d", c), z); err != nil {
			return nil, err
		}
	}
	return n, nil
}
